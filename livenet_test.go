package livenet

import (
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the public facade end to end: a
// packet-level cluster streaming real (synthetic) video.
func TestPublicAPIQuickstart(t *testing.T) {
	cluster := NewCluster(ClusterConfig{Seed: 1, Sites: 10})
	defer cluster.Close()

	bc := cluster.NewBroadcasterAt(31.2, 121.5, 100, DefaultRenditions[2:])
	bc.Start()
	cluster.Run(2 * time.Second)

	v := cluster.NewViewerAt(39.9, 116.4, bc.StreamID(0))
	cluster.Run(6 * time.Second)

	s := v.Stats()
	if !s.Started {
		t.Fatal("playback never started through the public API")
	}
	if s.FramesPlayed < 50 {
		t.Fatalf("frames played = %d", s.FramesPlayed)
	}
	if !s.FastStartup() {
		t.Fatalf("startup = %v, want < 1s", s.StartupDelay)
	}
}

// TestPublicAPIEvaluation exercises RunEvaluation for both systems and
// checks the headline comparison.
func TestPublicAPIEvaluation(t *testing.T) {
	mk := func(sys System) *EvalResult {
		cfg := EvalConfig{Seed: 5, Days: 1, Sites: 24, System: sys}
		cfg.Workload.PeakViewsPerSec = 0.5
		cfg.Workload.Channels = 60
		return RunEvaluation(cfg)
	}
	ln := mk(SystemLiveNet)
	hr := mk(SystemHier)
	if ln.Views == 0 || ln.Views != hr.Views {
		t.Fatalf("views: %d vs %d", ln.Views, hr.Views)
	}
	if ln.CDNDelayMs.Median() >= hr.CDNDelayMs.Median() {
		t.Fatal("LiveNet should beat Hier on CDN delay")
	}
	if ln.PathLen.Median() != 2 || hr.PathLen.Median() != 4 {
		t.Fatalf("path medians %v vs %v", ln.PathLen.Median(), hr.PathLen.Median())
	}
}
