package livenet

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6), plus the DESIGN.md ablations and transport
// micro-benchmarks. The table/figure benchmarks share a single
// quick-scale evaluation pair (computed once) and report the headline
// numbers as custom metrics, so `go test -bench=.` regenerates the whole
// evaluation's shape in one run. cmd/livenet-bench runs the full-scale
// (20-day) version and writes EXPERIMENTS.md.

import (
	"sync"
	"testing"
	"time"

	"livenet/internal/core"
	"livenet/internal/eval"
	"livenet/internal/gcc"
	"livenet/internal/media"
	"livenet/internal/netem"
	"livenet/internal/perfbench"
	"livenet/internal/rtp"
	"livenet/internal/sim"
	"livenet/internal/telemetry"
	"livenet/internal/wire"
)

var (
	benchOnce sync.Once
	benchRes  *eval.Results
)

// benchResults runs the shared quick evaluation pair once.
func benchResults(b *testing.B) *eval.Results {
	b.Helper()
	benchOnce.Do(func() { benchRes = eval.Run(eval.Quick()) })
	return benchRes
}

// --- Tables and figures (§6) ---

func BenchmarkTable1Overall(b *testing.B) {
	r := benchResults(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = eval.Table1(r)
	}
	_ = out
	b.ReportMetric(r.LN.CDNDelayMs.Median(), "cdn_ms_livenet")
	b.ReportMetric(r.HR.CDNDelayMs.Median(), "cdn_ms_hier")
	b.ReportMetric(r.LN.Streaming.Median(), "stream_ms_livenet")
	b.ReportMetric(r.HR.Streaming.Median(), "stream_ms_hier")
	b.ReportMetric(r.LN.ZeroStall.Percent(), "zerostall_pct_livenet")
	b.ReportMetric(r.HR.ZeroStall.Percent(), "zerostall_pct_hier")
	b.ReportMetric(r.LN.FastStart.Percent(), "faststart_pct_livenet")
	b.ReportMetric(r.HR.FastStart.Percent(), "faststart_pct_hier")
}

func BenchmarkFig2PathDelayTimeSeries(b *testing.B) {
	r := benchResults(b)
	for i := 0; i < b.N; i++ {
		_ = eval.Fig2(r)
	}
	b.ReportMetric(r.LN.CDNDelayMs.Median(), "livenet_ms")
	b.ReportMetric(r.HR.CDNDelayMs.Median(), "hier_ms")
}

func BenchmarkFig8aStreamingDelayCDF(b *testing.B) {
	r := benchResults(b)
	for i := 0; i < b.N; i++ {
		_ = eval.Fig8a(r)
	}
	b.ReportMetric(r.HR.Streaming.Percentile(60)-r.LN.Streaming.Percentile(60), "gain_ms_p60")
}

func BenchmarkFig8bStallHistogram(b *testing.B) {
	r := benchResults(b)
	for i := 0; i < b.N; i++ {
		_ = eval.Fig8b(r)
	}
	b.ReportMetric(100-r.LN.ZeroStall.Percent(), "stalled_pct_livenet")
	b.ReportMetric(100-r.HR.ZeroStall.Percent(), "stalled_pct_hier")
}

func BenchmarkFig8cFastStartupDaily(b *testing.B) {
	r := benchResults(b)
	for i := 0; i < b.N; i++ {
		_ = eval.Fig8c(r)
	}
	b.ReportMetric(r.LN.FastStart.Percent(), "livenet_pct")
	b.ReportMetric(r.HR.FastStart.Percent(), "hier_pct")
}

func BenchmarkFig9StartupVsDelay(b *testing.B) {
	r := benchResults(b)
	for i := 0; i < b.N; i++ {
		_ = eval.Fig9(r)
	}
	if bucket := r.LN.StartupByDelay["(1000,1500]"]; bucket != nil && bucket.Total > 0 {
		b.ReportMetric(bucket.Percent(), "faststart_pct_1000_1500ms")
	}
}

func BenchmarkFig10aBrainResponse(b *testing.B) {
	r := benchResults(b)
	for i := 0; i < b.N; i++ {
		_ = eval.Fig10a(r)
	}
	all := 0.0
	n := 0
	for _, h := range r.LN.RespByHour.Buckets() {
		all += r.LN.RespByHour.Bucket(h).Median()
		n++
	}
	if n > 0 {
		b.ReportMetric(all/float64(n), "median_resp_ms")
	}
}

func BenchmarkFig10bLocalHitRatio(b *testing.B) {
	r := benchResults(b)
	for i := 0; i < b.N; i++ {
		_ = eval.Fig10b(r)
	}
	hits, total := 0, 0
	for _, h := range r.LN.HitByHour {
		hits += h.Hits
		total += h.Total
	}
	if total > 0 {
		b.ReportMetric(100*float64(hits)/float64(total), "hit_pct")
	}
}

func BenchmarkFig10cFirstPacketDelay(b *testing.B) {
	r := benchResults(b)
	for i := 0; i < b.N; i++ {
		_ = eval.Fig10c(r)
	}
	sum, n := 0.0, 0
	for _, h := range r.LN.FirstPktByHour.Buckets() {
		sum += r.LN.FirstPktByHour.Bucket(h).Mean()
		n++
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "avg_first_pkt_ms")
	}
}

func BenchmarkTable2PathLength(b *testing.B) {
	r := benchResults(b)
	for i := 0; i < b.N; i++ {
		_ = eval.Table2(r)
	}
	total := 0
	for _, c := range r.LN.LenCounts {
		total += c
	}
	b.ReportMetric(100*float64(r.LN.LenCounts[2])/float64(total), "len2_pct")
}

func BenchmarkFig11DelayVsLength(b *testing.B) {
	r := benchResults(b)
	for i := 0; i < b.N; i++ {
		_ = eval.Fig11(r)
	}
	if s := r.LN.DelayByLen[2]; s != nil {
		b.ReportMetric(s.Median(), "len2_median_ms")
	}
}

func BenchmarkFig12IntraInter(b *testing.B) {
	r := benchResults(b)
	for i := 0; i < b.N; i++ {
		_ = eval.Fig12(r)
	}
	b.ReportMetric(r.LN.IntraDelay.Median(), "livenet_intra_ms")
	b.ReportMetric(r.LN.InterDelay.Median(), "livenet_inter_ms")
}

func BenchmarkFig13LossDiurnal(b *testing.B) {
	r := benchResults(b)
	for i := 0; i < b.N; i++ {
		_ = eval.Fig13(r)
	}
	peak := 0.0
	for _, h := range r.LN.LossByHour.Buckets() {
		if v := r.LN.LossByHour.Bucket(h).Mean(); v > peak {
			peak = v
		}
	}
	b.ReportMetric(peak, "peak_loss_pct")
}

// benchFest runs the festival evaluation once (needs 13 days).
var (
	festOnce sync.Once
	festRes  *eval.Results
)

func festResults(b *testing.B) *eval.Results {
	b.Helper()
	festOnce.Do(func() {
		o := eval.Quick()
		o.Days = 13
		o.Double12 = true
		festRes = eval.Run(o)
	})
	return festRes
}

func BenchmarkFig14PeakThroughput(b *testing.B) {
	r := festResults(b)
	for i := 0; i < b.N; i++ {
		_ = eval.Fig14(r)
	}
	normal := r.LN.ByDay[9].PeakConcurrency
	fest := r.LN.ByDay[10].PeakConcurrency
	if normal > 0 {
		b.ReportMetric(float64(fest)/float64(normal), "festival_peak_ratio")
	}
}

func BenchmarkTable3Double12(b *testing.B) {
	r := festResults(b)
	for i := 0; i < b.N; i++ {
		_ = eval.Table3(r)
	}
	if ds := r.LN.ByDay[10]; ds != nil {
		b.ReportMetric(ds.ZeroStall.Percent(), "festival_zerostall_pct")
		b.ReportMetric(ds.FastStart.Percent(), "festival_faststart_pct")
	}
}

// --- Ablations (DESIGN.md) ---

func BenchmarkAblationFastSlowPath(b *testing.B) {
	var r eval.FastSlowResult
	for i := 0; i < b.N; i++ {
		r = eval.AblationFastSlow(1, 0.01)
	}
	b.ReportMetric(r.FastSlowMedianMs, "fastslow_p50_ms")
	b.ReportMetric(r.StoreFwdMedianMs, "storefwd_p50_ms")
}

func BenchmarkAblationLinkWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.AblationLinkWeights(3)
	}
}

func BenchmarkAblationMacroFeatures(b *testing.B) {
	o := eval.Quick()
	o.Days = 1
	var out string
	for i := 0; i < b.N; i++ {
		out = eval.MacroAblations(o)
	}
	_ = out
}

// --- Transport micro-benchmarks ---

func BenchmarkRTPMarshal(b *testing.B) {
	p := rtp.Packet{
		PayloadType: rtp.PayloadVideo, SequenceNumber: 1, SSRC: 7,
		HasDelayExt: true, DelayAccum10us: 100,
		Payload: make([]byte, 1187),
	}
	buf := make([]byte, 0, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.Marshal(buf[:0])
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkRTPUnmarshal(b *testing.B) {
	p := rtp.Packet{
		PayloadType: rtp.PayloadVideo, HasDelayExt: true,
		Payload: make([]byte, 1187),
	}
	buf := p.Marshal(nil)
	var q rtp.Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := q.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkPatchDelayExt(b *testing.B) {
	p := rtp.Packet{HasDelayExt: true, Payload: make([]byte, 1187)}
	buf := p.Marshal(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rtp.PatchDelayExt(buf, 10)
	}
}

func BenchmarkPacerDrain(b *testing.B) {
	p := gcc.NewPacer[int](10e6)
	now := time.Duration(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Push(gcc.Item[int]{Class: gcc.ClassVideo, Size: 1200})
		now += time.Millisecond
		p.Drain(now, func(gcc.Item[int]) {})
	}
}

// The routing and allocation-diet benchmark bodies live in
// internal/perfbench so `livenet-bench -bench-json` can run the same
// code programmatically and snapshot the numbers (BENCH_*.json).

func BenchmarkYenKSPFullMesh(b *testing.B)       { perfbench.YenKSPFullMesh(b) }
func BenchmarkDenseMeshRouting(b *testing.B)     { perfbench.DenseMeshRouting(b) }
func BenchmarkGraphNeighborWeights(b *testing.B) { perfbench.GraphNeighborWeights(b) }

// BenchmarkMacroPerViewer10k / MacroCohort10k share a workload at a
// 10k-viewer peak and differ only in the engine — their ns/op ratio is
// the cohort-aggregation speedup. BenchmarkMacroCohort1M is the headline
// scale point: a million-viewer peak (~2M under the flash window) the
// per-viewer engine cannot hold in memory (see DESIGN.md §11).
func BenchmarkMacroPerViewer10k(b *testing.B) { perfbench.MacroPerViewer10k(b) }
func BenchmarkMacroCohort10k(b *testing.B)    { perfbench.MacroCohort10k(b) }
func BenchmarkMacroCohort1M(b *testing.B)     { perfbench.MacroCohort1M(b) }

// BenchmarkBrainPaperScale is a from-scratch Global Routing epoch at the
// paper's fleet scale (600 sites, sparse overlay, k=3);
// BenchmarkBrainEpochChurn is the same epoch when ~1% of links changed —
// the incremental invalidation path. Their per-op ratio is the headline
// of this PR (see EXPERIMENTS.md).
func BenchmarkBrainPaperScale(b *testing.B) { perfbench.BrainPaperScale(b) }
func BenchmarkBrainEpochChurn(b *testing.B) { perfbench.BrainEpochChurn(b) }

// BenchmarkBrainPaperScale2000 stretches the from-scratch epoch to
// N=2000 sites — the scale point the worker-arena engine added (the
// allocation-heavy engine before it did not complete a 2000-site round
// in useful time; see EXPERIMENTS.md).
func BenchmarkBrainPaperScale2000(b *testing.B) { perfbench.BrainPaperScale2000(b) }

// BenchmarkBrainFederatedEpoch / Churn are the sharded counterparts: the
// same 600-site overlay with one Brain shard per region and cross-region
// stitching (see DESIGN.md §10); metrics include the per-shard report
// fan-in the federation trades against the monolith's global ingest.
func BenchmarkBrainFederatedEpoch(b *testing.B) { perfbench.BrainFederatedEpoch(b) }
func BenchmarkBrainFederatedChurn(b *testing.B) { perfbench.BrainFederatedChurn(b) }

func BenchmarkNetemThroughput(b *testing.B) {
	loop := sim.NewLoop(1)
	net := netem.New(loop, loop.RNG("n"))
	net.AddLink(0, 1, netem.LinkConfig{RTT: 10 * time.Millisecond, BandwidthBps: 1e9})
	net.Handle(1, func(int, []byte) {})
	data := make([]byte, 1200)
	b.ReportAllocs()
	b.SetBytes(1200)
	for i := 0; i < b.N; i++ {
		net.Send(0, 1, data)
		if i%1024 == 0 {
			loop.RunUntil(loop.Now() + time.Second)
		}
	}
}

func BenchmarkPacketizeGoP(b *testing.B) {
	enc := media.NewEncoder(media.DefaultEncoderConfig(2_500_000), sim.NewSource(1).Stream("m"))
	pz := media.NewPacketizer(1)
	out := make([]rtp.Packet, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out = pz.Packetize(enc.NextFrame(), 100, out[:0])
	}
	_ = out
}

func BenchmarkClusterSecondOfVideo(b *testing.B) {
	// End-to-end packet-level cost of one second of streaming for one
	// broadcaster and one viewer.
	c := core.NewCluster(core.ClusterConfig{Seed: 1, Sites: 8})
	defer c.Close()
	bc := c.NewBroadcasterAt(31.2, 121.5, 100, media.DefaultRenditions[2:])
	bc.Start()
	c.Run(time.Second)
	v := c.NewViewerAt(39.9, 116.4, bc.StreamID(0))
	_ = v
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(time.Second)
	}
}

// --- Allocation diet (event loop, netem, Brain weight cache) ---

func BenchmarkLoopSchedule(b *testing.B) { perfbench.LoopSchedule(b) }
func BenchmarkNetemSend(b *testing.B)    { perfbench.NetemSend(b) }

// --- Data-plane throughput (DESIGN.md §9; pps-denominated) ---

func BenchmarkNodeForwardFanout10(b *testing.B)   { perfbench.NodeForwardFanout10(b) }
func BenchmarkNodeForwardFanout100(b *testing.B)  { perfbench.NodeForwardFanout100(b) }
func BenchmarkNodeForwardFanout1000(b *testing.B) { perfbench.NodeForwardFanout1000(b) }
func BenchmarkUDPLoopbackEcho(b *testing.B)       { perfbench.UDPLoopbackEcho(b) }
func BenchmarkUDPLoopbackBatchRelay(b *testing.B) { perfbench.UDPLoopbackBatchRelay(b) }

// BenchmarkBrainLookup measures the Path Decision serve path across
// quiet routing epochs: with incremental epochs an AdvanceEpoch that saw
// no metric changes is a no-op, so the lookup is a PIB hit served from
// the memoized decision cache (one outer-slice copy per call).
func BenchmarkBrainLookup(b *testing.B) { perfbench.BrainLookup(b) }

// BenchmarkNodeForward measures the node's fast forwarding path
// (broadcaster ingress -> classify -> fan-out -> pacer drain) with the
// telemetry registry disabled and enabled: the on/off delta in allocs/op
// must be ~0 (the instruments are pre-resolved atomic words).
func BenchmarkNodeForward(b *testing.B) {
	run := func(reg *telemetry.Registry) func(*testing.B) {
		return func(b *testing.B) {
			h := newForwardHarness(reg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.step()
			}
		}
	}
	b.Run("telemetry=off", run(nil))
	b.Run("telemetry=on", run(telemetry.NewRegistry()))
}

func BenchmarkWirePathRequest(b *testing.B) {
	req := wire.PathRequest{StreamID: 7, Consumer: 3, Token: 99}
	var got wire.PathRequest
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := req.Marshal(nil)
		if err := got.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
