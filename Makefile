# LiveNet reproduction — build/test/bench entry points.
#
#   make ci         # what a PR must pass: vet + build + race-enabled tests + chaos smoke + docs gate
#   make test       # plain test run (fastest)
#   make bench      # allocation + throughput benchmark smoke (short benchtime)
#   make bench-smoke # routing/perf suite, one iteration each (part of make ci)
#   make bench-routing # cold/warm routing-epoch suite incl. the N=2000 point, one iteration each
#   make bench-shard # federated-Brain epoch benchmarks, one iteration each
#   make bench-check # hot-path alloc regression guard vs BENCH_9.json (part of make ci)
#   make bench-json # perfbench suite -> BENCH_9.json snapshot (minutes)
#   make quick      # scaled-down end-to-end evaluation report
#   make macro-1m   # cohort-engine scale smoke: quarter-million-viewer macro pair
#   make chaos      # fault-tolerance evaluation (deterministic fault injection)
#   make chaos-migrate # planned-reconfiguration gate: rolling restart adds zero stalls
#   make telemetry  # observability report: journey waterfalls + Brain GlobalView
#   make docs       # docs-freshness gate: every registered metric documented

GO ?= go

.PHONY: all ci vet build test race race-dataplane bench bench-smoke bench-routing bench-shard bench-check bench-json quick macro-1m chaos chaos-migrate telemetry docs

all: ci

ci: vet build race race-dataplane chaos chaos-migrate docs bench-smoke bench-check macro-1m

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel run scheduler and the eval session memo are exercised
# concurrently here; the race detector is the determinism harness's
# second line of defense after the byte-identical-output tests.
race:
	$(GO) test -race ./...

# Data-plane race gate: the sharded receive loops, the batched flush
# path, and the pool-reuse tests all run concurrently; -count=2 shakes
# out scratch-slice reuse across runs.
race-dataplane:
	$(GO) test -race -count=2 ./internal/node/... ./internal/udprun/...

# Benchmark smoke: the allocation-diet trio, the transport
# micro-benchmarks, and the telemetry zero-overhead proof (forward path
# allocs/op must not change with the registry enabled).
bench:
	$(GO) test -run xxx -bench 'BenchmarkLoopSchedule|BenchmarkNetemSend|BenchmarkBrainLookup|BenchmarkRTP|BenchmarkNetemThroughput|BenchmarkNodeForward' -benchtime 0.2s .

# Routing/perf suite smoke: the routing-epoch suite plus the data-plane
# and allocation-diet benchmarks, one iteration each.
bench-smoke: bench-shard bench-routing
	$(GO) test -run xxx -bench 'BenchmarkBrainLookup|BenchmarkGraphNeighborWeights|BenchmarkLoopSchedule|BenchmarkNetemSend|BenchmarkNodeForwardFanout|BenchmarkUDPLoopback' -benchtime 1x .

# Routing-epoch smoke: the cold (from-scratch) epochs at N=600 and
# N=2000, the incremental churn round, and the KSP micro-benchmarks —
# proves the arena engine completes a beyond-paper-scale Global Routing
# round (the N=2000 point exists because the pre-arena engine could not).
bench-routing:
	$(GO) test -run xxx -bench 'BenchmarkBrainPaperScale|BenchmarkBrainPaperScale2000|BenchmarkBrainEpochChurn|BenchmarkYenKSPFullMesh|BenchmarkDenseMeshRouting' -benchtime 1x .

# Federated-Brain smoke: the sharded (one Brain per region) epoch and
# churn rounds at the same 600-site scale — proves cross-region stitch
# prefetch completes and reports the per-shard discovery fan-in.
bench-shard:
	$(GO) test -run xxx -bench 'BenchmarkBrainFederatedEpoch|BenchmarkBrainFederatedChurn' -benchtime 1x .

# Perfbench snapshot: run the suite at full benchtime through
# cmd/livenet-bench and write BENCH_9.json for cross-PR comparison.
bench-json:
	$(GO) run ./cmd/livenet-bench -bench-json BENCH_9.json

# Hot-path alloc regression guard: re-run the allocation-diet benchmarks
# and fail if any exceeds its committed BENCH_9.json allocs/op by >10%
# (zero-alloc paths must stay at zero). ns/op is not gated — timing is
# machine-dependent; allocation counts are deterministic.
bench-check:
	$(GO) run ./cmd/livenet-bench -bench-check BENCH_9.json

quick:
	$(GO) run ./cmd/livenet-bench -quick

# Cohort-engine scale smoke (DESIGN.md §11): both systems at a
# quarter-million-viewer diurnal peak through the cohort-aggregated macro
# engine — ~30M represented views per system in seconds. The full
# million-viewer point runs in `make bench-json` (MacroCohort1M).
macro-1m:
	$(GO) run ./cmd/livenet-bench -viewers 250000 -hours 6 -sites 24 -macro-only

# Fault-tolerance smoke: runs the three chaos experiments (relay crash,
# Brain-unreachable cache fallback, Brain-replica outage) end to end; the
# byte-identical replay of the same scenarios is asserted in
# internal/eval/fault_test.go.
chaos:
	$(GO) run ./cmd/livenet-bench -chaos

# Planned-reconfiguration gate: the full-fleet rolling restart must add
# zero stalls for LiveNet (make-before-break drains) while Hier pays a
# positive price, and the drain must converge before every crash.
chaos-migrate:
	$(GO) test -run 'TestRollingRestart' -count=1 -v ./internal/eval

# Observability report: sampled per-packet latency waterfalls plus the
# Brain's GlobalView fleet-health tables (see OBSERVABILITY.md).
telemetry:
	$(GO) run ./cmd/livenet-bench -telemetry

# Docs-freshness gate: fails when a registered metric name is missing
# from OBSERVABILITY.md.
docs:
	$(GO) test -run TestObservabilityDocCoversMetrics -count=1 .
