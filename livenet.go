// Package livenet is a from-scratch Go implementation of LiveNet
// (Li et al., SIGCOMM 2022): Alibaba's low-latency video transport
// network for large-scale live streaming, built on a flat CDN overlay
// with a centralized controller (the Streaming Brain) and a fast–slow
// path per-node forwarding architecture.
//
// The package exposes two entry points:
//
//   - NewCluster builds a packet-level deployment on an in-process
//     network emulator: real overlay nodes running the fast–slow path,
//     a real Streaming Brain, and real broadcaster/viewer endpoints.
//     Use it to stream actual (synthetic) video end to end.
//
//   - RunEvaluation executes the session-level simulator that
//     regenerates the paper's 20-day evaluation (Tables 1–3,
//     Figures 2 and 8–14) for either LiveNet or the hierarchical-CDN
//     baseline (Hier).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison. The cmd/ directory has runnable
// binaries (including real-UDP multi-node deployment) and examples/
// has quickstart programs.
package livenet

import (
	"livenet/internal/client"
	"livenet/internal/core"
	"livenet/internal/media"
)

// ClusterConfig parameterizes a packet-level deployment
// (see core.ClusterConfig for field documentation).
type ClusterConfig = core.ClusterConfig

// Cluster is a packet-level LiveNet deployment: world + emulated
// network + overlay nodes + Streaming Brain.
type Cluster = core.Cluster

// Broadcast is a broadcaster client bound to its producer node.
type Broadcast = core.Broadcast

// Viewing is a viewer client bound to its consumer node.
type Viewing = core.Viewing

// ViewStats are per-view QoE metrics (startup delay, stalls, streaming
// delay).
type ViewStats = client.ViewStats

// Rendition is one simulcast quality level.
type Rendition = media.Rendition

// DefaultRenditions is the default simulcast ladder (720p/480p/360p).
var DefaultRenditions = media.DefaultRenditions

// NewCluster builds a packet-level LiveNet deployment.
func NewCluster(cfg ClusterConfig) *Cluster { return core.NewCluster(cfg) }

// System selects the transport network an evaluation run models.
type System = core.System

// Evaluated systems.
const (
	SystemLiveNet = core.SystemLiveNet
	SystemHier    = core.SystemHier
)

// EvalConfig parameterizes a session-level evaluation run
// (see core.MacroConfig for field documentation, including the
// ablation toggles).
type EvalConfig = core.MacroConfig

// EvalResult aggregates an evaluation run's metrics.
type EvalResult = core.MacroResult

// RunEvaluation executes the session-level simulator for one system over
// the configured horizon and returns the aggregated metrics.
func RunEvaluation(cfg EvalConfig) *EvalResult { return core.RunMacro(cfg) }
