// Package geo builds the synthetic world that substitutes for Alibaba's
// global CDN footprint: node sites placed in countries, a propagation RTT
// model derived from great-circle distance, per-link baseline loss, and the
// diurnal load curve that drives the workload (Taobao Live peaks between
// 8 pm and 11 pm local time in the paper's Figure 10(b)).
package geo

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"livenet/internal/sim"
)

// Country is one country in the synthetic world.
type Country struct {
	Name   string
	Region string  // continent-scale grouping
	Lat    float64 // population-centroid latitude
	Lon    float64 // population-centroid longitude
	// NodeWeight and ViewerWeight steer node placement and viewer origin.
	// The home market dominates both, matching Taobao Live's footprint.
	NodeWeight   float64
	ViewerWeight float64
}

// Countries is the default synthetic country set. The first entry is the
// home market where most broadcasters and viewers reside.
var Countries = []Country{
	{Name: "CN", Region: "APAC", Lat: 34.0, Lon: 108.0, NodeWeight: 50, ViewerWeight: 82},
	{Name: "SG", Region: "APAC", Lat: 1.35, Lon: 103.8, NodeWeight: 6, ViewerWeight: 3},
	{Name: "JP", Region: "APAC", Lat: 36.0, Lon: 138.0, NodeWeight: 6, ViewerWeight: 3},
	{Name: "KR", Region: "APAC", Lat: 37.5, Lon: 127.0, NodeWeight: 4, ViewerWeight: 2},
	{Name: "IN", Region: "APAC", Lat: 21.0, Lon: 78.0, NodeWeight: 5, ViewerWeight: 2},
	{Name: "ID", Region: "APAC", Lat: -6.2, Lon: 106.8, NodeWeight: 4, ViewerWeight: 2},
	{Name: "DE", Region: "EU", Lat: 51.0, Lon: 9.0, NodeWeight: 5, ViewerWeight: 1.5},
	{Name: "GB", Region: "EU", Lat: 52.0, Lon: -1.0, NodeWeight: 4, ViewerWeight: 1},
	{Name: "FR", Region: "EU", Lat: 47.0, Lon: 2.0, NodeWeight: 3, ViewerWeight: 0.5},
	{Name: "US", Region: "NA", Lat: 39.0, Lon: -98.0, NodeWeight: 8, ViewerWeight: 2},
	{Name: "BR", Region: "SA", Lat: -14.0, Lon: -51.0, NodeWeight: 3, ViewerWeight: 0.5},
	{Name: "AU", Region: "OC", Lat: -25.0, Lon: 134.0, NodeWeight: 2, ViewerWeight: 0.5},
}

// Site is one CDN node site (a cluster of machines in the paper).
type Site struct {
	ID      int
	Country string
	Region  string
	Lat     float64
	Lon     float64
	// IXP marks sites placed at well-peered exchange points; the Brain
	// reserves some of these as last-resort relays (§4.3).
	IXP bool
	// CapacityMbps is the site's egress capacity used by utilization
	// accounting.
	CapacityMbps float64
}

// Config parameterizes world construction.
type Config struct {
	NumSites int
	// IXPFraction of sites are flagged as IXP-attached (well-peered).
	IXPFraction float64
	// CityJitterKm randomizes site placement around the country centroid
	// so same-country sites are not co-located.
	CityJitterKm float64
	// CapacityMbps is the mean site capacity; individual sites vary ±50%.
	CapacityMbps float64
}

// DefaultConfig returns sensible defaults scaled down from the paper's
// 600+ sites.
func DefaultConfig() Config {
	return Config{
		NumSites:     64,
		IXPFraction:  0.08,
		CityJitterKm: 700,
		CapacityMbps: 8000,
	}
}

// World is the synthetic geography: sites plus distance-derived link
// metrics. Worlds are immutable after construction.
type World struct {
	Sites []Site
	// inflation[i*n+j] is the per-pair path-stretch factor applied to the
	// great-circle RTT (routing detours, queuing headroom).
	inflation []float64
	// peering[i] in [0,1] grades a site's interconnect quality. Paths
	// between two poorly peered sites pay a large transit penalty, so
	// relaying through a well-peered hub often beats the direct link —
	// the triangle-inequality violation that makes overlay relaying (and
	// the paper's dominant 2-hop paths) worthwhile.
	peering []float64
}

// Build constructs a world. Construction is deterministic for a given
// rng stream state.
func Build(cfg Config, rng *sim.Rand) *World {
	if cfg.NumSites <= 0 {
		panic("geo: NumSites must be positive")
	}
	w := &World{Sites: make([]Site, 0, cfg.NumSites)}

	totalWeight := 0.0
	for _, c := range Countries {
		totalWeight += c.NodeWeight
	}
	// Allocate sites per country by weight (largest remainder).
	type alloc struct {
		c     Country
		exact float64
		n     int
	}
	allocs := make([]alloc, len(Countries))
	assigned := 0
	for i, c := range Countries {
		exact := float64(cfg.NumSites) * c.NodeWeight / totalWeight
		n := int(exact)
		allocs[i] = alloc{c: c, exact: exact, n: n}
		assigned += n
	}
	for assigned < cfg.NumSites {
		best := 0
		bestFrac := -1.0
		for i, a := range allocs {
			frac := a.exact - float64(a.n)
			if frac > bestFrac {
				bestFrac = frac
				best = i
			}
		}
		allocs[best].n++
		assigned++
	}

	id := 0
	for _, a := range allocs {
		for k := 0; k < a.n; k++ {
			jitterLat := rng.Normal(0, cfg.CityJitterKm/111) // ~111 km/deg
			jitterLon := rng.Normal(0, cfg.CityJitterKm/111)
			cap := cfg.CapacityMbps * (0.5 + rng.Float64())
			w.Sites = append(w.Sites, Site{
				ID:           id,
				Country:      a.c.Name,
				Region:       a.c.Region,
				Lat:          clampLat(a.c.Lat + jitterLat),
				Lon:          wrapLon(a.c.Lon + jitterLon),
				IXP:          rng.Bernoulli(cfg.IXPFraction),
				CapacityMbps: cap,
			})
			id++
		}
	}
	// Guarantee at least two IXP sites so last-resort paths always exist.
	ixps := 0
	for _, s := range w.Sites {
		if s.IXP {
			ixps++
		}
	}
	for i := 0; ixps < 2 && i < len(w.Sites); i++ {
		if !w.Sites[i].IXP {
			w.Sites[i].IXP = true
			ixps++
		}
	}

	n := len(w.Sites)
	w.peering = make([]float64, n)
	for i, s := range w.Sites {
		if s.IXP {
			w.peering[i] = 0.85 + rng.Float64()*0.15
		} else {
			w.peering[i] = rng.Float64() * 0.6
		}
	}
	w.inflation = make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if j < i {
				w.inflation[i*n+j] = w.inflation[j*n+i]
				continue
			}
			// Paths inside one country are better engineered than
			// international transit. Inflation covers routing detours and
			// inter-ISP peering indirection: production CDN paths (e.g.
			// cross-ISP routes in the paper's home market) run far above
			// fiber propagation, which is what makes the paper's per-hop
			// delays tens of ms even intra-country.
			base := 2.0
			if w.Sites[i].Country != w.Sites[j].Country {
				base = 2.3
			}
			w.inflation[i*n+j] = base + rng.Float64()*0.7
		}
	}
	return w
}

func clampLat(l float64) float64 { return math.Max(-85, math.Min(85, l)) }

func wrapLon(l float64) float64 {
	for l > 180 {
		l -= 360
	}
	for l < -180 {
		l += 360
	}
	return l
}

// haversineKm returns the great-circle distance in km.
func haversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKm = 6371
	rad := math.Pi / 180
	dLat := (lat2 - lat1) * rad
	dLon := (lon2 - lon1) * rad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*rad)*math.Cos(lat2*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// fiber propagation: light travels ~200 km per ms in fiber, and RTT is
// there-and-back.
const kmPerMsOneWay = 200.0

// RTT returns the baseline RTT between two sites (no queuing):
// distance-derived propagation times the path-stretch inflation, plus a
// deterministic per-pair transit penalty modeling ISP interconnect and
// access aggregation.
func (w *World) RTT(i, j int) time.Duration {
	if i == j {
		return 500 * time.Microsecond // intra-cluster
	}
	si, sj := w.Sites[i], w.Sites[j]
	dist := haversineKm(si.Lat, si.Lon, sj.Lat, sj.Lon)
	oneWayMs := dist / kmPerMsOneWay * w.inflation[i*len(w.Sites)+j]
	rtt := time.Duration(2 * oneWayMs * float64(time.Millisecond))
	rtt += w.transitPenalty(i, j)
	const floor = 4 * time.Millisecond // same-metro floor
	if rtt < floor {
		rtt = floor
	}
	return rtt
}

// transitPenalty models ISP interconnect indirection: links between two
// poorly peered sites pay heavily (cross-ISP detours), links touching a
// well-peered hub are cheap. A small deterministic per-pair jitter keeps
// pairs distinct.
func (w *World) transitPenalty(i, j int) time.Duration {
	qi, qj := w.peering[i], w.peering[j]
	ms := 14 + 170*(1-qi)*(1-qj)
	if w.Sites[i].Country != w.Sites[j].Country {
		// International transit is punishing unless both ends sit at
		// well-peered exchange points (submarine-cable landing hubs), so
		// cross-border traffic prefers edge→hub→hub→edge chains.
		ms *= 1 + 1.3*(1-qi*qj)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "transit:%d-%d", min(i, j), max(i, j))
	ms += float64(h.Sum64() % 12)
	return time.Duration(ms * float64(time.Millisecond))
}

// Peering exposes a site's interconnect grade.
func (w *World) Peering(i int) float64 { return w.peering[i] }

// BaseLoss returns the quiet-hour packet loss rate of the i→j link. The
// paper's backbone is nearly lossless (< 0.175% even at peak; Figure 13);
// the diurnal component is added by the emulator on top of this base.
func (w *World) BaseLoss(i, j int) float64 {
	si, sj := w.Sites[i], w.Sites[j]
	base := 0.0004 // 0.04%
	if si.Country != sj.Country {
		base = 0.0008
	}
	// Deterministic per-pair variation so links differ but rebuilds agree.
	h := fnv.New64a()
	fmt.Fprintf(h, "%d-%d", min(i, j), max(i, j))
	frac := float64(h.Sum64()%1000) / 1000
	return base * (0.5 + frac)
}

// LocalHour returns the local hour-of-day [0,24) at longitude lon for the
// given simulation time (time 0 is UTC midnight).
func LocalHour(t time.Duration, lon float64) float64 {
	utcHours := t.Hours()
	local := math.Mod(utcHours+lon/15, 24)
	if local < 0 {
		local += 24
	}
	return local
}

// DiurnalFactor returns the load multiplier in (0,1] for the given local
// hour: a trough around 4–5 am and a peak between 20:00 and 23:00,
// matching the shape in Figures 10(b), 10(c) and 13.
func DiurnalFactor(localHour float64) float64 {
	// Two-Gaussian bump: a broad daytime shoulder plus a sharp evening peak.
	evening := math.Exp(-sq(angularHourDist(localHour, 21)) / (2 * sq(2.4)))
	daytime := math.Exp(-sq(angularHourDist(localHour, 14)) / (2 * sq(4.5)))
	f := 0.18 + 0.62*evening + 0.35*daytime
	if f > 1 {
		f = 1
	}
	return f
}

func sq(x float64) float64 { return x * x }

// angularHourDist returns the circular distance between two hours-of-day.
func angularHourDist(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 12 {
		d = 24 - d
	}
	return d
}

// SitesInCountry returns the IDs of sites in the given country.
func (w *World) SitesInCountry(country string) []int {
	var out []int
	for _, s := range w.Sites {
		if s.Country == country {
			out = append(out, s.ID)
		}
	}
	return out
}

// IXPSites returns the IDs of IXP-attached sites.
func (w *World) IXPSites() []int {
	var out []int
	for _, s := range w.Sites {
		if s.IXP {
			out = append(out, s.ID)
		}
	}
	return out
}

// NearestPeers returns the m other sites nearest to id by RTT, in
// ascending RTT order with ties broken by lower site ID (deterministic).
// m at or above the peer count returns every other site. Callers building
// a sparse overlay typically union the result with IXPSites so last-resort
// detours stay reachable.
func (w *World) NearestPeers(id, m int) []int {
	n := len(w.Sites)
	if m <= 0 || n <= 1 {
		return nil
	}
	ids := make([]int, 0, n-1)
	for j := 0; j < n; j++ {
		if j != id {
			ids = append(ids, j)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		ra, rb := w.RTT(id, ids[a]), w.RTT(id, ids[b])
		if ra != rb {
			return ra < rb
		}
		return ids[a] < ids[b]
	})
	if m < len(ids) {
		ids = ids[:m:m]
	}
	return ids
}

// Regions returns the sorted distinct region names of the world's sites.
func (w *World) Regions() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range w.Sites {
		if !seen[s.Region] {
			seen[s.Region] = true
			out = append(out, s.Region)
		}
	}
	sort.Strings(out)
	return out
}

// RegionGateways returns, per region, the sites cross-region traffic
// should stitch through: the region's IXP-attached sites, ordered by
// descending peering grade (ties by lower ID). A region with no IXP —
// Build concentrates IXPs in the home market — still gets one gateway,
// its best-peered site, so every region pair has stitch candidates.
func (w *World) RegionGateways() map[string][]int {
	out := make(map[string][]int)
	for _, s := range w.Sites {
		if s.IXP {
			out[s.Region] = append(out[s.Region], s.ID)
		}
	}
	for _, region := range w.Regions() {
		if len(out[region]) == 0 {
			best, bestQ := -1, -1.0
			for _, s := range w.Sites {
				if s.Region == region && w.peering[s.ID] > bestQ {
					best, bestQ = s.ID, w.peering[s.ID]
				}
			}
			out[region] = []int{best}
			continue
		}
		g := out[region]
		sort.Slice(g, func(a, b int) bool {
			if w.peering[g[a]] != w.peering[g[b]] {
				return w.peering[g[a]] > w.peering[g[b]]
			}
			return g[a] < g[b]
		})
	}
	return out
}

// NearestSite returns the site closest to the given coordinates; used by
// the DNS-redirection substitute that maps clients to edge nodes.
func (w *World) NearestSite(lat, lon float64) int {
	best, bestD := 0, math.Inf(1)
	for _, s := range w.Sites {
		d := haversineKm(lat, lon, s.Lat, s.Lon)
		if d < bestD {
			bestD = d
			best = s.ID
		}
	}
	return best
}

// ViewerOrigin draws a viewer location: a country chosen by ViewerWeight,
// with metro-scale jitter around the centroid.
func ViewerOrigin(rng *sim.Rand) (lat, lon float64, country string) {
	total := 0.0
	for _, c := range Countries {
		total += c.ViewerWeight
	}
	u := rng.Float64() * total
	for _, c := range Countries {
		if u < c.ViewerWeight {
			return clampLat(c.Lat + rng.Normal(0, 3)), wrapLon(c.Lon + rng.Normal(0, 3)), c.Name
		}
		u -= c.ViewerWeight
	}
	c := Countries[len(Countries)-1]
	return c.Lat, c.Lon, c.Name
}
