package geo

import (
	"testing"
	"testing/quick"
	"time"

	"livenet/internal/sim"
)

func testWorld(t *testing.T, n int) *World {
	t.Helper()
	rng := sim.NewSource(1).Stream("geo")
	cfg := DefaultConfig()
	cfg.NumSites = n
	return Build(cfg, rng)
}

func TestBuildSiteCount(t *testing.T) {
	for _, n := range []int{1, 12, 64, 200} {
		w := testWorld(t, n)
		if len(w.Sites) != n {
			t.Fatalf("n=%d: got %d sites", n, len(w.Sites))
		}
	}
}

func TestHomeMarketDominates(t *testing.T) {
	w := testWorld(t, 100)
	home := len(w.SitesInCountry("CN"))
	if home < 40 {
		t.Fatalf("home market has %d/100 sites, want >= 40", home)
	}
}

func TestSiteIDsSequential(t *testing.T) {
	w := testWorld(t, 50)
	for i, s := range w.Sites {
		if s.ID != i {
			t.Fatalf("site %d has ID %d", i, s.ID)
		}
	}
}

func TestRTTSymmetricPositive(t *testing.T) {
	w := testWorld(t, 40)
	for i := 0; i < 40; i += 7 {
		for j := 0; j < 40; j += 5 {
			a, b := w.RTT(i, j), w.RTT(j, i)
			if a != b {
				t.Fatalf("RTT not symmetric: %v vs %v", a, b)
			}
			if a <= 0 {
				t.Fatalf("RTT(%d,%d) = %v", i, j, a)
			}
		}
	}
}

func TestRTTSelfSmall(t *testing.T) {
	w := testWorld(t, 10)
	if w.RTT(3, 3) >= time.Millisecond {
		t.Fatalf("self RTT = %v", w.RTT(3, 3))
	}
}

func TestInterNationalRTTLarger(t *testing.T) {
	w := testWorld(t, 100)
	cn := w.SitesInCountry("CN")
	us := w.SitesInCountry("US")
	if len(cn) < 2 || len(us) < 1 {
		t.Skip("world too small for this check")
	}
	intra := w.RTT(cn[0], cn[1])
	inter := w.RTT(cn[0], us[0])
	if inter <= intra {
		t.Fatalf("CN-US RTT %v should exceed CN-CN RTT %v", inter, intra)
	}
	if inter < 50*time.Millisecond {
		t.Fatalf("transpacific RTT %v implausibly small", inter)
	}
}

func TestBaseLossBounds(t *testing.T) {
	w := testWorld(t, 30)
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if i == j {
				continue
			}
			l := w.BaseLoss(i, j)
			if l < 0 || l > 0.00175 {
				t.Fatalf("base loss %v out of paper's near-lossless range", l)
			}
			if l != w.BaseLoss(j, i) {
				t.Fatal("base loss not symmetric")
			}
		}
	}
}

func TestDiurnalShape(t *testing.T) {
	peak := DiurnalFactor(21)
	trough := DiurnalFactor(4.5)
	noon := DiurnalFactor(13)
	if peak <= noon || noon <= trough {
		t.Fatalf("diurnal shape wrong: peak=%v noon=%v trough=%v", peak, noon, trough)
	}
	if peak > 1 || trough <= 0 {
		t.Fatalf("diurnal out of (0,1]: peak=%v trough=%v", peak, trough)
	}
}

func TestDiurnalFactorBounded(t *testing.T) {
	if err := quick.Check(func(h uint16) bool {
		f := DiurnalFactor(float64(h%2400) / 100)
		return f > 0 && f <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalHour(t *testing.T) {
	// At UTC noon, longitude 108E is 7.2 hours ahead => 19.2 local.
	got := LocalHour(12*time.Hour, 108)
	if got < 19.1 || got > 19.3 {
		t.Fatalf("LocalHour = %v", got)
	}
	// Wraps across midnight.
	got = LocalHour(22*time.Hour, 108)
	if got < 5.1 || got > 5.3 {
		t.Fatalf("LocalHour wrap = %v", got)
	}
	// Negative longitudes wrap the other way.
	got = LocalHour(2*time.Hour, -98)
	if got < 19.4 || got > 19.6 {
		t.Fatalf("LocalHour negative lon = %v", got)
	}
}

func TestIXPGuaranteed(t *testing.T) {
	rng := sim.NewSource(2).Stream("geo")
	cfg := DefaultConfig()
	cfg.NumSites = 5
	cfg.IXPFraction = 0 // force the guarantee path
	w := Build(cfg, rng)
	if len(w.IXPSites()) < 2 {
		t.Fatalf("want >= 2 IXP sites, got %d", len(w.IXPSites()))
	}
}

func TestNearestSite(t *testing.T) {
	w := testWorld(t, 60)
	for _, s := range w.Sites {
		got := w.NearestSite(s.Lat, s.Lon)
		gs := w.Sites[got]
		// Nearest to a site's own location must be in a plausible distance
		// (could be a co-located sibling, so just bound the distance).
		if d := haversineKm(s.Lat, s.Lon, gs.Lat, gs.Lon); d > 1 {
			t.Fatalf("nearest site to site %d is %d at %v km", s.ID, got, d)
		}
	}
}

func TestViewerOriginMostlyHome(t *testing.T) {
	rng := sim.NewSource(3).Stream("viewers")
	home := 0
	const n = 5000
	for i := 0; i < n; i++ {
		_, _, c := ViewerOrigin(rng)
		if c == "CN" {
			home++
		}
	}
	frac := float64(home) / n
	if frac < 0.70 || frac > 0.95 {
		t.Fatalf("home viewer fraction = %v, want ~0.82", frac)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(DefaultConfig(), sim.NewSource(7).Stream("geo"))
	b := Build(DefaultConfig(), sim.NewSource(7).Stream("geo"))
	for i := range a.Sites {
		if a.Sites[i] != b.Sites[i] {
			t.Fatal("same seed produced different worlds")
		}
	}
	if a.RTT(0, len(a.Sites)-1) != b.RTT(0, len(b.Sites)-1) {
		t.Fatal("same seed produced different RTTs")
	}
}

func TestHaversineKnown(t *testing.T) {
	// Beijing to Shanghai is roughly 1070 km.
	d := haversineKm(39.9, 116.4, 31.2, 121.5)
	if d < 950 || d > 1200 {
		t.Fatalf("Beijing-Shanghai = %v km", d)
	}
	if haversineKm(10, 20, 10, 20) != 0 {
		t.Fatal("identical points should be 0 km apart")
	}
}

func TestWrapLon(t *testing.T) {
	if got := wrapLon(190); got != -170 {
		t.Fatalf("wrapLon(190) = %v", got)
	}
	if got := wrapLon(-200); got != 160 {
		t.Fatalf("wrapLon(-200) = %v", got)
	}
}

func TestNearestPeers(t *testing.T) {
	w := testWorld(t, 40)
	const m = 8
	for id := 0; id < 40; id += 7 {
		ps := w.NearestPeers(id, m)
		if len(ps) != m {
			t.Fatalf("id=%d: got %d peers, want %d", id, len(ps), m)
		}
		seen := map[int]bool{}
		for i, p := range ps {
			if p == id {
				t.Fatalf("id=%d: NearestPeers contains self", id)
			}
			if seen[p] {
				t.Fatalf("id=%d: duplicate peer %d", id, p)
			}
			seen[p] = true
			if i > 0 && w.RTT(id, ps[i-1]) > w.RTT(id, p) {
				t.Fatalf("id=%d: peers not in ascending RTT order", id)
			}
		}
		// Every excluded site must be at least as far as the kept ones.
		worst := w.RTT(id, ps[m-1])
		for j := 0; j < 40; j++ {
			if j != id && !seen[j] && w.RTT(id, j) < worst {
				t.Fatalf("id=%d: excluded site %d closer than kept peer", id, j)
			}
		}
		again := w.NearestPeers(id, m)
		for i := range ps {
			if ps[i] != again[i] {
				t.Fatalf("id=%d: NearestPeers not deterministic", id)
			}
		}
	}
	if got := w.NearestPeers(3, 100); len(got) != 39 {
		t.Fatalf("oversized m: got %d peers, want 39", len(got))
	}
	if got := w.NearestPeers(3, 0); got != nil {
		t.Fatalf("m=0: got %v, want nil", got)
	}
}
