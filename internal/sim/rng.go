package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source derives independent, label-addressed deterministic random streams
// from one master seed. Requesting the same label twice returns the same
// stream object; requesting streams in a different order does not change
// any stream's sequence, which keeps simulations reproducible as code
// evolves.
type Source struct {
	seed    int64
	streams map[string]*Rand
}

// NewSource returns a stream source rooted at seed.
func NewSource(seed int64) *Source {
	return &Source{seed: seed, streams: make(map[string]*Rand)}
}

// Stream returns the stream for label, creating it on first use.
func (s *Source) Stream(label string) *Rand {
	if r, ok := s.streams[label]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(label))
	const golden = int64(0x9E3779B97F4A7C15 >> 1)
	derived := int64(h.Sum64()) ^ (s.seed * golden)
	r := &Rand{Rand: rand.New(rand.NewSource(derived))}
	s.streams[label] = r
	return r
}

// Rand wraps math/rand.Rand with the distributions the simulation needs.
type Rand struct {
	*rand.Rand
}

// Bernoulli reports true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Normal returns a normally distributed value.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return r.NormFloat64()*stddev + mean
}

// LogNormal returns a log-normally distributed value parameterized by the
// mean and stddev of the underlying normal.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// Pareto returns a bounded Pareto sample with the given minimum and shape
// alpha (> 0). Heavy-tailed; used for view durations.
func (r *Rand) Pareto(xmin, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xmin / math.Pow(u, 1/alpha)
}

// Binomial returns a Binomial(n, p) variate. Small n counts Bernoulli
// trials exactly; large n with a small mean uses CDF inversion; the rest
// uses a clamped normal approximation. The cohort machinery splits
// aggregate viewer counts across channels/edges/rungs with sequential
// conditional binomials, so this needs to be fast at n in the millions
// while staying deterministic for a given draw sequence.
func (r *Rand) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 32 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	if mean < 12 || float64(n)*(1-p) < 12 {
		// Inversion on whichever tail is small.
		if p > 0.5 {
			return n - r.Binomial(n, 1-p)
		}
		// BINV: walk the CDF from k=0. q^n can underflow only when
		// mean >= ~700, excluded by the mean < 12 branch.
		q := math.Pow(1-p, float64(n))
		u := r.Float64()
		k, acc, pk := 0, q, q
		ratio := p / (1 - p)
		for u > acc && k < n {
			k++
			pk *= ratio * float64(n-k+1) / float64(k)
			acc += pk
		}
		return k
	}
	sd := math.Sqrt(mean * (1 - p))
	k := int(r.Normal(mean, sd) + 0.5)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Zipf draws ranks in [0, n) with exponent s (classic Zipf popularity:
// rank 0 is most popular). It uses inverse-CDF sampling over the
// precomputed harmonic weights for determinism and O(log n) draws.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over n ranks with exponent s.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf needs n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Draw returns a rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
