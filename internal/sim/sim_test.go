package sim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestLoopOrdering(t *testing.T) {
	l := NewLoop(1)
	var got []int
	l.AfterFunc(30*time.Millisecond, func() { got = append(got, 3) })
	l.AfterFunc(10*time.Millisecond, func() { got = append(got, 1) })
	l.AfterFunc(20*time.Millisecond, func() { got = append(got, 2) })
	l.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if l.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", l.Now())
	}
}

func TestLoopFIFOAtSameInstant(t *testing.T) {
	l := NewLoop(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.AfterFunc(5*time.Millisecond, func() { got = append(got, i) })
	}
	l.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestLoopNestedScheduling(t *testing.T) {
	l := NewLoop(1)
	var fired []time.Duration
	l.AfterFunc(10*time.Millisecond, func() {
		fired = append(fired, l.Now())
		l.AfterFunc(15*time.Millisecond, func() {
			fired = append(fired, l.Now())
		})
	})
	l.Run()
	if len(fired) != 2 || fired[0] != 10*time.Millisecond || fired[1] != 25*time.Millisecond {
		t.Fatalf("fired = %v", fired)
	}
}

func TestTimerStop(t *testing.T) {
	l := NewLoop(1)
	ran := false
	tm := l.AfterFunc(10*time.Millisecond, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	l.Run()
	if ran {
		t.Fatal("stopped timer ran")
	}
	if l.Pending() != 0 {
		t.Fatalf("pending = %d after stop", l.Pending())
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	l := NewLoop(1)
	tm := l.AfterFunc(0, func() {})
	l.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

func TestRunUntil(t *testing.T) {
	l := NewLoop(1)
	count := 0
	for i := 1; i <= 5; i++ {
		l.AfterFunc(time.Duration(i)*time.Second, func() { count++ })
	}
	l.RunUntil(3 * time.Second)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if l.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", l.Now())
	}
	l.RunUntil(10 * time.Second)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if l.Now() != 10*time.Second {
		t.Fatalf("Now = %v, want 10s (clock advances past last event)", l.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	l := NewLoop(1)
	l.AfterFunc(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("want panic scheduling in the past")
			}
		}()
		l.At(0, func() {})
	})
	l.Run()
}

func TestNegativeDelayClamped(t *testing.T) {
	l := NewLoop(1)
	ran := false
	l.AfterFunc(-time.Second, func() { ran = true })
	l.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
}

func TestRNGDeterministicAcrossOrder(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	// Request in different orders; streams must match anyway.
	a1 := a.Stream("alpha")
	_ = a.Stream("beta")
	_ = b.Stream("beta")
	b1 := b.Stream("alpha")
	for i := 0; i < 100; i++ {
		if a1.Int63() != b1.Int63() {
			t.Fatal("streams diverge for identical (seed,label)")
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	s := NewSource(7)
	x := s.Stream("x").Int63()
	y := s.Stream("y").Int63()
	if x == y {
		t.Fatal("different labels produced identical first draw (suspicious)")
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewSource(1).Stream("b")
	if r.Bernoulli(0) {
		t.Fatal("p=0 fired")
	}
	if !r.Bernoulli(1) {
		t.Fatal("p=1 did not fire")
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewSource(3).Stream("zipf")
	z := NewZipf(r, 1000, 1.0)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[500] {
		t.Fatalf("zipf not skewed: top=%d mid=%d tail=%d", counts[0], counts[10], counts[500])
	}
}

func TestZipfDrawInRange(t *testing.T) {
	r := NewSource(4).Stream("zipf2")
	if err := quick.Check(func(n uint8) bool {
		size := int(n%100) + 1
		z := NewZipf(r, size, 1.2)
		for i := 0; i < 50; i++ {
			d := z.Draw()
			if d < 0 || d >= size {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParetoAtLeastMin(t *testing.T) {
	r := NewSource(5).Stream("pareto")
	if err := quick.Check(func(seedUnused uint16) bool {
		v := r.Pareto(30, 1.5)
		return v >= 30
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRealClockMonotonic(t *testing.T) {
	c := NewRealClock()
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	if b := c.Now(); b <= a {
		t.Fatalf("real clock not advancing: %v then %v", a, b)
	}
}

func TestRealClockAfterFunc(t *testing.T) {
	c := NewRealClock()
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("real AfterFunc never fired")
	}
}

func TestLoopDeterminism(t *testing.T) {
	run := func() []int64 {
		l := NewLoop(99)
		r := l.RNG("load")
		var out []int64
		var tick func()
		tick = func() {
			out = append(out, r.Int63n(1000))
			if len(out) < 50 {
				l.AfterFunc(time.Duration(r.Int63n(int64(time.Second))), tick)
			}
		}
		l.AfterFunc(0, tick)
		l.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("identical seeds produced different runs")
		}
	}
}

func TestStaleTimerHandleCannotCancelRecycledEvent(t *testing.T) {
	l := NewLoop(1)
	// Fire A; its event storage is recycled for B. A's stale handle must
	// not cancel B.
	tmA := l.AfterFunc(time.Millisecond, func() {})
	l.Run()
	ranB := false
	l.AfterFunc(time.Millisecond, func() { ranB = true })
	if tmA.Stop() {
		t.Fatal("stale handle Stop reported true")
	}
	l.Run()
	if !ranB {
		t.Fatal("stale handle cancelled the recycled event")
	}
}

func TestStopRecyclesEvent(t *testing.T) {
	l := NewLoop(1)
	tm := l.AfterFunc(time.Millisecond, func() { t.Fatal("stopped timer ran") })
	if !tm.Stop() {
		t.Fatal("Stop reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	ran := false
	l.AfterFunc(time.Millisecond, func() { ran = true })
	if tm.Stop() {
		t.Fatal("stale handle cancelled the reused event")
	}
	l.Run()
	if !ran {
		t.Fatal("reused event did not run")
	}
}

func TestAtMsgDeliversInOrder(t *testing.T) {
	l := NewLoop(1)
	type delivery struct {
		a, b int
		data string
	}
	var got []delivery
	h := func(a, b int, data []byte) { got = append(got, delivery{a, b, string(data)}) }
	l.AtMsg(20*time.Millisecond, h, 1, 2, []byte("second"))
	l.AtMsg(10*time.Millisecond, h, 3, 4, []byte("first"))
	l.AfterFunc(15*time.Millisecond, func() {
		l.AtMsg(l.Now()+10*time.Millisecond, h, 5, 6, []byte("third"))
	})
	l.Run()
	want := []delivery{{3, 4, "first"}, {1, 2, "second"}, {5, 6, "third"}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestAtMsgInterleavesFIFOWithFuncEvents(t *testing.T) {
	l := NewLoop(1)
	var got []int
	l.AfterFunc(time.Millisecond, func() { got = append(got, 0) })
	l.AtMsg(l.Now()+time.Millisecond, func(a, b int, data []byte) { got = append(got, a) }, 1, 0, nil)
	l.AfterFunc(time.Millisecond, func() { got = append(got, 2) })
	l.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant mixed events not FIFO: %v", got)
		}
	}
}

func TestEventReuseKeepsDeterminism(t *testing.T) {
	// Heavy schedule/fire churn through the free list must not disturb
	// ordering: same run twice, byte-identical trace.
	run := func() []string {
		l := NewLoop(7)
		r := l.RNG("churn")
		var out []string
		var tick func()
		n := 0
		tick = func() {
			n++
			if n > 300 {
				return
			}
			out = append(out, fmt.Sprintf("%d@%v", n, l.Now()))
			// Schedule three, stop one: exercises recycle on both paths.
			tm := l.AfterFunc(time.Duration(r.Int63n(int64(time.Millisecond))), func() {})
			l.AfterFunc(time.Duration(r.Int63n(int64(time.Millisecond))), tick)
			if r.Bernoulli(0.5) {
				tm.Stop()
			}
		}
		l.AfterFunc(0, tick)
		l.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestBinomialMomentsAcrossRegimes(t *testing.T) {
	rng := NewSource(11).Stream("binom")
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.3},     // exact Bernoulli loop
		{500, 0.01},   // small-mean inversion
		{500, 0.99},   // small opposite tail
		{100000, 0.4}, // normal approximation
	}
	for _, c := range cases {
		const draws = 4000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < draws; i++ {
			k := rng.Binomial(c.n, c.p)
			if k < 0 || k > c.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", c.n, c.p, k)
			}
			sum += float64(k)
			sumSq += float64(k) * float64(k)
		}
		mean := sum / draws
		wantMean := float64(c.n) * c.p
		sd := math.Sqrt(wantMean * (1 - c.p))
		if tol := 5 * sd / math.Sqrt(draws); math.Abs(mean-wantMean) > tol+1e-9 {
			t.Errorf("Binomial(%d,%v): mean %v, want %v ± %v", c.n, c.p, mean, wantMean, tol)
		}
		variance := sumSq/draws - mean*mean
		wantVar := sd * sd
		if wantVar > 1 && math.Abs(variance-wantVar) > 0.25*wantVar {
			t.Errorf("Binomial(%d,%v): var %v, want ~%v", c.n, c.p, variance, wantVar)
		}
	}
	if rng.Binomial(0, 0.5) != 0 || rng.Binomial(10, 0) != 0 || rng.Binomial(7, 1) != 7 {
		t.Fatal("edge cases")
	}
}
