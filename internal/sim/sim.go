// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, a timer heap, and seeded random-number streams.
//
// All LiveNet components are written against the Clock interface so the
// same code runs under the simulator (fast, reproducible — used by tests
// and benchmarks) and under the real-time clock (used by the cmd/ binaries).
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Timer is a handle to a scheduled callback.
type Timer interface {
	// Stop cancels the timer. It reports whether the callback was
	// prevented from running (false if it already ran or was stopped).
	Stop() bool
}

// Clock abstracts time so components run on both virtual and real time.
type Clock interface {
	// Now returns the time elapsed since the clock's epoch.
	Now() time.Duration
	// AfterFunc schedules fn to run at Now()+d. fn runs on the clock's
	// event goroutine (the Loop goroutine for virtual clocks).
	AfterFunc(d time.Duration, fn func()) Timer
	// Schedule is AfterFunc without the Timer handle, for fire-and-forget
	// callbacks on hot paths: returning the handle through the interface
	// boxes it onto the heap, which at one timer per fan-out link per
	// ingress packet is the difference between zero and one allocation
	// per forwarded datagram.
	Schedule(d time.Duration, fn func())
}

// MsgFunc is a pre-bound message-delivery callback: AtMsg events carry
// their arguments in the event itself, so hot paths (one event per
// emulated packet) schedule without allocating a closure per call.
type MsgFunc func(a, b int, data []byte)

// event is one scheduled callback in the loop. Events are recycled
// through a free list (millions are scheduled per macro run); gen
// distinguishes incarnations so a stale Timer handle cannot cancel the
// event's next occupant.
type event struct {
	at  time.Duration
	seq uint64 // tiebreaker: FIFO among events at the same instant
	fn  func()
	// Message-delivery variant (used when fn is nil).
	msg  MsgFunc
	a, b int
	data []byte

	index int    // heap index; -1 once popped or stopped
	gen   uint64 // incarnation counter, bumped on recycle
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Loop is a single-threaded discrete-event loop with a virtual clock.
// The zero value is not usable; call NewLoop.
//
// Loop is not safe for concurrent use: all callbacks run on the goroutine
// that calls Run/RunUntil/Step, and scheduling must happen from that
// goroutine (i.e. from inside callbacks or before Run).
type Loop struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	free   []*event // recycled events (allocation diet for the hot path)
	steps  uint64
	rng    *Source
}

// NewLoop returns a loop whose clock starts at 0 and whose random streams
// all derive from seed.
func NewLoop(seed int64) *Loop {
	l := &Loop{}
	l.rng = NewSource(seed)
	return l
}

// Now returns the current virtual time.
func (l *Loop) Now() time.Duration { return l.now }

// Steps returns the number of events executed so far.
func (l *Loop) Steps() uint64 { return l.steps }

// RNG returns a derived deterministic random stream for the given label.
// The same (seed, label) pair always yields the same stream, independent
// of the order streams are requested in.
func (l *Loop) RNG(label string) *Rand { return l.rng.Stream(label) }

// loopTimer is a Timer handle; gen pins the event incarnation it was
// issued for, so a handle kept past the event's firing (and the event's
// recycling) becomes inert instead of cancelling an unrelated event.
type loopTimer struct {
	l   *Loop
	e   *event
	gen uint64
}

func (t loopTimer) Stop() bool {
	if t.e.gen != t.gen || t.e.index < 0 {
		return false
	}
	heap.Remove(&t.l.events, t.e.index)
	t.l.recycle(t.e)
	return true
}

// alloc takes an event from the free list (or the heap allocator).
func (l *Loop) alloc(t time.Duration) *event {
	var e *event
	if n := len(l.free); n > 0 {
		e = l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
	} else {
		e = &event{}
	}
	e.at = t
	e.seq = l.seq
	l.seq++
	return e
}

// recycle clears an event's payload and returns it to the free list.
// The gen bump invalidates outstanding Timer handles.
func (l *Loop) recycle(e *event) {
	e.fn = nil
	e.msg = nil
	e.data = nil
	e.index = -1
	e.gen++
	l.free = append(l.free, e)
}

// AfterFunc schedules fn at Now()+d. Negative d is treated as 0.
func (l *Loop) AfterFunc(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now+d, fn)
}

// Schedule schedules fn at Now()+d with no Timer handle. The event comes
// from the free list and fn is stored in a recycled field, so a caller
// that passes a pre-bound closure schedules without allocating.
func (l *Loop) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e := l.schedule(l.now + d)
	e.fn = fn
}

// At schedules fn at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it indicates a logic error in the caller.
func (l *Loop) At(t time.Duration, fn func()) Timer {
	e := l.schedule(t)
	e.fn = fn
	return loopTimer{l: l, e: e, gen: e.gen}
}

// AtMsg schedules h(a, b, data) at absolute virtual time t without a
// Timer handle and without a per-call closure: the arguments ride in the
// (recycled) event. This is the per-packet path of the network emulator.
func (l *Loop) AtMsg(t time.Duration, h MsgFunc, a, b int, data []byte) {
	e := l.schedule(t)
	e.msg, e.a, e.b, e.data = h, a, b, data
}

func (l *Loop) schedule(t time.Duration) *event {
	if t < l.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, l.now))
	}
	e := l.alloc(t)
	heap.Push(&l.events, e)
	return e
}

// Step executes the next event, advancing the clock to its deadline.
// It reports whether an event was executed.
func (l *Loop) Step() bool {
	if len(l.events) == 0 {
		return false
	}
	e := heap.Pop(&l.events).(*event)
	l.now = e.at
	l.steps++
	fn, msg, a, b, data := e.fn, e.msg, e.a, e.b, e.data
	// Recycle before invoking so the callback can immediately reuse the
	// slot for events it schedules.
	l.recycle(e)
	if fn != nil {
		fn()
	} else if msg != nil {
		msg(a, b, data)
	}
	return true
}

// Run executes events until none remain.
func (l *Loop) Run() {
	for l.Step() {
	}
}

// RunUntil executes events with deadlines <= t, then advances the clock
// to exactly t (even if no event fired at t).
func (l *Loop) RunUntil(t time.Duration) {
	for len(l.events) > 0 && l.events[0].at <= t {
		l.Step()
	}
	if t > l.now {
		l.now = t
	}
}

// Pending returns the number of scheduled events.
func (l *Loop) Pending() int { return len(l.events) }

var _ Clock = (*Loop)(nil)

// RealClock implements Clock on top of the wall clock. Its epoch is the
// time it was created. Callbacks run on their own goroutines (per
// time.AfterFunc), so components used with RealClock must be safe for
// the concurrency they create.
type RealClock struct {
	epoch time.Time
}

// NewRealClock returns a Clock backed by the wall clock.
func NewRealClock() *RealClock { return &RealClock{epoch: time.Now()} }

// Now returns the time elapsed since the clock was created.
func (c *RealClock) Now() time.Duration { return time.Since(c.epoch) }

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() bool { return t.t.Stop() }

// AfterFunc schedules fn on the wall clock.
func (c *RealClock) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{t: time.AfterFunc(d, fn)}
}

// Schedule schedules fn on the wall clock, discarding the timer handle.
func (c *RealClock) Schedule(d time.Duration, fn func()) {
	time.AfterFunc(d, fn)
}

var _ Clock = (*RealClock)(nil)
