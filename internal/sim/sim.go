// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, a timer heap, and seeded random-number streams.
//
// All LiveNet components are written against the Clock interface so the
// same code runs under the simulator (fast, reproducible — used by tests
// and benchmarks) and under the real-time clock (used by the cmd/ binaries).
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Timer is a handle to a scheduled callback.
type Timer interface {
	// Stop cancels the timer. It reports whether the callback was
	// prevented from running (false if it already ran or was stopped).
	Stop() bool
}

// Clock abstracts time so components run on both virtual and real time.
type Clock interface {
	// Now returns the time elapsed since the clock's epoch.
	Now() time.Duration
	// AfterFunc schedules fn to run at Now()+d. fn runs on the clock's
	// event goroutine (the Loop goroutine for virtual clocks).
	AfterFunc(d time.Duration, fn func()) Timer
}

// event is one scheduled callback in the loop.
type event struct {
	at    time.Duration
	seq   uint64 // tiebreaker: FIFO among events at the same instant
	fn    func()
	index int // heap index; -1 once popped or stopped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Loop is a single-threaded discrete-event loop with a virtual clock.
// The zero value is not usable; call NewLoop.
//
// Loop is not safe for concurrent use: all callbacks run on the goroutine
// that calls Run/RunUntil/Step, and scheduling must happen from that
// goroutine (i.e. from inside callbacks or before Run).
type Loop struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	steps  uint64
	rng    *Source
}

// NewLoop returns a loop whose clock starts at 0 and whose random streams
// all derive from seed.
func NewLoop(seed int64) *Loop {
	l := &Loop{}
	l.rng = NewSource(seed)
	return l
}

// Now returns the current virtual time.
func (l *Loop) Now() time.Duration { return l.now }

// Steps returns the number of events executed so far.
func (l *Loop) Steps() uint64 { return l.steps }

// RNG returns a derived deterministic random stream for the given label.
// The same (seed, label) pair always yields the same stream, independent
// of the order streams are requested in.
func (l *Loop) RNG(label string) *Rand { return l.rng.Stream(label) }

type loopTimer struct {
	l *Loop
	e *event
}

func (t *loopTimer) Stop() bool {
	if t.e.index < 0 {
		return false
	}
	heap.Remove(&t.l.events, t.e.index)
	t.e.index = -1
	t.e.fn = nil
	return true
}

// AfterFunc schedules fn at Now()+d. Negative d is treated as 0.
func (l *Loop) AfterFunc(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now+d, fn)
}

// At schedules fn at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it indicates a logic error in the caller.
func (l *Loop) At(t time.Duration, fn func()) Timer {
	if t < l.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, l.now))
	}
	e := &event{at: t, seq: l.seq, fn: fn}
	l.seq++
	heap.Push(&l.events, e)
	return &loopTimer{l: l, e: e}
}

// Step executes the next event, advancing the clock to its deadline.
// It reports whether an event was executed.
func (l *Loop) Step() bool {
	if len(l.events) == 0 {
		return false
	}
	e := heap.Pop(&l.events).(*event)
	l.now = e.at
	l.steps++
	fn := e.fn
	e.fn = nil
	fn()
	return true
}

// Run executes events until none remain.
func (l *Loop) Run() {
	for l.Step() {
	}
}

// RunUntil executes events with deadlines <= t, then advances the clock
// to exactly t (even if no event fired at t).
func (l *Loop) RunUntil(t time.Duration) {
	for len(l.events) > 0 && l.events[0].at <= t {
		l.Step()
	}
	if t > l.now {
		l.now = t
	}
}

// Pending returns the number of scheduled events.
func (l *Loop) Pending() int { return len(l.events) }

var _ Clock = (*Loop)(nil)

// RealClock implements Clock on top of the wall clock. Its epoch is the
// time it was created. Callbacks run on their own goroutines (per
// time.AfterFunc), so components used with RealClock must be safe for
// the concurrency they create.
type RealClock struct {
	epoch time.Time
}

// NewRealClock returns a Clock backed by the wall clock.
func NewRealClock() *RealClock { return &RealClock{epoch: time.Now()} }

// Now returns the time elapsed since the clock was created.
func (c *RealClock) Now() time.Duration { return time.Since(c.epoch) }

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() bool { return t.t.Stop() }

// AfterFunc schedules fn on the wall clock.
func (c *RealClock) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{t: time.AfterFunc(d, fn)}
}

var _ Clock = (*RealClock)(nil)
