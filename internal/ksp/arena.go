// Arena is the reusable scratch state behind the Dijkstra/Yen core: the
// dist/prev/visited arrays, the priority queue, and the spur-mask and
// path-assembly buffers a routing epoch needs, allocated once and reused
// across every (producer, consumer) pair a worker computes. The Brain
// pins one Arena per runner worker, so a from-scratch epoch does zero
// steady-state allocations in the search itself — only the returned
// paths (which the PIB retains) are fresh.
//
// Two devices make the reuse safe without O(n) clearing:
//
//   - Generation stamps: dist/prev entries are valid only when their
//     stamp equals the arena's current generation, so "reset" is a
//     counter increment, not a memset. The spur-node mask works the same
//     way.
//
//   - A monotone radix heap keyed on math.Float64bits(dist). For
//     non-negative floats the IEEE-754 bit pattern is order-preserving,
//     and Dijkstra only ever pushes keys >= the last popped minimum, so
//     the bucket invariant holds with full float precision — this is the
//     bucket-queue family (Dial/radix) without the quantization error a
//     Dial bucket array would impose on fractional link weights.
//
// An Arena is not safe for concurrent use; give each goroutine its own.
package ksp

import (
	"math"
	"math/bits"
	"sync"
)

// rhEntry is one pending (key, node) pair in the radix heap.
type rhEntry struct {
	key  uint64
	node int32
}

// radixHeap is a monotone priority queue: keys must be pushed in no less
// than the minimum most recently popped (Dijkstra guarantees this — a
// relaxation pushes dist[u]+w >= dist[u]). Bucket i holds entries whose
// key first differs from `last` at bit i-1; bucket 0 holds keys equal to
// last. Pop refills bucket 0 from the lowest nonempty bucket, advancing
// last to that bucket's minimum. Stale entries (nodes already settled)
// are skipped lazily by the caller.
type radixHeap struct {
	last    uint64
	n       int
	buckets [65][]rhEntry
}

func (h *radixHeap) reset() {
	h.last = 0
	h.n = 0
	for i := range h.buckets {
		h.buckets[i] = h.buckets[i][:0]
	}
}

func (h *radixHeap) push(key uint64, node int32) {
	i := bits.Len64(key ^ h.last)
	h.buckets[i] = append(h.buckets[i], rhEntry{key: key, node: node})
	h.n++
}

// pop removes and returns a minimum-key entry. Among equal keys the most
// recently pushed pops first — a fixed, deterministic order (the binary
// heap this replaced was also deterministic, merely with a different
// tie permutation).
func (h *radixHeap) pop() (uint64, int32) {
	if len(h.buckets[0]) == 0 {
		h.refill()
	}
	b := h.buckets[0]
	e := b[len(b)-1]
	h.buckets[0] = b[:len(b)-1]
	h.n--
	return e.key, e.node
}

// refill advances last to the smallest pending key and redistributes
// that key's bucket. Every redistributed entry lands in a strictly lower
// bucket (all entries of bucket i share the bits of `last` above i-1, so
// against the new last — the bucket's own minimum — they first differ
// below i-1), which is what bounds total redistribution work.
func (h *radixHeap) refill() {
	i := 1
	for len(h.buckets[i]) == 0 {
		i++
	}
	b := h.buckets[i]
	min := b[0].key
	for _, e := range b[1:] {
		if e.key < min {
			min = e.key
		}
	}
	h.last = min
	for _, e := range b {
		j := bits.Len64(e.key ^ min)
		h.buckets[j] = append(h.buckets[j], e)
	}
	h.buckets[i] = b[:0]
}

// Arena holds the pooled scratch for one worker. The zero value is ready
// to use; arrays grow to the largest n seen and stay.
type Arena struct {
	dist    []float64
	prev    []int32
	stamp   []uint32 // dist/prev valid when stamp[i] == gen
	settled []uint32 // node popped (final) when settled[i] == gen
	gen     uint32

	heap radixHeap

	// Yen spur mask: nodes of the root prefix are removed via stamps;
	// the removed edges all originate at the spur node, so they are a
	// short target list instead of a map.
	mask     []uint32
	maskGen  uint32
	spurFrom int
	spurTo   []int

	// Path assembly: rbuf is the read-back scratch, store the backing
	// for accepted/candidate node sequences (content is immutable once
	// committed, so store growth relocating the backing array is safe),
	// paths/cand the working lists of one Yen call.
	rbuf  []int
	store []int
	paths []Path
	cand  []Path
}

// grow sizes the per-node arrays for an n-node graph. Generations are
// deliberately left untouched: fresh zeroed arrays under any generation
// read as "nothing stamped", because every consumer advances its
// generation (nextGen / nextMaskGen) before stamping — resetting them
// here would instead wipe stamps a caller placed before the first run
// (the Yen spur mask is stamped before the search that grows the arena).
func (a *Arena) grow(n int) {
	if len(a.dist) >= n {
		return
	}
	a.dist = make([]float64, n)
	a.prev = make([]int32, n)
	a.stamp = make([]uint32, n)
	a.settled = make([]uint32, n)
	a.mask = make([]uint32, n)
}

func (a *Arena) nextGen() {
	a.gen++
	if a.gen == 0 { // wrapped: stale stamps could collide with a new run
		clear(a.stamp)
		clear(a.settled)
		a.gen = 1
	}
}

func (a *Arena) nextMaskGen() {
	a.maskGen++
	if a.maskGen == 0 {
		clear(a.mask)
		a.maskGen = 1
	}
}

// run settles nodes from src in nondecreasing distance order; if
// stop >= 0 it returns as soon as stop is settled (exact — Dijkstra
// settles in distance order). masked applies the Yen spur mask: nodes
// stamped in a.mask are unreachable, and the spurFrom→spurTo edges are
// cut. Weights must be non-negative (+Inf edges are skipped).
//
// A non-nil h turns the search into A*: h[v] must be a consistent lower
// bound on the remaining distance v→stop (the Brain passes exact
// reverse-tree distances on the unmasked graph, which lower-bound every
// masked subgraph). Keys become g+h, so the frontier beelines for stop
// instead of flooding a distance ball, and nodes that cannot reach stop
// at all (h = +Inf) are pruned outright — this is what makes a Yen spur
// search settle a handful of nodes instead of half the fleet.
func (a *Arena) run(n, src, stop int, nw NeighborWeightsFunc, masked bool, h []float64) {
	a.grow(n)
	a.nextGen()
	a.heap.reset()
	g := a.gen
	a.dist[src] = 0
	a.prev[src] = -1
	a.stamp[src] = g
	if h != nil && math.IsInf(h[src], 1) {
		return // src provably cannot reach stop
	}
	a.heap.push(0, int32(src))
	for a.heap.n > 0 {
		_, u32 := a.heap.pop()
		u := int(u32)
		if a.settled[u] == g {
			continue
		}
		a.settled[u] = g
		if u == stop {
			return
		}
		du := a.dist[u]
		nbrs, ws := nw(u)
		for i, nb := range nbrs {
			if a.settled[nb] == g {
				continue
			}
			w := ws[i]
			if math.IsInf(w, 1) {
				continue
			}
			if masked {
				if a.mask[nb] == a.maskGen {
					continue
				}
				if u == a.spurFrom && a.spurBlocked(nb) {
					continue
				}
			}
			if nd := du + w; a.stamp[nb] != g || nd < a.dist[nb] {
				key := nd
				if h != nil {
					hn := h[nb]
					if math.IsInf(hn, 1) {
						continue
					}
					key = nd + hn
				}
				a.dist[nb] = nd
				a.prev[nb] = int32(u)
				a.stamp[nb] = g
				a.heap.push(math.Float64bits(key), int32(nb))
			}
		}
	}
}

func (a *Arena) spurBlocked(nb int) bool {
	for _, t := range a.spurTo {
		if t == nb {
			return true
		}
	}
	return false
}

// pathAppend appends the settled path src→dst of the last run to out.
// On failure out is returned unchanged.
func (a *Arena) pathAppend(src, dst int, out []int) ([]int, bool) {
	g := a.gen
	if dst < 0 || dst >= len(a.stamp) || a.stamp[dst] != g {
		return out, false
	}
	base := len(out)
	for at := dst; at != -1; at = int(a.prev[at]) {
		out = append(out, at)
	}
	reverseInts(out[base:])
	if out[base] != src {
		return out[:base], false
	}
	return out, true
}

// commit copies nodes into the arena's store and returns the stored
// (immutable, capacity-clamped) slice.
func (a *Arena) commit(nodes []int) []int {
	base := len(a.store)
	a.store = append(a.store, nodes...)
	return a.store[base:len(a.store):len(a.store)]
}

// SSSP computes the single-source shortest-path tree from src. The
// returned Tree owns freshly allocated arrays (callers cache trees
// across an epoch); only the search scratch is pooled.
func (a *Arena) SSSP(n, src int, nw NeighborWeightsFunc) Tree {
	a.run(n, src, -1, nw, false, nil)
	dist := make([]float64, n)
	prev := make([]int, n)
	g := a.gen
	for i := 0; i < n; i++ {
		if a.stamp[i] == g {
			dist[i] = a.dist[i]
			prev[i] = int(a.prev[i])
		} else {
			dist[i] = math.Inf(1)
			prev[i] = -1
		}
	}
	return Tree{Src: src, Dist: dist, Prev: prev}
}

// DijkstraDist computes the distance array from src (prev discarded) —
// what the Brain's invalidation probes retain.
func (a *Arena) DijkstraDist(n, src int, nw NeighborWeightsFunc) []float64 {
	a.run(n, src, -1, nw, false, nil)
	dist := make([]float64, n)
	g := a.gen
	for i := 0; i < n; i++ {
		if a.stamp[i] == g {
			dist[i] = a.dist[i]
		} else {
			dist[i] = math.Inf(1)
		}
	}
	return dist
}

// ShortestPath returns the single shortest path src→dst.
func (a *Arena) ShortestPath(n, src, dst int, nw NeighborWeightsFunc) (Path, bool) {
	a.run(n, src, dst, nw, false, nil)
	a.rbuf = a.rbuf[:0]
	nodes, ok := a.pathAppend(src, dst, a.rbuf)
	a.rbuf = nodes[:0]
	if !ok {
		return Path{}, false
	}
	out := make([]int, len(nodes))
	copy(out, nodes)
	return Path{Nodes: out, Cost: a.dist[dst]}, true
}

// YenNW returns up to k loopless shortest paths src→dst (Yen's
// algorithm), running every search on the arena's pooled scratch.
func (a *Arena) YenNW(n, src, dst, k int, nw NeighborWeightsFunc) []Path {
	if k <= 0 || src == dst {
		return nil
	}
	a.run(n, src, dst, nw, false, nil)
	a.rbuf = a.rbuf[:0]
	nodes, ok := a.pathAppend(src, dst, a.rbuf)
	a.rbuf = nodes[:0]
	if !ok {
		return nil
	}
	return a.yenFrom(n, src, dst, k, nw, nodes, a.dist[dst], nil)
}

// YenFromTree is YenNW with the first path read from a precomputed SSSP
// tree (see the package-level YenFromTree for the contract).
func (a *Arena) YenFromTree(n, src, dst, k int, nw NeighborWeightsFunc, t Tree) []Path {
	return a.YenFromTreeH(n, src, dst, k, nw, t, nil)
}

// YenFromTreeH is YenFromTree with an optional A* heuristic for the spur
// searches: h[v] must lower-bound the v→dst distance under the same
// weights nw serves (exact reverse-tree distances are both consistent
// and maximally tight). nil h degrades to plain Dijkstra spur searches.
func (a *Arena) YenFromTreeH(n, src, dst, k int, nw NeighborWeightsFunc, t Tree, h []float64) []Path {
	if k <= 0 || src == dst {
		return nil
	}
	if dst < 0 || dst >= len(t.Dist) || math.IsInf(t.Dist[dst], 1) {
		return nil
	}
	a.rbuf = a.rbuf[:0]
	base := len(a.rbuf)
	nodes := a.rbuf
	for at := dst; at != -1; at = t.Prev[at] {
		nodes = append(nodes, at)
	}
	reverseInts(nodes[base:])
	a.rbuf = nodes[:0]
	if nodes[base] != t.Src {
		return nil
	}
	return a.yenFrom(n, src, dst, k, nw, nodes, t.Dist[dst], h)
}

// yenFrom runs Yen's spur-deviation loop seeded with the known shortest
// path. It produces the same path sequence as the pre-arena sort-based
// implementation: selecting the earliest minimum-cost candidate equals
// taking the front of a stable sort (equal-cost candidates keep their
// generation order in both), and candidate costs are summed edge-by-edge
// in path order exactly as before, so the float arithmetic is
// bit-identical.
func (a *Arena) yenFrom(n, src, dst, k int, nw NeighborWeightsFunc, firstNodes []int, firstCost float64, h []float64) []Path {
	a.grow(n) // size the mask before stamping it (run would grow too late)
	a.store = a.store[:0]
	a.paths = a.paths[:0]
	a.cand = a.cand[:0]
	a.paths = append(a.paths, Path{Nodes: a.commit(firstNodes), Cost: firstCost})

	for len(a.paths) < k {
		last := a.paths[len(a.paths)-1]
		// Each node of the previous shortest path except the final one is
		// a potential spur node.
		for i := 0; i < len(last.Nodes)-1; i++ {
			spur := last.Nodes[i]
			rootNodes := last.Nodes[:i+1]

			// Cut the outgoing edge used by every accepted path sharing
			// this root — they all leave from the spur node itself.
			a.spurFrom = spur
			a.spurTo = a.spurTo[:0]
			for _, p := range a.paths {
				if len(p.Nodes) > i && equalPrefix(p.Nodes, rootNodes) {
					a.spurTo = append(a.spurTo, p.Nodes[i+1])
				}
			}
			// Nodes of the root (except the spur) are removed to keep
			// paths loopless.
			a.nextMaskGen()
			for _, rn := range rootNodes[:i] {
				a.mask[rn] = a.maskGen
			}

			a.run(n, spur, dst, nw, true, h)
			a.rbuf = a.rbuf[:0]
			total := append(a.rbuf, rootNodes[:i]...)
			total, ok := a.pathAppend(spur, dst, total)
			a.rbuf = total[:0]
			if !ok {
				continue
			}
			cand := Path{Nodes: total, Cost: pathCostNW(total, nw)}
			if !containsPath(a.paths, cand) && !containsPath(a.cand, cand) {
				a.cand = append(a.cand, Path{Nodes: a.commit(total), Cost: cand.Cost})
			}
		}
		if len(a.cand) == 0 {
			break
		}
		// Earliest minimum: equal-cost candidates resolve by generation
		// order — the winner among ties is a function of the accepted
		// prefix and the weights alone, which the Brain's incremental
		// invalidation and the parallel≡serial guarantee both lean on.
		best := 0
		for j := 1; j < len(a.cand); j++ {
			if a.cand[j].Cost < a.cand[best].Cost {
				best = j
			}
		}
		a.paths = append(a.paths, a.cand[best])
		a.cand = append(a.cand[:best], a.cand[best+1:]...)
	}

	// Copy out: callers retain the result (the PIB caches it), so it must
	// not alias the arena's store.
	out := make([]Path, len(a.paths))
	for i, p := range a.paths {
		nodes := make([]int, len(p.Nodes))
		copy(nodes, p.Nodes)
		out[i] = Path{Nodes: nodes, Cost: p.Cost}
	}
	return out
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// arenaPool backs the package-level convenience functions: callers that
// do not manage worker-pinned arenas (tests, one-shot probes) still get
// pooled scratch. Recycling order does not affect results — an Arena is
// pure scratch.
var arenaPool = sync.Pool{New: func() any { return new(Arena) }}
