// Package ksp implements Dijkstra's shortest path and Yen's K-shortest
// loopless paths algorithm — the "KSP" step of the Streaming Brain's
// Global Routing module (§4.3). The Brain computes k=3 candidate paths per
// node pair and then filters constraint violations.
package ksp

import (
	"container/heap"
	"math"
	"sort"
)

// WeightFunc returns the weight of the directed edge from→to; it must
// return +Inf for edges that do not exist (or are masked out).
type WeightFunc func(from, to int) float64

// AdjFunc returns the out-neighbors of a node.
type AdjFunc func(id int) []int

// NeighborWeightsFunc returns a node's out-neighbors together with the
// weight of each outgoing edge (w[i] is the weight to nbrs[i]). This is
// the allocation-free expansion interface the Dijkstra core runs on:
// graph.Graph serves it from per-neighbor weight slices cached per Brain
// epoch, so the inner loop pays no per-edge map lookup. The returned
// slices are only valid until the next call.
type NeighborWeightsFunc func(id int) (nbrs []int, w []float64)

// adaptNW bridges the classic (AdjFunc, WeightFunc) pair onto the
// neighbor-weights core, reusing one scratch row across expansions.
func adaptNW(adj AdjFunc, w WeightFunc) NeighborWeightsFunc {
	var buf []float64
	return func(id int) ([]int, []float64) {
		nbrs := adj(id)
		if cap(buf) < len(nbrs) {
			buf = make([]float64, len(nbrs))
		}
		buf = buf[:len(nbrs)]
		for i, nb := range nbrs {
			buf[i] = w(id, nb)
		}
		return nbrs, buf
	}
}

// Path is a node sequence (src first, dst last) with its total cost.
type Path struct {
	Nodes []int
	Cost  float64
}

// Hops returns the number of edges in the path.
func (p Path) Hops() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

// Equal reports whether two paths visit the same node sequence.
func (p Path) Equal(q Path) bool {
	if len(p.Nodes) != len(q.Nodes) {
		return false
	}
	for i := range p.Nodes {
		if p.Nodes[i] != q.Nodes[i] {
			return false
		}
	}
	return true
}

type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Dijkstra computes shortest distances and predecessors from src over n
// nodes. Unreachable nodes have dist = +Inf and prev = -1.
func Dijkstra(n, src int, adj AdjFunc, w WeightFunc) (dist []float64, prev []int) {
	return DijkstraNW(n, src, adaptNW(adj, w))
}

// DijkstraNW is the Dijkstra core over the neighbor-weights expansion
// interface. Unreachable nodes have dist = +Inf and prev = -1.
func DijkstraNW(n, src int, nw NeighborWeightsFunc) (dist []float64, prev []int) {
	return dijkstra(n, src, -1, nw)
}

// dijkstra settles nodes from src; if stop >= 0 it returns as soon as
// stop is settled (dist[stop] and the prev chain back to src are final at
// that point — Dijkstra settles nodes in nondecreasing distance order, so
// the early exit is exact). Unsettled nodes keep tentative or +Inf
// distances.
func dijkstra(n, src, stop int, nw NeighborWeightsFunc) (dist []float64, prev []int) {
	dist = make([]float64, n)
	prev = make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == stop {
			return dist, prev
		}
		nbrs, ws := nw(it.node)
		for i, nb := range nbrs {
			if done[nb] {
				continue
			}
			wt := ws[i]
			if math.IsInf(wt, 1) {
				continue
			}
			if nd := it.dist + wt; nd < dist[nb] {
				dist[nb] = nd
				prev[nb] = it.node
				heap.Push(q, pqItem{node: nb, dist: nd})
			}
		}
	}
	return dist, prev
}

// Tree is a shortest-path tree rooted at Src: the result of one forward
// Dijkstra sweep, from which the shortest path to every destination can
// be read back without further search. The Brain caches one Tree per
// producer per routing epoch and derives each consumer's first candidate
// path from it, paying the Dijkstra once instead of once per (src,dst)
// pair.
type Tree struct {
	Src  int
	Dist []float64
	Prev []int
}

// SSSP computes the single-source shortest-path tree from src.
func SSSP(n, src int, nw NeighborWeightsFunc) Tree {
	dist, prev := DijkstraNW(n, src, nw)
	return Tree{Src: src, Dist: dist, Prev: prev}
}

// PathTo reads the shortest path Src→dst out of the tree.
func (t Tree) PathTo(dst int) (Path, bool) {
	if dst < 0 || dst >= len(t.Dist) || math.IsInf(t.Dist[dst], 1) {
		return Path{}, false
	}
	nodes := make([]int, 0, 4)
	for at := dst; at != -1; at = t.Prev[at] {
		nodes = append(nodes, at)
	}
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	if nodes[0] != t.Src {
		return Path{}, false
	}
	return Path{Nodes: nodes, Cost: t.Dist[dst]}, true
}

// ShortestPath returns the single shortest path src→dst.
func ShortestPath(n, src, dst int, adj AdjFunc, w WeightFunc) (Path, bool) {
	return ShortestPathNW(n, src, dst, adaptNW(adj, w))
}

// ShortestPathNW is ShortestPath over the neighbor-weights interface.
func ShortestPathNW(n, src, dst int, nw NeighborWeightsFunc) (Path, bool) {
	dist, prev := dijkstra(n, src, dst, nw)
	return Tree{Src: src, Dist: dist, Prev: prev}.PathTo(dst)
}

// Yen returns up to k loopless shortest paths src→dst in nondecreasing
// cost order (Yen's algorithm over a Dijkstra subroutine).
func Yen(n, src, dst, k int, adj AdjFunc, w WeightFunc) []Path {
	return YenNW(n, src, dst, k, adaptNW(adj, w))
}

// YenNW is Yen's algorithm over the neighbor-weights interface.
func YenNW(n, src, dst, k int, nw NeighborWeightsFunc) []Path {
	if k <= 0 || src == dst {
		return nil
	}
	first, ok := ShortestPathNW(n, src, dst, nw)
	if !ok {
		return nil
	}
	return yenFrom(n, src, dst, k, nw, first)
}

// YenFromTree is YenNW with the first (shortest) path read from a
// precomputed SSSP tree instead of running a fresh Dijkstra. The tree
// must have been built with SSSP(n, src, nw) against the same weights;
// under that condition the output is identical to YenNW — the deviation
// loop only depends on the first path, and the tree's path IS the
// Dijkstra path. This lets the Brain pay one Dijkstra per producer per
// epoch instead of one per (producer, consumer) pair.
func YenFromTree(n, src, dst, k int, nw NeighborWeightsFunc, t Tree) []Path {
	if k <= 0 || src == dst {
		return nil
	}
	first, ok := t.PathTo(dst)
	if !ok {
		return nil
	}
	return yenFrom(n, src, dst, k, nw, first)
}

// yenFrom runs Yen's spur-deviation loop seeded with the known shortest
// path src→dst.
func yenFrom(n, src, dst, k int, nw NeighborWeightsFunc, first Path) []Path {
	paths := []Path{first}
	var candidates []Path
	var mbuf []float64 // scratch row for the masked expansion

	for len(paths) < k {
		last := paths[len(paths)-1]
		// Each node of the previous shortest path except the final one is
		// a potential spur node.
		for i := 0; i < len(last.Nodes)-1; i++ {
			spur := last.Nodes[i]
			rootNodes := last.Nodes[:i+1]

			// Edges removed for this spur computation: the outgoing edge
			// used by every accepted path sharing this root.
			removedEdges := make(map[int64]bool)
			for _, p := range paths {
				if len(p.Nodes) > i && equalPrefix(p.Nodes, rootNodes) {
					removedEdges[edgeKey(p.Nodes[i], p.Nodes[i+1])] = true
				}
			}
			// Nodes of the root (except the spur) are removed to keep
			// paths loopless.
			removedNodes := make(map[int]bool, i)
			for _, rn := range rootNodes[:i] {
				removedNodes[rn] = true
			}

			maskedNW := func(id int) ([]int, []float64) {
				nbrs, ws := nw(id)
				if cap(mbuf) < len(nbrs) {
					mbuf = make([]float64, len(nbrs))
				}
				mbuf = mbuf[:len(nbrs)]
				fromRemoved := removedNodes[id]
				for j, nb := range nbrs {
					wt := ws[j]
					if fromRemoved || removedNodes[nb] || removedEdges[edgeKey(id, nb)] {
						wt = math.Inf(1)
					}
					mbuf[j] = wt
				}
				return nbrs, mbuf
			}
			spurPath, ok := ShortestPathNW(n, spur, dst, maskedNW)
			if !ok {
				continue
			}
			total := make([]int, 0, i+len(spurPath.Nodes))
			total = append(total, rootNodes[:i]...)
			total = append(total, spurPath.Nodes...)
			cand := Path{Nodes: total, Cost: pathCostNW(total, nw)}
			if !containsPath(paths, cand) && !containsPath(candidates, cand) {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Stable: equal-cost candidates keep their generation order, so the
		// winner among ties is a function of the accepted prefix and the
		// weights alone — what the Brain's incremental invalidation and the
		// parallel≡serial guarantee both lean on.
		sort.SliceStable(candidates, func(a, b int) bool { return candidates[a].Cost < candidates[b].Cost })
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

func edgeKey(from, to int) int64 { return int64(from)<<32 | int64(uint32(to)) }

func equalPrefix(p, prefix []int) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

func pathCost(nodes []int, w WeightFunc) float64 {
	var c float64
	for i := 0; i+1 < len(nodes); i++ {
		c += w(nodes[i], nodes[i+1])
	}
	return c
}

// pathCostNW sums edge weights along nodes via the expansion interface.
func pathCostNW(nodes []int, nw NeighborWeightsFunc) float64 {
	var c float64
	for i := 0; i+1 < len(nodes); i++ {
		nbrs, ws := nw(nodes[i])
		wt := math.Inf(1)
		for j, nb := range nbrs {
			if nb == nodes[i+1] {
				wt = ws[j]
				break
			}
		}
		c += wt
	}
	return c
}

func containsPath(ps []Path, q Path) bool {
	for _, p := range ps {
		if p.Equal(q) {
			return true
		}
	}
	return false
}
