// Package ksp implements Dijkstra's shortest path and Yen's K-shortest
// loopless paths algorithm — the "KSP" step of the Streaming Brain's
// Global Routing module (§4.3). The Brain computes k=3 candidate paths per
// node pair and then filters constraint violations.
//
// The search core runs on reusable Arenas (see arena.go): generation-
// stamped scratch arrays plus a monotone radix heap, so the steady state
// of a routing epoch performs no allocations inside the search. The
// package-level functions below draw scratch from a shared pool; batch
// callers (the Brain's epoch recompute) pin one Arena per worker instead.
package ksp

import "math"

// WeightFunc returns the weight of the directed edge from→to; it must
// return +Inf for edges that do not exist (or are masked out).
type WeightFunc func(from, to int) float64

// AdjFunc returns the out-neighbors of a node.
type AdjFunc func(id int) []int

// NeighborWeightsFunc returns a node's out-neighbors together with the
// weight of each outgoing edge (w[i] is the weight to nbrs[i]). This is
// the allocation-free expansion interface the Dijkstra core runs on:
// graph.Graph serves it from per-neighbor weight slices cached per Brain
// epoch, so the inner loop pays no per-edge map lookup. The returned
// slices are only valid until the next call.
type NeighborWeightsFunc func(id int) (nbrs []int, w []float64)

// adaptNW bridges the classic (AdjFunc, WeightFunc) pair onto the
// neighbor-weights core, reusing one scratch row across expansions.
func adaptNW(adj AdjFunc, w WeightFunc) NeighborWeightsFunc {
	var buf []float64
	return func(id int) ([]int, []float64) {
		nbrs := adj(id)
		if cap(buf) < len(nbrs) {
			buf = make([]float64, len(nbrs))
		}
		buf = buf[:len(nbrs)]
		for i, nb := range nbrs {
			buf[i] = w(id, nb)
		}
		return nbrs, buf
	}
}

// Path is a node sequence (src first, dst last) with its total cost.
type Path struct {
	Nodes []int
	Cost  float64
}

// Hops returns the number of edges in the path.
func (p Path) Hops() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

// Equal reports whether two paths visit the same node sequence.
func (p Path) Equal(q Path) bool {
	if len(p.Nodes) != len(q.Nodes) {
		return false
	}
	for i := range p.Nodes {
		if p.Nodes[i] != q.Nodes[i] {
			return false
		}
	}
	return true
}

// Dijkstra computes shortest distances and predecessors from src over n
// nodes. Unreachable nodes have dist = +Inf and prev = -1.
func Dijkstra(n, src int, adj AdjFunc, w WeightFunc) (dist []float64, prev []int) {
	return DijkstraNW(n, src, adaptNW(adj, w))
}

// DijkstraNW is the Dijkstra core over the neighbor-weights expansion
// interface. Unreachable nodes have dist = +Inf and prev = -1.
func DijkstraNW(n, src int, nw NeighborWeightsFunc) (dist []float64, prev []int) {
	a := arenaPool.Get().(*Arena)
	defer arenaPool.Put(a)
	t := a.SSSP(n, src, nw)
	return t.Dist, t.Prev
}

// Tree is a shortest-path tree rooted at Src: the result of one forward
// Dijkstra sweep, from which the shortest path to every destination can
// be read back without further search. The Brain caches one Tree per
// producer per routing epoch and derives each consumer's first candidate
// path from it, paying the Dijkstra once instead of once per (src,dst)
// pair.
type Tree struct {
	Src  int
	Dist []float64
	Prev []int
}

// SSSP computes the single-source shortest-path tree from src.
func SSSP(n, src int, nw NeighborWeightsFunc) Tree {
	a := arenaPool.Get().(*Arena)
	defer arenaPool.Put(a)
	return a.SSSP(n, src, nw)
}

// PathTo reads the shortest path Src→dst out of the tree.
func (t Tree) PathTo(dst int) (Path, bool) {
	if dst < 0 || dst >= len(t.Dist) || math.IsInf(t.Dist[dst], 1) {
		return Path{}, false
	}
	nodes := make([]int, 0, 4)
	for at := dst; at != -1; at = t.Prev[at] {
		nodes = append(nodes, at)
	}
	reverseInts(nodes)
	if nodes[0] != t.Src {
		return Path{}, false
	}
	return Path{Nodes: nodes, Cost: t.Dist[dst]}, true
}

// ShortestPath returns the single shortest path src→dst.
func ShortestPath(n, src, dst int, adj AdjFunc, w WeightFunc) (Path, bool) {
	return ShortestPathNW(n, src, dst, adaptNW(adj, w))
}

// ShortestPathNW is ShortestPath over the neighbor-weights interface.
func ShortestPathNW(n, src, dst int, nw NeighborWeightsFunc) (Path, bool) {
	a := arenaPool.Get().(*Arena)
	defer arenaPool.Put(a)
	return a.ShortestPath(n, src, dst, nw)
}

// Yen returns up to k loopless shortest paths src→dst in nondecreasing
// cost order (Yen's algorithm over a Dijkstra subroutine).
func Yen(n, src, dst, k int, adj AdjFunc, w WeightFunc) []Path {
	return YenNW(n, src, dst, k, adaptNW(adj, w))
}

// YenNW is Yen's algorithm over the neighbor-weights interface.
func YenNW(n, src, dst, k int, nw NeighborWeightsFunc) []Path {
	a := arenaPool.Get().(*Arena)
	defer arenaPool.Put(a)
	return a.YenNW(n, src, dst, k, nw)
}

// YenFromTree is YenNW with the first (shortest) path read from a
// precomputed SSSP tree instead of running a fresh Dijkstra. The tree
// must have been built with SSSP(n, src, nw) against the same weights;
// under that condition the output is identical to YenNW — the deviation
// loop only depends on the first path, and the tree's path IS the
// Dijkstra path. This lets the Brain pay one Dijkstra per producer per
// epoch instead of one per (producer, consumer) pair.
func YenFromTree(n, src, dst, k int, nw NeighborWeightsFunc, t Tree) []Path {
	a := arenaPool.Get().(*Arena)
	defer arenaPool.Put(a)
	return a.YenFromTree(n, src, dst, k, nw, t)
}

func equalPrefix(p, prefix []int) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

// pathCostNW sums edge weights along nodes via the expansion interface,
// edge by edge in path order (candidate costs must fold in the same
// float order regardless of which search produced the path).
func pathCostNW(nodes []int, nw NeighborWeightsFunc) float64 {
	var c float64
	for i := 0; i+1 < len(nodes); i++ {
		nbrs, ws := nw(nodes[i])
		wt := math.Inf(1)
		for j, nb := range nbrs {
			if nb == nodes[i+1] {
				wt = ws[j]
				break
			}
		}
		c += wt
	}
	return c
}

func containsPath(ps []Path, q Path) bool {
	for _, p := range ps {
		if p.Equal(q) {
			return true
		}
	}
	return false
}
