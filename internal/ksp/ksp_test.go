package ksp

import (
	"math"
	"testing"
	"testing/quick"

	"livenet/internal/sim"
)

// gridWorld builds a small weighted digraph as adjacency+weight maps.
type gridWorld struct {
	n   int
	adj map[int][]int
	w   map[[2]int]float64
}

func newGrid(n int) *gridWorld {
	return &gridWorld{n: n, adj: make(map[int][]int), w: make(map[[2]int]float64)}
}

func (g *gridWorld) edge(a, b int, w float64) {
	g.adj[a] = append(g.adj[a], b)
	g.w[[2]int{a, b}] = w
}

func (g *gridWorld) biedge(a, b int, w float64) {
	g.edge(a, b, w)
	g.edge(b, a, w)
}

func (g *gridWorld) adjFn(id int) []int { return g.adj[id] }

func (g *gridWorld) wFn(a, b int) float64 {
	if w, ok := g.w[[2]int{a, b}]; ok {
		return w
	}
	return math.Inf(1)
}

func TestDijkstraSimple(t *testing.T) {
	g := newGrid(4)
	g.edge(0, 1, 1)
	g.edge(1, 2, 1)
	g.edge(0, 2, 5)
	g.edge(2, 3, 1)
	dist, prev := Dijkstra(4, 0, g.adjFn, g.wFn)
	if dist[2] != 2 {
		t.Fatalf("dist[2] = %v, want 2 (via node 1)", dist[2])
	}
	if prev[2] != 1 {
		t.Fatalf("prev[2] = %v, want 1", prev[2])
	}
	if dist[3] != 3 {
		t.Fatalf("dist[3] = %v", dist[3])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := newGrid(3)
	g.edge(0, 1, 1)
	dist, prev := Dijkstra(3, 0, g.adjFn, g.wFn)
	if !math.IsInf(dist[2], 1) || prev[2] != -1 {
		t.Fatalf("node 2 should be unreachable: dist=%v prev=%v", dist[2], prev[2])
	}
	if _, ok := ShortestPath(3, 0, 2, g.adjFn, g.wFn); ok {
		t.Fatal("ShortestPath to unreachable node should fail")
	}
}

func TestShortestPathEndpoints(t *testing.T) {
	g := newGrid(4)
	g.edge(0, 1, 1)
	g.edge(1, 3, 1)
	p, ok := ShortestPath(4, 0, 3, g.adjFn, g.wFn)
	if !ok || p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != 3 {
		t.Fatalf("path = %+v ok=%v", p, ok)
	}
	if p.Hops() != 2 || p.Cost != 2 {
		t.Fatalf("hops=%d cost=%v", p.Hops(), p.Cost)
	}
}

func TestYenClassic(t *testing.T) {
	// Classic Yen example graph.
	g := newGrid(6)
	// C=0 D=1 E=2 F=3 G=4 H=5
	g.edge(0, 1, 3)
	g.edge(0, 2, 2)
	g.edge(1, 3, 4)
	g.edge(2, 1, 1)
	g.edge(2, 3, 2)
	g.edge(2, 4, 3)
	g.edge(3, 4, 2)
	g.edge(3, 5, 1)
	g.edge(4, 5, 2)
	paths := Yen(6, 0, 5, 3, g.adjFn, g.wFn)
	if len(paths) != 3 {
		t.Fatalf("got %d paths", len(paths))
	}
	if paths[0].Cost != 5 { // C-E-F-H = 2+2+1
		t.Fatalf("1st path cost = %v, want 5: %+v", paths[0].Cost, paths[0])
	}
	if paths[1].Cost != 7 || paths[2].Cost != 8 {
		t.Fatalf("2nd/3rd costs = %v/%v, want 7/8", paths[1].Cost, paths[2].Cost)
	}
}

func TestYenNondecreasing(t *testing.T) {
	rng := sim.NewSource(1).Stream("yen")
	if err := quick.Check(func(seed uint8) bool {
		n := 12
		g := newGrid(n)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b && rng.Bernoulli(0.4) {
					g.edge(a, b, 1+rng.Float64()*10)
				}
			}
		}
		paths := Yen(n, 0, n-1, 4, g.adjFn, g.wFn)
		prev := 0.0
		for _, p := range paths {
			if p.Cost < prev-1e-9 {
				return false
			}
			prev = p.Cost
			// Loopless check.
			seen := map[int]bool{}
			for _, node := range p.Nodes {
				if seen[node] {
					return false
				}
				seen[node] = true
			}
			if p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != n-1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestYenDistinctPaths(t *testing.T) {
	g := newGrid(5)
	g.biedge(0, 1, 1)
	g.biedge(1, 4, 1)
	g.biedge(0, 2, 2)
	g.biedge(2, 4, 2)
	g.biedge(0, 3, 3)
	g.biedge(3, 4, 3)
	paths := Yen(5, 0, 4, 3, g.adjFn, g.wFn)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if paths[i].Equal(paths[j]) {
				t.Fatalf("duplicate paths at %d,%d: %+v", i, j, paths)
			}
		}
	}
}

func TestYenFewerThanK(t *testing.T) {
	g := newGrid(3)
	g.edge(0, 1, 1)
	g.edge(1, 2, 1)
	paths := Yen(3, 0, 2, 5, g.adjFn, g.wFn)
	if len(paths) != 1 {
		t.Fatalf("only one path exists, got %d", len(paths))
	}
}

func TestYenSameSrcDst(t *testing.T) {
	g := newGrid(2)
	g.edge(0, 1, 1)
	if paths := Yen(2, 0, 0, 3, g.adjFn, g.wFn); paths != nil {
		t.Fatalf("src==dst should return nil, got %+v", paths)
	}
}

func TestYenKZero(t *testing.T) {
	g := newGrid(2)
	g.edge(0, 1, 1)
	if paths := Yen(2, 0, 1, 0, g.adjFn, g.wFn); paths != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestYenOnFullMesh(t *testing.T) {
	// The Brain's actual use case: full mesh with metric weights, k=3.
	rng := sim.NewSource(2).Stream("mesh")
	n := 20
	g := newGrid(n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				g.edge(a, b, 5+rng.Float64()*100)
			}
		}
	}
	paths := Yen(n, 3, 17, 3, g.adjFn, g.wFn)
	if len(paths) != 3 {
		t.Fatalf("full mesh should yield 3 paths, got %d", len(paths))
	}
	// Direct link exists, so the best path has at most a couple of hops,
	// and alternatives should genuinely differ.
	if paths[0].Cost > paths[1].Cost || paths[1].Cost > paths[2].Cost {
		t.Fatal("costs not ordered")
	}
}

func TestPathEqual(t *testing.T) {
	a := Path{Nodes: []int{1, 2, 3}}
	b := Path{Nodes: []int{1, 2, 3}}
	c := Path{Nodes: []int{1, 2}}
	d := Path{Nodes: []int{1, 2, 4}}
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Fatal("Equal misbehaves")
	}
}

// randomNW builds a random weighted digraph and returns both the classic
// (adj, w) pair and the neighbor-weights form backed by the same edges.
func randomNW(n int, seed int64) (AdjFunc, WeightFunc, NeighborWeightsFunc) {
	rng := sim.NewSource(seed).Stream("kspnw")
	adj := make([][]int, n)
	w := make(map[[2]int]float64)
	ws := make([][]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Bernoulli(0.6) {
				wt := 1 + rng.Float64()*99
				adj[i] = append(adj[i], j)
				ws[i] = append(ws[i], wt)
				w[[2]int{i, j}] = wt
			}
		}
	}
	adjF := func(id int) []int { return adj[id] }
	wF := func(from, to int) float64 {
		if wt, ok := w[[2]int{from, to}]; ok {
			return wt
		}
		return math.Inf(1)
	}
	nwF := func(id int) ([]int, []float64) { return adj[id], ws[id] }
	return adjF, wF, nwF
}

func TestDijkstraNWMatchesClassic(t *testing.T) {
	const n = 24
	for seed := int64(1); seed <= 5; seed++ {
		adj, w, nw := randomNW(n, seed)
		for src := 0; src < n; src += 7 {
			d1, p1 := Dijkstra(n, src, adj, w)
			d2, p2 := DijkstraNW(n, src, nw)
			for i := 0; i < n; i++ {
				if d1[i] != d2[i] || p1[i] != p2[i] {
					t.Fatalf("seed %d src %d node %d: classic (%v,%d) vs NW (%v,%d)",
						seed, src, i, d1[i], p1[i], d2[i], p2[i])
				}
			}
		}
	}
}

func TestYenNWMatchesClassic(t *testing.T) {
	const n = 16
	for seed := int64(1); seed <= 5; seed++ {
		adj, w, nw := randomNW(n, seed)
		for _, pair := range [][2]int{{0, 5}, {3, 12}, {7, 1}} {
			a := Yen(n, pair[0], pair[1], 4, adj, w)
			b := YenNW(n, pair[0], pair[1], 4, nw)
			if len(a) != len(b) {
				t.Fatalf("seed %d %v: %d vs %d paths", seed, pair, len(a), len(b))
			}
			for i := range a {
				if !a[i].Equal(b[i]) || a[i].Cost != b[i].Cost {
					t.Fatalf("seed %d %v path %d: %+v vs %+v", seed, pair, i, a[i], b[i])
				}
			}
		}
	}
}

func TestYenFromTreeMatchesYenNW(t *testing.T) {
	const n = 16
	for seed := int64(1); seed <= 5; seed++ {
		_, _, nw := randomNW(n, seed)
		for src := 0; src < n; src += 3 {
			tree := SSSP(n, src, nw)
			for dst := 0; dst < n; dst++ {
				if dst == src {
					continue
				}
				a := YenNW(n, src, dst, 4, nw)
				b := YenFromTree(n, src, dst, 4, nw, tree)
				if len(a) != len(b) {
					t.Fatalf("seed %d %d→%d: %d vs %d paths", seed, src, dst, len(a), len(b))
				}
				for i := range a {
					if !a[i].Equal(b[i]) || a[i].Cost != b[i].Cost {
						t.Fatalf("seed %d %d→%d path %d: %+v vs %+v", seed, src, dst, i, a[i], b[i])
					}
				}
			}
		}
	}
}

func TestTreePathToMatchesShortestPath(t *testing.T) {
	const n = 24
	for seed := int64(1); seed <= 3; seed++ {
		_, _, nw := randomNW(n, seed)
		for src := 0; src < n; src += 5 {
			tree := SSSP(n, src, nw)
			for dst := 0; dst < n; dst++ {
				if dst == src {
					continue
				}
				a, okA := ShortestPathNW(n, src, dst, nw)
				b, okB := tree.PathTo(dst)
				if okA != okB {
					t.Fatalf("seed %d %d→%d: ok %v vs %v", seed, src, dst, okA, okB)
				}
				if okA && (!a.Equal(b) || a.Cost != b.Cost) {
					t.Fatalf("seed %d %d→%d: %+v vs %+v", seed, src, dst, a, b)
				}
			}
		}
	}
}

// TestFreshArenaYenFromTree is the regression pin for the grow/maskGen
// interaction: a brand-new (never-grown) Arena must produce the same
// YenFromTree answer as the pooled package path. The original bug
// stamped the spur mask before the first search grew the scratch
// arrays; grow() then reset the mask generation, every spur node read
// as masked, and all deviation paths silently vanished.
func TestFreshArenaYenFromTree(t *testing.T) {
	const n = 16
	for seed := int64(1); seed <= 5; seed++ {
		_, _, nw := randomNW(n, seed)
		for src := 0; src < n; src += 3 {
			tree := SSSP(n, src, nw)
			for dst := 0; dst < n; dst += 2 {
				if dst == src {
					continue
				}
				want := YenNW(n, src, dst, 4, nw)
				got := new(Arena).YenFromTree(n, src, dst, 4, nw, tree)
				if len(want) != len(got) {
					t.Fatalf("seed %d %d→%d: %d vs %d paths", seed, src, dst, len(want), len(got))
				}
				for i := range want {
					if !want[i].Equal(got[i]) || want[i].Cost != got[i].Cost {
						t.Fatalf("seed %d %d→%d path %d: %+v vs %+v", seed, src, dst, i, want[i], got[i])
					}
				}
			}
		}
	}
}
