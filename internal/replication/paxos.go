// Package replication implements the Paxos-like consistency scheme the
// Streaming Brain uses across its geo-replicated deployments (§7.1: "We
// maintain consistency using a Paxos-like scheme [31]"): a replicated log
// where each slot is decided by single-decree Paxos (prepare/promise,
// accept/accepted), with commits broadcast to learners. Replicas apply
// committed entries in slot order through an OnCommit callback — the core
// uses it to replicate PIB/SIB updates.
package replication

import (
	"fmt"
	"sync"
	"time"

	"livenet/internal/sim"
)

// MsgType enumerates protocol messages.
type MsgType uint8

// Protocol message types.
const (
	MsgPrepare MsgType = iota + 1
	MsgPromise
	MsgReject
	MsgAccept
	MsgAccepted
	MsgCommit
	// MsgLearn asks a peer to re-send commits from a slot onward
	// (catch-up after a partition heals).
	MsgLearn
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgPrepare:
		return "prepare"
	case MsgPromise:
		return "promise"
	case MsgReject:
		return "reject"
	case MsgAccept:
		return "accept"
	case MsgAccepted:
		return "accepted"
	case MsgCommit:
		return "commit"
	case MsgLearn:
		return "learn"
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// Msg is one protocol message.
type Msg struct {
	Type   MsgType
	Slot   int
	Ballot uint64
	// AcceptedBallot/AcceptedValue ride on promises (the highest accepted
	// proposal the acceptor has seen for the slot, if any).
	AcceptedBallot uint64
	Value          []byte
	From           int
}

// Transport carries messages between replicas (the test harness and the
// core provide implementations with realistic delays/partitions).
type Transport interface {
	Send(from, to int, m Msg)
}

// acceptor is per-slot acceptor state.
type acceptor struct {
	promised uint64
	accepted uint64
	value    []byte
}

// proposal tracks one in-flight local proposal.
type proposal struct {
	slot     int
	ballot   uint64
	value    []byte // the value we want
	promises int
	// adoptedBallot/adopted hold the highest already-accepted value
	// reported in promises: Paxos obliges us to propose it instead.
	adoptedBallot uint64
	adopted       []byte
	accepts       int
	acceptSent    bool
	committed     bool
	retryTimer    sim.Timer
}

// Replica is one Paxos replica (proposer + acceptor + learner).
type Replica struct {
	mu    sync.Mutex
	id    int
	peers []int // all replica IDs including self
	net   Transport
	clock sim.Clock

	ballotSeq uint64
	acceptors map[int]*acceptor
	proposals map[int]*proposal
	chosen    map[int][]byte
	nextSlot  int
	applied   int // next slot to apply in order

	// OnCommit is called with each committed entry in slot order.
	OnCommit func(slot int, value []byte)

	// reproposals holds values displaced by slot collisions, awaiting a
	// fresh slot.
	reproposals [][]byte

	// RetryTimeout restarts a stalled proposal with a higher ballot
	// (default 200 ms).
	RetryTimeout time.Duration
	closed       bool
}

// NewReplica creates a replica. peers must include id.
func NewReplica(id int, peers []int, net Transport, clock sim.Clock) *Replica {
	return &Replica{
		id:           id,
		peers:        append([]int(nil), peers...),
		net:          net,
		clock:        clock,
		acceptors:    make(map[int]*acceptor),
		proposals:    make(map[int]*proposal),
		chosen:       make(map[int][]byte),
		RetryTimeout: 200 * time.Millisecond,
	}
}

// ID returns the replica's ID.
func (r *Replica) ID() int { return r.id }

// Close stops retry timers.
func (r *Replica) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	for _, p := range r.proposals {
		if p.retryTimer != nil {
			p.retryTimer.Stop()
		}
	}
}

func (r *Replica) majority() int { return len(r.peers)/2 + 1 }

// nextBallot returns a fresh ballot unique to this replica.
func (r *Replica) nextBallot() uint64 {
	r.ballotSeq++
	return r.ballotSeq<<16 | uint64(uint16(r.id))
}

// Propose starts consensus on value in the next free slot and returns the
// slot number. Concurrent proposals from different replicas may collide;
// losers retry on fresh slots via ProposeAt retries (the committed value
// of the contested slot may be the rival's — the caller observes actual
// outcomes via OnCommit).
func (r *Replica) Propose(value []byte) int {
	r.mu.Lock()
	slot := r.nextSlot
	for {
		if _, done := r.chosen[slot]; done {
			slot++
			continue
		}
		if _, busy := r.proposals[slot]; busy {
			slot++
			continue
		}
		break
	}
	r.nextSlot = slot + 1
	r.mu.Unlock()
	r.ProposeAt(slot, value)
	return slot
}

// ProposeAt runs consensus for a specific slot.
func (r *Replica) ProposeAt(slot int, value []byte) {
	r.mu.Lock()
	if _, done := r.chosen[slot]; done {
		r.mu.Unlock()
		return
	}
	p := &proposal{slot: slot, ballot: r.nextBallot(), value: value}
	r.proposals[slot] = p
	r.armRetryLocked(p)
	msgs := r.broadcastLocked(Msg{Type: MsgPrepare, Slot: slot, Ballot: p.ballot, From: r.id})
	r.mu.Unlock()
	r.deliver(msgs)
}

type outMsg struct {
	to int
	m  Msg
}

func (r *Replica) broadcastLocked(m Msg) []outMsg {
	out := make([]outMsg, 0, len(r.peers))
	for _, p := range r.peers {
		out = append(out, outMsg{to: p, m: m})
	}
	return out
}

func (r *Replica) deliver(msgs []outMsg) {
	for _, o := range msgs {
		r.net.Send(r.id, o.to, o.m)
	}
}

func (r *Replica) armRetryLocked(p *proposal) {
	if r.clock == nil {
		return
	}
	slot := p.slot
	p.retryTimer = r.clock.AfterFunc(r.RetryTimeout, func() {
		r.mu.Lock()
		cur := r.proposals[slot]
		_, done := r.chosen[slot]
		if r.closed || done || cur == nil || cur.committed {
			r.mu.Unlock()
			return
		}
		// Restart with a higher ballot, preserving our desired value.
		value := cur.value
		np := &proposal{slot: slot, ballot: r.nextBallot(), value: value}
		r.proposals[slot] = np
		r.armRetryLocked(np)
		msgs := r.broadcastLocked(Msg{Type: MsgPrepare, Slot: slot, Ballot: np.ballot, From: r.id})
		r.mu.Unlock()
		r.deliver(msgs)
	})
}

// Chosen returns the committed value for a slot.
func (r *Replica) Chosen(slot int) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.chosen[slot]
	return v, ok
}

// CommittedCount returns how many contiguous slots from 0 are applied.
func (r *Replica) CommittedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// AppliedValues returns the applied prefix of the log in slot order —
// the replay source for rebuilding in-memory state derived from the log
// (e.g. a restarted front-end rewarming its caches).
func (r *Replica) AppliedValues() [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]byte, 0, r.applied)
	for slot := 0; slot < r.applied; slot++ {
		out = append(out, r.chosen[slot])
	}
	return out
}

// OnMessage is the transport delivery entry point.
func (r *Replica) OnMessage(from int, m Msg) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	var out []outMsg
	switch m.Type {
	case MsgPrepare:
		a := r.acceptorFor(m.Slot)
		if m.Ballot > a.promised {
			a.promised = m.Ballot
			out = append(out, outMsg{to: from, m: Msg{
				Type: MsgPromise, Slot: m.Slot, Ballot: m.Ballot,
				AcceptedBallot: a.accepted, Value: a.value, From: r.id,
			}})
		} else {
			out = append(out, outMsg{to: from, m: Msg{Type: MsgReject, Slot: m.Slot, Ballot: a.promised, From: r.id}})
		}
	case MsgPromise:
		p := r.proposals[m.Slot]
		if p != nil && !p.acceptSent && m.Ballot == p.ballot {
			p.promises++
			if m.AcceptedBallot > p.adoptedBallot {
				p.adoptedBallot = m.AcceptedBallot
				p.adopted = m.Value
			}
			if p.promises >= r.majority() {
				p.acceptSent = true
				v := p.value
				if p.adopted != nil {
					v = p.adopted // must re-propose the adopted value
				}
				out = append(out, r.broadcastLocked(Msg{
					Type: MsgAccept, Slot: m.Slot, Ballot: p.ballot, Value: v, From: r.id,
				})...)
			}
		}
	case MsgAccept:
		a := r.acceptorFor(m.Slot)
		if m.Ballot >= a.promised {
			a.promised = m.Ballot
			a.accepted = m.Ballot
			a.value = m.Value
			out = append(out, outMsg{to: from, m: Msg{
				Type: MsgAccepted, Slot: m.Slot, Ballot: m.Ballot, Value: m.Value, From: r.id,
			}})
		} else {
			out = append(out, outMsg{to: from, m: Msg{Type: MsgReject, Slot: m.Slot, Ballot: a.promised, From: r.id}})
		}
	case MsgAccepted:
		p := r.proposals[m.Slot]
		if p != nil && p.acceptSent && !p.committed && m.Ballot == p.ballot {
			p.accepts++
			if p.accepts >= r.majority() {
				p.committed = true
				if p.retryTimer != nil {
					p.retryTimer.Stop()
				}
				out = append(out, r.broadcastLocked(Msg{
					Type: MsgCommit, Slot: m.Slot, Ballot: m.Ballot, Value: m.Value, From: r.id,
				})...)
			}
		}
	case MsgCommit:
		r.commitLocked(m.Slot, m.Value)
		// Catch-up: a commit above a gap means we missed earlier slots
		// (e.g. we were partitioned); ask the committer to re-send.
		if m.Slot > r.applied {
			if _, have := r.chosen[r.applied]; !have {
				out = append(out, outMsg{to: from, m: Msg{Type: MsgLearn, Slot: r.applied, From: r.id}})
			}
		}
	case MsgLearn:
		for slot := m.Slot; slot < r.nextSlot; slot++ {
			if v, ok := r.chosen[slot]; ok {
				out = append(out, outMsg{to: from, m: Msg{Type: MsgCommit, Slot: slot, Value: v, From: r.id}})
			}
		}
	case MsgReject:
		// The retry timer will rerun with a higher ballot; nothing to do.
	}
	cb := r.applyLocked()
	redo := r.reproposals
	r.reproposals = nil
	r.mu.Unlock()
	r.deliver(out)
	for _, f := range cb {
		f()
	}
	for _, v := range redo {
		r.Propose(v)
	}
}

func (r *Replica) acceptorFor(slot int) *acceptor {
	a := r.acceptors[slot]
	if a == nil {
		a = &acceptor{}
		r.acceptors[slot] = a
	}
	return a
}

func (r *Replica) commitLocked(slot int, value []byte) {
	if _, done := r.chosen[slot]; done {
		return
	}
	r.chosen[slot] = append([]byte(nil), value...)
	if slot >= r.nextSlot {
		r.nextSlot = slot + 1
	}
	if p := r.proposals[slot]; p != nil {
		if p.retryTimer != nil {
			p.retryTimer.Stop()
		}
		delete(r.proposals, slot)
		// Slot collision: if the slot decided on a rival's value, our
		// value must not be lost — re-propose it on a fresh slot.
		if !bytesEqual(p.value, value) {
			v := p.value
			r.reproposals = append(r.reproposals, v)
		}
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyLocked collects in-order commit callbacks to run outside the lock.
func (r *Replica) applyLocked() []func() {
	var out []func()
	for {
		v, ok := r.chosen[r.applied]
		if !ok {
			return out
		}
		slot := r.applied
		r.applied++
		if r.OnCommit != nil {
			cb := r.OnCommit
			val := v
			out = append(out, func() { cb(slot, val) })
		}
	}
}
