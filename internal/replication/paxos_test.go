package replication

import (
	"fmt"
	"testing"
	"time"

	"livenet/internal/sim"
)

// cluster wires n replicas over a delayed in-memory transport on a sim
// loop, with optional partitions and message drops.
type cluster struct {
	loop     *sim.Loop
	replicas []*Replica
	blocked  map[[2]int]bool // from,to pairs that drop messages
	delay    time.Duration
}

func newCluster(t *testing.T, n int, seed int64) *cluster {
	t.Helper()
	c := &cluster{
		loop:    sim.NewLoop(seed),
		blocked: make(map[[2]int]bool),
		delay:   5 * time.Millisecond,
	}
	peers := make([]int, n)
	for i := range peers {
		peers[i] = i
	}
	for i := 0; i < n; i++ {
		r := NewReplica(i, peers, c, c.loop)
		c.replicas = append(c.replicas, r)
	}
	return c
}

// Send implements Transport with delay and partition support.
func (c *cluster) Send(from, to int, m Msg) {
	if c.blocked[[2]int{from, to}] {
		return
	}
	c.loop.AfterFunc(c.delay, func() {
		if !c.blocked[[2]int{from, to}] {
			c.replicas[to].OnMessage(from, m)
		}
	})
}

// partition isolates a replica in both directions.
func (c *cluster) partition(id int) {
	for i := range c.replicas {
		if i != id {
			c.blocked[[2]int{id, i}] = true
			c.blocked[[2]int{i, id}] = true
		}
	}
}

func (c *cluster) heal() { c.blocked = make(map[[2]int]bool) }

func TestSingleProposalCommits(t *testing.T) {
	c := newCluster(t, 3, 1)
	slot := c.replicas[0].Propose([]byte("pib-update-1"))
	c.loop.RunUntil(time.Second)
	for i, r := range c.replicas {
		v, ok := r.Chosen(slot)
		if !ok || string(v) != "pib-update-1" {
			t.Fatalf("replica %d: chosen=%q ok=%v", i, v, ok)
		}
	}
}

func TestOnCommitOrdered(t *testing.T) {
	c := newCluster(t, 3, 2)
	var got [][]string
	for i := range c.replicas {
		i := i
		got = append(got, nil)
		c.replicas[i].OnCommit = func(slot int, v []byte) {
			got[i] = append(got[i], fmt.Sprintf("%d:%s", slot, v))
		}
	}
	for k := 0; k < 5; k++ {
		c.replicas[0].Propose([]byte{byte('a' + k)})
		c.loop.RunUntil(c.loop.Now() + 200*time.Millisecond)
	}
	c.loop.RunUntil(c.loop.Now() + time.Second)
	want := []string{"0:a", "1:b", "2:c", "3:d", "4:e"}
	for i := range c.replicas {
		if len(got[i]) != len(want) {
			t.Fatalf("replica %d applied %v, want %v", i, got[i], want)
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("replica %d applied %v, want %v", i, got[i], want)
			}
		}
	}
}

func TestConcurrentProposalsConverge(t *testing.T) {
	c := newCluster(t, 5, 3)
	// Two replicas propose different values concurrently; both may land
	// (on different slots) or collide on one slot — but every replica
	// must agree on the value of every decided slot.
	c.replicas[0].Propose([]byte("from-0"))
	c.replicas[1].Propose([]byte("from-1"))
	c.loop.RunUntil(3 * time.Second)
	maxSlot := 0
	for _, r := range c.replicas {
		if n := r.CommittedCount(); n > maxSlot {
			maxSlot = n
		}
	}
	if maxSlot == 0 {
		t.Fatal("nothing committed")
	}
	for slot := 0; slot < maxSlot; slot++ {
		ref, ok := c.replicas[0].Chosen(slot)
		if !ok {
			t.Fatalf("replica 0 missing slot %d", slot)
		}
		for i, r := range c.replicas[1:] {
			v, ok := r.Chosen(slot)
			if !ok || string(v) != string(ref) {
				t.Fatalf("replica %d disagrees on slot %d: %q vs %q", i+1, slot, v, ref)
			}
		}
	}
}

func TestMinorityPartitionCannotCommit(t *testing.T) {
	c := newCluster(t, 3, 4)
	c.partition(0) // replica 0 alone
	slot := c.replicas[0].Propose([]byte("lonely"))
	c.loop.RunUntil(2 * time.Second)
	if _, ok := c.replicas[1].Chosen(slot); ok {
		t.Fatal("partitioned minority should not commit")
	}
	if _, ok := c.replicas[0].Chosen(slot); ok {
		t.Fatal("isolated proposer should not self-commit")
	}
}

func TestHealedPartitionRecovers(t *testing.T) {
	c := newCluster(t, 3, 5)
	c.partition(0)
	slot := c.replicas[0].Propose([]byte("delayed"))
	c.loop.RunUntil(time.Second)
	c.heal()
	// The proposer's retry timer should push the proposal through.
	c.loop.RunUntil(5 * time.Second)
	for i, r := range c.replicas {
		v, ok := r.Chosen(slot)
		if !ok || string(v) != "delayed" {
			t.Fatalf("replica %d after heal: %q ok=%v", i, v, ok)
		}
	}
}

func TestMajorityCommitsDespiteOneDown(t *testing.T) {
	c := newCluster(t, 5, 6)
	c.partition(4)
	slot := c.replicas[0].Propose([]byte("majority"))
	c.loop.RunUntil(2 * time.Second)
	for i := 0; i < 4; i++ {
		if v, ok := c.replicas[i].Chosen(slot); !ok || string(v) != "majority" {
			t.Fatalf("replica %d: %q ok=%v", i, v, ok)
		}
	}
	if _, ok := c.replicas[4].Chosen(slot); ok {
		t.Fatal("partitioned replica should not have learned yet")
	}
}

func TestAdoptsPreviouslyAcceptedValue(t *testing.T) {
	// Safety core: once a value may have been chosen, later ballots must
	// propose it. Replica 1 proposes after 0's accept phase reached a
	// majority; slot 0's value must remain replica 0's on all replicas.
	c := newCluster(t, 3, 7)
	c.replicas[0].ProposeAt(0, []byte("first"))
	c.loop.RunUntil(100 * time.Millisecond) // full round completes
	c.replicas[1].ProposeAt(0, []byte("second"))
	c.loop.RunUntil(2 * time.Second)
	for i, r := range c.replicas {
		v, ok := r.Chosen(0)
		if !ok {
			t.Fatalf("replica %d: slot 0 undecided", i)
		}
		if string(v) != "first" {
			t.Fatalf("replica %d: slot 0 = %q, want the already-chosen value", i, v)
		}
	}
}

func TestBallotsMonotonePerReplica(t *testing.T) {
	r := NewReplica(2, []int{0, 1, 2}, nil, nil)
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		b := r.nextBallot()
		if b <= prev {
			t.Fatalf("ballot not increasing: %d then %d", prev, b)
		}
		if uint16(b) != 2 {
			t.Fatalf("ballot id bits wrong: %d", b)
		}
		prev = b
	}
}
