// Package runner is the parallel run scheduler for the evaluation
// harness: it fans independent, deterministic simulation runs out across
// GOMAXPROCS worker goroutines. Each job owns its private sim.Loop, seed,
// and world, so results are bit-identical to serial execution — the only
// thing that changes is wall-clock. Results are returned in submission
// order regardless of completion order.
//
// The pool also accounts per-job durations, so callers can report the
// serial-equivalent time alongside the parallel wall-clock (the speedup
// cmd/livenet-bench prints).
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a batch.
type Options struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS(0).
	Workers int
	// Serial forces in-place serial execution on the calling goroutine
	// (the reference schedule for determinism regression tests).
	Serial bool
}

// Parallel returns the default options: one worker per available CPU.
func Parallel() Options { return Options{} }

// Serial returns options that run every job on the calling goroutine.
func Serial() Options { return Options{Serial: true} }

// PoolSize returns the effective worker count a batch would run with
// (1 when serial), so callers can pre-chunk work to match the pool.
func (o Options) PoolSize() int { return o.workers() }

func (o Options) workers() int {
	if o.Serial {
		return 1
	}
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Report summarizes a batch: the wall-clock the batch took and the
// serial-equivalent time (sum of per-job durations). Speedup is their
// ratio — ~1.0 when serial or on one core, approaching the worker count
// for embarrassingly parallel batches.
type Report struct {
	Jobs   int
	Wall   time.Duration
	Serial time.Duration // sum of per-job durations
}

// Speedup returns Serial/Wall (1 when the batch is empty or instant).
func (r Report) Speedup() float64 {
	if r.Wall <= 0 || r.Serial <= 0 {
		return 1
	}
	return float64(r.Serial) / float64(r.Wall)
}

// Merge accumulates another batch's counters into r.
func (r *Report) Merge(o Report) {
	r.Jobs += o.Jobs
	r.Wall += o.Wall
	r.Serial += o.Serial
}

// Map runs f over every item on a worker pool and returns the results in
// item order. f must be safe to call concurrently (each evaluation run
// builds its own private state, so simulation jobs are).
func Map[T, R any](opts Options, items []T, f func(T) R) ([]R, Report) {
	out := make([]R, len(items))
	rep := run(opts, len(items), func(_, i int) { out[i] = f(items[i]) })
	return out, rep
}

// MapW is Map with worker identity: f additionally receives the stable
// index (0..PoolSize()-1) of the worker goroutine evaluating the item,
// so callers can pin per-worker scratch — the Brain's routing arenas —
// without locking. Work distribution is still stolen per item, so the
// (worker, item) pairing is nondeterministic; only the per-worker state
// isolation and the item-ordered results are guaranteed.
func MapW[T, R any](opts Options, items []T, f func(w int, item T) R) ([]R, Report) {
	out := make([]R, len(items))
	rep := run(opts, len(items), func(w, i int) { out[i] = f(w, items[i]) })
	return out, rep
}

// Do runs the given thunks, returning the batch report.
func Do(opts Options, jobs ...func()) Report {
	return run(opts, len(jobs), func(_, i int) { jobs[i]() })
}

// run executes job(0..n-1) on the pool, telling each invocation which
// worker (0..workers-1) runs it. Work is handed out through an atomic
// counter, so idle workers steal the next index as soon as they finish —
// no pre-partitioning imbalance when job costs differ (a 20-day LiveNet
// run next to a 1-day ablation).
func run(opts Options, n int, job func(w, i int)) Report {
	if n == 0 {
		return Report{}
	}
	start := time.Now()
	var serial atomic.Int64

	timed := func(w, i int) {
		js := time.Now()
		job(w, i)
		serial.Add(int64(time.Since(js)))
	}

	workers := opts.workers()
	if workers > n {
		workers = n
	}
	if opts.Serial || workers == 1 {
		for i := 0; i < n; i++ {
			timed(0, i)
		}
		return Report{Jobs: n, Wall: time.Since(start), Serial: time.Duration(serial.Load())}
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				timed(w, i)
			}
		}(w)
	}
	wg.Wait()
	return Report{Jobs: n, Wall: time.Since(start), Serial: time.Duration(serial.Load())}
}
