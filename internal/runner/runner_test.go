package runner

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, opts := range []Options{Serial(), Parallel(), {Workers: 3}} {
		out, rep := Map(opts, items, func(x int) int { return x * x })
		if len(out) != len(items) {
			t.Fatalf("len(out) = %d, want %d", len(out), len(items))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("out[%d] = %d, want %d (opts %+v)", i, v, i*i, opts)
			}
		}
		if rep.Jobs != len(items) {
			t.Fatalf("report jobs = %d, want %d", rep.Jobs, len(items))
		}
	}
}

func TestMapMatchesSerial(t *testing.T) {
	items := []int{5, 3, 9, 1, 7, 2}
	f := func(x int) int { return x*31 + 7 }
	serialOut, _ := Map(Serial(), items, f)
	parOut, _ := Map(Options{Workers: 4}, items, f)
	for i := range serialOut {
		if serialOut[i] != parOut[i] {
			t.Fatalf("parallel diverges from serial at %d: %d vs %d", i, parOut[i], serialOut[i])
		}
	}
}

func TestDoRunsEveryJob(t *testing.T) {
	var ran [8]atomic.Int32
	jobs := make([]func(), len(ran))
	for i := range jobs {
		i := i
		jobs[i] = func() { ran[i].Add(1) }
	}
	rep := Do(Options{Workers: 4}, jobs...)
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("job %d ran %d times", i, got)
		}
	}
	if rep.Jobs != len(jobs) {
		t.Fatalf("report jobs = %d", rep.Jobs)
	}
}

func TestWorkerCap(t *testing.T) {
	// With Workers=2, at most 2 jobs may be in flight at once.
	var inFlight, peak atomic.Int32
	jobs := make([]func(), 16)
	for i := range jobs {
		jobs[i] = func() {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
		}
	}
	Do(Options{Workers: 2}, jobs...)
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeds worker cap 2", p)
	}
}

func TestEmptyBatch(t *testing.T) {
	out, rep := Map(Parallel(), nil, func(x int) int { return x })
	if len(out) != 0 || rep.Jobs != 0 {
		t.Fatalf("empty batch: out=%v rep=%+v", out, rep)
	}
	if rep.Speedup() != 1 {
		t.Fatalf("empty speedup = %v, want 1", rep.Speedup())
	}
}

func TestReportAccounting(t *testing.T) {
	jobs := make([]func(), 4)
	for i := range jobs {
		jobs[i] = func() { time.Sleep(5 * time.Millisecond) }
	}
	rep := Do(Serial(), jobs...)
	if rep.Serial < 20*time.Millisecond {
		t.Fatalf("serial-equivalent %v, want >= 20ms", rep.Serial)
	}
	if rep.Wall < rep.Serial {
		t.Fatalf("serial batch wall %v < serial-equivalent %v", rep.Wall, rep.Serial)
	}
	var merged Report
	merged.Merge(rep)
	merged.Merge(rep)
	if merged.Jobs != 8 || merged.Serial != 2*rep.Serial {
		t.Fatalf("merge: %+v", merged)
	}
}
