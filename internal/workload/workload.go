// Package workload generates the synthetic Taobao-Live-like traffic that
// substitutes for the paper's 20-day production trace (§6.1): Zipf
// channel popularity, diurnal viewing intensity peaking between 8 pm and
// 11 pm local time, heavy-tailed view durations, and flash-crowd events
// (the Double 12 festival roughly doubles peak throughput, Figure 14).
package workload

import (
	"math"
	"sort"
	"time"

	"livenet/internal/geo"
	"livenet/internal/sim"
)

// Channel is one live broadcast channel.
type Channel struct {
	Rank int // popularity rank (0 = most popular)
	// StreamID is the channel's primary video stream.
	StreamID uint32
	// Lat/Lon/Country locate the broadcaster.
	Lat, Lon float64
	Country  string
	// Popular marks head-of-Zipf channels that get proactive path
	// prefetching (§4.4).
	Popular bool
}

// View is one viewing session.
type View struct {
	Start    time.Duration
	Duration time.Duration
	Channel  int // channel rank
	Lat, Lon float64
	Country  string
}

// FlashEvent is a load spike window (e.g. Double 12).
type FlashEvent struct {
	Start, End time.Duration
	Multiplier float64
}

// Config parameterizes generation.
type Config struct {
	Channels int
	// ZipfS is the popularity exponent (default 0.9).
	ZipfS float64
	// PeakViewsPerSec is the global arrival rate at the diurnal peak
	// before flash multipliers.
	PeakViewsPerSec float64
	// MeanViewSecs / ViewAlpha shape the bounded-Pareto view duration
	// (defaults 90 s mean behaviour via xmin=20, alpha=1.3).
	ViewMinSecs float64
	ViewAlpha   float64
	ViewMaxSecs float64
	// PopularFraction of channels (by rank) count as popular (default 2%).
	PopularFraction float64
	Flash           []FlashEvent
}

// Normalized returns the config with defaults applied — the exact
// parameter set a Generator built from c runs with. The cohort engines
// need it to evaluate the duration model analytically.
func (c Config) Normalized() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Channels <= 0 {
		c.Channels = 200
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 0.9
	}
	if c.PeakViewsPerSec <= 0 {
		c.PeakViewsPerSec = 10
	}
	if c.ViewMinSecs <= 0 {
		c.ViewMinSecs = 20
	}
	if c.ViewAlpha <= 0 {
		c.ViewAlpha = 1.3
	}
	if c.ViewMaxSecs <= 0 {
		c.ViewMaxSecs = 3600
	}
	if c.PopularFraction <= 0 {
		c.PopularFraction = 0.02
	}
	return c
}

// Generator produces channels and view arrivals deterministically.
type Generator struct {
	cfg  Config
	rng  *sim.Rand
	zipf *sim.Zipf
	chs  []Channel
}

// NewGenerator builds a generator; channels are placed like viewers
// (mostly the home market).
func NewGenerator(cfg Config, rng *sim.Rand) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{cfg: cfg, rng: rng, zipf: sim.NewZipf(rng, cfg.Channels, cfg.ZipfS)}
	popular := int(math.Ceil(cfg.PopularFraction * float64(cfg.Channels)))
	for i := 0; i < cfg.Channels; i++ {
		lat, lon, country := geo.ViewerOrigin(rng)
		g.chs = append(g.chs, Channel{
			Rank:     i,
			StreamID: uint32(1000 + i*10),
			Lat:      lat, Lon: lon, Country: country,
			Popular: i < popular,
		})
	}
	return g
}

// Channels returns the channel set.
func (g *Generator) Channels() []Channel { return g.chs }

// RateAt returns the instantaneous global view arrival rate (views/sec)
// at simulation time t: the peak rate scaled by the home market's
// diurnal factor and any flash event.
func (g *Generator) RateAt(t time.Duration) float64 {
	// The audience is dominated by the home market, so its local-time
	// diurnal factor drives the aggregate (Figure 10(b)'s 8–11 pm peak).
	home := geo.Countries[0]
	rate := g.cfg.PeakViewsPerSec * geo.DiurnalFactor(geo.LocalHour(t, home.Lon))
	for _, f := range g.cfg.Flash {
		if t >= f.Start && t < f.End {
			rate *= f.Multiplier
		}
	}
	return rate
}

// Views generates all view arrivals in [from, to), sorted by start time.
// Arrivals follow an inhomogeneous Poisson process thinned per 1-minute
// bucket.
func (g *Generator) Views(from, to time.Duration) []View {
	var out []View
	const bucket = time.Minute
	for t := from; t < to; t += bucket {
		lambda := g.RateAt(t+bucket/2) * bucket.Seconds()
		n := g.poisson(lambda)
		for i := 0; i < n; i++ {
			start := t + time.Duration(g.rng.Float64()*float64(bucket))
			if start >= to {
				continue
			}
			lat, lon, country := geo.ViewerOrigin(g.rng)
			durSecs := g.rng.Pareto(g.cfg.ViewMinSecs, g.cfg.ViewAlpha)
			if durSecs > g.cfg.ViewMaxSecs {
				durSecs = g.cfg.ViewMaxSecs
			}
			out = append(out, View{
				Start:    start,
				Duration: time.Duration(durSecs * float64(time.Second)),
				Channel:  g.zipf.Draw(),
				Lat:      lat, Lon: lon, Country: country,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// poisson draws a Poisson variate (Knuth for small lambda, normal
// approximation for large).
func (g *Generator) poisson(lambda float64) int { return poissonDraw(g.rng, lambda) }

// Day returns which simulation day (0-based) a time falls in.
func Day(t time.Duration) int { return int(t / (24 * time.Hour)) }

// Hour returns the UTC hour-of-day of a time.
func Hour(t time.Duration) int { return int(t/time.Hour) % 24 }

// Double12 returns the flash event of the paper's case study on a 20-day
// horizon beginning Dec 1: the festival runs 20:00 Dec 11 → 23:59 Dec 12
// (days are 0-based, so Dec 1 is day 0).
func Double12() FlashEvent {
	start := 10*24*time.Hour + 20*time.Hour             // Dec 11, 20:00
	end := 11*24*time.Hour + 24*time.Hour - time.Minute // Dec 12, 23:59
	return FlashEvent{Start: start, End: end, Multiplier: 2.0}
}
