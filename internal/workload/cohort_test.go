package workload

import (
	"fmt"
	"math"
	"testing"
	"time"

	"livenet/internal/sim"
)

// testEdgeOf quantizes origins onto a small lat/lon grid — enough edges
// to exercise the categorical split without pulling in a geo.World.
func testEdgeOf(lat, lon float64) int {
	r := int((lat + 90) / 45)  // 0..3
	c := int((lon + 180) / 45) // 0..7
	return (r*8 + c) % testEdges
}

const testEdges = 32

func cohortStream(seed int64, cfg Config, cc CohortConfig) (*Generator, *CohortStream) {
	src := sim.NewSource(seed)
	g := NewGenerator(cfg, src.Stream("workload"))
	if cc.Edges == 0 {
		cc.Edges = testEdges
	}
	if cc.EdgeOf == nil {
		cc.EdgeOf = testEdgeOf
	}
	return g, NewCohortStream(g, cc, src.Stream("cohort"))
}

func collect(s *CohortStream, to time.Duration) (arr, dep map[CohortKey]int, buckets int) {
	arr, dep = map[CohortKey]int{}, map[CohortKey]int{}
	s.Run(to, func(b *CohortBucket) {
		buckets++
		for _, c := range b.Arrivals {
			arr[c.Key] += c.Count
		}
		for _, c := range b.Departures {
			dep[c.Key] += c.Count
		}
	})
	return arr, dep, buckets
}

func sumCounts(m map[CohortKey]int) int {
	n := 0
	for _, k := range m {
		n += k
	}
	return n
}

// TestCohortMatchesPerViewerAggregates drives the per-viewer generator
// and the cohort stream from the same master seed and checks the cohort
// counts land on the per-viewer run's aggregate shape: total volume,
// channel popularity, and edge geography.
func TestCohortMatchesPerViewerAggregates(t *testing.T) {
	cfg := Config{Channels: 60, PeakViewsPerSec: 0.6}
	const horizon = 24 * time.Hour

	src := sim.NewSource(99)
	gv := NewGenerator(cfg, src.Stream("workload"))
	views := gv.Views(0, horizon)

	_, cs := cohortStream(99, cfg, CohortConfig{})
	arr, _, _ := collect(cs, horizon)

	nV, nC := len(views), sumCounts(arr)
	mean := float64(nV+nC) / 2
	if tol := 5 * math.Sqrt(2*mean); math.Abs(float64(nV-nC)) > tol {
		t.Fatalf("total arrivals: per-viewer %d vs cohort %d (tol %.0f)", nV, nC, tol)
	}

	// Channel marginal: head-of-Zipf shares should agree.
	chV := make([]int, cfg.Channels)
	for _, v := range views {
		chV[v.Channel]++
	}
	chC := make([]int, cfg.Channels)
	for k, n := range arr {
		chC[k.Channel] += n
	}
	for ch := 0; ch < 5; ch++ {
		sv := float64(chV[ch]) / float64(nV)
		sc := float64(chC[ch]) / float64(nC)
		if math.Abs(sv-sc) > 0.02 {
			t.Errorf("channel %d share: per-viewer %.3f vs cohort %.3f", ch, sv, sc)
		}
	}

	// Edge marginal: map per-viewer origins through the same quantizer.
	edV := make([]int, testEdges)
	for _, v := range views {
		edV[testEdgeOf(v.Lat, v.Lon)]++
	}
	edC := make([]int, testEdges)
	for k, n := range arr {
		edC[k.Edge] += n
	}
	for e := 0; e < testEdges; e++ {
		sv := float64(edV[e]) / float64(nV)
		sc := float64(edC[e]) / float64(nC)
		if math.Abs(sv-sc) > 0.03 {
			t.Errorf("edge %d share: per-viewer %.3f vs cohort %.3f", e, sv, sc)
		}
	}
}

// TestCohortDeparturesConserveViewers: after draining past the maximum
// view duration, every arrival has departed exactly once.
func TestCohortDeparturesConserveViewers(t *testing.T) {
	cfg := Config{Channels: 40, PeakViewsPerSec: 0.5, ViewMaxSecs: 1800}
	_, cs := cohortStream(7, cfg, CohortConfig{})

	horizon := 6 * time.Hour
	arr, dep := map[CohortKey]int{}, map[CohortKey]int{}
	cs.Run(horizon, func(b *CohortBucket) {
		for _, c := range b.Arrivals {
			arr[c.Key] += c.Count
		}
		for _, c := range b.Departures {
			dep[c.Key] += c.Count
		}
	})
	// Stop generating (rate continues, so subtract later arrivals) — run
	// a drain window collecting departures only.
	drained := map[CohortKey]int{}
	cs.Run(horizon+time.Duration(cfg.ViewMaxSecs+120)*time.Second, func(b *CohortBucket) {
		for _, c := range b.Arrivals {
			arr[c.Key] -= c.Count // exclude post-horizon arrivals...
			drained[c.Key] -= c.Count
		}
		for _, c := range b.Departures {
			drained[c.Key] += c.Count
		}
	})
	// Arrivals after horizon may themselves depart inside the drain
	// window, so exact per-key equality only holds in aggregate
	// expectation; the invariant we can pin exactly is that nothing is
	// lost: total departures over an infinite drain equal total arrivals.
	// Run a second, fully-drained short stream for the exact check.
	_, cs2 := cohortStream(8, Config{Channels: 20, PeakViewsPerSec: 0.3, ViewMaxSecs: 600}, CohortConfig{})
	a2, d2 := map[CohortKey]int{}, map[CohortKey]int{}
	cs2.Run(time.Hour, func(b *CohortBucket) {
		for _, c := range b.Arrivals {
			a2[c.Key] += c.Count
		}
		for _, c := range b.Departures {
			d2[c.Key] += c.Count
		}
	})
	// Freeze arrivals by draining with the rate still on but only
	// counting departures of pre-freeze viewers per key.
	pre := map[CohortKey]int{}
	for k, v := range a2 {
		pre[k] = v - d2[k]
	}
	for k, v := range pre {
		if v < 0 {
			t.Fatalf("key %+v departed more viewers than arrived: %d", k, v)
		}
	}
	if sumCounts(a2) < sumCounts(d2) {
		t.Fatalf("departures %d exceed arrivals %d", sumCounts(d2), sumCounts(a2))
	}
}

// TestCohortDiurnalShape: the cohort stream inherits the generator's
// diurnal curve — peak-hour arrivals dominate trough-hour arrivals by
// the same factor RateAt predicts.
func TestCohortDiurnalShape(t *testing.T) {
	cfg := Config{Channels: 40, PeakViewsPerSec: 1.2}
	g, cs := cohortStream(21, cfg, CohortConfig{})

	perHour := make([]int, 24)
	cs.Run(24*time.Hour, func(b *CohortBucket) {
		h := int(b.Start / time.Hour)
		for _, c := range b.Arrivals {
			perHour[h] += c.Count
		}
	})
	// Peak ≈ 13:48 UTC (home-market 21:00), trough ≈ 21:00 UTC.
	peak, trough := perHour[13], perHour[21]
	wantRatio := g.RateAt(13*time.Hour+30*time.Minute) / g.RateAt(21*time.Hour+30*time.Minute)
	got := float64(peak) / float64(trough)
	if got < wantRatio*0.7 || got > wantRatio*1.3 {
		t.Fatalf("diurnal ratio = %.2f, RateAt predicts %.2f (peak %d, trough %d)",
			got, wantRatio, peak, trough)
	}
}

// TestCohortFlashCrowdDoubles: a 2× flash event doubles cohort arrivals
// inside the window relative to an identically-seeded calm stream.
func TestCohortFlashCrowdDoubles(t *testing.T) {
	ev := FlashEvent{Start: 10 * time.Hour, End: 12 * time.Hour, Multiplier: 2}
	base := Config{Channels: 40, PeakViewsPerSec: 1.0}
	flash := base
	flash.Flash = []FlashEvent{ev}

	count := func(cfg Config) (in, out int) {
		_, cs := cohortStream(5, cfg, CohortConfig{})
		cs.Run(14*time.Hour, func(b *CohortBucket) {
			n := 0
			for _, c := range b.Arrivals {
				n += c.Count
			}
			if b.Start >= ev.Start && b.Start < ev.End {
				in += n
			} else {
				out += n
			}
		})
		return
	}
	calmIn, calmOut := count(base)
	flashIn, flashOut := count(flash)
	ratio := float64(flashIn) / float64(calmIn)
	if ratio < 1.85 || ratio > 2.15 {
		t.Fatalf("flash window ratio = %.2f, want ~2.0 (calm %d, flash %d)", ratio, calmIn, flashIn)
	}
	outRatio := float64(flashOut) / float64(calmOut)
	if outRatio < 0.95 || outRatio > 1.05 {
		t.Fatalf("outside-window ratio = %.2f, want ~1.0", outRatio)
	}
}

// TestCohortStreamDeterministic: identical seeds give byte-identical
// bucket sequences (the replay guarantee cohort chaos runs rely on).
func TestCohortStreamDeterministic(t *testing.T) {
	cfg := Config{Channels: 30, PeakViewsPerSec: 0.8}
	cc := CohortConfig{RungShare: []float64{0.6, 0.3, 0.1}}
	render := func() string {
		_, cs := cohortStream(77, cfg, cc)
		out := ""
		cs.Run(3*time.Hour, func(b *CohortBucket) {
			out += fmt.Sprintf("%v|%v|%v\n", b.Start, b.Arrivals, b.Departures)
		})
		return out
	}
	if a, b := render(), render(); a != b {
		t.Fatal("cohort stream is not deterministic for a fixed seed")
	}
}

// TestCohortRungShares: rung splits respect the configured shares, and
// bucket slices stay sorted by (Channel, Edge, Rung).
func TestCohortRungShares(t *testing.T) {
	cfg := Config{Channels: 30, PeakViewsPerSec: 1.5}
	shares := []float64{0.6, 0.3, 0.1}
	_, cs := cohortStream(13, cfg, CohortConfig{RungShare: shares})

	rung := make([]int, len(shares))
	total := 0
	cs.Run(12*time.Hour, func(b *CohortBucket) {
		for i := 1; i < len(b.Arrivals); i++ {
			if !keyLess(b.Arrivals[i-1].Key, b.Arrivals[i].Key) {
				t.Fatalf("arrivals not sorted at %v: %+v then %+v", b.Start, b.Arrivals[i-1], b.Arrivals[i])
			}
		}
		for i := 1; i < len(b.Departures); i++ {
			if !keyLess(b.Departures[i-1].Key, b.Departures[i].Key) {
				t.Fatalf("departures not sorted at %v", b.Start)
			}
		}
		for _, c := range b.Arrivals {
			rung[c.Key.Rung] += c.Count
			total += c.Count
		}
	})
	for i, want := range shares {
		got := float64(rung[i]) / float64(total)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("rung %d share = %.3f, want %.3f", i, got, want)
		}
	}
}

// TestMeanViewSecsAndQuadrature: the closed-form mean matches Monte
// Carlo sampling of the same bounded-Pareto model, and the duration
// quadrature integrates to the same mean.
func TestMeanViewSecsAndQuadrature(t *testing.T) {
	cfg := Config{}.withDefaults()
	want := cfg.MeanViewSecs()

	rng := sim.NewSource(3).Stream("mc")
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		d := rng.Pareto(cfg.ViewMinSecs, cfg.ViewAlpha)
		if d > cfg.ViewMaxSecs {
			d = cfg.ViewMaxSecs
		}
		sum += d
	}
	mc := sum / n
	if math.Abs(mc-want)/want > 0.03 {
		t.Fatalf("MeanViewSecs = %.2f, Monte Carlo %.2f", want, mc)
	}

	q := cfg.DurationQuadrature(12)
	wsum, dmean := 0.0, 0.0
	for _, p := range q {
		wsum += p.Weight
		dmean += p.Weight * p.Secs
	}
	if math.Abs(wsum-1) > 1e-6 {
		t.Fatalf("quadrature weights sum to %v", wsum)
	}
	if math.Abs(dmean-want)/want > 0.01 {
		t.Fatalf("quadrature mean %.2f vs closed form %.2f", dmean, want)
	}

	// Little's law plumbing: PeakViewsFor inverts the mean.
	if rate := cfg.PeakViewsFor(1_000_000); math.Abs(rate*want-1e6) > 1 {
		t.Fatalf("PeakViewsFor: %v * %v != 1e6", rate, want)
	}
}
