package workload

import (
	"math"
	"sort"
	"time"

	"livenet/internal/geo"
	"livenet/internal/sim"
)

// This file is the workload half of the million-viewer cohort machinery
// (DESIGN.md §11): instead of materializing one View per viewer, a
// CohortStream emits arrival/departure *counts* per (edge cluster,
// channel, bitrate rung) bucket by bucket, drawn from the same Zipf
// channel popularity, diurnal rate curve, viewer-origin geography, and
// bounded-Pareto duration model as Generator.Views. Cost per bucket is
// O(channels × edges), independent of the viewer count, which is what
// lets the macro sim run the paper's Taobao-scale load (millions of
// concurrent views) in seconds.

// CohortKey identifies one viewer cohort: everyone watching the same
// channel from the same edge cluster at the same bitrate rung.
type CohortKey struct {
	Edge    int // edge cluster (site) index
	Channel int // channel rank
	Rung    int // bitrate rung (0 = top)
}

// CohortCount is an aggregate arrival or departure event.
type CohortCount struct {
	Key   CohortKey
	Count int
}

// CohortBucket is one time bucket of aggregate workload. Arrivals are
// viewers joining during the bucket; Departures are viewers leaving by
// its end (including same-bucket short views). Both slices are sorted by
// (Channel, Edge, Rung) so consumers iterate deterministically.
type CohortBucket struct {
	Start, Width         time.Duration
	Arrivals, Departures []CohortCount
}

// CohortConfig parameterizes cohort aggregation.
type CohortConfig struct {
	// Edges is the number of edge clusters; EdgeOf maps a viewer origin
	// to one of them (e.g. geo.World.NearestSite).
	Edges  int
	EdgeOf func(lat, lon float64) int
	// RungShare splits viewers across bitrate rungs (normalized; nil or
	// single-element means everyone watches rung 0).
	RungShare []float64
	// OriginProbes sizes the Monte-Carlo estimate of the per-edge viewer
	// share (default 20000 probes of geo.ViewerOrigin).
	OriginProbes int
	// Bucket is the aggregation granularity (default 1 minute, matching
	// Generator.Views' Poisson thinning buckets).
	Bucket time.Duration
}

func (c CohortConfig) withDefaults() CohortConfig {
	if c.OriginProbes <= 0 {
		c.OriginProbes = 20000
	}
	if c.Bucket <= 0 {
		c.Bucket = time.Minute
	}
	if len(c.RungShare) == 0 {
		c.RungShare = []float64{1}
	}
	return c
}

// CohortStream turns a Generator's aggregate dynamics into per-cohort
// arrival/departure counts. It owns its RNG: constructing or running one
// never perturbs the Generator's per-viewer draw sequence.
type CohortStream struct {
	gen *Generator
	cc  CohortConfig
	rng *sim.Rand

	pEdge  []float64 // per-edge viewer share (Monte-Carlo from ViewerOrigin)
	pChan  []float64 // Zipf pmf over channel ranks
	offPMF []float64 // departure bucket-offset pmf (arrival-jitter smeared)

	cursor time.Duration       // next bucket start
	wheel  []map[CohortKey]int // pending departures, ring indexed by bucket
	pos    int                 // wheel slot for the bucket at cursor

	scratch []CohortCount
}

// NewCohortStream builds a cohort stream over gen's configuration. The
// rng must be dedicated to this stream (label-addressed via sim.Source),
// so cohort runs replay deterministically.
func NewCohortStream(gen *Generator, cc CohortConfig, rng *sim.Rand) *CohortStream {
	cc = cc.withDefaults()
	if cc.Edges <= 0 || cc.EdgeOf == nil {
		panic("workload: CohortConfig needs Edges and EdgeOf")
	}
	// Normalize rung shares.
	total := 0.0
	for _, w := range cc.RungShare {
		total += w
	}
	shares := make([]float64, len(cc.RungShare))
	for i, w := range cc.RungShare {
		shares[i] = w / total
	}
	cc.RungShare = shares

	s := &CohortStream{gen: gen, cc: cc, rng: rng}

	// Edge share: probe the same origin distribution per-viewer draws use.
	s.pEdge = make([]float64, cc.Edges)
	for i := 0; i < cc.OriginProbes; i++ {
		lat, lon, _ := geo.ViewerOrigin(rng)
		if e := cc.EdgeOf(lat, lon); e >= 0 && e < cc.Edges {
			s.pEdge[e]++
		}
	}
	for i := range s.pEdge {
		s.pEdge[i] /= float64(cc.OriginProbes)
	}

	// Channel popularity: the same normalized harmonic weights sim.Zipf
	// samples from.
	cfg := gen.cfg
	s.pChan = make([]float64, cfg.Channels)
	sum := 0.0
	for i := range s.pChan {
		s.pChan[i] = 1 / math.Pow(float64(i+1), cfg.ZipfS)
		sum += s.pChan[i]
	}
	for i := range s.pChan {
		s.pChan[i] /= sum
	}

	s.offPMF = departureOffsetPMF(cfg, cc.Bucket)
	s.wheel = make([]map[CohortKey]int, len(s.offPMF))
	for i := range s.wheel {
		s.wheel[i] = make(map[CohortKey]int)
	}
	return s
}

// EdgeShare returns the estimated per-edge viewer share (sums to ~1).
func (s *CohortStream) EdgeShare() []float64 { return s.pEdge }

// Run advances the stream from its cursor to `to`, invoking fn once per
// bucket. Calls are cumulative: Run(8h) then Run(24h) covers one day.
func (s *CohortStream) Run(to time.Duration, fn func(*CohortBucket)) {
	w := s.cc.Bucket
	for ; s.cursor < to; s.cursor += w {
		b := CohortBucket{Start: s.cursor, Width: w}

		lambda := s.gen.RateAt(s.cursor+w/2) * w.Seconds()
		n := poissonDraw(s.rng, lambda)

		// Split total arrivals channel → edge → rung with sequential
		// conditional binomials: the joint counts are exactly multinomial
		// in the product distribution, matching per-viewer sampling in
		// distribution at every marginal.
		s.splitCounts(n, s.pChan, func(ch, kc int) {
			s.splitCounts(kc, s.pEdge, func(edge, ke int) {
				s.splitRungs(ke, func(rung, k int) {
					key := CohortKey{Edge: edge, Channel: ch, Rung: rung}
					b.Arrivals = append(b.Arrivals, CohortCount{Key: key, Count: k})
					// Schedule departures across future buckets.
					s.splitCounts(k, s.offPMF, func(off, kd int) {
						s.wheel[(s.pos+off)%len(s.wheel)][key] += kd
					})
				})
			})
		})

		// Drain this bucket's departures in deterministic key order.
		due := s.wheel[s.pos]
		if len(due) > 0 {
			s.scratch = s.scratch[:0]
			for key, k := range due {
				s.scratch = append(s.scratch, CohortCount{Key: key, Count: k})
				delete(due, key)
			}
			sort.Slice(s.scratch, func(i, j int) bool { return keyLess(s.scratch[i].Key, s.scratch[j].Key) })
			b.Departures = append(b.Departures, s.scratch...)
		}
		s.pos = (s.pos + 1) % len(s.wheel)

		fn(&b)
	}
}

func keyLess(a, b CohortKey) bool {
	if a.Channel != b.Channel {
		return a.Channel < b.Channel
	}
	if a.Edge != b.Edge {
		return a.Edge < b.Edge
	}
	return a.Rung < b.Rung
}

// splitCounts partitions n draws across the categorical distribution
// probs via sequential conditional binomials, calling fn(i, k) for every
// index with k > 0 draws.
func (s *CohortStream) splitCounts(n int, probs []float64, fn func(i, k int)) {
	rem, remP := n, 1.0
	for i, p := range probs {
		if rem == 0 {
			return
		}
		if p <= 0 {
			continue
		}
		cond := p / remP
		var k int
		if cond >= 1 || i == len(probs)-1 {
			k = rem
		} else {
			k = s.rng.Binomial(rem, cond)
		}
		if k > 0 {
			fn(i, k)
		}
		rem -= k
		remP -= p
		if remP <= 1e-12 {
			if rem > 0 && k != rem {
				// Numerical leftover: assign to this index.
				fn(i, rem)
			}
			return
		}
	}
}

func (s *CohortStream) splitRungs(n int, fn func(rung, k int)) {
	if len(s.cc.RungShare) == 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	s.splitCounts(n, s.cc.RungShare, fn)
}

// --- bounded-Pareto duration model, shared with the cohort engines ---

// viewSurvival returns P(view duration > x seconds) for the capped
// bounded-Pareto duration min(Pareto(xmin, alpha), max).
func (c Config) viewSurvival(x float64) float64 {
	c = c.withDefaults()
	switch {
	case x < c.ViewMinSecs:
		return 1
	case x >= c.ViewMaxSecs:
		return 0
	default:
		return math.Pow(c.ViewMinSecs/x, c.ViewAlpha)
	}
}

// MeanViewSecs returns the expected view duration in seconds:
// E[min(Pareto(xmin, alpha), max)] in closed form.
func (c Config) MeanViewSecs() float64 {
	c = c.withDefaults()
	xmin, a, cap := c.ViewMinSecs, c.ViewAlpha, c.ViewMaxSecs
	if a == 1 {
		return xmin * (1 + math.Log(cap/xmin))
	}
	return xmin + math.Pow(xmin, a)*(math.Pow(xmin, 1-a)-math.Pow(cap, 1-a))/(a-1)
}

// PeakViewsFor returns the arrival rate (views/sec) whose steady-state
// concurrency at the diurnal peak is the target viewer count, by
// Little's law: L = λ · E[duration].
func (c Config) PeakViewsFor(viewers int) float64 {
	return float64(viewers) / c.MeanViewSecs()
}

// DurPoint is one quadrature point of the view-duration distribution.
type DurPoint struct {
	Secs   float64 // conditional mean duration within the band
	Weight float64 // probability mass of the band
}

// DurationQuadrature compresses the duration distribution into ~points
// log-spaced bands, each carrying its mass and conditional mean, plus
// the cap atom. The cohort engines evaluate per-duration QoE
// expectations (e.g. P(zero stalls) = Σ w·exp(-d·rate)) over these
// points instead of per viewer.
func (c Config) DurationQuadrature(points int) []DurPoint {
	c = c.withDefaults()
	if points < 2 {
		points = 2
	}
	xmin, a, cap := c.ViewMinSecs, c.ViewAlpha, c.ViewMaxSecs
	// E[D · 1{lo <= D < hi}] for the continuous part.
	bandMean := func(lo, hi float64) float64 {
		if a == 1 {
			return xmin * math.Log(hi/lo)
		}
		return a / (a - 1) * math.Pow(xmin, a) * (math.Pow(lo, 1-a) - math.Pow(hi, 1-a))
	}
	// Continuous (uncapped) survival: the cap's probability atom is added
	// separately, so bands must not absorb it.
	surv := func(x float64) float64 {
		if x <= xmin {
			return 1
		}
		return math.Pow(xmin/x, a)
	}
	ratio := math.Pow(cap/xmin, 1/float64(points))
	out := make([]DurPoint, 0, points+1)
	lo := xmin
	for i := 0; i < points; i++ {
		hi := lo * ratio
		if i == points-1 {
			hi = cap
		}
		wgt := surv(lo) - surv(hi)
		if wgt > 1e-15 {
			out = append(out, DurPoint{Secs: bandMean(lo, hi) / wgt, Weight: wgt})
		}
		lo = hi
	}
	if atom := math.Pow(xmin/cap, a); atom > 1e-15 {
		out = append(out, DurPoint{Secs: cap, Weight: atom})
	}
	return out
}

// departureOffsetPMF returns P(a view arriving uniformly within a bucket
// departs `j` buckets later), smearing the duration distribution by the
// uniform arrival jitter: pmf[j] = ∫₀¹ [S((j-u)·w) - S((j+1-u)·w)] du.
func departureOffsetPMF(c Config, bucket time.Duration) []float64 {
	c = c.withDefaults()
	w := bucket.Seconds()
	jmax := int(math.Ceil(c.ViewMaxSecs/w)) + 1
	pmf := make([]float64, jmax+1)
	const q = 16 // midpoint quadrature over the arrival jitter
	for j := 0; j <= jmax; j++ {
		acc := 0.0
		for k := 0; k < q; k++ {
			u := (float64(k) + 0.5) / q
			acc += c.viewSurvival((float64(j)-u)*w) - c.viewSurvival((float64(j)+1-u)*w)
		}
		pmf[j] = acc / q
	}
	return pmf
}

// poissonDraw draws a Poisson variate from rng (Knuth for small lambda,
// normal approximation for large) — shared by Generator.Views and the
// cohort stream.
func poissonDraw(rng *sim.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 50 {
		n := int(rng.Normal(lambda, math.Sqrt(lambda)) + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}
