package workload

import (
	"testing"
	"time"

	"livenet/internal/sim"
)

func gen(seed int64, cfg Config) *Generator {
	return NewGenerator(cfg, sim.NewSource(seed).Stream("wl"))
}

func TestChannelsGenerated(t *testing.T) {
	g := gen(1, Config{Channels: 100})
	chs := g.Channels()
	if len(chs) != 100 {
		t.Fatalf("channels = %d", len(chs))
	}
	popular := 0
	seen := map[uint32]bool{}
	for i, c := range chs {
		if c.Rank != i {
			t.Fatalf("rank %d at index %d", c.Rank, i)
		}
		if seen[c.StreamID] {
			t.Fatalf("duplicate stream ID %d", c.StreamID)
		}
		seen[c.StreamID] = true
		if c.Popular {
			popular++
		}
	}
	if popular < 1 || popular > 5 {
		t.Fatalf("popular channels = %d, want ~2%%", popular)
	}
}

func TestDiurnalRateShape(t *testing.T) {
	g := gen(2, Config{PeakViewsPerSec: 10})
	// Home market is CN (UTC+~7.2): local 21:00 ≈ 13:48 UTC.
	peak := g.RateAt(13*time.Hour + 48*time.Minute)
	trough := g.RateAt(21 * time.Hour) // ≈ 4:12 am local
	if peak <= 2*trough {
		t.Fatalf("peak %v should dwarf trough %v", peak, trough)
	}
	if peak > 10.001 {
		t.Fatalf("rate exceeds configured peak: %v", peak)
	}
}

func TestFlashMultiplier(t *testing.T) {
	ev := FlashEvent{Start: 10 * time.Hour, End: 12 * time.Hour, Multiplier: 2}
	g := gen(3, Config{PeakViewsPerSec: 10, Flash: []FlashEvent{ev}})
	in := g.RateAt(11 * time.Hour)
	g2 := gen(3, Config{PeakViewsPerSec: 10})
	base := g2.RateAt(11 * time.Hour)
	if in < base*1.9 || in > base*2.1 {
		t.Fatalf("flash rate %v, want 2x of %v", in, base)
	}
}

func TestViewsSortedAndInRange(t *testing.T) {
	g := gen(4, Config{Channels: 50, PeakViewsPerSec: 5})
	from, to := 6*time.Hour, 8*time.Hour
	views := g.Views(from, to)
	if len(views) == 0 {
		t.Fatal("no views generated")
	}
	prev := time.Duration(-1)
	for _, v := range views {
		if v.Start < from || v.Start >= to {
			t.Fatalf("view start %v outside [%v,%v)", v.Start, from, to)
		}
		if v.Start < prev {
			t.Fatal("views not sorted")
		}
		prev = v.Start
		if v.Duration < 20*time.Second || v.Duration > time.Hour {
			t.Fatalf("duration %v outside bounds", v.Duration)
		}
		if v.Channel < 0 || v.Channel >= 50 {
			t.Fatalf("channel %d out of range", v.Channel)
		}
	}
}

func TestViewsFollowDiurnalVolume(t *testing.T) {
	g := gen(5, Config{Channels: 50, PeakViewsPerSec: 8})
	// CN evening (UTC ~13-15h) vs CN night (UTC ~20-22h).
	evening := len(g.Views(13*time.Hour, 15*time.Hour))
	night := len(g.Views(20*time.Hour, 22*time.Hour))
	if evening <= night*2 {
		t.Fatalf("evening views %d should far exceed night %d", evening, night)
	}
}

func TestZipfPopularityInViews(t *testing.T) {
	g := gen(6, Config{Channels: 100, PeakViewsPerSec: 20})
	views := g.Views(12*time.Hour, 16*time.Hour)
	counts := make([]int, 100)
	for _, v := range views {
		counts[v.Channel]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 (%d views) should beat rank 50 (%d)", counts[0], counts[50])
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := gen(7, Config{Channels: 30, PeakViewsPerSec: 5}).Views(0, 2*time.Hour)
	b := gen(7, Config{Channels: 30, PeakViewsPerSec: 5}).Views(0, 2*time.Hour)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different views")
		}
	}
}

func TestPoissonMean(t *testing.T) {
	g := gen(8, Config{})
	for _, lambda := range []float64{0.5, 5, 200} {
		sum := 0
		const n = 3000
		for i := 0; i < n; i++ {
			sum += g.poisson(lambda)
		}
		mean := float64(sum) / n
		if mean < lambda*0.9 || mean > lambda*1.1 {
			t.Fatalf("poisson(%v) mean = %v", lambda, mean)
		}
	}
	if g.poisson(0) != 0 || g.poisson(-1) != 0 {
		t.Fatal("nonpositive lambda should yield 0")
	}
}

func TestDayHourHelpers(t *testing.T) {
	if Day(0) != 0 || Day(25*time.Hour) != 1 || Day(49*time.Hour) != 2 {
		t.Fatal("Day wrong")
	}
	if Hour(0) != 0 || Hour(23*time.Hour) != 23 || Hour(25*time.Hour) != 1 {
		t.Fatal("Hour wrong")
	}
}

func TestDouble12Window(t *testing.T) {
	ev := Double12()
	if Day(ev.Start) != 10 {
		t.Fatalf("Double 12 starts day %d, want 10 (Dec 11)", Day(ev.Start))
	}
	if Day(ev.End) != 11 {
		t.Fatalf("Double 12 ends day %d, want 11 (Dec 12)", Day(ev.End))
	}
	if ev.Multiplier != 2.0 {
		t.Fatalf("multiplier = %v", ev.Multiplier)
	}
	if Hour(ev.Start) != 20 {
		t.Fatalf("starts at hour %d, want 20:00", Hour(ev.Start))
	}
}
