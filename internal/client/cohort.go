package client

import (
	"livenet/internal/stats"
	"livenet/internal/telemetry"
)

// CohortBatch carries the analytic per-view expectations for a batch of
// identically-situated viewers (same edge cluster, channel, and bitrate
// rung). The cohort macro engine computes these once per
// (site, channel, rung) class and folds them in weighted by the batch
// size, instead of simulating each viewer.
type CohortBatch struct {
	MeanViewSecs     float64 // expected view duration per viewer (seconds)
	CDNDelayMs       float64 // expected CDN/first-packet delay (ms)
	PathLen          float64 // overlay hops on the serving path
	StreamingMs      float64 // expected steady-state streaming delay (ms)
	StartupMs        float64 // expected startup delay (ms)
	PZeroStall       float64 // P(view completes with zero stalls)
	PFastStart       float64 // P(startup <= 1 s)
	StallsPerView    float64 // expected stall events per view
	StallSecsPerView float64 // expected stalled seconds per view
}

// Cohort pools the playback-buffer and QoE accounting of many viewers
// into weighted aggregates: exact viewers (tracers and stream
// establishers) enter through AddViewer with unit weight, and the
// remaining mass of each cohort enters through AddBatch as analytic
// expectations. Memory is O(1) in the number of represented viewers,
// which is what lets the macro sim reach 10⁶–10⁷ viewers.
// The zero value is ready to use.
type Cohort struct {
	// Viewers is the total represented viewer count (exact + batched).
	Viewers float64
	// ViewerSeconds is the total watched time across all viewers.
	ViewerSeconds float64
	// TracerViews counts the exactly-simulated viewers folded in.
	TracerViews int

	Startup    stats.WSample // startup delay (ms)
	CDNDelayMs stats.WSample // CDN/first-packet delay (ms)
	PathLen    stats.WSample // overlay path length (hops)
	Streaming  stats.WSample // streaming delay (ms)

	ZeroStall stats.WRatio // views with zero stalls
	FastStart stats.WRatio // startup <= 1 s

	// ExpectedStalls is the total stall-event count (exact counts plus
	// batch expectations); StallSeconds the total stalled wall time.
	ExpectedStalls float64
	StallSeconds   float64
}

// AddViewer folds one exactly-simulated view (a tracer or a stream
// establisher) into the cohort with unit weight.
func (c *Cohort) AddViewer(viewSecs, cdnMs, pathLen, streamingMs, startupMs float64, stalls int, stallSecs float64) {
	c.Viewers++
	c.ViewerSeconds += viewSecs
	c.TracerViews++
	c.Startup.Add(startupMs, 1)
	c.CDNDelayMs.Add(cdnMs, 1)
	c.PathLen.Add(pathLen, 1)
	c.Streaming.Add(streamingMs, 1)
	c.ZeroStall.ObserveBool(stalls == 0)
	c.FastStart.ObserveBool(startupMs <= 1000)
	c.ExpectedStalls += float64(stalls)
	c.StallSeconds += stallSecs
}

// AddBatch folds n identically-distributed viewers in by expectation.
func (c *Cohort) AddBatch(n float64, b CohortBatch) {
	if n <= 0 {
		return
	}
	c.Viewers += n
	c.ViewerSeconds += n * b.MeanViewSecs
	c.Startup.Add(b.StartupMs, n)
	c.CDNDelayMs.Add(b.CDNDelayMs, n)
	c.PathLen.Add(b.PathLen, n)
	c.Streaming.Add(b.StreamingMs, n)
	c.ZeroStall.Observe(b.PZeroStall, n)
	c.FastStart.Observe(b.PFastStart, n)
	c.ExpectedStalls += n * b.StallsPerView
	c.StallSeconds += n * b.StallSecsPerView
}

// Merge folds another cohort into c.
func (c *Cohort) Merge(o *Cohort) {
	if o == nil {
		return
	}
	c.Viewers += o.Viewers
	c.ViewerSeconds += o.ViewerSeconds
	c.TracerViews += o.TracerViews
	c.Startup.Merge(o.Startup)
	c.CDNDelayMs.Merge(o.CDNDelayMs)
	c.PathLen.Merge(o.PathLen)
	c.Streaming.Merge(o.Streaming)
	c.ZeroStall.Merge(o.ZeroStall)
	c.FastStart.Merge(o.FastStart)
	c.ExpectedStalls += o.ExpectedStalls
	c.StallSeconds += o.StallSeconds
}

// RebufferRatio returns stalled time as a fraction of watched time.
func (c *Cohort) RebufferRatio() float64 {
	if c.ViewerSeconds == 0 {
		return 0
	}
	return c.StallSeconds / c.ViewerSeconds
}

// Publish registers the cohort's aggregates as cohort.* metrics in r
// (see OBSERVABILITY.md). Counters carry the integer totals; gauges the
// weighted means and ratios. Safe on a nil registry.
func (c *Cohort) Publish(r *telemetry.Registry) {
	r.Counter("cohort.viewers").Add(uint64(c.Viewers))
	r.Counter("cohort.tracer_views").Add(uint64(c.TracerViews))
	r.Gauge("cohort.viewer_seconds").Set(c.ViewerSeconds)
	r.Gauge("cohort.expected_stalls").Set(c.ExpectedStalls)
	r.Gauge("cohort.stall_seconds").Set(c.StallSeconds)
	r.Gauge("cohort.rebuffer_ratio").Set(c.RebufferRatio())
	r.Gauge("cohort.zero_stall_pct").Set(c.ZeroStall.Percent())
	r.Gauge("cohort.fast_start_pct").Set(c.FastStart.Percent())
	r.Gauge("cohort.startup_ms_mean").Set(c.Startup.Mean())
	r.Gauge("cohort.streaming_ms_mean").Set(c.Streaming.Mean())
	r.Gauge("cohort.cdn_delay_ms_mean").Set(c.CDNDelayMs.Mean())
	r.Gauge("cohort.path_len_mean").Set(c.PathLen.Mean())
}
