package client

import (
	"testing"
	"time"

	"livenet/internal/media"
	"livenet/internal/netem"
	"livenet/internal/node"
	"livenet/internal/sim"
	"livenet/internal/wire"
)

// rig is a two-node LiveNet slice: broadcaster -> producer(0) ->
// consumer(1) -> viewer.
type rig struct {
	loop     *sim.Loop
	net      *netem.Network
	producer *node.Node
	consumer *node.Node
	bc       *Broadcaster
	viewer   *Viewer
}

const (
	bcID     = 1000
	viewerID = 2000
	sidBase  = 100
)

func newRig(t *testing.T, seed int64, overlayLoss float64, lastMileLoss float64) *rig {
	t.Helper()
	loop := sim.NewLoop(seed)
	net := netem.New(loop, loop.RNG("netem"))
	r := &rig{loop: loop, net: net}

	lookup := func(sid uint32, consumer int, cb func([][]int, error)) {
		loop.AfterFunc(10*time.Millisecond, func() { cb([][]int{{0, 1}}, nil) })
	}
	mk := func(id int) *node.Node {
		n := node.New(node.Config{
			ID: id, Clock: loop, Net: net,
			PathLookup: lookup,
			LinkRTT:    func(int) time.Duration { return 20 * time.Millisecond },
			IsOverlay:  func(id int) bool { return id < bcID },
		})
		net.Handle(id, n.OnMessage)
		return n
	}
	r.producer = mk(0)
	r.consumer = mk(1)

	mkLink := func(a, b int, loss float64) {
		cfg := netem.LinkConfig{RTT: 20 * time.Millisecond, BandwidthBps: 100e6}
		if loss > 0 {
			cfg.Loss = func(time.Duration) float64 { return loss }
		}
		net.AddDuplex(a, b, cfg)
	}
	mkLink(bcID, 0, 0)
	mkLink(0, 1, overlayLoss)
	mkLink(1, viewerID, lastMileLoss)

	r.bc = NewBroadcaster(bcID, 0, sidBase, media.DefaultRenditions[:1], loop, net, loop.RNG("bc"))
	r.viewer = NewViewer(viewerID, r.bc.StreamID(0), 1, loop, net)
	net.Handle(viewerID, r.viewer.OnMessage)
	return r
}

func TestBroadcasterStreams(t *testing.T) {
	r := newRig(t, 1, 0, 0)
	var got int
	r.net.Handle(0, func(from int, data []byte) {
		if wire.Kind(data) == wire.MsgRTP {
			got++
		}
	})
	r.bc.Start()
	r.loop.RunUntil(2 * time.Second)
	r.bc.Stop()
	if got < 100 {
		t.Fatalf("producer received %d packets in 2s, want many", got)
	}
	n := got
	r.loop.RunUntil(4 * time.Second)
	if got > n+20 { // a few in-flight packets may still land
		t.Fatalf("broadcaster kept sending after Stop: %d -> %d", n, got)
	}
}

func TestBroadcasterSimulcastIDs(t *testing.T) {
	loop := sim.NewLoop(2)
	net := netem.New(loop, loop.RNG("n"))
	b := NewBroadcaster(bcID, 0, 500, media.DefaultRenditions, loop, net, loop.RNG("bc"))
	if b.StreamID(0) != 500 || b.StreamID(1) != 501 || b.StreamID(2) != 502 {
		t.Fatalf("stream IDs: %d %d %d", b.StreamID(0), b.StreamID(1), b.StreamID(2))
	}
	if b.AudioStreamID() != 503 {
		t.Fatalf("audio ID = %d", b.AudioStreamID())
	}
}

func TestViewerPlaybackCleanNetwork(t *testing.T) {
	r := newRig(t, 3, 0, 0)
	r.bc.Start()
	r.loop.AfterFunc(2*time.Second, func() {
		r.viewer.Attach()
		r.consumer.AttachViewer(viewerID, r.bc.StreamID(0))
	})
	r.loop.RunUntil(14 * time.Second)
	s := r.viewer.Stats()
	if !s.Started {
		t.Fatal("playback never started")
	}
	if s.StartupDelay > time.Second {
		t.Fatalf("startup delay = %v, want fast startup on a clean path", s.StartupDelay)
	}
	if s.Stalls != 0 {
		t.Fatalf("stalls = %d on a clean network", s.Stalls)
	}
	if s.FramesPlayed < 200 {
		t.Fatalf("frames played = %d, want most of ~300", s.FramesPlayed)
	}
	if len(s.StreamingDelay) == 0 {
		t.Fatal("no streaming-delay samples (delay ext lost?)")
	}
	med := s.MedianStreamingDelay()
	// encode 80ms + first mile 15ms + hops + 300ms buffer + 20ms decode.
	if med < 400*time.Millisecond || med > 900*time.Millisecond {
		t.Fatalf("median streaming delay = %v, want sub-second", med)
	}
}

func TestViewerStallsOnBandwidthOutage(t *testing.T) {
	// Random loss alone is absorbed by NACK recovery; what stalls real
	// viewers is a last-mile bandwidth collapse (the dips §5.2's frame
	// dropping targets). Throttle the access link below the stream rate
	// mid-view and verify the playback model registers stalls.
	run := func(throttle bool) int {
		r := newRig(t, 4, 0, 0)
		r.bc.Start()
		r.loop.AfterFunc(time.Second, func() {
			r.viewer.Attach()
			r.consumer.AttachViewer(viewerID, r.bc.StreamID(0))
		})
		if throttle {
			r.loop.AfterFunc(5*time.Second, func() {
				r.net.SetBandwidth(1, viewerID, 150_000) // far below stream rate
			})
			r.loop.AfterFunc(9*time.Second, func() {
				r.net.SetBandwidth(1, viewerID, 20e6)
			})
		}
		r.loop.RunUntil(20 * time.Second)
		return r.viewer.Stats().Stalls
	}
	clean := run(false)
	dirty := run(true)
	if dirty <= clean {
		t.Fatalf("stalls: clean=%d outage=%d; a bandwidth outage should stall", clean, dirty)
	}
}

func TestViewerNACKRecoversLastMileLoss(t *testing.T) {
	r := newRig(t, 5, 0, 0.05)
	r.bc.Start()
	r.loop.AfterFunc(time.Second, func() {
		r.viewer.Attach()
		r.consumer.AttachViewer(viewerID, r.bc.StreamID(0))
	})
	r.loop.RunUntil(15 * time.Second)
	s := r.viewer.Stats()
	if !s.Started {
		t.Fatal("never started")
	}
	// With NACK recovery at 5% loss, nearly all frames should complete.
	total := s.FramesPlayed + s.FramesMissed
	if total == 0 || float64(s.FramesPlayed)/float64(total) < 0.9 {
		t.Fatalf("played %d / %d; NACK recovery ineffective", s.FramesPlayed, total)
	}
	// The consumer must have seen and served retransmission requests.
	if r.consumer.Metrics().NACKsReceived == 0 {
		t.Fatal("consumer received no NACKs from the viewer")
	}
	if r.consumer.Metrics().Retransmits == 0 {
		t.Fatal("consumer never retransmitted to the viewer")
	}
}

func TestViewerOnStallCallback(t *testing.T) {
	r := newRig(t, 6, 0, 0.3)
	fired := 0
	r.viewer.OnStall = func(count int) { fired = count }
	r.bc.Start()
	r.loop.AfterFunc(time.Second, func() {
		r.viewer.Attach()
		r.consumer.AttachViewer(viewerID, r.bc.StreamID(0))
	})
	r.loop.RunUntil(20 * time.Second)
	if r.viewer.Stats().Stalls > 0 && fired == 0 {
		t.Fatal("stalls occurred but OnStall never fired")
	}
}

func TestFastStartupPredicate(t *testing.T) {
	s := ViewStats{Started: true, StartupDelay: 900 * time.Millisecond}
	if !s.FastStartup() {
		t.Fatal("900ms should be a fast startup")
	}
	s.StartupDelay = 1100 * time.Millisecond
	if s.FastStartup() {
		t.Fatal("1.1s is not fast startup")
	}
	if (ViewStats{}).FastStartup() {
		t.Fatal("unstarted view can't be fast startup")
	}
}

func TestMedianStreamingDelay(t *testing.T) {
	s := ViewStats{StreamingDelay: []time.Duration{5, 1, 3}}
	if s.MedianStreamingDelay() != 3 {
		t.Fatalf("median = %v", s.MedianStreamingDelay())
	}
	if (ViewStats{}).MedianStreamingDelay() != 0 {
		t.Fatal("empty median should be 0")
	}
}

func TestViewerCloseStopsTimers(t *testing.T) {
	r := newRig(t, 7, 0, 0)
	r.viewer.Attach()
	r.viewer.Close()
	// After close, the loop should quiesce: run a bounded horizon and
	// ensure the viewer recorded nothing further.
	r.loop.RunUntil(2 * time.Second)
	if r.viewer.Stats().Started {
		t.Fatal("closed viewer should not start playback")
	}
}

func TestViewerSendsFeedback(t *testing.T) {
	// The viewer's RR/REMB must reach the consumer and adapt its
	// per-client pacer (the consumer evaluates the viewer's bandwidth on
	// its behalf, §5.2).
	r := newRig(t, 9, 0, 0)
	r.bc.Start()
	r.loop.AfterFunc(time.Second, func() {
		r.viewer.Attach()
		r.consumer.AttachViewer(viewerID, r.bc.StreamID(0))
	})
	r.loop.RunUntil(8 * time.Second)
	rate, _, ok := r.consumer.LinkState(viewerID)
	if !ok {
		t.Fatal("no consumer->viewer link state")
	}
	// The pacer should have moved off its initial default toward the
	// viewer's REMB estimate (any adaptation counts).
	if rate == 8e6 {
		t.Fatalf("consumer pacer never adapted to viewer feedback: %v", rate)
	}
	if !r.viewer.Stats().Started {
		t.Fatal("playback broken by feedback loop")
	}
}
