// Package client implements the end-user endpoints: the Broadcaster that
// uploads simulcast renditions to its producer node (over WebRTC in the
// paper; over the overlay wire protocol here), and the Viewer with the
// playback model that produces the paper's QoE metrics — startup delay,
// stall count, and streaming delay measured via the RTP delay header
// extension (§6.1).
package client

import (
	"slices"
	"sync"
	"time"

	"livenet/internal/gcc"
	"livenet/internal/gop"
	"livenet/internal/media"
	"livenet/internal/rtp"
	"livenet/internal/sim"
	"livenet/internal/telemetry"
	"livenet/internal/wire"
)

// Sender matches node.Sender (kept local to avoid the dependency).
type Sender interface {
	Send(from, to int, data []byte) error
}

// Broadcaster uploads one or more simulcast renditions to a producer node.
type Broadcaster struct {
	ID       int
	Producer int
	Clock    sim.Clock
	Net      Sender
	// EncodeDelay is the encoding+capture latency seeded into the delay
	// extension of I-frame packets (default 80 ms; §2.3 footnote says
	// ~150 ms covers encoding plus first-mile).
	EncodeDelay time.Duration
	// FirstMileRTT is added (halved) to the seed, per §6.1.
	FirstMileRTT time.Duration

	sim      *media.Simulcast
	audio    media.AudioSource
	audioPkt *media.Packetizer
	pktizers []*media.Packetizer
	running  bool
	stopped  bool
	mu       sync.Mutex

	packetsSent *telemetry.Counter
}

// NewBroadcaster creates a broadcaster for the given renditions. Each
// rendition becomes its own stream: streamIDs[i] = baseStreamID + i
// (each bitrate version has a unique stream ID, §5.2).
func NewBroadcaster(id, producer int, baseStreamID uint32, rends []media.Rendition, clock sim.Clock, net Sender, rng *sim.Rand) *Broadcaster {
	b := &Broadcaster{
		ID:           id,
		Producer:     producer,
		Clock:        clock,
		Net:          net,
		EncodeDelay:  80 * time.Millisecond,
		FirstMileRTT: 30 * time.Millisecond,
		sim:          media.NewSimulcast(rends, rng),
		audioPkt:     media.NewPacketizer(baseStreamID + uint32(len(rends))),
	}
	for i := range rends {
		b.pktizers = append(b.pktizers, media.NewPacketizer(baseStreamID+uint32(i)))
	}
	b.Instrument(nil)
	return b
}

// Instrument registers the broadcaster's client.* counters in r (shared
// across clients — the registry holds fleet totals). Call before Start;
// nil keeps private unregistered instruments.
func (b *Broadcaster) Instrument(r *telemetry.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.packetsSent = r.Counter("client.packets_sent")
}

// StreamID returns the stream ID of rendition i.
func (b *Broadcaster) StreamID(i int) uint32 { return b.pktizers[i].SSRC }

// AudioStreamID returns the audio stream's ID.
func (b *Broadcaster) AudioStreamID() uint32 { return b.audioPkt.SSRC }

// Start begins uploading frames until Stop.
func (b *Broadcaster) Start() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.running {
		return
	}
	b.running = true
	b.stopped = false
	b.tickVideo()
	b.tickAudio()
}

// Stop ends the upload.
func (b *Broadcaster) Stop() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stopped = true
	b.running = false
}

func (b *Broadcaster) seed10us() uint32 {
	return uint32((b.EncodeDelay + b.FirstMileRTT/2) / (10 * time.Microsecond))
}

func (b *Broadcaster) tickVideo() {
	b.Clock.AfterFunc(b.sim.Encoders[0].FrameInterval(), func() {
		b.mu.Lock()
		if b.stopped {
			b.mu.Unlock()
			return
		}
		frames := b.sim.NextFrames()
		now10us := uint32(b.Clock.Now() / (10 * time.Microsecond))
		var sends [][]byte
		for i, f := range frames {
			for _, pkt := range b.pktizers[i].Packetize(f, b.seed10us(), nil) {
				sends = append(sends, wire.FrameRTP(nil, now10us, pkt.Marshal(nil)))
			}
		}
		b.mu.Unlock()
		b.packetsSent.Add(uint64(len(sends)))
		for _, s := range sends {
			b.Net.Send(b.ID, b.Producer, s)
		}
		b.tickVideo()
	})
}

func (b *Broadcaster) tickAudio() {
	b.Clock.AfterFunc(media.AudioFrameInterval, func() {
		b.mu.Lock()
		if b.stopped {
			b.mu.Unlock()
			return
		}
		f := b.audio.NextFrame()
		now10us := uint32(b.Clock.Now() / (10 * time.Microsecond))
		var sends [][]byte
		for _, pkt := range b.audioPkt.Packetize(f, b.seed10us(), nil) {
			sends = append(sends, wire.FrameRTP(nil, now10us, pkt.Marshal(nil)))
		}
		b.mu.Unlock()
		b.packetsSent.Add(uint64(len(sends)))
		for _, s := range sends {
			b.Net.Send(b.ID, b.Producer, s)
		}
		b.tickAudio()
	})
}

// ViewStats are the per-view QoE metrics logged at clients (§6.1).
type ViewStats struct {
	Started      bool
	StartupDelay time.Duration
	Stalls       int
	FramesPlayed int
	FramesMissed int
	// StreamingDelay samples: broadcaster capture → display, from the RTP
	// delay extension plus client buffering and decode.
	StreamingDelay []time.Duration
}

// FastStartup reports whether playback began within 1 second (§2.1).
func (s ViewStats) FastStartup() bool {
	return s.Started && s.StartupDelay <= time.Second
}

// MedianStreamingDelay returns the median sample (0 if none).
func (s ViewStats) MedianStreamingDelay() time.Duration {
	if len(s.StreamingDelay) == 0 {
		return 0
	}
	// Insertion copy; samples are few per view.
	c := append([]time.Duration(nil), s.StreamingDelay...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c[len(c)/2]
}

// Viewer receives a stream from its consumer node and runs the playback
// model: a fixed jitter buffer (300 ms in Taobao Live), startup on the
// first buffered I frame, and stall accounting when a frame misses its
// play deadline.
type Viewer struct {
	ID       int
	StreamID uint32
	Consumer int
	Clock    sim.Clock
	Net      Sender
	// Buffer is the playback buffer length (default 300 ms, §6.2).
	Buffer time.Duration
	// DecodeDelay is the client decode latency (default 20 ms).
	DecodeDelay time.Duration
	// OnStall fires on each stall with the running count — the node layer
	// uses it for quality-triggered path switching.
	OnStall func(count int)

	mu        sync.Mutex
	assembler *gop.Assembler
	attach    time.Duration

	// Receiver-side GCC toward the consumer (the client half of the
	// WebRTC loop): delay-gradient estimation feeds an AIMD estimate that
	// is REMBed upstream so the consumer's per-client pacer adapts.
	ia    gcc.InterArrival
	trend *gcc.TrendlineEstimator
	aimd  *gcc.AIMD
	meter *gcc.RateMeter

	received   uint64
	lastRRHigh uint16
	lastRRRecv uint64
	lastReport time.Duration

	started   bool
	playStart time.Duration // wall time when playback began
	basePTS   uint32        // RTP timestamp of the first played frame
	timeShift time.Duration // accumulated rebuffer shifts
	lastStall time.Duration
	lastFrame uint32 // highest completed frame ID
	// gaps tracks frame IDs skipped in completion order with the time the
	// gap appeared; frames may complete out of order (loss recovery), so
	// a gap only counts as missed content if it never fills.
	gaps map[uint32]time.Duration

	// Slow-path-style loss recovery toward the consumer node.
	haveHighest bool
	highest     uint16
	holes       map[uint16]*viewerHole
	stats       ViewStats
	closed      bool

	tel viewerInstruments
}

// viewerInstruments are the viewer's registered telemetry handles. The
// registry is shared by every client, so the counters are fleet totals;
// ViewStats stays the per-view QoE record.
type viewerInstruments struct {
	packetsReceived *telemetry.Counter
	framesPlayed    *telemetry.Counter
	framesMissed    *telemetry.Counter
	stalls          *telemetry.Counter
	nacksSent       *telemetry.Counter
	startupMs       *telemetry.Histogram
}

func newViewerInstruments(r *telemetry.Registry) viewerInstruments {
	return viewerInstruments{
		packetsReceived: r.Counter("client.packets_received"),
		framesPlayed:    r.Counter("client.frames_played"),
		framesMissed:    r.Counter("client.frames_missed"),
		stalls:          r.Counter("client.stalls"),
		nacksSent:       r.Counter("client.nacks_sent"),
		startupMs:       r.Histogram("client.startup_ms"),
	}
}

type viewerHole struct {
	retries  int
	lastNACK time.Duration
}

// NewViewer creates a viewer; call Attach after wiring it to the network.
func NewViewer(id int, sid uint32, consumer int, clock sim.Clock, net Sender) *Viewer {
	v := &Viewer{
		ID:          id,
		StreamID:    sid,
		Consumer:    consumer,
		Clock:       clock,
		Net:         net,
		Buffer:      300 * time.Millisecond,
		DecodeDelay: 20 * time.Millisecond,
		assembler:   gop.NewAssembler(64),
		holes:       make(map[uint16]*viewerHole),
		gaps:        make(map[uint32]time.Duration),
		trend:       gcc.NewTrendlineEstimator(),
		aimd:        gcc.NewAIMD(6e6, 100e3, 50e6),
		meter:       gcc.NewRateMeter(0),
	}
	v.assembler.OnFrame = v.onFrame
	v.tel = newViewerInstruments(nil)
	return v
}

// Instrument registers the viewer's client.* metrics in r (shared across
// clients — the registry holds fleet totals, ViewStats the per-view QoE).
// Call before Attach; nil keeps private unregistered instruments.
func (v *Viewer) Instrument(r *telemetry.Registry) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.tel = newViewerInstruments(r)
}

// Attach marks the viewing request time and starts the NACK timer.
func (v *Viewer) Attach() {
	v.mu.Lock()
	v.attach = v.Clock.Now()
	v.mu.Unlock()
	v.scanLoop()
}

// Close stops the viewer's timers.
func (v *Viewer) Close() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.closed = true
}

// RateEstimate returns the viewer's current delay-based bandwidth
// estimate in bps (what it REMBs to its consumer).
func (v *Viewer) RateEstimate() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.aimd.Rate()
}

// Stats returns a snapshot of the view's QoE metrics.
func (v *Viewer) Stats() ViewStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	s := v.stats
	s.StreamingDelay = append([]time.Duration(nil), v.stats.StreamingDelay...)
	return s
}

// OnMessage is the network delivery entry point.
func (v *Viewer) OnMessage(from int, data []byte) {
	if wire.Kind(data) != wire.MsgRTP {
		return
	}
	sendTime10us, rtpData, err := wire.UnframeRTP(data)
	if err != nil {
		return
	}
	var pkt rtp.Packet
	if err := pkt.Unmarshal(rtpData); err != nil {
		return
	}
	if pkt.SSRC != v.StreamID {
		// Seamless switching delivers the co-stream on the same link;
		// adopt it (the consumer switched on our behalf, §5.2).
		v.mu.Lock()
		v.StreamID = pkt.SSRC
		v.mu.Unlock()
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return
	}
	// Streaming delay sample from the delay extension: accumulated
	// upstream delay + our buffer + decode.
	if pkt.HasDelayExt {
		upstream := time.Duration(pkt.DelayAccum10us) * 10 * time.Microsecond
		sample := upstream + v.Buffer + v.DecodeDelay
		v.stats.StreamingDelay = append(v.stats.StreamingDelay, sample)
	}
	// Receiver-side GCC sample.
	now := v.Clock.Now()
	v.meter.Add(now, len(rtpData))
	v.received++
	v.tel.packetsReceived.Inc()
	if sample, ok := v.ia.Add(time.Duration(sendTime10us)*10*time.Microsecond, now); ok {
		sig := v.trend.Update(sample, now)
		v.aimd.Update(sig, v.meter.BitrateBps(now), now)
	}
	// Loss tracking for NACKs.
	seq := pkt.SequenceNumber
	if !v.haveHighest {
		v.haveHighest = true
		v.highest = seq
	} else if rtp.SeqLess(v.highest, seq) {
		if gap := rtp.SeqDiff(v.highest, seq); gap <= 256 {
			for q := v.highest + 1; q != seq; q++ {
				v.holes[q] = &viewerHole{}
			}
		}
		v.highest = seq
	} else {
		delete(v.holes, seq)
	}
	v.assembler.Push(&pkt)
}

// onFrame feeds the playback model (called by the assembler with v.mu
// held, since Push happens under the lock).
func (v *Viewer) onFrame(f gop.AssembledFrame) {
	now := v.Clock.Now()
	if !v.started {
		// Start playback at the first complete I frame: the buffer target
		// then delays the play deadline of every frame.
		if f.Header.Type != media.FrameI {
			v.stats.FramesMissed++
			v.tel.framesMissed.Inc()
			return
		}
		v.started = true
		v.playStart = now
		v.basePTS = f.Header.FrameID
		v.lastFrame = f.Header.FrameID
		v.stats.Started = true
		v.stats.StartupDelay = now - v.attach
		v.stats.FramesPlayed++
		v.tel.framesPlayed.Inc()
		v.tel.startupMs.Observe(int64(v.stats.StartupDelay / time.Millisecond))
		return
	}
	// Content-gap tracking: frames may complete out of order while loss
	// recovery fills holes, so skipped IDs are only provisional gaps. A
	// gap that persists past the recovery horizon is missed content; a
	// burst of missed frames longer than half the buffer is a stall.
	if _, late := v.gaps[f.Header.FrameID]; late {
		delete(v.gaps, f.Header.FrameID)
	} else if f.Header.FrameID > v.lastFrame+1 {
		if n := f.Header.FrameID - v.lastFrame - 1; n <= 512 {
			for q := v.lastFrame + 1; q < f.Header.FrameID; q++ {
				v.gaps[q] = now
			}
		}
	}
	if f.Header.FrameID > v.lastFrame {
		v.lastFrame = f.Header.FrameID
	}
	const recoveryHorizon = 1500 * time.Millisecond
	abandoned := 0
	for id, seen := range v.gaps {
		if now-seen > recoveryHorizon {
			delete(v.gaps, id)
			abandoned++
		}
	}
	if abandoned > 0 {
		v.stats.FramesMissed += abandoned
		v.tel.framesMissed.Add(uint64(abandoned))
		const frameInterval = time.Second / 25
		if time.Duration(abandoned)*frameInterval > v.Buffer/2 {
			v.noteStall(now)
		}
	}
	// Deadline for this frame: playStart + (frame offset) + buffer + shifts.
	// Frame offset approximated by frame ID spacing at 25 fps.
	offset := time.Duration(int64(f.Header.FrameID-v.basePTS)) * (time.Second / 25)
	deadline := v.playStart + offset + v.Buffer + v.timeShift
	if now > deadline {
		// Missed deadline: stall, then shift the timeline by the lateness
		// plus a rebuffer allowance.
		v.noteStall(now)
		v.timeShift += (now - deadline) + v.Buffer/2
	}
	v.stats.FramesPlayed++
	v.tel.framesPlayed.Inc()
}

// noteStall counts distinct stall events (bursts of late/missing frames
// within a second are one stall) and notifies OnStall.
func (v *Viewer) noteStall(now time.Duration) {
	if now-v.lastStall <= time.Second && v.lastStall != 0 {
		return
	}
	v.stats.Stalls++
	v.tel.stalls.Inc()
	v.lastStall = now
	if v.OnStall != nil {
		cb := v.OnStall
		cnt := v.stats.Stalls
		v.Clock.AfterFunc(0, func() { cb(cnt) })
	}
}

// scanLoop NACKs holes every 50 ms, like the node slow path (clients run
// WebRTC's equivalent; this keeps last-mile loss from becoming stalls).
func (v *Viewer) scanLoop() {
	v.Clock.AfterFunc(50*time.Millisecond, func() {
		v.mu.Lock()
		if v.closed {
			v.mu.Unlock()
			return
		}
		now := v.Clock.Now()
		var lost []uint16

		for seq, h := range v.holes {
			if h.retries >= 5 {
				delete(v.holes, seq)
				continue
			}
			if now-h.lastNACK >= 50*time.Millisecond {
				lost = append(lost, seq)
				h.retries++
				h.lastNACK = now
			}
		}
		var msg []byte
		if len(lost) > 0 {
			slices.Sort(lost) // holes is a map; canonicalize the NACK order
			nack := rtp.MarshalNACK(&rtp.NACK{SenderSSRC: uint32(v.ID), MediaSSRC: v.StreamID, Lost: lost}, nil)
			msg = wire.FrameRTCP(nil, nack)
			v.tel.nacksSent.Inc()
		}
		// Periodic RR + REMB so the consumer's per-client pacer tracks
		// the access link (§5.2: the consumer evaluates each viewer's
		// available bandwidth on its behalf).
		var feedback []byte
		if now-v.lastReport >= 500*time.Millisecond && v.haveHighest {
			v.lastReport = now
			expected := uint64(v.highest - v.lastRRHigh)
			got := v.received - v.lastRRRecv
			var fraction float64
			if expected > 0 && got < expected {
				fraction = float64(expected-got) / float64(expected)
			}
			v.lastRRHigh = v.highest
			v.lastRRRecv = v.received
			rr := rtp.MarshalRR(&rtp.ReceiverReport{
				SenderSSRC: uint32(v.ID), MediaSSRC: v.StreamID,
				FractionLost: uint8(fraction * 256), HighestSeq: uint32(v.highest),
			}, nil)
			remb := rtp.MarshalREMB(&rtp.REMB{
				SenderSSRC: uint32(v.ID), BitrateBps: uint64(v.aimd.Rate()),
				SSRCs: []uint32{v.StreamID},
			}, nil)
			feedback = append(append(make([]byte, 0, 1+len(rr)+len(remb)), wire.MsgRTCP), rr...)
			feedback = append(feedback, remb...)
		}
		v.mu.Unlock()
		if msg != nil {
			v.Net.Send(v.ID, v.Consumer, msg)
		}
		if feedback != nil {
			v.Net.Send(v.ID, v.Consumer, feedback)
		}
		v.scanLoop()
	})
}
