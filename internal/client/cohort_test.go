package client

import (
	"math"
	"strings"
	"testing"

	"livenet/internal/telemetry"
)

func TestCohortBlendsExactAndBatchedViews(t *testing.T) {
	var c Cohort
	// Three exact tracer views.
	c.AddViewer(120, 40, 3, 780, 600, 0, 0)
	c.AddViewer(60, 55, 3, 810, 950, 1, 0.6)
	c.AddViewer(30, 70, 4, 900, 1400, 2, 1.2)
	// 997 batched viewers with analytic expectations.
	c.AddBatch(997, CohortBatch{
		MeanViewSecs: 72.5, CDNDelayMs: 50, PathLen: 3.2,
		StreamingMs: 800, StartupMs: 700,
		PZeroStall: 0.9, PFastStart: 0.8,
		StallsPerView: 0.15, StallSecsPerView: 0.09,
	})
	if c.Viewers != 1000 {
		t.Fatalf("Viewers = %v, want 1000", c.Viewers)
	}
	if c.TracerViews != 3 {
		t.Fatalf("TracerViews = %d, want 3", c.TracerViews)
	}
	wantSecs := 120 + 60 + 30 + 997*72.5
	if math.Abs(c.ViewerSeconds-wantSecs) > 1e-9 {
		t.Fatalf("ViewerSeconds = %v, want %v", c.ViewerSeconds, wantSecs)
	}
	wantZero := (1 + 997*0.9) / 1000
	if math.Abs(c.ZeroStall.Value()-wantZero) > 1e-12 {
		t.Fatalf("zero-stall = %v, want %v", c.ZeroStall.Value(), wantZero)
	}
	// Startup <= 1000 ms hit for 2 of 3 tracers.
	wantFast := (2 + 997*0.8) / 1000
	if math.Abs(c.FastStart.Value()-wantFast) > 1e-12 {
		t.Fatalf("fast-start = %v, want %v", c.FastStart.Value(), wantFast)
	}
	wantStalls := 3 + 997*0.15
	if math.Abs(c.ExpectedStalls-wantStalls) > 1e-9 {
		t.Fatalf("stalls = %v, want %v", c.ExpectedStalls, wantStalls)
	}
	wantRatio := (0.6 + 1.2 + 997*0.09) / wantSecs
	if math.Abs(c.RebufferRatio()-wantRatio) > 1e-12 {
		t.Fatalf("rebuffer = %v, want %v", c.RebufferRatio(), wantRatio)
	}
}

func TestCohortMergeEquivalentToCombinedAdds(t *testing.T) {
	batch := CohortBatch{MeanViewSecs: 90, StartupMs: 650, PZeroStall: 0.95, PFastStart: 0.85, StallsPerView: 0.05, StallSecsPerView: 0.03}
	var whole Cohort
	whole.AddViewer(45, 30, 2, 750, 500, 0, 0)
	whole.AddBatch(500, batch)

	var a, b Cohort
	a.AddViewer(45, 30, 2, 750, 500, 0, 0)
	b.AddBatch(500, batch)
	a.Merge(&b)
	a.Merge(nil) // no-op

	if a.Viewers != whole.Viewers || a.TracerViews != whole.TracerViews {
		t.Fatalf("merge counts diverge: %v/%d vs %v/%d", a.Viewers, a.TracerViews, whole.Viewers, whole.TracerViews)
	}
	if math.Abs(a.Startup.Mean()-whole.Startup.Mean()) > 1e-12 {
		t.Fatalf("merge startup mean %v vs %v", a.Startup.Mean(), whole.Startup.Mean())
	}
	if math.Abs(a.ZeroStall.Value()-whole.ZeroStall.Value()) > 1e-12 {
		t.Fatalf("merge zero-stall %v vs %v", a.ZeroStall.Value(), whole.ZeroStall.Value())
	}
	if math.Abs(a.RebufferRatio()-whole.RebufferRatio()) > 1e-12 {
		t.Fatalf("merge rebuffer %v vs %v", a.RebufferRatio(), whole.RebufferRatio())
	}
}

func TestCohortPublishRegistersMetrics(t *testing.T) {
	var c Cohort
	c.AddViewer(80, 45, 3, 790, 620, 0, 0)
	c.AddBatch(1e6, CohortBatch{MeanViewSecs: 72.5, CDNDelayMs: 48, PathLen: 3,
		StreamingMs: 805, StartupMs: 690, PZeroStall: 0.92, PFastStart: 0.81,
		StallsPerView: 0.1, StallSecsPerView: 0.06})
	r := telemetry.NewRegistry()
	c.Publish(r)
	names := r.Names()
	if len(names) != 12 {
		t.Fatalf("published %d metrics, want 12: %v", len(names), names)
	}
	for _, n := range names {
		if !strings.HasPrefix(n, "cohort.") {
			t.Fatalf("metric %q lacks cohort. prefix", n)
		}
	}
	snap := r.Snapshot()
	if got := snap.Counters["cohort.viewers"]; got != uint64(c.Viewers) {
		t.Fatalf("cohort.viewers = %d, want %d", got, uint64(c.Viewers))
	}
	if got := snap.Gauges["cohort.zero_stall_pct"]; math.Abs(got-c.ZeroStall.Percent()) > 1e-9 {
		t.Fatalf("cohort.zero_stall_pct = %v, want %v", got, c.ZeroStall.Percent())
	}
	// Publishing on a nil registry must not panic (telemetry-off path).
	c.Publish(nil)
}
