package core

import (
	"container/heap"
	"time"

	"livenet/internal/hier"
	"livenet/internal/workload"
)

// hierStream is the per-(L1, stream) download-leg state.
type hierStream struct {
	viewers int
	downL2  int
	path    []int // full 5-node path for this L1's viewers
}

// hierFabric bundles the baseline CDN topology and its download-leg
// session state, shared by the per-viewer and cohort engines.
type hierFabric struct {
	e    *macroEnv
	h    *hier.Hier
	upL1 []int // channel rank -> broadcaster edge
	upL2 []int // channel rank -> assigned upload L2
	down map[int]map[uint32]*hierStream

	nextLossSample time.Duration
}

func newHierFabric(e *macroEnv) *hierFabric {
	f := &hierFabric{
		e:    e,
		h:    hier.Build(e.world, hier.Config{}),
		down: make(map[int]map[uint32]*hierStream),
	}
	// Upload legs: broadcaster edge and its assigned L2, fixed per channel.
	chans := e.gen.Channels()
	f.upL1 = make([]int, len(chans))
	f.upL2 = make([]int, len(chans))
	for rank, ch := range chans {
		f.upL1[rank] = f.h.EdgeFor(ch.Lat, ch.Lon)
		f.upL2[rank] = f.h.AssignL2(f.upL1[rank], 1)
	}
	return f
}

func (f *hierFabric) getDown(l1 int) map[uint32]*hierStream {
	m := f.down[l1]
	if m == nil {
		m = make(map[uint32]*hierStream)
		f.down[l1] = m
	}
	return m
}

func (f *hierFabric) lossAt(t time.Duration) func(a, b int) float64 {
	return func(a, b int) float64 { return f.e.linkLoss(a, b, t) }
}

// advanceTo records the hourly loss samples due at or before t (the
// baseline has no routing epochs, only Figure 13's bookkeeping).
func (f *hierFabric) advanceTo(t time.Duration) {
	for f.nextLossSample <= t {
		f.e.sampleLossByHour(f.nextLossSample)
		f.nextLossSample += 10 * time.Minute
	}
}

// depart detaches n viewers from the (l1, sid) download leg, releasing
// the L2 assignment when the last one leaves.
func (f *hierFabric) depart(l1 int, sid uint32, n int) {
	if st := f.getDown(l1)[sid]; st != nil {
		st.viewers -= n
		if st.viewers <= 0 {
			f.h.ReleaseL2(st.downL2, 1)
			delete(f.getDown(l1), sid)
		}
	}
}

// runMacroHier executes the baseline engine: every stream climbs from the
// broadcaster's L1 edge through an assigned L2 to the streaming center
// and descends through an L2 to each viewer's L1 edge (fixed 4-hop
// paths), with the VDN-like L1→L2 mapping of §2.2.
func runMacroHier(cfg MacroConfig) *MacroResult {
	e := newMacroEnv(cfg, SystemHier)
	f := newHierFabric(e)

	chans := e.gen.Channels()
	const dayChunk = 24 * time.Hour
	for chunk := time.Duration(0); chunk < e.horizon; chunk += dayChunk {
		views := e.gen.Views(chunk, min(chunk+dayChunk, e.horizon))
		for _, v := range views {
			for len(e.deps) > 0 && e.deps[0].at <= v.Start {
				d := heap.Pop(&e.deps).(departure)
				f.depart(d.site, d.sid, 1)
				e.active--
			}
			f.advanceTo(v.Start)

			l1 := e.handleHierView(f, v, chans)

			e.active++
			if ds := e.dayStats(v.Start); e.active > ds.PeakConcurrency {
				ds.PeakConcurrency = e.active
			}
			heap.Push(&e.deps, departure{at: v.Start + v.Duration, site: l1, sid: chans[v.Channel].StreamID})
		}
	}
	e.foldUniquePaths()
	return e.res
}

// handleHierView serves one viewing session from the hierarchy and
// returns the L1 edge it attached to.
func (e *macroEnv) handleHierView(f *hierFabric, v workload.View, chans []workload.Channel) int {
	ch := chans[v.Channel]
	sid := ch.StreamID
	l1 := f.h.EdgeFor(v.Lat, v.Lon)
	intl := v.Country != ch.Country
	cp := e.drawClient()
	t := v.Start

	st := f.getDown(l1)[sid]
	localHit := st != nil
	var firstPktMs float64
	if st == nil {
		// Establish the download leg: request climbs L1→L2→center,
		// data descends the same legs; plus center processing.
		downL2 := f.h.AssignL2(l1, 1)
		path := []int{f.upL1[v.Channel], f.upL2[v.Channel], f.h.Center, downL2, l1}
		st = &hierStream{downL2: downL2, path: path}
		f.getDown(l1)[sid] = st
		climb := float64(e.world.RTT(l1, downL2)+e.world.RTT(downL2, f.h.Center)) / float64(time.Millisecond)
		firstPktMs = climb + 35 + e.rng.Float64()*30 // center lookup + GoP pull
	} else {
		firstPktMs = 3 + e.rng.Float64()*8 // L1 GoP cache hit
	}
	st.viewers++

	cdnMs := float64(f.h.PathDelay(st.path, f.lossAt(t))) / float64(time.Millisecond)
	stalls := e.stallsFor(SystemHier, v.Duration, st.path, cp, t)
	startupMs := cp.rttMs + firstPktMs + 110 + e.rng.Float64()*170 + 20
	if e.rng.Bernoulli(0.05) {
		startupMs += 300 + e.rng.Float64()*1600
	}
	e.recordView(t, st.path, cdnMs, firstPktMs, localHit, intl, stalls, startupMs, false, false)
	e.notePath(t, st.path)
	return l1
}
