package core

import (
	"container/heap"
	"time"

	"livenet/internal/hier"
	"livenet/internal/workload"
)

// hierStream is the per-(L1, stream) download-leg state.
type hierStream struct {
	viewers int
	downL2  int
	path    []int // full 5-node path for this L1's viewers
}

// runMacroHier executes the baseline engine: every stream climbs from the
// broadcaster's L1 edge through an assigned L2 to the streaming center
// and descends through an L2 to each viewer's L1 edge (fixed 4-hop
// paths), with the VDN-like L1→L2 mapping of §2.2.
func runMacroHier(cfg MacroConfig) *MacroResult {
	e := newMacroEnv(cfg, SystemHier)
	h := hier.Build(e.world, hier.Config{})

	chans := e.gen.Channels()
	// Upload legs: broadcaster edge and its assigned L2, fixed per channel.
	upL1 := make([]int, len(chans))
	upL2 := make([]int, len(chans))
	for rank, ch := range chans {
		upL1[rank] = h.EdgeFor(ch.Lat, ch.Lon)
		upL2[rank] = h.AssignL2(upL1[rank], 1)
	}

	// Download-leg state per (L1, stream).
	down := make(map[int]map[uint32]*hierStream)
	getDown := func(l1 int) map[uint32]*hierStream {
		m := down[l1]
		if m == nil {
			m = make(map[uint32]*hierStream)
			down[l1] = m
		}
		return m
	}

	lossAt := func(t time.Duration) func(a, b int) float64 {
		return func(a, b int) float64 { return e.linkLoss(a, b, t) }
	}

	nextLossSample := time.Duration(0)
	const dayChunk = 24 * time.Hour
	for chunk := time.Duration(0); chunk < e.horizon; chunk += dayChunk {
		views := e.gen.Views(chunk, min(chunk+dayChunk, e.horizon))
		for _, v := range views {
			for len(e.deps) > 0 && e.deps[0].at <= v.Start {
				d := heap.Pop(&e.deps).(departure)
				if st := getDown(d.site)[d.sid]; st != nil {
					st.viewers--
					if st.viewers <= 0 {
						h.ReleaseL2(st.downL2, 1)
						delete(getDown(d.site), d.sid)
					}
				}
				e.active--
			}
			for nextLossSample <= v.Start {
				e.sampleLossByHour(nextLossSample)
				nextLossSample += 10 * time.Minute
			}

			ch := chans[v.Channel]
			sid := ch.StreamID
			l1 := h.EdgeFor(v.Lat, v.Lon)
			intl := v.Country != ch.Country
			cp := e.drawClient()
			t := v.Start

			st := getDown(l1)[sid]
			localHit := st != nil
			var firstPktMs float64
			if st == nil {
				// Establish the download leg: request climbs L1→L2→center,
				// data descends the same legs; plus center processing.
				downL2 := h.AssignL2(l1, 1)
				path := []int{upL1[v.Channel], upL2[v.Channel], h.Center, downL2, l1}
				st = &hierStream{downL2: downL2, path: path}
				getDown(l1)[sid] = st
				climb := float64(e.world.RTT(l1, downL2)+e.world.RTT(downL2, h.Center)) / float64(time.Millisecond)
				firstPktMs = climb + 35 + e.rng.Float64()*30 // center lookup + GoP pull
			} else {
				firstPktMs = 3 + e.rng.Float64()*8 // L1 GoP cache hit
			}
			st.viewers++

			cdnMs := float64(h.PathDelay(st.path, lossAt(t))) / float64(time.Millisecond)
			stalls := e.stallsFor(SystemHier, v.Duration, st.path, cp, t)
			startupMs := cp.rttMs + firstPktMs + 110 + e.rng.Float64()*170 + 20
			if e.rng.Bernoulli(0.05) {
				startupMs += 300 + e.rng.Float64()*1600
			}
			e.recordView(t, st.path, cdnMs, firstPktMs, localHit, intl, stalls, startupMs, false, false)
			e.notePath(t, st.path)

			e.active++
			if ds := e.dayStats(t); e.active > ds.PeakConcurrency {
				ds.PeakConcurrency = e.active
			}
			heap.Push(&e.deps, departure{at: v.Start + v.Duration, site: l1, sid: sid})
		}
	}
	e.foldUniquePaths()
	return e.res
}

var _ = workload.Day // keep import if refactors drop direct uses
