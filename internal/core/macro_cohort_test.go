package core

import (
	"math"
	"testing"
	"time"

	"livenet/internal/workload"
)

// cohortPair runs the same small workload through the per-viewer and the
// cohort engine for one system.
func cohortPair(t *testing.T, sys System, seed int64) (perViewer, cohort *MacroResult) {
	t.Helper()
	base := MacroConfig{Seed: seed, Days: 1, Sites: 16, System: sys}
	base.Workload.PeakViewsPerSec = 0.4
	perViewer = RunMacro(base)

	cc := base
	cc.CohortViewers = true
	cc.TracerSample = 0.05
	cohort = RunMacro(cc)
	if cohort.CohortQoE == nil {
		t.Fatal("cohort run produced no CohortQoE")
	}
	return perViewer, cohort
}

// TestMacroCohortMatchesPerViewer is the equivalence criterion: on the
// same seed and workload intensity, the cohort engine's weighted QoE
// aggregates must match the per-viewer engine within stated tolerances.
func TestMacroCohortMatchesPerViewer(t *testing.T) {
	for _, sys := range []System{SystemLiveNet, SystemHier} {
		pv, co := cohortPair(t, sys, 11)
		q := co.CohortQoE

		// Total represented viewers: both are Poisson with the same
		// intensity; 5% covers ~6 sigma at this scale.
		if rel := math.Abs(float64(co.Views-pv.Views)) / float64(pv.Views); rel > 0.05 {
			t.Fatalf("%s: views %d (cohort) vs %d (per-viewer), rel diff %.3f > 0.05", sys, co.Views, pv.Views, rel)
		}
		if q.TracerViews == 0 || q.TracerViews >= co.Views {
			t.Fatalf("%s: tracer views = %d of %d", sys, q.TracerViews, co.Views)
		}
		// Ratio metrics within 3 percentage points.
		if d := math.Abs(q.ZeroStall.Percent() - pv.ZeroStall.Percent()); d > 3 {
			t.Fatalf("%s: zero-stall %.2f%% (cohort) vs %.2f%% (per-viewer), diff %.2f > 3",
				sys, q.ZeroStall.Percent(), pv.ZeroStall.Percent(), d)
		}
		if d := math.Abs(q.FastStart.Percent() - pv.FastStart.Percent()); d > 3 {
			t.Fatalf("%s: fast-start %.2f%% (cohort) vs %.2f%% (per-viewer), diff %.2f > 3",
				sys, q.FastStart.Percent(), pv.FastStart.Percent(), d)
		}
		// Delay means within 12%.
		relDiff := func(a, b float64) float64 { return math.Abs(a-b) / b }
		if r := relDiff(q.CDNDelayMs.Mean(), pv.CDNDelayMs.Mean()); r > 0.12 {
			t.Fatalf("%s: CDN mean %.1f (cohort) vs %.1f (per-viewer), rel %.3f > 0.12",
				sys, q.CDNDelayMs.Mean(), pv.CDNDelayMs.Mean(), r)
		}
		if r := relDiff(q.Streaming.Mean(), pv.Streaming.Mean()); r > 0.10 {
			t.Fatalf("%s: streaming mean %.1f (cohort) vs %.1f (per-viewer), rel %.3f > 0.10",
				sys, q.Streaming.Mean(), pv.Streaming.Mean(), r)
		}
		if r := relDiff(q.PathLen.Mean(), pv.PathLen.Mean()); r > 0.10 {
			t.Fatalf("%s: path len %.2f (cohort) vs %.2f (per-viewer), rel %.3f > 0.10",
				sys, q.PathLen.Mean(), pv.PathLen.Mean(), r)
		}
	}
}

// TestMacroCohortPreservesHeadline checks the paper's LiveNet-vs-Hier
// ordering survives cohort aggregation.
func TestMacroCohortPreservesHeadline(t *testing.T) {
	_, ln := cohortPair(t, SystemLiveNet, 12)
	_, hr := cohortPair(t, SystemHier, 12)
	if ln.CohortQoE.CDNDelayMs.Mean() >= hr.CohortQoE.CDNDelayMs.Mean() {
		t.Fatalf("CDN delay: LiveNet %.1f >= Hier %.1f",
			ln.CohortQoE.CDNDelayMs.Mean(), hr.CohortQoE.CDNDelayMs.Mean())
	}
	if ln.CohortQoE.ZeroStall.Value() <= hr.CohortQoE.ZeroStall.Value() {
		t.Fatalf("zero-stall: LiveNet %.2f <= Hier %.2f",
			ln.CohortQoE.ZeroStall.Percent(), hr.CohortQoE.ZeroStall.Percent())
	}
	if ln.CohortQoE.RebufferRatio() >= hr.CohortQoE.RebufferRatio() {
		t.Fatalf("rebuffer: LiveNet %.5f >= Hier %.5f",
			ln.CohortQoE.RebufferRatio(), hr.CohortQoE.RebufferRatio())
	}
}

// TestMacroCohortDeterministic: same config, bit-identical aggregates.
func TestMacroCohortDeterministic(t *testing.T) {
	cfg := MacroConfig{Seed: 13, Days: 1, Sites: 12, System: SystemLiveNet,
		CohortViewers: true, TracerSample: 0.02, RungShares: []float64{0.6, 0.3, 0.1}}
	cfg.Workload.PeakViewsPerSec = 0.3
	a := RunMacro(cfg)
	b := RunMacro(cfg)
	if a.Views != b.Views || a.TracerViews != b.TracerViews {
		t.Fatalf("views differ: %d/%d vs %d/%d", a.Views, a.TracerViews, b.Views, b.TracerViews)
	}
	qa, qb := a.CohortQoE, b.CohortQoE
	if qa.Viewers != qb.Viewers || qa.ViewerSeconds != qb.ViewerSeconds ||
		qa.ZeroStall != qb.ZeroStall || qa.FastStart != qb.FastStart ||
		qa.Startup != qb.Startup || qa.ExpectedStalls != qb.ExpectedStalls {
		t.Fatal("cohort aggregates not bit-identical across reruns")
	}
}

// TestMacroCohortMillionViewerFlash is the scale criterion: a
// 2M-peak-viewer run with a flash-crowd window must complete inside
// tier-1 time (the whole point of cohort aggregation — cost is
// independent of the viewer count) and produce sane aggregate QoE.
func TestMacroCohortMillionViewerFlash(t *testing.T) {
	cfg := MacroConfig{
		Seed:         14,
		Sites:        16,
		Hours:        2,
		System:       SystemLiveNet,
		Viewers:      2_000_000,
		TracerSample: 1e-6,
	}
	cfg.Workload.Flash = []workload.FlashEvent{{Start: time.Hour, End: 2 * time.Hour, Multiplier: 2}}
	res := RunMacro(cfg)
	q := res.CohortQoE
	if q == nil {
		t.Fatal("no cohort aggregates")
	}
	if res.Views < 1_000_000 {
		t.Fatalf("represented views = %d, want >= 1M", res.Views)
	}
	if peak := res.ByDay[0].PeakConcurrency; peak < 1_000_000 {
		t.Fatalf("peak concurrency = %d, want >= 1M under the flash window", peak)
	}
	if p := q.ZeroStall.Percent(); p < 80 || p > 100 {
		t.Fatalf("zero-stall = %.2f%%, want sane", p)
	}
	if rr := q.RebufferRatio(); rr <= 0 || rr > 0.2 {
		t.Fatalf("rebuffer ratio = %v, want (0, 0.2]", rr)
	}
	if math.Abs(q.Viewers-float64(res.Views)) > 0.5 {
		t.Fatalf("Views %d != CohortQoE.Viewers %v", res.Views, q.Viewers)
	}
}

// TestMacroCohortRungSharesScaleStalls: lower-bitrate rungs see fewer
// loss-induced stalls, so an all-rung-2 population must beat an
// all-rung-0 one on expected stalls per viewer.
func TestMacroCohortRungSharesScaleStalls(t *testing.T) {
	base := MacroConfig{Seed: 15, Days: 1, Sites: 12, System: SystemHier, CohortViewers: true, TracerSample: 0}
	base.Workload.PeakViewsPerSec = 0.3
	base.TracerSample = 0.001 // keep a thin tracer stream
	top := base
	top.RungShares = []float64{1}
	low := base
	low.RungShares = []float64{0, 0, 1}
	rt := RunMacro(top)
	rl := RunMacro(low)
	st := rt.CohortQoE.ExpectedStalls / rt.CohortQoE.Viewers
	sl := rl.CohortQoE.ExpectedStalls / rl.CohortQoE.Viewers
	if sl >= st {
		t.Fatalf("stalls/view: rung-2 %.4f >= rung-0 %.4f", sl, st)
	}
}
