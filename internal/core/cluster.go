// Package core assembles the full LiveNet system. It offers two
// execution granularities over the same control-plane code:
//
//   - Cluster: a packet-level deployment on the network emulator — real
//     nodes running the fast–slow path, a real Streaming Brain, real
//     broadcasters and viewers. Used by the micro experiments, the
//     examples, and the transport ablations.
//   - Macro: a session-level simulator for the 20-day evaluation runs
//     (Table 1–3, Figures 2 and 8–14), which executes the real Brain,
//     subscription/grafting and caching logic per viewing session but
//     abstracts the per-RTP-packet data plane into a calibrated delay/
//     loss model (see macro.go).
package core

import (
	"time"

	"livenet/internal/brain"
	"livenet/internal/client"
	"livenet/internal/geo"
	"livenet/internal/media"
	"livenet/internal/netem"
	"livenet/internal/node"
	"livenet/internal/sim"
	"livenet/internal/stats"
)

// ClusterConfig parameterizes a packet-level deployment.
type ClusterConfig struct {
	Seed  int64
	Sites int
	// OverlayBandwidthBps is the per-link overlay capacity (default 100 Mbps).
	OverlayBandwidthBps float64
	// LastMileBandwidthBps is the client access capacity (default 20 Mbps).
	LastMileBandwidthBps float64
	// LossScale multiplies the geo base loss (1 = paper-like near-lossless).
	LossScale float64
	// DiurnalLoss applies the Figure 13 diurnal pattern to link loss.
	DiurnalLoss bool
	// DiscoveryInterval is the node metrics reporting period (default 1 m).
	DiscoveryInterval time.Duration
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Sites <= 0 {
		c.Sites = 12
	}
	if c.OverlayBandwidthBps <= 0 {
		c.OverlayBandwidthBps = 100e6
	}
	if c.LastMileBandwidthBps <= 0 {
		c.LastMileBandwidthBps = 20e6
	}
	if c.LossScale == 0 {
		c.LossScale = 1
	}
	if c.DiscoveryInterval <= 0 {
		c.DiscoveryInterval = time.Minute
	}
	return c
}

// clientIDBase is where client endpoint IDs start (node IDs are below).
const clientIDBase = 1 << 16

// Cluster is a packet-level LiveNet deployment.
type Cluster struct {
	cfg   ClusterConfig
	Loop  *sim.Loop
	World *geo.World
	Net   *netem.Network
	Brain *brain.Brain
	Nodes []*node.Node

	// RespTimes collects Path Decision response times (Figure 10(a)).
	RespTimes *stats.Sample

	// lowerRendition maps each simulcast stream to its next-lower
	// rendition (filled as broadcasters are created); consumer nodes use
	// it for bitrate down-switching (§5.2).
	lowerRendition map[uint32]uint32

	nextClient int
	closed     bool
}

// NewCluster builds the world, full-mesh overlay links, nodes and Brain,
// and starts the Global Discovery reporting loop.
func NewCluster(cfg ClusterConfig) *Cluster {
	cfg = cfg.withDefaults()
	loop := sim.NewLoop(cfg.Seed)
	gcfg := geo.DefaultConfig()
	gcfg.NumSites = cfg.Sites
	world := geo.Build(gcfg, loop.RNG("geo"))
	net := netem.New(loop, loop.RNG("netem"))

	c := &Cluster{
		cfg:            cfg,
		Loop:           loop,
		World:          world,
		Net:            net,
		RespTimes:      &stats.Sample{},
		lowerRendition: make(map[uint32]uint32),
		nextClient:     clientIDBase,
	}

	// Full-mesh overlay links with geo RTT and near-lossless base loss.
	for i := 0; i < cfg.Sites; i++ {
		for j := 0; j < cfg.Sites; j++ {
			if i == j {
				continue
			}
			i, j := i, j
			base := world.BaseLoss(i, j) * cfg.LossScale
			lossFn := func(now time.Duration) float64 {
				if !cfg.DiurnalLoss {
					return base
				}
				mid := (world.Sites[i].Lon + world.Sites[j].Lon) / 2
				return base * (0.4 + 1.8*geo.DiurnalFactor(geo.LocalHour(now, mid)))
			}
			net.AddLink(i, j, netem.LinkConfig{
				RTT:          world.RTT(i, j),
				Jitter:       1500 * time.Microsecond,
				BandwidthBps: cfg.OverlayBandwidthBps,
				Loss:         lossFn,
			})
		}
	}

	c.Brain = brain.New(brain.Config{
		N:          cfg.Sites,
		LastResort: world.IXPSites(),
		Clock:      loop,
	})
	c.Brain.EnableDense()

	// Overlay nodes wired to the Brain.
	for id := 0; id < cfg.Sites; id++ {
		id := id
		n := node.New(node.Config{
			ID:         id,
			Clock:      loop,
			Net:        net,
			LinkRTT:    func(to int) time.Duration { return c.linkRTT(id, to) },
			PathLookup: c.pathLookup,
			OnNewStream: func(producer int) func(uint32) {
				return func(sid uint32) { c.Brain.RegisterStream(sid, producer) }
			}(id),
			OnStreamEnded: func(sid uint32) { c.Brain.UnregisterStream(sid) },
			IsOverlay:     func(id int) bool { return id < clientIDBase },
			LowerRendition: func(sid uint32) (uint32, bool) {
				lower, ok := c.lowerRendition[sid]
				return lower, ok
			},
		})
		c.Nodes = append(c.Nodes, n)
		net.Handle(id, n.OnMessage)
	}

	c.discoveryLoop()
	return c
}

// linkRTT is the per-hop RTT estimate a node uses for the delay-extension
// accounting: the geo RTT for overlay neighbors (nodes know this from the
// transport layer), a nominal value for client access links.
func (c *Cluster) linkRTT(from, to int) time.Duration {
	if to >= clientIDBase {
		return 30 * time.Millisecond // nominal last mile
	}
	return c.World.RTT(from, to)
}

// pathLookup reaches the Brain's Path Decision module with a modeled
// replica round trip: some consumers are co-located with a replica
// (§7.1: the Path Decision module is replicated widely).
func (c *Cluster) pathLookup(sid uint32, consumer int, cb func([][]int, error)) {
	rng := c.Loop.RNG("brainrtt")
	var rtt time.Duration
	if rng.Bernoulli(0.35) {
		rtt = time.Duration(1+rng.Intn(5)) * time.Millisecond
	} else {
		rtt = time.Duration(8+rng.Intn(45)) * time.Millisecond
	}
	proc := time.Duration(2+rng.Intn(6)) * time.Millisecond
	total := rtt + proc
	c.RespTimes.Add(float64(total) / float64(time.Millisecond))
	c.Loop.AfterFunc(total, func() {
		paths, err := c.Brain.Lookup(sid, consumer)
		cb(paths, err)
	})
}

// discoveryLoop reports link and node metrics to Global Discovery on the
// 1-minute schedule of §4.2, with immediate overload alarms at the 80%
// target.
func (c *Cluster) discoveryLoop() {
	c.Loop.AfterFunc(c.cfg.DiscoveryInterval, func() {
		if c.closed {
			return
		}
		n := c.cfg.Sites
		for i := 0; i < n; i++ {
			maxUtil := 0.0
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				s, ok := c.Net.LinkStats(i, j)
				if !ok {
					continue
				}
				c.Brain.ReportLink(i, j, s.RTT, s.LossRate, s.Utilization)
				if s.Utilization > maxUtil {
					maxUtil = s.Utilization
				}
				if s.Utilization >= 0.8 {
					c.Brain.LinkOverloadAlarm(i, j, s.Utilization)
				}
			}
			load := 0.7*maxUtil + 0.3*minf(1, float64(c.Nodes[i].StreamCount())/64)
			c.Brain.ReportNodeLoad(i, load)
			if load >= 0.8 {
				c.Brain.OverloadAlarm(i, load)
			}
		}
		c.discoveryLoop()
	})
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// allocClientID reserves a fresh client endpoint ID.
func (c *Cluster) allocClientID() int {
	id := c.nextClient
	c.nextClient++
	return id
}

// lastMile wires a client endpoint to a node with a plausible access link.
func (c *Cluster) lastMile(clientID, nodeID int, rtt time.Duration, loss float64) {
	cfg := netem.LinkConfig{
		RTT:          rtt,
		Jitter:       2 * time.Millisecond,
		BandwidthBps: c.cfg.LastMileBandwidthBps,
	}
	if loss > 0 {
		cfg.Loss = func(time.Duration) float64 { return loss }
	}
	c.Net.AddDuplex(clientID, nodeID, cfg)
}

// NewBroadcasterAt creates a broadcaster at the given location, mapped by
// DNS redirection to its nearest site (the producer node).
func (c *Cluster) NewBroadcasterAt(lat, lon float64, baseSID uint32, rends []media.Rendition) *Broadcast {
	producer := c.World.NearestSite(lat, lon)
	id := c.allocClientID()
	rng := c.Loop.RNG("lastmile")
	rtt := time.Duration(10+rng.Intn(30)) * time.Millisecond
	c.lastMile(id, producer, rtt, 0.0005)
	bc := client.NewBroadcaster(id, producer, baseSID, rends, c.Loop, c.Net, c.Loop.RNG("media"))
	bc.FirstMileRTT = rtt
	// Register the simulcast ladder for bitrate down-switching: rendition
	// i's next-lower version is rendition i+1 (§5.2).
	for i := 0; i+1 < len(rends); i++ {
		c.lowerRendition[bc.StreamID(i)] = bc.StreamID(i + 1)
	}
	return &Broadcast{Broadcaster: bc, Producer: producer}
}

// PrefetchPopular proactively pushes up-to-date overlay paths for a
// popular stream to every node ahead of viewer arrival (§4.4), so the
// first viewing request anywhere is a local hit.
func (c *Cluster) PrefetchPopular(sid uint32) error {
	paths, err := c.Brain.PrefetchPaths(sid)
	if err != nil {
		return err
	}
	for dst, p := range paths {
		c.Nodes[dst].InstallPaths(sid, p)
	}
	return nil
}

// Broadcast bundles a broadcaster with its producer node assignment.
type Broadcast struct {
	*client.Broadcaster
	Producer int
}

// Viewing bundles a viewer with its consumer node assignment.
type Viewing struct {
	*client.Viewer
	ConsumerNode int
	LocalHit     bool
}

// NewViewerAt creates a viewer at the given location, mapped to its
// nearest site (the consumer node), and attaches it to the stream.
func (c *Cluster) NewViewerAt(lat, lon float64, sid uint32) *Viewing {
	consumer := c.World.NearestSite(lat, lon)
	id := c.allocClientID()
	rng := c.Loop.RNG("lastmile")
	rtt := time.Duration(10+rng.Intn(40)) * time.Millisecond
	loss := 0.0005
	if rng.Bernoulli(0.12) { // mobile tail
		loss = 0.003 + rng.Float64()*0.01
	}
	c.lastMile(id, consumer, rtt, loss)
	v := client.NewViewer(id, sid, consumer, c.Loop, c.Net)
	c.Net.Handle(id, v.OnMessage)
	v.Attach()
	hit := c.Nodes[consumer].AttachViewer(id, sid)
	// Quality-triggered path switching (§4.4): relay client stall reports
	// to the consumer node.
	v.OnStall = func(count int) {
		c.Nodes[consumer].ReportClientQuality(id, sid, count)
	}
	return &Viewing{Viewer: v, ConsumerNode: consumer, LocalHit: hit}
}

// Detach removes a viewing from its consumer.
func (c *Cluster) Detach(v *Viewing) {
	c.Nodes[v.ConsumerNode].DetachViewer(v.Viewer.ID, v.Viewer.StreamID)
	v.Viewer.Close()
}

// Run advances the cluster's virtual time.
func (c *Cluster) Run(d time.Duration) {
	c.Loop.RunUntil(c.Loop.Now() + d)
}

// Close stops timers.
func (c *Cluster) Close() {
	c.closed = true
	c.Brain.Close()
	for _, n := range c.Nodes {
		n.Close()
	}
}
