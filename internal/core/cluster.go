// Package core assembles the full LiveNet system. It offers two
// execution granularities over the same control-plane code:
//
//   - Cluster: a packet-level deployment on the network emulator — real
//     nodes running the fast–slow path, a real Streaming Brain, real
//     broadcasters and viewers. Used by the micro experiments, the
//     examples, and the transport ablations.
//   - Macro: a session-level simulator for the 20-day evaluation runs
//     (Table 1–3, Figures 2 and 8–14), which executes the real Brain,
//     subscription/grafting and caching logic per viewing session but
//     abstracts the per-RTP-packet data plane into a calibrated delay/
//     loss model (see macro.go).
package core

import (
	"errors"
	"time"

	"livenet/internal/brain"
	"livenet/internal/brainfed"
	"livenet/internal/client"
	"livenet/internal/geo"
	"livenet/internal/media"
	"livenet/internal/netem"
	"livenet/internal/node"
	"livenet/internal/replication"
	"livenet/internal/sim"
	"livenet/internal/stats"
	"livenet/internal/telemetry"
)

// ErrBrainUnreachable is reported to a consumer node when every Brain
// replica failed to answer its path lookup; the node falls back to its
// local path cache (§4.3).
var ErrBrainUnreachable = errors.New("core: no Brain replica reachable")

// ClusterConfig parameterizes a packet-level deployment.
type ClusterConfig struct {
	Seed  int64
	Sites int
	// MaxPeers > 0 builds a sparse overlay instead of the full mesh: each
	// site gets netem links to its MaxPeers nearest peers by RTT plus every
	// IXP site (symmetrized), and Global Discovery probes only those links.
	// 0 keeps the full mesh.
	MaxPeers int
	// OverlayBandwidthBps is the per-link overlay capacity (default 100 Mbps).
	OverlayBandwidthBps float64
	// LastMileBandwidthBps is the client access capacity (default 20 Mbps).
	LastMileBandwidthBps float64
	// LossScale multiplies the geo base loss (1 = paper-like near-lossless).
	LossScale float64
	// DiurnalLoss applies the Figure 13 diurnal pattern to link loss.
	DiurnalLoss bool
	// BurstLoss layers per-link Gilbert–Elliott bursty episodes on top of
	// the base (or diurnal) loss, so loss arrives in bursts rather than as
	// independent drops (each link keeps its own Markov chain).
	BurstLoss bool
	// DiscoveryInterval is the node metrics reporting period (default 1 m).
	DiscoveryInterval time.Duration
	// Replicas geo-replicates the Streaming Brain over this many Paxos
	// replicas (§7.1); 0 or 1 keeps a single instance. Consumers query
	// their home replica and fail over to the next live one on timeout.
	Replicas int
	// Regions > 0 federates the Streaming Brain into per-region shards
	// (internal/brainfed): each shard ingests only its own region's
	// discovery reports and cross-region lookups stitch shard-local
	// segments at gateway nodes. The value caps the shard count (regions
	// beyond it merge into one shard); use a value at or above the
	// world's region count for one shard per region. Combined with
	// Replicas > 1, each shard's SIB replicates through its own Paxos
	// group. 0 keeps the monolithic Brain.
	Regions int
	// NodeUpstreamTimeout overrides the nodes' upstream-silence detection
	// window (0 keeps the node default).
	NodeUpstreamTimeout time.Duration
	// Telemetry enables the observability plane: per-node metric
	// registries whose snapshots ride the Global Discovery reports, a
	// fabric/client/Brain registry each, and a sampled per-packet tracer.
	// Off (the default) none of it exists and nothing is recorded — runs
	// stay byte-identical with telemetry-unaware builds.
	Telemetry bool
	// TraceRate is the tracer's per-ingress-packet sampling probability
	// (default 0.002; only used when Telemetry is on).
	TraceRate float64
	// TraceMax bounds the number of sampled journeys (default 16).
	TraceMax int
	// TraceAfter suppresses journey sampling before this virtual time
	// (skip the startup transient; default 0 samples from the start).
	TraceAfter time.Duration
	// SerialSend disables the nodes' vectored/batched transport submits
	// (each packet goes through plain Sender.Send). The emulator's fabric
	// delivers identically either way; this knob exists so equivalence
	// tests can replay a scenario down both data-plane paths.
	SerialSend bool
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Sites <= 0 {
		c.Sites = 12
	}
	if c.OverlayBandwidthBps <= 0 {
		c.OverlayBandwidthBps = 100e6
	}
	if c.LastMileBandwidthBps <= 0 {
		c.LastMileBandwidthBps = 20e6
	}
	if c.LossScale == 0 {
		c.LossScale = 1
	}
	if c.DiscoveryInterval <= 0 {
		c.DiscoveryInterval = time.Minute
	}
	if c.TraceRate <= 0 {
		c.TraceRate = 0.002
	}
	if c.TraceMax <= 0 {
		c.TraceMax = 16
	}
	return c
}

// clientIDBase is where client endpoint IDs start (node IDs are below).
const clientIDBase = 1 << 16

// Cluster is a packet-level LiveNet deployment.
type Cluster struct {
	cfg ClusterConfig
	// overlayRows[i] lists the sites i has overlay links to (sorted). The
	// full mesh when MaxPeers is 0, the nearest-peers ∪ IXP adjacency
	// otherwise; Global Discovery probes exactly these links.
	overlayRows [][]int
	Loop        *sim.Loop
	World       *geo.World
	Net         *netem.Network
	Brain       *brain.Brain
	Nodes       []*node.Node

	// Fed is the federated Brain when ClusterConfig.Regions > 0 (Brain
	// is then nil — every control-plane interaction goes through the
	// federation front-end).
	Fed *brainfed.Federation

	// Replicas holds the geo-replicated Brain group when
	// ClusterConfig.Replicas > 1 (Brain then aliases Replicas[0].Local).
	Replicas    []*brain.ReplicatedBrain
	replicaDown []bool
	// replicaPartitioned marks replicas cut off from consensus traffic
	// (still alive and answering lookups, unlike replicaDown). For a
	// federated Brain the same index space marks partitioned shards.
	replicaPartitioned []bool
	// BrainFailovers counts lookups that timed out on a dead replica and
	// moved to the next; BrainLookupFailures counts lookups that exhausted
	// every replica (the consumer node then uses its local path cache).
	BrainFailovers      uint64
	BrainLookupFailures uint64

	// RespTimes collects Path Decision response times (Figure 10(a)).
	RespTimes *stats.Sample

	// Telemetry plane (all nil unless ClusterConfig.Telemetry): one
	// registry per node (so snapshots attach to that node's discovery
	// reports), one shared by all clients, one for the network fabric,
	// one for the Brain, and the per-packet journey tracer.
	NodeTel   []*telemetry.Registry
	ClientTel *telemetry.Registry
	NetTel    *telemetry.Registry
	BrainTel  *telemetry.Registry
	Tracer    *telemetry.Tracer

	// Replica-attribution instruments (nil-safe): which replica served
	// each lookup, split home vs failover.
	servedHome     *telemetry.Counter
	servedFailover *telemetry.Counter
	lastReplica    *telemetry.Gauge

	// lowerRendition maps each simulcast stream to its next-lower
	// rendition (filled as broadcasters are created); consumer nodes use
	// it for bitrate down-switching (§5.2).
	lowerRendition map[uint32]uint32

	// crashed marks overlay nodes taken down by the fault plane.
	crashed []bool
	// draining marks overlay nodes being decommissioned (DrainNode).
	draining []bool
	// Drain-orchestration instruments (nil-safe).
	drainsStarted   *telemetry.Counter
	drainsCompleted *telemetry.Counter
	drainMigrations *telemetry.Counter
	// lastMileClients maps a node to its attached client endpoints and
	// lastMileLoss remembers each access link's original loss function
	// (for last-mile degradation and restoration).
	lastMileClients map[int][]int
	lastMileLoss    map[int]func(time.Duration) float64

	nextClient int
	closed     bool
}

// NewCluster builds the world, full-mesh overlay links, nodes and Brain,
// and starts the Global Discovery reporting loop.
func NewCluster(cfg ClusterConfig) *Cluster {
	cfg = cfg.withDefaults()
	loop := sim.NewLoop(cfg.Seed)
	gcfg := geo.DefaultConfig()
	gcfg.NumSites = cfg.Sites
	world := geo.Build(gcfg, loop.RNG("geo"))
	net := netem.New(loop, loop.RNG("netem"))

	c := &Cluster{
		cfg:             cfg,
		Loop:            loop,
		World:           world,
		Net:             net,
		RespTimes:       &stats.Sample{},
		lowerRendition:  make(map[uint32]uint32),
		crashed:         make([]bool, cfg.Sites),
		draining:        make([]bool, cfg.Sites),
		lastMileClients: make(map[int][]int),
		lastMileLoss:    make(map[int]func(time.Duration) float64),
		nextClient:      clientIDBase,
	}

	if cfg.Telemetry {
		// The tracer samples from its own RNG stream, so enabling it does
		// not perturb any other stream's draw sequence.
		c.Tracer = telemetry.NewTracer(loop, loop.RNG("telemetry"), cfg.TraceRate, cfg.TraceMax)
		c.Tracer.ClientBase = clientIDBase
		c.Tracer.After = cfg.TraceAfter
		c.ClientTel = telemetry.NewRegistry()
		c.NetTel = telemetry.NewRegistry()
		c.BrainTel = telemetry.NewRegistry()
		net.Instrument(c.NetTel)
		c.NodeTel = make([]*telemetry.Registry, cfg.Sites)
		for i := range c.NodeTel {
			c.NodeTel[i] = telemetry.NewRegistry()
		}
	}

	// Overlay links with geo RTT and near-lossless base loss: the full
	// mesh, or the nearest-peers ∪ IXP adjacency when MaxPeers caps it.
	c.overlayRows = peerAdjacency(world, cfg.MaxPeers)
	if c.overlayRows == nil {
		c.overlayRows = make([][]int, cfg.Sites)
		for i := range c.overlayRows {
			row := make([]int, 0, cfg.Sites-1)
			for j := 0; j < cfg.Sites; j++ {
				if j != i {
					row = append(row, j)
				}
			}
			c.overlayRows[i] = row
		}
	}
	for i := 0; i < cfg.Sites; i++ {
		for _, j := range c.overlayRows[i] {
			i, j := i, j
			base := world.BaseLoss(i, j) * cfg.LossScale
			lossFn := func(now time.Duration) float64 {
				if !cfg.DiurnalLoss {
					return base
				}
				mid := (world.Sites[i].Lon + world.Sites[j].Lon) / 2
				return base * (0.4 + 1.8*geo.DiurnalFactor(geo.LocalHour(now, mid)))
			}
			lc := netem.LinkConfig{
				RTT:          world.RTT(i, j),
				Jitter:       1500 * time.Microsecond,
				BandwidthBps: cfg.OverlayBandwidthBps,
				Loss:         lossFn,
			}
			if cfg.BurstLoss {
				// Bursty episodes scaled off the base loss: mostly quiet,
				// with short bad states that dominate the long-run rate.
				lc.Burst = &netem.BurstConfig{
					PGood:    base * 0.25,
					PBad:     min(0.2, 30*base),
					GoodMean: 20 * time.Second,
					BadMean:  1500 * time.Millisecond,
				}
			}
			net.AddLink(i, j, lc)
		}
	}

	// Streaming Brain: single instance, or a Paxos-replicated group with
	// the SIB kept consistent across replicas (§7.1). Aging is enabled so
	// elements whose owner stops reporting are routed around.
	bcfg := brain.Config{
		N:          cfg.Sites,
		LastResort: world.IXPSites(),
		Clock:      loop,
		StaleAfter: 3 * cfg.DiscoveryInterval,
		Telemetry:  c.BrainTel,
	}
	switch {
	case cfg.Regions > 0:
		// Federated Brain: per-region shards behind the brainfed
		// front-end. Shards keep the lazy per-pair KSP (each owns a
		// subgraph, so dense N² materialization never pays off).
		c.Fed = brainfed.New(brainfed.Config{
			Brain:     bcfg,
			Partition: brainfed.ByRegion(world, cfg.Regions),
			Replicas:  cfg.Replicas,
			Telemetry: c.BrainTel,
		})
		c.replicaPartitioned = make([]bool, c.Fed.Shards())
	case cfg.Replicas > 1:
		peers := make([]int, cfg.Replicas)
		for i := range peers {
			peers[i] = i
		}
		c.replicaDown = make([]bool, cfg.Replicas)
		c.replicaPartitioned = make([]bool, cfg.Replicas)
		tr := &paxosTransport{c: c}
		for i := 0; i < cfg.Replicas; i++ {
			local := brain.New(bcfg)
			if cfg.MaxPeers <= 0 {
				local.EnableDense()
			}
			c.Replicas = append(c.Replicas, brain.NewReplicated(local, i, peers, tr, loop))
		}
		c.Brain = c.Replicas[0].Local
	default:
		c.Brain = brain.New(bcfg)
		if cfg.MaxPeers <= 0 {
			// Sparse overlays keep the lazy per-pair KSP; the dense solver
			// assumes it is worth materializing all N² pairs per epoch.
			c.Brain.EnableDense()
		}
	}
	// Lookup attribution (satellite of the replicated/federated Brain):
	// which replica answered, home vs failover. Nil-registry safe.
	c.servedHome = c.BrainTel.Counter("brain.lookups_served_home")
	c.servedFailover = c.BrainTel.Counter("brain.lookups_served_failover")
	c.lastReplica = c.BrainTel.Gauge("brain.lookup_last_replica")
	// Drain orchestration (planned reconfiguration): counted here, not in
	// the Brain, so a federated deployment counts each drain once instead
	// of once per shard.
	c.drainsStarted = c.BrainTel.Counter("brain.drains_started")
	c.drainsCompleted = c.BrainTel.Counter("brain.drains_completed")
	c.drainMigrations = c.BrainTel.Counter("brain.drain_migrations")

	// Overlay nodes wired to the Brain.
	for id := 0; id < cfg.Sites; id++ {
		n := c.buildNode(id)
		c.Nodes = append(c.Nodes, n)
		net.Handle(id, n.OnMessage)
	}

	c.discoveryLoop()
	return c
}

// buildNode constructs one overlay node's instance (also used to bring a
// crashed node back).
func (c *Cluster) buildNode(id int) *node.Node {
	var reg *telemetry.Registry
	if c.NodeTel != nil {
		reg = c.NodeTel[id]
	}
	return node.New(node.Config{
		Telemetry:       reg,
		Tracer:          c.Tracer,
		ID:              id,
		Clock:           c.Loop,
		Net:             c.Net,
		SerialSend:      c.cfg.SerialSend,
		LinkRTT:         func(to int) time.Duration { return c.linkRTT(id, to) },
		PathLookup:      c.pathLookup,
		OnNewStream:     func(sid uint32) { c.registerStream(sid, id) },
		OnStreamEnded:   func(sid uint32) { c.unregisterStream(sid) },
		IsOverlay:       func(id int) bool { return id < clientIDBase },
		UpstreamTimeout: c.cfg.NodeUpstreamTimeout,
		LowerRendition: func(sid uint32) (uint32, bool) {
			lower, ok := c.lowerRendition[sid]
			return lower, ok
		},
	})
}

// registerStream records a stream's producer in the SIB: directly on a
// single Brain, or proposed through the first live replica's Paxos group.
func (c *Cluster) registerStream(sid uint32, producer int) {
	if c.Fed != nil {
		c.Fed.RegisterStream(sid, producer)
		return
	}
	if len(c.Replicas) == 0 {
		c.Brain.RegisterStream(sid, producer)
		return
	}
	for t := 0; t < len(c.Replicas); t++ {
		if idx := (producer + t) % len(c.Replicas); !c.replicaDown[idx] {
			c.Replicas[idx].RegisterStream(sid, producer)
			return
		}
	}
}

func (c *Cluster) unregisterStream(sid uint32) {
	if c.Fed != nil {
		c.Fed.UnregisterStream(sid)
		return
	}
	if len(c.Replicas) == 0 {
		c.Brain.UnregisterStream(sid)
		return
	}
	for t := 0; t < len(c.Replicas); t++ {
		if idx := t % len(c.Replicas); !c.replicaDown[idx] {
			c.Replicas[idx].UnregisterStream(sid)
			return
		}
	}
}

// discoverySink is the report surface Global Discovery feeds. Both the
// monolithic Brain and the federation front-end implement it; with a
// federation, reports route on to the shard owning the reporting node.
type discoverySink interface {
	ReportLink(from, to int, rtt time.Duration, loss, util float64)
	ReportLinkDown(from, to int)
	ReportNodeLoad(id int, util float64)
	OverloadAlarm(id int, util float64)
	LinkOverloadAlarm(from, to int, util float64)
	ReportNodeTelemetry(id int, snap telemetry.Snapshot, streams []uint32)
}

// eachSink applies fn to every live report sink (Global Discovery
// reports reach all replicas' local views; dead replicas miss them and
// catch up from later reports after a restart).
func (c *Cluster) eachSink(fn func(discoverySink)) {
	if c.Fed != nil {
		fn(c.Fed)
		return
	}
	if len(c.Replicas) == 0 {
		fn(c.Brain)
		return
	}
	for i, rb := range c.Replicas {
		if !c.replicaDown[i] {
			fn(rb.Local)
		}
	}
}

// paxosTransport carries replica-to-replica consensus traffic with a
// modeled inter-DC delay; messages to or from a killed replica vanish.
type paxosTransport struct{ c *Cluster }

func (t *paxosTransport) Send(from, to int, m replication.Msg) {
	c := t.c
	if c.replicaDown[from] || c.replicaDown[to] ||
		c.replicaPartitioned[from] || c.replicaPartitioned[to] {
		return
	}
	rng := c.Loop.RNG("paxos")
	delay := time.Duration(5+rng.Intn(10)) * time.Millisecond
	c.Loop.AfterFunc(delay, func() {
		if !c.replicaDown[to] && !c.replicaPartitioned[to] {
			c.Replicas[to].OnMessage(from, m)
		}
	})
}

// linkRTT is the per-hop RTT estimate a node uses for the delay-extension
// accounting: the geo RTT for overlay neighbors (nodes know this from the
// transport layer), a nominal value for client access links.
func (c *Cluster) linkRTT(from, to int) time.Duration {
	if to >= clientIDBase {
		return 30 * time.Millisecond // nominal last mile
	}
	return c.World.RTT(from, to)
}

// replicaTimeout is how long a consumer waits on a Brain replica before
// failing over to the next one.
const replicaTimeout = 250 * time.Millisecond

// pathLookup reaches the Brain's Path Decision module with a modeled
// replica round trip: some consumers are co-located with a replica
// (§7.1: the Path Decision module is replicated widely). With a
// replicated Brain, the consumer's home replica is consumer mod R; a
// dead replica times out and the lookup fails over to the next, and when
// every replica is exhausted the node hears ErrBrainUnreachable and
// serves from its local path cache.
func (c *Cluster) pathLookup(sid uint32, consumer int, cb func([][]int, error)) {
	rng := c.Loop.RNG("brainrtt")
	var rtt time.Duration
	if rng.Bernoulli(0.35) {
		rtt = time.Duration(1+rng.Intn(5)) * time.Millisecond
	} else {
		rtt = time.Duration(8+rng.Intn(45)) * time.Millisecond
	}
	proc := time.Duration(2+rng.Intn(6)) * time.Millisecond
	total := rtt + proc
	if c.Fed != nil {
		c.RespTimes.Add(float64(total) / float64(time.Millisecond))
		c.Loop.AfterFunc(total, func() {
			paths, err := c.Fed.Lookup(sid, consumer)
			if errors.Is(err, brainfed.ErrShardUnreachable) {
				// The fallback ladder ran dry: count it like an exhausted
				// replica ring and let the node use its local path cache.
				c.BrainLookupFailures++
				err = ErrBrainUnreachable
			}
			cb(paths, err)
		})
		return
	}
	if len(c.Replicas) == 0 {
		c.RespTimes.Add(float64(total) / float64(time.Millisecond))
		c.Loop.AfterFunc(total, func() {
			paths, err := c.Brain.Lookup(sid, consumer)
			cb(paths, err)
		})
		return
	}
	c.lookupReplica(sid, consumer, consumer%len(c.Replicas), 0, total, cb)
}

// lookupReplica tries replica (home+tried) mod R, walking the ring until
// one answers or all have timed out.
func (c *Cluster) lookupReplica(sid uint32, consumer, home, tried int, rtt time.Duration, cb func([][]int, error)) {
	if tried >= len(c.Replicas) {
		c.BrainLookupFailures++
		c.Loop.AfterFunc(replicaTimeout, func() { cb(nil, ErrBrainUnreachable) })
		return
	}
	idx := (home + tried) % len(c.Replicas)
	if c.replicaDown[idx] {
		c.Loop.AfterFunc(replicaTimeout, func() {
			c.BrainFailovers++
			c.lookupReplica(sid, consumer, home, tried+1, rtt, cb)
		})
		return
	}
	c.RespTimes.Add(float64(time.Duration(tried)*replicaTimeout+rtt) / float64(time.Millisecond))
	c.Loop.AfterFunc(rtt, func() {
		paths, served, err := c.Replicas[idx].LookupServed(sid, consumer)
		// Attribute the answer: a lookup served off the consumer's home
		// replica is a failover the operator should see in telemetry.
		if served == home {
			c.servedHome.Inc()
		} else {
			c.servedFailover.Inc()
		}
		c.lastReplica.Set(float64(served))
		cb(paths, err)
	})
}

// discoveryLoop reports link and node metrics to Global Discovery on the
// 1-minute schedule of §4.2, with immediate overload alarms at the 80%
// target.
func (c *Cluster) discoveryLoop() {
	c.Loop.AfterFunc(c.cfg.DiscoveryInterval, func() {
		if c.closed {
			return
		}
		n := c.cfg.Sites
		for i := 0; i < n; i++ {
			if c.crashed[i] {
				continue // a crashed node cannot report anything
			}
			maxUtil := 0.0
			for _, j := range c.overlayRows[i] {
				s, ok := c.Net.LinkStats(i, j)
				if !ok {
					continue
				}
				if !c.Net.LinkUp(i, j) {
					// The node's probes over a dead link time out: report
					// the failure instead of stale metrics (§4.2).
					c.eachSink(func(b discoverySink) { b.ReportLinkDown(i, j) })
					continue
				}
				c.eachSink(func(b discoverySink) {
					b.ReportLink(i, j, s.RTT, s.LossRate, s.Utilization)
					if s.Utilization >= 0.8 {
						b.LinkOverloadAlarm(i, j, s.Utilization)
					}
				})
				if s.Utilization > maxUtil {
					maxUtil = s.Utilization
				}
			}
			load := 0.7*maxUtil + 0.3*min(1, float64(c.Nodes[i].StreamCount())/64)
			c.eachSink(func(b discoverySink) {
				b.ReportNodeLoad(i, load)
				if load >= 0.8 {
					b.OverloadAlarm(i, load)
				}
			})
			if c.NodeTel != nil {
				// Telemetry rides the existing report: a registry snapshot
				// plus the carried-stream set for fan-out accounting.
				snap := c.NodeTel[i].Snapshot()
				streams := c.Nodes[i].Streams()
				c.eachSink(func(b discoverySink) { b.ReportNodeTelemetry(i, snap, streams) })
			}
		}
		c.discoveryLoop()
	})
}

// allocClientID reserves a fresh client endpoint ID.
func (c *Cluster) allocClientID() int {
	id := c.nextClient
	c.nextClient++
	return id
}

// lastMile wires a client endpoint to a node with a plausible access link.
func (c *Cluster) lastMile(clientID, nodeID int, rtt time.Duration, loss float64) {
	cfg := netem.LinkConfig{
		RTT:          rtt,
		Jitter:       2 * time.Millisecond,
		BandwidthBps: c.cfg.LastMileBandwidthBps,
	}
	if loss > 0 {
		cfg.Loss = func(time.Duration) float64 { return loss }
	}
	c.Net.AddDuplex(clientID, nodeID, cfg)
	c.lastMileClients[nodeID] = append(c.lastMileClients[nodeID], clientID)
	c.lastMileLoss[clientID] = cfg.Loss
}

// NewBroadcasterAt creates a broadcaster at the given location, mapped by
// DNS redirection to its nearest site (the producer node).
func (c *Cluster) NewBroadcasterAt(lat, lon float64, baseSID uint32, rends []media.Rendition) *Broadcast {
	producer := c.World.NearestSite(lat, lon)
	id := c.allocClientID()
	rng := c.Loop.RNG("lastmile")
	rtt := time.Duration(10+rng.Intn(30)) * time.Millisecond
	c.lastMile(id, producer, rtt, 0.0005)
	bc := client.NewBroadcaster(id, producer, baseSID, rends, c.Loop, c.Net, c.Loop.RNG("media"))
	if c.ClientTel != nil {
		bc.Instrument(c.ClientTel)
	}
	bc.FirstMileRTT = rtt
	// Register the simulcast ladder for bitrate down-switching: rendition
	// i's next-lower version is rendition i+1 (§5.2).
	for i := 0; i+1 < len(rends); i++ {
		c.lowerRendition[bc.StreamID(i)] = bc.StreamID(i + 1)
	}
	return &Broadcast{Broadcaster: bc, Producer: producer}
}

// PrefetchPopular proactively pushes up-to-date overlay paths for a
// popular stream to every node ahead of viewer arrival (§4.4), so the
// first viewing request anywhere is a local hit.
func (c *Cluster) PrefetchPopular(sid uint32) error {
	var paths map[int][][]int
	var err error
	if c.Fed != nil {
		paths, err = c.Fed.PrefetchPaths(sid)
	} else {
		paths, err = c.Brain.PrefetchPaths(sid)
	}
	if err != nil {
		return err
	}
	for dst, p := range paths {
		c.Nodes[dst].InstallPaths(sid, p)
	}
	return nil
}

// Broadcast bundles a broadcaster with its producer node assignment.
type Broadcast struct {
	*client.Broadcaster
	Producer int
}

// Viewing bundles a viewer with its consumer node assignment.
type Viewing struct {
	*client.Viewer
	ConsumerNode int
	LocalHit     bool
}

// NewViewerAt creates a viewer at the given location, mapped to its
// nearest site (the consumer node), and attaches it to the stream.
func (c *Cluster) NewViewerAt(lat, lon float64, sid uint32) *Viewing {
	consumer := c.World.NearestSite(lat, lon)
	id := c.allocClientID()
	rng := c.Loop.RNG("lastmile")
	rtt := time.Duration(10+rng.Intn(40)) * time.Millisecond
	loss := 0.0005
	if rng.Bernoulli(0.12) { // mobile tail
		loss = 0.003 + rng.Float64()*0.01
	}
	c.lastMile(id, consumer, rtt, loss)
	v := client.NewViewer(id, sid, consumer, c.Loop, c.Net)
	if c.ClientTel != nil {
		v.Instrument(c.ClientTel)
	}
	c.Net.Handle(id, v.OnMessage)
	v.Attach()
	hit := c.Nodes[consumer].AttachViewer(id, sid)
	// Quality-triggered path switching (§4.4): relay client stall reports
	// to the consumer node.
	v.OnStall = func(count int) {
		c.Nodes[consumer].ReportClientQuality(id, sid, count)
	}
	return &Viewing{Viewer: v, ConsumerNode: consumer, LocalHit: hit}
}

// Detach removes a viewing from its consumer.
func (c *Cluster) Detach(v *Viewing) {
	c.Nodes[v.ConsumerNode].DetachViewer(v.Viewer.ID, v.Viewer.StreamID)
	v.Viewer.Close()
}

// Run advances the cluster's virtual time.
func (c *Cluster) Run(d time.Duration) {
	c.Loop.RunUntil(c.Loop.Now() + d)
}

// --- Fault-injection surface (driven by internal/chaos) ---

// CrashNode fail-stops an overlay node: its process dies (handler gone,
// timers stopped) and every incident link goes dark. Recovery flows
// through the system itself — neighbors report dead links, the Brain
// ages the node out, downstream nodes fast-switch.
func (c *Cluster) CrashNode(id int) {
	if id < 0 || id >= c.cfg.Sites || c.crashed[id] {
		return
	}
	c.crashed[id] = true
	c.Nodes[id].Close()
	c.Net.Handle(id, nil)
	for j := 0; j < c.cfg.Sites; j++ {
		if j != id {
			c.Net.SetLinkUp(id, j, false)
			c.Net.SetLinkUp(j, id, false)
		}
	}
	for _, cl := range c.lastMileClients[id] {
		c.Net.SetLinkUp(id, cl, false)
		c.Net.SetLinkUp(cl, id, false)
	}
}

// RestartNode brings a crashed node back with empty state (a fresh
// process): its links come up and it resumes reporting; streams reappear
// only as downstream subscriptions re-establish through it.
func (c *Cluster) RestartNode(id int) {
	if id < 0 || id >= c.cfg.Sites || !c.crashed[id] {
		return
	}
	c.crashed[id] = false
	n := c.buildNode(id)
	c.Nodes[id] = n
	c.Net.Handle(id, n.OnMessage)
	for j := 0; j < c.cfg.Sites; j++ {
		if j != id && !c.crashed[j] {
			c.Net.SetLinkUp(id, j, true)
			c.Net.SetLinkUp(j, id, true)
		}
	}
	for _, cl := range c.lastMileClients[id] {
		c.Net.SetLinkUp(id, cl, true)
		c.Net.SetLinkUp(cl, id, true)
	}
}

// NodeCrashed reports whether a node is currently failed.
func (c *Cluster) NodeCrashed(id int) bool {
	return id >= 0 && id < len(c.crashed) && c.crashed[id]
}

// SetOverlayLink cuts or restores the duplex overlay link between two
// sites (a "fiber cut", distinct from congestion).
func (c *Cluster) SetOverlayLink(a, b int, up bool) {
	c.Net.SetLinkUp(a, b, up)
	c.Net.SetLinkUp(b, a, up)
}

// SetOverlayBurst installs (or clears, with nil) a bursty-loss episode
// generator on the duplex overlay link between two sites.
func (c *Cluster) SetOverlayBurst(a, b int, cfg *netem.BurstConfig) {
	c.Net.SetBurst(a, b, cfg)
	c.Net.SetBurst(b, a, cfg)
}

// DegradeLastMile sets every access link of a node's attached clients to
// the given loss rate; it returns how many clients were affected.
func (c *Cluster) DegradeLastMile(nodeID int, loss float64) int {
	fn := func(time.Duration) float64 { return loss }
	for _, cl := range c.lastMileClients[nodeID] {
		c.Net.SetLoss(nodeID, cl, fn)
		c.Net.SetLoss(cl, nodeID, fn)
	}
	return len(c.lastMileClients[nodeID])
}

// RestoreLastMile reinstates the original loss on a node's access links.
func (c *Cluster) RestoreLastMile(nodeID int) {
	for _, cl := range c.lastMileClients[nodeID] {
		fn := c.lastMileLoss[cl]
		c.Net.SetLoss(nodeID, cl, fn)
		c.Net.SetLoss(cl, nodeID, fn)
	}
}

// KillReplica takes a Brain replica down: it stops answering lookups and
// drops out of the consensus group (no-op without a replicated Brain).
func (c *Cluster) KillReplica(i int) {
	if i >= 0 && i < len(c.replicaDown) {
		c.replicaDown[i] = true
	}
}

// RestartReplica brings a Brain replica back; it catches up on SIB state
// from subsequent consensus traffic and on view state from the next
// discovery reports.
func (c *Cluster) RestartReplica(i int) {
	if i >= 0 && i < len(c.replicaDown) {
		c.replicaDown[i] = false
	}
}

// PartitionReplica cuts a Brain replica off from consensus traffic
// without killing it (it keeps serving lookups from its local view but
// cannot commit proposals). With a federated Brain the index names a
// shard instead: the shard becomes unreachable from the front-end and
// cross-shard lookups degrade through the fallback ladder.
func (c *Cluster) PartitionReplica(i int) {
	if i < 0 || i >= len(c.replicaPartitioned) {
		return
	}
	c.replicaPartitioned[i] = true
	if c.Fed != nil {
		c.Fed.SetShardDown(i, true)
	}
}

// HealReplica reconnects a partitioned replica (or federation shard);
// stalled proposals catch up through retries and learn traffic.
func (c *Cluster) HealReplica(i int) {
	if i < 0 || i >= len(c.replicaPartitioned) {
		return
	}
	c.replicaPartitioned[i] = false
	if c.Fed != nil {
		c.Fed.SetShardDown(i, false)
	}
}

// Close stops timers.
func (c *Cluster) Close() {
	c.closed = true
	if c.Fed != nil {
		c.Fed.Close()
	} else if len(c.Replicas) > 0 {
		for _, rb := range c.Replicas {
			rb.Close()
		}
	} else {
		c.Brain.Close()
	}
	for _, n := range c.Nodes {
		n.Close()
	}
}
