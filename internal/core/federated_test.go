package core

import (
	"testing"
	"time"

	"livenet/internal/media"
)

// TestClusterFederatedEndToEnd drives the packet-level cluster with the
// Brain federated into per-region shards: streams register with their
// owning shard, viewers in other regions are served via stitched paths,
// and playback works exactly as with the monolith.
func TestClusterFederatedEndToEnd(t *testing.T) {
	c := NewCluster(ClusterConfig{Seed: 1, Sites: 12, Regions: 3, MaxPeers: 4, Telemetry: true})
	defer c.Close()
	if c.Fed == nil {
		t.Fatal("Regions > 0 did not build a federated Brain")
	}
	if got := c.Fed.Shards(); got != 3 {
		t.Fatalf("shards = %d, want 3", got)
	}

	bc := c.NewBroadcasterAt(31.2, 121.5, 100, media.DefaultRenditions[:1])
	bc.Start()
	c.Run(2 * time.Second)

	if p, ok := c.Fed.Producer(bc.StreamID(0)); !ok || p != bc.Producer {
		t.Fatalf("federated SIB producer = %d ok=%v, want %d", p, ok, bc.Producer)
	}

	// A viewer whose nearest site lives in a different shard than the
	// producer, so the lookup exercises cross-shard stitching.
	viewerLat, viewerLon := 52.0, -1.0 // GB
	consumer := c.World.NearestSite(viewerLat, viewerLon)
	if c.Fed.ShardOf(consumer) == c.Fed.ShardOf(bc.Producer) {
		t.Fatal("test setup: viewer maps into the producer's shard")
	}
	v := c.NewViewerAt(viewerLat, viewerLon, bc.StreamID(0))
	c.Run(8 * time.Second)
	if s := v.Stats(); !s.Started || s.FramesPlayed < 50 {
		t.Fatalf("federated viewer: started=%v frames=%d", s.Started, s.FramesPlayed)
	}

	snap := c.BrainTel.Snapshot()
	if snap.Counters["brainfed.lookups_cross"] == 0 {
		t.Fatal("cross-shard lookup not counted")
	}

	// Discovery reports fan into the owning shards only; after a few
	// rounds every shard has heard from its own nodes.
	c.Run(2 * time.Minute)
	fan := c.Fed.ReportFanIn()
	for s, n := range fan {
		if n == 0 {
			t.Fatalf("shard %d received no discovery reports", s)
		}
	}
}

// TestClusterFederatedShardPartitionFallback is the PR acceptance check:
// a single-shard partition must not take down cross-shard viewing.
// Warm pairs keep playing from the stitch cache, and after the heal the
// federation serves fresh lookups again.
func TestClusterFederatedShardPartitionFallback(t *testing.T) {
	c := NewCluster(ClusterConfig{Seed: 3, Sites: 12, Regions: 3, MaxPeers: 4, Telemetry: true})
	defer c.Close()

	bc := c.NewBroadcasterAt(31.2, 121.5, 100, media.DefaultRenditions[:1])
	bc.Start()
	c.Run(2 * time.Second)

	viewerLat, viewerLon := 52.0, -1.0 // GB: different shard from the producer
	consumer := c.World.NearestSite(viewerLat, viewerLon)
	srcShard := c.Fed.ShardOf(bc.Producer)
	if c.Fed.ShardOf(consumer) == srcShard {
		t.Fatal("test setup: viewer maps into the producer's shard")
	}
	v1 := c.NewViewerAt(viewerLat, viewerLon, bc.StreamID(0))
	c.Run(8 * time.Second)
	if !v1.Stats().Started {
		t.Fatal("pre-partition viewer never started")
	}
	c.Detach(v1)
	c.Run(time.Second)

	// Cut the producer's shard off from the front-end. The (producer,
	// consumer) stitch is already cached, so a new viewer at the same
	// site must still get a path and start playback.
	c.PartitionReplica(srcShard)
	v2 := c.NewViewerAt(viewerLat, viewerLon, bc.StreamID(0))
	c.Run(8 * time.Second)
	if s := v2.Stats(); !s.Started || s.FramesPlayed < 50 {
		t.Fatalf("viewer during shard partition: started=%v frames=%d", s.Started, s.FramesPlayed)
	}
	snap := c.BrainTel.Snapshot()
	if snap.Counters["brainfed.fallback_cached"] == 0 {
		t.Fatal("cached-stitch fallback not exercised during partition")
	}
	if down := snap.Gauges["brainfed.shards_down"]; down != 1 {
		t.Fatalf("brainfed.shards_down = %v during partition, want 1", down)
	}

	// Heal and verify fresh cross-shard lookups work again.
	c.HealReplica(srcShard)
	v3 := c.NewViewerAt(48.8, 2.3, bc.StreamID(0)) // FR
	c.Run(8 * time.Second)
	if s := v3.Stats(); !s.Started {
		t.Fatalf("post-heal viewer never started: %+v", s)
	}
	if down := c.BrainTel.Snapshot().Gauges["brainfed.shards_down"]; down != 0 {
		t.Fatalf("brainfed.shards_down = %v after heal, want 0", down)
	}
}

// TestMacroFederatedBrain runs the session-level simulator with the
// federated control plane and checks the run is live, deterministic, and
// actually consulted the shards.
func TestMacroFederatedBrain(t *testing.T) {
	mk := func() *MacroResult {
		cfg := MacroConfig{Seed: 6, Days: 1, Sites: 24, System: SystemLiveNet, MaxPeers: 6, Regions: 3}
		cfg.Workload.PeakViewsPerSec = 0.5
		cfg.Workload.Channels = 60
		return RunMacro(cfg)
	}
	r := mk()
	if r.Views == 0 {
		t.Fatal("no views simulated")
	}
	if r.CDNDelayMs.Median() <= 0 {
		t.Fatalf("CDN delay median = %v", r.CDNDelayMs.Median())
	}
	if r.BrainMetrics.Lookups == 0 {
		t.Fatal("federated brain never consulted")
	}
	if r.GlobalView.Links == 0 {
		t.Fatal("merged GlobalView has no links")
	}
	b := mk()
	if r.Views != b.Views || r.CDNDelayMs.Median() != b.CDNDelayMs.Median() ||
		r.ZeroStall != b.ZeroStall || r.BrainMetrics != b.BrainMetrics {
		t.Fatal("federated macro run not deterministic")
	}
}
