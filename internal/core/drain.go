package core

import "time"

// Relay drain and rolling restart (planned reconfiguration, ROADMAP
// item 4): DrainNode moves every stream a relay carries onto paths that
// avoid it — make-before-break, so viewers never see the move — and
// RollingRestart strings drains together into a full-fleet restart with
// zero added stalls. The Brain excludes draining relays from new path
// decisions and the relay itself refuses new subscriptions, so the
// drain converges instead of racing arriving viewers.

// drainMigrationSpacing rate-limits a drain: one (stream, subscriber)
// migration is issued per tick so the control plane never bursts a
// migration storm onto the overlay by itself.
const drainMigrationSpacing = 50 * time.Millisecond

// DrainNode starts draining an overlay node: the Brain stops routing
// new paths through it, the node refuses new subscriptions, and every
// carried stream's downstream subscribers are told to migrate onto
// paths avoiding it — rate-limited, highest-fan-out streams first. It
// returns how many migrations were scheduled (0 when the node is
// unknown, crashed, already draining, or carries nothing).
func (c *Cluster) DrainNode(id int) int {
	if id < 0 || id >= c.cfg.Sites || c.crashed[id] || c.draining[id] {
		return 0
	}
	c.draining[id] = true
	c.drainsStarted.Inc()
	c.setBrainDraining(id, true)
	c.Nodes[id].SetDraining(true)
	scheduled := 0
	for _, rs := range c.Nodes[id].CarriedStreams() {
		for _, dst := range rs.Subscribers {
			if dst >= clientIDBase || dst >= len(c.Nodes) {
				continue
			}
			sid, dst := rs.SID, dst
			c.Loop.AfterFunc(time.Duration(scheduled)*drainMigrationSpacing, func() {
				c.migrateOff(sid, dst, id)
			})
			scheduled++
		}
	}
	c.drainMigrations.Add(uint64(scheduled))
	return scheduled
}

// DrainRemaining reports how many (stream, subscriber) pairs still ride
// through a draining node — 0 means the drain has converged and the
// node can be taken down without touching live traffic.
func (c *Cluster) DrainRemaining(id int) int {
	if id < 0 || id >= c.cfg.Sites || c.crashed[id] {
		return 0
	}
	n := 0
	for _, rs := range c.Nodes[id].CarriedStreams() {
		n += len(rs.Subscribers)
	}
	return n
}

// UndrainNode readmits a node to path decisions (after a restart, or to
// cancel a drain).
func (c *Cluster) UndrainNode(id int) {
	if id < 0 || id >= c.cfg.Sites || !c.draining[id] {
		return
	}
	c.draining[id] = false
	c.drainsCompleted.Inc()
	c.setBrainDraining(id, false)
	if !c.crashed[id] {
		c.Nodes[id].SetDraining(false)
	}
}

// NodeDraining reports whether a node is currently draining.
func (c *Cluster) NodeDraining(id int) bool {
	return id >= 0 && id < len(c.draining) && c.draining[id]
}

// migrateOff asks subscriber dst to make-before-break migrate sid onto
// a path that avoids the draining node. The Brain's own draining filter
// already excludes it; the explicit check also guards memoized and
// last-resort answers.
func (c *Cluster) migrateOff(sid uint32, dst, avoid int) {
	if c.closed || dst < 0 || dst >= len(c.Nodes) || c.crashed[dst] {
		return
	}
	for _, p := range c.lookupPaths(sid, dst) {
		if pathContains(p, avoid) {
			continue
		}
		c.Nodes[dst].Migrate(sid, p)
		return
	}
}

// lookupPaths serves a synchronous control-plane path lookup for the
// drain orchestrator (no modeled replica RTT: the operator tooling
// talks to the Brain directly).
func (c *Cluster) lookupPaths(sid uint32, consumer int) [][]int {
	if c.Fed != nil {
		paths, _ := c.Fed.Lookup(sid, consumer)
		return paths
	}
	if len(c.Replicas) > 0 {
		for i, rb := range c.Replicas {
			if !c.replicaDown[i] {
				paths, _ := rb.Lookup(sid, consumer)
				return paths
			}
		}
		return nil
	}
	paths, _ := c.Brain.Lookup(sid, consumer)
	return paths
}

func pathContains(p []int, id int) bool {
	for _, h := range p {
		if h == id {
			return true
		}
	}
	return false
}

// setBrainDraining propagates the draining mark to every path-deciding
// Brain instance (all shards of a federation, every live replica of a
// Paxos group, or the monolith).
func (c *Cluster) setBrainDraining(id int, v bool) {
	if c.Fed != nil {
		c.Fed.SetDraining(id, v)
		return
	}
	if len(c.Replicas) > 0 {
		for i, rb := range c.Replicas {
			if !c.replicaDown[i] {
				rb.Local.SetDraining(id, v)
			}
		}
		return
	}
	c.Brain.SetDraining(id, v)
}

// RollingRestart schedules a drain → crash → restart → undrain cycle
// over the given nodes, one node at a time: each node drains for
// drainFor (long enough for its migrations to splice), is down for
// downFor, then rejoins and the next node starts after a short
// stabilization gap. Returns the virtual time at which the last node
// has rejoined.
func (c *Cluster) RollingRestart(ids []int, drainFor, downFor time.Duration) time.Duration {
	const stabilize = time.Second
	t := c.Loop.Now()
	for _, id := range ids {
		id := id
		start := t
		c.Loop.AfterFunc(start-c.Loop.Now(), func() { c.DrainNode(id) })
		c.Loop.AfterFunc(start+drainFor-c.Loop.Now(), func() { c.CrashNode(id) })
		c.Loop.AfterFunc(start+drainFor+downFor-c.Loop.Now(), func() {
			c.RestartNode(id)
			c.UndrainNode(id)
		})
		t = start + drainFor + downFor + stabilize
	}
	return t
}
