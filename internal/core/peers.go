package core

import (
	"sort"

	"livenet/internal/geo"
)

// peerAdjacency builds the sparse overlay used when MaxPeers caps the
// mesh: each site keeps links to its m nearest peers by RTT plus every
// IXP site (so reserved last-resort detours stay reachable), symmetrized
// so traffic can flow both ways over every kept link. Rows are sorted and
// never contain the row's own site. Returns nil for m <= 0 (full mesh).
//
// The paper's overlay is not a full mesh at fleet scale — Global Routing
// runs over the links nodes actually probe. This is the knob that lets
// the simulators and benchmarks run at paper-scale N with a realistic
// per-node degree instead of N² links.
func peerAdjacency(w *geo.World, m int) [][]int {
	if m <= 0 {
		return nil
	}
	n := len(w.Sites)
	set := make([]map[int]bool, n)
	for i := range set {
		set[i] = make(map[int]bool, m+4)
	}
	add := func(i, j int) {
		if i != j {
			set[i][j] = true
			set[j][i] = true
		}
	}
	ixps := w.IXPSites()
	for i := 0; i < n; i++ {
		for _, j := range w.NearestPeers(i, m) {
			add(i, j)
		}
		for _, x := range ixps {
			add(i, x)
		}
	}
	// Gateway mesh: every region-gateway pair keeps a link. The IXP union
	// above already covers most of it, but a region whose gateway is a
	// plain best-peered site (no IXP of its own) still needs guaranteed
	// links to the other regions' gateways, or federated cross-region
	// stitching (internal/brainfed) would starve on sparse overlays.
	var gates []int
	for _, g := range w.RegionGateways() {
		gates = append(gates, g...)
	}
	for _, a := range gates {
		for _, b := range gates {
			add(a, b)
		}
	}
	adj := make([][]int, n)
	for i := range adj {
		adj[i] = make([]int, 0, len(set[i]))
		for j := range set[i] {
			adj[i] = append(adj[i], j)
		}
		sort.Ints(adj[i])
	}
	return adj
}
