package core

import (
	"container/heap"
	"sort"
	"time"

	"livenet/internal/brain"
	"livenet/internal/brainfed"
	"livenet/internal/geo"
	"livenet/internal/telemetry"
	"livenet/internal/workload"
)

// macroBrain is the slice of the Streaming Brain surface the macro engine
// drives. Both the monolithic *brain.Brain and the federated
// *brainfed.Federation satisfy it, so MacroConfig.Regions switches the
// control plane without touching the session machinery.
type macroBrain interface {
	RegisterStream(sid uint32, producer int)
	ReportLink(from, to int, rtt time.Duration, loss, util float64)
	ReportNodeLoad(id int, util float64)
	OverloadAlarm(id int, util float64)
	AdvanceEpoch()
	Lookup(sid uint32, consumer int) ([][]int, error)
	ReportNodeTelemetry(id int, snap telemetry.Snapshot, streams []uint32)
	GlobalView() brain.GlobalView
	Metrics() brain.Metrics
	Close()
}

// lnStream is the per-(site, stream) session-level state: the macro
// analogue of a node's Stream FIB entry plus its GoP cache indicator.
type lnStream struct {
	upstream   int   // previous hop toward the producer (-1 at producer)
	path       []int // actual producer→this-site path
	viewers    int   // locally attached viewers
	downstream map[int]bool
}

// lnKey packs a directed link into a map key.
func lnKey(a, b int) int64 { return int64(a)<<32 | int64(uint32(b)) }

// lnFabric bundles the LiveNet control plane and overlay session state:
// the Streaming Brain, the per-site stream FIBs, and the link/node load
// accounting that feeds Global Discovery. The per-viewer and cohort
// engines drive the same fabric — only how viewers attach differs.
type lnFabric struct {
	e  *macroEnv
	br macroBrain

	adj      [][]int // sparse peer adjacency (nil = full mesh)
	streams  []map[uint32]*lnStream
	linkLoad map[int64]int
	nodeLoad []int

	nextRefresh time.Duration
}

// newLNFabric builds the Brain (monolithic or federated), registers every
// channel at its producer site, and runs the epoch-0 Global Discovery
// refresh.
func newLNFabric(e *macroEnv) *lnFabric {
	cfg := e.cfg
	n := cfg.Sites

	bcfg := brain.Config{N: n, LastResort: e.world.IXPSites()}
	if cfg.DisableLastResort {
		bcfg.LastResort = nil
	}
	if cfg.KPaths > 0 {
		bcfg.K = cfg.KPaths
	}
	// Sparse overlays skip the dense all-pairs solver: with per-node degree
	// m the lazy per-pair KSP over the CSR view is already cheap, and the
	// dense matrix would still cost O(N²) per epoch.
	adj := peerAdjacency(e.world, cfg.MaxPeers)
	var br macroBrain
	if cfg.Regions > 0 {
		br = brainfed.New(brainfed.Config{
			Brain:     bcfg,
			Partition: brainfed.ByRegion(e.world, cfg.Regions),
		})
	} else {
		mono := brain.New(bcfg)
		if adj == nil {
			mono.EnableDense()
		}
		br = mono
	}

	f := &lnFabric{
		e:           e,
		br:          br,
		adj:         adj,
		streams:     make([]map[uint32]*lnStream, n),
		linkLoad:    make(map[int64]int),
		nodeLoad:    make([]int, n),
		nextRefresh: 10 * time.Minute,
	}
	for i := range f.streams {
		f.streams[i] = make(map[uint32]*lnStream)
	}

	// Register all channels: the producer site carries each stream for
	// the whole run (broadcasters stay live).
	for rank, ch := range e.gen.Channels() {
		p := e.chProducer[rank]
		f.streams[p][ch.StreamID] = &lnStream{upstream: -1, path: []int{p}, downstream: make(map[int]bool)}
		f.nodeLoad[p]++
		br.RegisterStream(ch.StreamID, p)
	}
	f.refresh(0)
	return f
}

// perLinkCap is a link's share of site capacity (min of both endpoints).
func (f *lnFabric) perLinkCap(a, b int) float64 {
	c := f.e.world.Sites[a].CapacityMbps
	if cb := f.e.world.Sites[b].CapacityMbps; cb < c {
		c = cb
	}
	return c * 1e6 / 8
}

func (f *lnFabric) reportLink(i, j int, t time.Duration) {
	util := 0.0
	if !f.e.cfg.DisableLoadWeights {
		util = min(1, float64(f.linkLoad[lnKey(i, j)])*f.e.cfg.StreamBitrate/8/f.perLinkCap(i, j))
	}
	f.br.ReportLink(i, j, f.e.world.RTT(i, j), f.e.linkLoss(i, j, t), util)
}

// refresh runs one Global Discovery report + routing epoch (the paper's
// 10-minute cadence).
func (f *lnFabric) refresh(t time.Duration) {
	e := f.e
	n := e.cfg.Sites
	for i := 0; i < n; i++ {
		if f.adj != nil {
			for _, j := range f.adj[i] {
				f.reportLink(i, j, t)
			}
		} else {
			for j := 0; j < n; j++ {
				if i != j {
					f.reportLink(i, j, t)
				}
			}
		}
		util := 0.0
		if !e.cfg.DisableLoadWeights {
			util = min(1, float64(f.nodeLoad[i])*e.cfg.StreamBitrate/(e.world.Sites[i].CapacityMbps*1e6))
		}
		f.br.ReportNodeLoad(i, util)
		if util >= 0.8 {
			f.br.OverloadAlarm(i, util)
		}
	}
	f.br.AdvanceEpoch()
	e.sampleLossByHour(t)
}

// advanceTo runs every refresh epoch due at or before t.
func (f *lnFabric) advanceTo(t time.Duration) {
	for f.nextRefresh <= t {
		f.refresh(f.nextRefresh)
		f.nextRefresh += 10 * time.Minute
	}
}

// teardown cascades an unsubscription up the chain.
func (f *lnFabric) teardown(site int, sid uint32) {
	st := f.streams[site][sid]
	if st == nil || st.viewers > 0 || len(st.downstream) > 0 || st.upstream == -1 {
		return
	}
	delete(f.streams[site], sid)
	f.nodeLoad[site]--
	up := st.upstream
	f.linkLoad[lnKey(up, site)]--
	if upSt := f.streams[up][sid]; upSt != nil {
		delete(upSt.downstream, site)
		f.teardown(up, sid)
	}
}

// finish attaches a final carried-streams report per site so the
// GlobalView fan-out table reflects end-of-run overlay state (the session
// engine has no per-packet registries, so the snapshots are empty), then
// folds the Brain aggregates into the result.
func (f *lnFabric) finish() {
	e := f.e
	for site := 0; site < e.cfg.Sites; site++ {
		sids := make([]uint32, 0, len(f.streams[site]))
		for sid := range f.streams[site] {
			sids = append(sids, sid)
		}
		sort.Slice(sids, func(a, b int) bool { return sids[a] < sids[b] })
		f.br.ReportNodeTelemetry(site, telemetry.Snapshot{}, sids)
	}
	e.res.GlobalView = f.br.GlobalView()
	e.res.BrainMetrics = f.br.Metrics()
}

// runMacroLiveNet executes the LiveNet session-level engine: the real
// Streaming Brain computes paths over the real Eq. 2–3 weights; viewing
// sessions establish/graft subscriptions exactly like the packet-level
// node code (including cache hits and the long-chain effect); only the
// per-packet data plane is replaced by the calibrated delay/loss model.
func runMacroLiveNet(cfg MacroConfig) *MacroResult {
	e := newMacroEnv(cfg, SystemLiveNet)
	f := newLNFabric(e)
	defer f.br.Close()
	chans := e.gen.Channels()

	// Process events in time order.
	const dayChunk = 24 * time.Hour
	for chunk := time.Duration(0); chunk < e.horizon; chunk += dayChunk {
		views := e.gen.Views(chunk, min(chunk+dayChunk, e.horizon))
		for _, v := range views {
			// Departures and refreshes due before this arrival.
			for len(e.deps) > 0 && e.deps[0].at <= v.Start {
				d := heap.Pop(&e.deps).(departure)
				if st := f.streams[d.site][d.sid]; st != nil {
					st.viewers--
					f.teardown(d.site, d.sid)
				}
				e.active--
			}
			f.advanceTo(v.Start)

			e.handleLiveNetView(f, v, chans)

			e.active++
			if ds := e.dayStats(v.Start); e.active > ds.PeakConcurrency {
				ds.PeakConcurrency = e.active
			}
			heap.Push(&e.deps, departure{at: v.Start + v.Duration, site: e.world.NearestSite(v.Lat, v.Lon), sid: chans[v.Channel].StreamID})
		}
	}
	f.finish()
	e.foldUniquePaths()
	return e.res
}

// handleLiveNetView runs Algorithm 1 for one viewing session.
func (e *macroEnv) handleLiveNetView(f *lnFabric, v workload.View, chans []workload.Channel) {
	ch := chans[v.Channel]
	sid := ch.StreamID
	consumer := e.world.NearestSite(v.Lat, v.Lon)
	producer := e.chProducer[v.Channel]
	intl := v.Country != ch.Country
	cp := e.drawClient()
	t := v.Start

	st := f.streams[consumer][sid]
	prefetched := !e.cfg.DisablePrefetch && ch.Popular
	localHit := st != nil || prefetched

	var path []int
	var firstPktMs float64
	var lastResort, longChain bool

	if st != nil {
		// Stream already flowing here: serve from the GoP cache.
		st.viewers++
		path = st.path
		firstPktMs = 2 + e.rng.Float64()*6
		if e.cfg.DisableGoPCache {
			// Without cached GoPs the viewer waits for the next I frame
			// (~half a GoP = up to 2 s).
			firstPktMs += e.rng.Float64() * 2000
		}
	} else {
		respMs := 0.0
		if !prefetched {
			respMs = e.sampleRespTime(t)
			e.res.RespByHour.Add(workload.Hour(t), respMs)
		}
		paths, err := f.br.Lookup(sid, consumer)
		var best []int
		if err != nil || len(paths) == 0 {
			best = []int{producer, consumer} // degraded fallback
		} else {
			best = paths[0]
			if len(best) == 3 && isLastResort(e.world, best[1]) && len(paths) == 1 {
				lastResort = true
			}
		}
		// Establishment walk: backtrack from the consumer toward the
		// producer; the first node already carrying the stream grafts us
		// (cache hit), possibly yielding a longer actual path (§4.4).
		actual, walkRTTms := graftLiveNet(e, f, sid, best)
		path = actual
		if len(actual) > len(best) {
			longChain = true
		}
		st = f.streams[consumer][sid]
		st.viewers++
		burst := 15 + e.rng.Float64()*35
		firstPktMs = respMs + walkRTTms + burst
		if e.cfg.DisableGoPCache {
			firstPktMs += e.rng.Float64() * 2000
		}
	}

	cdnMs := e.liveNetPathDelay(path)
	stalls := e.stallsFor(SystemLiveNet, v.Duration, path, cp, t)
	startupMs := cp.rttMs + firstPktMs + 90 + e.rng.Float64()*130 + 20 // request + fill + decode
	if e.rng.Bernoulli(0.065) {
		startupMs += 300 + e.rng.Float64()*1400 // slow-device / DNS / access tail
	}
	e.recordView(t, path, cdnMs, firstPktMs, localHit, intl, stalls, startupMs, lastResort, longChain)
	e.notePath(t, path)
}

// graftLiveNet installs session state along the requested path, grafting
// onto the first node (from the consumer backwards) that already carries
// the stream. It returns the actual path and the establishment walk RTT.
func graftLiveNet(e *macroEnv, f *lnFabric, sid uint32, best []int) ([]int, float64) {
	// Find graft point: last index (closest to consumer) whose site has
	// the stream. The producer always has it.
	graft := 0
	for i := len(best) - 1; i >= 0; i-- {
		if f.streams[best[i]][sid] != nil {
			graft = i
			break
		}
	}
	// Walk cost: subscribe messages travel consumer→…→graft (half RTT per
	// hop), and the first data flows back down (half RTT per hop): one
	// full RTT per traversed hop in total.
	walkMs := 0.0
	for i := len(best) - 1; i > graft; i-- {
		walkMs += float64(e.world.RTT(best[i-1], best[i])) / float64(time.Millisecond)
	}
	// Install states below the graft point.
	for i := graft + 1; i < len(best); i++ {
		prev := best[i-1]
		site := best[i]
		if f.streams[site][sid] == nil {
			actual := append(append([]int(nil), f.streams[prev][sid].path...), site)
			f.streams[site][sid] = &lnStream{upstream: prev, path: actual, downstream: make(map[int]bool)}
			f.nodeLoad[site]++
			f.linkLoad[lnKey(prev, site)]++
			f.streams[prev][sid].downstream[site] = true
		}
	}
	consumer := best[len(best)-1]
	return f.streams[consumer][sid].path, walkMs
}

// liveNetPathDelay: one-way fast-path delay = Σ (hop RTT/2 + per-hop
// processing).
func (e *macroEnv) liveNetPathDelay(path []int) float64 {
	procMs := float64(e.cfg.LiveNetHopProc) / float64(time.Millisecond)
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		rtt := float64(e.world.RTT(path[i], path[i+1])) / float64(time.Millisecond)
		total += rtt/2 + procMs
	}
	if len(path) == 1 {
		total = procMs // 0-hop: producer == consumer, processing only
	}
	return total
}

// sampleRespTime models the Path Decision response time (§7.1: replicas
// are widely deployed, so a share of consumers are near one; queueing
// grows with load, giving Figure 10(a)'s spread).
func (e *macroEnv) sampleRespTime(t time.Duration) float64 {
	proc := 2 + e.rng.Float64()*6
	var rtt float64
	if e.rng.Bernoulli(0.35) {
		rtt = e.rng.Float64() * 3 // co-located replica
	} else {
		rtt = 10 + e.rng.Float64()*45
	}
	load := e.gen.RateAt(t) / e.gen.RateAt(peakTimeOfDay(t))
	queue := load * load * e.rng.Float64() * 25
	return proc + rtt + queue
}

// peakTimeOfDay returns the same day's 21:00 home-market local time.
func peakTimeOfDay(t time.Duration) time.Duration {
	day := time.Duration(workload.Day(t)) * 24 * time.Hour
	// 21:00 local at the home longitude ≈ 13.8h UTC.
	return day + 13*time.Hour + 48*time.Minute
}

func isLastResort(w *geo.World, site int) bool {
	return w.Sites[site].IXP
}

// notePath tracks unique overlay paths per day (Table 3's observation
// that unique paths grew ~20% during the festival).
func (e *macroEnv) notePath(t time.Duration, path []int) {
	if e.uniquePaths == nil {
		e.uniquePaths = make(map[int]map[string]struct{})
	}
	d := e.day(t)
	m := e.uniquePaths[d]
	if m == nil {
		m = make(map[string]struct{})
		e.uniquePaths[d] = m
	}
	key := make([]byte, 0, len(path)*2)
	for _, p := range path {
		key = append(key, byte(p), byte(p>>8))
	}
	m[string(key)] = struct{}{}
}

// foldUniquePaths copies the per-day unique path counts into DayStats.
func (e *macroEnv) foldUniquePaths() {
	for d, m := range e.uniquePaths {
		if ds := e.res.ByDay[d]; ds != nil {
			ds.UniquePaths = len(m)
		}
	}
}
