package core

import (
	"math"
	"time"

	"livenet/internal/client"
	"livenet/internal/workload"
)

// This file holds the cohort-aggregated macro engines (DESIGN.md §11).
// Instead of one event per viewer, the workload arrives as per-(edge,
// channel, rung) counts from a workload.CohortStream, and QoE is
// accounted three ways:
//
//   - Stream establishers (the first viewer to pull a stream to an edge)
//     are simulated exactly through the same handle*View code as the
//     per-viewer engines — the overlay state machine (Brain lookups,
//     grafting, teardown, L2 assignment) runs unmodified.
//   - A sampled tracer cohort (MacroConfig.TracerSample of cache-hit
//     viewers, drawn from the engine's seeded RNG) is also simulated
//     exactly, supplying distribution-level stats.
//   - The remaining mass of each batch enters client.Cohort by analytic
//     expectation: startup mean and P(fast start) from the closed-form
//     jitter model, stall rates from the same loss/recovery formulas
//     stallMean uses, integrated over the client-profile mixture and the
//     bounded-Pareto duration quadrature.
//
// Batch expectations are memoized per (site, stream, rung) within each
// 10-minute epoch — link loss (and thus the stall rate) only moves on
// epoch boundaries. A path that changes mid-epoch (teardown followed by
// re-establishment) reuses the epoch's expectation; the drift is bounded
// by one epoch and vanishes in the aggregates.

// clientClass mirrors macroEnv.drawClient as a mixture of uniform
// distributions, for analytic expectation instead of sampling.
type clientClass struct {
	w                float64
	rttMin, rttMax   float64
	lossMin, lossMax float64
	dipRate          float64
}

var clientClasses = []clientClass{
	{w: 0.90, rttMin: 8, rttMax: 38, lossMin: 0, lossMax: 0.004, dipRate: 0.0002},
	{w: 0.10, rttMin: 20, rttMax: 80, lossMin: 0.004, lossMax: 0.03, dipRate: 0.004},
}

// rungFactor scales the stall model's packet rate for rung r (each rung
// halves the bitrate).
func rungFactor(r int) float64 { return math.Ldexp(1, -r) }

// uniformCube is E[X³] for X ~ U(a, b) — the residual-loss term of the
// stall model is cubic in the last-mile loss rate.
func uniformCube(a, b float64) float64 {
	if b <= a {
		return a * a * a
	}
	return (b*b*b*b - a*a*a*a) / (4 * (b - a))
}

// probLE estimates P(base + Σ U(0, spanᵢ) ≤ limit) by midpoint product
// quadrature (8 points per span; runs once per engine).
func probLE(limit, base float64, spans []float64) float64 {
	if len(spans) == 0 {
		if base <= limit {
			return 1
		}
		return 0
	}
	const q = 8
	acc := 0.0
	for k := 0; k < q; k++ {
		acc += probLE(limit, base+(float64(k)+0.5)/q*spans[0], spans[1:])
	}
	return acc / q
}

// cohortStartup returns the mean startup delay (ms) and P(startup ≤ 1 s)
// of a cache-hit view — the only kind batches contain, since the
// establisher of every stream is simulated exactly. The jitter spans
// mirror handle*View's draws term by term.
func (e *macroEnv) cohortStartup(sys System) (mean, pFast float64) {
	fpMin, fpSpan := 2.0, 6.0
	constMs, fillSpan := 90.0+20.0, 130.0
	tailP, tailSpan := 0.065, 1400.0
	if sys == SystemHier {
		fpMin, fpSpan = 3.0, 8.0
		constMs, fillSpan = 110.0+20.0, 170.0
		tailP, tailSpan = 0.05, 1600.0
	}
	gopSpan := 0.0
	if sys == SystemLiveNet && e.cfg.DisableGoPCache {
		gopSpan = 2000
	}
	for _, c := range clientClasses {
		base := c.rttMin + fpMin + constMs
		spans := []float64{c.rttMax - c.rttMin, fpSpan, fillSpan}
		if gopSpan > 0 {
			spans = append(spans, gopSpan)
		}
		clsMean := base
		for _, s := range spans {
			clsMean += s / 2
		}
		clsMean += tailP * (300 + tailSpan/2)
		mean += c.w * clsMean
		pNoTail := probLE(1000, base, spans)
		pTail := probLE(1000, base+300, append(append([]float64(nil), spans...), tailSpan))
		pFast += c.w * ((1-tailP)*pNoTail + tailP*pTail)
	}
	return mean, pFast
}

// cohortStallRate is the expected stall events per viewing second for one
// client class: stallMean's formula with the last-mile draws replaced by
// their closed-form uniform moments.
func (e *macroEnv) cohortStallRate(sys System, path []int, c clientClass, t time.Duration, pktFactor float64) float64 {
	const pktRate = 130.0
	perPkt := 0.0
	for i := 0; i+1 < len(path); i++ {
		rho := e.linkLoss(path[i], path[i+1], t)
		rttMs := float64(e.world.RTT(path[i], path[i+1])) / float64(time.Millisecond)
		if sys == SystemLiveNet {
			perPkt += rho * rho * rho * (1 + rttMs/150) * 2
		} else {
			perPkt += rho * min(1, 1.5*rttMs/300) * 0.001
		}
	}
	rttMean := (c.rttMin + c.rttMax) / 2
	perPkt += uniformCube(c.lossMin, c.lossMax) * (1 + rttMean/150) * 2
	dipStall := 0.65
	if sys == SystemLiveNet {
		dipStall = 0.26
	}
	return pktRate*pktFactor*perPkt + c.dipRate*dipStall
}

// cohortBatch evaluates the analytic QoE expectations for one cohort's
// cache-hit viewers on the given serving path at time t.
func (e *macroEnv) cohortBatch(sys System, path []int, cdnMs float64, rung int, t time.Duration,
	durQ []workload.DurPoint, meanSecs, startupMean, pFast float64) client.CohortBatch {

	pf := rungFactor(rung)
	pZero, stallRate := 0.0, 0.0
	for _, c := range clientClasses {
		rate := e.cohortStallRate(sys, path, c, t, pf)
		stallRate += c.w * rate
		acc := 0.0
		for _, d := range durQ {
			acc += d.Weight * math.Exp(-rate*d.Secs)
		}
		pZero += c.w * acc
	}
	return client.CohortBatch{
		MeanViewSecs:     meanSecs,
		CDNDelayMs:       cdnMs,
		PathLen:          float64(len(path) - 1),
		StreamingMs:      740 + cdnMs, // E[fixed part] + E[cdn·(1+ε)]
		StartupMs:        startupMean,
		PZeroStall:       pZero,
		PFastStart:       pFast,
		StallsPerView:    stallRate * meanSecs,
		StallSecsPerView: stallRate * meanSecs * stallEventSecs,
	}
}

// cohMemoKey memoizes batch expectations per (site, stream, rung) within
// a routing epoch.
type cohMemoKey struct {
	site int
	sid  uint32
	rung int
}

// cohortAddBatch folds a batch into the run and day aggregates.
func (e *macroEnv) cohortAddBatch(t time.Duration, n float64, cb client.CohortBatch) {
	e.coh.AddBatch(n, cb)
	ds := e.dayStats(t)
	if ds.Cohort == nil {
		ds.Cohort = &client.Cohort{}
	}
	ds.Cohort.AddBatch(n, cb)
}

// cohortView synthesizes one exact viewing session at the given edge
// site: duration from the bounded-Pareto model, origin at the site
// itself (so the per-viewer handler resolves the same edge).
func (e *macroEnv) cohortView(site, chRank int, t time.Duration, wcfg workload.Config) workload.View {
	durSecs := e.rng.Pareto(wcfg.ViewMinSecs, wcfg.ViewAlpha)
	if durSecs > wcfg.ViewMaxSecs {
		durSecs = wcfg.ViewMaxSecs
	}
	e.curViewSecs = durSecs
	s := e.world.Sites[site]
	return workload.View{
		Start:    t,
		Duration: time.Duration(durSecs * float64(time.Second)),
		Channel:  chRank,
		Lat:      s.Lat, Lon: s.Lon, Country: s.Country,
	}
}

// cohortFinish installs the pooled aggregates into the result.
func (e *macroEnv) cohortFinish() *MacroResult {
	e.foldUniquePaths()
	res := e.res
	res.CohortQoE = e.coh
	res.TracerViews = e.coh.TracerViews
	res.Views = int(e.coh.Viewers + 0.5)
	return res
}

// runMacroLiveNetCohort is the cohort-aggregated LiveNet engine: the same
// Brain, grafting, and teardown as runMacroLiveNet, driven by counts.
func runMacroLiveNetCohort(cfg MacroConfig) *MacroResult {
	e := newMacroEnv(cfg, SystemLiveNet)
	e.coh = &client.Cohort{}
	f := newLNFabric(e)
	defer f.br.Close()
	chans := e.gen.Channels()

	wcfg := cfg.Workload.Normalized()
	meanSecs := wcfg.MeanViewSecs()
	durQ := wcfg.DurationQuadrature(12)
	startupMean, pFast := e.cohortStartup(SystemLiveNet)

	cs := workload.NewCohortStream(e.gen, workload.CohortConfig{
		Edges:     cfg.Sites,
		EdgeOf:    e.world.NearestSite,
		RungShare: cfg.RungShares,
	}, e.src.Stream("cohort"))

	memo := make(map[cohMemoKey]client.CohortBatch)
	epoch := -1
	cs.Run(e.horizon, func(b *workload.CohortBucket) {
		t := b.Start
		f.advanceTo(t)
		if ep := int(t / (10 * time.Minute)); ep != epoch {
			epoch = ep
			memo = make(map[cohMemoKey]client.CohortBatch)
		}
		for _, a := range b.Arrivals {
			site, rank, k := a.Key.Edge, a.Key.Channel, a.Count
			sid := chans[rank].StreamID
			exact := 0
			e.pktFactor = rungFactor(a.Key.Rung)
			if f.streams[site][sid] == nil {
				e.handleLiveNetView(f, e.cohortView(site, rank, t, wcfg), chans)
				exact++
			}
			if rem := k - exact; rem > 0 {
				if nTr := e.rng.Binomial(rem, cfg.TracerSample); nTr > 0 {
					for i := 0; i < nTr; i++ {
						e.handleLiveNetView(f, e.cohortView(site, rank, t, wcfg), chans)
					}
					exact += nTr
				}
			}
			e.pktFactor = 1
			if rem := k - exact; rem > 0 {
				st := f.streams[site][sid]
				st.viewers += rem
				mk := cohMemoKey{site: site, sid: sid, rung: a.Key.Rung}
				cb, ok := memo[mk]
				if !ok {
					cb = e.cohortBatch(SystemLiveNet, st.path, e.liveNetPathDelay(st.path),
						a.Key.Rung, t, durQ, meanSecs, startupMean, pFast)
					memo[mk] = cb
				}
				e.cohortAddBatch(t, float64(rem), cb)
			}
			e.active += k
		}
		if ds := e.dayStats(t); e.active > ds.PeakConcurrency {
			ds.PeakConcurrency = e.active
		}
		for _, d := range b.Departures {
			site := d.Key.Edge
			sid := chans[d.Key.Channel].StreamID
			if st := f.streams[site][sid]; st != nil {
				st.viewers -= d.Count
				f.teardown(site, sid)
			}
			e.active -= d.Count
		}
	})
	f.finish()
	return e.cohortFinish()
}

// runMacroHierCohort is the cohort-aggregated baseline engine.
func runMacroHierCohort(cfg MacroConfig) *MacroResult {
	e := newMacroEnv(cfg, SystemHier)
	e.coh = &client.Cohort{}
	f := newHierFabric(e)
	chans := e.gen.Channels()

	wcfg := cfg.Workload.Normalized()
	meanSecs := wcfg.MeanViewSecs()
	durQ := wcfg.DurationQuadrature(12)
	startupMean, pFast := e.cohortStartup(SystemHier)

	cs := workload.NewCohortStream(e.gen, workload.CohortConfig{
		Edges:     cfg.Sites,
		EdgeOf:    f.h.EdgeFor,
		RungShare: cfg.RungShares,
	}, e.src.Stream("cohort"))

	memo := make(map[cohMemoKey]client.CohortBatch)
	epoch := -1
	cs.Run(e.horizon, func(b *workload.CohortBucket) {
		t := b.Start
		f.advanceTo(t)
		if ep := int(t / (10 * time.Minute)); ep != epoch {
			epoch = ep
			memo = make(map[cohMemoKey]client.CohortBatch)
		}
		for _, a := range b.Arrivals {
			l1, rank, k := a.Key.Edge, a.Key.Channel, a.Count
			sid := chans[rank].StreamID
			exact := 0
			e.pktFactor = rungFactor(a.Key.Rung)
			if f.getDown(l1)[sid] == nil {
				e.handleHierView(f, e.cohortView(l1, rank, t, wcfg), chans)
				exact++
			}
			if rem := k - exact; rem > 0 {
				if nTr := e.rng.Binomial(rem, cfg.TracerSample); nTr > 0 {
					for i := 0; i < nTr; i++ {
						e.handleHierView(f, e.cohortView(l1, rank, t, wcfg), chans)
					}
					exact += nTr
				}
			}
			e.pktFactor = 1
			if rem := k - exact; rem > 0 {
				st := f.getDown(l1)[sid]
				st.viewers += rem
				mk := cohMemoKey{site: l1, sid: sid, rung: a.Key.Rung}
				cb, ok := memo[mk]
				if !ok {
					cdnMs := float64(f.h.PathDelay(st.path, f.lossAt(t))) / float64(time.Millisecond)
					cb = e.cohortBatch(SystemHier, st.path, cdnMs,
						a.Key.Rung, t, durQ, meanSecs, startupMean, pFast)
					memo[mk] = cb
				}
				e.cohortAddBatch(t, float64(rem), cb)
			}
			e.active += k
		}
		if ds := e.dayStats(t); e.active > ds.PeakConcurrency {
			ds.PeakConcurrency = e.active
		}
		for _, d := range b.Departures {
			f.depart(d.Key.Edge, chans[d.Key.Channel].StreamID, d.Count)
			e.active -= d.Count
		}
	})
	return e.cohortFinish()
}
