package core

import (
	"testing"
	"time"

	"livenet/internal/media"
	"livenet/internal/workload"
)

func TestClusterEndToEnd(t *testing.T) {
	c := NewCluster(ClusterConfig{Seed: 1, Sites: 10})
	defer c.Close()

	// Broadcaster in the home market.
	bc := c.NewBroadcasterAt(31.2, 121.5, 100, media.DefaultRenditions[:1])
	bc.Start()
	c.Run(2 * time.Second)

	// The producer registered the stream with the Brain.
	if p, ok := c.Brain.Producer(bc.StreamID(0)); !ok || p != bc.Producer {
		t.Fatalf("SIB producer = %d ok=%v, want %d", p, ok, bc.Producer)
	}

	// A viewer whose nearest site differs from the producer (pick a
	// location in another region so the path has at least one hop).
	viewerLat, viewerLon := 52.0, -1.0 // GB
	if c.World.NearestSite(viewerLat, viewerLon) == bc.Producer {
		t.Fatal("test setup: viewer maps to the producer site")
	}
	v := c.NewViewerAt(viewerLat, viewerLon, bc.StreamID(0))
	c.Run(8 * time.Second)

	s := v.Stats()
	if !s.Started {
		t.Fatal("viewer playback never started")
	}
	if s.FramesPlayed < 50 {
		t.Fatalf("frames played = %d", s.FramesPlayed)
	}
	if len(s.StreamingDelay) == 0 {
		t.Fatal("no streaming delay samples")
	}
	if v.LocalHit {
		t.Fatal("first viewer cannot be a local hit")
	}

	// Second viewer at the same consumer location: local hit.
	v2 := c.NewViewerAt(viewerLat, viewerLon, bc.StreamID(0))
	if !v2.LocalHit {
		t.Fatal("co-located second viewer should be a local hit")
	}
	c.Run(4 * time.Second)
	if !v2.Stats().Started {
		t.Fatal("local-hit viewer never started")
	}

	// Discovery populated the Brain's view (reports are per minute).
	c.Run(60 * time.Second)
	g := c.Brain.View()
	if g.Link(0, 1) == nil {
		t.Fatal("discovery never reported links")
	}

	// Response times were recorded.
	if c.RespTimes.N() == 0 {
		t.Fatal("no path-decision response times recorded")
	}

	c.Detach(v)
	c.Detach(v2)
	c.Run(time.Second)
}

func TestClusterDeterminism(t *testing.T) {
	run := func() (int, float64) {
		c := NewCluster(ClusterConfig{Seed: 42, Sites: 8})
		defer c.Close()
		bc := c.NewBroadcasterAt(31.2, 121.5, 100, media.DefaultRenditions[:1])
		bc.Start()
		c.Run(time.Second)
		v := c.NewViewerAt(39.9, 116.4, bc.StreamID(0))
		c.Run(5 * time.Second)
		s := v.Stats()
		return s.FramesPlayed, float64(s.StartupDelay)
	}
	f1, d1 := run()
	f2, d2 := run()
	if f1 != f2 || d1 != d2 {
		t.Fatalf("nondeterministic cluster: (%d,%v) vs (%d,%v)", f1, d1, f2, d2)
	}
}

func macroPair(t *testing.T, seed int64) (*MacroResult, *MacroResult) {
	t.Helper()
	mk := func(sys System) *MacroResult {
		cfg := MacroConfig{Seed: seed, Days: 2, Sites: 32, System: sys}
		cfg.Workload.PeakViewsPerSec = 0.5
		cfg.Workload.Channels = 80
		return RunMacro(cfg)
	}
	return mk(SystemLiveNet), mk(SystemHier)
}

func TestMacroLiveNetBeatsHier(t *testing.T) {
	ln, hr := macroPair(t, 1)
	if ln.Views == 0 || hr.Views == 0 {
		t.Fatal("no views simulated")
	}
	if ln.Views != hr.Views {
		t.Fatalf("workloads differ: %d vs %d views", ln.Views, hr.Views)
	}
	if ln.CDNDelayMs.Median() >= hr.CDNDelayMs.Median() {
		t.Fatalf("CDN delay: LiveNet %v >= Hier %v", ln.CDNDelayMs.Median(), hr.CDNDelayMs.Median())
	}
	// The headline claim: LiveNet roughly halves the CDN delay.
	if ratio := hr.CDNDelayMs.Median() / ln.CDNDelayMs.Median(); ratio < 1.6 {
		t.Fatalf("CDN delay ratio = %v, want >= 1.6 (paper: ~2.1)", ratio)
	}
	if ln.PathLen.Median() != 2 || hr.PathLen.Median() != 4 {
		t.Fatalf("path lengths: %v vs %v, want 2 vs 4", ln.PathLen.Median(), hr.PathLen.Median())
	}
	if ln.Streaming.Median() >= hr.Streaming.Median() {
		t.Fatal("streaming delay should improve")
	}
	if ln.ZeroStall.Value() <= hr.ZeroStall.Value() {
		t.Fatalf("0-stall: LiveNet %v <= Hier %v", ln.ZeroStall.Percent(), hr.ZeroStall.Percent())
	}
	if ln.FastStart.Value() <= hr.FastStart.Value() {
		t.Fatalf("fast startup: LiveNet %v <= Hier %v", ln.FastStart.Percent(), hr.FastStart.Percent())
	}
}

func TestMacroQoEInPaperBallpark(t *testing.T) {
	ln, hr := macroPair(t, 2)
	if p := ln.ZeroStall.Percent(); p < 95 || p > 99.9 {
		t.Fatalf("LiveNet 0-stall = %v%%, want ~98", p)
	}
	if p := hr.ZeroStall.Percent(); p < 92 || p > 98 {
		t.Fatalf("Hier 0-stall = %v%%, want ~95", p)
	}
	if p := ln.FastStart.Percent(); p < 91 || p > 98.5 {
		t.Fatalf("LiveNet fast startup = %v%%, want ~95", p)
	}
	if p := hr.FastStart.Percent(); p < 85 || p > 95 {
		t.Fatalf("Hier fast startup = %v%%, want ~92", p)
	}
	// 2-hop paths dominate LiveNet (paper: 92%).
	total := 0
	for _, c := range ln.LenCounts {
		total += c
	}
	if frac := float64(ln.LenCounts[2]) / float64(total); frac < 0.5 {
		t.Fatalf("2-hop fraction = %v, want dominant", frac)
	}
}

func TestMacroDeterminism(t *testing.T) {
	a, _ := macroPair(t, 3)
	b, _ := macroPair(t, 3)
	if a.Views != b.Views || a.CDNDelayMs.Median() != b.CDNDelayMs.Median() ||
		a.ZeroStall != b.ZeroStall {
		t.Fatal("macro run not deterministic")
	}
}

func TestMacroGoPCacheAblation(t *testing.T) {
	base := MacroConfig{Seed: 4, Days: 1, Sites: 24, System: SystemLiveNet}
	base.Workload.PeakViewsPerSec = 0.5
	on := RunMacro(base)
	off := base
	off.DisableGoPCache = true
	offRes := RunMacro(off)
	if offRes.FastStart.Value() >= on.FastStart.Value() {
		t.Fatalf("disabling the GoP cache should hurt startup: %v vs %v",
			offRes.FastStart.Percent(), on.FastStart.Percent())
	}
	// The drop should be substantial (startup waits for the next I frame).
	if on.FastStart.Value()-offRes.FastStart.Value() < 0.05 {
		t.Fatalf("GoP cache ablation too weak: %v -> %v",
			on.FastStart.Percent(), offRes.FastStart.Percent())
	}
}

func TestMacroPrefetchAblation(t *testing.T) {
	base := MacroConfig{Seed: 5, Days: 1, Sites: 24, System: SystemLiveNet}
	base.Workload.PeakViewsPerSec = 0.5
	on := RunMacro(base)
	off := base
	off.DisablePrefetch = true
	offRes := RunMacro(off)
	hitRate := func(r *MacroResult) float64 {
		hits, total := 0, 0
		for _, h := range r.HitByHour {
			hits += h.Hits
			total += h.Total
		}
		return float64(hits) / float64(total)
	}
	if hitRate(offRes) >= hitRate(on) {
		t.Fatalf("disabling prefetch should lower the hit ratio: %v vs %v",
			hitRate(offRes), hitRate(on))
	}
}

func TestMacroDayStatsAndConcurrency(t *testing.T) {
	cfg := MacroConfig{Seed: 6, Days: 2, Sites: 24, System: SystemLiveNet}
	cfg.Workload.PeakViewsPerSec = 0.5
	res := RunMacro(cfg)
	if len(res.ByDay) != 2 {
		t.Fatalf("ByDay has %d entries", len(res.ByDay))
	}
	for d, ds := range res.ByDay {
		if ds.CDNDelayMs.N() == 0 || ds.PeakConcurrency == 0 || ds.UniquePaths == 0 {
			t.Fatalf("day %d stats empty: %+v", d, ds)
		}
	}
}

func TestMacroFlashCrowdDoublesPeak(t *testing.T) {
	cfg := MacroConfig{Seed: 7, Days: 2, Sites: 24, System: SystemLiveNet}
	cfg.Workload.PeakViewsPerSec = 0.5
	cfg.Workload.Flash = []workload.FlashEvent{{Start: 30 * time.Hour, End: 40 * time.Hour, Multiplier: 2}}
	res := RunMacro(cfg)
	d0 := res.ByDay[0].PeakConcurrency
	d1 := res.ByDay[1].PeakConcurrency
	if float64(d1) < 1.5*float64(d0) {
		t.Fatalf("flash day peak %d not ~2x normal day %d", d1, d0)
	}
}

func TestMacroInternationalSlower(t *testing.T) {
	ln, _ := macroPair(t, 8)
	if ln.InterDelay.Median() <= ln.IntraDelay.Median() {
		t.Fatalf("international CDN delay %v should exceed intra %v",
			ln.InterDelay.Median(), ln.IntraDelay.Median())
	}
}

func TestMacroLossDiurnalUnderCap(t *testing.T) {
	ln, _ := macroPair(t, 9)
	for _, h := range ln.LossByHour.Buckets() {
		if avg := ln.LossByHour.Bucket(h).Mean(); avg > 0.175 {
			t.Fatalf("hour %d avg loss %v%% exceeds the paper's 0.175%% cap", h, avg)
		}
	}
}

func TestClusterPrefetchPopular(t *testing.T) {
	c := NewCluster(ClusterConfig{Seed: 11, Sites: 10})
	defer c.Close()
	bc := c.NewBroadcasterAt(31.2, 121.5, 100, media.DefaultRenditions[:1])
	bc.Start()
	c.Run(2 * time.Second)

	// The Brain pushes paths for the popular stream to every node.
	if err := c.PrefetchPopular(bc.StreamID(0)); err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Second) // establishment + GoP priming everywhere

	// The first viewer at a far-away consumer is now a local hit with no
	// Brain lookup from that node.
	viewerLat, viewerLon := 52.0, -1.0
	consumer := c.World.NearestSite(viewerLat, viewerLon)
	if consumer == bc.Producer {
		t.Skip("world too small: viewer maps to producer")
	}
	before := c.Nodes[consumer].Metrics().PathLookups
	v := c.NewViewerAt(viewerLat, viewerLon, bc.StreamID(0))
	if !v.LocalHit {
		t.Fatal("prefetched stream should be a local hit for the first viewer")
	}
	if got := c.Nodes[consumer].Metrics().PathLookups; got != before {
		t.Fatalf("prefetch should avoid lookups: %d -> %d", before, got)
	}
	c.Run(3 * time.Second)
	if !v.Stats().Started {
		t.Fatal("prefetched viewer never started")
	}
	if err := c.PrefetchPopular(99999); err == nil {
		t.Fatal("prefetching an unknown stream should error")
	}
}

func TestClusterBitrateLadderRegistered(t *testing.T) {
	c := NewCluster(ClusterConfig{Seed: 12, Sites: 8})
	defer c.Close()
	bc := c.NewBroadcasterAt(31.2, 121.5, 100, media.DefaultRenditions)
	if lower, ok := c.lowerRendition[bc.StreamID(0)]; !ok || lower != bc.StreamID(1) {
		t.Fatalf("720p should map down to 480p: %d %v", lower, ok)
	}
	if lower, ok := c.lowerRendition[bc.StreamID(1)]; !ok || lower != bc.StreamID(2) {
		t.Fatalf("480p should map down to 360p: %d %v", lower, ok)
	}
	if _, ok := c.lowerRendition[bc.StreamID(2)]; ok {
		t.Fatal("the lowest rendition must not map further down")
	}
}

func TestMacroSparseOverlay(t *testing.T) {
	mk := func() *MacroResult {
		cfg := MacroConfig{Seed: 6, Days: 1, Sites: 24, System: SystemLiveNet, MaxPeers: 6}
		cfg.Workload.PeakViewsPerSec = 0.5
		cfg.Workload.Channels = 60
		return RunMacro(cfg)
	}
	r := mk()
	if r.Views == 0 {
		t.Fatal("no views simulated")
	}
	if r.CDNDelayMs.Median() <= 0 {
		t.Fatalf("CDN delay median = %v", r.CDNDelayMs.Median())
	}
	if r.BrainMetrics.Lookups == 0 {
		t.Fatal("brain never consulted")
	}
	b := mk()
	if r.Views != b.Views || r.CDNDelayMs.Median() != b.CDNDelayMs.Median() ||
		r.ZeroStall != b.ZeroStall || r.BrainMetrics != b.BrainMetrics {
		t.Fatal("sparse macro run not deterministic")
	}
}

func TestClusterSparseOverlay(t *testing.T) {
	c := NewCluster(ClusterConfig{Seed: 1, Sites: 10, MaxPeers: 3})
	defer c.Close()

	bc := c.NewBroadcasterAt(31.2, 121.5, 100, media.DefaultRenditions[:1])
	bc.Start()
	c.Run(2 * time.Second)
	v := c.NewViewerAt(52.0, -1.0, bc.StreamID(0))
	c.Run(8 * time.Second)
	if s := v.Stats(); !s.Started || s.FramesPlayed < 50 {
		t.Fatalf("sparse-overlay viewer: started=%v frames=%d", s.Started, s.FramesPlayed)
	}

	// Discovery must only ever report the sparse link set, which is well
	// below the 90-link full mesh.
	c.Run(90 * time.Second)
	links := 0
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if i != j && c.Brain.View().Link(i, j) != nil {
				links++
			}
		}
	}
	want := 0
	for i := 0; i < 10; i++ {
		want += len(c.overlayRows[i])
	}
	if links == 0 || links > want {
		t.Fatalf("reported links = %d, want in (0, %d]", links, want)
	}
	if want >= 90 {
		t.Fatalf("overlay not sparse: %d links", want)
	}
}
