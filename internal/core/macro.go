package core

import (
	"fmt"
	"math"
	"time"

	"livenet/internal/brain"
	"livenet/internal/client"
	"livenet/internal/geo"
	"livenet/internal/sim"
	"livenet/internal/stats"
	"livenet/internal/workload"
)

// System selects which transport network a macro run evaluates.
type System string

// Systems under evaluation.
const (
	SystemLiveNet System = "LiveNet"
	SystemHier    System = "Hier"
)

// MacroConfig parameterizes a session-level evaluation run.
type MacroConfig struct {
	Seed   int64
	Days   int
	Sites  int
	System System
	// Workload overrides; zero values take defaults.
	Workload workload.Config

	// Ablation toggles (all default off = paper configuration).
	DisableGoPCache    bool // startup cannot be served from cached GoPs
	DisablePrefetch    bool // no proactive paths for popular channels
	DisableLastResort  bool
	DisableLoadWeights bool // report zero utilization: pure-RTT routing
	KPaths             int  // overrides k=3 when > 0

	// Calibration constants (defaults reflect DESIGN.md §4; exposed for
	// sensitivity ablations).
	LiveNetHopProc time.Duration // per-hop processing, fast path
	StreamBitrate  float64       // average per-view bitrate (bps)

	// MaxPeers > 0 replaces the full-mesh overlay with a sparse one: each
	// site keeps links to its MaxPeers nearest peers by RTT plus every IXP
	// site (symmetrized). 0 keeps the full mesh. This is what makes
	// paper-scale site counts tractable — Global Discovery reports and
	// Global Routing then scale with N·degree instead of N².
	MaxPeers int

	// Regions > 0 replaces the monolithic Streaming Brain with a federated
	// one (internal/brainfed): per-region shards each run Global Routing
	// over their own nodes' reports and cross-region paths are stitched at
	// region gateways. 0 keeps the single Brain. Only meaningful for
	// SystemLiveNet.
	Regions int

	// CohortViewers switches the engines to cohort aggregation (DESIGN.md
	// §11): viewers collapse into per-(edge, channel, rung) counts and QoE
	// is accounted analytically per cohort, with a sampled tracer cohort
	// simulated exactly. Cost becomes O(edges × channels) per bucket,
	// independent of the viewer count.
	CohortViewers bool
	// Viewers targets a peak concurrent-viewer count: it derives the
	// workload arrival rate by Little's law (if PeakViewsPerSec is unset)
	// and implies CohortViewers.
	Viewers int
	// TracerSample is the per-view probability of exact simulation under
	// CohortViewers (default 0.2%); tracers supply the distribution-level
	// stats the weighted aggregates cannot.
	TracerSample float64
	// Hours > 0 shortens the horizon to a sub-day run (cohort-scale runs
	// rarely need the full 20 days).
	Hours int
	// RungShares splits cohort viewers across bitrate rungs (rung r plays
	// at 2^-r of the top bitrate). Empty means everyone on rung 0.
	// Cohort engines only.
	RungShares []float64
}

func (c MacroConfig) withDefaults() MacroConfig {
	if c.Days <= 0 {
		c.Days = 20
	}
	if c.Sites <= 0 {
		c.Sites = 48
	}
	if c.System == "" {
		c.System = SystemLiveNet
	}
	if c.LiveNetHopProc <= 0 {
		// Userspace forwarding + pacer dwell per hop; measured in the
		// packet-level cluster at 10–25 ms under load.
		c.LiveNetHopProc = 18 * time.Millisecond
	}
	if c.StreamBitrate <= 0 {
		c.StreamBitrate = 1.5e6
	}
	if c.Viewers > 0 {
		c.CohortViewers = true
		if c.Workload.PeakViewsPerSec <= 0 {
			c.Workload.PeakViewsPerSec = c.Workload.PeakViewsFor(c.Viewers)
		}
	}
	if c.CohortViewers && c.TracerSample <= 0 {
		c.TracerSample = 0.002
	}
	if c.Workload.PeakViewsPerSec <= 0 {
		c.Workload.PeakViewsPerSec = 2
	}
	return c
}

// DayStats aggregates one day's session metrics.
type DayStats struct {
	CDNDelayMs *stats.Sample
	PathLen    *stats.Sample
	Streaming  *stats.Sample
	ZeroStall  stats.Ratio
	FastStart  stats.Ratio
	// PeakConcurrency is the day's max simultaneous views.
	PeakConcurrency int
	// UniquePaths counts distinct overlay paths used this day.
	UniquePaths int
	// Cohort holds the day's pooled QoE aggregates (cohort engines only).
	Cohort *client.Cohort
}

func newDayStats() *DayStats {
	return &DayStats{CDNDelayMs: &stats.Sample{}, PathLen: &stats.Sample{}, Streaming: &stats.Sample{}}
}

// MacroResult aggregates a full run; the eval package renders the paper's
// tables and figures from it.
type MacroResult struct {
	System System
	Views  int

	CDNDelayMs *stats.Sample // per view, ms
	PathLen    *stats.Sample
	Streaming  *stats.Sample // per view median streaming delay, ms

	StallCounts map[int]int // stalls -> number of views
	ZeroStall   stats.Ratio
	FastStart   stats.Ratio

	ByDay map[int]*DayStats

	DelayByLen map[int]*stats.Sample // path length -> CDN delay
	LenCounts  map[int]int
	LenIntra   map[int]int
	LenInter   map[int]int
	IntraDelay *stats.Sample
	InterDelay *stats.Sample

	// RespByHour: Path Decision response time by hour of day (LiveNet).
	RespByHour *stats.TimeSeries
	// HitByHour: local path hit ratio by hour-of-run (first 7 days give
	// Figure 10(b)'s week view).
	HitByHour map[int]*stats.Ratio
	// FirstPktByHour: first-packet delay (ms) by hour-of-run.
	FirstPktByHour *stats.TimeSeries
	// LossByHour: average link loss %% by hour of day (Figure 13).
	LossByHour *stats.TimeSeries
	// StartupByDelay: fast-startup ratio bucketed by streaming delay
	// (Figure 9 buckets).
	StartupByDelay map[string]*stats.Ratio
	LastResort     stats.Ratio
	LongChains     int // views whose actual path exceeded the requested length

	BrainMetrics brain.Metrics
	// GlobalView is the Brain's end-of-run fleet-health aggregate
	// (LiveNet engine only; zero value for the CDN baseline).
	GlobalView brain.GlobalView

	// CohortQoE holds the run's pooled QoE aggregates over all represented
	// viewers (cohort engines only; nil on per-viewer runs). When set,
	// Views counts represented viewers and the Sample fields above hold
	// only the exactly-simulated tracer cohort.
	CohortQoE *client.Cohort
	// TracerViews is the number of exactly-simulated views folded into
	// CohortQoE (stream establishers plus sampled tracers).
	TracerViews int
}

func newMacroResult(sys System) *MacroResult {
	return &MacroResult{
		System:         sys,
		CDNDelayMs:     &stats.Sample{},
		PathLen:        &stats.Sample{},
		Streaming:      &stats.Sample{},
		StallCounts:    make(map[int]int),
		ByDay:          make(map[int]*DayStats),
		DelayByLen:     make(map[int]*stats.Sample),
		LenCounts:      make(map[int]int),
		LenIntra:       make(map[int]int),
		LenInter:       make(map[int]int),
		IntraDelay:     &stats.Sample{},
		InterDelay:     &stats.Sample{},
		RespByHour:     stats.NewTimeSeries(),
		HitByHour:      make(map[int]*stats.Ratio),
		FirstPktByHour: stats.NewTimeSeries(),
		LossByHour:     stats.NewTimeSeries(),
		StartupByDelay: make(map[string]*stats.Ratio),
		LastResort:     stats.Ratio{},
	}
}

// Figure 9's streaming-delay buckets.
var delayBuckets = []struct {
	hi    float64 // ms, exclusive
	label string
}{
	{500, "(0,500]"},
	{700, "(500,700]"},
	{1000, "(700,1000]"},
	{1500, "(1000,1500]"},
	{1e18, "(1500,inf]"},
}

func bucketLabel(ms float64) string {
	for _, b := range delayBuckets {
		if ms <= b.hi {
			return b.label
		}
	}
	return delayBuckets[len(delayBuckets)-1].label
}

// departure is a scheduled view end.
type departure struct {
	at   time.Duration
	site int
	sid  uint32
}

type depHeap []departure

func (h depHeap) Len() int           { return len(h) }
func (h depHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h depHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *depHeap) Push(x any)        { *h = append(*h, x.(departure)) }
func (h *depHeap) Pop() any          { old := *h; n := len(old); d := old[n-1]; *h = old[:n-1]; return d }

// Fingerprint returns a canonical string identity for the run this
// config describes: two configs with equal fingerprints produce
// bit-identical MacroResults (runs are deterministic in the config), so
// the eval session memoizes RunMacro by this key.
func (c MacroConfig) Fingerprint() string {
	return fmt.Sprintf("%+v", c.withDefaults())
}

// RunMacro executes a session-level evaluation run.
func RunMacro(cfg MacroConfig) *MacroResult {
	cfg = cfg.withDefaults()
	switch cfg.System {
	case SystemLiveNet:
		if cfg.CohortViewers {
			return runMacroLiveNetCohort(cfg)
		}
		return runMacroLiveNet(cfg)
	case SystemHier:
		if cfg.CohortViewers {
			return runMacroHierCohort(cfg)
		}
		return runMacroHier(cfg)
	}
	panic(fmt.Sprintf("core: unknown system %q", cfg.System))
}

// --- shared environment ---

type macroEnv struct {
	cfg   MacroConfig
	src   *sim.Source
	rng   *sim.Rand
	world *geo.World
	gen   *workload.Generator
	res   *MacroResult

	chProducer []int // channel rank -> producer site
	active     int
	deps       depHeap
	horizon    time.Duration

	uniquePaths map[int]map[string]struct{} // day -> distinct paths

	// Cohort-engine state: when coh is non-nil, recordView also folds
	// each exactly-simulated view into the pooled aggregates, tagged with
	// the duration (curViewSecs) the engine drew for it. pktFactor scales
	// the stall model's packet rate for reduced-bitrate rungs (always 1
	// on per-viewer runs).
	coh         *client.Cohort
	curViewSecs float64
	pktFactor   float64
}

func newMacroEnv(cfg MacroConfig, sys System) *macroEnv {
	src := sim.NewSource(cfg.Seed)
	gcfg := geo.DefaultConfig()
	gcfg.NumSites = cfg.Sites
	world := geo.Build(gcfg, src.Stream("geo"))
	gen := workload.NewGenerator(cfg.Workload, src.Stream("workload"))
	horizon := time.Duration(cfg.Days) * 24 * time.Hour
	if cfg.Hours > 0 {
		horizon = time.Duration(cfg.Hours) * time.Hour
	}
	e := &macroEnv{
		cfg:       cfg,
		src:       src,
		rng:       src.Stream("macro"),
		world:     world,
		gen:       gen,
		res:       newMacroResult(sys),
		horizon:   horizon,
		pktFactor: 1,
	}
	for _, ch := range gen.Channels() {
		e.chProducer = append(e.chProducer, world.NearestSite(ch.Lat, ch.Lon))
	}
	return e
}

// linkLoss is the diurnal per-link loss rate (Figure 13's pattern).
func (e *macroEnv) linkLoss(a, b int, t time.Duration) float64 {
	base := e.world.BaseLoss(a, b)
	mid := (e.world.Sites[a].Lon + e.world.Sites[b].Lon) / 2
	return base * (0.4 + 1.8*geo.DiurnalFactor(geo.LocalHour(t, mid)))
}

func (e *macroEnv) day(t time.Duration) int       { return workload.Day(t) }
func (e *macroEnv) hourOfRun(t time.Duration) int { return int(t / time.Hour) }

func (e *macroEnv) dayStats(t time.Duration) *DayStats {
	d := e.day(t)
	ds := e.res.ByDay[d]
	if ds == nil {
		ds = newDayStats()
		e.res.ByDay[d] = ds
	}
	return ds
}

// clientProfile models last-mile quality: most viewers are on good
// access, a tail is on mobile networks with loss and bandwidth dips
// (§5.2 motivates proactive frame dropping with exactly this tail).
type clientProfile struct {
	rttMs   float64
	loss    float64
	dipRate float64 // bandwidth dips per second
}

func (e *macroEnv) drawClient() clientProfile {
	if e.rng.Bernoulli(0.10) { // mobile
		return clientProfile{
			rttMs:   20 + e.rng.Float64()*60,
			loss:    0.004 + e.rng.Float64()*0.026,
			dipRate: 0.004,
		}
	}
	return clientProfile{
		rttMs:   8 + e.rng.Float64()*30,
		loss:    e.rng.Float64() * 0.004,
		dipRate: 0.0002,
	}
}

// stallsFor samples a view's stall count from the loss/recovery model:
//
//   - CDN path contribution: per-packet residual loss after recovery.
//     LiveNet recovers per hop within ~NACK interval + hop RTT, so the
//     residual is quadratic in hop loss (a retransmission must also be
//     lost) scaled by how much of the play buffer the recovery consumes.
//     Hier (RTMP over TCP) turns every loss into a head-of-line stall of
//     ~1.5 RTT, which drains the buffer on long-RTT hops.
//   - Last-mile contribution: loss recovered from the edge (both
//     systems), residual quadratic.
//   - Bandwidth dips: LiveNet's consumer-side frame dropping and bitrate
//     down-switch absorb most dips; Hier clients stall.
func (e *macroEnv) stallsFor(sys System, dur time.Duration, path []int, cp clientProfile, t time.Duration) int {
	return e.poisson(e.stallMean(sys, dur.Seconds(), path, cp, t))
}

// stallMean is the expected stall count stallsFor samples around; the
// cohort engines use it directly as the batch expectation. e.pktFactor
// scales the packet rate for reduced-bitrate rungs (1 on per-viewer runs).
func (e *macroEnv) stallMean(sys System, secs float64, path []int, cp clientProfile, t time.Duration) float64 {
	const pktRate = 130.0 // packets/s at ~1.5 Mbps
	perPkt := 0.0
	for i := 0; i+1 < len(path); i++ {
		rho := e.linkLoss(path[i], path[i+1], t)
		rttMs := float64(e.world.RTT(path[i], path[i+1])) / float64(time.Millisecond)
		if sys == SystemLiveNet {
			// Per-hop NACK recovery retries within the play buffer: the
			// residual is ~cubic in hop loss (2–3 recovery rounds fit in
			// 300 ms), scaled up on long-RTT hops where fewer rounds fit.
			perPkt += rho * rho * rho * (1 + rttMs/150) * 2
		} else {
			// RTMP/TCP: every loss head-of-line-blocks the hop for
			// ~1.5 RTT; long-RTT hops drain the 300 ms buffer.
			perPkt += rho * min(1, 1.5*rttMs/300) * 0.001
		}
	}
	// Last mile: NACK from the consumer (LiveNet) / TCP from the edge
	// (Hier); 2–3 recovery rounds fit the buffer on typical access RTTs.
	perPkt += cp.loss * cp.loss * cp.loss * (1 + cp.rttMs/150) * 2
	// Bandwidth dips: LiveNet's consumer-side frame dropping and bitrate
	// down-switch absorb most; Hier clients rebuffer.
	dipStall := 0.65
	if sys == SystemLiveNet {
		dipStall = 0.26
	}
	return secs*pktRate*e.pktFactor*perPkt + secs*cp.dipRate*dipStall
}

func (e *macroEnv) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Small means dominate here; Knuth in log space avoids underflow.
	l := -mean
	k, logp := 0, 0.0
	for {
		u := e.rng.Float64()
		for u == 0 {
			u = e.rng.Float64()
		}
		logp += math.Log(u)
		if logp <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// recordView folds one completed view decision into the aggregates.
func (e *macroEnv) recordView(t time.Duration, path []int, cdnMs float64, firstPktMs float64,
	localHit bool, intl bool, stalls int, startupMs float64, lastResort bool, longChain bool) {
	res := e.res
	res.Views++
	pathLen := len(path) - 1
	res.CDNDelayMs.Add(cdnMs)
	res.PathLen.Add(float64(pathLen))

	// Streaming delay: encode + first/last-mile edge transmission
	// (~300 ms total per §6.2) + player buffer (300 ms) + decode, plus
	// the CDN path delay. The fixed part varies per view (encoder
	// settings, buffer occupancy at sampling time, device decode speed),
	// which is what spreads the paper's Figure 8(a) CDF below 500 ms.
	fixed := 740 + e.rng.Normal(0, 120)
	if fixed < 340 {
		fixed = 340
	}
	streaming := fixed + cdnMs*(1+e.rng.Normal(0, 0.03))
	if streaming < cdnMs {
		streaming = cdnMs
	}
	res.Streaming.Add(streaming)

	res.StallCounts[clampStalls(stalls)]++
	res.ZeroStall.Observe(stalls == 0)
	fast := startupMs <= 1000
	res.FastStart.Observe(fast)

	ds := e.dayStats(t)
	ds.CDNDelayMs.Add(cdnMs)
	ds.PathLen.Add(float64(pathLen))
	ds.Streaming.Add(streaming)
	ds.ZeroStall.Observe(stalls == 0)
	ds.FastStart.Observe(fast)

	s := res.DelayByLen[pathLen]
	if s == nil {
		s = &stats.Sample{}
		res.DelayByLen[pathLen] = s
	}
	s.Add(cdnMs)
	res.LenCounts[pathLen]++
	if intl {
		res.LenInter[pathLen]++
		res.InterDelay.Add(cdnMs)
	} else {
		res.LenIntra[pathLen]++
		res.IntraDelay.Add(cdnMs)
	}

	hr := e.hourOfRun(t)
	hit := res.HitByHour[hr]
	if hit == nil {
		hit = &stats.Ratio{}
		res.HitByHour[hr] = hit
	}
	hit.Observe(localHit)
	res.FirstPktByHour.Add(hr, firstPktMs)

	b := res.StartupByDelay[bucketLabel(streaming)]
	if b == nil {
		b = &stats.Ratio{}
		res.StartupByDelay[bucketLabel(streaming)] = b
	}
	b.Observe(fast)
	res.LastResort.Observe(lastResort)
	if longChain {
		res.LongChains++
	}

	// Cohort engines fold every exactly-simulated view (establishers and
	// tracers) into the pooled aggregates too, so the weighted totals
	// cover all represented viewers.
	if e.coh != nil {
		stallSecs := float64(stalls) * stallEventSecs
		e.coh.AddViewer(e.curViewSecs, cdnMs, float64(pathLen), streaming, startupMs, stalls, stallSecs)
		if ds.Cohort == nil {
			ds.Cohort = &client.Cohort{}
		}
		ds.Cohort.AddViewer(e.curViewSecs, cdnMs, float64(pathLen), streaming, startupMs, stalls, stallSecs)
	}
}

// stallEventSecs is the modeled rebuffer length of one stall event: the
// playback timeline shifts by roughly half the 300 ms buffer plus the
// lateness that triggered the stall (client.Viewer's rebuffer allowance).
const stallEventSecs = 0.6

func clampStalls(s int) int {
	if s > 5 {
		return 5
	}
	return s
}

// sampleLossByHour records Figure 13's hourly average link loss.
func (e *macroEnv) sampleLossByHour(t time.Duration) {
	hour := workload.Hour(t)
	n := len(e.world.Sites)
	// Sample a subset of links for speed; deterministic stride.
	total, count := 0.0, 0
	for i := 0; i < n; i += 3 {
		for j := 1; j < n; j += 5 {
			if i == j {
				continue
			}
			total += e.linkLoss(i, j, t)
			count++
		}
	}
	if count > 0 {
		e.res.LossByHour.Add(hour, total/float64(count)*100)
	}
}
