package telemetry

import (
	"math"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {math.MaxInt64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's values must be <= its upper bound, and above the
	// previous bucket's bound.
	for i := 1; i < histBuckets-1; i++ {
		up := BucketUpper(i)
		if bucketIndex(up) != i {
			t.Errorf("upper bound %d of bucket %d maps to bucket %d", up, i, bucketIndex(up))
		}
		if bucketIndex(up+1) != i+1 {
			t.Errorf("value %d should spill into bucket %d, got %d", up+1, i+1, bucketIndex(up+1))
		}
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 1000 || s.Sum != 500500 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	if m := s.Mean(); m != 500.5 {
		t.Fatalf("mean = %v", m)
	}
	// The true p50 is 500; the bucket answer must be the enclosing
	// power-of-two bound, 511.
	if q := s.Quantile(0.5); q != 511 {
		t.Fatalf("p50 = %d, want 511", q)
	}
	if q := s.Quantile(1.0); q != 1023 {
		t.Fatalf("p100 = %d, want 1023", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for _, v := range []int64{1, 5, 100} {
		a.Observe(v)
	}
	for _, v := range []int64{3, 5000} {
		b.Observe(v)
	}
	sa, sb := a.snapshot(), b.snapshot()
	sa.merge(sb)
	if sa.Count != 5 || sa.Sum != 1+5+100+3+5000 {
		t.Fatalf("merged count=%d sum=%d", sa.Count, sa.Sum)
	}
	var total uint64
	for _, n := range sa.Buckets {
		total += n
	}
	if total != 5 {
		t.Fatalf("bucket total = %d", total)
	}
}

func TestSnapshotDiffAndDeterminism(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(10)
	r.Counter("a.count").Add(3)
	r.Gauge("m.gauge").Set(0.5)
	r.Histogram("z.hist").Observe(42)

	before := r.Snapshot()
	r.Counter("a.count").Add(4)
	r.Gauge("m.gauge").Set(0.9)
	r.Histogram("z.hist").Observe(7)
	after := r.Snapshot()

	d := after.Diff(before)
	if d.Counters["a.count"] != 4 || d.Counters["b.count"] != 0 {
		t.Fatalf("diff counters: %+v", d.Counters)
	}
	if d.Gauges["m.gauge"] != 0.9 {
		t.Fatalf("diff gauge: %v", d.Gauges["m.gauge"])
	}
	if h := d.Histograms["z.hist"]; h.Count != 1 || h.Sum != 7 {
		t.Fatalf("diff hist: %+v", h)
	}

	// Rendering and Names are sorted, so repeated calls are byte-identical.
	if after.String() != after.String() {
		t.Fatal("snapshot String not deterministic")
	}
	names := after.Names()
	want := []string{"a.count", "b.count", "m.gauge", "z.hist"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	regNames := r.Names()
	for i := range want {
		if regNames[i] != want[i] {
			t.Fatalf("registry names = %v, want %v", regNames, want)
		}
	}
}

func TestSnapshotMergeAcrossRegistries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("pkts").Add(5)
	a.Gauge("load").Set(0.2)
	b.Counter("pkts").Add(7)
	b.Counter("only.b").Inc()
	b.Gauge("load").Set(0.8)

	fleet := a.Snapshot()
	fleet.Merge(b.Snapshot())
	if fleet.Counters["pkts"] != 12 || fleet.Counters["only.b"] != 1 {
		t.Fatalf("merged counters: %+v", fleet.Counters)
	}
	if fleet.Gauges["load"] != 0.8 { // max wins
		t.Fatalf("merged gauge: %v", fleet.Gauges["load"])
	}
}

func TestNilRegistryIsSafeAndFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	c.Inc()
	g.Set(1)
	h.Observe(5)
	if c.Load() != 1 || g.Load() != 1 {
		t.Fatal("unregistered instruments must still work")
	}
	if !r.Snapshot().Empty() || r.Names() != nil {
		t.Fatal("nil registry must snapshot empty")
	}
	// The hot-path operations on an instrument must not allocate.
	if n := testing.AllocsPerRun(100, func() { c.Inc(); h.Observe(3) }); n != 0 {
		t.Fatalf("instrument ops allocate: %v allocs/op", n)
	}
}
