package telemetry

import (
	"strings"
	"testing"
	"time"

	"livenet/internal/sim"
)

// buildJourney drives one packet through producer 0 -> relay 3 -> consumer 2
// -> client 70000, with one lost transmission on the 3->2 hop repaired by a
// retransmit 50 ms later.
func buildJourney(t *Tracer, loop *sim.Loop) {
	at := func(d time.Duration, fn func()) { loop.AfterFunc(d, fn) }
	at(0, func() { t.Begin(100, 7, 0) })
	at(2*time.Millisecond, func() { t.Send(100, 7, 0, 3, false) })
	at(17*time.Millisecond, func() { t.Recv(100, 7, 3) })
	at(19*time.Millisecond, func() { t.Send(100, 7, 3, 2, false) }) // lost
	at(69*time.Millisecond, func() { t.Send(100, 7, 3, 2, true) }) // NACK repair
	at(84*time.Millisecond, func() { t.Recv(100, 7, 2) })
	at(86*time.Millisecond, func() { t.Send(100, 7, 2, 70000, false) })
	loop.RunUntil(100 * time.Millisecond)
}

func TestJourneyRenderGolden(t *testing.T) {
	loop := sim.NewLoop(1)
	tr := NewTracer(loop, loop.RNG("telemetry"), 1.0, 4)
	tr.ClientBase = 1 << 16
	buildJourney(tr, loop)

	const want = `1 sampled journeys

journey sid=100 seq=7  ingress node 0 at t=0s
      +0.000ms  node 0      recv   (overlay ingress)
      +2.000ms  node 0      send > node 3      (queued 2.000ms)
     +17.000ms  node 3      recv   (network 15.000ms)
     +19.000ms  node 3      send > node 2      (queued 2.000ms)
     +69.000ms  node 3      send > node 2       [rtx]
     +84.000ms  node 2      recv   (network 15.000ms, rtx wait 50.000ms)
     +86.000ms  node 2      send > client 70000 (queued 2.000ms)
  e2e 86.000ms = queueing 6.000ms + network 30.000ms + retransmit 50.000ms
`
	got := tr.Render(0)
	if got != want {
		t.Fatalf("render mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Rendering is a pure function of the recorded events.
	if tr.Render(0) != got {
		t.Fatal("render not deterministic")
	}
}

func TestTracerSamplingDeterministic(t *testing.T) {
	run := func() string {
		loop := sim.NewLoop(99)
		tr := NewTracer(loop, loop.RNG("telemetry"), 0.3, 8)
		for seq := 0; seq < 64; seq++ {
			tr.Begin(1, uint16(seq), 0)
		}
		var b strings.Builder
		for _, j := range tr.Journeys() {
			b.WriteString(j.String())
		}
		return b.String()
	}
	if run() != run() {
		t.Fatal("sampling not deterministic for a fixed seed")
	}
}

func TestTracerRespectsBudgetAndDedup(t *testing.T) {
	loop := sim.NewLoop(1)
	tr := NewTracer(loop, loop.RNG("telemetry"), 1.0, 2)
	tr.Begin(1, 1, 0)
	tr.Begin(1, 1, 0) // duplicate ignored
	tr.Begin(1, 2, 0)
	tr.Begin(1, 3, 0) // over budget
	if n := len(tr.Journeys()); n != 2 {
		t.Fatalf("journeys = %d, want 2", n)
	}
	if tr.Traced(1, 3) {
		t.Fatal("over-budget packet must not be traced")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Begin(1, 1, 0)
	tr.Recv(1, 1, 0)
	tr.Send(1, 1, 0, 1, false)
	if tr.Traced(1, 1) || tr.Journeys() != nil {
		t.Fatal("nil tracer must be inert")
	}
	if !strings.Contains(tr.Render(0), "disabled") {
		t.Fatal("nil tracer render")
	}
}
