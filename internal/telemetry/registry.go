// Package telemetry is the repo's observability layer: a unified metrics
// registry (counters, gauges, log-bucket histograms) shared by the overlay
// node, the clients, the Streaming Brain, and the network emulator, plus a
// sampled per-packet tracer that renders hop-by-hop latency waterfalls.
//
// Two properties shape every API in this package:
//
//   - Zero cost when disabled. All instrument constructors are nil-receiver
//     safe: calling Counter/Gauge/Histogram on a nil *Registry returns a
//     working unregistered instrument, so instrumented code carries no
//     branches and no nil checks on the hot path. Instruments themselves are
//     single atomic words (the histogram a fixed array of them) — no maps,
//     no allocation, no locks per operation.
//
//   - Determinism. Snapshots iterate in sorted name order, the tracer
//     samples from a dedicated seeded RNG stream, and rendering is a pure
//     function of the recorded events — so enabling telemetry never
//     perturbs a simulation and replays stay byte-identical.
//
// See OBSERVABILITY.md for the metric catalogue and the journey format.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"livenet/internal/stats"
)

// Counter is a monotonically increasing uint64. The zero value is a valid,
// unregistered counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a last-write-wins float64. The zero value is a valid,
// unregistered gauge.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the last stored value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the fixed bucket count of every Histogram: bucket i counts
// observations v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i, except
// bucket 0 (v <= 0) and the last bucket (everything larger). Power-of-two
// log-scale buckets keep Observe a shift-free bits.Len64 + one atomic add.
const histBuckets = 40

// Histogram is a fixed log-scale (power-of-two bucket) histogram of int64
// observations. The zero value is a valid, unregistered histogram.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v)) // 1..64
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// BucketUpper returns the inclusive upper bound of bucket i
// (math.MaxInt64 for the overflow bucket).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return 1<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   uint64
	Sum     int64
	Buckets [histBuckets]uint64
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// (0 < q <= 1). The answer is exact to within one power of two.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			return BucketUpper(i)
		}
	}
	return BucketUpper(histBuckets - 1)
}

// Mean returns the exact arithmetic mean of all observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// merge adds o's observations into s.
func (s *HistogramSnapshot) merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// diff subtracts prev (an earlier snapshot of the same histogram) from s.
func (s *HistogramSnapshot) diff(prev HistogramSnapshot) {
	s.Count -= prev.Count
	s.Sum -= prev.Sum
	for i := range s.Buckets {
		s.Buckets[i] -= prev.Buckets[i]
	}
}

// Registry names and owns a set of instruments. A nil *Registry is the
// "telemetry disabled" state: every accessor still returns a working
// instrument, it just isn't registered anywhere and costs nothing to keep.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// On a nil registry it returns a fresh unregistered counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
// On a nil registry it returns a fresh unregistered gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// On a nil registry it returns a fresh unregistered histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return new(Histogram)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Names returns every registered instrument name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot captures the current value of every registered instrument.
// A nil registry snapshots to the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Load()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = h.snapshot()
		}
	}
	return s
}

// Snapshot is a point-in-time copy of a registry: plain maps, safe to keep,
// merge across nodes, or diff against an earlier snapshot of the same
// registry. All iteration in String/Names is in sorted name order.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Empty reports whether the snapshot holds no instruments at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Names returns every instrument name in the snapshot, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Diff returns s minus prev: counter and histogram deltas since prev was
// taken, gauges at their current (s) value. prev must be an earlier
// snapshot of the same registry.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{}
	if len(s.Counters) > 0 {
		d.Counters = make(map[string]uint64, len(s.Counters))
		for n, v := range s.Counters {
			d.Counters[n] = v - prev.Counters[n]
		}
	}
	if len(s.Gauges) > 0 {
		d.Gauges = make(map[string]float64, len(s.Gauges))
		for n, v := range s.Gauges {
			d.Gauges[n] = v
		}
	}
	if len(s.Histograms) > 0 {
		d.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for n, h := range s.Histograms {
			h.diff(prev.Histograms[n])
			d.Histograms[n] = h
		}
	}
	return d
}

// Merge folds o into s, summing counters and histograms and taking the max
// of gauges (fleet aggregation: "worst reported value"). Instruments only
// present in o are added to s.
func (s *Snapshot) Merge(o Snapshot) {
	if len(o.Counters) > 0 && s.Counters == nil {
		s.Counters = make(map[string]uint64, len(o.Counters))
	}
	for n, v := range o.Counters {
		s.Counters[n] += v
	}
	if len(o.Gauges) > 0 && s.Gauges == nil {
		s.Gauges = make(map[string]float64, len(o.Gauges))
	}
	for n, v := range o.Gauges {
		if cur, ok := s.Gauges[n]; !ok || v > cur {
			s.Gauges[n] = v
		}
	}
	if len(o.Histograms) > 0 && s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot, len(o.Histograms))
	}
	for n, h := range o.Histograms {
		cur := s.Histograms[n]
		cur.merge(h)
		s.Histograms[n] = cur
	}
}

// String renders the snapshot as a sorted three-column text table.
func (s Snapshot) String() string {
	t := &stats.Table{Header: []string{"metric", "type", "value"}}
	for _, n := range s.Names() {
		switch {
		case s.Counters != nil && contains(s.Counters, n):
			t.AddRow(n, "counter", fmt.Sprintf("%d", s.Counters[n]))
		case s.Gauges != nil && containsF(s.Gauges, n):
			t.AddRow(n, "gauge", fmt.Sprintf("%.3f", s.Gauges[n]))
		default:
			h := s.Histograms[n]
			t.AddRow(n, "histogram", fmt.Sprintf("n=%d mean=%.1f p50<=%d p99<=%d",
				h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99)))
		}
	}
	return t.String()
}

func contains(m map[string]uint64, k string) bool  { _, ok := m[k]; return ok }
func containsF(m map[string]float64, k string) bool { _, ok := m[k]; return ok }
