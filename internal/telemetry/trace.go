package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"livenet/internal/sim"
)

// EventKind classifies one step of a packet journey.
type EventKind uint8

const (
	// EventRecv is a packet arriving at a node (ingress from the
	// broadcaster, or delivery over an overlay/last-mile link).
	EventRecv EventKind = iota
	// EventSend is the pacer handing the packet to the network toward a
	// peer (first transmission or a NACK-triggered retransmit).
	EventSend
)

// String names the event kind for rendering.
func (k EventKind) String() string {
	if k == EventRecv {
		return "recv"
	}
	return "send"
}

// Event is one timestamped step of a journey, recorded on the sim clock.
type Event struct {
	Kind EventKind
	Node int           // node where the event happened
	Peer int           // EventSend: destination; EventRecv: -1
	At   time.Duration // sim-clock timestamp
	RTX  bool          // EventSend only: NACK-triggered retransmission
}

// Journey is the recorded life of one sampled packet, identified by
// (SSRC, RTP sequence number). Events are appended in sim-clock order; with
// fan-out a journey is a tree (one send per subscriber), which the renderer
// handles by charging each receive against the sends toward that receiver.
type Journey struct {
	SID    uint32
	Seq    uint16
	Origin int           // producer node where the packet entered the overlay
	Start  time.Duration // ingress timestamp
	Events []Event
}

// String returns a compact one-line form, mainly for tests and logs.
func (j *Journey) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sid=%d seq=%d origin=%d start=%v events=%d\n",
		j.SID, j.Seq, j.Origin, j.Start, len(j.Events))
	return b.String()
}

type journeyKey struct {
	sid uint32
	seq uint16
}

// maxEventsPerJourney caps a runaway journey (e.g. a routing loop) so the
// tracer's memory stays bounded.
const maxEventsPerJourney = 64

// Tracer samples packet journeys at overlay ingress and records every
// subsequent hop. All methods are safe on a nil *Tracer (no-ops), which is
// the disabled state: instrumented code guards with a single nil check and
// performs no RNG draws, so disabling the tracer keeps replays
// byte-identical with pre-telemetry builds.
//
// Sampling draws come from a dedicated seeded RNG stream, so an enabled
// tracer never perturbs the simulation's other random streams either.
type Tracer struct {
	// ClientBase, when non-zero, is the smallest peer ID rendered as
	// "client N" instead of "node N" (core.Cluster sets it to its
	// client-ID base).
	ClientBase int
	// After suppresses sampling before this sim-clock time, so the
	// journey budget is spent on steady-state packets rather than the
	// congested startup transient.
	After time.Duration

	clock    sim.Clock
	rng      *sim.Rand
	rate     float64
	max      int
	journeys map[journeyKey]*Journey
	order    []*Journey
}

// NewTracer returns a tracer sampling each eligible ingress packet with
// probability rate, keeping at most max journeys. clock provides event
// timestamps; rng must be a dedicated stream (e.g. loop.RNG("telemetry")).
func NewTracer(clock sim.Clock, rng *sim.Rand, rate float64, max int) *Tracer {
	if max <= 0 {
		max = 16
	}
	return &Tracer{
		clock:    clock,
		rng:      rng,
		rate:     rate,
		max:      max,
		journeys: make(map[journeyKey]*Journey, max),
	}
}

// Begin offers an ingress packet for sampling at node. If selected (and the
// journey budget is not exhausted) it opens a journey and records the
// ingress receive.
func (t *Tracer) Begin(sid uint32, seq uint16, node int) {
	if t == nil || len(t.order) >= t.max {
		return
	}
	k := journeyKey{sid, seq}
	if _, ok := t.journeys[k]; ok {
		return
	}
	now := t.clock.Now()
	if now < t.After {
		return
	}
	if !t.rng.Bernoulli(t.rate) {
		return
	}
	j := &Journey{SID: sid, Seq: seq, Origin: node, Start: now}
	j.Events = append(j.Events, Event{Kind: EventRecv, Node: node, Peer: -1, At: now})
	t.journeys[k] = j
	t.order = append(t.order, j)
}

// Traced reports whether (sid, seq) has an open journey.
func (t *Tracer) Traced(sid uint32, seq uint16) bool {
	if t == nil {
		return false
	}
	_, ok := t.journeys[journeyKey{sid, seq}]
	return ok
}

// Recv records the packet arriving at node.
func (t *Tracer) Recv(sid uint32, seq uint16, node int) {
	t.record(sid, seq, Event{Kind: EventRecv, Node: node, Peer: -1})
}

// Send records the pacer releasing the packet at node toward to.
// rtx marks a NACK-triggered retransmission.
func (t *Tracer) Send(sid uint32, seq uint16, node, to int, rtx bool) {
	t.record(sid, seq, Event{Kind: EventSend, Node: node, Peer: to, RTX: rtx})
}

func (t *Tracer) record(sid uint32, seq uint16, ev Event) {
	if t == nil {
		return
	}
	j, ok := t.journeys[journeyKey{sid, seq}]
	if !ok || len(j.Events) >= maxEventsPerJourney {
		return
	}
	ev.At = t.clock.Now()
	j.Events = append(j.Events, ev)
}

// Journeys returns all sampled journeys sorted by (ingress time, SID, Seq).
func (t *Tracer) Journeys() []*Journey {
	if t == nil {
		return nil
	}
	js := make([]*Journey, len(t.order))
	copy(js, t.order)
	sort.Slice(js, func(a, b int) bool {
		if js[a].Start != js[b].Start {
			return js[a].Start < js[b].Start
		}
		if js[a].SID != js[b].SID {
			return js[a].SID < js[b].SID
		}
		return js[a].Seq < js[b].Seq
	})
	return js
}

// Render returns hop-by-hop latency waterfalls for up to limit journeys
// (limit <= 0 renders all). Output is deterministic: journeys sort by
// ingress time and each line is a pure function of the recorded events.
func (t *Tracer) Render(limit int) string {
	if t == nil {
		return "tracing disabled\n"
	}
	js := t.Journeys()
	var b strings.Builder
	if limit > 0 && len(js) > limit {
		fmt.Fprintf(&b, "showing %d of %d sampled journeys\n\n", limit, len(js))
		js = js[:limit]
	} else {
		fmt.Fprintf(&b, "%d sampled journeys\n\n", len(js))
	}
	for i, j := range js {
		if i > 0 {
			b.WriteByte('\n')
		}
		t.renderJourney(&b, j)
	}
	return b.String()
}

func (t *Tracer) peerName(id int) string {
	if t.ClientBase > 0 && id >= t.ClientBase {
		return fmt.Sprintf("client %d", id)
	}
	return fmt.Sprintf("node %d", id)
}

// renderJourney prints one waterfall. Per delivered hop, end-to-end time
// splits into three exclusive components:
//
//	queueing   = receive -> first pacer send toward the delivering peer
//	retransmit = first send -> the send that finally delivered (0 if no loss)
//	network    = delivering send -> receive at the peer (propagation + jitter)
func (t *Tracer) renderJourney(b *strings.Builder, j *Journey) {
	fmt.Fprintf(b, "journey sid=%d seq=%d  ingress %s at t=%v\n",
		j.SID, j.Seq, t.peerName(j.Origin), j.Start)
	lastRecv := make(map[int]time.Duration, 4)  // node -> latest receive there
	firstSend := make(map[int]time.Duration, 4) // dest -> first undelivered send
	lastSend := make(map[int]time.Duration, 4)  // dest -> latest undelivered send
	var queueSum, netSum, rtxSum time.Duration
	var last time.Duration
	for i, ev := range j.Events {
		rel := float64(ev.At-j.Start) / float64(time.Millisecond)
		last = ev.At
		switch ev.Kind {
		case EventRecv:
			if i == 0 {
				fmt.Fprintf(b, "  %+10.3fms  %-11s recv   (overlay ingress)\n", rel, t.peerName(ev.Node))
			} else if ls, ok := lastSend[ev.Node]; ok {
				net := ev.At - ls
				rtx := ls - firstSend[ev.Node]
				netSum += net
				rtxSum += rtx
				note := fmt.Sprintf("network %.3fms", float64(net)/float64(time.Millisecond))
				if rtx > 0 {
					note += fmt.Sprintf(", rtx wait %.3fms", float64(rtx)/float64(time.Millisecond))
				}
				fmt.Fprintf(b, "  %+10.3fms  %-11s recv   (%s)\n", rel, t.peerName(ev.Node), note)
				delete(firstSend, ev.Node)
				delete(lastSend, ev.Node)
			} else {
				fmt.Fprintf(b, "  %+10.3fms  %-11s recv\n", rel, t.peerName(ev.Node))
			}
			lastRecv[ev.Node] = ev.At
		case EventSend:
			tag := ""
			if ev.RTX {
				tag = "  [rtx]"
			}
			if _, pending := firstSend[ev.Peer]; !pending {
				q := time.Duration(0)
				if r, ok := lastRecv[ev.Node]; ok {
					q = ev.At - r
				}
				queueSum += q
				firstSend[ev.Peer] = ev.At
				fmt.Fprintf(b, "  %+10.3fms  %-11s send > %-11s (queued %.3fms)%s\n",
					rel, t.peerName(ev.Node), t.peerName(ev.Peer),
					float64(q)/float64(time.Millisecond), tag)
			} else {
				fmt.Fprintf(b, "  %+10.3fms  %-11s send > %-11s%s\n",
					rel, t.peerName(ev.Node), t.peerName(ev.Peer), tag)
			}
			lastSend[ev.Peer] = ev.At
		}
	}
	e2e := last - j.Start
	fmt.Fprintf(b, "  e2e %.3fms = queueing %.3fms + network %.3fms + retransmit %.3fms\n",
		float64(e2e)/float64(time.Millisecond),
		float64(queueSum)/float64(time.Millisecond),
		float64(netSum)/float64(time.Millisecond),
		float64(rtxSum)/float64(time.Millisecond))
}
