package brain

import (
	"testing"
	"time"

	"livenet/internal/replication"
	"livenet/internal/sim"
)

// paxosNet is an in-memory delayed transport for the Paxos group.
type paxosNet struct {
	loop     *sim.Loop
	replicas map[int]*ReplicatedBrain
	blocked  map[int]bool
}

func (n *paxosNet) Send(from, to int, m replication.Msg) {
	if n.blocked[from] || n.blocked[to] {
		return
	}
	n.loop.AfterFunc(5*time.Millisecond, func() {
		if rb := n.replicas[to]; rb != nil && !n.blocked[to] {
			rb.OnMessage(from, m)
		}
	})
}

func newReplicatedGroup(t *testing.T, n int) (*sim.Loop, []*ReplicatedBrain, *paxosNet) {
	t.Helper()
	loop := sim.NewLoop(1)
	net := &paxosNet{loop: loop, replicas: make(map[int]*ReplicatedBrain), blocked: make(map[int]bool)}
	peers := make([]int, n)
	for i := range peers {
		peers[i] = i
	}
	group := make([]*ReplicatedBrain, n)
	for i := 0; i < n; i++ {
		local := New(Config{N: 6})
		for a := 0; a < 6; a++ {
			for b := 0; b < 6; b++ {
				if a != b {
					local.ReportLink(a, b, 10*time.Millisecond, 0, 0.1)
				}
			}
		}
		group[i] = NewReplicated(local, i, peers, net, loop)
		net.replicas[i] = group[i]
	}
	return loop, group, net
}

func TestReplicatedSIBConverges(t *testing.T) {
	loop, group, _ := newReplicatedGroup(t, 3)
	group[0].RegisterStream(77, 2)
	loop.RunUntil(2 * time.Second)
	for i, rb := range group {
		p, ok := rb.Local.Producer(77)
		if !ok || p != 2 {
			t.Fatalf("replica %d: producer=%d ok=%v", i, p, ok)
		}
		// Any replica can now answer lookups.
		paths, err := rb.Lookup(77, 4)
		if err != nil || len(paths) == 0 {
			t.Fatalf("replica %d lookup failed: %v", i, err)
		}
	}
}

func TestReplicatedUnregisterConverges(t *testing.T) {
	loop, group, _ := newReplicatedGroup(t, 3)
	group[0].RegisterStream(5, 1)
	loop.RunUntil(time.Second)
	group[1].UnregisterStream(5)
	loop.RunUntil(3 * time.Second)
	for i, rb := range group {
		if _, ok := rb.Local.Producer(5); ok {
			t.Fatalf("replica %d still has the stream", i)
		}
	}
}

func TestReplicatedSurvivesMinorityFailure(t *testing.T) {
	loop, group, net := newReplicatedGroup(t, 3)
	net.blocked[2] = true // one data center down
	group[0].RegisterStream(9, 3)
	loop.RunUntil(2 * time.Second)
	for i := 0; i < 2; i++ {
		if p, ok := group[i].Local.Producer(9); !ok || p != 3 {
			t.Fatalf("replica %d: producer=%d ok=%v", i, p, ok)
		}
	}
	if _, ok := group[2].Local.Producer(9); ok {
		t.Fatal("partitioned replica should not have the entry yet")
	}
	// The partition heals and the replica catches up via commits... a new
	// proposal carries the commit traffic that lets it learn.
	net.blocked[2] = false
	group[0].RegisterStream(10, 4)
	loop.RunUntil(4 * time.Second)
	if p, ok := group[2].Local.Producer(10); !ok || p != 4 {
		t.Fatalf("healed replica missed new registration: %d %v", p, ok)
	}
}

func TestReplicatedConcurrentRegistrations(t *testing.T) {
	loop, group, _ := newReplicatedGroup(t, 5)
	for k := 0; k < 10; k++ {
		group[k%5].RegisterStream(uint32(100+k), k%6)
	}
	loop.RunUntil(10 * time.Second)
	for k := 0; k < 10; k++ {
		want := k % 6
		for i, rb := range group {
			if p, ok := rb.Local.Producer(uint32(100 + k)); !ok || p != want {
				t.Fatalf("replica %d stream %d: producer=%d ok=%v want %d", i, 100+k, p, ok, want)
			}
		}
	}
}
