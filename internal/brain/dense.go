package brain

import (
	"math"

	"livenet/internal/ksp"
)

// Dense-mesh routing: on LiveNet's flat CDN the overlay is a full mesh,
// so the ≤3-hop k-shortest paths can be found by direct enumeration of
// 0/1/2-relay paths over a dense weight matrix instead of running Yen's
// algorithm. This is what makes the 20-day macro simulation affordable
// (millions of lookups). The enumeration keeps only the k best candidates
// with a streaming insertion (k is 3), so each pair costs O(N²) compares
// and no allocation beyond the result.
//
// Semantics note: Yen per the paper computes the global top-k and then
// filters out >3-hop paths, so it can return fewer than k; the dense
// enumerator searches within the hop constraint, so it returns the same
// or better candidates (asserted by TestDenseMatchesYenOnFullMesh).

// EnableDense switches path computation to the dense-mesh enumerator.
// Call it when the reported topology is a full mesh.
func (b *Brain) EnableDense() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dense = true
	b.denseVersion = 0 // graph versions start at 1: forces a build
}

// denseWeightsLocked (re)builds the dense weight matrix for the current
// graph version.
func (b *Brain) denseWeightsLocked() []float64 {
	if b.denseVersion == b.view.Version() && b.denseW != nil {
		return b.denseW
	}
	n := b.cfg.N
	if cap(b.denseW) < n*n {
		b.denseW = make([]float64, n*n)
	}
	b.denseW = b.denseW[:n*n]
	inf := math.Inf(1)
	for i := range b.denseW {
		b.denseW[i] = inf
	}
	// Scatter from the graph's per-neighbor weight cache: no per-cell map
	// lookup, and absent edges stay +Inf.
	for i := 0; i < n; i++ {
		row := b.denseW[i*n : (i+1)*n]
		nbrs, ws := b.view.NeighborWeights(i)
		for idx, nb := range nbrs {
			if nb != i {
				row[nb] = ws[idx]
			}
		}
	}
	b.denseVersion = b.view.Version()
	return b.denseW
}

// denseTopK is a fixed-size best-candidates accumulator.
type denseTopK struct {
	k     int
	cost  [8]float64
	relay [8][2]int // r1, r2 (-1 when unused)
	n     int
}

func (t *denseTopK) push(cost float64, r1, r2 int) {
	if t.n == t.k && cost >= t.cost[t.n-1] {
		return
	}
	i := t.n
	if i < t.k {
		t.n++
	} else {
		i = t.k - 1
	}
	for i > 0 && t.cost[i-1] > cost {
		t.cost[i] = t.cost[i-1]
		t.relay[i] = t.relay[i-1]
		i--
	}
	t.cost[i] = cost
	t.relay[i] = [2]int{r1, r2}
}

// computePathsDense enumerates the k best ≤3-hop loopless paths.
func (b *Brain) computePathsDense(src, dst int) []ksp.Path {
	n := b.cfg.N
	w := b.denseWeightsLocked()
	k := b.cfg.K
	if k > 8 {
		k = 8
	}
	top := denseTopK{k: k}

	if c := w[src*n+dst]; !math.IsInf(c, 1) {
		top.push(c, -1, -1)
	}
	for r := 0; r < n; r++ {
		if r == src || r == dst {
			continue
		}
		if c := w[src*n+r] + w[r*n+dst]; !math.IsInf(c, 1) {
			top.push(c, r, -1)
		}
	}
	for r1 := 0; r1 < n; r1++ {
		if r1 == src || r1 == dst {
			continue
		}
		base := w[src*n+r1]
		if math.IsInf(base, 1) {
			continue
		}
		// Prune: a 2-relay path cannot beat the current worst kept
		// candidate if its first leg alone already exceeds it.
		if top.n == top.k && base >= top.cost[top.n-1] {
			continue
		}
		row := w[r1*n:]
		for r2 := 0; r2 < n; r2++ {
			if r2 == src || r2 == dst || r2 == r1 {
				continue
			}
			c := base + row[r2] + w[r2*n+dst]
			if !math.IsInf(c, 1) {
				top.push(c, r1, r2)
			}
		}
	}

	out := make([]ksp.Path, 0, top.n)
	for i := 0; i < top.n; i++ {
		nodes := make([]int, 0, 4)
		nodes = append(nodes, src)
		if top.relay[i][0] >= 0 {
			nodes = append(nodes, top.relay[i][0])
		}
		if top.relay[i][1] >= 0 {
			nodes = append(nodes, top.relay[i][1])
		}
		nodes = append(nodes, dst)
		out = append(out, ksp.Path{Nodes: nodes, Cost: top.cost[i]})
	}
	return out
}
