// Package brain implements the Streaming Brain (§4): the logically
// centralized controller of LiveNet's flat CDN. It is composed of the
// four modules of Figure 4:
//
//   - Global Discovery collects link/node metrics reported by overlay
//     nodes (1-minute reports) and real-time overload alarms (80% target).
//   - Global Routing abstracts link weights (Eq. 2–3) and computes k=3
//     candidate paths per node pair with Yen's KSP, filtered by the ≤3-hop
//     and overload constraints.
//   - Path Decision serves path lookups from consumer nodes out of the
//     Path Information Base (PIB), falling back to last-resort paths
//     through reserved well-peered relays when every candidate violates
//     the constraints.
//   - Stream Management tracks which producer node carries each live
//     stream in the Stream Information Base (SIB).
//
// Two deliberate implementation differences from the paper keep a
// 600-node fleet affordable. First, instead of recomputing all N² pairs
// every 10 minutes eagerly, the PIB is filled lazily per requested pair
// (an eager RecomputeAll is provided for the paper's batch schedule; it
// fans out across cores with results identical to the serial order).
// Second, AdvanceEpoch is incremental: Global Discovery tracks which
// links and nodes actually changed since the last routing round, and the
// round invalidates only PIB entries those changes could affect — an
// entry whose cached paths avoid every dirty element, and whose k-th
// path cost no dirty element can undercut, is provably unchanged and
// kept. The served paths are identical to a from-scratch recompute
// (asserted by TestIncrementalMatchesRecompute); only the computation
// schedule differs.
package brain

import (
	"errors"
	"math"
	"sort"
	"sync"
	"time"

	"livenet/internal/graph"
	"livenet/internal/ksp"
	"livenet/internal/runner"
	"livenet/internal/sim"
	"livenet/internal/telemetry"
)

// Defaults from the paper.
const (
	DefaultK          = 3
	DefaultMaxHops    = 3
	DefaultRouteEpoch = 10 * time.Minute
)

// costEps is the tie margin for the incremental-invalidation bound test:
// a dirty element whose best path lands within costEps of an entry's k-th
// cost invalidates the entry rather than trusting float equality.
const costEps = 1e-9

// invalidateDenom: when more than 1/invalidateDenom of the links (or
// nodes) are dirty, per-entry checks cost more than they save and the
// round falls back to dropping the whole PIB (the macro simulator's
// full-fleet refresh always takes this path, so its schedule is
// unchanged).
const invalidateDenom = 8

// ErrUnknownStream is returned when the SIB has no producer for a stream.
var ErrUnknownStream = errors.New("brain: unknown stream")

// Config configures the Brain.
type Config struct {
	// N is the number of overlay nodes (IDs 0..N-1).
	N int
	// K is the number of candidate paths per pair (default 3).
	K int
	// MaxHops bounds path length in overlay links (default 3).
	MaxHops int
	// RouteEpoch is the Global Routing recomputation period (default 10 m).
	RouteEpoch time.Duration
	// LastResort lists reserved well-peered relay node IDs (§4.3).
	LastResort []int
	// Clock drives epoch advancement; nil means epochs advance only via
	// AdvanceEpoch (useful in unit tests).
	Clock sim.Clock
	// StaleAfter ages out link/node entries that Global Discovery has not
	// refreshed within this window: they are marked down so routing avoids
	// elements whose owner stopped reporting (a crashed node cannot report
	// its own failure). Zero disables aging; it needs Clock to run.
	StaleAfter time.Duration
	// Owns scopes staleness aging to the nodes this Brain is responsible
	// for. A federation shard ingests reports only from its own region, so
	// foreign nodes would otherwise age out despite being healthy — the
	// shard must never mark a node it does not own as stale. Nil means the
	// Brain owns every node (the monolithic deployment).
	Owns func(id int) bool
	// Telemetry is the registry the Brain registers its brain.* counters
	// in (see OBSERVABILITY.md). Nil disables registration at zero cost.
	Telemetry *telemetry.Registry
	// Recompute schedules RecomputeAll/PrefetchPaths batch work; the zero
	// value fans out across GOMAXPROCS workers. runner.Serial() is the
	// reference schedule for determinism tests (results are identical
	// either way).
	Recompute runner.Options
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = DefaultK
	}
	if c.MaxHops <= 0 {
		c.MaxHops = DefaultMaxHops
	}
	if c.RouteEpoch <= 0 {
		c.RouteEpoch = DefaultRouteEpoch
	}
	return c
}

// Metrics are the Brain's cumulative counters.
type Metrics struct {
	Lookups        uint64
	PIBHits        uint64
	PIBMisses      uint64
	LastResortUsed uint64
	OverloadAlarms uint64
	StreamsActive  int
}

type pairKey struct{ src, dst int }

// pibEntry caches one pair's Global Routing result plus what the
// incremental invalidation needs to decide whether it survived a set of
// link/node changes.
type pibEntry struct {
	// version is the graph version the paths were computed at; dirty
	// elements recorded at or before it were already visible then.
	version uint64
	// raw is the KSP output before hop filtering — invalidation must see
	// it, because a filtered-out path changing cost can still change the
	// KSP top-k and therefore the filtered set.
	raw []ksp.Path
	// kth is the cost of the k-th raw path (+Inf when KSP found fewer):
	// a changed element that cannot produce a path cheaper than this
	// cannot displace anything in the entry.
	kth float64
	// paths is raw with over-length paths removed (what decisions see).
	paths []ksp.Path

	// Decision cache: the overload-filtered (Algorithm 1 lines 14–18)
	// served list, memoized against the graph version so repeat lookups
	// in a quiet view are allocation-free except for the outer slice.
	// The inner []int slices are immutable and shared with callers.
	decided   [][]int
	decidedAt uint64 // graph version the filter ran at (0 = never)
	decidedLR bool   // decided is a last-resort fallback
}

// treeEntry is a cached per-producer SSSP tree (one forward Dijkstra
// shared by every consumer of that producer within a graph version).
type treeEntry struct {
	version uint64
	tree    ksp.Tree
}

// rdistEntry is a cached per-consumer reverse distance array (one
// backward Dijkstra shared by every producer pairing with that consumer
// within a graph version).
type rdistEntry struct {
	version uint64
	dist    []float64
}

// Brain is the Streaming Brain.
type Brain struct {
	mu  sync.Mutex
	cfg Config

	view *graph.Graph // global view maintained by Global Discovery

	pib map[pairKey]*pibEntry
	sib map[uint32]int // stream ID -> producer node

	// draining marks relays being decommissioned (planned
	// reconfiguration): path decisions avoid them as interior hops and the
	// last resort skips them, so a drain converges instead of the Brain
	// steering new subscriptions back onto the leaving node.
	draining map[int]bool

	// trees caches one SSSP tree per producer, stamped by graph version.
	trees map[int]treeEntry

	// rdist caches per-consumer reverse shortest distances (dist[v] =
	// v→dst on the current weights), stamped by graph version. Yen spur
	// searches use them as an exact A* heuristic: a spur search then
	// expands only nodes on near-optimal corridors toward the consumer
	// instead of flooding a distance ball around the spur node.
	rdist map[int]rdistEntry

	// arenas is the worker-pinned routing scratch: index w belongs
	// exclusively to runner worker w during a batch fan-out (serial paths
	// use arena 0 under b.mu). Arenas hold no results, only scratch, so
	// they never affect outputs — just allocation counts.
	arenas []*ksp.Arena

	// Dirty sets for incremental invalidation: elements whose metrics
	// changed since the last routing round, with the graph version at
	// which they last changed (entries computed later already saw it).
	dirtyLinks map[pairKey]uint64
	dirtyNodes map[int]uint64

	// Per-node telemetry ingested by Global Discovery (nil until the
	// first ReportNodeTelemetry): metric snapshots and carried streams,
	// aggregated on demand by GlobalView.
	nodeTel     map[int]telemetry.Snapshot
	nodeStreams map[int][]uint32

	tel     brainInstruments
	timer   sim.Timer
	ageTick sim.Timer
	closed  bool

	// Staleness stamps for Global Discovery aging (nil when disabled).
	linkSeen map[pairKey]time.Duration
	nodeSeen []time.Duration

	// Dense-mesh fast path (see dense.go).
	dense        bool
	denseW       []float64
	denseVersion uint64
}

// New creates a Brain over n nodes.
func New(cfg Config) *Brain {
	cfg = cfg.withDefaults()
	b := &Brain{
		cfg:        cfg,
		view:       graph.New(cfg.N),
		pib:        make(map[pairKey]*pibEntry),
		sib:        make(map[uint32]int),
		draining:   make(map[int]bool),
		trees:      make(map[int]treeEntry),
		rdist:      make(map[int]rdistEntry),
		dirtyLinks: make(map[pairKey]uint64),
		dirtyNodes: make(map[int]uint64),
		tel:        newBrainInstruments(cfg.Telemetry),
	}
	if cfg.Clock != nil {
		b.scheduleEpoch()
	}
	if cfg.Clock != nil && cfg.StaleAfter > 0 {
		// Grace-stamp every node at creation so a node is only aged out
		// after it has had a full window to produce its first report.
		now := cfg.Clock.Now()
		b.linkSeen = make(map[pairKey]time.Duration)
		b.nodeSeen = make([]time.Duration, cfg.N)
		for i := range b.nodeSeen {
			b.nodeSeen[i] = now
		}
		b.scheduleAge()
	}
	return b
}

// owns reports whether this Brain is responsible for node id's liveness.
func (b *Brain) owns(id int) bool {
	return b.cfg.Owns == nil || b.cfg.Owns(id)
}

func (b *Brain) scheduleAge() {
	b.ageTick = b.cfg.Clock.AfterFunc(b.cfg.StaleAfter/2, func() {
		b.sweepStale()
		b.mu.Lock()
		if !b.closed {
			b.scheduleAge()
		}
		b.mu.Unlock()
	})
}

// sweepStale marks links and nodes whose reports aged past StaleAfter as
// down (and revives ones that resumed reporting — SetLink already clears
// link state on a fresh report). Changes invalidate the affected PIB
// entries immediately so the next lookup routes around the failed
// elements. Map iteration order does not matter here: each key's effect
// is an independent state transition, and the invalidation below folds
// the resulting dirty set order-insensitively.
func (b *Brain) sweepStale() {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Clock.Now()
	changed := false
	for k, seen := range b.linkSeen {
		if now-seen > b.cfg.StaleAfter {
			if b.view.SetLinkDown(k.src, k.dst, true) {
				b.markLinkDirtyLocked(k.src, k.dst)
				changed = true
			}
		}
	}
	for id, seen := range b.nodeSeen {
		if !b.owns(id) {
			continue
		}
		stale := now-seen > b.cfg.StaleAfter
		if stale != b.view.NodeDown(id) {
			b.view.SetNodeDown(id, stale)
			b.markNodeDirtyLocked(id)
			changed = true
		}
	}
	if changed {
		b.applyDirtLocked()
	}
}

func (b *Brain) scheduleEpoch() {
	b.timer = b.cfg.Clock.AfterFunc(b.cfg.RouteEpoch, func() {
		b.AdvanceEpoch()
		b.mu.Lock()
		if !b.closed {
			b.scheduleEpoch()
		}
		b.mu.Unlock()
	})
}

// Close stops the epoch timer.
func (b *Brain) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	if b.timer != nil {
		b.timer.Stop()
	}
	if b.ageTick != nil {
		b.ageTick.Stop()
	}
}

// Metrics returns a snapshot of the counters. The struct view is kept for
// existing callers; the same values live in the telemetry registry under
// the brain.* names when one is attached.
func (b *Brain) Metrics() Metrics {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Metrics{
		Lookups:        b.tel.lookups.Load(),
		PIBHits:        b.tel.pibHits.Load(),
		PIBMisses:      b.tel.pibMisses.Load(),
		LastResortUsed: b.tel.lastResortUsed.Load(),
		OverloadAlarms: b.tel.overloadAlarms.Load(),
		StreamsActive:  len(b.sib),
	}
}

// AdvanceEpoch runs the 10-minute Global Routing cycle: PIB entries
// affected by the metrics that changed since the last cycle are
// invalidated (and recomputed lazily or by RecomputeAll); entries the
// changes provably cannot touch are kept. With no accumulated changes the
// advance is a no-op.
func (b *Brain) AdvanceEpoch() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.applyDirtLocked()
}

// InvalidateAll unconditionally drops every cached path product — the
// from-scratch baseline the incremental path is benchmarked against.
func (b *Brain) InvalidateAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.invalidatePIBLocked()
	clear(b.dirtyLinks)
	clear(b.dirtyNodes)
}

func (b *Brain) invalidatePIBLocked() {
	b.tel.pibInvalidated.Add(uint64(len(b.pib)))
	clear(b.pib)
	clear(b.trees)
	clear(b.rdist)
}

// arenasLocked sizes the worker-pinned arena set to the runner pool and
// returns it; index 0 doubles as the serial scratch.
func (b *Brain) arenasLocked() []*ksp.Arena {
	for len(b.arenas) < b.cfg.Recompute.PoolSize() {
		b.arenas = append(b.arenas, new(ksp.Arena))
	}
	return b.arenas
}

func (b *Brain) markLinkDirtyLocked(from, to int) {
	b.dirtyLinks[pairKey{from, to}] = b.view.Version()
}

func (b *Brain) markNodeDirtyLocked(id int) {
	b.dirtyNodes[id] = b.view.Version()
}

// probe is one dirty element prepared for the bound test: shortest
// distances from every source to the element and from the element to
// every destination, on the current graph. For a dirty link, w is its
// current weight and the arrays meet at its endpoints; for a dirty node
// the arrays meet at the node itself and w is 0.
type probe struct {
	ver   uint64
	w     float64
	toS   []float64 // toS[s] = dist(s → element entry)
	fromD []float64 // fromD[d] = dist(element exit → d)
}

// applyDirtLocked is the incremental Global Routing round: it decides,
// per PIB entry, whether the accumulated dirty links/nodes could change
// the entry's KSP result, and drops exactly those entries. An entry is
// dropped when (a) one of its raw paths traverses a dirty element — its
// cached costs are stale — or (b) the cheapest possible path through a
// dirty element undercuts the entry's k-th cost — a new candidate could
// enter its top-k. Entries failing both tests recompute to themselves,
// so keeping them serves identical paths (the property test asserts
// this). When the dirty set is a large fraction of the graph, per-entry
// checks cost more than recomputing, so the whole PIB is dropped.
func (b *Brain) applyDirtLocked() {
	nl, nn := len(b.dirtyLinks), len(b.dirtyNodes)
	if nl == 0 && nn == 0 {
		return
	}
	defer func() {
		clear(b.dirtyLinks)
		clear(b.dirtyNodes)
	}()
	if len(b.pib) == 0 {
		clear(b.trees) // stale trees are version-guarded, but free them
		return
	}
	// Changes every surviving entry already saw (recorded at or before the
	// oldest entry's compute version) cannot affect anything: prune them so
	// a round after a quiet window is a no-op rather than a full drop.
	minVer := ^uint64(0)
	for _, e := range b.pib {
		if e.version < minVer {
			minVer = e.version
		}
	}
	for k, ver := range b.dirtyLinks {
		if ver <= minVer {
			delete(b.dirtyLinks, k)
		}
	}
	for id, ver := range b.dirtyNodes {
		if ver <= minVer {
			delete(b.dirtyNodes, id)
		}
	}
	nl, nn = len(b.dirtyLinks), len(b.dirtyNodes)
	if nl == 0 && nn == 0 {
		return
	}
	if nl*invalidateDenom > b.view.Edges() || nn*invalidateDenom > b.cfg.N {
		b.tel.invalidateFull.Inc()
		b.invalidatePIBLocked()
		return
	}
	b.tel.invalidateIncremental.Inc()
	probes := b.buildProbesLocked()
	dropped := uint64(0)
	for k, e := range b.pib {
		if b.entryStaleLocked(k, e, probes) {
			delete(b.pib, k)
			dropped++
		}
	}
	b.tel.pibInvalidated.Add(dropped)
}

// buildProbesLocked runs the per-dirty-element Dijkstra sweeps (forward
// from the element over the CSR, and backward to it over the reverse
// CSR). Sweeps are deduplicated by root — dirty links sharing an endpoint
// share the distance arrays — and fan out across the runner pool; probe
// outcomes are order-independent (entryStaleLocked ORs over them), so the
// parallel schedule changes nothing.
func (b *Brain) buildProbesLocked() []probe {
	n := b.cfg.N
	// Distinct sweep roots: reverse sweeps end at a dirty link's entry (or
	// a dirty node), forward sweeps start at its exit (or the node).
	revSet := make(map[int]bool)
	fwdSet := make(map[int]bool)
	for lk := range b.dirtyLinks {
		revSet[lk.src] = true
		fwdSet[lk.dst] = true
	}
	for id := range b.dirtyNodes {
		revSet[id] = true
		fwdSet[id] = true
	}
	type root struct {
		id  int
		rev bool
	}
	roots := make([]root, 0, len(revSet)+len(fwdSet))
	for id := range revSet {
		roots = append(roots, root{id: id, rev: true})
	}
	for id := range fwdSet {
		roots = append(roots, root{id: id})
	}
	sort.Slice(roots, func(a, c int) bool {
		if roots[a].rev != roots[c].rev {
			return roots[a].rev
		}
		return roots[a].id < roots[c].id
	})
	b.view.MaterializeWeights() // both row directions: workers only read
	arenas := b.arenasLocked()
	nw, inw := b.view.NeighborWeights, b.view.InNeighborWeights
	dists, _ := runner.MapW(b.cfg.Recompute, roots, func(w int, r root) []float64 {
		if r.rev {
			return arenas[w].DijkstraDist(n, r.id, inw)
		}
		return arenas[w].DijkstraDist(n, r.id, nw)
	})
	rev := make(map[int][]float64, len(revSet))
	fwd := make(map[int][]float64, len(fwdSet))
	for i, r := range roots {
		if r.rev {
			rev[r.id] = dists[i]
		} else {
			fwd[r.id] = dists[i]
		}
	}
	probes := make([]probe, 0, len(b.dirtyLinks)+len(b.dirtyNodes))
	for lk, ver := range b.dirtyLinks {
		probes = append(probes, probe{
			ver: ver, w: b.view.Weight(lk.src, lk.dst), toS: rev[lk.src], fromD: fwd[lk.dst],
		})
	}
	for id, ver := range b.dirtyNodes {
		probes = append(probes, probe{ver: ver, toS: rev[id], fromD: fwd[id]})
	}
	return probes
}

// entryStaleLocked reports whether any dirty element recorded after the
// entry's compute version could change its KSP result.
func (b *Brain) entryStaleLocked(k pairKey, e *pibEntry, probes []probe) bool {
	for _, p := range e.raw {
		for i, nd := range p.Nodes {
			if ver, ok := b.dirtyNodes[nd]; ok && ver > e.version {
				return true
			}
			if i+1 < len(p.Nodes) {
				if ver, ok := b.dirtyLinks[pairKey{nd, p.Nodes[i+1]}]; ok && ver > e.version {
					return true
				}
			}
		}
	}
	limit := e.kth + costEps
	for i := range probes {
		pr := &probes[i]
		if pr.ver <= e.version {
			continue
		}
		if pr.toS[k.src]+pr.w+pr.fromD[k.dst] < limit {
			return true
		}
	}
	return false
}

// --- Global Discovery ---

// ReportLink ingests one link measurement from a node's periodic report.
// The changed weight takes routing effect at the next epoch; a report on
// a previously-down link revives it immediately (the affected PIB entries
// are invalidated so recomputed paths may use it again).
func (b *Brain) ReportLink(from, to int, rtt time.Duration, loss, util float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wasDown := false
	if l := b.view.Link(from, to); l != nil {
		wasDown = l.Down
	}
	if b.view.SetLink(from, to, rtt, loss, util) {
		b.markLinkDirtyLocked(from, to)
		if wasDown {
			b.applyDirtLocked()
		}
	}
	if b.linkSeen != nil {
		now := b.cfg.Clock.Now()
		b.linkSeen[pairKey{from, to}] = now
		// A node that reports a link is alive, whatever its load says.
		b.nodeSeen[from] = now
	}
}

// ReportLinkDown ingests an immediate link-failure report (a neighbor's
// probes time out, §4.2): the link is excluded from routing at once.
func (b *Brain) ReportLinkDown(from, to int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.view.SetLinkDown(from, to, true) {
		b.markLinkDirtyLocked(from, to)
		b.applyDirtLocked()
	}
}

// ReportNodeDown ingests an immediate node-failure report; ReportNodeLoad
// (or staleness recovery) revives the node.
func (b *Brain) ReportNodeDown(id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.view.SetNodeDown(id, true) {
		b.markNodeDirtyLocked(id)
		b.applyDirtLocked()
	}
}

// ReportNodeLoad ingests a node's combined load metric (§4.2 footnote 4).
func (b *Brain) ReportNodeLoad(id int, util float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.view.SetNodeUtil(id, util) {
		b.markNodeDirtyLocked(id)
	}
	if b.view.NodeDown(id) {
		b.view.SetNodeDown(id, false)
		b.markNodeDirtyLocked(id)
		b.applyDirtLocked()
	}
	if b.nodeSeen != nil {
		b.nodeSeen[id] = b.cfg.Clock.Now()
	}
}

// OverloadAlarm handles a real-time alarm: the node's paths must be
// invalidated immediately rather than waiting for the next epoch (§4.2).
// Recording the reported utilization in the view makes the Path
// Decision's validity filter reject paths through it at once — the bump
// in graph version expires every cached decision.
func (b *Brain) OverloadAlarm(id int, util float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tel.overloadAlarms.Inc()
	if b.view.SetNodeUtil(id, util) {
		b.markNodeDirtyLocked(id)
	}
}

// LinkOverloadAlarm is the link-level variant.
func (b *Brain) LinkOverloadAlarm(from, to int, util float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tel.overloadAlarms.Inc()
	if l := b.view.Link(from, to); l != nil {
		if b.view.SetLink(from, to, l.RTT, l.Loss, util) {
			b.markLinkDirtyLocked(from, to)
		}
	}
}

// View returns a snapshot clone of the global view (for the evaluation
// harness and ablations).
func (b *Brain) View() *graph.Graph {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.view.Clone()
}

// --- Stream Management ---

// RegisterStream records a stream's producer node in the SIB.
func (b *Brain) RegisterStream(sid uint32, producer int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sib[sid] = producer
	b.tel.streamsActive.Set(float64(len(b.sib)))
}

// UnregisterStream removes a finished stream.
func (b *Brain) UnregisterStream(sid uint32) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.sib, sid)
	b.tel.streamsActive.Set(float64(len(b.sib)))
}

// Producer looks up a stream's producer node.
func (b *Brain) Producer(sid uint32) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.sib[sid]
	return p, ok
}

// --- Path Decision (Algorithm 1, GetPath) ---

// Lookup serves a path request: stream ID + consumer node → up to K
// candidate paths (producer→consumer node sequences) ordered by
// preference. Paths with overloaded links/nodes are deleted (IsInvalid);
// when none survive, a last-resort path through a reserved relay is
// returned. The outer slice is the caller's to keep; the inner path
// slices are shared immutable data and must not be modified.
func (b *Brain) Lookup(sid uint32, consumer int) ([][]int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tel.lookups.Inc()
	producer, ok := b.sib[sid]
	if !ok {
		return nil, ErrUnknownStream
	}
	return b.pathsLocked(producer, consumer), nil
}

// LookupByProducer is like Lookup but bypasses the SIB (used for
// prefetching and the Hier baseline comparison harness).
func (b *Brain) LookupByProducer(producer, consumer int) [][]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pathsLocked(producer, consumer)
}

func (b *Brain) pathsLocked(producer, consumer int) [][]int {
	if producer == consumer {
		return [][]int{{producer}} // 0-hop path: one node is both roles
	}
	return b.serveLocked(producer, consumer, b.pibEntryLocked(producer, consumer))
}

// serveLocked applies the decision-time validity filter (Algorithm 1
// lines 14–18) and the last-resort fallback, memoizing the result against
// the graph version: while the view is unchanged, repeat lookups reuse
// the filtered list and pay one outer-slice allocation.
func (b *Brain) serveLocked(producer, consumer int, e *pibEntry) [][]int {
	if v := b.view.Version(); e.decidedAt != v {
		e.decidedAt = v
		e.decidedLR = false
		e.decided = e.decided[:0]
		for _, p := range e.paths {
			if !b.view.PathOverloaded(p.Nodes) && !b.pathDrainingLocked(p.Nodes) {
				e.decided = append(e.decided, p.Nodes)
			}
		}
		if len(e.decided) == 0 {
			// Last resort (§4.3): producer → reserved relay → consumer.
			if lr := b.lastResortLocked(producer, consumer); lr != nil {
				e.decided = append(e.decided, lr)
				e.decidedLR = true
			}
		}
	}
	if len(e.decided) == 0 {
		return nil
	}
	if e.decidedLR {
		b.tel.lastResortUsed.Inc()
	}
	out := make([][]int, len(e.decided))
	copy(out, e.decided)
	return out
}

// pathDrainingLocked reports whether any interior hop of path is
// draining. Endpoints are exempt: a draining node keeps serving its own
// producers and locally attached viewers — only relayed traffic moves.
func (b *Brain) pathDrainingLocked(path []int) bool {
	if len(b.draining) == 0 {
		return false
	}
	for _, id := range path[1 : len(path)-1] {
		if b.draining[id] {
			return true
		}
	}
	return false
}

// SetDraining marks a relay as (not) draining for path decisions. The
// view version is bumped so memoized decisions made before the change
// expire immediately.
func (b *Brain) SetDraining(id int, v bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.draining[id] == v {
		return
	}
	if v {
		b.draining[id] = true
	} else {
		delete(b.draining, id)
	}
	b.view.BumpVersion()
}

// Draining reports whether a node is marked draining.
func (b *Brain) Draining(id int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.draining[id]
}

// pibEntryLocked returns the cached PIB entry for a pair, computing it if
// absent (lazy variant of the 10-minute Global Routing run — entries stay
// valid across epochs until invalidation drops them).
func (b *Brain) pibEntryLocked(src, dst int) *pibEntry {
	k := pairKey{src, dst}
	if e, ok := b.pib[k]; ok {
		b.tel.pibHits.Inc()
		return e
	}
	b.tel.pibMisses.Inc()
	e := b.computeEntryLocked(src, dst)
	b.pib[k] = e
	return e
}

// computeEntryLocked is the Global Routing two-step solution (§4.3): KSP
// on the abstracted weights, then constraint filtering (length only —
// overload filtering happens at decision time so alarms take effect
// immediately).
func (b *Brain) computeEntryLocked(src, dst int) *pibEntry {
	var raw []ksp.Path
	if b.dense {
		raw = b.computePathsDense(src, dst)
	} else {
		a := b.arenasLocked()[0]
		raw = a.YenFromTreeH(b.cfg.N, src, dst, b.cfg.K, b.view.NeighborWeights, b.treeLocked(src), b.rdistLocked(dst))
	}
	return b.newEntry(raw, b.view.Version())
}

// newEntry derives the invalidation and decision state from a KSP result.
func (b *Brain) newEntry(raw []ksp.Path, version uint64) *pibEntry {
	e := &pibEntry{version: version, raw: raw, kth: math.Inf(1), paths: raw}
	if len(raw) >= b.cfg.K {
		e.kth = raw[len(raw)-1].Cost
	}
	for i, p := range raw {
		if p.Hops() > b.cfg.MaxHops {
			filtered := make([]ksp.Path, 0, len(raw)-1)
			filtered = append(filtered, raw[:i]...)
			for _, q := range raw[i+1:] {
				if q.Hops() <= b.cfg.MaxHops {
					filtered = append(filtered, q)
				}
			}
			e.paths = filtered
			break
		}
	}
	return e
}

// treeLocked returns the SSSP tree rooted at src for the current graph
// version, computing and caching it on first use. Every consumer pairing
// with this producer shares it for their first candidate path.
func (b *Brain) treeLocked(src int) ksp.Tree {
	v := b.view.Version()
	if te, ok := b.trees[src]; ok && te.version == v {
		return te.tree
	}
	t := b.arenasLocked()[0].SSSP(b.cfg.N, src, b.view.NeighborWeights)
	b.trees[src] = treeEntry{version: v, tree: t}
	return t
}

// rdistLocked returns the reverse-distance array toward dst for the
// current graph version, computing and caching it on first use. Every
// producer pairing with this consumer shares it as the spur-search A*
// heuristic.
func (b *Brain) rdistLocked(dst int) []float64 {
	v := b.view.Version()
	if re, ok := b.rdist[dst]; ok && re.version == v {
		return re.dist
	}
	d := b.arenasLocked()[0].DijkstraDist(b.cfg.N, dst, b.view.InNeighborWeights)
	b.rdist[dst] = rdistEntry{version: v, dist: d}
	return d
}

// lastResortLocked builds producer → LR → consumer through the best
// reserved relay. Last-resort nodes are exempt from the overload filter —
// they are capacity reserved specifically for this (§4.3).
func (b *Brain) lastResortLocked(producer, consumer int) []int {
	bestCost := -1.0
	var best []int
	for _, lr := range b.cfg.LastResort {
		if lr == producer || lr == consumer {
			continue
		}
		// Skip relays known to be failed. Legs that merely lack
		// measurements (Inf weight at bootstrap) stay eligible — the Brain
		// must answer before the first discovery reports arrive.
		if b.view.NodeDown(lr) || b.draining[lr] {
			continue
		}
		if l := b.view.Link(producer, lr); l != nil && l.Down {
			continue
		}
		if l := b.view.Link(lr, consumer); l != nil && l.Down {
			continue
		}
		w1 := b.view.Weight(producer, lr)
		w2 := b.view.Weight(lr, consumer)
		if w1+w2 < 0 {
			continue
		}
		if cost := w1 + w2; best == nil || cost < bestCost {
			bestCost = cost
			best = []int{producer, lr, consumer}
		}
	}
	return best
}

// recomputeJob is one producer's share of a batch recompute.
type recomputeJob struct {
	src  int
	dsts []int
	tree ksp.Tree
	has  bool // tree is valid (cached before the fan-out)
}

// recomputeMissingLocked computes PIB entries for every listed (src,dsts)
// group, fanning the per-producer jobs out across the runner pool and
// merging results in deterministic (src, dst) order. Workers only read
// the graph: weight rows are materialized up front and every consumer's
// reverse-distance heuristic is precomputed before the fan-out, so the
// parallel schedule is byte-identical to the serial one. Each worker
// runs its searches on its own pinned arena — the steady state of a
// batch allocates only the results it retains.
func (b *Brain) recomputeMissingLocked(jobs []recomputeJob) {
	if len(jobs) == 0 {
		return
	}
	version := b.view.Version()
	arenas := b.arenasLocked()
	if b.dense {
		b.denseWeightsLocked() // build once; workers then read it
	} else {
		b.view.MaterializeWeights()
		for i := range jobs {
			if te, ok := b.trees[jobs[i].src]; ok && te.version == version {
				jobs[i].tree, jobs[i].has = te.tree, true
			}
		}
		b.precomputeRdistLocked(jobs, version)
	}
	type jobResult struct {
		tree    ksp.Tree
		entries []*pibEntry
	}
	nw := b.view.NeighborWeights
	results, _ := runner.MapW(b.cfg.Recompute, jobs, func(w int, j recomputeJob) jobResult {
		r := jobResult{entries: make([]*pibEntry, len(j.dsts))}
		if b.dense {
			for i, d := range j.dsts {
				r.entries[i] = b.newEntry(b.computePathsDense(j.src, d), version)
			}
			return r
		}
		a := arenas[w]
		r.tree = j.tree
		if !j.has {
			r.tree = a.SSSP(b.cfg.N, j.src, nw)
		}
		for i, d := range j.dsts {
			r.entries[i] = b.newEntry(a.YenFromTreeH(b.cfg.N, j.src, d, b.cfg.K, nw, r.tree, b.rdist[d].dist), version)
		}
		return r
	})
	for ji, j := range jobs {
		if !b.dense {
			b.trees[j.src] = treeEntry{version: version, tree: results[ji].tree}
		}
		for i, d := range j.dsts {
			b.pib[pairKey{j.src, d}] = results[ji].entries[i]
			b.tel.pibMisses.Inc()
		}
	}
}

// precomputeRdistLocked builds the reverse-distance heuristic for every
// consumer the jobs will touch, in parallel, before the pair fan-out —
// workers then read b.rdist without synchronization.
func (b *Brain) precomputeRdistLocked(jobs []recomputeJob, version uint64) {
	need := make(map[int]bool)
	for i := range jobs {
		for _, d := range jobs[i].dsts {
			if !need[d] {
				if re, ok := b.rdist[d]; !ok || re.version != version {
					need[d] = true
				}
			}
		}
	}
	if len(need) == 0 {
		return
	}
	missing := make([]int, 0, len(need))
	for d := range need {
		missing = append(missing, d)
	}
	sort.Ints(missing)
	arenas := b.arenasLocked()
	inw := b.view.InNeighborWeights
	dists, _ := runner.MapW(b.cfg.Recompute, missing, func(w, d int) []float64 {
		return arenas[w].DijkstraDist(b.cfg.N, d, inw)
	})
	for i, d := range missing {
		b.rdist[d] = rdistEntry{version: version, dist: dists[i]}
	}
}

// RecomputeAll eagerly fills the PIB for every pair not already cached
// (the paper's 10-minute batch run). The per-producer groups fan out
// across cores; the result is identical to the lazy serial fill.
func (b *Brain) RecomputeAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.cfg.N
	jobs := make([]recomputeJob, 0, n)
	for s := 0; s < n; s++ {
		var dsts []int
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			if _, ok := b.pib[pairKey{s, d}]; ok {
				b.tel.pibHits.Inc()
				continue
			}
			dsts = append(dsts, d)
		}
		if len(dsts) > 0 {
			jobs = append(jobs, recomputeJob{src: s, dsts: dsts})
		}
	}
	b.recomputeMissingLocked(jobs)
}

// PrefetchPaths computes candidate paths from a popular stream's producer
// to every node, for proactive installation on overlay nodes ahead of
// viewer arrival (§4.4). Missing entries are computed in parallel off the
// producer's shared SSSP tree.
func (b *Brain) PrefetchPaths(sid uint32) (map[int][][]int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	producer, ok := b.sib[sid]
	if !ok {
		return nil, ErrUnknownStream
	}
	var missing []int
	for d := 0; d < b.cfg.N; d++ {
		if d == producer {
			continue
		}
		if _, ok := b.pib[pairKey{producer, d}]; ok {
			b.tel.pibHits.Inc()
		} else {
			missing = append(missing, d)
		}
	}
	if len(missing) > 0 {
		// One producer, many destinations: split into per-worker chunks
		// that all share the producer's tree.
		pool := b.cfg.Recompute.PoolSize()
		chunk := (len(missing) + pool - 1) / pool
		var jobs []recomputeJob
		for at := 0; at < len(missing); at += chunk {
			end := at + chunk
			if end > len(missing) {
				end = len(missing)
			}
			jobs = append(jobs, recomputeJob{src: producer, dsts: missing[at:end]})
		}
		if !b.dense {
			b.treeLocked(producer) // ensure the shared tree exists once
		}
		b.recomputeMissingLocked(jobs)
	}
	out := make(map[int][][]int, b.cfg.N)
	for d := 0; d < b.cfg.N; d++ {
		if d == producer {
			continue
		}
		if paths := b.serveLocked(producer, d, b.pib[pairKey{producer, d}]); len(paths) > 0 {
			out[d] = paths
		}
	}
	return out, nil
}

// PathCost sums the current Eq. 2 weights along a node path (+Inf when a
// hop has no usable measurement). The federation front-end ranks
// cross-shard stitch candidates with it; a single-node path costs 0.
func (b *Brain) PathCost(path []int) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pathCostLocked(path)
}

func (b *Brain) pathCostLocked(path []int) float64 {
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		total += b.view.Weight(path[i], path[i+1])
	}
	return total
}

// Segment is one answer in a batched segment lookup: the best current
// path for the pair plus its Eq. 2 cost. An empty Path (Cost +Inf)
// means the pair has no usable route in this Brain's view.
type Segment struct {
	Path []int
	Cost float64
}

func (b *Brain) segmentLocked(src, dst int) Segment {
	paths := b.pathsLocked(src, dst)
	if len(paths) == 0 {
		return Segment{Cost: math.Inf(1)}
	}
	return Segment{Path: paths[0], Cost: b.pathCostLocked(paths[0])}
}

// LookupSegments answers a batch of same-source path queries under one
// lock acquisition: for each destination, the best current path
// src→dst with its cost. The federation front-end uses it to fetch a
// producer's segments to every candidate gateway (and a shard's digest
// row) as one shard query instead of one query per gateway.
func (b *Brain) LookupSegments(src int, dsts []int) []Segment {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Segment, len(dsts))
	for i, d := range dsts {
		out[i] = b.segmentLocked(src, d)
	}
	return out
}

// LookupSegmentsInto is the reverse batch: the best current path
// src→dst for each source — the destination shard's gateway→consumer
// segments, fetched as one query.
func (b *Brain) LookupSegmentsInto(srcs []int, dst int) []Segment {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Segment, len(srcs))
	for i, s := range srcs {
		out[i] = b.segmentLocked(s, dst)
	}
	return out
}

// ViewVersion returns the view's version counter — the cheap staleness
// check the federation's digest exporter keys on: a shard's digest is
// rebuilt only when this moves.
func (b *Brain) ViewVersion() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.view.Version()
}

// SortedPIBKeys returns the current PIB keys in (src, dst) order — the
// deterministic walk order for callers that fold PIB state into reports.
func (b *Brain) SortedPIBKeys() [][2]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([][2]int, 0, len(b.pib))
	for k := range b.pib {
		out = append(out, [2]int{k.src, k.dst})
	}
	sort.Slice(out, func(a, c int) bool {
		if out[a][0] != out[c][0] {
			return out[a][0] < out[c][0]
		}
		return out[a][1] < out[c][1]
	})
	return out
}
