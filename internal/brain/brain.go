// Package brain implements the Streaming Brain (§4): the logically
// centralized controller of LiveNet's flat CDN. It is composed of the
// four modules of Figure 4:
//
//   - Global Discovery collects link/node metrics reported by overlay
//     nodes (1-minute reports) and real-time overload alarms (80% target).
//   - Global Routing abstracts link weights (Eq. 2–3) and computes k=3
//     candidate paths per node pair with Yen's KSP, filtered by the ≤3-hop
//     and overload constraints.
//   - Path Decision serves path lookups from consumer nodes out of the
//     Path Information Base (PIB), falling back to last-resort paths
//     through reserved well-peered relays when every candidate violates
//     the constraints.
//   - Stream Management tracks which producer node carries each live
//     stream in the Stream Information Base (SIB).
//
// One deliberate implementation difference from the paper: instead of
// recomputing all N² pairs every 10 minutes eagerly, the PIB is filled
// lazily per requested pair and cached for the current routing epoch
// (epochs advance on the same 10-minute period). The produced paths are
// identical; only the computation schedule differs, which keeps a
// 600-node simulation affordable. An eager RecomputeAll is provided for
// benchmarks that want the paper's schedule.
package brain

import (
	"errors"
	"sync"
	"time"

	"livenet/internal/graph"
	"livenet/internal/ksp"
	"livenet/internal/sim"
	"livenet/internal/telemetry"
)

// Defaults from the paper.
const (
	DefaultK          = 3
	DefaultMaxHops    = 3
	DefaultRouteEpoch = 10 * time.Minute
)

// ErrUnknownStream is returned when the SIB has no producer for a stream.
var ErrUnknownStream = errors.New("brain: unknown stream")

// Config configures the Brain.
type Config struct {
	// N is the number of overlay nodes (IDs 0..N-1).
	N int
	// K is the number of candidate paths per pair (default 3).
	K int
	// MaxHops bounds path length in overlay links (default 3).
	MaxHops int
	// RouteEpoch is the Global Routing recomputation period (default 10 m).
	RouteEpoch time.Duration
	// LastResort lists reserved well-peered relay node IDs (§4.3).
	LastResort []int
	// Clock drives epoch advancement; nil means epochs advance only via
	// AdvanceEpoch (useful in unit tests).
	Clock sim.Clock
	// StaleAfter ages out link/node entries that Global Discovery has not
	// refreshed within this window: they are marked down so routing avoids
	// elements whose owner stopped reporting (a crashed node cannot report
	// its own failure). Zero disables aging; it needs Clock to run.
	StaleAfter time.Duration
	// Telemetry is the registry the Brain registers its brain.* counters
	// in (see OBSERVABILITY.md). Nil disables registration at zero cost.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = DefaultK
	}
	if c.MaxHops <= 0 {
		c.MaxHops = DefaultMaxHops
	}
	if c.RouteEpoch <= 0 {
		c.RouteEpoch = DefaultRouteEpoch
	}
	return c
}

// Metrics are the Brain's cumulative counters.
type Metrics struct {
	Lookups        uint64
	PIBHits        uint64
	PIBMisses      uint64
	LastResortUsed uint64
	OverloadAlarms uint64
	StreamsActive  int
}

type pairKey struct{ src, dst int }

type pibEntry struct {
	epoch uint64
	paths []ksp.Path
}

// Brain is the Streaming Brain.
type Brain struct {
	mu  sync.Mutex
	cfg Config

	view  *graph.Graph // global view maintained by Global Discovery
	epoch uint64

	pib map[pairKey]*pibEntry
	sib map[uint32]int // stream ID -> producer node

	// Per-node telemetry ingested by Global Discovery (nil until the
	// first ReportNodeTelemetry): metric snapshots and carried streams,
	// aggregated on demand by GlobalView.
	nodeTel     map[int]telemetry.Snapshot
	nodeStreams map[int][]uint32

	tel     brainInstruments
	timer   sim.Timer
	ageTick sim.Timer
	closed  bool

	// Staleness stamps for Global Discovery aging (nil when disabled).
	linkSeen map[pairKey]time.Duration
	nodeSeen []time.Duration

	// Dense-mesh fast path (see dense.go).
	dense      bool
	denseW     []float64
	denseEpoch uint64
}

// New creates a Brain over n nodes.
func New(cfg Config) *Brain {
	cfg = cfg.withDefaults()
	b := &Brain{
		cfg:  cfg,
		view: graph.New(cfg.N),
		pib:  make(map[pairKey]*pibEntry),
		sib:  make(map[uint32]int),
		tel:  newBrainInstruments(cfg.Telemetry),
	}
	if cfg.Clock != nil {
		b.scheduleEpoch()
	}
	if cfg.Clock != nil && cfg.StaleAfter > 0 {
		// Grace-stamp every node at creation so a node is only aged out
		// after it has had a full window to produce its first report.
		now := cfg.Clock.Now()
		b.linkSeen = make(map[pairKey]time.Duration)
		b.nodeSeen = make([]time.Duration, cfg.N)
		for i := range b.nodeSeen {
			b.nodeSeen[i] = now
		}
		b.scheduleAge()
	}
	return b
}

func (b *Brain) scheduleAge() {
	b.ageTick = b.cfg.Clock.AfterFunc(b.cfg.StaleAfter/2, func() {
		b.sweepStale()
		b.mu.Lock()
		if !b.closed {
			b.scheduleAge()
		}
		b.mu.Unlock()
	})
}

// sweepStale marks links and nodes whose reports aged past StaleAfter as
// down (and revives ones that resumed reporting — SetLink already clears
// link state on a fresh report). Any change invalidates the PIB so the
// next lookup routes around the failed elements.
func (b *Brain) sweepStale() {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Clock.Now()
	changed := false
	for k, seen := range b.linkSeen {
		if now-seen > b.cfg.StaleAfter {
			if l := b.view.Link(k.src, k.dst); l != nil && !l.Down {
				b.view.SetLinkDown(k.src, k.dst, true)
				changed = true
			}
		}
	}
	for id, seen := range b.nodeSeen {
		stale := now-seen > b.cfg.StaleAfter
		if stale != b.view.NodeDown(id) {
			b.view.SetNodeDown(id, stale)
			changed = true
		}
	}
	if changed {
		b.epoch++
	}
}

func (b *Brain) scheduleEpoch() {
	b.timer = b.cfg.Clock.AfterFunc(b.cfg.RouteEpoch, func() {
		b.AdvanceEpoch()
		b.mu.Lock()
		if !b.closed {
			b.scheduleEpoch()
		}
		b.mu.Unlock()
	})
}

// Close stops the epoch timer.
func (b *Brain) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	if b.timer != nil {
		b.timer.Stop()
	}
	if b.ageTick != nil {
		b.ageTick.Stop()
	}
}

// Metrics returns a snapshot of the counters. The struct view is kept for
// existing callers; the same values live in the telemetry registry under
// the brain.* names when one is attached.
func (b *Brain) Metrics() Metrics {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Metrics{
		Lookups:        b.tel.lookups.Load(),
		PIBHits:        b.tel.pibHits.Load(),
		PIBMisses:      b.tel.pibMisses.Load(),
		LastResortUsed: b.tel.lastResortUsed.Load(),
		OverloadAlarms: b.tel.overloadAlarms.Load(),
		StreamsActive:  len(b.sib),
	}
}

// AdvanceEpoch invalidates the PIB so paths are recomputed against the
// latest global view (the 10-minute Global Routing cycle).
func (b *Brain) AdvanceEpoch() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.epoch++
}

// --- Global Discovery ---

// ReportLink ingests one link measurement from a node's periodic report.
// A report on a previously-down link revives it (and invalidates the PIB
// so recomputed paths may use it again).
func (b *Brain) ReportLink(from, to int, rtt time.Duration, loss, util float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wasDown := false
	if l := b.view.Link(from, to); l != nil {
		wasDown = l.Down
	}
	b.view.SetLink(from, to, rtt, loss, util)
	if wasDown {
		b.epoch++
	}
	if b.linkSeen != nil {
		now := b.cfg.Clock.Now()
		b.linkSeen[pairKey{from, to}] = now
		// A node that reports a link is alive, whatever its load says.
		b.nodeSeen[from] = now
	}
}

// ReportLinkDown ingests an immediate link-failure report (a neighbor's
// probes time out, §4.2): the link is excluded from routing at once.
func (b *Brain) ReportLinkDown(from, to int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if l := b.view.Link(from, to); l != nil && !l.Down {
		b.view.SetLinkDown(from, to, true)
		b.epoch++
	}
}

// ReportNodeDown ingests an immediate node-failure report; ReportNodeLoad
// (or staleness recovery) revives the node.
func (b *Brain) ReportNodeDown(id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.view.NodeDown(id) {
		b.view.SetNodeDown(id, true)
		b.epoch++
	}
}

// ReportNodeLoad ingests a node's combined load metric (§4.2 footnote 4).
func (b *Brain) ReportNodeLoad(id int, util float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.view.SetNodeUtil(id, util)
	if b.view.NodeDown(id) {
		b.view.SetNodeDown(id, false)
		b.epoch++
	}
	if b.nodeSeen != nil {
		b.nodeSeen[id] = b.cfg.Clock.Now()
	}
}

// OverloadAlarm handles a real-time alarm: the node's paths must be
// invalidated immediately rather than waiting for the next epoch (§4.2).
// Recording the reported utilization in the view makes the Path
// Decision's validity filter reject paths through it at once.
func (b *Brain) OverloadAlarm(id int, util float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tel.overloadAlarms.Inc()
	b.view.SetNodeUtil(id, util)
}

// LinkOverloadAlarm is the link-level variant.
func (b *Brain) LinkOverloadAlarm(from, to int, util float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tel.overloadAlarms.Inc()
	if l := b.view.Link(from, to); l != nil {
		b.view.SetLink(from, to, l.RTT, l.Loss, util)
	}
}

// View returns a snapshot clone of the global view (for the evaluation
// harness and ablations).
func (b *Brain) View() *graph.Graph {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.view.Clone()
}

// --- Stream Management ---

// RegisterStream records a stream's producer node in the SIB.
func (b *Brain) RegisterStream(sid uint32, producer int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sib[sid] = producer
	b.tel.streamsActive.Set(float64(len(b.sib)))
}

// UnregisterStream removes a finished stream.
func (b *Brain) UnregisterStream(sid uint32) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.sib, sid)
	b.tel.streamsActive.Set(float64(len(b.sib)))
}

// Producer looks up a stream's producer node.
func (b *Brain) Producer(sid uint32) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.sib[sid]
	return p, ok
}

// --- Path Decision (Algorithm 1, GetPath) ---

// Lookup serves a path request: stream ID + consumer node → up to K
// candidate paths (producer→consumer node sequences) ordered by
// preference. Paths with overloaded links/nodes are deleted (IsInvalid);
// when none survive, a last-resort path through a reserved relay is
// returned.
func (b *Brain) Lookup(sid uint32, consumer int) ([][]int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tel.lookups.Inc()
	producer, ok := b.sib[sid]
	if !ok {
		return nil, ErrUnknownStream
	}
	return b.pathsLocked(producer, consumer), nil
}

// LookupByProducer is like Lookup but bypasses the SIB (used for
// prefetching and the Hier baseline comparison harness).
func (b *Brain) LookupByProducer(producer, consumer int) [][]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pathsLocked(producer, consumer)
}

func (b *Brain) pathsLocked(producer, consumer int) [][]int {
	if producer == consumer {
		return [][]int{{producer}} // 0-hop path: one node is both roles
	}
	entry := b.pibEntryLocked(producer, consumer)

	// Validity filter: delete paths with overloaded nodes/links
	// (Algorithm 1 lines 14–18).
	out := make([][]int, 0, len(entry.paths))
	for _, p := range entry.paths {
		if !b.view.PathOverloaded(p.Nodes) {
			out = append(out, append([]int(nil), p.Nodes...))
		}
	}
	if len(out) > 0 {
		return out
	}
	// Last resort (§4.3): producer → reserved relay → consumer.
	if lr := b.lastResortLocked(producer, consumer); lr != nil {
		b.tel.lastResortUsed.Inc()
		return [][]int{lr}
	}
	return nil
}

// pibEntryLocked returns the cached PIB entry for a pair, computing it if
// absent or stale (lazy variant of the 10-minute Global Routing run).
func (b *Brain) pibEntryLocked(src, dst int) *pibEntry {
	k := pairKey{src, dst}
	if e, ok := b.pib[k]; ok && e.epoch == b.epoch {
		b.tel.pibHits.Inc()
		return e
	}
	b.tel.pibMisses.Inc()
	e := &pibEntry{epoch: b.epoch, paths: b.computePaths(src, dst)}
	b.pib[k] = e
	return e
}

// computePaths is the Global Routing two-step solution (§4.3): KSP on the
// abstracted weights, then constraint filtering (length only — overload
// filtering happens at decision time so alarms take effect immediately).
func (b *Brain) computePaths(src, dst int) []ksp.Path {
	if b.dense {
		return b.computePathsDense(src, dst)
	}
	// The per-neighbor weight cache persists across lookups within an
	// epoch, so Yen's Dijkstra probes skip the per-edge map lookups.
	paths := ksp.YenNW(b.cfg.N, src, dst, b.cfg.K, b.view.NeighborWeights)
	out := paths[:0]
	for _, p := range paths {
		if p.Hops() <= b.cfg.MaxHops {
			out = append(out, p)
		}
	}
	return out
}

// lastResortLocked builds producer → LR → consumer through the best
// reserved relay. Last-resort nodes are exempt from the overload filter —
// they are capacity reserved specifically for this (§4.3).
func (b *Brain) lastResortLocked(producer, consumer int) []int {
	bestCost := -1.0
	var best []int
	for _, lr := range b.cfg.LastResort {
		if lr == producer || lr == consumer {
			continue
		}
		// Skip relays known to be failed. Legs that merely lack
		// measurements (Inf weight at bootstrap) stay eligible — the Brain
		// must answer before the first discovery reports arrive.
		if b.view.NodeDown(lr) {
			continue
		}
		if l := b.view.Link(producer, lr); l != nil && l.Down {
			continue
		}
		if l := b.view.Link(lr, consumer); l != nil && l.Down {
			continue
		}
		w1 := b.view.Weight(producer, lr)
		w2 := b.view.Weight(lr, consumer)
		if w1+w2 < 0 {
			continue
		}
		if cost := w1 + w2; best == nil || cost < bestCost {
			bestCost = cost
			best = []int{producer, lr, consumer}
		}
	}
	return best
}

// RecomputeAll eagerly fills the PIB for every pair at the current epoch
// (the paper's 10-minute batch run; used by benchmarks).
func (b *Brain) RecomputeAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for s := 0; s < b.cfg.N; s++ {
		for d := 0; d < b.cfg.N; d++ {
			if s != d {
				b.pibEntryLocked(s, d)
			}
		}
	}
}

// PrefetchPaths computes candidate paths from a popular stream's producer
// to every node, for proactive installation on overlay nodes ahead of
// viewer arrival (§4.4).
func (b *Brain) PrefetchPaths(sid uint32) (map[int][][]int, error) {
	b.mu.Lock()
	producer, ok := b.sib[sid]
	b.mu.Unlock()
	if !ok {
		return nil, ErrUnknownStream
	}
	out := make(map[int][][]int, b.cfg.N)
	for d := 0; d < b.cfg.N; d++ {
		if d == producer {
			continue
		}
		b.mu.Lock()
		paths := b.pathsLocked(producer, d)
		b.mu.Unlock()
		if len(paths) > 0 {
			out[d] = paths
		}
	}
	return out, nil
}
