package brain

import (
	"fmt"
	"sort"
	"strings"

	"livenet/internal/stats"
	"livenet/internal/telemetry"
)

// brainInstruments are the Brain's registered telemetry handles (see
// OBSERVABILITY.md for the catalogue). With a nil registry they are
// unregistered instruments that still count, at identical cost.
type brainInstruments struct {
	lookups               *telemetry.Counter
	pibHits               *telemetry.Counter
	pibMisses             *telemetry.Counter
	pibInvalidated        *telemetry.Counter
	invalidateIncremental *telemetry.Counter
	invalidateFull        *telemetry.Counter
	lastResortUsed        *telemetry.Counter
	overloadAlarms        *telemetry.Counter
	streamsActive         *telemetry.Gauge
}

func newBrainInstruments(r *telemetry.Registry) brainInstruments {
	return brainInstruments{
		lookups:               r.Counter("brain.lookups"),
		pibHits:               r.Counter("brain.pib_hits"),
		pibMisses:             r.Counter("brain.pib_misses"),
		pibInvalidated:        r.Counter("brain.pib_invalidated"),
		invalidateIncremental: r.Counter("brain.pib_invalidate_incremental"),
		invalidateFull:        r.Counter("brain.pib_invalidate_full"),
		lastResortUsed:        r.Counter("brain.last_resort_used"),
		overloadAlarms:        r.Counter("brain.overload_alarms"),
		streamsActive:         r.Gauge("brain.streams_active"),
	}
}

// ReportNodeTelemetry ingests a node's periodic telemetry attachment: a
// snapshot of its metrics registry and the IDs of the streams it currently
// carries. It extends the node's existing Global Discovery report (§4.2) —
// it does not advance the routing epoch or touch the PIB, so attaching
// telemetry never changes path decisions.
func (b *Brain) ReportNodeTelemetry(id int, snap telemetry.Snapshot, streams []uint32) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.nodeTel == nil {
		b.nodeTel = make(map[int]telemetry.Snapshot)
		b.nodeStreams = make(map[int][]uint32)
	}
	b.nodeTel[id] = snap
	b.nodeStreams[id] = append(b.nodeStreams[id][:0], streams...)
}

// GlobalView is the Brain's aggregated fleet-health summary, built from
// the Global Discovery view plus ingested node telemetry. eval and
// `livenet-bench -telemetry` render it as text tables.
type GlobalView struct {
	Nodes      int // overlay size
	NodesDown  int // marked down (failure reports or staleness)
	NodesStale int // no report within StaleAfter (subset of down once swept)
	Links      int // links with at least one measurement
	LinksDown  int

	MeanLinkUtil float64
	MaxLinkUtil  float64
	MeanLinkLoss float64
	MaxLinkLoss  float64

	Streams int // SIB entries (live streams)
	// FanOut maps each stream to its fan-out depth: how many overlay nodes
	// currently carry it (producer + relays + consumers), per the latest
	// node reports.
	FanOut map[uint32]int
	// Producers maps each SIB stream to its producer node.
	Producers map[uint32]int

	// NodeTelemetry holds the latest ingested per-node snapshots, and
	// Fleet their merged sum (counters/histograms added, gauges maxed).
	NodeTelemetry map[int]telemetry.Snapshot
	Fleet         telemetry.Snapshot
}

// GlobalView aggregates the Brain's current fleet health.
func (b *Brain) GlobalView() GlobalView {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := GlobalView{
		Nodes:     b.cfg.N,
		Streams:   len(b.sib),
		Producers: make(map[uint32]int, len(b.sib)),
	}
	for sid, p := range b.sib {
		v.Producers[sid] = p
	}
	for i := 0; i < b.cfg.N; i++ {
		if b.view.NodeDown(i) {
			v.NodesDown++
		}
	}
	if b.nodeSeen != nil {
		now := b.cfg.Clock.Now()
		for id, seen := range b.nodeSeen {
			if b.owns(id) && now-seen > b.cfg.StaleAfter {
				v.NodesStale++
			}
		}
	}
	for i := 0; i < b.cfg.N; i++ {
		for j := 0; j < b.cfg.N; j++ {
			l := b.view.Link(i, j)
			if l == nil {
				continue
			}
			v.Links++
			if l.Down {
				v.LinksDown++
				continue
			}
			v.MeanLinkUtil += l.Util
			v.MeanLinkLoss += l.Loss
			if l.Util > v.MaxLinkUtil {
				v.MaxLinkUtil = l.Util
			}
			if l.Loss > v.MaxLinkLoss {
				v.MaxLinkLoss = l.Loss
			}
		}
	}
	if up := v.Links - v.LinksDown; up > 0 {
		v.MeanLinkUtil /= float64(up)
		v.MeanLinkLoss /= float64(up)
	}
	if b.nodeTel != nil {
		v.FanOut = make(map[uint32]int)
		v.NodeTelemetry = make(map[int]telemetry.Snapshot, len(b.nodeTel))
		ids := make([]int, 0, len(b.nodeTel))
		for id := range b.nodeTel {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			v.NodeTelemetry[id] = b.nodeTel[id]
			v.Fleet.Merge(b.nodeTel[id])
			for _, sid := range b.nodeStreams[id] {
				v.FanOut[sid]++
			}
		}
	}
	return v
}

// String renders the view as deterministic (sorted) text tables.
func (v GlobalView) String() string {
	var b strings.Builder
	t := &stats.Table{Header: []string{
		"nodes", "down", "stale", "links", "links down",
		"mean util", "max util", "mean loss", "max loss", "streams",
	}}
	t.AddRow(
		fmt.Sprintf("%d", v.Nodes), fmt.Sprintf("%d", v.NodesDown),
		fmt.Sprintf("%d", v.NodesStale), fmt.Sprintf("%d", v.Links),
		fmt.Sprintf("%d", v.LinksDown),
		fmt.Sprintf("%.3f", v.MeanLinkUtil), fmt.Sprintf("%.3f", v.MaxLinkUtil),
		fmt.Sprintf("%.4f", v.MeanLinkLoss), fmt.Sprintf("%.4f", v.MaxLinkLoss),
		fmt.Sprintf("%d", v.Streams),
	)
	b.WriteString("Brain GlobalView — fleet health\n")
	b.WriteString(t.String())

	if len(v.FanOut) > 0 {
		sids := make([]uint32, 0, len(v.FanOut))
		for sid := range v.FanOut {
			sids = append(sids, sid)
		}
		// Deepest fan-out first; ties by stream ID for determinism.
		sort.Slice(sids, func(a, c int) bool {
			if v.FanOut[sids[a]] != v.FanOut[sids[c]] {
				return v.FanOut[sids[a]] > v.FanOut[sids[c]]
			}
			return sids[a] < sids[c]
		})
		const topN = 10
		shown := sids
		if len(shown) > topN {
			shown = shown[:topN]
		}
		ft := &stats.Table{Header: []string{"stream", "producer", "fan-out (nodes)"}}
		for _, sid := range shown {
			prod := "?"
			if p, ok := v.Producers[sid]; ok {
				prod = fmt.Sprintf("%d", p)
			}
			ft.AddRow(fmt.Sprintf("%d", sid), prod, fmt.Sprintf("%d", v.FanOut[sid]))
		}
		fmt.Fprintf(&b, "\nper-stream fan-out depth (top %d of %d)\n", len(shown), len(sids))
		b.WriteString(ft.String())
	}

	if !v.Fleet.Empty() {
		b.WriteString("\nfleet node telemetry (merged across reports)\n")
		b.WriteString(v.Fleet.String())
	}
	return b.String()
}
