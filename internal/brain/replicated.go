package brain

import (
	"encoding/binary"

	"livenet/internal/replication"
	"livenet/internal/sim"
)

// ReplicatedBrain geo-replicates Stream Management state across several
// Brain replicas with the Paxos-like scheme of §7.1 ("While logically
// centralized, the Streaming Brain is deployed on multiple geo-replicated
// data centers... We maintain consistency using a Paxos-like scheme").
// Stream registrations/unregistrations are proposed to the replicated log
// and applied to every replica's SIB in commit order, so any replica's
// Path Decision module answers lookups with a consistent view.
//
// (The PIB needs no consensus: it is soft state recomputed from Global
// Discovery reports, which every replica receives; only the SIB is
// authoritative configuration.)
type ReplicatedBrain struct {
	// Local is this site's Brain (answers lookups locally).
	Local   *Brain
	id      int
	replica *replication.Replica
	// extra handles committed log entries that are not SIB ops (e.g. the
	// federation's stitch-cache entries). Set before any commit arrives.
	extra func(value []byte)
}

// SIB log entry encoding: op byte + stream ID + producer.
const (
	opRegister   = 1
	opUnregister = 2
)

func encodeSIBOp(op byte, sid uint32, producer uint16) []byte {
	buf := make([]byte, 7)
	buf[0] = op
	binary.BigEndian.PutUint32(buf[1:], sid)
	binary.BigEndian.PutUint16(buf[5:], producer)
	return buf
}

// NewReplicated wraps a local Brain as one replica of a geo-replicated
// deployment. id/peers/transport configure the Paxos group; clock drives
// proposal retries.
func NewReplicated(local *Brain, id int, peers []int, tr replication.Transport, clock sim.Clock) *ReplicatedBrain {
	rb := &ReplicatedBrain{Local: local, id: id}
	rb.replica = replication.NewReplica(id, peers, tr, clock)
	rb.replica.OnCommit = func(_ int, value []byte) {
		if len(value) == 7 && (value[0] == opRegister || value[0] == opUnregister) {
			sid := binary.BigEndian.Uint32(value[1:])
			producer := binary.BigEndian.Uint16(value[5:])
			switch value[0] {
			case opRegister:
				local.RegisterStream(sid, int(producer))
			case opUnregister:
				local.UnregisterStream(sid)
			}
			return
		}
		if rb.extra != nil {
			rb.extra(value)
		}
	}
	return rb
}

// SetExtraOpHandler installs the handler for committed log entries other
// than SIB ops. Install it right after construction, before proposals.
func (rb *ReplicatedBrain) SetExtraOpHandler(fn func(value []byte)) {
	rb.extra = fn
}

// ProposeOp proposes an arbitrary log entry (routed to the extra-op
// handler on commit at every replica).
func (rb *ReplicatedBrain) ProposeOp(value []byte) {
	rb.replica.Propose(value)
}

// Replica exposes the underlying Paxos replica (for transport wiring).
func (rb *ReplicatedBrain) Replica() *replication.Replica { return rb.replica }

// OnMessage is the transport delivery entry point for Paxos traffic.
func (rb *ReplicatedBrain) OnMessage(from int, m replication.Msg) {
	rb.replica.OnMessage(from, m)
}

// RegisterStream proposes the registration to the replicated log; it is
// applied everywhere (including locally) on commit.
func (rb *ReplicatedBrain) RegisterStream(sid uint32, producer int) {
	rb.replica.Propose(encodeSIBOp(opRegister, sid, uint16(producer)))
}

// UnregisterStream proposes the removal.
func (rb *ReplicatedBrain) UnregisterStream(sid uint32) {
	rb.replica.Propose(encodeSIBOp(opUnregister, sid, 0))
}

// ID returns this replica's identity in the Paxos group.
func (rb *ReplicatedBrain) ID() int { return rb.id }

// Lookup serves a path request from the local replica's view.
func (rb *ReplicatedBrain) Lookup(sid uint32, consumer int) ([][]int, error) {
	return rb.Local.Lookup(sid, consumer)
}

// LookupServed is Lookup plus attribution: it also returns which replica
// answered, so callers can record home-vs-failover serving in telemetry
// (a lookup served by a non-home replica is a failover; in a federated
// deployment the same attribution distinguishes shard-local fallbacks).
func (rb *ReplicatedBrain) LookupServed(sid uint32, consumer int) ([][]int, int, error) {
	paths, err := rb.Local.Lookup(sid, consumer)
	return paths, rb.id, err
}

// Close stops the replica's timers.
func (rb *ReplicatedBrain) Close() {
	rb.replica.Close()
	rb.Local.Close()
}
