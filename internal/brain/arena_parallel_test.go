package brain

import (
	"fmt"
	"testing"
	"time"

	"livenet/internal/runner"
	"livenet/internal/sim"
)

// randomTopology reports a randomized sparse digraph into a brain: a
// directed ring (so every pair resolves) plus ~20% of the remaining
// ordered pairs, with randomized RTT/loss/util. The same seed produces
// the same reports, so two brains fed the same seed see one topology.
func randomTopology(b *Brain, n int, seed int64) {
	rng := sim.NewSource(seed).Stream("topo")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			ring := j == (i+1)%n
			if !ring && rng.Float64() > 0.2 {
				continue
			}
			rtt := time.Duration(1500+rng.Intn(120000)) * time.Microsecond
			b.ReportLink(i, j, rtt, rng.Float64()*0.01, rng.Float64()*0.8)
		}
	}
}

// TestArenaParallelColdEpochMatchesSerial is the worker-arena
// determinism pin: a from-scratch routing epoch fanned across
// worker-pinned arenas must produce byte-identical PIB contents and
// served paths to the serial schedule, across randomized sparse
// topologies and pool sizes (run under -race, this also proves the
// pinned arenas never share state across workers).
func TestArenaParallelColdEpochMatchesSerial(t *testing.T) {
	for _, n := range []int{19, 37} {
		for seed := int64(1); seed <= 3; seed++ {
			for _, workers := range []int{2, 3, 8} {
				t.Run(fmt.Sprintf("n=%d/seed=%d/workers=%d", n, seed, workers), func(t *testing.T) {
					par := New(Config{N: n, Recompute: runner.Options{Workers: workers}})
					defer par.Close()
					ser := New(Config{N: n, Recompute: runner.Serial()})
					defer ser.Close()
					for _, b := range []*Brain{par, ser} {
						randomTopology(b, n, seed)
						b.RegisterStream(9, int(seed)%n)
					}

					// Cold epoch: every pair recomputed through the pools.
					par.RecomputeAll()
					ser.RecomputeAll()
					comparePairs(t, "cold", n, par, ser)

					// Prefetch exercises the per-producer fan-out path.
					pm, err1 := par.PrefetchPaths(9)
					sm, err2 := ser.PrefetchPaths(9)
					if err1 != nil || err2 != nil {
						t.Fatalf("prefetch: %v / %v", err1, err2)
					}
					for d := range pm {
						if !pathsEqual(pm[d], sm[d]) {
							t.Fatalf("prefetch dst %d diverged", d)
						}
					}

					// A second cold epoch reuses the now-grown arenas —
					// the steady state the allocation-free claim is about.
					par.InvalidateAll()
					ser.InvalidateAll()
					par.RecomputeAll()
					ser.RecomputeAll()
					comparePairs(t, "warm-arena", n, par, ser)
				})
			}
		}
	}
}
