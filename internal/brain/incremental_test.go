package brain

import (
	"fmt"
	"testing"
	"time"

	"livenet/internal/runner"
	"livenet/internal/sim"
)

// pathsEqual compares two served candidate lists deeply.
func pathsEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// comparePairs asserts both brains serve identical paths for every pair.
func comparePairs(t *testing.T, tag string, n int, x, y *Brain) {
	t.Helper()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			if px, py := x.LookupByProducer(s, d), y.LookupByProducer(s, d); !pathsEqual(px, py) {
				t.Fatalf("%s: pair (%d,%d) diverged:\n  %v\nvs\n  %v", tag, s, d, px, py)
			}
		}
	}
}

// TestIncrementalMatchesRecompute is the correctness property behind
// incremental epochs: across randomized sequences of link-weight changes,
// link/node failures, revivals, and overload alarms, the brain that keeps
// provably-unaffected PIB entries serves exactly the paths of a control
// brain whose cache is dropped from scratch every round.
func TestIncrementalMatchesRecompute(t *testing.T) {
	const n = 18
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := sim.NewSource(seed).Stream("prop")
			inc := New(Config{N: n})
			ref := New(Config{N: n})
			both := func(f func(b *Brain)) { f(inc); f(ref) }

			// Identical random full-mesh metrics (continuous weights: ties
			// have measure zero, so equal-cost ambiguity cannot occur).
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					rtt := time.Duration(3000+rng.Intn(120000)) * time.Microsecond
					loss := rng.Float64() * 0.01
					util := rng.Float64() * 0.6
					both(func(b *Brain) { b.ReportLink(i, j, rtt, loss, util) })
				}
			}
			both(func(b *Brain) { b.AdvanceEpoch() })
			comparePairs(t, "warmup", n, inc, ref)

			for round := 0; round < 8; round++ {
				for m, muts := 0, 1+rng.Intn(6); m < muts; m++ {
					i := rng.Intn(n)
					j := rng.Intn(n - 1)
					if j >= i {
						j++
					}
					switch rng.Intn(6) {
					case 0, 1, 2: // routine metric drift
						rtt := time.Duration(3000+rng.Intn(120000)) * time.Microsecond
						loss := rng.Float64() * 0.01
						util := rng.Float64() * 0.6
						both(func(b *Brain) { b.ReportLink(i, j, rtt, loss, util) })
					case 3: // probe timeout: immediate link failure
						both(func(b *Brain) { b.ReportLinkDown(i, j) })
					case 4: // node failure or revival via a load report
						if rng.Bernoulli(0.5) {
							both(func(b *Brain) { b.ReportNodeDown(i) })
						} else {
							util := rng.Float64() * 0.5
							both(func(b *Brain) { b.ReportNodeLoad(i, util) })
						}
					case 5: // real-time overload alarm
						util := 0.82 + rng.Float64()*0.15
						both(func(b *Brain) { b.OverloadAlarm(i, util) })
					}
				}
				// Incremental routing round vs from-scratch control.
				inc.AdvanceEpoch()
				ref.InvalidateAll()
				comparePairs(t, fmt.Sprintf("round %d", round), n, inc, ref)
			}
		})
	}
}

// deterministicMesh reports the same full-mesh metrics into a brain.
func deterministicMesh(b *Brain, n int, seed int64) {
	rng := sim.NewSource(seed).Stream("mesh")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				rtt := time.Duration(2000+rng.Intn(90000)) * time.Microsecond
				b.ReportLink(i, j, rtt, rng.Float64()*0.005, rng.Float64()*0.5)
			}
		}
	}
}

// TestRecomputeParallelMatchesSerial pins the determinism of the batch
// recompute fan-out: the parallel schedule must produce byte-identical
// PIB contents and served paths to runner.Serial(), across a cold
// RecomputeAll, a PrefetchPaths fill, and a churned incremental round.
func TestRecomputeParallelMatchesSerial(t *testing.T) {
	const n = 24
	par := New(Config{N: n})                        // zero Options: parallel
	ser := New(Config{N: n, Recompute: runner.Serial()})
	for _, b := range []*Brain{par, ser} {
		deterministicMesh(b, n, 11)
		b.RegisterStream(5, 3)
	}

	par.RecomputeAll()
	ser.RecomputeAll()
	pk, sk := par.SortedPIBKeys(), ser.SortedPIBKeys()
	if len(pk) != n*(n-1) || len(pk) != len(sk) {
		t.Fatalf("PIB sizes: parallel %d, serial %d, want %d", len(pk), len(sk), n*(n-1))
	}
	comparePairs(t, "recompute-all", n, par, ser)

	pm, err1 := par.PrefetchPaths(5)
	sm, err2 := ser.PrefetchPaths(5)
	if err1 != nil || err2 != nil {
		t.Fatalf("prefetch: %v / %v", err1, err2)
	}
	if len(pm) != len(sm) {
		t.Fatalf("prefetch sizes differ: %d vs %d", len(pm), len(sm))
	}
	for d := range pm {
		if !pathsEqual(pm[d], sm[d]) {
			t.Fatalf("prefetch dst %d diverged", d)
		}
	}

	// Churn a subset of links and run the incremental round on both.
	rng := sim.NewSource(12).Stream("churn")
	for k := 0; k < 10; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		rtt := time.Duration(2000+rng.Intn(90000)) * time.Microsecond
		for _, b := range []*Brain{par, ser} {
			b.ReportLink(i, j, rtt, 0.001, 0.2)
		}
	}
	par.AdvanceEpoch()
	ser.AdvanceEpoch()
	par.RecomputeAll()
	ser.RecomputeAll()
	comparePairs(t, "churned", n, par, ser)
}

// TestReportOrderIndependence is the map-iteration determinism
// regression: the Brain's served paths are a function of the reported
// state, not of the order reports arrived in (Global Discovery reports
// race in production; the sweep and invalidation walks iterate Go maps).
func TestReportOrderIndependence(t *testing.T) {
	const n = 16
	type rep struct {
		i, j       int
		rtt        time.Duration
		loss, util float64
	}
	var reports []rep
	rng := sim.NewSource(21).Stream("order")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				reports = append(reports, rep{
					i: i, j: j,
					rtt:  time.Duration(2000+rng.Intn(90000)) * time.Microsecond,
					loss: rng.Float64() * 0.005,
					util: rng.Float64() * 0.5,
				})
			}
		}
	}
	fwd := New(Config{N: n})
	rev := New(Config{N: n})
	for _, r := range reports {
		fwd.ReportLink(r.i, r.j, r.rtt, r.loss, r.util)
	}
	for k := len(reports) - 1; k >= 0; k-- {
		r := reports[k]
		rev.ReportLink(r.i, r.j, r.rtt, r.loss, r.util)
	}
	fwd.AdvanceEpoch()
	rev.AdvanceEpoch()
	comparePairs(t, "initial", n, fwd, rev)
	a, b := fwd.SortedPIBKeys(), rev.SortedPIBKeys()
	if len(a) != len(b) {
		t.Fatalf("PIB sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("PIB key %d differs: %v vs %v", i, a[i], b[i])
		}
	}

	// Churn round applied in opposite orders, with a failure in the mix.
	churn := reports[:40]
	fwd.ReportLinkDown(1, 2)
	rev.ReportLinkDown(1, 2)
	for _, r := range churn {
		fwd.ReportLink(r.i, r.j, r.rtt+3*time.Millisecond, r.loss, r.util)
	}
	for k := len(churn) - 1; k >= 0; k-- {
		r := churn[k]
		rev.ReportLink(r.i, r.j, r.rtt+3*time.Millisecond, r.loss, r.util)
	}
	fwd.AdvanceEpoch()
	rev.AdvanceEpoch()
	comparePairs(t, "churned", n, fwd, rev)
}

// TestIncrementalWorkReduction asserts the structural win: a routing
// round where ~1% of links drifted drops only the affected sliver of the
// PIB, and the refill recomputes exactly the dropped entries.
func TestIncrementalWorkReduction(t *testing.T) {
	const n = 32
	b := New(Config{N: n})
	deterministicMesh(b, n, 31)
	b.AdvanceEpoch()
	b.RecomputeAll()
	pairs := uint64(n * (n - 1))
	base := b.tel.pibMisses.Load()
	if base != pairs {
		t.Fatalf("cold recompute misses = %d, want %d", base, pairs)
	}

	// Drift 10 links (~1% of the 992 directed links) upward.
	rng := sim.NewSource(32).Stream("drift")
	for k := 0; k < 10; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		l := b.View().Link(i, j)
		b.ReportLink(i, j, l.RTT+2*time.Millisecond, l.Loss, l.Util)
	}
	b.AdvanceEpoch()
	if got := b.tel.invalidateIncremental.Load(); got != 1 {
		t.Fatalf("incremental rounds = %d, want 1 (full fallback taken?)", got)
	}
	dropped := b.tel.pibInvalidated.Load()
	b.RecomputeAll()
	refilled := b.tel.pibMisses.Load() - base
	if refilled != dropped {
		t.Fatalf("refilled %d entries, but the round dropped %d", refilled, dropped)
	}
	// On a dense mesh popular low-RTT edges sit on many cached paths, so
	// the drop is bigger than the paper-scale sparse-overlay ratio (the
	// benchmarks record that one); here we pin that it stays a strict
	// minority of the PIB instead of the full-invalidation fallback.
	if refilled*2 > pairs {
		t.Fatalf("1%% link drift invalidated %d of %d entries — incremental round did no real work reduction", refilled, pairs)
	}

	// A quiet advance afterwards must be a free no-op.
	before := b.tel.pibInvalidated.Load()
	b.AdvanceEpoch()
	if got := b.tel.pibInvalidated.Load(); got != before {
		t.Fatalf("quiet epoch invalidated %d entries", got-before)
	}
}
