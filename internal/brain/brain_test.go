package brain

import (
	"math"
	"testing"
	"time"

	"livenet/internal/geo"
	"livenet/internal/ksp"
	"livenet/internal/sim"
)

// fullMesh builds a Brain over a synthetic world with a full-mesh view.
func fullMesh(t *testing.T, n int, lastResort []int) (*Brain, *geo.World) {
	t.Helper()
	rng := sim.NewSource(1).Stream("geo")
	cfg := geo.DefaultConfig()
	cfg.NumSites = n
	w := geo.Build(cfg, rng)
	b := New(Config{N: n, LastResort: lastResort})
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.ReportLink(i, j, w.RTT(i, j), w.BaseLoss(i, j), 0.1)
			}
		}
		b.ReportNodeLoad(i, 0.2)
	}
	return b, w
}

func TestLookupUnknownStream(t *testing.T) {
	b, _ := fullMesh(t, 8, nil)
	if _, err := b.Lookup(99, 3); err != ErrUnknownStream {
		t.Fatalf("err = %v", err)
	}
}

func TestLookupReturnsKOrderedPaths(t *testing.T) {
	b, w := fullMesh(t, 16, nil)
	b.RegisterStream(1, 2)
	paths, err := b.Lookup(1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want k=3", len(paths))
	}
	for i, p := range paths {
		if p[0] != 2 || p[len(p)-1] != 11 {
			t.Fatalf("path %d endpoints wrong: %v", i, p)
		}
		if hops := len(p) - 1; hops > DefaultMaxHops {
			t.Fatalf("path %d exceeds max hops: %v", i, p)
		}
	}
	// Preference ordering: nondecreasing weighted cost ≈ nondecreasing RTT
	// on an evenly loaded mesh. At minimum, the best path should not be
	// slower than the direct link.
	direct := w.RTT(2, 11)
	var bestRTT time.Duration
	for i := 0; i+1 < len(paths[0]); i++ {
		bestRTT += w.RTT(paths[0][i], paths[0][i+1])
	}
	if bestRTT > direct {
		t.Fatalf("best path RTT %v worse than direct %v", bestRTT, direct)
	}
}

func TestLookupSameNodeZeroHops(t *testing.T) {
	b, _ := fullMesh(t, 8, nil)
	b.RegisterStream(5, 4)
	paths, err := b.Lookup(5, 4)
	if err != nil || len(paths) != 1 || len(paths[0]) != 1 || paths[0][0] != 4 {
		t.Fatalf("paths = %v err = %v", paths, err)
	}
}

func TestOverloadFiltering(t *testing.T) {
	b, _ := fullMesh(t, 16, nil)
	b.RegisterStream(1, 0)
	paths, _ := b.Lookup(1, 9)
	if len(paths) == 0 {
		t.Fatal("no initial paths")
	}
	// Overload a relay used by the best path (if it has one).
	var victim int = -1
	for _, p := range paths {
		if len(p) > 2 {
			victim = p[1]
			break
		}
	}
	if victim == -1 {
		// All direct: overload the consumer-side link instead by loading
		// an arbitrary middle node; then just assert alarms count.
		victim = 5
	}
	b.OverloadAlarm(victim, 0.95)
	paths2, _ := b.Lookup(1, 9)
	for _, p := range paths2 {
		for _, n := range p[1 : len(p)-1] {
			if n == victim {
				t.Fatalf("overloaded node %d still used in %v", victim, p)
			}
		}
	}
	if b.Metrics().OverloadAlarms != 1 {
		t.Fatalf("alarms = %d", b.Metrics().OverloadAlarms)
	}
}

func TestLastResortPath(t *testing.T) {
	b, _ := fullMesh(t, 12, []int{10, 11})
	b.RegisterStream(1, 0)
	// Overload everything except producer, consumer and the reserved
	// last-resort nodes: every normal path is invalid.
	for i := 1; i < 10; i++ {
		if i != 3 {
			b.OverloadAlarm(i, 0.99)
		}
	}
	// Also the direct link.
	b.LinkOverloadAlarm(0, 3, 0.99)
	paths, err := b.Lookup(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 3 {
		t.Fatalf("want one 2-hop last-resort path, got %v", paths)
	}
	mid := paths[0][1]
	if mid != 10 && mid != 11 {
		t.Fatalf("last-resort relay = %d, want a reserved node", mid)
	}
	if b.Metrics().LastResortUsed != 1 {
		t.Fatalf("LastResortUsed = %d", b.Metrics().LastResortUsed)
	}
}

func TestPIBCachingAndEpoch(t *testing.T) {
	b, _ := fullMesh(t, 10, nil)
	b.RegisterStream(1, 0)
	b.Lookup(1, 5)
	b.Lookup(1, 5)
	m := b.Metrics()
	if m.PIBMisses != 1 || m.PIBHits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", m.PIBHits, m.PIBMisses)
	}
	// An epoch advance with no metric changes since the entry was computed
	// is a no-op: the cached entry provably recomputes to itself.
	b.AdvanceEpoch()
	b.Lookup(1, 5)
	m = b.Metrics()
	if m.PIBMisses != 1 || m.PIBHits != 2 {
		t.Fatalf("quiet epoch advance must keep the PIB: hits=%d misses=%d", m.PIBHits, m.PIBMisses)
	}
	// A changed measurement on the pair's path takes effect at the next
	// epoch: the entry is invalidated and the lookup recomputes.
	b.ReportLink(0, 5, 500*time.Millisecond, 0.2, 0.1)
	b.Lookup(1, 5) // weight changes are deferred to the epoch boundary
	b.AdvanceEpoch()
	b.Lookup(1, 5)
	m = b.Metrics()
	if m.PIBMisses != 2 {
		t.Fatalf("epoch advance should invalidate the dirtied entry: misses=%d", m.PIBMisses)
	}
}

func TestEpochTimerAdvances(t *testing.T) {
	loop := sim.NewLoop(1)
	b := New(Config{N: 4, Clock: loop, RouteEpoch: 10 * time.Minute})
	defer b.Close()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				b.ReportLink(i, j, 10*time.Millisecond, 0, 0)
			}
		}
	}
	b.RegisterStream(1, 0)
	b.Lookup(1, 2)
	// A changed link metric is deferred to the epoch boundary; the timer
	// firing applies it, invalidating the entry whose path uses the link.
	b.ReportLink(0, 2, 80*time.Millisecond, 0, 0)
	b.Lookup(1, 2)
	if m := b.Metrics(); m.PIBMisses != 1 {
		t.Fatalf("misses = %d before the epoch, want 1", m.PIBMisses)
	}
	loop.RunUntil(25 * time.Minute) // two epochs pass
	b.Lookup(1, 2)
	if m := b.Metrics(); m.PIBMisses != 2 {
		t.Fatalf("misses = %d, want 2 after the timer applied the change", m.PIBMisses)
	}
}

func TestStaleNodeAgedOutAndRevived(t *testing.T) {
	// Global Discovery aging: a crashed node cannot report its own
	// failure, so the Brain marks nodes (and links) whose reports age past
	// StaleAfter as down, and revives them when reports resume.
	loop := sim.NewLoop(3)
	const n = 4
	b := New(Config{N: n, Clock: loop, StaleAfter: 2 * time.Second})
	defer b.Close()
	report := func(skip int) {
		for i := 0; i < n; i++ {
			if i == skip {
				continue
			}
			for j := 0; j < n; j++ {
				if i != j {
					b.ReportLink(i, j, 20*time.Millisecond, 0, 0.1)
				}
			}
		}
	}
	b.RegisterStream(1, 0)
	routesVia := func(hop int) bool {
		paths, err := b.Lookup(1, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range paths {
			for _, h := range p {
				if h == hop {
					return true
				}
			}
		}
		return false
	}

	// Everyone reports every 500 ms; node 1 falls silent after t=1s.
	var tick func()
	tick = func() {
		skip := -1
		if loop.Now() >= time.Second {
			skip = 1
		}
		report(skip)
		loop.AfterFunc(500*time.Millisecond, tick)
	}
	tick()

	loop.RunUntil(900 * time.Millisecond)
	if !routesVia(1) {
		t.Fatal("healthy 4-mesh should offer the relay path via node 1")
	}
	loop.RunUntil(6 * time.Second)
	if routesVia(1) {
		t.Fatal("node 1 stopped reporting 5 s ago; routing must avoid it")
	}
	// Node 1 resumes reporting: the next sweep revives it.
	report(-1)
	loop.RunUntil(8 * time.Second)
	if !routesVia(1) {
		t.Fatal("revived node 1 should be routable again")
	}
}

func TestReportLinkDownExcludesImmediately(t *testing.T) {
	b, _ := fullMesh(t, 16, nil)
	b.RegisterStream(1, 2)
	b.ReportLinkDown(2, 11)
	b.ReportLinkDown(11, 2)
	paths, err := b.Lookup(1, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			if p[i] == 2 && p[i+1] == 11 {
				t.Fatalf("dead direct link still used: %v", p)
			}
		}
	}
	// A fresh measurement report revives the link.
	b.ReportLink(2, 11, 10*time.Millisecond, 0, 0.1)
	paths, _ = b.Lookup(1, 11)
	direct := false
	for _, p := range paths {
		if len(p) == 2 {
			direct = true
		}
	}
	if !direct {
		t.Fatal("revived direct link should be routable again")
	}
}

func TestRegisterUnregister(t *testing.T) {
	b, _ := fullMesh(t, 6, nil)
	b.RegisterStream(7, 2)
	if p, ok := b.Producer(7); !ok || p != 2 {
		t.Fatalf("producer = %d ok=%v", p, ok)
	}
	if b.Metrics().StreamsActive != 1 {
		t.Fatal("active streams != 1")
	}
	b.UnregisterStream(7)
	if _, ok := b.Producer(7); ok {
		t.Fatal("stream should be gone")
	}
}

func TestPrefetchPaths(t *testing.T) {
	b, _ := fullMesh(t, 10, nil)
	b.RegisterStream(1, 3)
	m, err := b.PrefetchPaths(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 9 {
		t.Fatalf("prefetched for %d nodes, want 9", len(m))
	}
	for dst, paths := range m {
		if len(paths) == 0 || paths[0][0] != 3 || paths[0][len(paths[0])-1] != dst {
			t.Fatalf("bad prefetch for %d: %v", dst, paths)
		}
	}
	if _, err := b.PrefetchPaths(99); err != ErrUnknownStream {
		t.Fatalf("err = %v", err)
	}
}

func TestRecomputeAllFillsPIB(t *testing.T) {
	b, _ := fullMesh(t, 8, nil)
	b.RecomputeAll()
	m := b.Metrics()
	if m.PIBMisses != 8*7 {
		t.Fatalf("misses = %d, want 56", m.PIBMisses)
	}
	b.RegisterStream(1, 0)
	b.Lookup(1, 7)
	if b.Metrics().PIBMisses != 8*7 {
		t.Fatal("lookup after RecomputeAll should hit the PIB")
	}
}

func TestWeightsAvoidLossyLinks(t *testing.T) {
	// Two routes 0->2: direct (lossy) or via 1 (clean, slightly longer).
	b := New(Config{N: 3})
	b.ReportLink(0, 2, 50*time.Millisecond, 0.30, 0.1) // expected ≈ 65ms
	b.ReportLink(0, 1, 30*time.Millisecond, 0, 0.1)
	b.ReportLink(1, 2, 30*time.Millisecond, 0, 0.1) // total 60ms
	b.RegisterStream(1, 0)
	paths, err := b.Lookup(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths[0]) != 3 || paths[0][1] != 1 {
		t.Fatalf("best path = %v, want the clean relay route", paths[0])
	}
}

func TestMaxHopsFilter(t *testing.T) {
	// A line graph 0-1-2-3-4: the only 0->4 path has 4 hops (> 3) and the
	// pair has no last resort, so lookup must return nothing.
	b := New(Config{N: 5})
	for i := 0; i < 4; i++ {
		b.ReportLink(i, i+1, 10*time.Millisecond, 0, 0.1)
	}
	b.RegisterStream(1, 0)
	paths, err := b.Lookup(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Fatalf("4-hop path should be filtered: %v", paths)
	}
}

// testComputePaths runs Global Routing for one pair and returns the
// hop-filtered candidates, bypassing the PIB.
func testComputePaths(b *Brain, src, dst int) []ksp.Path {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.computeEntryLocked(src, dst).paths
}

func TestDenseMatchesYenOnFullMesh(t *testing.T) {
	rng := sim.NewSource(11).Stream("dense")
	for trial := 0; trial < 5; trial++ {
		n := 12 + trial*4
		mkBrain := func() *Brain {
			b := New(Config{N: n})
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i != j {
						// Deterministic per-trial weights via a fresh RNG pass
						// would desync the two brains, so derive from indices.
						rtt := time.Duration(5+((i*31+j*17+trial*7)%120)) * time.Millisecond
						b.ReportLink(i, j, rtt, 0, 0.1)
					}
				}
			}
			return b
		}
		yen := mkBrain()
		dense := mkBrain()
		dense.EnableDense()
		src := rng.Intn(n)
		dst := (src + 1 + rng.Intn(n-1)) % n
		if src == dst {
			continue
		}
		yp := testComputePaths(yen, src, dst)
		dp := testComputePaths(dense, src, dst)
		// Yen computes the global top-k then filters >3-hop paths (the
		// paper's order), so it may return fewer than k; dense enumerates
		// within the hop constraint and always finds k. Dense must contain
		// every Yen survivor at the same cost, in order, and only produce
		// valid ≤3-hop paths.
		if len(dp) < len(yp) {
			t.Fatalf("n=%d %d->%d: dense %d paths < yen %d", n, src, dst, len(dp), len(yp))
		}
		di := 0
		for _, y := range yp {
			found := false
			for ; di < len(dp); di++ {
				if math.Abs(dp[di].Cost-y.Cost) < 1e-9 {
					found = true
					di++
					break
				}
				if dp[di].Cost > y.Cost+1e-9 {
					break
				}
			}
			if !found {
				t.Fatalf("n=%d %d->%d: yen path cost %v (%v) missing from dense %+v",
					n, src, dst, y.Cost, y.Nodes, dp)
			}
		}
		for _, p := range dp {
			if len(p.Nodes)-1 > DefaultMaxHops {
				t.Fatalf("dense produced >3-hop path %v", p.Nodes)
			}
		}
	}
}

func TestDenseLookupWorks(t *testing.T) {
	b, _ := fullMesh(t, 20, nil)
	b.EnableDense()
	b.RegisterStream(1, 2)
	paths, err := b.Lookup(1, 15)
	if err != nil || len(paths) != 3 {
		t.Fatalf("paths=%v err=%v", paths, err)
	}
	for _, p := range paths {
		if p[0] != 2 || p[len(p)-1] != 15 || len(p)-1 > DefaultMaxHops {
			t.Fatalf("bad dense path %v", p)
		}
	}
}
