package perfbench

import (
	"encoding/binary"
	"testing"
	"time"

	"livenet/internal/media"
	"livenet/internal/node"
	"livenet/internal/rtp"
	"livenet/internal/sim"
	"livenet/internal/udprun"
	"livenet/internal/wire"
)

// --- Data-plane throughput (pps-denominated; see DESIGN.md §9) ---

// countSink counts datagrams a node submits without touching the bytes
// (the netem serialization cost would otherwise dominate and hide the
// forwarding path itself). It implements the batched submit interface,
// so the node runs its zero-copy fan-out exactly as over udprun.
type countSink struct{ n int }

func (s *countSink) count(hdr []byte) {
	// Only the RTP fan-out is under test; the node also emits RTCP
	// receiver reports and control messages on its own schedule.
	if len(hdr) > 0 && hdr[0] == wire.MsgRTP {
		s.n++
	}
}

func (s *countSink) Send(from, to int, data []byte) error { s.count(data); return nil }
func (s *countSink) SendVec(from, to int, hdr, payload []byte) error {
	s.count(hdr)
	return nil
}
func (s *countSink) SendBatch(from, to int, vecs []wire.Vec) error {
	for _, v := range vecs {
		s.count(v.Hdr)
	}
	return nil
}

// nodeForwardFanout measures the ingress→FIB-fan-out→pacer→submit path
// of one node with subs overlay subscribers: per op, one RTP packet in,
// subs packets out. The reported pps metric is fan-out datagrams per
// wall second; at steady state the path must not allocate (pooled
// payload + inline header prefixes + generic pacer).
func nodeForwardFanout(b *testing.B, subs int) {
	loop := sim.NewLoop(1)
	sink := &countSink{}
	n := node.New(node.Config{
		ID:             0,
		Clock:          loop,
		Net:            sink,
		InitialRateBps: 1e12, // pacing must never be the bottleneck here
		MinRateBps:     1e12,
		MaxRateBps:     1e12,
		LinkRTT:        func(int) time.Duration { return 20 * time.Millisecond },
		IsOverlay:      func(id int) bool { return id < 10_000 },
	})
	const sid = 9
	for i := 1; i <= subs; i++ {
		sub := wire.Subscribe{StreamID: sid, Requester: uint16(i)}
		n.OnMessage(i, sub.Marshal(nil))
	}

	// One-packet frames: every ingress packet completes its frame, so the
	// assembler and GoP cache reach steady state (freelist rotation, no
	// growth) instead of accumulating pending state.
	hdr := media.FrameHeader{Type: media.FrameI, FrameID: 0, GopID: 0, PktIdx: 0, PktCount: 1}
	payload := hdr.Marshal(nil)
	payload = append(payload, make([]byte, 1200-len(payload))...)
	pkt := rtp.Packet{PayloadType: rtp.PayloadVideo, SSRC: sid, Payload: payload}
	frame := wire.FrameRTP(nil, 0, pkt.Marshal(nil))
	seqOff := wire.RTPHeaderLen + 2                                        // RTP sequence number
	payOff := wire.RTPHeaderLen + rtp.PrefixLen(frame[wire.RTPHeaderLen:]) // media header
	// drain steps the loop until the pacers have emitted the whole
	// fan-out (the loop is never empty — nodes keep watchdog timers
	// armed — so "run until quiet" would not terminate).
	target := 0
	drain := func() {
		target += subs
		for sink.n < target {
			if !loop.Step() {
				b.Fatalf("loop drained with %d/%d datagrams delivered", sink.n, target)
			}
		}
	}
	// Warm the path (pool, per-link scratch, recvState) before timing.
	for i := 0; i < 3; i++ {
		n.OnMessage(10_000, frame)
		drain()
	}
	warmed := sink.n

	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint16(4 + i)
		frameID := uint32(4 + i)
		binary.BigEndian.PutUint16(frame[seqOff:], seq)
		if frameID%30 == 0 {
			frame[payOff] = byte(media.FrameI)
		} else {
			frame[payOff] = byte(media.FrameP)
		}
		binary.BigEndian.PutUint32(frame[payOff+1:], frameID)
		binary.BigEndian.PutUint32(frame[payOff+5:], frameID/30)
		n.OnMessage(10_000, frame)
		drain()
	}
	b.StopTimer()
	if got := sink.n - warmed; got != b.N*subs {
		b.Fatalf("fan-out delivered %d datagrams, want %d", got, b.N*subs)
	}
	b.ReportMetric(float64(b.N*subs)/b.Elapsed().Seconds(), "pps")
}

// NodeForwardFanout10 is the fan-out path at 10 subscribers per stream.
func NodeForwardFanout10(b *testing.B) { nodeForwardFanout(b, 10) }

// NodeForwardFanout100 is the fan-out path at 100 subscribers.
func NodeForwardFanout100(b *testing.B) { nodeForwardFanout(b, 100) }

// NodeForwardFanout1000 is the fan-out path at 1000 subscribers — the
// flash-crowd shape; the acceptance bar is zero allocations per op.
func NodeForwardFanout1000(b *testing.B) { nodeForwardFanout(b, 1000) }

// --- Real-socket throughput over loopback (udprun) ---

// udpPair builds two connected endpoints on loopback.
func udpPair(b *testing.B, opts udprun.Options) (*udprun.Endpoint, *udprun.Endpoint) {
	b.Helper()
	a, err := udprun.ListenOpts(1, "127.0.0.1:0", opts)
	if err != nil {
		b.Fatal(err)
	}
	c, err := udprun.ListenOpts(2, "127.0.0.1:0", opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := a.AddPeer(2, c.Addr()); err != nil {
		b.Fatal(err)
	}
	if err := c.AddPeer(1, a.Addr()); err != nil {
		b.Fatal(err)
	}
	return a, c
}

// token acquires one send credit, failing the benchmark if the window
// never frees (a lost datagram would otherwise hang the run). The
// deadline timer is caller-owned and reused — a per-op time.After would
// cost the loopback benchmarks their zero-alloc steady state.
func token(b *testing.B, tokens chan struct{}, deadline *time.Timer) {
	select {
	case <-tokens:
		return
	default:
	}
	deadline.Reset(10 * time.Second)
	select {
	case <-tokens:
		if !deadline.Stop() {
			<-deadline.C
		}
	case <-deadline.C:
		b.Fatal("send window never freed: datagram lost on loopback?")
	}
}

// newDeadline builds the stopped, drained timer token reuses.
func newDeadline() *time.Timer {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return t
}

// UDPLoopbackEcho measures single-datagram round trips over real
// sockets: A sends 1200-byte datagrams through a 64-deep self-clocked
// window, B echoes each one back. pps counts datagrams crossing the
// loopback (two per echo). The receive side runs the batched
// (recvmmsg) read loop; sends are the single-datagram pooled path.
func UDPLoopbackEcho(b *testing.B) {
	a, c := udpPair(b, udprun.Options{})
	defer a.Close()
	defer c.Close()

	c.Serve(func(from int, data []byte) {
		c.Send(2, 1, data) // Send copies synchronously: borrowing is safe
	})
	const window = 64
	tokens := make(chan struct{}, window)
	a.Serve(func(int, []byte) { tokens <- struct{}{} })
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}

	payload := make([]byte, 1200)
	deadline := newDeadline()
	defer deadline.Stop()
	// Warm both endpoints' buffer pools before counting allocations.
	for i := 0; i < window; i++ {
		token(b, tokens, deadline)
		if err := a.Send(1, 2, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(2 * 1200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		token(b, tokens, deadline)
		if err := a.Send(1, 2, payload); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < window; i++ {
		token(b, tokens, deadline) // wait out the tail
	}
	b.StopTimer()
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "pps")
}

// UDPLoopbackBatchRelay measures the batched submit path over real
// sockets: A ships 16-datagram scatter-gather batches with SendBatch
// (sendmmsg on Linux), B relays each arrival onward to itself-as-sink
// via the pooled Send path, crediting the window. pps counts datagrams
// crossing the loopback (two per relayed packet).
func UDPLoopbackBatchRelay(b *testing.B) {
	a, c := udpPair(b, udprun.Options{Batch: 16})
	defer a.Close()
	defer c.Close()

	const batch = 16
	const window = 4 * batch
	tokens := make(chan struct{}, window)
	c.Serve(func(from int, data []byte) {
		if from == 1 {
			c.Send(2, 2, data) // relay hop: borrow-safe synchronous copy
		} else {
			tokens <- struct{}{}
		}
	})
	if err := c.AddPeer(2, c.Addr()); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}

	hdr := make([]byte, 17) // overlay RTP prefix shape
	payload := make([]byte, 1183)
	vecs := make([]wire.Vec, batch)
	for i := range vecs {
		vecs[i] = wire.Vec{Hdr: hdr, Payload: payload}
	}
	deadline := newDeadline()
	defer deadline.Stop()
	b.SetBytes(2 * batch * 1200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			token(b, tokens, deadline)
		}
		if err := a.SendBatch(1, 2, vecs); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < window; i++ {
		token(b, tokens, deadline)
	}
	b.StopTimer()
	b.ReportMetric(float64(2*batch*b.N)/b.Elapsed().Seconds(), "pps")
}
