//go:build race

package perfbench

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
