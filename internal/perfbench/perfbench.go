// Package perfbench holds the repository's performance benchmark bodies
// as plain functions over *testing.B, so the same code runs two ways:
// as standard `go test -bench` benchmarks (the root bench_test.go
// wrappers) and programmatically via testing.Benchmark from
// `livenet-bench -bench-json`, which snapshots the results to a JSON
// file for cross-PR comparison (see EXPERIMENTS.md).
//
// The paper-scale fleet benchmarks are the headline: N=600 overlay nodes
// on a sparse nearest-peers ∪ IXP topology, with a working set of active
// streams. BrainPaperScale is a from-scratch Global Routing epoch;
// BrainEpochChurn is the same epoch when only ~1% of links changed —
// the incremental-invalidation path that makes the 10-minute routing
// cycle affordable at fleet scale.
package perfbench

import (
	"sort"
	"testing"
	"time"

	"livenet/internal/brain"
	"livenet/internal/brainfed"
	"livenet/internal/core"
	"livenet/internal/geo"
	"livenet/internal/graph"
	"livenet/internal/ksp"
	"livenet/internal/netem"
	"livenet/internal/sim"
	"livenet/internal/workload"
)

// Spec is one registered benchmark: its canonical name (matching the
// root-package Benchmark* wrapper) and its body.
type Spec struct {
	Name string
	Func func(*testing.B)
}

// Specs lists every registered benchmark in deterministic order.
func Specs() []Spec {
	return []Spec{
		{Name: "BrainLookup", Func: BrainLookup},
		{Name: "BrainPaperScale", Func: BrainPaperScale},
		{Name: "BrainPaperScale2000", Func: BrainPaperScale2000},
		{Name: "BrainEpochChurn", Func: BrainEpochChurn},
		{Name: "BrainFederatedEpoch", Func: BrainFederatedEpoch},
		{Name: "BrainFederatedChurn", Func: BrainFederatedChurn},
		{Name: "GraphNeighborWeights", Func: GraphNeighborWeights},
		{Name: "MacroPerViewer10k", Func: MacroPerViewer10k},
		{Name: "MacroCohort10k", Func: MacroCohort10k},
		{Name: "MacroCohort1M", Func: MacroCohort1M},
		{Name: "YenKSPFullMesh", Func: YenKSPFullMesh},
		{Name: "DenseMeshRouting", Func: DenseMeshRouting},
		{Name: "LoopSchedule", Func: LoopSchedule},
		{Name: "NetemSend", Func: NetemSend},
		{Name: "NodeForwardFanout10", Func: NodeForwardFanout10},
		{Name: "NodeForwardFanout100", Func: NodeForwardFanout100},
		{Name: "NodeForwardFanout1000", Func: NodeForwardFanout1000},
		{Name: "UDPLoopbackEcho", Func: UDPLoopbackEcho},
		{Name: "UDPLoopbackBatchRelay", Func: UDPLoopbackBatchRelay},
	}
}

// --- Paper-scale fleet (N=600, sparse overlay) ---

const (
	paperN       = 600
	paperDegree  = 16 // nearest peers per site (plus the IXP set)
	paperStreams = 12 // active producers: the epoch's working set
)

// paperFleet is a Streaming Brain over a paper-scale sparse overlay with
// a registered working set of streams.
type paperFleet struct {
	n     int
	world *geo.World
	br    *brain.Brain
	links [][2]int // directed overlay links, sorted (src, dst)
	sids  []uint32
}

// newPaperFleet builds a fleet of n sites (paperN is the paper's scale;
// BrainPaperScale2000 stretches the same shape to >3x that).
func newPaperFleet(n int) *paperFleet {
	src := sim.NewSource(7)
	gcfg := geo.DefaultConfig()
	gcfg.NumSites = n
	w := geo.Build(gcfg, src.Stream("geo"))

	// Sparse symmetric adjacency: nearest peers by RTT plus every IXP
	// site, the same shape core.MacroConfig.MaxPeers builds.
	set := make([]map[int]bool, n)
	for i := range set {
		set[i] = make(map[int]bool, paperDegree+8)
	}
	add := func(i, j int) {
		if i != j {
			set[i][j] = true
			set[j][i] = true
		}
	}
	ixps := w.IXPSites()
	for i := 0; i < n; i++ {
		for _, j := range w.NearestPeers(i, paperDegree) {
			add(i, j)
		}
		for _, x := range ixps {
			add(i, x)
		}
	}
	var links [][2]int
	for i := range set {
		for j := range set[i] {
			links = append(links, [2]int{i, j})
		}
	}
	sort.Slice(links, func(a, b int) bool {
		if links[a][0] != links[b][0] {
			return links[a][0] < links[b][0]
		}
		return links[a][1] < links[b][1]
	})

	f := &paperFleet{
		n:     n,
		world: w,
		br:    brain.New(brain.Config{N: n, LastResort: ixps}),
		links: links,
	}
	rng := src.Stream("load")
	for _, l := range links {
		loss := 0.0003 + rng.Float64()*0.001
		util := rng.Float64() * 0.5
		f.br.ReportLink(l[0], l[1], w.RTT(l[0], l[1]), loss, util)
	}
	for s := 0; s < paperStreams; s++ {
		sid := uint32(100 + s)
		f.br.RegisterStream(sid, (s*n)/paperStreams)
		f.sids = append(f.sids, sid)
	}
	return f
}

// epoch computes the full working set: candidate paths from every active
// producer to every consumer site (the paper's 10-minute batch run scoped
// to live streams, which is what the lazy PIB holds at steady state).
func (f *paperFleet) epoch(b *testing.B) {
	for _, sid := range f.sids {
		if _, err := f.br.PrefetchPaths(sid); err != nil {
			b.Fatal(err)
		}
	}
}

// BrainPaperScale measures a from-scratch Global Routing epoch at fleet
// scale: N=600 sites, sparse degree-~16 (+IXP) overlay, k=3 paths from
// each of the active producers to all 599 consumers. One forward Dijkstra
// per producer seeds every consumer's first path (shared SSSP tree); the
// per-producer groups fan out across cores.
func BrainPaperScale(b *testing.B) { brainPaperScale(b, paperN) }

// BrainPaperScale2000 is the same from-scratch epoch stretched to
// N=2000 sites — beyond the paper's fleet, the scale the worker-arena
// engine is sized for (the pre-arena engine held ~50M allocs per epoch
// at N=600 and did not finish a 2000-site round in useful time).
func BrainPaperScale2000(b *testing.B) { brainPaperScale(b, 2000) }

func brainPaperScale(b *testing.B, n int) {
	f := newPaperFleet(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.br.InvalidateAll()
		f.epoch(b)
	}
	b.ReportMetric(float64(n), "sites")
	b.ReportMetric(float64(len(f.links)), "links")
}

// BrainEpochChurn measures the same epoch when only ~1% of the links
// changed since the last routing round: the incremental invalidation
// drops exactly the PIB entries the changes could affect and the refill
// recomputes only those. The per-op gap to BrainPaperScale is the paper's
// argument for incremental routing rounds (EXPERIMENTS.md records it).
func BrainEpochChurn(b *testing.B) {
	f := newPaperFleet(paperN)
	f.epoch(b) // warm PIB: steady state before the first churn round
	dirty := len(f.links) / 100
	if dirty < 1 {
		dirty = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < dirty; k++ {
			l := f.links[(i*dirty+k)%len(f.links)]
			jitter := time.Duration(1+(i+k)%7) * time.Millisecond
			f.br.ReportLink(l[0], l[1], f.world.RTT(l[0], l[1])+jitter, 0.0005, 0.1)
		}
		f.br.AdvanceEpoch()
		f.epoch(b)
	}
	b.ReportMetric(float64(dirty), "dirty_links")
}

// --- Federated paper-scale fleet (one Brain shard per region) ---

// fedFleet is the same N=600 sparse overlay as paperFleet, but the
// control plane is the federated Brain: one shard per region with
// oversized regions split into gateway-owning sub-shards, discovery
// reports fanning into the owning shard only, cross-region paths
// digest-stitched at the region gateways.
type fedFleet struct {
	world *geo.World
	fed   *brainfed.Federation
	links [][2]int
	sids  []uint32
}

func newFederatedFleet() *fedFleet {
	src := sim.NewSource(7)
	gcfg := geo.DefaultConfig()
	gcfg.NumSites = paperN
	w := geo.Build(gcfg, src.Stream("geo"))

	set := make([]map[int]bool, paperN)
	for i := range set {
		set[i] = make(map[int]bool, paperDegree+8)
	}
	add := func(i, j int) {
		if i != j {
			set[i][j] = true
			set[j][i] = true
		}
	}
	ixps := w.IXPSites()
	for i := 0; i < paperN; i++ {
		for _, j := range w.NearestPeers(i, paperDegree) {
			add(i, j)
		}
		for _, x := range ixps {
			add(i, x)
		}
	}
	var links [][2]int
	for i := range set {
		for j := range set[i] {
			links = append(links, [2]int{i, j})
		}
	}
	sort.Slice(links, func(a, b int) bool {
		if links[a][0] != links[b][0] {
			return links[a][0] < links[b][0]
		}
		return links[a][1] < links[b][1]
	})

	f := &fedFleet{
		world: w,
		fed: brainfed.New(brainfed.Config{
			Brain: brain.Config{N: paperN},
			// One shard per region, but regions above a quarter of the
			// fleet split into sub-shards: digest stitching keeps
			// cross-region paths whole, so the dominant region no longer
			// sets the per-shard report fan-in ceiling.
			Partition: brainfed.ByRegionSplit(w, paperN/4),
		}),
		links: links,
	}
	rng := src.Stream("load")
	for _, l := range links {
		loss := 0.0003 + rng.Float64()*0.001
		util := rng.Float64() * 0.5
		f.fed.ReportLink(l[0], l[1], w.RTT(l[0], l[1]), loss, util)
	}
	for s := 0; s < paperStreams; s++ {
		sid := uint32(100 + s)
		f.fed.RegisterStream(sid, (s*paperN)/paperStreams)
		f.sids = append(f.sids, sid)
	}
	return f
}

func (f *fedFleet) epoch(b *testing.B) {
	for _, sid := range f.sids {
		if _, err := f.fed.PrefetchPaths(sid); err != nil {
			b.Fatal(err)
		}
	}
}

// reportShape publishes the federation's scaling shape next to the
// timing: shard count and the largest per-shard discovery fan-in. The
// monolithic baseline (BrainPaperScale) ingests all len(links) reports
// in one Brain; here each shard only sees its own region's share —
// BENCH_7.json records both so the fan-in reduction is visible per PR.
func (f *fedFleet) reportShape(b *testing.B) {
	b.ReportMetric(float64(f.fed.Shards()), "shards")
	var maxFan uint64
	for _, n := range f.fed.ReportFanIn() {
		if n > maxFan {
			maxFan = n
		}
	}
	b.ReportMetric(float64(maxFan), "max_shard_reports")
	b.ReportMetric(float64(len(f.links)), "links")
}

// BrainFederatedEpoch measures a from-scratch routing epoch across all
// shards of the federated Brain at paper scale: each shard recomputes
// its region's working set independently (shards fan out across cores
// via AdvanceEpoch's runner), then the per-stream prefetch stitches
// cross-region paths at the gateways. Compare ns/op against
// BrainPaperScale: the monolith solves one N=600 graph, the federation
// solves R region-sized subgraphs plus the stitch overhead.
func BrainFederatedEpoch(b *testing.B) {
	f := newFederatedFleet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.fed.InvalidateAll()
		f.epoch(b)
	}
	b.StopTimer()
	f.reportShape(b)
}

// BrainFederatedChurn is the incremental-epoch variant: ~1% of links
// re-reported, then AdvanceEpoch and the working-set refill. Only the
// shards owning dirty links pay recomputation — the federated analogue
// of BrainEpochChurn's incremental-invalidation argument.
func BrainFederatedChurn(b *testing.B) {
	f := newFederatedFleet()
	f.epoch(b)
	dirty := len(f.links) / 100
	if dirty < 1 {
		dirty = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < dirty; k++ {
			l := f.links[(i*dirty+k)%len(f.links)]
			jitter := time.Duration(1+(i+k)%7) * time.Millisecond
			f.fed.ReportLink(l[0], l[1], f.world.RTT(l[0], l[1])+jitter, 0.0005, 0.1)
		}
		f.fed.AdvanceEpoch()
		f.epoch(b)
	}
	b.StopTimer()
	f.reportShape(b)
	b.ReportMetric(float64(dirty), "dirty_links")
}

// --- Routing micro-benchmarks ---

// BrainLookup measures the Path Decision serve path across quiet routing
// epochs: AdvanceEpoch with no accumulated changes is a no-op, so the
// PIB entry and its memoized decision survive and the lookup costs one
// outer-slice copy. (Before incremental epochs this forced a full KSP
// recompute per iteration.)
func BrainLookup(b *testing.B) {
	const n = 32
	br := brain.New(brain.Config{N: n})
	rng := sim.NewSource(1).Stream("bench")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				br.ReportLink(i, j, time.Duration(5+rng.Intn(100))*time.Millisecond, 0.0005, 0.1)
			}
		}
	}
	br.RegisterStream(1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.AdvanceEpoch()
		if _, err := br.Lookup(1, 1+i%(n-1)); err != nil {
			b.Fatal(err)
		}
	}
}

// GraphNeighborWeights measures the CSR expansion read the Dijkstra inner
// loop runs on: with materialized weight rows it must be two slice
// headers, zero allocations.
func GraphNeighborWeights(b *testing.B) {
	const n = 64
	g := graph.New(n)
	rng := sim.NewSource(1).Stream("bench")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.SetLink(i, j, time.Duration(5+rng.Intn(100))*time.Millisecond, 0.0005, 0.1)
			}
		}
	}
	g.MaterializeWeights()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nbrs, w := g.NeighborWeights(i % n)
		_, _ = nbrs, w
	}
}

// YenKSPFullMesh measures Yen's k=3 KSP on a 48-site full mesh through
// the classic (AdjFunc, WeightFunc) adapter.
func YenKSPFullMesh(b *testing.B) {
	const n = 48
	g := graph.New(n)
	rng := sim.NewSource(1).Stream("bench")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.SetLink(i, j, time.Duration(5+rng.Intn(100))*time.Millisecond, 0.0005, 0.1)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ksp.Yen(n, i%n, (i+7)%n, 3, g.Neighbors, g.Weight)
	}
}

// --- Macro scale: per-viewer vs cohort aggregation (DESIGN.md §11) ---

// macroScaleConfig is the shared shape of the scale benchmarks: a 16-hour
// LiveNet horizon over 32 sites with a flash-crowd doubling for hour 15,
// sized by peak concurrent viewers. Only the engine differs between the
// per-viewer and cohort variants.
func macroScaleConfig(viewers int) core.MacroConfig {
	cfg := core.MacroConfig{
		Seed:         1,
		Sites:        32,
		Hours:        16,
		System:       core.SystemLiveNet,
		Viewers:      viewers,
		TracerSample: 2e-5,
		RungShares:   []float64{0.6, 0.3, 0.1},
	}
	cfg.Workload.Flash = []workload.FlashEvent{{Start: 14 * time.Hour, End: 15 * time.Hour, Multiplier: 2}}
	return cfg
}

// MacroPerViewer10k runs the per-viewer macro engine at a 10k-viewer
// diurnal peak: every viewing session is simulated individually, so cost
// scales linearly with the viewer count. The baseline the cohort variants
// are measured against.
func MacroPerViewer10k(b *testing.B) {
	cfg := macroScaleConfig(10_000)
	cfg.Viewers = 0 // per-viewer engine
	cfg.TracerSample = 0
	cfg.RungShares = nil
	cfg.Workload.PeakViewsPerSec = cfg.Workload.PeakViewsFor(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	var views int
	for i := 0; i < b.N; i++ {
		views = core.RunMacro(cfg).Views
	}
	b.ReportMetric(float64(views), "views")
}

// MacroCohort10k is the same 10k-peak workload through the cohort engine
// (arrival counts per edge/channel/rung bucket; establishers and a traced
// sample simulated exactly, the rest folded in by expectation). The
// ns/op ratio against MacroPerViewer10k is the aggregation speedup.
func MacroCohort10k(b *testing.B) {
	cfg := macroScaleConfig(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	var views int
	for i := 0; i < b.N; i++ {
		views = core.RunMacro(cfg).Views
	}
	b.ReportMetric(float64(views), "views")
}

// MacroCohort1M is the headline scale point: a million concurrent viewers
// at the diurnal peak (~2M under the flash window), infeasible for the
// per-viewer engine, completing in roughly the 10k cohort run's time —
// the cohort engine's cost is O(edges x channels) per arrival bucket,
// independent of the viewer count.
func MacroCohort1M(b *testing.B) {
	cfg := macroScaleConfig(1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	var r *core.MacroResult
	for i := 0; i < b.N; i++ {
		r = core.RunMacro(cfg)
	}
	b.ReportMetric(r.CohortQoE.Viewers, "viewers")
	peak := 0
	for _, ds := range r.ByDay {
		if ds.PeakConcurrency > peak {
			peak = ds.PeakConcurrency
		}
	}
	b.ReportMetric(float64(peak), "peak_concurrency")
}

// DenseMeshRouting measures one full macro day at 48 sites — dominated by
// the Brain's dense-mesh routing refreshes plus session handling.
func DenseMeshRouting(b *testing.B) {
	cfg := core.MacroConfig{Seed: 1, Days: 1, Sites: 48, System: core.SystemLiveNet}
	cfg.Workload.PeakViewsPerSec = 0.2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RunMacro(cfg)
	}
}

// --- Event-loop / emulator micro-benchmarks ---

// LoopSchedule measures the steady-state cost of the event loop's
// schedule→fire cycle: with the free list, a drained loop should recycle
// event structs instead of allocating per event.
func LoopSchedule(b *testing.B) {
	loop := sim.NewLoop(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loop.At(loop.Now()+time.Microsecond, fn)
		loop.Step()
	}
}

// NetemSend measures the per-packet cost of the emulator's send path
// (closure-free AtMsg delivery), draining every packet so the event free
// list reaches steady state.
func NetemSend(b *testing.B) {
	loop := sim.NewLoop(1)
	net := netem.New(loop, loop.RNG("n"))
	net.AddLink(0, 1, netem.LinkConfig{RTT: time.Millisecond, BandwidthBps: 1e9})
	net.Handle(1, func(int, []byte) {})
	data := make([]byte, 1200)
	b.ReportAllocs()
	b.SetBytes(1200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(0, 1, data)
		for loop.Step() {
		}
	}
}
