package perfbench

import (
	"testing"
)

// TestSteadyStateZeroAllocs pins the allocation diet of the pps-
// denominated data-plane benchmarks: the emulator send path and the
// real-socket loopback echo must not allocate per operation at steady
// state. Regressions here are the kind that silently melt fleet-scale
// throughput (a single alloc per datagram is ~1M allocs/s per relay),
// so they fail the test suite, not just drift in BENCH_*.json.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs testing.Benchmark bodies")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pins hold without -race only")
	}
	for _, tc := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"NetemSend", NetemSend},
		{"UDPLoopbackEcho", UDPLoopbackEcho},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := testing.Benchmark(tc.fn)
			if got := r.AllocsPerOp(); got != 0 {
				t.Fatalf("%s allocates %d times per op at steady state, want 0", tc.name, got)
			}
		})
	}
}
