//go:build !race

package perfbench

// raceEnabled reports whether the race detector is compiled in. The
// zero-allocation assertions only hold without it (race instrumentation
// allocates shadow state on some paths).
const raceEnabled = false
