package wire

import (
	"testing"
	"testing/quick"
)

func TestPathRequestRoundTrip(t *testing.T) {
	if err := quick.Check(func(sid uint32, consumer uint16, token uint32) bool {
		r := PathRequest{StreamID: sid, Consumer: consumer, Token: token}
		var g PathRequest
		if err := g.Unmarshal(r.Marshal(nil)); err != nil {
			return false
		}
		return g == r
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathRequestErrors(t *testing.T) {
	var g PathRequest
	if err := g.Unmarshal([]byte{MsgPathRequest, 1}); err != ErrBadMessage {
		t.Fatalf("short: %v", err)
	}
	good := (&PathRequest{}).Marshal(nil)
	good[0] = MsgSubscribe
	if err := g.Unmarshal(good); err != ErrBadMessage {
		t.Fatalf("wrong tag: %v", err)
	}
}

func TestPathResponseRoundTrip(t *testing.T) {
	r := PathResponse{
		StreamID: 7, Token: 99, OK: true,
		Paths: [][]uint16{{0, 3, 9}, {0, 9}, {0, 1, 2, 9}},
	}
	var g PathResponse
	if err := g.Unmarshal(r.Marshal(nil)); err != nil {
		t.Fatal(err)
	}
	if g.StreamID != 7 || g.Token != 99 || !g.OK || len(g.Paths) != 3 {
		t.Fatalf("%+v", g)
	}
	for i := range r.Paths {
		if len(g.Paths[i]) != len(r.Paths[i]) {
			t.Fatalf("path %d: %v vs %v", i, g.Paths[i], r.Paths[i])
		}
		for j := range r.Paths[i] {
			if g.Paths[i][j] != r.Paths[i][j] {
				t.Fatalf("path %d: %v vs %v", i, g.Paths[i], r.Paths[i])
			}
		}
	}
}

func TestPathResponseNotOK(t *testing.T) {
	r := PathResponse{StreamID: 1, Token: 2, OK: false}
	var g PathResponse
	if err := g.Unmarshal(r.Marshal(nil)); err != nil {
		t.Fatal(err)
	}
	if g.OK || len(g.Paths) != 0 {
		t.Fatalf("%+v", g)
	}
}

func TestPathResponseTruncated(t *testing.T) {
	r := PathResponse{StreamID: 1, OK: true, Paths: [][]uint16{{0, 1, 2}}}
	buf := r.Marshal(nil)
	var g PathResponse
	for cut := 1; cut < 5; cut++ {
		if err := g.Unmarshal(buf[:len(buf)-cut]); err != ErrBadMessage {
			t.Fatalf("cut %d: err = %v", cut, err)
		}
	}
}

func TestRegisterStreamRoundTrip(t *testing.T) {
	if err := quick.Check(func(sid uint32, producer uint16) bool {
		r := RegisterStream{StreamID: sid, Producer: producer}
		var g RegisterStream
		if err := g.Unmarshal(r.Marshal(nil)); err != nil {
			return false
		}
		return g == r
	}, nil); err != nil {
		t.Fatal(err)
	}
	var g RegisterStream
	if err := g.Unmarshal([]byte{MsgRegisterStream}); err != ErrBadMessage {
		t.Fatalf("short: %v", err)
	}
}

func TestNodeReportRoundTrip(t *testing.T) {
	if err := quick.Check(func(from, to uint16, rtt, loss uint32, util, nodeUtil uint16) bool {
		r := NodeReport{From: from, To: to, RTTMicros: rtt, LossPPM: loss, UtilPercent: util, NodeUtil: nodeUtil}
		var g NodeReport
		if err := g.Unmarshal(r.Marshal(nil)); err != nil {
			return false
		}
		return g == r
	}, nil); err != nil {
		t.Fatal(err)
	}
	var g NodeReport
	if err := g.Unmarshal(make([]byte, 10)); err != ErrBadMessage {
		t.Fatalf("short: %v", err)
	}
}

func TestBrainRPCTagsDistinct(t *testing.T) {
	tags := []byte{MsgRTP, MsgRTCP, MsgSubscribe, MsgUnsubscribe, MsgSubAck,
		MsgPathRequest, MsgPathResponse, MsgRegisterStream, MsgNodeReport}
	seen := map[byte]bool{}
	for _, tg := range tags {
		if seen[tg] {
			t.Fatalf("duplicate wire tag %d", tg)
		}
		seen[tg] = true
	}
}
