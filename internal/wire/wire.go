// Package wire defines LiveNet's overlay wire protocol: a one-byte
// message-type tag followed by the message body. Data messages carry RTP
// (prefixed with a send timestamp for GCC's inter-arrival filter) and
// RTCP; control messages implement the subscription protocol that
// establishes overlay paths hop by hop (§4.4 "Overlay Path Establishment").
//
// The same framing is used over the in-process emulator and over real UDP
// sockets, so the node code is transport-agnostic.
package wire

import (
	"encoding/binary"
	"errors"
)

// Message type tags.
const (
	// MsgRTP frames [tag][sendTime uint32, 10 µs units][RTP packet].
	MsgRTP byte = 1
	// MsgRTCP frames [tag][RTCP packet].
	MsgRTCP byte = 2
	// MsgSubscribe frames a Subscribe control message.
	MsgSubscribe byte = 3
	// MsgUnsubscribe frames an Unsubscribe control message.
	MsgUnsubscribe byte = 4
	// MsgSubAck frames a SubAck control message.
	MsgSubAck byte = 5
	// MsgSubReject frames a SubReject control message. (6–11 are the
	// Brain RPC tags in brainrpc.go; 12+ continue the overlay set.)
	MsgSubReject byte = 12
)

// ErrBadMessage reports an undecodable control message.
var ErrBadMessage = errors.New("wire: bad message")

// RTPHeaderLen is the framing overhead for MsgRTP: tag + send time.
const RTPHeaderLen = 5

// FrameRTP wraps a marshaled RTP packet with the MsgRTP tag and the send
// timestamp (10 µs units), appending to buf.
func FrameRTP(buf []byte, sendTime10us uint32, rtpData []byte) []byte {
	buf = append(buf, MsgRTP)
	buf = binary.BigEndian.AppendUint32(buf, sendTime10us)
	return append(buf, rtpData...)
}

// PatchRTPSendTime rewrites the send timestamp in an already-framed MsgRTP
// buffer (the pacer stamps packets when they actually leave the queue).
func PatchRTPSendTime(frame []byte, sendTime10us uint32) bool {
	if len(frame) < RTPHeaderLen || frame[0] != MsgRTP {
		return false
	}
	binary.BigEndian.PutUint32(frame[1:], sendTime10us)
	return true
}

// UnframeRTP splits a MsgRTP frame into the send timestamp and the RTP
// bytes (aliasing the input).
func UnframeRTP(frame []byte) (sendTime10us uint32, rtpData []byte, err error) {
	if len(frame) < RTPHeaderLen || frame[0] != MsgRTP {
		return 0, nil, ErrBadMessage
	}
	return binary.BigEndian.Uint32(frame[1:]), frame[RTPHeaderLen:], nil
}

// FrameRTCP wraps a marshaled RTCP packet.
func FrameRTCP(buf []byte, rtcpData []byte) []byte {
	buf = append(buf, MsgRTCP)
	return append(buf, rtcpData...)
}

// Subscribe asks the next node on the reverse path to add the requester
// to its Stream FIB and, if it does not already carry the stream, to keep
// backtracking toward the producer.
type Subscribe struct {
	StreamID  uint32
	Requester uint16 // node that wants the stream from the receiver
	// Path is the remaining reverse route toward the producer, starting
	// with the node after the receiver (empty when the receiver is the
	// producer hop).
	Path []uint16
}

// Marshal appends the wire form.
func (s *Subscribe) Marshal(buf []byte) []byte {
	buf = append(buf, MsgSubscribe)
	buf = binary.BigEndian.AppendUint32(buf, s.StreamID)
	buf = binary.BigEndian.AppendUint16(buf, s.Requester)
	buf = append(buf, byte(len(s.Path)))
	for _, h := range s.Path {
		buf = binary.BigEndian.AppendUint16(buf, h)
	}
	return buf
}

// Unmarshal decodes from data (including the tag byte).
func (s *Subscribe) Unmarshal(data []byte) error {
	if len(data) < 8 || data[0] != MsgSubscribe {
		return ErrBadMessage
	}
	s.StreamID = binary.BigEndian.Uint32(data[1:])
	s.Requester = binary.BigEndian.Uint16(data[5:])
	n := int(data[7])
	if len(data) < 8+2*n {
		return ErrBadMessage
	}
	s.Path = s.Path[:0]
	for i := 0; i < n; i++ {
		s.Path = append(s.Path, binary.BigEndian.Uint16(data[8+2*i:]))
	}
	return nil
}

// Unsubscribe removes the requester from the receiver's FIB for a stream.
type Unsubscribe struct {
	StreamID  uint32
	Requester uint16
}

// Marshal appends the wire form.
func (u *Unsubscribe) Marshal(buf []byte) []byte {
	buf = append(buf, MsgUnsubscribe)
	buf = binary.BigEndian.AppendUint32(buf, u.StreamID)
	return binary.BigEndian.AppendUint16(buf, u.Requester)
}

// Unmarshal decodes from data (including the tag byte).
func (u *Unsubscribe) Unmarshal(data []byte) error {
	if len(data) < 7 || data[0] != MsgUnsubscribe {
		return ErrBadMessage
	}
	u.StreamID = binary.BigEndian.Uint32(data[1:])
	u.Requester = binary.BigEndian.Uint16(data[5:])
	return nil
}

// SubAck confirms a subscription back down the chain. Path is the full
// node path from the producer to the acking node; each hop appends itself
// before relaying, so the consumer learns the *actual* path — which may be
// longer than requested when a cache hit grafted it onto an existing tree
// (the long-chain problem, §4.4 / Figure 5).
type SubAck struct {
	StreamID uint32
	Path     []uint16
}

// Marshal appends the wire form.
func (a *SubAck) Marshal(buf []byte) []byte {
	buf = append(buf, MsgSubAck)
	buf = binary.BigEndian.AppendUint32(buf, a.StreamID)
	buf = append(buf, byte(len(a.Path)))
	for _, h := range a.Path {
		buf = binary.BigEndian.AppendUint16(buf, h)
	}
	return buf
}

// Unmarshal decodes from data (including the tag byte).
func (a *SubAck) Unmarshal(data []byte) error {
	if len(data) < 6 || data[0] != MsgSubAck {
		return ErrBadMessage
	}
	a.StreamID = binary.BigEndian.Uint32(data[1:])
	n := int(data[5])
	if len(data) < 6+2*n {
		return ErrBadMessage
	}
	a.Path = a.Path[:0]
	for i := 0; i < n; i++ {
		a.Path = append(a.Path, binary.BigEndian.Uint16(data[6+2*i:]))
	}
	return nil
}

// SubReject refuses a Subscribe: the receiver is draining (planned
// decommission, §4.3's make-before-break extension) and accepts no new
// subscriptions. The requester falls back to its remaining candidate
// paths or a fresh Brain lookup, which excludes draining relays.
type SubReject struct {
	StreamID uint32
}

// Marshal appends the wire form.
func (r *SubReject) Marshal(buf []byte) []byte {
	buf = append(buf, MsgSubReject)
	return binary.BigEndian.AppendUint32(buf, r.StreamID)
}

// Unmarshal decodes from data (including the tag byte).
func (r *SubReject) Unmarshal(data []byte) error {
	if len(data) < 5 || data[0] != MsgSubReject {
		return ErrBadMessage
	}
	r.StreamID = binary.BigEndian.Uint32(data[1:])
	return nil
}

// Vec is one scatter-gather datagram: a mutable per-destination header
// (overlay/RTP prefix) followed by a shared, immutable payload tail. The
// zero-copy fan-out frames a packet's payload once and emits one Vec per
// link, so a transport that supports vectored writes (udprun's sendmmsg
// path) sends Hdr and Payload without concatenating them first. The
// logical datagram is Hdr ++ Payload.
type Vec struct {
	Hdr     []byte
	Payload []byte
}

// Len returns the logical datagram length.
func (v Vec) Len() int { return len(v.Hdr) + len(v.Payload) }

// Kind returns the message tag (0 for empty buffers).
func Kind(data []byte) byte {
	if len(data) == 0 {
		return 0
	}
	return data[0]
}
