package wire

import "encoding/binary"

// Control-plane RPC tags (consumer node ⇄ Streaming Brain).
const (
	// MsgPathRequest asks the Path Decision module for candidate paths.
	MsgPathRequest byte = 6
	// MsgPathResponse returns up to k candidate paths.
	MsgPathResponse byte = 7
	// MsgRegisterStream announces a new stream's producer to Stream
	// Management.
	MsgRegisterStream byte = 8
	// MsgNodeReport carries one link measurement to Global Discovery.
	MsgNodeReport byte = 9
)

// PathRequest is a Path Decision lookup.
type PathRequest struct {
	StreamID uint32
	Consumer uint16
	// Token correlates the response with the request.
	Token uint32
}

// Marshal appends the wire form.
func (r *PathRequest) Marshal(buf []byte) []byte {
	buf = append(buf, MsgPathRequest)
	buf = binary.BigEndian.AppendUint32(buf, r.StreamID)
	buf = binary.BigEndian.AppendUint16(buf, r.Consumer)
	return binary.BigEndian.AppendUint32(buf, r.Token)
}

// Unmarshal decodes from data (including the tag byte).
func (r *PathRequest) Unmarshal(data []byte) error {
	if len(data) < 11 || data[0] != MsgPathRequest {
		return ErrBadMessage
	}
	r.StreamID = binary.BigEndian.Uint32(data[1:])
	r.Consumer = binary.BigEndian.Uint16(data[5:])
	r.Token = binary.BigEndian.Uint32(data[7:])
	return nil
}

// PathResponse carries the candidate paths (producer→consumer node
// sequences), ordered by preference.
type PathResponse struct {
	StreamID uint32
	Token    uint32
	// OK is false when the stream is unknown.
	OK    bool
	Paths [][]uint16
}

// Marshal appends the wire form.
func (r *PathResponse) Marshal(buf []byte) []byte {
	buf = append(buf, MsgPathResponse)
	buf = binary.BigEndian.AppendUint32(buf, r.StreamID)
	buf = binary.BigEndian.AppendUint32(buf, r.Token)
	ok := byte(0)
	if r.OK {
		ok = 1
	}
	buf = append(buf, ok, byte(len(r.Paths)))
	for _, p := range r.Paths {
		buf = append(buf, byte(len(p)))
		for _, h := range p {
			buf = binary.BigEndian.AppendUint16(buf, h)
		}
	}
	return buf
}

// Unmarshal decodes from data (including the tag byte).
func (r *PathResponse) Unmarshal(data []byte) error {
	if len(data) < 11 || data[0] != MsgPathResponse {
		return ErrBadMessage
	}
	r.StreamID = binary.BigEndian.Uint32(data[1:])
	r.Token = binary.BigEndian.Uint32(data[5:])
	r.OK = data[9] != 0
	n := int(data[10])
	r.Paths = r.Paths[:0]
	off := 11
	for i := 0; i < n; i++ {
		if len(data) < off+1 {
			return ErrBadMessage
		}
		m := int(data[off])
		off++
		if len(data) < off+2*m {
			return ErrBadMessage
		}
		p := make([]uint16, m)
		for j := 0; j < m; j++ {
			p[j] = binary.BigEndian.Uint16(data[off+2*j:])
		}
		off += 2 * m
		r.Paths = append(r.Paths, p)
	}
	return nil
}

// RegisterStream announces a producer for a stream.
type RegisterStream struct {
	StreamID uint32
	Producer uint16
}

// Marshal appends the wire form.
func (r *RegisterStream) Marshal(buf []byte) []byte {
	buf = append(buf, MsgRegisterStream)
	buf = binary.BigEndian.AppendUint32(buf, r.StreamID)
	return binary.BigEndian.AppendUint16(buf, r.Producer)
}

// Unmarshal decodes from data (including the tag byte).
func (r *RegisterStream) Unmarshal(data []byte) error {
	if len(data) < 7 || data[0] != MsgRegisterStream {
		return ErrBadMessage
	}
	r.StreamID = binary.BigEndian.Uint32(data[1:])
	r.Producer = binary.BigEndian.Uint16(data[5:])
	return nil
}

// NodeReport is one link measurement for Global Discovery.
type NodeReport struct {
	From, To    uint16
	RTTMicros   uint32
	LossPPM     uint32 // loss rate in parts per million
	UtilPercent uint16 // utilization ×100 (0..10000)
	NodeUtil    uint16 // reporter's node utilization ×100
}

// Marshal appends the wire form.
func (r *NodeReport) Marshal(buf []byte) []byte {
	buf = append(buf, MsgNodeReport)
	buf = binary.BigEndian.AppendUint16(buf, r.From)
	buf = binary.BigEndian.AppendUint16(buf, r.To)
	buf = binary.BigEndian.AppendUint32(buf, r.RTTMicros)
	buf = binary.BigEndian.AppendUint32(buf, r.LossPPM)
	buf = binary.BigEndian.AppendUint16(buf, r.UtilPercent)
	return binary.BigEndian.AppendUint16(buf, r.NodeUtil)
}

// Unmarshal decodes from data (including the tag byte).
func (r *NodeReport) Unmarshal(data []byte) error {
	if len(data) < 17 || data[0] != MsgNodeReport {
		return ErrBadMessage
	}
	r.From = binary.BigEndian.Uint16(data[1:])
	r.To = binary.BigEndian.Uint16(data[3:])
	r.RTTMicros = binary.BigEndian.Uint32(data[5:])
	r.LossPPM = binary.BigEndian.Uint32(data[9:])
	r.UtilPercent = binary.BigEndian.Uint16(data[13:])
	r.NodeUtil = binary.BigEndian.Uint16(data[15:])
	return nil
}

// Probe tags implement the UDP ping utility of §4.2: a node that has not
// transmitted over a link recently actively measures its RTT.
const (
	// MsgPing requests an immediate echo.
	MsgPing byte = 10
	// MsgPong is the echo reply.
	MsgPong byte = 11
)

// Drain admin tags: an operator (or orchestration tooling) asks the
// Brain to start or stop draining a relay — the planned-reconfiguration
// counterpart of the failure-driven reports above.
const (
	// MsgDrainNode marks a node as (un)draining in Path Decision.
	MsgDrainNode byte = 13
	// MsgDrainAck confirms the drain state change.
	MsgDrainAck byte = 14
)

// DrainNode asks the Brain to exclude (Drain=1) or readmit (Drain=0) a
// relay from future path decisions.
type DrainNode struct {
	Node  uint16
	Drain bool
}

// Marshal appends the wire form.
func (d *DrainNode) Marshal(buf []byte) []byte {
	buf = append(buf, MsgDrainNode)
	buf = binary.BigEndian.AppendUint16(buf, d.Node)
	v := byte(0)
	if d.Drain {
		v = 1
	}
	return append(buf, v)
}

// Unmarshal decodes from data (including the tag byte).
func (d *DrainNode) Unmarshal(data []byte) error {
	if len(data) < 4 || data[0] != MsgDrainNode {
		return ErrBadMessage
	}
	d.Node = binary.BigEndian.Uint16(data[1:])
	d.Drain = data[3] != 0
	return nil
}

// DrainAck confirms a DrainNode request.
type DrainAck struct {
	Node     uint16
	Draining bool
}

// Marshal appends the wire form.
func (d *DrainAck) Marshal(buf []byte) []byte {
	buf = append(buf, MsgDrainAck)
	buf = binary.BigEndian.AppendUint16(buf, d.Node)
	v := byte(0)
	if d.Draining {
		v = 1
	}
	return append(buf, v)
}

// Unmarshal decodes from data (including the tag byte).
func (d *DrainAck) Unmarshal(data []byte) error {
	if len(data) < 4 || data[0] != MsgDrainAck {
		return ErrBadMessage
	}
	d.Node = binary.BigEndian.Uint16(data[1:])
	d.Draining = data[3] != 0
	return nil
}

// Probe is a ping or pong carrying a correlation token.
type Probe struct {
	Token uint32
}

// MarshalPing appends the ping wire form.
func (p *Probe) MarshalPing(buf []byte) []byte {
	buf = append(buf, MsgPing)
	return binary.BigEndian.AppendUint32(buf, p.Token)
}

// MarshalPong appends the pong wire form.
func (p *Probe) MarshalPong(buf []byte) []byte {
	buf = append(buf, MsgPong)
	return binary.BigEndian.AppendUint32(buf, p.Token)
}

// Unmarshal decodes either form.
func (p *Probe) Unmarshal(data []byte) error {
	if len(data) < 5 || (data[0] != MsgPing && data[0] != MsgPong) {
		return ErrBadMessage
	}
	p.Token = binary.BigEndian.Uint32(data[1:])
	return nil
}
