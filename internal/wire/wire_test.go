package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFrameRTPRoundTrip(t *testing.T) {
	rtpData := []byte{0x80, 96, 0, 1, 0, 0, 0, 0, 0, 0, 0, 5, 0xAA}
	frame := FrameRTP(nil, 123456, rtpData)
	if Kind(frame) != MsgRTP {
		t.Fatalf("kind = %d", Kind(frame))
	}
	st, data, err := UnframeRTP(frame)
	if err != nil {
		t.Fatal(err)
	}
	if st != 123456 || !bytes.Equal(data, rtpData) {
		t.Fatalf("st=%d data=%v", st, data)
	}
}

func TestPatchRTPSendTime(t *testing.T) {
	frame := FrameRTP(nil, 1, []byte{1, 2, 3, 4})
	if !PatchRTPSendTime(frame, 999) {
		t.Fatal("patch failed")
	}
	st, _, _ := UnframeRTP(frame)
	if st != 999 {
		t.Fatalf("st = %d", st)
	}
	if PatchRTPSendTime([]byte{MsgRTCP, 0, 0, 0, 0}, 1) {
		t.Fatal("patch should reject non-RTP frames")
	}
	if PatchRTPSendTime(nil, 1) {
		t.Fatal("patch should reject empty frames")
	}
}

func TestUnframeRTPErrors(t *testing.T) {
	if _, _, err := UnframeRTP([]byte{MsgRTP, 1}); err != ErrBadMessage {
		t.Fatalf("short: %v", err)
	}
	if _, _, err := UnframeRTP([]byte{MsgSubscribe, 0, 0, 0, 0, 0}); err != ErrBadMessage {
		t.Fatalf("wrong tag: %v", err)
	}
}

func TestSubscribeRoundTrip(t *testing.T) {
	if err := quick.Check(func(sid uint32, req uint16, hops []uint16) bool {
		if len(hops) > 200 {
			hops = hops[:200]
		}
		s := Subscribe{StreamID: sid, Requester: req, Path: hops}
		buf := s.Marshal(nil)
		var g Subscribe
		if err := g.Unmarshal(buf); err != nil {
			return false
		}
		if g.StreamID != sid || g.Requester != req || len(g.Path) != len(hops) {
			return false
		}
		for i := range hops {
			if g.Path[i] != hops[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSubscribeTruncated(t *testing.T) {
	s := Subscribe{StreamID: 7, Requester: 3, Path: []uint16{1, 2, 3}}
	buf := s.Marshal(nil)
	var g Subscribe
	if err := g.Unmarshal(buf[:len(buf)-1]); err != ErrBadMessage {
		t.Fatalf("truncated path: %v", err)
	}
}

func TestUnsubscribeRoundTrip(t *testing.T) {
	u := Unsubscribe{StreamID: 99, Requester: 12}
	buf := u.Marshal(nil)
	var g Unsubscribe
	if err := g.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if g != u {
		t.Fatalf("%+v != %+v", g, u)
	}
}

func TestSubAckRoundTrip(t *testing.T) {
	a := SubAck{StreamID: 42, Path: []uint16{0, 3, 9, 12}}
	buf := a.Marshal(nil)
	if Kind(buf) != MsgSubAck {
		t.Fatalf("kind = %d", Kind(buf))
	}
	var g SubAck
	if err := g.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if g.StreamID != 42 || len(g.Path) != 4 || g.Path[3] != 12 {
		t.Fatalf("%+v", g)
	}
}

func TestSubAckEmptyPath(t *testing.T) {
	a := SubAck{StreamID: 1}
	var g SubAck
	if err := g.Unmarshal(a.Marshal(nil)); err != nil {
		t.Fatal(err)
	}
	if len(g.Path) != 0 {
		t.Fatalf("path = %v", g.Path)
	}
}

func TestFrameRTCP(t *testing.T) {
	frame := FrameRTCP(nil, []byte{0x81, 205, 0, 2})
	if Kind(frame) != MsgRTCP {
		t.Fatalf("kind = %d", Kind(frame))
	}
	if !bytes.Equal(frame[1:], []byte{0x81, 205, 0, 2}) {
		t.Fatal("rtcp body corrupted")
	}
}

func TestKindEmpty(t *testing.T) {
	if Kind(nil) != 0 {
		t.Fatal("empty kind should be 0")
	}
}

func TestUnmarshalReusesSlices(t *testing.T) {
	s := Subscribe{StreamID: 1, Path: []uint16{1, 2, 3, 4, 5}}
	buf := s.Marshal(nil)
	g := Subscribe{Path: make([]uint16, 0, 16)}
	base := &g.Path[:1][0]
	_ = base
	if err := g.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	s2 := Subscribe{StreamID: 2, Path: []uint16{9}}
	if err := g.Unmarshal(s2.Marshal(nil)); err != nil {
		t.Fatal(err)
	}
	if len(g.Path) != 1 || g.Path[0] != 9 {
		t.Fatalf("reuse failed: %v", g.Path)
	}
}
