package node

import (
	"slices"
	"time"

	"livenet/internal/gcc"
	"livenet/internal/gop"
	"livenet/internal/media"
	"livenet/internal/rtp"
)

// rtxRing retains the last N packets of a stream (as received, marshaled)
// for NACK-triggered retransmission.
type rtxRing struct {
	slots []rtxSlot
}

type rtxSlot struct {
	seq   uint16
	valid bool
	data  []byte
}

func newRTXRing(size int) *rtxRing {
	return &rtxRing{slots: make([]rtxSlot, size)}
}

func (r *rtxRing) put(seq uint16, data []byte) {
	s := &r.slots[int(seq)%len(r.slots)]
	s.seq = seq
	s.valid = true
	s.data = append(s.data[:0], data...)
}

func (r *rtxRing) get(seq uint16) ([]byte, bool) {
	s := &r.slots[int(seq)%len(r.slots)]
	if !s.valid || s.seq != seq {
		return nil, false
	}
	return s.data, true
}

// hole tracks one missing sequence number on the slow path.
type hole struct {
	firstSeen time.Duration
	lastNACK  time.Duration
	retries   int
}

// recvState is the per-stream slow-path receiver: loss detection with
// 50 ms hole scans + NACK, ordered delivery into the frame assembler and
// GoP cache, and the receiver side of GCC.
type recvState struct {
	upstream int

	haveHighest bool
	highest     uint16
	expected    uint16 // next seq for ordered delivery
	holes       map[uint16]*hole
	buffer      map[uint16][]byte // out-of-order packets awaiting delivery
	// free recycles buffer storage: flushed packets return their slices
	// here and the next buffered packet reuses one, so steady-state
	// ordered delivery allocates nothing.
	free [][]byte

	received uint64
	lostxRR  uint64 // holes abandoned, cumulative

	// RR window accounting.
	lastRRHighest  uint16
	lastRRReceived uint64
	lastRRLost     uint64

	// GCC receiver side.
	ia    gcc.InterArrival
	trend *gcc.TrendlineEstimator
	aimd  *gcc.AIMD
	meter *gcc.RateMeter

	assembler  *gop.Assembler
	lastReport time.Duration
}

func (n *Node) newRecvState(upstream int) *recvState {
	return &recvState{
		upstream:  upstream,
		holes:     make(map[uint16]*hole),
		buffer:    make(map[uint16][]byte),
		trend:     gcc.NewTrendlineEstimator(),
		aimd:      gcc.NewAIMD(n.cfg.InitialRateBps, n.cfg.MinRateBps, n.cfg.MaxRateBps),
		meter:     gcc.NewRateMeter(0),
		assembler: gop.NewAssembler(64),
	}
}

// bufGet copies data into recycled (or fresh) buffer storage.
func (r *recvState) bufGet(data []byte) []byte {
	if n := len(r.free); n > 0 {
		b := r.free[n-1]
		r.free = r.free[:n-1]
		return append(b[:0], data...)
	}
	return append([]byte(nil), data...)
}

// bufPut returns a flushed packet's storage to the free list.
func (r *recvState) bufPut(b []byte) {
	if cap(b) > 0 && len(r.free) < 128 {
		r.free = append(r.free, b)
	}
}

// isPendingHole reports whether seq is a known hole (so an arriving copy
// is a retransmission that downstream NACKers are waiting for).
func (r *recvState) isPendingHole(seq uint16) bool {
	if r == nil {
		return false
	}
	_, ok := r.holes[seq]
	return ok
}

// slowPathReceive is the copy-to-slow-path step of §5.1.
// Called with mu held.
func (n *Node) slowPathReceive(s *stream, from int, sendTime10us uint32, rtpData []byte, pkt *rtp.Packet) {
	if s.rx == nil {
		s.rx = n.newRecvState(from)
		s.rx.assembler.OnFrame = func(af gop.AssembledFrame) {}
	}
	r := s.rx
	now := n.cfg.Clock.Now()
	seq := pkt.SequenceNumber

	// GCC receiver side: inter-arrival sample per packet group. Only the
	// active leg feeds the estimator: during a make-before-break dual
	// feed (and an old leg's post-splice grace) the other leg rides a
	// path with a different base delay, and interleaving the two reads
	// as delay oscillation — the trendline would signal overuse and
	// collapse the rate of a perfectly healthy link.
	if from == r.upstream {
		r.meter.Add(now, len(rtpData))
		sendTime := time.Duration(sendTime10us) * 10 * time.Microsecond
		if sample, ok := r.ia.Add(sendTime, now); ok {
			sig := r.trend.Update(sample, now)
			r.aimd.Update(sig, r.meter.BitrateBps(now), now)
		}
	}

	// Retransmission history so downstream NACKs can be served.
	s.rtx.put(seq, rtpData)

	// Sequence tracking.
	if !r.haveHighest {
		r.haveHighest = true
		r.highest = seq
		r.expected = seq
		// RR windows start at the join point, not at sequence 0 --
		// otherwise the first report declares everything before the join
		// as lost and the loss-based controller collapses.
		r.lastRRHighest = seq - 1
		r.received++
		n.deliverOrdered(s, r, seq, rtpData, pkt)
		return
	}
	switch {
	case rtp.SeqLess(r.highest, seq):
		// New highest: everything between highest+1 and seq-1 is missing.
		if gap := rtp.SeqDiff(r.highest, seq); gap > 512 {
			// Stream discontinuity (e.g. source restart): resynchronize
			// rather than declaring hundreds of holes.
			r.holes = make(map[uint16]*hole)
			r.buffer = make(map[uint16][]byte)
			r.expected = seq
		} else {
			for q := r.highest + 1; q != seq; q++ {
				if _, dup := r.buffer[q]; !dup {
					r.holes[q] = &hole{firstSeen: now}
				}
			}
		}
		r.highest = seq
		r.received++
		n.deliverOrdered(s, r, seq, rtpData, pkt)
	case r.holes[seq] != nil:
		// Hole recovered (by retransmission or late arrival).
		delete(r.holes, seq)
		n.tel.holesRecovered.Inc()
		r.received++
		n.deliverOrdered(s, r, seq, rtpData, pkt)
	default:
		// Duplicate or packet older than the delivery front: ignore.
	}
}

// deliverOrdered buffers the packet and flushes the in-order prefix into
// the framing control and GoP cache. Called with mu held.
func (n *Node) deliverOrdered(s *stream, r *recvState, seq uint16, rtpData []byte, pkt *rtp.Packet) {
	if rtp.SeqLess(seq, r.expected) {
		return // already past the delivery front (late duplicate)
	}
	// Buffer a copy: the caller's buffer may belong to the transport.
	r.buffer[seq] = r.bufGet(rtpData)
	n.flushOrdered(s, r)
}

// flushOrdered advances the delivery front over buffered packets and
// abandoned holes. Called with mu held.
func (n *Node) flushOrdered(s *stream, r *recvState) {
	var scratch rtp.Packet
	for {
		if data, ok := r.buffer[r.expected]; ok {
			if err := scratch.Unmarshal(data); err == nil {
				var h media.FrameHeader
				if err := h.Unmarshal(scratch.Payload); err == nil {
					s.cache.Insert(h, r.expected, data)
				}
				r.assembler.Push(&scratch)
			}
			delete(r.buffer, r.expected)
			r.bufPut(data)
			r.expected++
			continue
		}
		// A hole at the front blocks delivery until recovered or abandoned.
		if _, isHole := r.holes[r.expected]; isHole {
			return
		}
		// Neither buffered nor a live hole: if it is before the highest
		// seq it was abandoned — skip it; otherwise we are caught up.
		if r.expected == r.highest+1 || !rtp.SeqLess(r.expected, r.highest) {
			return
		}
		r.expected++
	}
}

// scheduleScan arms the periodic slow-path scan.
func (n *Node) scheduleScan() {
	n.scanTimer = n.cfg.Clock.AfterFunc(n.cfg.NACKInterval, n.scan)
}

// scan runs every NACKInterval: detects holes to NACK, abandons hopeless
// ones, and emits periodic RR/REMB feedback (§5.1: "each node examines
// holes in the sequence numbers of received RTP packets every 50 ms").
func (n *Node) scan() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	now := n.cfg.Clock.Now()
	type nackOut struct {
		to   int
		data []byte
	}
	var nacks []nackOut
	// Scan streams in sorted-ID order: the control traffic emitted below
	// feeds the packet schedule, and map iteration order would make the
	// whole simulation nondeterministic.
	sids := n.scanSIDs[:0]
	for sid := range n.streams {
		sids = append(sids, sid)
	}
	slices.Sort(sids)
	n.scanSIDs = sids
	for _, sid := range sids {
		s := n.streams[sid]
		r := s.rx
		if r == nil {
			continue
		}
		// Reordering grace: a hole younger than this is likely a packet
		// still in flight (jitter reordering), not a loss.
		grace := n.cfg.NACKInterval / 3
		var lost []uint16
		for seq, h := range r.holes {
			if h.retries >= n.cfg.MaxNACKRetries {
				delete(r.holes, seq)
				r.lostxRR++
				n.tel.holesAbandoned.Inc()
				continue
			}
			if now-h.firstSeen < grace {
				continue
			}
			if now-h.lastNACK >= n.cfg.NACKInterval {
				lost = append(lost, seq)
				h.lastNACK = now
				h.retries++
			}
		}
		if len(lost) > 0 {
			slices.Sort(lost) // holes is a map; canonicalize the NACK order
			msg := rtp.MarshalNACK(&rtp.NACK{
				SenderSSRC: uint32(n.id),
				MediaSSRC:  s.id,
				Lost:       lost,
			}, nil)
			nacks = append(nacks, nackOut{to: r.upstream, data: frameRTCP(msg)})
			n.tel.nacksSent.Inc()
		}
		// Abandoning holes may unblock ordered delivery.
		n.flushOrdered(s, r)

		// Periodic feedback.
		if now-r.lastReport >= n.cfg.ReportInterval {
			r.lastReport = now
			nacks = append(nacks, nackOut{to: r.upstream, data: n.buildFeedback(s, r, now)})
		}
	}
	// Failure detection (§4.3): an established stream that has gone silent
	// past UpstreamTimeout fast-switches to a backup path (re-querying the
	// Brain when exhausted); a stuck establishment past its retry deadline
	// is re-driven the same way.
	for _, sid := range sids {
		s := n.streams[sid]
		if s.producer || (len(s.clients) == 0 && len(s.subscribers) == 0 && len(s.pendingSubs) == 0) {
			continue
		}
		// Guard timer (make-before-break): a migration whose new leg has
		// not spliced by the deadline is abandoned. The active leg was
		// never touched, and if it too has failed the reactive ladder
		// below recovers it exactly as before the migration started.
		if s.mig != nil && now >= s.mig.deadline {
			n.abortMigrationLocked(s)
		}
		if s.oldLegFrom >= 0 && now >= s.oldLegUntil {
			s.oldLegFrom = -1
		}
		switch {
		case s.established && n.cfg.UpstreamTimeout > 0 && s.lastData > 0 &&
			now-s.lastData > n.cfg.UpstreamTimeout:
			n.tel.upstreamTimeouts.Inc()
			n.tel.fastSwitches.Inc()
			n.tel.fastSwitchesUnplanned.Inc()
			n.tel.pathSwitches.Inc()
			s.lastData = now // re-arm the detector across the switch
			n.switchPathLocked(s)
		case !s.established && !s.lookupPending && s.retryAt > 0 && now >= s.retryAt:
			s.retryAt = 0
			n.switchPathLocked(s)
		}
	}
	// Garbage-collect producer streams whose broadcaster went silent: the
	// stream ends, downstream nodes are left to tear down via their own
	// idle paths, and Stream Management is told to drop the SIB entry.
	var ended []uint32
	for _, sid := range sids {
		s := n.streams[sid]
		if s.producer && s.lastData > 0 && now-s.lastData > n.cfg.StreamIdleTimeout {
			delete(n.streams, sid)
			ended = append(ended, sid)
		}
	}
	n.scheduleScan()
	n.mu.Unlock()
	for _, o := range nacks {
		n.sendControl(o.to, o.data)
	}
	if n.cfg.OnStreamEnded != nil {
		for _, sid := range ended {
			n.cfg.OnStreamEnded(sid)
		}
	}
}

func frameRTCP(rtcp []byte) []byte {
	buf := make([]byte, 0, 1+len(rtcp))
	buf = append(buf, 2) // wire.MsgRTCP
	return append(buf, rtcp...)
}

// buildFeedback produces a compound RR+REMB frame for the upstream node.
// Called with mu held.
func (n *Node) buildFeedback(s *stream, r *recvState, now time.Duration) []byte {
	// Fraction lost counts only holes abandoned in this window (deemed
	// unrecoverable). Open holes are packets still in flight (reordering,
	// catch-up bursts, pending retransmissions) and must not be reported
	// as loss, or the loss-based controller spirals down on phantoms.
	expected := uint64(r.highest - r.lastRRHighest)
	lost := r.lostxRR - r.lastRRLost
	var fraction float64
	if expected > 0 && lost > 0 {
		fraction = float64(lost) / float64(expected)
		if fraction > 1 {
			fraction = 1
		}
	}
	r.lastRRHighest = r.highest
	r.lastRRReceived = r.received
	r.lastRRLost = r.lostxRR

	rr := rtp.MarshalRR(&rtp.ReceiverReport{
		SenderSSRC:     uint32(n.id),
		MediaSSRC:      s.id,
		FractionLost:   uint8(fraction * 256),
		CumulativeLost: uint32(r.lostxRR),
		HighestSeq:     uint32(r.highest),
	}, nil)
	remb := rtp.MarshalREMB(&rtp.REMB{
		SenderSSRC: uint32(n.id),
		BitrateBps: uint64(r.aimd.Rate()),
		SSRCs:      []uint32{s.id},
	}, nil)
	buf := make([]byte, 0, 1+len(rr)+len(remb))
	buf = append(buf, 2) // wire.MsgRTCP
	buf = append(buf, rr...)
	return append(buf, remb...)
}

// onRTCP handles feedback from a downstream node: NACK triggers
// retransmission; RR/REMB update the sender-side GCC for that link.
// Called with mu held. data excludes the wire tag and may be compound.
func (n *Node) onRTCP(from int, data []byte) {
	for len(data) >= 4 {
		// RTCP length field: (words+1)*4 bytes.
		words := int(uint16(data[2])<<8 | uint16(data[3]))
		pktLen := (words + 1) * 4
		if pktLen <= 0 || pktLen > len(data) {
			pktLen = len(data)
		}
		n.handleRTCPPacket(from, data[:pktLen])
		data = data[pktLen:]
	}
}

func (n *Node) handleRTCPPacket(from int, data []byte) {
	pt, fmtField := rtp.RTCPKind(data)
	switch {
	case pt == 205 && fmtField == 1: // Generic NACK
		var nack rtp.NACK
		if err := rtp.UnmarshalNACK(&nack, data); err != nil {
			return
		}
		n.tel.nacksReceived.Inc()
		s := n.streams[nack.MediaSSRC]
		if s == nil {
			return
		}
		c := s.clients[from] // nil for overlay downstreams
		for _, seq := range nack.Lost {
			if c != nil && c.wasDropped(seq) {
				// Deliberately shed, not lost: retransmitting it would
				// re-add exactly the load the dropper removed.
				continue
			}
			if buf, ok := s.rtx.get(seq); ok {
				n.forwardCopy(from, buf, gcc.ClassRTX, 0, true, nack.MediaSSRC, seq)
				n.tel.retransmits.Inc()
			}
			// Not in history: the downstream node will retry; by then our
			// own recovery may have filled it (the A→B→C example of §3).
		}
	case pt == 201: // Receiver Report → loss-based sender control
		var rr rtp.ReceiverReport
		if err := rtp.UnmarshalRR(&rr, data); err != nil {
			return
		}
		fraction := float64(rr.FractionLost) / 256
		if s := n.streams[rr.MediaSSRC]; s != nil {
			if c := s.clients[from]; c != nil {
				// A viewer's loss fraction includes the gaps our own
				// frame dropper punched; only real loss may drive the
				// loss-based controller.
				fraction = c.adjustLoss(fraction)
			}
		}
		l := n.link(from)
		l.ctrl.OnReceiverReport(fraction)
		l.pacer.SetRate(l.ctrl.PacingRate())
	case pt == 206 && fmtField == 15: // REMB → delay-based estimate
		var remb rtp.REMB
		if err := rtp.UnmarshalREMB(&remb, data); err != nil {
			return
		}
		l := n.link(from)
		l.ctrl.OnREMB(float64(remb.BitrateBps))
		l.pacer.SetRate(l.ctrl.PacingRate())
	}
}
