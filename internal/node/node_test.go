package node

import (
	"testing"
	"time"

	"livenet/internal/gop"
	"livenet/internal/media"
	"livenet/internal/netem"
	"livenet/internal/rtp"
	"livenet/internal/sim"
	"livenet/internal/wire"
)

// harness wires nodes, a broadcaster and viewers over the emulator.
type harness struct {
	t     *testing.T
	loop  *sim.Loop
	net   *netem.Network
	nodes map[int]*Node
	// viewerRecv collects RTP packets delivered to viewer client IDs.
	viewerRecv map[int][]rtp.Packet
	// paths is the fake Brain: streamID -> candidate paths per consumer.
	paths map[uint32][][]int
}

const (
	broadcasterID = 1000
	viewerBase    = 2000
)

func newHarness(t *testing.T, seed int64, nodeIDs []int) *harness {
	t.Helper()
	loop := sim.NewLoop(seed)
	h := &harness{
		t:          t,
		loop:       loop,
		net:        netem.New(loop, loop.RNG("netem")),
		nodes:      make(map[int]*Node),
		viewerRecv: make(map[int][]rtp.Packet),
		paths:      make(map[uint32][][]int),
	}
	lookup := func(sid uint32, consumer int, cb func([][]int, error)) {
		// ~10 ms round trip to the Path Decision module.
		loop.AfterFunc(10*time.Millisecond, func() {
			cb(h.paths[sid], nil)
		})
	}
	for _, id := range nodeIDs {
		n := New(Config{
			ID:         id,
			Clock:      loop,
			Net:        h.net,
			PathLookup: lookup,
			LinkRTT:    func(to int) time.Duration { return 20 * time.Millisecond },
			IsOverlay:  func(id int) bool { return id < broadcasterID },
		})
		h.nodes[id] = n
		h.net.Handle(id, n.OnMessage)
	}
	return h
}

// link creates a duplex link with default parameters.
func (h *harness) link(a, b int, rtt time.Duration, loss float64) {
	cfg := netem.LinkConfig{RTT: rtt, BandwidthBps: 100e6}
	if loss > 0 {
		cfg.Loss = func(time.Duration) float64 { return loss }
	}
	h.net.AddDuplex(a, b, cfg)
}

// addViewer registers a viewer endpoint that records received RTP.
func (h *harness) addViewer(id int) {
	h.net.Handle(id, func(from int, data []byte) {
		if wire.Kind(data) != wire.MsgRTP {
			return
		}
		_, rtpData, err := wire.UnframeRTP(data)
		if err != nil {
			return
		}
		var p rtp.Packet
		if err := p.Unmarshal(rtpData); err != nil {
			return
		}
		p.Payload = append([]byte(nil), p.Payload...)
		h.viewerRecv[id] = append(h.viewerRecv[id], p)
	})
}

// broadcast streams n frames of the given stream from the broadcaster to
// the producer node, one frame per encoder interval.
func (h *harness) broadcast(sid uint32, producer int, frames int) {
	rng := h.loop.RNG("media")
	enc := media.NewEncoder(media.DefaultEncoderConfig(1_000_000), rng)
	pz := media.NewPacketizer(sid)
	sent := 0
	var tick func()
	tick = func() {
		if sent >= frames {
			return
		}
		sent++
		f := enc.NextFrame()
		now10us := uint32(h.loop.Now() / (10 * time.Microsecond))
		for _, pkt := range pz.Packetize(f, 200, nil) {
			frame := wire.FrameRTP(nil, now10us, pkt.Marshal(nil))
			h.net.Send(broadcasterID, producer, frame)
		}
		h.loop.AfterFunc(enc.FrameInterval(), tick)
	}
	h.loop.AfterFunc(0, tick)
}

func TestEndToEndTwoHopDelivery(t *testing.T) {
	h := newHarness(t, 1, []int{0, 1, 2})
	h.link(broadcasterID, 0, 20*time.Millisecond, 0)
	h.link(0, 1, 30*time.Millisecond, 0)
	h.link(1, 2, 30*time.Millisecond, 0)
	h.link(2, viewerBase, 20*time.Millisecond, 0)
	h.addViewer(viewerBase)

	const sid = 7
	h.paths[sid] = [][]int{{0, 1, 2}}
	h.broadcast(sid, 0, 100)

	var estPath []int
	h.nodes[2].OnEstablished = func(_ uint32, path []int, _ bool) { estPath = path }
	var firstPkt time.Duration
	h.nodes[2].OnFirstPacket = func(_ int, _ uint32, d time.Duration) { firstPkt = d }

	// Viewer arrives 1 s into the broadcast.
	h.loop.AfterFunc(time.Second, func() {
		if hit := h.nodes[2].AttachViewer(viewerBase, sid); hit {
			t.Error("first viewer should not be a local hit")
		}
	})
	h.loop.RunUntil(6 * time.Second)

	if len(estPath) != 3 || estPath[0] != 0 || estPath[2] != 2 {
		t.Fatalf("established path = %v, want [0 1 2]", estPath)
	}
	got := h.viewerRecv[viewerBase]
	if len(got) < 100 {
		t.Fatalf("viewer received only %d packets", len(got))
	}
	if firstPkt <= 0 || firstPkt > 500*time.Millisecond {
		t.Fatalf("first-packet delay = %v", firstPkt)
	}
	// The delay extension must have accumulated per-hop delay.
	sawExt := false
	for _, p := range got {
		if p.HasDelayExt {
			sawExt = true
			if p.HopCount < 2 {
				t.Fatalf("hop count = %d, want >=2 (producer->relay->consumer)", p.HopCount)
			}
			if p.DelayAccum10us <= 200 {
				t.Fatalf("delay ext did not accumulate: %d", p.DelayAccum10us)
			}
		}
	}
	if !sawExt {
		t.Fatal("no packet carried the delay extension")
	}
}

func TestLocalHitSecondViewer(t *testing.T) {
	h := newHarness(t, 2, []int{0, 1})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(0, 1, 30*time.Millisecond, 0)
	h.link(1, viewerBase, 10*time.Millisecond, 0)
	h.link(1, viewerBase+1, 10*time.Millisecond, 0)
	h.addViewer(viewerBase)
	h.addViewer(viewerBase + 1)

	const sid = 9
	h.paths[sid] = [][]int{{0, 1}}
	h.broadcast(sid, 0, 200)

	h.loop.AfterFunc(time.Second, func() {
		h.nodes[1].AttachViewer(viewerBase, sid)
	})
	var wasHit bool
	var hitFirstPkt time.Duration
	h.loop.AfterFunc(4*time.Second, func() {
		h.nodes[1].OnFirstPacket = func(cid int, _ uint32, d time.Duration) {
			if cid == viewerBase+1 {
				hitFirstPkt = d
			}
		}
		wasHit = h.nodes[1].AttachViewer(viewerBase+1, sid)
	})
	h.loop.RunUntil(8 * time.Second)

	if !wasHit {
		t.Fatal("second viewer should be a local hit (stream flowing, GoP cached)")
	}
	m := h.nodes[1].Metrics()
	if m.LocalHits != 1 {
		t.Fatalf("LocalHits = %d", m.LocalHits)
	}
	if m.PathLookups != 1 {
		t.Fatalf("PathLookups = %d, want 1 (deduplicated)", m.PathLookups)
	}
	if len(h.viewerRecv[viewerBase+1]) == 0 {
		t.Fatal("local-hit viewer got no data")
	}
	if hitFirstPkt > 100*time.Millisecond {
		t.Fatalf("local hit first-packet delay = %v, want fast", hitFirstPkt)
	}
}

func TestLossRecoveryViaNACK(t *testing.T) {
	h := newHarness(t, 3, []int{0, 1})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(0, 1, 30*time.Millisecond, 0.05) // 5% loss on the overlay hop
	h.link(1, viewerBase, 10*time.Millisecond, 0)
	h.addViewer(viewerBase)

	const sid = 11
	h.paths[sid] = [][]int{{0, 1}}
	h.broadcast(sid, 0, 250) // 10 s of video

	h.loop.AfterFunc(500*time.Millisecond, func() {
		h.nodes[1].AttachViewer(viewerBase, sid)
	})
	h.loop.RunUntil(12 * time.Second)

	m := h.nodes[1].Metrics()
	if m.NACKsSent == 0 {
		t.Fatal("lossy link should trigger NACKs")
	}
	if m.HolesRecovered == 0 {
		t.Fatal("no holes recovered despite retransmissions")
	}
	p := h.nodes[0].Metrics()
	if p.NACKsReceived == 0 || p.Retransmits == 0 {
		t.Fatalf("producer should have retransmitted: %+v", p)
	}
	// Recovery should dominate abandonment at 5% loss.
	if m.HolesAbandoned > m.HolesRecovered/4 {
		t.Fatalf("recovered=%d abandoned=%d; recovery should dominate",
			m.HolesRecovered, m.HolesAbandoned)
	}
}

func TestCacheHitSubscriptionAndLongChain(t *testing.T) {
	// Figure 5: E3 already subscribed via a long path; E4's requested
	// 2-hop path S->E3->E4 yields an actual 4-hop path via the cache hit.
	// Node IDs: S=0, A=1, E1=2, E3=3, E4=4.
	h := newHarness(t, 4, []int{0, 1, 2, 3, 4})
	for _, pair := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {3, 4}} {
		h.link(pair[0], pair[1], 20*time.Millisecond, 0)
	}
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(3, viewerBase, 10*time.Millisecond, 0)
	h.link(4, viewerBase+1, 10*time.Millisecond, 0)
	h.addViewer(viewerBase)
	h.addViewer(viewerBase + 1)

	const sid = 13
	h.broadcast(sid, 0, 300)

	// E3 subscribes via the long path S->A->E1->E3.
	h.paths[sid] = [][]int{{0, 1, 2, 3}}
	h.loop.AfterFunc(time.Second, func() {
		h.nodes[3].AttachViewer(viewerBase, sid)
	})

	// Later, E4 is told the short path S->E3->E4.
	var e4Path []int
	h.loop.AfterFunc(4*time.Second, func() {
		h.paths[sid] = [][]int{{0, 3, 4}}
		h.nodes[4].OnEstablished = func(_ uint32, path []int, _ bool) { e4Path = path }
		h.nodes[4].AttachViewer(viewerBase+1, sid)
	})
	h.loop.RunUntil(10 * time.Second)

	want := []int{0, 1, 2, 3, 4} // long chain!
	if len(e4Path) != len(want) {
		t.Fatalf("E4 actual path = %v, want %v (long chain via cache hit)", e4Path, want)
	}
	for i := range want {
		if e4Path[i] != want[i] {
			t.Fatalf("E4 actual path = %v, want %v", e4Path, want)
		}
	}
	if h.nodes[3].Metrics().CacheHitPrimes == 0 {
		t.Fatal("E3 should have served the subscription from its cache")
	}
	if len(h.viewerRecv[viewerBase+1]) == 0 {
		t.Fatal("E4's viewer got no data")
	}
}

func TestUnsubscribeTeardown(t *testing.T) {
	h := newHarness(t, 5, []int{0, 1, 2})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(0, 1, 20*time.Millisecond, 0)
	h.link(1, 2, 20*time.Millisecond, 0)
	h.link(2, viewerBase, 10*time.Millisecond, 0)
	h.addViewer(viewerBase)

	const sid = 15
	h.paths[sid] = [][]int{{0, 1, 2}}
	h.broadcast(sid, 0, 500)

	h.loop.AfterFunc(time.Second, func() {
		h.nodes[2].AttachViewer(viewerBase, sid)
	})
	h.loop.AfterFunc(5*time.Second, func() {
		h.nodes[2].DetachViewer(viewerBase, sid)
	})
	h.loop.RunUntil(8 * time.Second)

	if h.nodes[2].HasStream(sid) {
		t.Fatal("consumer should have torn down the stream after last viewer left")
	}
	if h.nodes[1].HasStream(sid) {
		t.Fatal("relay should have torn down after downstream unsubscribed")
	}
	if !h.nodes[0].HasStream(sid) {
		t.Fatal("producer keeps the stream while the broadcast continues")
	}
}

func TestProducerAdoptionAfterParkedSubscription(t *testing.T) {
	// Viewer subscribes before the broadcast starts; data must flow once
	// the broadcaster begins.
	h := newHarness(t, 6, []int{0, 1})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(0, 1, 20*time.Millisecond, 0)
	h.link(1, viewerBase, 10*time.Millisecond, 0)
	h.addViewer(viewerBase)

	const sid = 17
	h.paths[sid] = [][]int{{0, 1}}
	h.loop.AfterFunc(0, func() {
		h.nodes[1].AttachViewer(viewerBase, sid)
	})
	// Broadcast starts 2 s later.
	h.loop.AfterFunc(2*time.Second, func() { h.broadcast(sid, 0, 150) })
	h.loop.RunUntil(10 * time.Second)

	if len(h.viewerRecv[viewerBase]) == 0 {
		t.Fatal("viewer parked before broadcast start received nothing")
	}
	if !h.nodes[1].HasStream(sid) {
		t.Fatal("consumer never established")
	}
}

func TestProactiveFrameDropping(t *testing.T) {
	h := newHarness(t, 7, []int{0, 1})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(0, 1, 20*time.Millisecond, 0)
	h.link(1, viewerBase, 10*time.Millisecond, 0)
	h.addViewer(viewerBase)

	const sid = 19
	h.paths[sid] = [][]int{{0, 1}}
	h.broadcast(sid, 0, 300)

	h.loop.AfterFunc(500*time.Millisecond, func() {
		h.nodes[1].AttachViewer(viewerBase, sid)
	})
	// The viewer's link goes bad: its REMB caps the client pacer far below
	// the stream rate, so the client queue builds and frames are dropped.
	h.loop.AfterFunc(2*time.Second, func() {
		remb := rtp.MarshalREMB(&rtp.REMB{SenderSSRC: viewerBase, BitrateBps: 150_000, SSRCs: []uint32{sid}}, nil)
		h.net.Send(viewerBase, 1, wire.FrameRTCP(nil, remb))
	})
	h.loop.RunUntil(12 * time.Second)

	m := h.nodes[1].Metrics()
	if m.DroppedBFrames == 0 && m.DroppedPFrames == 0 && m.DroppedGoPs == 0 {
		t.Fatalf("no proactive frame dropping under a constrained client: %+v", m)
	}
}

func TestPathSwitchOnStalls(t *testing.T) {
	h := newHarness(t, 8, []int{0, 1, 2})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(0, 1, 20*time.Millisecond, 0)
	h.link(1, 2, 20*time.Millisecond, 0)
	h.link(0, 2, 20*time.Millisecond, 0)
	h.link(2, viewerBase, 10*time.Millisecond, 0)
	h.addViewer(viewerBase)

	const sid = 21
	// Best path via relay 1, backup is the direct path.
	h.paths[sid] = [][]int{{0, 1, 2}, {0, 2}}
	h.broadcast(sid, 0, 400)

	h.loop.AfterFunc(time.Second, func() {
		h.nodes[2].AttachViewer(viewerBase, sid)
	})
	var newPath []int
	h.loop.AfterFunc(5*time.Second, func() {
		h.nodes[2].OnEstablished = func(_ uint32, path []int, _ bool) { newPath = path }
		// Client reports repeated stalls: threshold is 2.
		h.nodes[2].ReportClientQuality(viewerBase, sid, 3)
	})
	h.loop.RunUntil(12 * time.Second)

	if h.nodes[2].Metrics().PathSwitches != 1 {
		t.Fatalf("PathSwitches = %d", h.nodes[2].Metrics().PathSwitches)
	}
	if len(newPath) != 2 || newPath[0] != 0 || newPath[1] != 2 {
		t.Fatalf("switched path = %v, want the [0 2] backup", newPath)
	}
	if len(h.viewerRecv[viewerBase]) == 0 {
		t.Fatal("viewer lost data across the switch")
	}
}

func TestSeamlessStreamSwitch(t *testing.T) {
	h := newHarness(t, 9, []int{0, 1})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(broadcasterID+1, 0, 10*time.Millisecond, 0)
	h.link(0, 1, 20*time.Millisecond, 0)
	h.link(1, viewerBase, 10*time.Millisecond, 0)
	h.addViewer(viewerBase)

	const oldSID, newSID = 23, 24
	h.paths[oldSID] = [][]int{{0, 1}}
	h.paths[newSID] = [][]int{{0, 1}}
	h.broadcast(oldSID, 0, 400)

	h.loop.AfterFunc(500*time.Millisecond, func() {
		h.nodes[1].AttachViewer(viewerBase, oldSID)
	})
	// Co-streaming begins: new stream starts; consumer switches the
	// client once a complete GoP of the new stream is cached.
	switched := false
	h.loop.AfterFunc(3*time.Second, func() {
		// New stream from a second broadcaster.
		rng := h.loop.RNG("media2")
		enc := media.NewEncoder(media.DefaultEncoderConfig(800_000), rng)
		pz := media.NewPacketizer(newSID)
		sent := 0
		var tick func()
		tick = func() {
			if sent >= 300 {
				return
			}
			sent++
			now10us := uint32(h.loop.Now() / (10 * time.Microsecond))
			for _, pkt := range pz.Packetize(enc.NextFrame(), 100, nil) {
				h.net.Send(broadcasterID+1, 0, wire.FrameRTP(nil, now10us, pkt.Marshal(nil)))
			}
			h.loop.AfterFunc(enc.FrameInterval(), tick)
		}
		tick()
		done := h.nodes[1].SwitchClientStream(viewerBase, oldSID, newSID)
		go func() { <-done }()
		h.loop.AfterFunc(6*time.Second, func() {
			select {
			case <-done:
				switched = true
			default:
			}
		})
	})
	h.loop.RunUntil(12 * time.Second)

	if !switched {
		t.Fatal("stream switch never completed")
	}
	// The viewer must have received packets of the new stream.
	sawNew := false
	for _, p := range h.viewerRecv[viewerBase] {
		if p.SSRC == newSID {
			sawNew = true
			break
		}
	}
	if !sawNew {
		t.Fatal("viewer never received the co-stream")
	}
	if h.nodes[1].HasStream(oldSID) {
		t.Fatal("old stream should be torn down after the switch")
	}
}

func TestGoPCachePopulated(t *testing.T) {
	h := newHarness(t, 10, []int{0})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	const sid = 25
	h.broadcast(sid, 0, 120) // >2 GoPs
	h.loop.RunUntil(6 * time.Second)

	// Reach into the producer's stream state via a subscription probe:
	// HasStream + a cache-primed subscription implies the cache works.
	if !h.nodes[0].HasStream(sid) {
		t.Fatal("producer has no stream state")
	}
	// Use the package-level view for a direct check.
	n := h.nodes[0]
	n.mu.Lock()
	s := n.streams[sid]
	hasGoP := s != nil && s.cache.HasRecentGoP()
	var cacheLen int
	if s != nil {
		cacheLen = len(s.cache.StartupPackets())
	}
	n.mu.Unlock()
	if !hasGoP {
		t.Fatal("producer GoP cache empty after 120 frames")
	}
	if cacheLen == 0 {
		t.Fatal("startup packets empty")
	}
	_ = gop.CachedPacket{} // keep import for clarity of what's cached
}

// mediaEncoder/mediaPacketizer are small helpers for tests that need a
// second stream source.
func mediaEncoder(rng *sim.Rand) *media.Encoder {
	return media.NewEncoder(media.DefaultEncoderConfig(1_000_000), rng)
}

func mediaPacketizer(sid uint32) *media.Packetizer { return media.NewPacketizer(sid) }
