package node

import (
	"errors"
	"time"

	"livenet/internal/gcc"
	"livenet/internal/gop"
	"livenet/internal/media"
	"livenet/internal/rtp"
	"livenet/internal/wire"
)

// ErrNoPath is reported when the Brain returns no usable path.
var ErrNoPath = errors.New("node: no path available")

// Catch-up pacing gains for GoP cache primes: a joining subscriber's
// backlog is transferred as a fast burst so live packets queued behind it
// are not delayed into apparent loss. Overlay links have more headroom
// than client access links.
const (
	overlayPrimeGain = 8.0
	clientPrimeGain  = 2.5
)

// clientState tracks one locally attached viewer (consumer role).
type clientState struct {
	id       int
	streamID uint32

	attachTime  time.Duration
	firstSent   bool
	stalls      int // cumulative stall count from the client's last report
	// switchStalls is the cumulative count at the last quality-triggered
	// path switch; reports are cumulative, so switching decisions must be
	// made on the delta since then, not on the raw counter.
	switchStalls int
	dropToNextI  bool // GoP-level dropping active: discard until next I frame

	// pressureSince tracks how long the client's send queue has stayed
	// past the frame-drop threshold (for bitrate down-switching, §5.2).
	pressureSince  time.Duration
	underPressure  bool
	switchInFlight bool

	// Deliberate drops punch sequence gaps the viewer cannot tell from
	// network loss: its RR loss fraction and its NACKs are both computed
	// from the gaps. Track what the dropper shed so that feedback about
	// those packets is discounted — otherwise shedding reads as heavy
	// loss, the loss-based controller collapses the client pacer, and
	// the lower rate forces more shedding (a drop/starve spiral that
	// bottoms out at the minimum rate and never recovers).
	droppedPkts int // deliberately dropped since the last RR
	sentPkts    int // forwarded since the last RR
	dropCur     map[uint16]struct{}
	dropPrev    map[uint16]struct{} // previous generation (bounded memory)

	// iStart is the first sequence number of the newest I frame seen,
	// so a GoP-drop flush can spare it: shedding the only decodable
	// frame in the queue would leave a starved viewer with nothing to
	// complete — playback (and the rate feedback loop) would freeze.
	iStart     uint16
	haveIStart bool
}

// noteDrop records one deliberately dropped packet.
func (c *clientState) noteDrop(seq uint16) {
	c.droppedPkts++
	if c.dropCur == nil {
		c.dropCur = make(map[uint16]struct{}, 256)
	} else if len(c.dropCur) >= 2048 {
		c.dropPrev = c.dropCur
		c.dropCur = make(map[uint16]struct{}, 256)
	}
	c.dropCur[seq] = struct{}{}
}

// wasDropped reports whether seq was recently shed on purpose.
func (c *clientState) wasDropped(seq uint16) bool {
	if _, ok := c.dropCur[seq]; ok {
		return true
	}
	_, ok := c.dropPrev[seq]
	return ok
}

// adjustLoss discounts deliberate drops from a viewer's reported loss
// fraction and resets the per-report counters.
func (c *clientState) adjustLoss(fraction float64) float64 {
	dropped, sent := c.droppedPkts, c.sentPkts
	c.droppedPkts, c.sentPkts = 0, 0
	if dropped == 0 || dropped+sent == 0 {
		return fraction
	}
	fraction -= float64(dropped) / float64(dropped+sent)
	if fraction < 0 {
		return 0
	}
	return fraction
}

// --- Viewer attachment: Algorithm 1 ---

// AttachViewer handles a viewing request at a consumer node (Algorithm 1).
// If the stream is already flowing here with cached recent frames, the
// viewer is served immediately from the GoP cache (a local hit).
// Otherwise the node looks up a path at the Streaming Brain and
// establishes it by backtracking subscriptions toward the producer.
// It returns whether the request was a local hit.
func (n *Node) AttachViewer(clientID int, sid uint32) bool {
	n.mu.Lock()
	now := n.cfg.Clock.Now()
	c := &clientState{id: clientID, streamID: sid, attachTime: now}

	s := n.streams[sid]
	if s != nil && s.established && s.cache.HasRecentGoP() {
		// Algorithm 1 lines 1–3: local hit.
		s.addClient(c)
		n.tel.localHits.Inc()
		n.primeClientLocked(c, s.cache.StartupPackets())
		n.mu.Unlock()
		return true
	}

	if s == nil {
		s = n.newStream(sid)
	}
	s.addClient(c)
	n.ensureSubscribedLocked(s)
	n.mu.Unlock()
	return false
}

// primeClientLocked replays cached GoP packets to a client (fast
// startup). Called with mu held: replay aliases GoP cache storage, which
// may be recycled by the next Insert, so the frames must be copied out
// before the lock is released.
func (n *Node) primeClientLocked(c *clientState, replay []gop.CachedPacket) {
	for _, cp := range replay {
		class := gcc.ClassVideo
		if cp.Type == media.FrameAudio {
			class = gcc.ClassAudio
		}
		frame := wire.FrameRTP(make([]byte, 0, wire.RTPHeaderLen+len(cp.Data)), 0, cp.Data)
		l := n.link(c.id)
		l.pacer.Push(gcc.Item[outPacket]{Class: class, Size: len(frame), Gain: clientPrimeGain, Payload: outPacket{to: c.id, frame: frame}})
		n.kickPacer(l)
	}
	if len(replay) > 0 {
		n.noteFirstPacket(c)
	}
}

// noteFirstPacket records the first-packet delay for a client.
// Called with mu held.
func (n *Node) noteFirstPacket(c *clientState) {
	if c.firstSent {
		return
	}
	c.firstSent = true
	if n.OnFirstPacket != nil {
		delay := n.cfg.Clock.Now() - c.attachTime
		cb := n.OnFirstPacket
		id, sid := c.id, c.streamID
		// Escape the node lock: the callback may re-enter the node.
		n.cfg.Clock.AfterFunc(0, func() { cb(id, sid, delay) })
	}
}

// DetachViewer removes a viewer; if the stream has no remaining local
// viewers or downstream subscribers, the node unsubscribes upstream.
func (n *Node) DetachViewer(clientID int, sid uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.streams[sid]
	if s == nil {
		return
	}
	s.dropClient(clientID)
	n.maybeTeardownLocked(s)
}

// maybeTeardownLocked prunes a stream with no consumers left.
func (n *Node) maybeTeardownLocked(s *stream) {
	if s.producer || len(s.clients) > 0 || len(s.subscribers) > 0 {
		return
	}
	n.abortMigrationLocked(s)
	if s.established && s.upstream >= 0 {
		u := wire.Unsubscribe{StreamID: s.id, Requester: uint16(n.id)}
		n.sendControl(s.upstream, u.Marshal(nil))
	}
	delete(n.streams, s.id)
}

// ensureSubscribedLocked starts path lookup + establishment once.
func (n *Node) ensureSubscribedLocked(s *stream) {
	if s.established || s.lookupPending || n.cfg.PathLookup == nil {
		return
	}
	s.lookupPending = true
	s.establishStart = n.cfg.Clock.Now()
	n.tel.pathLookups.Inc()
	sid := s.id
	lookup := n.cfg.PathLookup
	// Issue the lookup outside the node lock: the Brain may call back
	// synchronously and re-enter the node.
	n.cfg.Clock.AfterFunc(0, func() {
		lookup(sid, n.id, func(paths [][]int, err error) {
			n.onPaths(sid, paths, err)
		})
	})
}

// InstallPaths lets the Brain proactively push paths for a popular stream
// before any viewer arrives (§4.4 "for popular broadcasters, up-to-date
// overlay paths are proactively pushed to all overlay nodes"). The node
// establishes the subscription immediately so the first viewer is a
// local hit.
func (n *Node) InstallPaths(sid uint32, paths [][]int) {
	n.onPaths(sid, paths, nil)
}

// onPaths handles the Brain's path response and establishes the best path.
func (n *Node) onPaths(sid uint32, paths [][]int, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.streams[sid]
	if s == nil {
		s = n.newStream(sid)
	}
	s.lookupPending = false
	if s.established {
		return
	}
	if err != nil || len(paths) == 0 {
		// Brain unreachable or answerless: serve from the node-local path
		// cache (§4.3). With nothing cached the viewers stay parked and the
		// slow-path scan retries after EstablishTimeout.
		if len(s.cachedPaths) > 0 {
			n.tel.cacheFallbacks.Inc()
			best := s.cachedPaths[0]
			s.backupPaths = append(s.backupPaths[:0], s.cachedPaths[1:]...)
			n.establishLocked(s, best)
			return
		}
		s.retryAt = n.cfg.Clock.Now() + n.cfg.EstablishTimeout
		return
	}
	best := paths[0]
	s.backupPaths = paths[1:]
	s.cachedPaths = append(s.cachedPaths[:0], paths...)
	n.establishLocked(s, best)
}

// establishLocked sends a Subscribe along the reverse route (§4.4): the
// consumer contacts the previous hop; each hop either has the stream
// (cache hit — stop backtracking) or keeps going toward the producer.
func (n *Node) establishLocked(s *stream, path []int) {
	if len(path) == 0 {
		return
	}
	s.requestedPath = append(s.requestedPath[:0], path...)
	// Reverse route: previous hop first, then the rest toward the producer.
	if len(path) == 1 {
		// Single-node path: we are (or will be) the producer; nothing to do.
		s.retryAt = 0
		return
	}
	// Re-arm in case the Subscribe (or its ack) is lost to a failure.
	s.retryAt = n.cfg.Clock.Now() + n.cfg.EstablishTimeout
	prevHop := path[len(path)-2]
	rest := make([]uint16, 0, len(path)-2)
	for i := len(path) - 3; i >= 0; i-- {
		rest = append(rest, uint16(path[i]))
	}
	sub := wire.Subscribe{StreamID: s.id, Requester: uint16(n.id), Path: rest}
	n.sendControl(prevHop, sub.Marshal(nil))
}

// onSubscribe handles a downstream node's subscription (with mu held).
func (n *Node) onSubscribe(from int, data []byte) {
	var sub wire.Subscribe
	if err := sub.Unmarshal(data); err != nil {
		return
	}
	if n.draining {
		// Planned decommission: refuse new subscriptions so the drain
		// converges. The requester falls back to its remaining candidates
		// or a fresh Brain lookup (which excludes draining relays).
		rej := wire.SubReject{StreamID: sub.StreamID}
		n.sendControl(from, rej.Marshal(nil))
		return
	}
	s := n.streams[sub.StreamID]
	if s != nil && s.established {
		// Cache hit (or we are the producer): stop backtracking, add the
		// requester to the FIB, prime it from the GoP cache, and ack with
		// our actual upstream path so the requester learns the real
		// (possibly long-chain) path.
		s.addSubscriber(int(sub.Requester))
		n.tel.cacheHitPrimes.Inc()
		for _, cp := range s.cache.StartupPackets() {
			class := gcc.ClassVideo
			if cp.Type == media.FrameAudio {
				class = gcc.ClassAudio
			}
			n.forwardCopy(int(sub.Requester), cp.Data, class, overlayPrimeGain, false, s.id, cp.SeqNum)
		}
		ackPath := make([]uint16, 0, len(s.fullPath))
		for _, h := range s.fullPath {
			ackPath = append(ackPath, uint16(h))
		}
		ack := wire.SubAck{StreamID: sub.StreamID, Path: ackPath}
		n.sendControl(int(sub.Requester), ack.Marshal(nil))
		return
	}
	// We do not have the stream yet: record the subscriber, remember to
	// ack it once we are established, and keep backtracking.
	if s == nil {
		s = n.newStream(sub.StreamID)
	}
	s.addSubscriber(int(sub.Requester))
	s.pendingSubs = append(s.pendingSubs, sub.Requester)
	if s.lookupPending {
		return // establishment already under way
	}
	if len(sub.Path) == 0 {
		// We are the designated producer hop but have no stream yet (the
		// broadcaster has not started). The subscription stays parked; data
		// flows when the upload begins.
		return
	}
	next := int(sub.Path[0])
	rest := sub.Path[1:]
	fwd := wire.Subscribe{StreamID: sub.StreamID, Requester: uint16(n.id), Path: rest}
	s.lookupPending = true // reuse as "establishment in flight"
	n.sendControl(next, fwd.Marshal(nil))
}

// onSubAck completes establishment (with mu held).
func (n *Node) onSubAck(from int, data []byte) {
	var ack wire.SubAck
	if err := ack.Unmarshal(data); err != nil {
		return
	}
	s := n.streams[ack.StreamID]
	if s == nil {
		return
	}
	if m := s.mig; m != nil && from == m.prevHop && s.established && from != s.upstream {
		// Make-before-break: the new leg is up. Record it and keep feeding
		// from the old leg; the splice happens in onRTP on the next GoP
		// boundary the new leg delivers.
		m.acked = true
		m.upstream = from
		m.fullPath = m.fullPath[:0]
		for _, h := range ack.Path {
			m.fullPath = append(m.fullPath, int(h))
		}
		m.fullPath = append(m.fullPath, n.id)
		return
	}
	if s.established {
		// Unsolicited ack: an established stream has no Subscribe in
		// flight (every reactive switch clears established first; a
		// migration leg was handled above), so this is a parked
		// subscription being flushed after we already established
		// elsewhere, or a stale retransmit. Accepting it would overwrite
		// a healthy upstream — two nodes whose pushed paths run through
		// each other would splice into a closed forwarding cycle that
		// the reverse-path prune then mistakes for the live feed.
		// Withdraw instead so the acker drops us from its FIB.
		if from != s.upstream {
			u := wire.Unsubscribe{StreamID: s.id, Requester: uint16(n.id)}
			n.sendControl(from, u.Marshal(nil))
		}
		return
	}
	s.lookupPending = false
	s.retryAt = 0
	s.established = true
	s.upstream = from
	// Establishment counts as liveness: the silence detector starts its
	// window here, so a path that acks but never delivers is also caught.
	s.lastData = n.cfg.Clock.Now()
	s.fullPath = s.fullPath[:0]
	for _, h := range ack.Path {
		s.fullPath = append(s.fullPath, int(h))
	}
	s.fullPath = append(s.fullPath, n.id)

	// Ack our own pending downstream subscribers with the (now known)
	// actual path.
	n.ackPendingSubsLocked(s)
	if n.OnEstablished != nil {
		cb := n.OnEstablished
		path := append([]int(nil), s.fullPath...)
		sid := s.id
		n.cfg.Clock.AfterFunc(0, func() { cb(sid, path, false) })
	}
}

// onUnsubscribe removes a downstream subscriber (with mu held).
func (n *Node) onUnsubscribe(from int, data []byte) {
	var u wire.Unsubscribe
	if err := u.Unmarshal(data); err != nil {
		return
	}
	s := n.streams[u.StreamID]
	if s == nil {
		return
	}
	s.dropSubscriber(int(u.Requester))
	n.maybeTeardownLocked(s)
}

// --- Fine-grained stream control (§5.2) ---

// forwardToClient forwards a packet to a local viewer with proactive
// frame dropping: when the client's send queue builds past the threshold
// the node drops unreferenced B frames first, then P frames, then whole
// GoPs. Called with mu held from the onRTP fan-out.
func (n *Node) forwardToClient(s *stream, c *clientState, src *fanoutSrc, pkt *rtp.Packet) {
	l := n.link(c.id)
	var h media.FrameHeader
	haveHeader := h.Unmarshal(pkt.Payload) == nil

	if haveHeader && h.Type != media.FrameAudio {
		if h.Type == media.FrameI && h.PktIdx == 0 {
			c.iStart = pkt.SequenceNumber
			c.haveIStart = true
		}
		qd := l.pacer.QueueDelay()
		th := n.cfg.FrameDropThreshold
		n.trackPressure(s, c, qd > th)
		switch {
		case c.dropToNextI || qd > 3*th:
			if h.Type == media.FrameI {
				if c.dropToNextI {
					c.dropToNextI = false // resume at the fresh I frame
				}
			} else {
				if !c.dropToNextI {
					c.dropToNextI = true
					// Shed the queued backlog except the newest I frame
					// (the only thing a starved viewer can still decode);
					// shed packets were counted as sent, so move them to
					// the drop ledger.
					sid := s.id
					l.pacer.DropClassFunc(gcc.ClassVideo, func(it gcc.Item[outPacket]) bool {
						if it.Payload.sid == sid {
							if c.haveIStart && !rtp.SeqLess(it.Payload.seq, c.iStart) {
								return false
							}
							c.noteDrop(it.Payload.seq)
							if c.sentPkts > 0 {
								c.sentPkts--
							}
						}
						dropRelease(it)
						return true
					})
					n.tel.droppedGoPs.Inc()
				}
				c.noteDrop(pkt.SequenceNumber)
				return
			}
		case qd > 2*th:
			if h.Type == media.FrameP || h.Type == media.FrameB || h.Type == media.FrameBUnref {
				if h.Type == media.FrameP {
					n.tel.droppedPFrames.Inc()
				} else {
					n.tel.droppedBFrames.Inc()
				}
				c.noteDrop(pkt.SequenceNumber)
				return
			}
		case qd > th:
			if h.Type == media.FrameBUnref {
				n.tel.droppedBFrames.Inc()
				c.noteDrop(pkt.SequenceNumber)
				return
			}
		}
	}

	class, gain := gcc.ClassVideo, 0.0
	if haveHeader {
		switch h.Type {
		case media.FrameAudio:
			class = gcc.ClassAudio
		case media.FrameI:
			gain = gcc.IFramePacingGain
		}
	}
	n.pushFrom(l, src, class, gain, false, false)
	c.sentPkts++
	n.kickPacer(l)
	n.noteFirstPacket(c)
}

// trackPressure implements the bitrate down-switch of §5.2: when a
// client's send queue stays past the drop threshold for
// BitrateSwitchAfter, the consumer resubscribes the client to the next
// lower simulcast rendition on its behalf. Called with mu held.
func (n *Node) trackPressure(s *stream, c *clientState, pressured bool) {
	now := n.cfg.Clock.Now()
	if !pressured {
		c.underPressure = false
		return
	}
	if !c.underPressure {
		c.underPressure = true
		c.pressureSince = now
		return
	}
	if c.switchInFlight || n.cfg.LowerRendition == nil {
		return
	}
	if now-c.pressureSince < n.cfg.BitrateSwitchAfter {
		return
	}
	lower, ok := n.cfg.LowerRendition(s.id)
	if !ok {
		return // already at the lowest rendition
	}
	c.switchInFlight = true
	n.tel.bitrateSwitches.Inc()
	clientID, oldSID := c.id, s.id
	// Escape the lock: SwitchClientStream takes it.
	n.cfg.Clock.AfterFunc(0, func() {
		done := n.SwitchClientStream(clientID, oldSID, lower)
		_ = done
	})
}

// ReportClientQuality lets the client layer report playback quality; on
// repeated stalls the consumer switches to an alternative path (the
// long-chain mitigation of §4.4 and the local re-route of §7.1).
func (n *Node) ReportClientQuality(clientID int, sid uint32, stalls int) {
	n.mu.Lock()
	s := n.streams[sid]
	if s == nil {
		n.mu.Unlock()
		return
	}
	c := s.clients[clientID]
	if c == nil {
		n.mu.Unlock()
		return
	}
	c.stalls = stalls
	// The client reports a cumulative counter: only stalls accrued since
	// the last quality switch argue for another one (otherwise a single
	// threshold crossing would re-trigger a switch on every later report —
	// a path-switch storm whose resubscribe backfills congest the very
	// last mile that is stalling).
	if stalls-c.switchStalls < n.cfg.StallSwitchThreshold || !s.established {
		n.mu.Unlock()
		return
	}
	c.switchStalls = stalls
	n.tel.pathSwitches.Inc()
	// Switch to the next backup path, or re-query the Brain when exhausted.
	if len(s.backupPaths) > 0 {
		next := s.backupPaths[0]
		s.backupPaths = s.backupPaths[1:]
		n.resubscribeLocked(s, next)
		n.mu.Unlock()
		return
	}
	s.established = false
	s.lookupPending = false
	n.ensureSubscribedLocked(s)
	n.mu.Unlock()
}

// switchPathLocked moves a stream to its next backup path, re-querying
// the Brain when backups are exhausted (the fast path switch of §4.3;
// the same ladder as ReportClientQuality but driven by upstream silence
// or a stuck establishment instead of viewer stall reports).
func (n *Node) switchPathLocked(s *stream) {
	// A reactive switch supersedes any in-flight planned migration.
	n.abortMigrationLocked(s)
	if s.upstream < 0 && len(s.requestedPath) >= 2 {
		// A Subscribe may still be parked at the silent previous hop;
		// withdraw it so we do not remain in its FIB.
		u := wire.Unsubscribe{StreamID: s.id, Requester: uint16(n.id)}
		n.sendControl(s.requestedPath[len(s.requestedPath)-2], u.Marshal(nil))
	}
	if len(s.backupPaths) > 0 {
		next := s.backupPaths[0]
		s.backupPaths = s.backupPaths[1:]
		n.resubscribeLocked(s, next)
		return
	}
	if s.upstream >= 0 {
		u := wire.Unsubscribe{StreamID: s.id, Requester: uint16(n.id)}
		n.sendControl(s.upstream, u.Marshal(nil))
	}
	s.established = false
	s.upstream = -1
	s.rx = nil
	s.fanoutGate = false
	s.oldLegFrom = -1
	s.lookupPending = false
	n.ensureSubscribedLocked(s)
}

// resubscribeLocked tears down the current upstream and establishes path.
func (n *Node) resubscribeLocked(s *stream, path []int) {
	n.abortMigrationLocked(s)
	if s.upstream >= 0 {
		u := wire.Unsubscribe{StreamID: s.id, Requester: uint16(n.id)}
		n.sendControl(s.upstream, u.Marshal(nil))
	}
	s.established = false
	s.upstream = -1
	s.rx = nil // fresh slow-path state on the new path
	s.fanoutGate = false
	s.oldLegFrom = -1
	n.establishLocked(s, path)
}

// MigrateProducer handles broadcaster mobility (§7.1): when the optimal
// producer node changes, existing overlay paths are preserved by having
// the OLD producer subscribe to the NEW one instead of re-routing every
// downstream path. path is the new-producer→this-node route the Brain
// computed.
func (n *Node) MigrateProducer(sid uint32, path []int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.streams[sid]
	if s == nil || !s.producer {
		return
	}
	s.producer = false
	s.established = false
	s.upstream = -1
	s.rx = nil // fresh slow-path state fed by the new producer
	n.establishLocked(s, path)
}

// SwitchClientStream implements seamless stream switching (§5.2): during
// co-streaming the consumer resubscribes to the new stream on the
// client's behalf and flips forwarding only once a complete GoP of the
// new stream is cached, so the viewer sees no stall. The returned channel
// is closed when the switch completes (for tests and callers that care).
func (n *Node) SwitchClientStream(clientID int, oldSID, newSID uint32) <-chan struct{} {
	done := make(chan struct{})
	n.mu.Lock()
	old := n.streams[oldSID]
	if old == nil || old.clients[clientID] == nil {
		n.mu.Unlock()
		close(done)
		return done
	}
	s := n.streams[newSID]
	if s == nil {
		s = n.newStream(newSID)
	}
	n.ensureSubscribedLocked(s)
	n.mu.Unlock()

	var poll func()
	poll = func() {
		n.mu.Lock()
		ns := n.streams[newSID]
		if ns != nil && ns.established && ns.cache.HasRecentGoP() {
			os := n.streams[oldSID]
			var c *clientState
			if os != nil {
				c = os.clients[clientID]
				os.dropClient(clientID)
				n.maybeTeardownLocked(os)
			}
			if c == nil {
				c = &clientState{id: clientID, attachTime: n.cfg.Clock.Now()}
			}
			c.streamID = newSID
			c.firstSent = true // not a fresh startup; no first-packet event
			ns.addClient(c)
			n.primeClientLocked(c, ns.cache.StartupPackets())
			n.mu.Unlock()
			close(done)
			return
		}
		n.mu.Unlock()
		n.cfg.Clock.AfterFunc(20*time.Millisecond, poll)
	}
	poll()
	return done
}
