package node

import (
	"testing"
	"time"

	"livenet/internal/gop"
	"livenet/internal/rtp"
	"livenet/internal/wire"
)

// addTimedViewer registers a viewer endpoint that records received RTP
// packets (like addViewer) plus each arrival's virtual time.
func (h *harness) addTimedViewer(id int, arrivals *[]time.Duration) {
	h.net.Handle(id, func(from int, data []byte) {
		if wire.Kind(data) != wire.MsgRTP {
			return
		}
		_, rtpData, err := wire.UnframeRTP(data)
		if err != nil {
			return
		}
		var p rtp.Packet
		if err := p.Unmarshal(rtpData); err != nil {
			return
		}
		p.Payload = append([]byte(nil), p.Payload...)
		h.viewerRecv[id] = append(h.viewerRecv[id], p)
		*arrivals = append(*arrivals, h.loop.Now())
	})
}

// crash fail-stops an overlay node in the harness: its handler goes
// dark and every incident link is cut (same model as the chaos plane).
func (h *harness) crash(id int, peers ...int) {
	h.net.Handle(id, nil)
	for _, p := range peers {
		h.net.SetLinkUp(id, p, false)
		h.net.SetLinkUp(p, id, false)
	}
}

// viewerFrames replays everything the viewer received through a GoP
// assembler and returns the completed frame IDs in completion order.
func (h *harness) viewerFrames(viewer int) []uint32 {
	asm := gop.NewAssembler(256)
	var ids []uint32
	asm.OnFrame = func(f gop.AssembledFrame) { ids = append(ids, f.Header.FrameID) }
	for i := range h.viewerRecv[viewer] {
		asm.Push(&h.viewerRecv[viewer][i])
	}
	return ids
}

// assertNoDupNoReorderFrames asserts the viewer's assembled frames are
// strictly increasing: no frame delivered twice, none delivered late.
func assertNoDupNoReorderFrames(t *testing.T, ids []uint32) {
	t.Helper()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("frame %d completed after frame %d: duplicate or out-of-order delivery", ids[i], ids[i-1])
		}
	}
}

func TestMakeBeforeBreakSpliceSeamless(t *testing.T) {
	// Planned migration (§4.3 extension): the consumer moves its upstream
	// leg from relay 1 to relay 2 mid-stream. The new leg is established
	// first, both feeds run briefly, the splice lands on a GoP boundary,
	// and the viewer sees no gap, no duplicate and no out-of-order frame.
	h := newHarness(t, 41, []int{0, 1, 2, 3})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(0, 1, 20*time.Millisecond, 0)
	h.link(1, 3, 20*time.Millisecond, 0)
	h.link(0, 2, 20*time.Millisecond, 0)
	h.link(2, 3, 20*time.Millisecond, 0)
	h.link(3, viewerBase, 10*time.Millisecond, 0)
	var arrivals []time.Duration
	h.addTimedViewer(viewerBase, &arrivals)

	const sid = 90
	h.paths[sid] = [][]int{{0, 1, 3}}
	h.broadcast(sid, 0, 250) // 10 s of video

	h.loop.AfterFunc(500*time.Millisecond, func() {
		h.nodes[3].AttachViewer(viewerBase, sid)
	})
	const migrateAt = 4 * time.Second
	h.loop.AfterFunc(migrateAt, func() {
		if !h.nodes[3].Migrate(sid, []int{0, 2, 3}) {
			t.Error("Migrate refused an established stream")
		}
	})
	h.loop.RunUntil(11 * time.Second)

	m := h.nodes[3].Metrics()
	if m.MigrationsStarted != 1 || m.MigrationsCompleted != 1 || m.MigrationsAborted != 0 {
		t.Fatalf("migrations started=%d completed=%d aborted=%d, want 1/1/0",
			m.MigrationsStarted, m.MigrationsCompleted, m.MigrationsAborted)
	}
	if m.FastSwitchesPlanned != 1 || m.FastSwitchesUnplanned != 0 {
		t.Fatalf("fast switches planned=%d unplanned=%d, want 1/0",
			m.FastSwitchesPlanned, m.FastSwitchesUnplanned)
	}
	if m.FastSwitches != m.FastSwitchesPlanned+m.FastSwitchesUnplanned {
		t.Fatalf("FastSwitches=%d != planned+unplanned", m.FastSwitches)
	}
	if m.UpstreamTimeouts != 0 {
		t.Fatalf("planned migration tripped the silence detector: %d timeouts", m.UpstreamTimeouts)
	}
	if m.PathLookups != 1 {
		t.Fatalf("PathLookups=%d, want 1 (the migration path came from the caller)", m.PathLookups)
	}
	h.nodes[3].mu.Lock()
	up := h.nodes[3].streams[sid].upstream
	h.nodes[3].mu.Unlock()
	if up != 2 {
		t.Fatalf("upstream=%d after the splice, want relay 2", up)
	}

	// Packet continuity: strictly increasing sequence numbers (no
	// duplicate, no reorder) with no hole across the splice.
	seqs := h.viewerRecv[viewerBase]
	if len(seqs) < 200 {
		t.Fatalf("viewer received only %d packets", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		prev, cur := seqs[i-1].SequenceNumber, seqs[i].SequenceNumber
		if !rtp.SeqLess(prev, cur) {
			t.Fatalf("seq %d after %d at packet %d: duplicate or reorder across the splice", cur, prev, i)
		}
		if cur != prev+1 {
			t.Fatalf("seq hole %d -> %d at packet %d: splice lost packets", prev, cur, i)
		}
	}
	assertNoDupNoReorderFrames(t, h.viewerFrames(viewerBase))

	// Zero added stalls: no viewer-visible arrival gap anywhere near the
	// stall threshold, before, during, or after the migration window.
	for i := 1; i < len(arrivals); i++ {
		if g := arrivals[i] - arrivals[i-1]; g >= 300*time.Millisecond {
			t.Fatalf("viewer-visible gap %v at %v during a planned migration", g, arrivals[i])
		}
	}
}

func TestMigrationGuardTimerFallback(t *testing.T) {
	// The migration target crashes mid-make-before-break: the new leg
	// never delivers a spliceable boundary, the guard timer abandons the
	// attempt with the active leg untouched, and when that leg later
	// fails too the PR 2 reactive ladder recovers the viewer — with no
	// duplicate or out-of-order frames end to end.
	h := newHarness(t, 42, []int{0, 1, 2, 3})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(0, 1, 20*time.Millisecond, 0)
	h.link(1, 3, 20*time.Millisecond, 0)
	h.link(0, 2, 20*time.Millisecond, 0)
	h.link(2, 3, 20*time.Millisecond, 0)
	h.link(0, 3, 30*time.Millisecond, 0) // direct pre-delivered backup
	h.link(3, viewerBase, 10*time.Millisecond, 0)
	var arrivals []time.Duration
	h.addTimedViewer(viewerBase, &arrivals)

	const sid = 91
	h.paths[sid] = [][]int{{0, 1, 3}, {0, 3}}
	h.nodes[3].cfg.MigrateGuardTimeout = 800 * time.Millisecond
	h.nodes[3].cfg.UpstreamTimeout = 500 * time.Millisecond
	h.broadcast(sid, 0, 300) // 12 s of video

	h.loop.AfterFunc(500*time.Millisecond, func() {
		h.nodes[3].AttachViewer(viewerBase, sid)
	})
	const migrateAt = 3 * time.Second
	h.loop.AfterFunc(migrateAt, func() {
		if !h.nodes[3].Migrate(sid, []int{0, 2, 3}) {
			t.Error("Migrate refused an established stream")
		}
	})
	// The target fail-stops 15 ms in: its Subscribe may or may not have
	// landed, but no ack or data ever reaches the consumer.
	h.loop.AfterFunc(migrateAt+15*time.Millisecond, func() { h.crash(2, 0, 3) })
	// Later the ACTIVE leg's relay dies; only the reactive ladder is
	// left, and it must find the pre-delivered direct backup.
	const oldLegCrashAt = 6 * time.Second
	h.loop.AfterFunc(oldLegCrashAt, func() { h.crash(1, 0, 3) })
	h.loop.RunUntil(12 * time.Second)

	m := h.nodes[3].Metrics()
	if m.MigrationsStarted != 1 || m.MigrationsCompleted != 0 || m.MigrationsAborted != 1 {
		t.Fatalf("migrations started=%d completed=%d aborted=%d, want 1/0/1",
			m.MigrationsStarted, m.MigrationsCompleted, m.MigrationsAborted)
	}
	if m.FastSwitchesPlanned != 0 || m.FastSwitchesUnplanned != 1 {
		t.Fatalf("fast switches planned=%d unplanned=%d, want 0/1 (reactive recovery only)",
			m.FastSwitchesPlanned, m.FastSwitchesUnplanned)
	}
	if m.PathLookups != 1 {
		t.Fatalf("PathLookups=%d, want 1 (recovery used the pre-delivered backup)", m.PathLookups)
	}
	h.nodes[3].mu.Lock()
	s := h.nodes[3].streams[sid]
	up, mig := s.upstream, s.mig
	h.nodes[3].mu.Unlock()
	if mig != nil {
		t.Fatal("migration state not cleared after the guard timer")
	}
	if up != 0 {
		t.Fatalf("upstream=%d after reactive recovery, want the direct backup via node 0", up)
	}

	// The guard-timer window itself must be invisible: no viewer gap
	// between the migration start and the old-leg crash.
	for i := 1; i < len(arrivals); i++ {
		at := arrivals[i]
		if at <= oldLegCrashAt {
			if g := at - arrivals[i-1]; g >= 300*time.Millisecond {
				t.Fatalf("aborted migration opened a viewer gap of %v at %v", g, at)
			}
		}
	}
	// Delivery resumed after the reactive switch.
	last := arrivals[len(arrivals)-1]
	if last < oldLegCrashAt+2*time.Second {
		t.Fatalf("viewer never recovered: last arrival at %v", last)
	}
	// No duplicate and no out-of-order packets or frames anywhere —
	// across the dual-feed window, the abort, and the reactive switch.
	seen := make(map[uint16]bool)
	for i := range h.viewerRecv[viewerBase] {
		sn := h.viewerRecv[viewerBase][i].SequenceNumber
		if seen[sn] {
			t.Fatalf("sequence %d delivered twice to the viewer", sn)
		}
		seen[sn] = true
	}
	assertNoDupNoReorderFrames(t, h.viewerFrames(viewerBase))
}

func TestDrainingNodeRefusesSubscriptions(t *testing.T) {
	// A draining relay answers Subscribe with SubReject; the requester
	// falls through to its next candidate path immediately instead of
	// waiting out the establishment retry timer.
	h := newHarness(t, 43, []int{0, 1, 2})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(0, 1, 20*time.Millisecond, 0)
	h.link(1, 2, 20*time.Millisecond, 0)
	h.link(0, 2, 30*time.Millisecond, 0)
	h.link(2, viewerBase, 10*time.Millisecond, 0)
	h.addViewer(viewerBase)

	const sid = 92
	h.paths[sid] = [][]int{{0, 1, 2}, {0, 2}}
	h.broadcast(sid, 0, 150)

	h.nodes[1].SetDraining(true)
	var established []int
	h.nodes[2].OnEstablished = func(_ uint32, path []int, _ bool) {
		established = append([]int(nil), path...)
	}
	h.loop.AfterFunc(time.Second, func() {
		h.nodes[2].AttachViewer(viewerBase, sid)
	})
	h.loop.RunUntil(5 * time.Second)

	if len(established) != 2 || established[0] != 0 || established[1] != 2 {
		t.Fatalf("established path = %v, want the direct backup [0 2]", established)
	}
	if got := h.nodes[2].Metrics().PathLookups; got != 1 {
		t.Fatalf("PathLookups=%d, want 1 (reject fell through to the backup, no re-query)", got)
	}
	if len(h.viewerRecv[viewerBase]) == 0 {
		t.Fatal("viewer got no data via the backup path")
	}
	if m := h.nodes[1].Metrics(); m.PacketsForwarded != 0 {
		t.Fatalf("draining relay forwarded %d packets for a rejected subscription", m.PacketsForwarded)
	}
}
