package node

import (
	"bytes"
	"testing"
	"time"

	"livenet/internal/media"
	"livenet/internal/sim"
	"livenet/internal/wire"
)

// vecSink records every datagram a node submits, assembling vectored
// and batched submits the way a transport would. It copies at capture
// time — the zero-copy contract says the bytes are only valid during
// the call.
type vecSink struct {
	got map[int][][]byte // destination -> datagrams in submit order
}

func newVecSink() *vecSink { return &vecSink{got: make(map[int][][]byte)} }

func (s *vecSink) capture(to int, hdr, payload []byte) {
	if len(hdr) == 0 || hdr[0] != wire.MsgRTP {
		return // control/RTCP traffic is outside the fan-out under test
	}
	d := make([]byte, 0, len(hdr)+len(payload))
	d = append(append(d, hdr...), payload...)
	s.got[to] = append(s.got[to], d)
}

func (s *vecSink) Send(from, to int, data []byte) error {
	s.capture(to, data, nil)
	return nil
}

func (s *vecSink) SendVec(from, to int, hdr, payload []byte) error {
	s.capture(to, hdr, payload)
	return nil
}

func (s *vecSink) SendBatch(from, to int, vecs []wire.Vec) error {
	for _, v := range vecs {
		s.capture(to, v.Hdr, v.Payload)
	}
	return nil
}

// serialSink only implements plain Sender, so the node falls back to
// the per-packet framed path.
type serialSink struct{ *vecSink }

func (s serialSink) SendVec(from, to int, hdr, payload []byte) error { panic("serial sink") }
func (s serialSink) SendBatch(from, to int, vecs []wire.Vec) error   { panic("serial sink") }

// runFanOut builds one producer node with subs overlay subscribers
// (parked Subscribes adopted when the upload starts), streams frames
// broadcast-style into it, and returns the sink plus the node.
func runFanOut(t *testing.T, net Sender, serialSend bool, subs, frames int) *Node {
	t.Helper()
	loop := sim.NewLoop(7)
	n := New(Config{
		ID:         0,
		Clock:      loop,
		Net:        net,
		SerialSend: serialSend,
		LinkRTT:    func(int) time.Duration { return 20 * time.Millisecond },
		IsOverlay:  func(id int) bool { return id < 1000 },
	})
	const sid = 44
	for i := 1; i <= subs; i++ {
		sub := wire.Subscribe{StreamID: sid, Requester: uint16(i)}
		n.OnMessage(i, sub.Marshal(nil))
	}
	enc := media.NewEncoder(media.DefaultEncoderConfig(1_000_000), loop.RNG("media"))
	pz := media.NewPacketizer(sid)
	sent := 0
	var tick func()
	tick = func() {
		if sent >= frames {
			return
		}
		sent++
		f := enc.NextFrame()
		now10us := uint32(loop.Now() / (10 * time.Microsecond))
		for _, pkt := range pz.Packetize(f, 200, nil) {
			n.OnMessage(1000, wire.FrameRTP(nil, now10us, pkt.Marshal(nil)))
		}
		loop.AfterFunc(enc.FrameInterval(), tick)
	}
	loop.AfterFunc(0, tick)
	loop.RunUntil(3 * time.Second)
	return n
}

// TestFanOutByteIdentityAcrossSubscribers pins the refcounted fan-out:
// every subscriber of a stream must receive byte-identical datagrams
// (one shared pooled payload, per-link header copies), and the pool
// must actually recycle — steady-state forwarding stops allocating
// fresh buffers.
func TestFanOutByteIdentityAcrossSubscribers(t *testing.T) {
	sink := newVecSink()
	n := runFanOut(t, sink, false, 16, 60)

	if len(sink.got) != 16 {
		t.Fatalf("datagrams reached %d destinations, want 16", len(sink.got))
	}
	ref := sink.got[1]
	if len(ref) == 0 {
		t.Fatal("subscriber 1 received nothing")
	}
	for to := 2; to <= 16; to++ {
		got := sink.got[to]
		if len(got) != len(ref) {
			t.Fatalf("subscriber %d got %d datagrams, subscriber 1 got %d", to, len(got), len(ref))
		}
		for i := range ref {
			if !bytes.Equal(got[i], ref[i]) {
				t.Fatalf("subscriber %d datagram %d differs from subscriber 1's", to, i)
			}
		}
	}
	hits, misses := n.pool.Stats()
	if hits == 0 {
		t.Fatal("frame pool never recycled a buffer")
	}
	// Steady state must be dominated by reuse: misses only warm the pool
	// up to the peak number of in-flight buffers, hits forever after.
	if hits < 4*misses {
		t.Fatalf("pool thrashing: %d hits vs %d misses", hits, misses)
	}
}

// TestFanOutBatchedMatchesSerial replays the same fan-out through the
// vectored/batched submit path and the plain per-packet Send path: the
// on-the-wire bytes must match exactly, per destination, in order.
func TestFanOutBatchedMatchesSerial(t *testing.T) {
	batched := newVecSink()
	runFanOut(t, batched, false, 8, 40)
	serial := newVecSink()
	runFanOut(t, serialSink{serial}, true, 8, 40)

	if len(batched.got) != len(serial.got) {
		t.Fatalf("destination sets differ: batched %d vs serial %d", len(batched.got), len(serial.got))
	}
	for to, want := range serial.got {
		got := batched.got[to]
		if len(got) != len(want) {
			t.Fatalf("dest %d: batched sent %d datagrams, serial %d", to, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("dest %d datagram %d: batched bytes differ from serial", to, i)
			}
		}
	}
}
