package node

import "livenet/internal/telemetry"

// instruments are the node's registered telemetry handles. They are
// resolved once at construction; each handle is a single atomic word, and
// with a nil registry the handles are unregistered instruments that still
// work — so the fast path carries no nil checks, no branches, and no
// allocations whether telemetry is enabled or not.
type instruments struct {
	packetsReceived  *telemetry.Counter
	packetsForwarded *telemetry.Counter
	nacksSent        *telemetry.Counter
	nacksReceived    *telemetry.Counter
	retransmits      *telemetry.Counter
	holesRecovered   *telemetry.Counter
	holesAbandoned   *telemetry.Counter
	localHits        *telemetry.Counter
	pathLookups      *telemetry.Counter
	pathSwitches     *telemetry.Counter
	droppedBFrames   *telemetry.Counter
	droppedPFrames   *telemetry.Counter
	droppedGoPs      *telemetry.Counter
	cacheHitPrimes   *telemetry.Counter
	bitrateSwitches  *telemetry.Counter
	upstreamTimeouts *telemetry.Counter
	fastSwitches     *telemetry.Counter
	// Planned/unplanned attribution of fastSwitches: a make-before-break
	// splice (planned) vs the silence-detection ladder (unplanned).
	fastSwitchesPlanned   *telemetry.Counter
	fastSwitchesUnplanned *telemetry.Counter
	cacheFallbacks        *telemetry.Counter
	migrationsStarted     *telemetry.Counter
	migrationsCompleted   *telemetry.Counter
	migrationsAborted     *telemetry.Counter
	pacerQueueUs          *telemetry.Histogram
	fanoutBatch           *telemetry.Histogram
	framePoolHits         *telemetry.Counter
	framePoolMisses       *telemetry.Counter
}

func newInstruments(r *telemetry.Registry) instruments {
	return instruments{
		packetsReceived:       r.Counter("node.packets_received"),
		packetsForwarded:      r.Counter("node.packets_forwarded"),
		nacksSent:             r.Counter("node.nacks_sent"),
		nacksReceived:         r.Counter("node.nacks_received"),
		retransmits:           r.Counter("node.retransmits"),
		holesRecovered:        r.Counter("node.holes_recovered"),
		holesAbandoned:        r.Counter("node.holes_abandoned"),
		localHits:             r.Counter("node.local_hits"),
		pathLookups:           r.Counter("node.path_lookups"),
		pathSwitches:          r.Counter("node.path_switches"),
		droppedBFrames:        r.Counter("node.dropped_b_frames"),
		droppedPFrames:        r.Counter("node.dropped_p_frames"),
		droppedGoPs:           r.Counter("node.dropped_gops"),
		cacheHitPrimes:        r.Counter("node.cache_hit_primes"),
		bitrateSwitches:       r.Counter("node.bitrate_switches"),
		upstreamTimeouts:      r.Counter("node.upstream_timeouts"),
		fastSwitches:          r.Counter("node.fast_switches"),
		fastSwitchesPlanned:   r.Counter("node.fast_switches_planned"),
		fastSwitchesUnplanned: r.Counter("node.fast_switches_unplanned"),
		cacheFallbacks:        r.Counter("node.cache_fallbacks"),
		migrationsStarted:     r.Counter("node.migrations_started"),
		migrationsCompleted:   r.Counter("node.migrations_completed"),
		migrationsAborted:     r.Counter("node.migrations_aborted"),
		pacerQueueUs:          r.Histogram("node.pacer_queue_us"),
		fanoutBatch:           r.Histogram("node.fanout_batch_size"),
		framePoolHits:         r.Counter("node.frame_pool_hits"),
		framePoolMisses:       r.Counter("node.frame_pool_misses"),
	}
}
