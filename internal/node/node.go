// Package node implements the LiveNet overlay node: the fast–slow path
// transmission architecture of §5. A node keeps a Stream FIB mapping each
// stream to its downstream subscribers; on receiving an RTP packet the
// fast path immediately forwards it to all subscribers (through a paced
// sender, with no loss detection or ordering), while a copy enters the
// slow path for congestion control (GCC), per-hop NACK/retransmission
// loss recovery, frame assembly and GoP caching.
//
// The same node code serves all three roles of the flat CDN — producer,
// relay, consumer — exactly as the paper's role-flexible design requires:
// a node becomes a producer when a broadcaster uploads to it, a relay
// when other nodes subscribe through it, and a consumer when viewers
// attach to it.
package node

import (
	"encoding/binary"
	"fmt"
	"slices"
	"sync"
	"time"

	"livenet/internal/gcc"
	"livenet/internal/gop"
	"livenet/internal/media"
	"livenet/internal/pktbuf"
	"livenet/internal/rtp"
	"livenet/internal/sim"
	"livenet/internal/telemetry"
	"livenet/internal/wire"
)

// Sender abstracts the transport (the in-process emulator or real UDP).
// The transport must not retain data past the call (the node reuses the
// buffers it sends from).
type Sender interface {
	Send(from, to int, data []byte) error
}

// VecSender is implemented by transports that accept one datagram as a
// header + payload pair (scatter-gather). The node's zero-copy fan-out
// emits a small per-link header plus a payload tail shared across the
// whole FIB fan-out; a VecSender sends both without the node gluing them
// together first. Semantically SendVec(f,t,h,p) == Send(f,t,h++p).
// The transport must not retain either slice past the call.
type VecSender interface {
	SendVec(from, to int, hdr, payload []byte) error
}

// BatchSender is implemented by transports that can submit a whole batch
// of datagrams to one destination in a single call (udprun's sendmmsg
// path). Vecs must be sent in order; the slices must not be retained.
type BatchSender interface {
	SendBatch(from, to int, vecs []wire.Vec) error
}

// PathLookupFunc asks the Streaming Brain's Path Decision module for
// candidate paths for a stream, consumer pair. Paths are node-ID
// sequences from producer to consumer (inclusive). The callback may fire
// asynchronously (it models the RTT to the Path Decision replica).
type PathLookupFunc func(streamID uint32, consumer int, cb func(paths [][]int, err error))

// Config configures a Node.
type Config struct {
	ID    int
	Clock sim.Clock
	Net   Sender
	// LinkRTT estimates the RTT to a neighbor, used for the per-hop delay
	// extension accounting (processing + RTT/2). May be nil (counts
	// processing only).
	LinkRTT func(to int) time.Duration
	// PathLookup reaches the Streaming Brain. Nil disables consumer-side
	// establishment (pure relay/producer node).
	PathLookup PathLookupFunc
	// OnNewStream fires when a broadcaster starts uploading a new stream
	// here (producer role); the core wires it to Stream Management.
	OnNewStream func(streamID uint32)
	// IsOverlay reports whether an endpoint ID is another overlay node
	// (as opposed to a broadcaster/viewer client). Packets for unknown
	// streams from overlay peers are stray (e.g. in flight across a
	// teardown) and are dropped instead of adopting producership. Nil
	// treats every sender as a potential broadcaster.
	IsOverlay func(id int) bool
	// InitialRateBps seeds per-link pacers and GCC (default 8 Mbps).
	InitialRateBps float64
	// MinRateBps / MaxRateBps bound GCC (defaults 100 kbps / 100 Mbps).
	MinRateBps, MaxRateBps float64
	// ProcessingDelay is the nominal per-packet processing time added to
	// the delay extension at each hop (default 1 ms).
	ProcessingDelay time.Duration
	// GoPCacheGoPs bounds the per-stream GoP cache (default 3).
	GoPCacheGoPs int
	// FrameDropThreshold is the per-client queue delay that triggers
	// proactive frame dropping (default 350 ms); 2x drops P frames, 3x
	// whole GoPs.
	FrameDropThreshold time.Duration
	// NACKInterval is the slow-path loss scan period (default 50 ms, §5.1).
	NACKInterval time.Duration
	// ReportInterval is the RR/REMB feedback period (default 500 ms).
	ReportInterval time.Duration
	// MaxNACKRetries bounds recovery attempts per hole (default 8).
	MaxNACKRetries int
	// StallSwitchThreshold is the number of client-reported stalls that
	// triggers a path switch (long-chain mitigation, §4.4; default 2).
	StallSwitchThreshold int
	// OnStreamEnded fires when a producer stream is garbage-collected
	// after its broadcaster stops uploading; the core wires it to Stream
	// Management (unregister from the SIB).
	OnStreamEnded func(streamID uint32)
	// StreamIdleTimeout garbage-collects a producer stream after no
	// upload packets for this long (default 30 s).
	StreamIdleTimeout time.Duration
	// UpstreamTimeout is the upstream-silence detection window (§4.3): an
	// established non-producer stream with consumers that has received no
	// data for this long fast-switches to a backup path (re-querying the
	// Brain when backups are exhausted). Default 3 s; <0 disables.
	UpstreamTimeout time.Duration
	// EstablishTimeout re-arms a subscription that is stuck: a Subscribe
	// sent but never acked, or a failed path lookup, is retried after this
	// long (next backup first, then a fresh Brain query). Default 3 s.
	EstablishTimeout time.Duration
	// MigrateGuardTimeout bounds a make-before-break migration: if the new
	// leg has not delivered a spliceable GoP boundary within this window
	// the migration is aborted and the stream stays on (or is recovered
	// via) the reactive ladder. Must exceed one GoP interval. Default 4 s.
	MigrateGuardTimeout time.Duration
	// LowerRendition maps a stream to its next-lower simulcast rendition
	// (§5.2: "the consumer node will request a lower bitrate stream
	// version if the sending queue is consistently building up"). Nil
	// disables bitrate down-switching.
	LowerRendition func(sid uint32) (uint32, bool)
	// BitrateSwitchAfter is how long a client's queue must stay past the
	// drop threshold before down-switching (default 3 s).
	BitrateSwitchAfter time.Duration
	// SerialSend forces every outgoing packet through Net.Send one
	// datagram at a time, even when the transport supports vectored or
	// batched submits. The emulator makes batched sends byte- and
	// RNG-identical to serial ones, and the replay-equality tests use
	// this knob to prove it.
	SerialSend bool
	// Telemetry is the metrics registry this node registers its counters
	// in (see OBSERVABILITY.md for the catalogue). Nil disables
	// registration; the node then counts into private unregistered
	// instruments at identical (zero-allocation) cost.
	Telemetry *telemetry.Registry
	// Tracer records sampled per-packet journeys across hops. Nil (the
	// default) disables tracing entirely — no sampling draws are made, so
	// replays stay byte-identical with tracing-unaware builds.
	Tracer *telemetry.Tracer
}

func (c Config) withDefaults() Config {
	if c.InitialRateBps <= 0 {
		c.InitialRateBps = 8e6
	}
	if c.MinRateBps <= 0 {
		c.MinRateBps = 100e3
	}
	if c.MaxRateBps <= 0 {
		c.MaxRateBps = 100e6
	}
	if c.ProcessingDelay <= 0 {
		c.ProcessingDelay = time.Millisecond
	}
	if c.GoPCacheGoPs <= 0 {
		c.GoPCacheGoPs = 3
	}
	if c.FrameDropThreshold <= 0 {
		c.FrameDropThreshold = 350 * time.Millisecond
	}
	if c.NACKInterval <= 0 {
		c.NACKInterval = 50 * time.Millisecond
	}
	if c.ReportInterval <= 0 {
		c.ReportInterval = 500 * time.Millisecond
	}
	if c.MaxNACKRetries <= 0 {
		c.MaxNACKRetries = 8
	}
	if c.StallSwitchThreshold <= 0 {
		c.StallSwitchThreshold = 2
	}
	if c.BitrateSwitchAfter <= 0 {
		c.BitrateSwitchAfter = 3 * time.Second
	}
	if c.StreamIdleTimeout <= 0 {
		c.StreamIdleTimeout = 30 * time.Second
	}
	if c.UpstreamTimeout == 0 {
		c.UpstreamTimeout = 3 * time.Second
	}
	if c.EstablishTimeout <= 0 {
		c.EstablishTimeout = 3 * time.Second
	}
	if c.MigrateGuardTimeout <= 0 {
		c.MigrateGuardTimeout = 4 * time.Second
	}
	return c
}

// Metrics are the node's cumulative counters; the evaluation harness
// scrapes them (they correspond to the consumer-node logs of §6.1).
type Metrics struct {
	PacketsReceived  uint64
	PacketsForwarded uint64
	NACKsSent        uint64
	NACKsReceived    uint64
	Retransmits      uint64
	HolesRecovered   uint64
	HolesAbandoned   uint64
	LocalHits        uint64 // Algorithm 1 line 1 taken
	PathLookups      uint64
	PathSwitches     uint64
	DroppedBFrames   uint64
	DroppedPFrames   uint64
	DroppedGoPs      uint64
	CacheHitPrimes   uint64 // subscriptions served from local cache
	BitrateSwitches  uint64 // clients moved to a lower simulcast rendition
	UpstreamTimeouts uint64 // silence windows that triggered failure detection
	FastSwitches     uint64 // fast path switches (planned splices + silence recovery)
	// FastSwitchesPlanned/Unplanned attribute FastSwitches: a planned
	// make-before-break splice vs the reactive silence-detection ladder.
	FastSwitchesPlanned   uint64
	FastSwitchesUnplanned uint64
	CacheFallbacks        uint64 // Brain unreachable, local path cache used instead
	MigrationsStarted     uint64 // make-before-break migrations begun
	MigrationsCompleted   uint64 // migrations spliced onto the new leg
	MigrationsAborted     uint64 // migrations abandoned (guard timer / reject / teardown)
}

// pacerTick is the pacer drain granularity.
const pacerTick = 2 * time.Millisecond

// Node is one overlay node.
type Node struct {
	mu  sync.Mutex
	cfg Config
	id  int

	streams map[uint32]*stream
	out     map[int]*outLink

	// pool backs the zero-copy fan-out: each ingress packet's payload
	// tail is copied into a pooled buffer once and shared (refcounted)
	// across every subscriber.
	pool *pktbuf.Pool
	// vecNet/batchNet are the transport's optional vectored/batched
	// entry points, resolved once at construction (nil when unsupported
	// or when cfg.SerialSend forces the plain path).
	vecNet   VecSender
	batchNet BatchSender

	tel instruments

	// dirty is the set of links with packets awaiting a pacer drain, in
	// kick order; one scheduled drainAll pass services all of them, so a
	// 1k-subscriber fan-out costs one clock event instead of one per
	// link. dirtySpare recycles the drained slice for the next round and
	// flushScratch the list of links whose batches a pass is flushing
	// (both taken exclusively under mu, so overlapping passes under a
	// real clock fall back to fresh slices instead of sharing).
	dirty          []*outLink
	dirtySpare     []*outLink
	flushScratch   []*outLink
	drainScheduled bool
	drainAllFn     func()

	// OnFirstPacket fires when the first data packet is sent to a local
	// client after AttachViewer (first-packet delay, §6.1).
	OnFirstPacket func(clientID int, streamID uint32, delay time.Duration)
	// OnEstablished fires when a consumer-side subscription is acked with
	// the actual producer→here path.
	OnEstablished func(streamID uint32, path []int, localHit bool)

	scanTimer sim.Timer
	scanSIDs  []uint32 // reusable sorted-iteration scratch for scan()
	// draining refuses new downstream subscriptions (SubReject) while the
	// node's carried streams are migrated off for a planned decommission.
	draining bool
	closed   bool
}

// outLink is the paced sender state toward one neighbor (node or client).
type outLink struct {
	to            int
	pacer         *gcc.Pacer[outPacket]
	ctrl          *gcc.Controller
	tickScheduled bool

	// emitFn is created once per link so draining the pacer does not
	// allocate a closure on the hot path.
	emitFn func(it gcc.Item[outPacket])
	// toSend is the drain scratch: filled by emitFn under mu, flushed
	// outside it. sending guards it against overlapping drains under a
	// real (concurrent) clock — a drain that finds the flush in progress
	// reschedules instead of sharing the scratch.
	toSend  []outPacket
	sending bool
	// vecs/asm are flush scratch: the batch submit view and the
	// plain-Send assembly buffer.
	vecs []wire.Vec
	asm  []byte
}

// outHdrCap bounds the inline header prefix an outPacket carries: the
// wire envelope (5 bytes) plus the RTP header, CSRC list, and extension
// block. LiveNet's own packets use 5+12+12 = 29 bytes; anything larger
// (foreign CSRC-heavy packets) falls back to a full frame copy.
const outHdrCap = 48

// outPacket is a pacer queue entry: one datagram bound for one neighbor.
// The mutable region of the frame — wire tag, send-time stamp, RTP
// header and delay extension — is a private inline copy in hdr, so the
// per-link delay accounting and send-time stamping never touch shared
// bytes. The payload tail is a refcounted pooled buffer shared across
// the whole fan-out (zero-copy). Cold-path packets (GoP cache primes,
// retransmissions, foreign packets with oversized prefixes) instead
// carry a private full frame in frame, with tail nil.
//
// The trace fields identify the RTP packet for the per-hop tracer;
// traced is false for every packet when tracing is off, so drainLink's
// trace branch never fires.
type outPacket struct {
	to     int
	hdr    [outHdrCap]byte // frame prefix: [MsgRTP][sendtime][RTP hdr+ext]
	hdrLen uint8           // bytes of hdr in use (0 when frame is set)
	tail   *pktbuf.Buf     // shared payload after the prefix (holds one ref)
	frame  []byte          // cold path: private full frame, placeholder send time
	sid    uint32          // RTP SSRC (stream ID)
	seq    uint16          // RTP sequence number
	traced bool            // packet has an open journey in the tracer
	rtx    bool            // NACK-triggered retransmission
}

// size returns the datagram length.
func (p *outPacket) size() int {
	if p.tail != nil {
		return int(p.hdrLen) + p.tail.Len()
	}
	return len(p.frame)
}

// release drops the packet's reference on the shared payload tail.
func (p *outPacket) release() {
	if p.tail != nil {
		p.tail.Release()
		p.tail = nil
	}
}

// dropRelease is the pacer DropClass callback (package-level: no closure
// allocation at the call sites).
func dropRelease(it gcc.Item[outPacket]) { it.Payload.release() }

// fanoutSrc is the per-ingress-packet fan-out source, built once in
// onRTP: the frame prefix template (send time zeroed, delay extension
// still the upstream's — each link patches its own copy) and the pooled
// payload tail shared by every subscriber. When the packet's prefix
// does not fit outHdrCap (tail == nil), pushFrom falls back to framing
// a private copy per subscriber from rtpData.
type fanoutSrc struct {
	hdr     [outHdrCap]byte
	hdrLen  uint8
	tail    *pktbuf.Buf // nil: fall back to per-subscriber frame copies
	rtpData []byte      // borrowed from the transport; valid during onRTP only
	sid     uint32
	seq     uint16
}

// initFanoutSrc populates src for one ingress packet. Called with mu held.
func (n *Node) initFanoutSrc(src *fanoutSrc, rtpData []byte, sid uint32, seq uint16) {
	src.rtpData = rtpData
	src.sid = sid
	src.seq = seq
	src.tail = nil
	pl := rtp.PrefixLen(rtpData)
	if pl < 0 || wire.RTPHeaderLen+pl > outHdrCap {
		return
	}
	src.hdr[0] = wire.MsgRTP
	binary.BigEndian.PutUint32(src.hdr[1:], 0)
	copy(src.hdr[wire.RTPHeaderLen:], rtpData[:pl])
	src.hdrLen = uint8(wire.RTPHeaderLen + pl)
	src.tail = n.pool.Get(len(rtpData) - pl)
	copy(src.tail.Bytes(), rtpData[pl:])
}

// release drops the source's own reference (subscribers hold their own).
func (src *fanoutSrc) release() {
	if src.tail != nil {
		src.tail.Release()
		src.tail = nil
	}
}

// stream is the per-stream state (FIB entry + slow path).
type stream struct {
	id          uint32
	producer    bool
	upstream    int // node we receive from; -1 if none yet; broadcaster client if producer
	established bool
	fullPath    []int // actual producer→this-node path (this node last)

	subscribers map[int]bool         // downstream overlay nodes
	clients     map[int]*clientState // locally attached viewers
	// subOrder/clientOrder mirror the FIB maps in insertion order: the
	// fast path fans out along these slices so packet emission order (and
	// with it the whole simulation) is deterministic — map iteration
	// order is not.
	subOrder    []int
	clientOrder []int

	lookupPending  bool
	backupPaths    [][]int
	requestedPath  []int
	establishStart time.Duration

	// cachedPaths is the node-local path cache (§4.3): the last successful
	// Brain answer, used when the Brain itself is unreachable.
	cachedPaths [][]int
	// retryAt re-arms a stuck establishment (Subscribe never acked, or a
	// failed lookup with nothing cached); 0 when disarmed.
	retryAt time.Duration

	// pendingSubs are downstream Subscribe requests that arrived before we
	// ourselves are established; acked when the SubAck comes back.
	pendingSubs []uint16

	cache *gop.Cache
	rtx   *rtxRing
	rx    *recvState

	// lastData is when the last RTP packet for this stream arrived
	// (drives producer-stream garbage collection).
	lastData time.Duration

	// mig is the in-flight make-before-break migration, nil otherwise.
	mig *migration
	// oldLegFrom/oldLegUntil gate the just-torn-down upstream after a
	// splice: its in-flight packets still reach the slow path (seq dedup)
	// but are kept out of the fan-out so downstream sees no duplicates.
	// oldLegFrom is -1 when no grace window is active.
	oldLegFrom  int
	oldLegUntil time.Duration
	// fanoutGate suppresses fan-out of new-upstream packets older than
	// fanoutFrom just after a splice: the old leg already delivered that
	// overlap, so re-forwarding it would duplicate frames downstream. The
	// gate clears itself on the first packet at or past the resume point.
	fanoutGate bool
	fanoutFrom uint16
	// pruneAt rate-limits reverse-path prunes: stream data arriving from
	// an overlay peer that is not this stream's upstream means that peer
	// holds a stale FIB entry (our Unsubscribe was lost); the next prune
	// re-sends it no earlier than this.
	pruneAt time.Duration
	// lastFanout tracks the highest sequence number actually fanned out,
	// so a splice knows the downstream delivery front (which can trail
	// rx.highest when a gated migration leg runs ahead of the old leg).
	lastFanout uint16
	haveFanout bool
}

// New creates a node and starts its slow-path timers.
func New(cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:     cfg,
		id:      cfg.ID,
		streams: make(map[uint32]*stream),
		out:     make(map[int]*outLink),
		pool:    pktbuf.New(),
		tel:     newInstruments(cfg.Telemetry),
	}
	n.pool.Instrument(n.tel.framePoolHits, n.tel.framePoolMisses)
	n.drainAllFn = n.drainAll
	if !cfg.SerialSend {
		n.vecNet, _ = cfg.Net.(VecSender)
		n.batchNet, _ = cfg.Net.(BatchSender)
	}
	n.scheduleScan()
	return n
}

// ID returns the node's overlay ID.
func (n *Node) ID() int { return n.id }

// Metrics returns a snapshot of the counters. The struct view is kept for
// existing callers; the same values live in the telemetry registry under
// the node.* names when one is attached.
func (n *Node) Metrics() Metrics {
	return Metrics{
		PacketsReceived:       n.tel.packetsReceived.Load(),
		PacketsForwarded:      n.tel.packetsForwarded.Load(),
		NACKsSent:             n.tel.nacksSent.Load(),
		NACKsReceived:         n.tel.nacksReceived.Load(),
		Retransmits:           n.tel.retransmits.Load(),
		HolesRecovered:        n.tel.holesRecovered.Load(),
		HolesAbandoned:        n.tel.holesAbandoned.Load(),
		LocalHits:             n.tel.localHits.Load(),
		PathLookups:           n.tel.pathLookups.Load(),
		PathSwitches:          n.tel.pathSwitches.Load(),
		DroppedBFrames:        n.tel.droppedBFrames.Load(),
		DroppedPFrames:        n.tel.droppedPFrames.Load(),
		DroppedGoPs:           n.tel.droppedGoPs.Load(),
		CacheHitPrimes:        n.tel.cacheHitPrimes.Load(),
		BitrateSwitches:       n.tel.bitrateSwitches.Load(),
		UpstreamTimeouts:      n.tel.upstreamTimeouts.Load(),
		FastSwitches:          n.tel.fastSwitches.Load(),
		FastSwitchesPlanned:   n.tel.fastSwitchesPlanned.Load(),
		FastSwitchesUnplanned: n.tel.fastSwitchesUnplanned.Load(),
		CacheFallbacks:        n.tel.cacheFallbacks.Load(),
		MigrationsStarted:     n.tel.migrationsStarted.Load(),
		MigrationsCompleted:   n.tel.migrationsCompleted.Load(),
		MigrationsAborted:     n.tel.migrationsAborted.Load(),
	}
}

// Close stops timers.
func (n *Node) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
	if n.scanTimer != nil {
		n.scanTimer.Stop()
	}
}

// Streams returns the IDs of streams with state on this node.
func (n *Node) Streams() []uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]uint32, 0, len(n.streams))
	for id := range n.streams {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// HasStream reports whether the node carries the stream (established).
func (n *Node) HasStream(sid uint32) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.streams[sid]
	return s != nil && s.established
}

// StreamPath returns the actual producer→node path for an established
// stream (nil otherwise).
func (n *Node) StreamPath(sid uint32) []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.streams[sid]
	if s == nil || !s.established {
		return nil
	}
	return append([]int(nil), s.fullPath...)
}

// StreamCount returns the number of streams with state on this node. The
// core feeds it into the Brain's node-load reports (combined with link
// utilization, per §4.2 footnote 4).
func (n *Node) StreamCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.streams)
}

// OnMessage is the transport delivery entry point.
func (n *Node) OnMessage(from int, data []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	switch wire.Kind(data) {
	case wire.MsgRTP:
		n.onRTP(from, data)
	case wire.MsgRTCP:
		n.onRTCP(from, data[1:])
	case wire.MsgSubscribe:
		n.onSubscribe(from, data)
	case wire.MsgUnsubscribe:
		n.onUnsubscribe(from, data)
	case wire.MsgSubAck:
		n.onSubAck(from, data)
	case wire.MsgSubReject:
		n.onSubReject(from, data)
	}
}

// onRTP is the fast path (§5.1): FIB lookup, immediate forward to all
// subscribers, then a copy to the slow path. Called with mu held.
func (n *Node) onRTP(from int, data []byte) {
	sendTime10us, rtpData, err := wire.UnframeRTP(data)
	if err != nil {
		return
	}
	var pkt rtp.Packet
	if err := pkt.Unmarshal(rtpData); err != nil {
		return
	}
	n.tel.packetsReceived.Inc()
	now := n.cfg.Clock.Now()

	fromOverlay := n.cfg.IsOverlay != nil && n.cfg.IsOverlay(from)
	s := n.streams[pkt.SSRC]
	switch {
	case s == nil && !fromOverlay:
		// Unknown stream from a client: a broadcaster upload makes this
		// node the stream's producer.
		s = n.newStream(pkt.SSRC)
		n.adoptProducerRole(s, from)
	case s == nil:
		// Stray packet from an overlay peer (e.g. in flight across a
		// teardown): drop.
		return
	case !s.established && s.upstream == -1 && !s.lookupPending && !fromOverlay:
		// The stream had parked subscriptions (viewers arrived before the
		// broadcast began) and the upload is now starting here.
		n.adoptProducerRole(s, from)
	}
	s.lastData = now
	isRTX := false
	if s.rx != nil && s.rx.isPendingHole(pkt.SequenceNumber) {
		isRTX = true
	}

	// Per-hop tracing: overlay ingress (a broadcaster upload with somewhere
	// to forward to) offers the packet for sampling; arrivals from overlay
	// peers extend an already-open journey. A nil tracer skips the whole
	// block — no sampling draws, no behavior change.
	if tr := n.cfg.Tracer; tr != nil {
		if !fromOverlay {
			if len(s.subOrder)+len(s.clientOrder) > 0 {
				tr.Begin(pkt.SSRC, pkt.SequenceNumber, n.id)
			}
		} else {
			tr.Recv(pkt.SSRC, pkt.SequenceNumber, n.id)
		}
	}

	// Make-before-break gating (§4.3 extension): while a migration's new
	// leg runs alongside the active one, its packets feed the slow path
	// (warming the dedup window and GoP cache) but must not fan out —
	// downstream would see duplicates. The splice flips legs on a GoP
	// boundary; the resume gate below then suppresses the overlap the old
	// leg already delivered.
	fanout := true
	if m := s.mig; m != nil && fromOverlay && from == m.prevHop && from != s.upstream {
		if m.acked && spliceReady(&pkt) {
			n.spliceLocked(s, now)
		} else {
			fanout = false
		}
	} else if s.oldLegFrom >= 0 && from == s.oldLegFrom && from != s.upstream {
		// Post-splice grace: the old leg's in-flight tail still feeds
		// the slow path (dedup, loss bookkeeping) but never the fan-out —
		// everything below the resume point was either already delivered
		// or flushed from the RTX ring at the splice.
		if now >= s.oldLegUntil {
			s.oldLegFrom = -1
		}
		fanout = false
	}
	if fanout && s.fanoutGate && fromOverlay && from == s.upstream {
		if rtp.SeqLess(pkt.SequenceNumber, s.fanoutFrom) {
			fanout = false
		} else {
			s.fanoutGate = false
		}
	}

	// Reverse-path check: stream data from an overlay peer that is not
	// this stream's upstream (nor a tolerated migration or old-leg feed)
	// means that peer holds a stale subscription for us — our Unsubscribe
	// was lost in transit. Re-send it, rate limited, so the stale FIB
	// entry is eventually pruned, and drop the packet: a foreign feed
	// must reach neither the fan-out nor the slow path.
	if fromOverlay && s.established && s.upstream >= 0 && from != s.upstream &&
		from != s.oldLegFrom && (s.mig == nil || from != s.mig.prevHop) {
		if now >= s.pruneAt {
			s.pruneAt = now + prunePeriod
			u := wire.Unsubscribe{StreamID: s.id, Requester: uint16(n.id)}
			n.sendControl(from, u.Marshal(nil))
		}
		return
	}

	// Fast path: forward to every subscribed downstream node. The frame
	// envelope is built once; each subscriber gets a private copy of the
	// mutable prefix (so the per-hop delay extension can differ per
	// link) and a refcounted reference to the shared payload tail.
	if fanout && len(s.subOrder)+len(s.clientOrder) > 0 {
		if !s.haveFanout || rtp.SeqLess(s.lastFanout, pkt.SequenceNumber) {
			s.lastFanout = pkt.SequenceNumber
			s.haveFanout = true
		}
		class, gain := classify(&pkt)
		var src fanoutSrc
		n.initFanoutSrc(&src, rtpData, pkt.SSRC, pkt.SequenceNumber)
		for _, sub := range s.subOrder {
			n.forwardTo(sub, &src, class, gain, isRTX)
		}
		// Local clients (consumer role), with proactive frame dropping.
		for _, id := range s.clientOrder {
			n.forwardToClient(s, s.clients[id], &src, &pkt)
		}
		src.release()
	}

	// Slow path: congestion control, loss recovery, framing, GoP cache.
	n.slowPathReceive(s, from, sendTime10us, rtpData, &pkt)
}

// classify maps a packet to a pacer class and pacing gain using the
// frame header that rides at the start of the payload.
func classify(pkt *rtp.Packet) (gcc.Class, float64) {
	if pkt.PayloadType == rtp.PayloadAudio {
		return gcc.ClassAudio, 0
	}
	var h media.FrameHeader
	if err := h.Unmarshal(pkt.Payload); err == nil && h.Type == media.FrameI {
		return gcc.ClassVideo, gcc.IFramePacingGain
	}
	return gcc.ClassVideo, 0
}

// forwardTo enqueues one fan-out packet toward a downstream node.
// Called with mu held.
func (n *Node) forwardTo(to int, src *fanoutSrc, class gcc.Class, gain float64, isRTX bool) {
	if isRTX {
		class = gcc.ClassRTX
	}
	l := n.link(to)
	n.pushFrom(l, src, class, gain, isRTX, n.cfg.Tracer.Traced(src.sid, src.seq))
	n.kickPacer(l)
}

// pushFrom builds the per-link outPacket from the fan-out source —
// copying only the mutable prefix and retaining the shared tail — and
// enqueues it on the link's pacer. The per-hop delay accounting
// (processing + RTT/2, §6.1) is patched into the private prefix copy.
// Called with mu held.
func (n *Node) pushFrom(l *outLink, src *fanoutSrc, class gcc.Class, gain float64, isRTX, traced bool) {
	var half time.Duration
	if n.cfg.LinkRTT != nil {
		half = n.cfg.LinkRTT(l.to) / 2
	}
	add := uint32((n.cfg.ProcessingDelay + half) / (10 * time.Microsecond))
	op := outPacket{to: l.to, sid: src.sid, seq: src.seq, rtx: isRTX, traced: traced}
	if src.tail != nil {
		op.hdr = src.hdr
		op.hdrLen = src.hdrLen
		op.tail = src.tail.Retain()
		rtp.PatchDelayExt(op.hdr[wire.RTPHeaderLen:op.hdrLen], add)
	} else {
		frame := wire.FrameRTP(make([]byte, 0, wire.RTPHeaderLen+len(src.rtpData)), 0, src.rtpData)
		rtp.PatchDelayExt(frame[wire.RTPHeaderLen:], add)
		op.frame = frame
	}
	l.pacer.Push(gcc.Item[outPacket]{Class: class, Size: op.size(), Gain: gain, Payload: op})
}

// forwardCopy frames rtpData into a private allocation and enqueues it
// (cold paths: GoP cache primes toward overlay subscribers and
// NACK-triggered retransmissions — rtpData belongs to cache/ring storage
// that may be recycled, so sharing a pooled tail is not safe here).
// Called with mu held.
func (n *Node) forwardCopy(to int, rtpData []byte, class gcc.Class, gain float64, isRTX bool, sid uint32, seq uint16) {
	src := fanoutSrc{rtpData: rtpData, sid: sid, seq: seq}
	n.forwardTo(to, &src, class, gain, isRTX)
}

// link returns (creating if needed) the out-link state for a neighbor.
// Called with mu held.
func (n *Node) link(to int) *outLink {
	l := n.out[to]
	if l == nil {
		l = &outLink{
			to:    to,
			pacer: gcc.NewPacer[outPacket](n.cfg.InitialRateBps),
			ctrl:  gcc.NewController(n.cfg.InitialRateBps, n.cfg.MinRateBps, n.cfg.MaxRateBps),
		}
		l.emitFn = func(it gcc.Item[outPacket]) { l.toSend = append(l.toSend, it.Payload) }
		n.out[to] = l
	}
	return l
}

// kickPacer marks a link dirty and ensures a drain pass is scheduled.
// Called with mu held.
func (n *Node) kickPacer(l *outLink) {
	if !l.tickScheduled {
		l.tickScheduled = true
		n.dirty = append(n.dirty, l)
	}
	if !n.drainScheduled {
		n.drainScheduled = true
		n.cfg.Clock.Schedule(pacerTick, n.drainAllFn)
	}
}

// rekick re-arms a link for the next drain pass. Called with mu held.
func (n *Node) rekick(l *outLink) {
	l.tickScheduled = true
	n.dirty = append(n.dirty, l)
	if !n.drainScheduled {
		n.drainScheduled = true
		n.cfg.Clock.Schedule(pacerTick, n.drainAllFn)
	}
}

// drainAll services every dirty link in one pass: drain each link's
// pacer into its scratch under one lock hold, then stamp and flush the
// batches outside the lock. One clock event and two lock transitions
// cover the whole fan-out regardless of subscriber count.
func (n *Node) drainAll() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.drainScheduled = false
	links := n.dirty
	n.dirty = n.dirtySpare[:0]
	n.dirtySpare = nil // in use below; a concurrent pass must not take it
	flush := n.flushScratch[:0]
	n.flushScratch = nil
	now := n.cfg.Clock.Now()
	for _, l := range links {
		l.tickScheduled = false
		if l.sending {
			// A previous pass is still flushing this link's batch outside
			// the lock (possible under a real, concurrent clock). The
			// scratch is in use: come back next tick.
			n.rekick(l)
			continue
		}
		if qd := l.pacer.QueueDelay(); qd > 0 {
			n.tel.pacerQueueUs.Observe(int64(qd / time.Microsecond))
		}
		l.toSend = l.toSend[:0]
		l.pacer.Drain(now, l.emitFn)
		n.tel.packetsForwarded.Add(uint64(len(l.toSend)))
		if l.pacer.QueueLen() > 0 {
			n.rekick(l)
		}
		if len(l.toSend) > 0 {
			n.tel.fanoutBatch.Observe(int64(len(l.toSend)))
			l.sending = true
			flush = append(flush, l)
		}
	}
	n.mu.Unlock()

	// Stamp and send outside the lock: the transport may deliver
	// synchronously in degenerate cases and re-enter OnMessage.
	now10us := uint32(now / (10 * time.Microsecond))
	for _, l := range flush {
		toSend := l.toSend
		for i := range toSend {
			p := &toSend[i]
			if p.tail != nil {
				binary.BigEndian.PutUint32(p.hdr[1:], now10us)
			} else {
				wire.PatchRTPSendTime(p.frame, now10us)
			}
			if p.traced {
				n.cfg.Tracer.Send(p.sid, p.seq, n.id, p.to, p.rtx)
			}
		}
		n.flushBatch(l, toSend)
		for i := range toSend {
			toSend[i].release()
			toSend[i] = outPacket{}
		}
	}

	n.mu.Lock()
	for i, l := range flush {
		l.sending = false
		flush[i] = nil
	}
	for i := range links {
		links[i] = nil
	}
	// Recycle the scratch slices now that this pass is done with them.
	n.dirtySpare = links[:0]
	n.flushScratch = flush[:0]
	n.mu.Unlock()
}

// flushBatch hands the drained link batch to the transport: one batched
// submit when the transport supports it, vectored sends otherwise, and
// plain per-datagram sends (assembling prefix+tail in the link's scratch)
// as the portable floor. Transport errors (no link) are swallowed: the
// fast path has nothing to do, and the transport counts them.
func (n *Node) flushBatch(l *outLink, toSend []outPacket) {
	if n.batchNet != nil {
		vecs := l.vecs[:0]
		for i := range toSend {
			p := &toSend[i]
			if p.tail != nil {
				vecs = append(vecs, wire.Vec{Hdr: p.hdr[:p.hdrLen], Payload: p.tail.Bytes()})
			} else {
				vecs = append(vecs, wire.Vec{Hdr: p.frame})
			}
		}
		l.vecs = vecs
		_ = n.batchNet.SendBatch(n.id, l.to, vecs)
		for i := range vecs {
			vecs[i] = wire.Vec{}
		}
		return
	}
	if n.vecNet != nil {
		for i := range toSend {
			p := &toSend[i]
			if p.tail != nil {
				_ = n.vecNet.SendVec(n.id, p.to, p.hdr[:p.hdrLen], p.tail.Bytes())
			} else {
				_ = n.vecNet.SendVec(n.id, p.to, p.frame, nil)
			}
		}
		return
	}
	for i := range toSend {
		p := &toSend[i]
		if p.tail == nil {
			_ = n.cfg.Net.Send(n.id, p.to, p.frame)
			continue
		}
		l.asm = append(append(l.asm[:0], p.hdr[:p.hdrLen]...), p.tail.Bytes()...)
		_ = n.cfg.Net.Send(n.id, p.to, l.asm)
	}
}

// sendControl sends a control message immediately (not paced).
// Called with mu held or not — it does not touch node state.
func (n *Node) sendControl(to int, data []byte) {
	if err := n.cfg.Net.Send(n.id, to, data); err != nil {
		_ = err
	}
}

// adoptProducerRole marks this node as the stream's producer (the
// broadcaster uploads directly to it) and acks any parked downstream
// subscriptions. Called with mu held.
func (n *Node) adoptProducerRole(s *stream, broadcaster int) {
	s.producer = true
	s.upstream = broadcaster
	s.established = true
	s.retryAt = 0
	s.fullPath = []int{n.id}
	n.ackPendingSubsLocked(s)
	if n.cfg.OnNewStream != nil {
		sid := s.id
		cb := n.cfg.OnNewStream
		n.cfg.Clock.AfterFunc(0, func() { cb(sid) })
	}
}

// ackPendingSubsLocked acks downstream subscribers that were waiting for
// this node to become established.
func (n *Node) ackPendingSubsLocked(s *stream) {
	if len(s.pendingSubs) == 0 {
		return
	}
	ackPath := make([]uint16, 0, len(s.fullPath))
	for _, h := range s.fullPath {
		ackPath = append(ackPath, uint16(h))
	}
	for _, req := range s.pendingSubs {
		out := wire.SubAck{StreamID: s.id, Path: ackPath}
		n.sendControl(int(req), out.Marshal(nil))
	}
	s.pendingSubs = s.pendingSubs[:0]
}

// newStream creates stream state. Called with mu held.
func (n *Node) newStream(sid uint32) *stream {
	s := &stream{
		id:          sid,
		upstream:    -1,
		oldLegFrom:  -1,
		subscribers: make(map[int]bool),
		clients:     make(map[int]*clientState),
		cache:       gop.NewCache(n.cfg.GoPCacheGoPs, 0),
		rtx:         newRTXRing(1024),
	}
	n.streams[sid] = s
	return s
}

// addSubscriber/dropSubscriber and addClient/dropClient keep the ordered
// mirrors in sync with the FIB maps.
func (s *stream) addSubscriber(id int) {
	if !s.subscribers[id] {
		s.subscribers[id] = true
		s.subOrder = append(s.subOrder, id)
	}
}

func (s *stream) dropSubscriber(id int) {
	if s.subscribers[id] {
		delete(s.subscribers, id)
		s.subOrder = removeID(s.subOrder, id)
	}
}

func (s *stream) addClient(c *clientState) {
	if s.clients[c.id] == nil {
		s.clientOrder = append(s.clientOrder, c.id)
	}
	s.clients[c.id] = c
}

func (s *stream) dropClient(id int) {
	if s.clients[id] != nil {
		delete(s.clients, id)
		s.clientOrder = removeID(s.clientOrder, id)
	}
}

func removeID(xs []int, id int) []int {
	for i, x := range xs {
		if x == id {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}

// String implements fmt.Stringer.
func (n *Node) String() string { return fmt.Sprintf("node(%d)", n.id) }

// LinkState reports the pacing rate and queue depth toward a neighbor
// (introspection for operations dashboards and tests).
func (n *Node) LinkState(to int) (rateBps float64, queueBytes int, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.out[to]
	if l == nil {
		return 0, 0, false
	}
	return l.pacer.Rate(), l.pacer.QueueBytes(), true
}

// RecvRate reports the receiver-side GCC estimate and measured incoming
// bitrate for a stream (introspection).
func (n *Node) RecvRate(sid uint32) (aimdBps, incomingBps float64, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.streams[sid]
	if s == nil || s.rx == nil {
		return 0, 0, false
	}
	return s.rx.aimd.Rate(), s.rx.meter.BitrateBps(n.cfg.Clock.Now()), true
}
