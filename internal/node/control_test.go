package node

import (
	"testing"
	"time"

	"livenet/internal/netem"
	"livenet/internal/rtp"
	"livenet/internal/wire"
)

func TestInstallPathsMakesFirstViewerFast(t *testing.T) {
	h := newHarness(t, 20, []int{0, 1})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(0, 1, 20*time.Millisecond, 0)
	h.link(1, viewerBase, 10*time.Millisecond, 0)
	h.addViewer(viewerBase)

	const sid = 31
	h.broadcast(sid, 0, 200)

	// The Brain proactively pushes the path before any viewer arrives.
	h.loop.AfterFunc(time.Second, func() {
		h.nodes[1].InstallPaths(sid, [][]int{{0, 1}})
	})
	// The first viewer arrives later: the stream is already established
	// and cached, so the request is a local hit.
	var hit bool
	h.loop.AfterFunc(4*time.Second, func() {
		hit = h.nodes[1].AttachViewer(viewerBase, sid)
	})
	h.loop.RunUntil(8 * time.Second)

	if !hit {
		t.Fatal("prefetched path should make the first viewer a local hit")
	}
	if h.nodes[1].Metrics().PathLookups != 0 {
		t.Fatal("prefetch should avoid the Brain lookup entirely")
	}
	if len(h.viewerRecv[viewerBase]) == 0 {
		t.Fatal("viewer got no data")
	}
}

func TestMigrateProducerKeepsDownstreamPaths(t *testing.T) {
	// Broadcaster mobility (§7.1): producer moves 0 -> 3; the old
	// producer subscribes to the new one; the consumer's subscription is
	// untouched and data keeps flowing.
	h := newHarness(t, 21, []int{0, 1, 3})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(broadcasterID+1, 3, 10*time.Millisecond, 0)
	h.link(0, 1, 20*time.Millisecond, 0)
	h.link(0, 3, 20*time.Millisecond, 0)
	h.link(1, viewerBase, 10*time.Millisecond, 0)
	h.addViewer(viewerBase)

	const sid = 33
	h.paths[sid] = [][]int{{0, 1}}
	h.broadcast(sid, 0, 100) // old location, 4 s of video

	h.loop.AfterFunc(time.Second, func() {
		h.nodes[1].AttachViewer(viewerBase, sid)
	})

	var framesBefore int
	h.loop.AfterFunc(5*time.Second, func() {
		framesBefore = len(h.viewerRecv[viewerBase])
		// The broadcaster moves: uploads now land on node 3 (same SID).
		rngStream := h.loop.RNG("media-moved")
		_ = rngStream
		h.broadcastFrom(sid, 3, broadcasterID+1, 150)
		// The Brain instructs the old producer to subscribe to the new one.
		h.nodes[0].MigrateProducer(sid, []int{3, 0})
	})
	h.loop.RunUntil(12 * time.Second)

	framesAfter := len(h.viewerRecv[viewerBase])
	if framesAfter <= framesBefore+100 {
		t.Fatalf("no data after producer migration: %d -> %d packets", framesBefore, framesAfter)
	}
	// The consumer's upstream is still node 0: downstream paths unchanged.
	h.nodes[1].mu.Lock()
	up := h.nodes[1].streams[sid].upstream
	h.nodes[1].mu.Unlock()
	if up != 0 {
		t.Fatalf("consumer upstream changed to %d; should still be the old producer", up)
	}
	// The old producer now receives from node 3.
	h.nodes[0].mu.Lock()
	s0 := h.nodes[0].streams[sid]
	oldUp, isProd := s0.upstream, s0.producer
	h.nodes[0].mu.Unlock()
	if isProd || oldUp != 3 {
		t.Fatalf("old producer state: producer=%v upstream=%d, want subscriber of 3", isProd, oldUp)
	}
}

// broadcastFrom streams frames from an arbitrary broadcaster endpoint.
func (h *harness) broadcastFrom(sid uint32, producer, fromID, frames int) {
	rng := h.loop.RNG("media-b2")
	enc := mediaEncoder(rng)
	pz := mediaPacketizer(sid)
	sent := 0
	var tick func()
	tick = func() {
		if sent >= frames {
			return
		}
		sent++
		f := enc.NextFrame()
		now10us := uint32(h.loop.Now() / (10 * time.Microsecond))
		for _, pkt := range pz.Packetize(f, 200, nil) {
			frame := wire.FrameRTP(nil, now10us, pkt.Marshal(nil))
			h.net.Send(fromID, producer, frame)
		}
		h.loop.AfterFunc(enc.FrameInterval(), tick)
	}
	h.loop.AfterFunc(0, tick)
}

func TestBitrateDownSwitchUnderPressure(t *testing.T) {
	h := newHarness(t, 22, []int{0, 1})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(0, 1, 20*time.Millisecond, 0)
	h.link(1, viewerBase, 10*time.Millisecond, 0)
	h.addViewer(viewerBase)

	const hiSID, loSID = 40, 41
	h.paths[hiSID] = [][]int{{0, 1}}
	h.paths[loSID] = [][]int{{0, 1}}
	// Rewire node 1 with the simulcast ladder knowledge.
	h.nodes[1].cfg.LowerRendition = func(sid uint32) (uint32, bool) {
		if sid == hiSID {
			return loSID, true
		}
		return 0, false
	}
	h.nodes[1].cfg.BitrateSwitchAfter = time.Second

	// Both renditions are broadcast.
	h.broadcast(hiSID, 0, 400)
	h.broadcastFrom(loSID, 0, broadcasterID, 400)

	h.loop.AfterFunc(500*time.Millisecond, func() {
		h.nodes[1].AttachViewer(viewerBase, hiSID)
	})
	// The viewer's access collapses: its REMB caps the client pacer far
	// below the high rendition's rate, so the queue stays pressured.
	h.loop.AfterFunc(2*time.Second, func() {
		remb := rtp.MarshalREMB(&rtp.REMB{SenderSSRC: viewerBase, BitrateBps: 200_000, SSRCs: []uint32{hiSID}}, nil)
		h.net.Send(viewerBase, 1, wire.FrameRTCP(nil, remb))
	})
	h.loop.RunUntil(14 * time.Second)

	m := h.nodes[1].Metrics()
	if m.BitrateSwitches == 0 {
		t.Fatalf("persistent queue pressure should trigger a bitrate down-switch: %+v", m)
	}
	// The viewer must have received packets of the lower rendition.
	sawLow := false
	for _, p := range h.viewerRecv[viewerBase] {
		if p.SSRC == loSID {
			sawLow = true
			break
		}
	}
	if !sawLow {
		t.Fatal("viewer never received the lower rendition after the switch")
	}
}

func TestPathSwitchReQueriesWhenBackupsExhausted(t *testing.T) {
	h := newHarness(t, 23, []int{0, 1})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(0, 1, 20*time.Millisecond, 0)
	h.link(1, viewerBase, 10*time.Millisecond, 0)
	h.addViewer(viewerBase)

	const sid = 45
	h.paths[sid] = [][]int{{0, 1}} // single path: no backups
	h.broadcast(sid, 0, 300)

	h.loop.AfterFunc(500*time.Millisecond, func() {
		h.nodes[1].AttachViewer(viewerBase, sid)
	})
	h.loop.AfterFunc(4*time.Second, func() {
		// Stalls with no backup paths: the consumer must re-query the Brain.
		h.nodes[1].ReportClientQuality(viewerBase, sid, 5)
	})
	h.loop.RunUntil(10 * time.Second)

	m := h.nodes[1].Metrics()
	if m.PathSwitches != 1 {
		t.Fatalf("PathSwitches = %d", m.PathSwitches)
	}
	if m.PathLookups < 2 {
		t.Fatalf("exhausted backups should re-query the Brain: lookups = %d", m.PathLookups)
	}
	if !h.nodes[1].HasStream(sid) {
		t.Fatal("stream should be re-established after the re-query")
	}
}

func TestFastSwitchOnUpstreamSilence(t *testing.T) {
	// Failure detection (§4.3): the relay on the primary path fail-stops;
	// the consumer notices upstream silence within UpstreamTimeout and
	// adopts the pre-delivered backup path without consulting the Brain.
	h := newHarness(t, 26, []int{0, 1, 2})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	h.link(0, 2, 20*time.Millisecond, 0)
	h.link(2, 1, 20*time.Millisecond, 0)
	h.link(0, 1, 30*time.Millisecond, 0)
	h.link(1, viewerBase, 10*time.Millisecond, 0)
	var arrivals []time.Duration
	h.net.Handle(viewerBase, func(_ int, data []byte) {
		if wire.Kind(data) == wire.MsgRTP {
			arrivals = append(arrivals, h.loop.Now())
		}
	})

	const sid = 70
	h.paths[sid] = [][]int{{0, 2, 1}, {0, 1}} // primary via relay 2, direct backup
	h.nodes[1].cfg.UpstreamTimeout = 500 * time.Millisecond
	h.broadcast(sid, 0, 300) // 12 s of video

	h.loop.AfterFunc(500*time.Millisecond, func() {
		h.nodes[1].AttachViewer(viewerBase, sid)
	})
	const crashAt = 4 * time.Second
	h.loop.AfterFunc(crashAt, func() {
		// Relay 2 fail-stops: its links go dark, it handles nothing.
		h.net.Handle(2, nil)
		for _, p := range []int{0, 1} {
			h.net.SetLinkUp(2, p, false)
			h.net.SetLinkUp(p, 2, false)
		}
	})
	h.loop.RunUntil(12 * time.Second)

	m := h.nodes[1].Metrics()
	if m.UpstreamTimeouts == 0 || m.FastSwitches == 0 {
		t.Fatalf("upstream silence never detected: %+v", m)
	}
	if m.PathLookups != 1 {
		t.Fatalf("fast switch must use the pre-delivered backup, not re-query: lookups = %d", m.PathLookups)
	}
	h.nodes[1].mu.Lock()
	up := h.nodes[1].streams[sid].upstream
	h.nodes[1].mu.Unlock()
	if up != 0 {
		t.Fatalf("upstream = %d after the switch, want the backup path's node 0", up)
	}
	// Exactly one viewer-visible interruption, bounded by the detection
	// window plus the switch round trip — nowhere near a 3 s re-resolve.
	var gaps []time.Duration
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] >= crashAt && arrivals[i] <= crashAt+3*time.Second {
			if g := arrivals[i] - arrivals[i-1]; g >= 300*time.Millisecond {
				gaps = append(gaps, g)
			}
		}
	}
	if len(gaps) != 1 {
		t.Fatalf("want exactly one stall at the viewer, got gaps %v", gaps)
	}
	if gaps[0] > 1200*time.Millisecond {
		t.Fatalf("switch took %v, want within ~2x the 500 ms detection window", gaps[0])
	}
}

func TestMigrateProducerNonProducerNoop(t *testing.T) {
	h := newHarness(t, 24, []int{0, 1})
	h.link(0, 1, 20*time.Millisecond, 0)
	// Node 1 has no stream at all.
	h.nodes[1].MigrateProducer(99, []int{0, 1})
	h.loop.RunUntil(time.Second)
	if h.nodes[1].HasStream(99) {
		t.Fatal("migrating a non-existent stream should be a no-op")
	}
}

func TestProducerStreamGC(t *testing.T) {
	h := newHarness(t, 25, []int{0})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	const sid = 50
	var ended []uint32
	h.nodes[0].cfg.OnStreamEnded = func(id uint32) { ended = append(ended, id) }
	h.nodes[0].cfg.StreamIdleTimeout = 5 * time.Second
	h.broadcast(sid, 0, 50) // 2 s of video, then silence
	h.loop.RunUntil(3 * time.Second)
	if !h.nodes[0].HasStream(sid) {
		t.Fatal("stream should exist while broadcasting")
	}
	h.loop.RunUntil(10 * time.Second)
	if h.nodes[0].HasStream(sid) {
		t.Fatal("idle producer stream should be garbage-collected")
	}
	if len(ended) != 1 || ended[0] != sid {
		t.Fatalf("OnStreamEnded = %v", ended)
	}
}

func TestGCCAdaptsToConstrainedOverlayHop(t *testing.T) {
	// The overlay hop's capacity sits below the pacer's initial rate:
	// GCC (REMB from the downstream node + RR loss feedback) must settle
	// the sender's pacing rate near the hop capacity instead of flooding
	// the bottleneck queue.
	h := newHarness(t, 30, []int{0, 1})
	h.link(broadcasterID, 0, 10*time.Millisecond, 0)
	// 3 Mbps bottleneck with a short queue: overshoot becomes loss.
	h.net.AddDuplex(0, 1, netem.LinkConfig{
		RTT: 30 * time.Millisecond, BandwidthBps: 3e6, MaxQueue: 100 * time.Millisecond,
	})
	h.link(1, viewerBase, 10*time.Millisecond, 0)
	h.addViewer(viewerBase)

	const sid = 60
	h.paths[sid] = [][]int{{0, 1}}
	h.broadcast(sid, 0, 700) // 28 s of ~1 Mbps video

	h.loop.AfterFunc(500*time.Millisecond, func() {
		h.nodes[1].AttachViewer(viewerBase, sid)
	})
	h.loop.RunUntil(20 * time.Second)

	rate, _, ok := h.nodes[0].LinkState(1)
	if !ok {
		t.Fatal("no link state")
	}
	// The pacer must have adapted below its 8 Mbps default and must stay
	// above the stream rate (otherwise the queue would diverge).
	if rate >= 8e6 {
		t.Fatalf("pacer rate %v never adapted to the 3 Mbps bottleneck", rate)
	}
	if rate < 900e3 {
		t.Fatalf("pacer rate %v collapsed below the stream rate", rate)
	}
	// Data keeps flowing end to end.
	if len(h.viewerRecv[viewerBase]) < 1000 {
		t.Fatalf("viewer received only %d packets", len(h.viewerRecv[viewerBase]))
	}
}
