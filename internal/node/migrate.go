package node

import (
	"sort"
	"time"

	"livenet/internal/gcc"
	"livenet/internal/media"
	"livenet/internal/rtp"
	"livenet/internal/wire"
)

// Make-before-break path migration (planned reconfiguration, ROADMAP
// item 4): the Brain moves an established subscription onto a new path
// without the viewer noticing. The consumer-side node establishes the
// new leg while the old one keeps delivering, lets both feeds run
// briefly, splices on a GoP boundary (the new leg's first I-frame GoP
// start), then tears the old leg down. A guard timer bounds the attempt:
// if the new leg never comes up, the migration is abandoned and the
// stream is exactly where it was — still covered by the PR 2 reactive
// ladder.

// oldLegGrace is how long packets already in flight on a torn-down leg
// keep being accepted into the slow path (but kept out of the fan-out).
const oldLegGrace = time.Second

// prunePeriod rate-limits reverse-path prunes (re-sent Unsubscribes for
// stale upstream FIB entries, see onRTP).
const prunePeriod = time.Second

// migration is the per-stream make-before-break state machine:
// PENDING (Subscribe sent, waiting for the ack) → ACKED (dual feed,
// waiting for a GoP boundary) → spliced (state cleared) — or aborted by
// the guard timer, a SubReject, or a reactive switch.
type migration struct {
	prevHop  int   // next hop of the new leg (where the Subscribe went)
	newPath  []int // requested producer→here path
	upstream int   // actual new upstream once acked; -1 before
	fullPath []int // actual producer→here path from the ack
	acked    bool
	deadline time.Duration // guard timer: abort if not spliced by then
}

// Migrate starts a make-before-break migration of an established
// consumer-side stream onto path (producer→this node, inclusive). It
// returns false when there is nothing to migrate seamlessly: unknown or
// producer stream, malformed path, a migration already in flight, or the
// path's previous hop already being the current upstream. A
// not-yet-established stream is simply driven down the ordinary
// establishment ladder instead.
func (n *Node) Migrate(sid uint32, path []int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	s := n.streams[sid]
	if s == nil || s.producer || len(path) < 2 || path[len(path)-1] != n.id {
		return false
	}
	if !s.established {
		if !s.lookupPending {
			n.establishLocked(s, path)
		}
		return false
	}
	prevHop := path[len(path)-2]
	if prevHop == s.upstream || s.mig != nil {
		return false
	}
	s.mig = &migration{
		prevHop:  prevHop,
		newPath:  append([]int(nil), path...),
		upstream: -1,
		deadline: n.cfg.Clock.Now() + n.cfg.MigrateGuardTimeout,
	}
	n.tel.migrationsStarted.Inc()
	// Establish the new leg with the same reverse-route Subscribe as
	// establishLocked, but without touching requestedPath/retryAt: the
	// active subscription stays untouched and the guard timer — not the
	// establishment retry — owns this attempt.
	rest := make([]uint16, 0, len(path)-2)
	for i := len(path) - 3; i >= 0; i-- {
		rest = append(rest, uint16(path[i]))
	}
	sub := wire.Subscribe{StreamID: sid, Requester: uint16(n.id), Path: rest}
	n.sendControl(prevHop, sub.Marshal(nil))
	return true
}

// spliceReady reports whether a new-leg packet is a splice point: the
// first packet of an I frame (a GoP boundary) for video, or any frame
// start for audio (every audio frame is independently decodable).
func spliceReady(pkt *rtp.Packet) bool {
	var h media.FrameHeader
	if h.Unmarshal(pkt.Payload) != nil {
		return false
	}
	if h.Type == media.FrameAudio {
		return true
	}
	return h.Type == media.FrameI && h.PktIdx == 0
}

// spliceLocked flips the stream from the old leg to the acked new one.
// Downstream continuity comes from the resume gate plus the gap flush:
// new-leg packets fan out only from past the highest sequence received,
// and anything between the downstream delivery front and that point —
// packets the gated new leg received while running ahead of the old leg
// — is fanned out from the RTX ring right now. Downstream sees a
// continuous sequence across the cut: no duplicate, no hole (a hole
// would be NACKed all at once, and the priority retransmission burst
// delays live media behind it — a delay ramp the receiver-side
// congestion control reads as the onset of congestion). Called with mu
// held from onRTP when the new leg delivers a GoP boundary.
func (n *Node) spliceLocked(s *stream, now time.Duration) {
	m := s.mig
	old := s.upstream
	if r := s.rx; r != nil && r.haveHighest {
		s.fanoutGate = true
		s.fanoutFrom = r.highest + 1
		if s.haveFanout && rtp.SeqLess(s.lastFanout, r.highest) {
			n.flushGapLocked(s, s.lastFanout+1, r.highest)
			s.lastFanout = r.highest
		}
	} else {
		s.fanoutGate = false
	}
	if old >= 0 {
		u := wire.Unsubscribe{StreamID: s.id, Requester: uint16(n.id)}
		n.sendControl(old, u.Marshal(nil))
		// The old leg's residual in-flight tail is dedup fodder for the
		// slow path only (see onRTP); the grace window just keeps it
		// from tripping the reverse-path prune.
		s.oldLegFrom = old
		s.oldLegUntil = now + oldLegGrace
	}
	s.upstream = m.upstream
	if len(m.fullPath) > 0 {
		s.fullPath = append(s.fullPath[:0], m.fullPath...)
	}
	s.requestedPath = append(s.requestedPath[:0], m.newPath...)
	if s.rx != nil {
		// Same receiver state across the splice (the legs carry identical
		// sequence numbers); the NACK/feedback target moves, and the
		// delay-gradient estimator restarts against the new path's base
		// delay (a stale baseline reads the path change itself as
		// congestion).
		s.rx.upstream = m.upstream
		s.rx.ia = gcc.InterArrival{}
		s.rx.trend = gcc.NewTrendlineEstimator()
	}
	s.lastData = now
	s.mig = nil
	n.tel.migrationsCompleted.Inc()
	n.tel.fastSwitches.Inc()
	n.tel.fastSwitchesPlanned.Inc()
	n.tel.pathSwitches.Inc()
}

// flushGapLocked fans out the sequence range [fromSeq, toSeq] (inclusive)
// from the RTX ring to every subscriber and client: the splice-gap
// packets a gated migration leg received while running ahead of the old
// leg. Ring misses are skipped — downstream NACK recovery handles those
// stragglers one at a time. The range is bounded to the most recent
// flushGapMax packets so a pathological front difference cannot turn
// into an unbounded burst.
func (n *Node) flushGapLocked(s *stream, fromSeq, toSeq uint16) {
	if rtp.SeqDiff(fromSeq, toSeq) >= flushGapMax {
		fromSeq = toSeq - flushGapMax + 1
	}
	for seq := fromSeq; ; seq++ {
		if buf, ok := s.rtx.get(seq); ok {
			var pkt rtp.Packet
			if pkt.Unmarshal(buf) == nil {
				class, gain := classify(&pkt)
				for _, sub := range s.subOrder {
					n.forwardCopy(sub, buf, class, gain, false, s.id, seq)
				}
				for _, id := range s.clientOrder {
					n.forwardCopy(id, buf, class, gain, false, s.id, seq)
					s.clients[id].sentPkts++
				}
			}
		}
		if seq == toSeq {
			break
		}
	}
}

// flushGapMax bounds one splice-gap flush (packets).
const flushGapMax = 512

// abortMigrationLocked withdraws an in-flight migration, leaving the
// active leg untouched. Safe to call with no migration in flight.
func (n *Node) abortMigrationLocked(s *stream) {
	m := s.mig
	if m == nil {
		return
	}
	u := wire.Unsubscribe{StreamID: s.id, Requester: uint16(n.id)}
	n.sendControl(m.prevHop, u.Marshal(nil))
	s.mig = nil
	n.tel.migrationsAborted.Inc()
}

// onSubReject handles a draining hop's refusal (with mu held). For a
// migration it aborts the attempt — the old leg is still delivering. For
// an establishment in flight it drives the ordinary ladder so the next
// candidate (or a fresh Brain lookup, which excludes draining relays) is
// tried immediately instead of waiting out the retry timer.
func (n *Node) onSubReject(from int, data []byte) {
	var rej wire.SubReject
	if err := rej.Unmarshal(data); err != nil {
		return
	}
	s := n.streams[rej.StreamID]
	if s == nil {
		return
	}
	if m := s.mig; m != nil && from == m.prevHop {
		n.abortMigrationLocked(s)
		return
	}
	if s.established {
		return
	}
	s.lookupPending = false
	s.retryAt = 0
	n.switchPathLocked(s)
}

// SetDraining marks the node as (not) draining. A draining node refuses
// new downstream subscriptions with SubReject while its carried streams
// are migrated off for a planned decommission.
func (n *Node) SetDraining(v bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.draining = v
}

// Draining reports whether the node is refusing new subscriptions.
func (n *Node) Draining() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.draining
}

// RelayedStream describes one stream this node relays to downstream
// overlay subscribers.
type RelayedStream struct {
	SID         uint32
	Subscribers []int
}

// CarriedStreams lists the relayed (non-producer) streams that have
// downstream overlay subscribers, highest fan-out first — the order a
// drain migrates them off so the most load moves earliest.
func (n *Node) CarriedStreams() []RelayedStream {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]RelayedStream, 0, len(n.streams))
	for sid, s := range n.streams {
		if s.producer || len(s.subOrder) == 0 {
			continue
		}
		subs := append([]int(nil), s.subOrder...)
		sort.Ints(subs)
		out = append(out, RelayedStream{SID: sid, Subscribers: subs})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Subscribers) != len(out[j].Subscribers) {
			return len(out[i].Subscribers) > len(out[j].Subscribers)
		}
		return out[i].SID < out[j].SID
	})
	return out
}
