package hier

import (
	"testing"
	"time"

	"livenet/internal/geo"
	"livenet/internal/sim"
)

func testWorld(t *testing.T, n int) *geo.World {
	t.Helper()
	cfg := geo.DefaultConfig()
	cfg.NumSites = n
	return geo.Build(cfg, sim.NewSource(1).Stream("geo"))
}

func TestBuildPartitions(t *testing.T) {
	w := testWorld(t, 50)
	h := Build(w, Config{})
	if len(h.L2) == 0 || len(h.L1) == 0 {
		t.Fatalf("L2=%d L1=%d", len(h.L2), len(h.L1))
	}
	if 1+len(h.L2)+len(h.L1) != 50 {
		t.Fatalf("partition doesn't cover all sites: %d", 1+len(h.L2)+len(h.L1))
	}
	// Center must be in the home market.
	if w.Sites[h.Center].Country != geo.Countries[0].Name {
		t.Fatalf("center in %s", w.Sites[h.Center].Country)
	}
	// No overlaps.
	for _, l2 := range h.L2 {
		if l2 == h.Center {
			t.Fatal("center is also L2")
		}
		if !h.IsL2(l2) {
			t.Fatal("IsL2 inconsistent")
		}
	}
	for _, l1 := range h.L1 {
		if h.IsL2(l1) || l1 == h.Center {
			t.Fatal("L1 overlaps L2/center")
		}
	}
}

func TestL2HaveHighCapacity(t *testing.T) {
	w := testWorld(t, 50)
	h := Build(w, Config{})
	var minL2, maxL1 float64
	minL2 = 1e18
	for _, id := range h.L2 {
		if c := w.Sites[id].CapacityMbps; c < minL2 {
			minL2 = c
		}
	}
	for _, id := range h.L1 {
		if c := w.Sites[id].CapacityMbps; c > maxL1 {
			maxL1 = c
		}
	}
	if minL2 < maxL1 {
		t.Fatalf("L2 selection not by capacity: minL2=%v maxL1=%v", minL2, maxL1)
	}
}

func TestPathForAlwaysFourHops(t *testing.T) {
	w := testWorld(t, 40)
	h := Build(w, Config{})
	for i := 0; i < 5; i++ {
		up := h.L1[i%len(h.L1)]
		down := h.L1[(i*3+1)%len(h.L1)]
		p := h.PathFor(up, down, 1)
		if len(p) != 5 {
			t.Fatalf("path %v has %d nodes, want 5 (4 hops)", p, len(p))
		}
		if p[0] != up || p[4] != down || p[2] != h.Center {
			t.Fatalf("path structure wrong: %v", p)
		}
		if !h.IsL2(p[1]) || !h.IsL2(p[3]) {
			t.Fatalf("middle hops not L2: %v", p)
		}
	}
	// Same edge up and down still transits the center (rigidity).
	p := h.PathFor(h.L1[0], h.L1[0], 1)
	if len(p) != 5 || p[2] != h.Center {
		t.Fatalf("same-edge path should still climb the tree: %v", p)
	}
}

func TestAssignL2LoadBalances(t *testing.T) {
	w := testWorld(t, 40)
	h := Build(w, Config{})
	l1 := h.L1[0]
	first := h.AssignL2(l1, 1)
	// Pile load onto the first choice; eventually another L2 wins.
	switched := false
	for i := 0; i < 50; i++ {
		if h.AssignL2(l1, 1) != first {
			switched = true
			break
		}
	}
	if !switched && len(h.L2) > 1 {
		t.Fatal("assignment never load-balances away from the hot L2")
	}
}

func TestReleaseL2(t *testing.T) {
	w := testWorld(t, 40)
	h := Build(w, Config{})
	l2 := h.AssignL2(h.L1[0], 2)
	if h.L2Load(l2) != 2 {
		t.Fatalf("load = %v", h.L2Load(l2))
	}
	h.ReleaseL2(l2, 2)
	if h.L2Load(l2) != 0 {
		t.Fatalf("load after release = %v", h.L2Load(l2))
	}
	h.ReleaseL2(l2, 5)
	if h.L2Load(l2) != 0 {
		t.Fatal("load must not go negative")
	}
}

func TestPathDelayComposition(t *testing.T) {
	w := testWorld(t, 40)
	h := Build(w, Config{NodeProcessing: 10 * time.Millisecond, CenterProcessing: 30 * time.Millisecond})
	p := h.PathFor(h.L1[0], h.L1[1], 1)
	noLoss := h.PathDelay(p, nil)
	// Lower bound: 4 hops × 10 ms processing + 30 ms center.
	if noLoss < 70*time.Millisecond {
		t.Fatalf("delay %v below processing floor", noLoss)
	}
	lossy := h.PathDelay(p, func(a, b int) float64 { return 0.05 })
	if lossy <= noLoss {
		t.Fatal("loss should add TCP recovery penalty")
	}
}

func TestEdgeForPrefersNearby(t *testing.T) {
	w := testWorld(t, 60)
	h := Build(w, Config{})
	// A client exactly at an L1 site maps to that site (or a co-located one).
	id := h.L1[0]
	s := w.Sites[id]
	got := h.EdgeFor(s.Lat, s.Lon)
	gs := w.Sites[got]
	if approxRTT(s.Lat, s.Lon, gs.Lat, gs.Lon) > approxRTT(s.Lat, s.Lon, w.Sites[h.L1[len(h.L1)-1]].Lat, w.Sites[h.L1[len(h.L1)-1]].Lon)+time.Millisecond {
		t.Fatalf("EdgeFor picked a distant edge %d for client at site %d", got, id)
	}
	if !contains(h.L1, got) {
		t.Fatal("EdgeFor returned a non-L1 node")
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
