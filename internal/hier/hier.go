// Package hier reimplements Alibaba's first-generation hierarchical CDN
// (§2.2, "Hier"), the baseline LiveNet is evaluated against: a powerful
// streaming center plus two layers of CDN nodes. All streams climb from
// the broadcaster's L1 edge through an L2 node to the center (which does
// the media processing) and descend through an L2 node to each viewer's
// L1 edge — a fixed path length of 4 overlay hops. A VDN-like centralized
// controller maps L1 nodes to L2 nodes per stream to avoid congestion.
package hier

import (
	"time"

	"livenet/internal/geo"
)

// Config parameterizes the hierarchy.
type Config struct {
	// L2Fraction of sites (by capacity rank) become L2 nodes (default 0.2).
	L2Fraction float64
	// CenterProcessing models the streaming center's media-processing
	// latency contribution (transcode pipeline; default 30 ms).
	CenterProcessing time.Duration
	// NodeProcessing is per-node forwarding latency over the full RTMP
	// application stack (default 10 ms — Hier runs a whole stack per hop,
	// which is precisely the overhead LiveNet's fast path removes, §3).
	NodeProcessing time.Duration
}

func (c Config) withDefaults() Config {
	if c.L2Fraction <= 0 {
		c.L2Fraction = 0.2
	}
	if c.CenterProcessing <= 0 {
		c.CenterProcessing = 30 * time.Millisecond
	}
	if c.NodeProcessing <= 0 {
		c.NodeProcessing = 10 * time.Millisecond
	}
	return c
}

// Hier is the hierarchical CDN topology and its VDN-like controller.
type Hier struct {
	cfg    Config
	World  *geo.World
	Center int
	L2     []int
	L1     []int
	isL2   map[int]bool

	// l2Load tracks per-L2 assigned-stream load for the mapping decision.
	l2Load map[int]float64
}

// Build constructs the hierarchy over a world: the best-connected home
// site becomes the streaming center, the highest-capacity remainder
// become L2, the rest are L1 edges.
func Build(w *geo.World, cfg Config) *Hier {
	cfg = cfg.withDefaults()
	h := &Hier{
		cfg:    cfg,
		World:  w,
		isL2:   make(map[int]bool),
		l2Load: make(map[int]float64),
	}
	// Center: the highest-capacity site in the home country (first country
	// in geo.Countries), falling back to global max.
	home := geo.Countries[0].Name
	best, bestCap := -1, -1.0
	for _, s := range w.Sites {
		if s.Country == home && s.CapacityMbps > bestCap {
			best, bestCap = s.ID, s.CapacityMbps
		}
	}
	if best == -1 {
		for _, s := range w.Sites {
			if s.CapacityMbps > bestCap {
				best, bestCap = s.ID, s.CapacityMbps
			}
		}
	}
	h.Center = best

	// L2: top capacity sites (excluding the center).
	n := len(w.Sites)
	numL2 := int(cfg.L2Fraction * float64(n))
	if numL2 < 1 {
		numL2 = 1
	}
	type ranked struct {
		id  int
		cap float64
	}
	rank := make([]ranked, 0, n-1)
	for _, s := range w.Sites {
		if s.ID != h.Center {
			rank = append(rank, ranked{s.ID, s.CapacityMbps})
		}
	}
	for i := 0; i < len(rank); i++ { // selection sort: n is small
		max := i
		for j := i + 1; j < len(rank); j++ {
			if rank[j].cap > rank[max].cap {
				max = j
			}
		}
		rank[i], rank[max] = rank[max], rank[i]
	}
	for i, r := range rank {
		if i < numL2 {
			h.L2 = append(h.L2, r.id)
			h.isL2[r.id] = true
		} else {
			h.L1 = append(h.L1, r.id)
		}
	}
	return h
}

// EdgeFor maps a client location to its nearest L1 edge (the DNS
// redirection step).
func (h *Hier) EdgeFor(lat, lon float64) int {
	best, bestRTT := h.L1[0], time.Duration(1<<62)
	for _, id := range h.L1 {
		s := h.World.Sites[id]
		// Reuse the world's RTT model via a synthetic probe: distance to
		// the site's coordinates dominates.
		d := approxRTT(lat, lon, s.Lat, s.Lon)
		if d < bestRTT {
			best, bestRTT = id, d
		}
	}
	return best
}

func approxRTT(lat1, lon1, lat2, lon2 float64) time.Duration {
	dlat := lat1 - lat2
	dlon := lon1 - lon2
	if dlon > 180 {
		dlon -= 360
	}
	if dlon < -180 {
		dlon += 360
	}
	d2 := dlat*dlat + dlon*dlon
	return time.Duration(d2 * float64(time.Microsecond) * 50)
}

// AssignL2 picks the L2 node for an L1's stream leg, VDN-style: minimize
// RTT(L1→L2)+RTT(L2→center) among L2 nodes under the load target, spread
// by tracked assignment load. The assignment is remembered as load.
func (h *Hier) AssignL2(l1 int, streamLoad float64) int {
	best, bestCost := -1, 0.0
	for _, l2 := range h.L2 {
		cost := float64(h.World.RTT(l1, l2)+h.World.RTT(l2, h.Center)) *
			(1 + h.l2Load[l2]) // load-sensitive, like VDN's utility
		if best == -1 || cost < bestCost {
			best, bestCost = l2, cost
		}
	}
	h.l2Load[best] += streamLoad
	return best
}

// ReleaseL2 returns an assignment's load (stream ended).
func (h *Hier) ReleaseL2(l2 int, streamLoad float64) {
	h.l2Load[l2] -= streamLoad
	if h.l2Load[l2] < 0 {
		h.l2Load[l2] = 0
	}
}

// L2Load exposes the tracked load (for tests and the harness).
func (h *Hier) L2Load(l2 int) float64 { return h.l2Load[l2] }

// PathFor returns the fixed hierarchical path for a stream from the
// broadcaster's L1 edge to a viewer's L1 edge:
//
//	uploadL1 → L2(up) → center → L2(down) → downloadL1
//
// Even when uploadL1 == downloadL1 the stream traverses the center — the
// rigidity the paper's §2.3 criticizes. The path length is always 4 hops.
func (h *Hier) PathFor(uploadL1, downloadL1 int, streamLoad float64) []int {
	up := h.AssignL2(uploadL1, streamLoad)
	down := h.AssignL2(downloadL1, streamLoad)
	return []int{uploadL1, up, h.Center, down, downloadL1}
}

// PathDelay models the one-way CDN delay along a Hier path: per-hop
// propagation (RTT/2) with a TCP-like loss recovery penalty (RTMP over
// TCP: a loss stalls the stream for about one extra RTT), full
// application-stack processing at each node, and the center's media
// processing.
func (h *Hier) PathDelay(path []int, lossOf func(a, b int) float64) time.Duration {
	var total time.Duration
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		rtt := h.World.RTT(a, b)
		loss := 0.0
		if lossOf != nil {
			loss = lossOf(a, b)
		}
		// Expected one-way delay: RTT/2 plus loss-probability-weighted
		// TCP retransmission stall of ~1.5 RTT.
		hop := time.Duration(float64(rtt/2) * (1 + 3*loss))
		total += hop + h.cfg.NodeProcessing
	}
	total += h.cfg.CenterProcessing
	return total
}

// IsL2 reports whether a site is an L2 node.
func (h *Hier) IsL2(id int) bool { return h.isL2[id] }
