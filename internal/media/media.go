// Package media provides the synthetic video source that substitutes for
// real broadcaster feeds: a frame generator with GoP structure (I/P/B), a
// simulcast encoder producing several bitrate renditions in parallel
// (§5.2 — LiveNet uses simulcast rather than SVC), and an RTP
// packetizer/depacketizer with a small video payload header carrying the
// frame metadata the overlay's frame-level controls need (frame type for
// proactive dropping, GoP boundaries for caching and seamless switching).
package media

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"livenet/internal/rtp"
	"livenet/internal/sim"
)

// FrameType classifies frames for priority and drop decisions.
type FrameType uint8

// Frame types. BUnref marks unreferenced B frames, the first candidates
// for proactive dropping (§5.2): dropping them causes only short blurring.
const (
	FrameI FrameType = iota
	FrameP
	FrameB
	FrameBUnref
	FrameAudio
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	case FrameB:
		return "B"
	case FrameBUnref:
		return "b"
	case FrameAudio:
		return "A"
	}
	return fmt.Sprintf("FrameType(%d)", uint8(t))
}

// Frame is one encoded video (or audio) frame.
type Frame struct {
	Type  FrameType
	ID    uint32 // monotonically increasing per stream
	GopID uint32
	// PTS is the presentation timestamp relative to stream start.
	PTS  time.Duration
	Size int // encoded size in bytes
}

// IsVideo reports whether the frame carries video.
func (f Frame) IsVideo() bool { return f.Type != FrameAudio }

// EncoderConfig describes one rendition's encoding parameters.
type EncoderConfig struct {
	FPS        int // frames per second
	GoPFrames  int // frames per GoP (first is the I frame)
	SubGoP     int // P-frame interval; frames between P frames are B frames
	BitrateBps int // target video bitrate
	// IWeight/PWeight/BWeight set relative frame sizes; they are
	// normalized so the stream averages BitrateBps.
	IWeight, PWeight, BWeight float64
	// SizeJitter is the multiplicative stddev of per-frame size noise.
	SizeJitter float64
}

// DefaultEncoderConfig returns a 25 fps, 2-second-GoP configuration.
func DefaultEncoderConfig(bitrateBps int) EncoderConfig {
	return EncoderConfig{
		FPS:        25,
		GoPFrames:  50,
		SubGoP:     5,
		BitrateBps: bitrateBps,
		IWeight:    6.0,
		PWeight:    1.4,
		BWeight:    0.55,
		SizeJitter: 0.15,
	}
}

// Encoder produces the deterministic synthetic frame sequence for one
// rendition of one stream.
type Encoder struct {
	cfg     EncoderConfig
	rng     *sim.Rand
	nextID  uint32
	gopID   uint32
	idx     int // index within current GoP
	baseP   float64
	baseI   float64
	baseB   float64
	frameIv time.Duration
	pts     time.Duration
}

// NewEncoder builds an encoder. The rng stream drives frame-size noise.
func NewEncoder(cfg EncoderConfig, rng *sim.Rand) *Encoder {
	if cfg.FPS <= 0 || cfg.GoPFrames <= 1 || cfg.SubGoP <= 0 {
		panic("media: invalid encoder config")
	}
	// Count frame types per GoP to normalize weights to the bitrate.
	nI, nP, nB := 1, 0, 0
	for i := 1; i < cfg.GoPFrames; i++ {
		if i%cfg.SubGoP == 0 {
			nP++
		} else {
			nB++
		}
	}
	weightSum := cfg.IWeight*float64(nI) + cfg.PWeight*float64(nP) + cfg.BWeight*float64(nB)
	gopBytes := float64(cfg.BitrateBps) / 8 * float64(cfg.GoPFrames) / float64(cfg.FPS)
	unit := gopBytes / weightSum
	return &Encoder{
		cfg:     cfg,
		rng:     rng,
		baseI:   unit * cfg.IWeight,
		baseP:   unit * cfg.PWeight,
		baseB:   unit * cfg.BWeight,
		frameIv: time.Second / time.Duration(cfg.FPS),
	}
}

// FrameInterval returns the time between consecutive frames.
func (e *Encoder) FrameInterval() time.Duration { return e.frameIv }

// NextFrame produces the next frame in decode order.
func (e *Encoder) NextFrame() Frame {
	var t FrameType
	var base float64
	switch {
	case e.idx == 0:
		t, base = FrameI, e.baseI
	case e.idx%e.cfg.SubGoP == 0:
		t, base = FrameP, e.baseP
	default:
		t, base = FrameB, e.baseB
		// Alternate referenced/unreferenced B frames.
		if e.idx%2 == 1 {
			t = FrameBUnref
		}
	}
	size := base
	if e.cfg.SizeJitter > 0 {
		size *= 1 + e.rng.Normal(0, e.cfg.SizeJitter)
	}
	if size < 64 {
		size = 64
	}
	f := Frame{
		Type:  t,
		ID:    e.nextID,
		GopID: e.gopID,
		PTS:   e.pts,
		Size:  int(size),
	}
	e.nextID++
	e.pts += e.frameIv
	e.idx++
	if e.idx >= e.cfg.GoPFrames {
		e.idx = 0
		e.gopID++
	}
	return f
}

// Rendition is one simulcast quality level. Each rendition of a broadcast
// is an independent stream with its own stream ID in LiveNet (§5.2).
type Rendition struct {
	Name       string
	BitrateBps int
}

// DefaultRenditions is the paper's example simulcast ladder (720P+480P),
// plus a low tier for constrained viewers.
var DefaultRenditions = []Rendition{
	{Name: "720p", BitrateBps: 2_500_000},
	{Name: "480p", BitrateBps: 1_200_000},
	{Name: "360p", BitrateBps: 600_000},
}

// Simulcast runs one encoder per rendition in lockstep.
type Simulcast struct {
	Renditions []Rendition
	Encoders   []*Encoder
}

// NewSimulcast builds encoders for each rendition sharing one rng stream.
func NewSimulcast(rends []Rendition, rng *sim.Rand) *Simulcast {
	s := &Simulcast{Renditions: rends}
	for _, r := range rends {
		s.Encoders = append(s.Encoders, NewEncoder(DefaultEncoderConfig(r.BitrateBps), rng))
	}
	return s
}

// NextFrames returns the next frame of every rendition (same PTS).
func (s *Simulcast) NextFrames() []Frame {
	out := make([]Frame, len(s.Encoders))
	for i, e := range s.Encoders {
		out[i] = e.NextFrame()
	}
	return out
}

// --- RTP packetization ---

// PayloadMTU is the maximum RTP payload size per packet. 1200 bytes keeps
// the full packet under typical path MTUs with headroom for headers.
const PayloadMTU = 1200

// FrameHeaderLen is the length of the video payload header prefixed to
// every RTP payload chunk.
const FrameHeaderLen = 13

// FrameHeader is the per-packet video metadata. It rides at the start of
// each RTP payload so relays can make frame-granular decisions without
// reassembling frames.
type FrameHeader struct {
	Type     FrameType
	FrameID  uint32
	GopID    uint32
	PktIdx   uint16 // index of this packet within the frame
	PktCount uint16 // packets in this frame
}

// ErrShortPayload reports a payload too short to hold a FrameHeader.
var ErrShortPayload = errors.New("media: payload shorter than frame header")

// Marshal appends the header to buf.
func (h *FrameHeader) Marshal(buf []byte) []byte {
	buf = append(buf, byte(h.Type))
	buf = binary.BigEndian.AppendUint32(buf, h.FrameID)
	buf = binary.BigEndian.AppendUint32(buf, h.GopID)
	buf = binary.BigEndian.AppendUint16(buf, h.PktIdx)
	buf = binary.BigEndian.AppendUint16(buf, h.PktCount)
	return buf
}

// Unmarshal decodes the header from the start of payload.
func (h *FrameHeader) Unmarshal(payload []byte) error {
	if len(payload) < FrameHeaderLen {
		return ErrShortPayload
	}
	h.Type = FrameType(payload[0])
	h.FrameID = binary.BigEndian.Uint32(payload[1:])
	h.GopID = binary.BigEndian.Uint32(payload[5:])
	h.PktIdx = binary.BigEndian.Uint16(payload[9:])
	h.PktCount = binary.BigEndian.Uint16(payload[11:])
	return nil
}

// Packetizer splits frames into RTP packets for one stream (SSRC).
type Packetizer struct {
	SSRC    uint32
	seq     uint16
	clockHz uint32
	filler  []byte
}

// NewPacketizer returns a packetizer for the given stream ID. The RTP
// timestamp clock is 90 kHz as usual for video.
func NewPacketizer(ssrc uint32) *Packetizer {
	return &Packetizer{SSRC: ssrc, clockHz: 90000, filler: make([]byte, PayloadMTU)}
}

// NextSeq returns the sequence number the next packet will use.
func (p *Packetizer) NextSeq() uint16 { return p.seq }

// Packetize splits f into RTP packets appended to out. The last packet of
// the frame has the marker bit set. Payload bytes beyond the frame header
// are synthetic filler. The first packet of each I frame carries the delay
// extension seeded with encodeDelay10us (the broadcaster-side encoding
// and queueing time, §6.1).
func (p *Packetizer) Packetize(f Frame, encodeDelay10us uint32, out []rtp.Packet) []rtp.Packet {
	chunk := PayloadMTU - FrameHeaderLen
	count := (f.Size + chunk - 1) / chunk
	if count == 0 {
		count = 1
	}
	if count > 0xFFFF {
		count = 0xFFFF
	}
	ts := uint32(int64(f.PTS) * int64(p.clockHz) / int64(time.Second))
	remaining := f.Size
	for i := 0; i < count; i++ {
		n := chunk
		if remaining < n {
			n = remaining
		}
		if n < 0 {
			n = 0
		}
		remaining -= n
		h := FrameHeader{
			Type:     f.Type,
			FrameID:  f.ID,
			GopID:    f.GopID,
			PktIdx:   uint16(i),
			PktCount: uint16(count),
		}
		payload := h.Marshal(make([]byte, 0, FrameHeaderLen+n))
		payload = append(payload, p.filler[:n]...)
		pt := uint8(rtp.PayloadVideo)
		if f.Type == FrameAudio {
			pt = rtp.PayloadAudio
		}
		pkt := rtp.Packet{
			Marker:         i == count-1,
			PayloadType:    pt,
			SequenceNumber: p.seq,
			Timestamp:      ts,
			SSRC:           p.SSRC,
			Payload:        payload,
		}
		if i == 0 && (f.Type == FrameI || f.Type == FrameAudio) {
			pkt.HasDelayExt = true
			pkt.DelayAccum10us = encodeDelay10us
		}
		out = append(out, pkt)
		p.seq++
	}
	return out
}

// AudioSource produces a constant-bitrate audio frame stream (20 ms
// frames at 64 kbps). Audio packets are prioritized over video in the
// pacer to avoid head-of-line blocking (§5.2).
type AudioSource struct {
	nextID uint32
	pts    time.Duration
}

// AudioFrameInterval is the audio frame spacing.
const AudioFrameInterval = 20 * time.Millisecond

// AudioFrameSize is the constant encoded size of one audio frame.
const AudioFrameSize = 160

// NextFrame produces the next audio frame.
func (a *AudioSource) NextFrame() Frame {
	f := Frame{Type: FrameAudio, ID: a.nextID, PTS: a.pts, Size: AudioFrameSize}
	a.nextID++
	a.pts += AudioFrameInterval
	return f
}
