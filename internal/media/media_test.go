package media

import (
	"testing"
	"testing/quick"
	"time"

	"livenet/internal/rtp"
	"livenet/internal/sim"
)

func newTestEncoder(t *testing.T, bitrate int) *Encoder {
	t.Helper()
	rng := sim.NewSource(1).Stream("enc")
	return NewEncoder(DefaultEncoderConfig(bitrate), rng)
}

func TestGoPStructure(t *testing.T) {
	e := newTestEncoder(t, 2_500_000)
	cfg := DefaultEncoderConfig(0)
	for gop := 0; gop < 3; gop++ {
		for i := 0; i < cfg.GoPFrames; i++ {
			f := e.NextFrame()
			if f.GopID != uint32(gop) {
				t.Fatalf("frame %d: gop = %d, want %d", i, f.GopID, gop)
			}
			switch {
			case i == 0:
				if f.Type != FrameI {
					t.Fatalf("frame 0 of gop should be I, got %v", f.Type)
				}
			case i%cfg.SubGoP == 0:
				if f.Type != FrameP {
					t.Fatalf("frame %d should be P, got %v", i, f.Type)
				}
			default:
				if f.Type != FrameB && f.Type != FrameBUnref {
					t.Fatalf("frame %d should be B, got %v", i, f.Type)
				}
			}
		}
	}
}

func TestFrameIDsMonotonic(t *testing.T) {
	e := newTestEncoder(t, 1_000_000)
	prev := e.NextFrame()
	for i := 0; i < 200; i++ {
		f := e.NextFrame()
		if f.ID != prev.ID+1 {
			t.Fatalf("IDs not sequential: %d then %d", prev.ID, f.ID)
		}
		if f.PTS <= prev.PTS {
			t.Fatalf("PTS not increasing: %v then %v", prev.PTS, f.PTS)
		}
		prev = f
	}
}

func TestEncoderHitsTargetBitrate(t *testing.T) {
	const bitrate = 2_500_000
	e := newTestEncoder(t, bitrate)
	total := 0
	const secs = 40
	n := secs * 25
	for i := 0; i < n; i++ {
		total += e.NextFrame().Size
	}
	gotBps := float64(total) * 8 / secs
	if gotBps < bitrate*0.9 || gotBps > bitrate*1.1 {
		t.Fatalf("measured bitrate %.0f, want ~%d", gotBps, bitrate)
	}
}

func TestIFramesLargest(t *testing.T) {
	e := newTestEncoder(t, 2_500_000)
	var iSum, pSum, bSum float64
	var iN, pN, bN int
	for i := 0; i < 1000; i++ {
		f := e.NextFrame()
		switch f.Type {
		case FrameI:
			iSum += float64(f.Size)
			iN++
		case FrameP:
			pSum += float64(f.Size)
			pN++
		default:
			bSum += float64(f.Size)
			bN++
		}
	}
	iAvg, pAvg, bAvg := iSum/float64(iN), pSum/float64(pN), bSum/float64(bN)
	if iAvg <= 2*pAvg {
		t.Fatalf("I frames should dwarf P frames: I=%.0f P=%.0f", iAvg, pAvg)
	}
	if pAvg <= bAvg {
		t.Fatalf("P frames should exceed B frames: P=%.0f B=%.0f", pAvg, bAvg)
	}
}

func TestSimulcastLockstep(t *testing.T) {
	rng := sim.NewSource(2).Stream("sc")
	s := NewSimulcast(DefaultRenditions, rng)
	frames := s.NextFrames()
	if len(frames) != 3 {
		t.Fatalf("got %d renditions", len(frames))
	}
	for _, f := range frames {
		if f.Type != FrameI || f.PTS != 0 {
			t.Fatalf("first frames should be aligned I frames: %+v", f)
		}
	}
	// Higher renditions must be bigger on average.
	var sums [3]int
	for i := 0; i < 500; i++ {
		fs := s.NextFrames()
		for j, f := range fs {
			sums[j] += f.Size
		}
	}
	if !(sums[0] > sums[1] && sums[1] > sums[2]) {
		t.Fatalf("rendition sizes not ordered: %v", sums)
	}
}

func TestFrameHeaderRoundTrip(t *testing.T) {
	if err := quick.Check(func(ft uint8, fid, gid uint32, idx, cnt uint16) bool {
		h := FrameHeader{
			Type:    FrameType(ft % 5),
			FrameID: fid, GopID: gid, PktIdx: idx, PktCount: cnt,
		}
		buf := h.Marshal(nil)
		if len(buf) != FrameHeaderLen {
			return false
		}
		var g FrameHeader
		if err := g.Unmarshal(buf); err != nil {
			return false
		}
		return g == h
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameHeaderShort(t *testing.T) {
	var h FrameHeader
	if err := h.Unmarshal(make([]byte, 5)); err != ErrShortPayload {
		t.Fatalf("err = %v", err)
	}
}

func TestPacketizeReassembles(t *testing.T) {
	e := newTestEncoder(t, 2_500_000)
	p := NewPacketizer(42)
	f := e.NextFrame() // I frame, large
	pkts := p.Packetize(f, 150, nil)
	if len(pkts) < 2 {
		t.Fatalf("I frame should span multiple packets, got %d", len(pkts))
	}
	total := 0
	for i, pkt := range pkts {
		if pkt.SSRC != 42 {
			t.Fatalf("ssrc = %d", pkt.SSRC)
		}
		var h FrameHeader
		if err := h.Unmarshal(pkt.Payload); err != nil {
			t.Fatal(err)
		}
		if h.FrameID != f.ID || h.GopID != f.GopID || h.Type != f.Type {
			t.Fatalf("packet %d header mismatch: %+v vs frame %+v", i, h, f)
		}
		if int(h.PktIdx) != i || int(h.PktCount) != len(pkts) {
			t.Fatalf("packet %d: idx=%d count=%d", i, h.PktIdx, h.PktCount)
		}
		if (i == len(pkts)-1) != pkt.Marker {
			t.Fatalf("marker on wrong packet %d", i)
		}
		total += len(pkt.Payload) - FrameHeaderLen
	}
	if total != f.Size {
		t.Fatalf("reassembled %d bytes, frame was %d", total, f.Size)
	}
	// First packet of an I frame carries the delay extension.
	if !pkts[0].HasDelayExt || pkts[0].DelayAccum10us != 150 {
		t.Fatalf("first I packet should carry delay ext: %+v", pkts[0])
	}
	if pkts[1].HasDelayExt {
		t.Fatal("non-first packets should not carry the delay ext")
	}
}

func TestPacketizeSequenceContinuity(t *testing.T) {
	e := newTestEncoder(t, 1_200_000)
	p := NewPacketizer(7)
	var prev uint16
	first := true
	for i := 0; i < 100; i++ {
		for _, pkt := range p.Packetize(e.NextFrame(), 0, nil) {
			if !first && pkt.SequenceNumber != prev+1 {
				t.Fatalf("seq gap: %d then %d", prev, pkt.SequenceNumber)
			}
			prev = pkt.SequenceNumber
			first = false
		}
	}
}

func TestPacketizeRespectsMTU(t *testing.T) {
	e := newTestEncoder(t, 8_000_000) // big frames
	p := NewPacketizer(1)
	for i := 0; i < 60; i++ {
		for _, pkt := range p.Packetize(e.NextFrame(), 0, nil) {
			if len(pkt.Payload) > PayloadMTU {
				t.Fatalf("payload %d exceeds MTU %d", len(pkt.Payload), PayloadMTU)
			}
			buf := pkt.Marshal(nil)
			if len(buf) > 1500 {
				t.Fatalf("wire packet %d exceeds ethernet MTU", len(buf))
			}
		}
	}
}

func TestAudioSource(t *testing.T) {
	var a AudioSource
	p := NewPacketizer(9)
	for i := 0; i < 50; i++ {
		f := a.NextFrame()
		if f.Type != FrameAudio || f.Size != AudioFrameSize {
			t.Fatalf("audio frame = %+v", f)
		}
		if f.PTS != time.Duration(i)*AudioFrameInterval {
			t.Fatalf("audio PTS = %v", f.PTS)
		}
		pkts := p.Packetize(f, 0, nil)
		if len(pkts) != 1 {
			t.Fatalf("audio frame should fit one packet, got %d", len(pkts))
		}
		if pkts[0].PayloadType != rtp.PayloadAudio {
			t.Fatalf("audio PT = %d", pkts[0].PayloadType)
		}
	}
}

func TestInvalidEncoderConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for invalid config")
		}
	}()
	NewEncoder(EncoderConfig{FPS: 0, GoPFrames: 10, SubGoP: 3}, sim.NewSource(1).Stream("x"))
}

func TestPacketizeTinyAndZeroFrames(t *testing.T) {
	p := NewPacketizer(3)
	// Zero-size frame still yields exactly one packet (header only).
	pkts := p.Packetize(Frame{Type: FrameP, ID: 1, Size: 0}, 0, nil)
	if len(pkts) != 1 {
		t.Fatalf("zero-size frame -> %d packets", len(pkts))
	}
	if len(pkts[0].Payload) != FrameHeaderLen {
		t.Fatalf("payload = %d bytes", len(pkts[0].Payload))
	}
	// A frame exactly at the chunk boundary yields one packet.
	chunk := PayloadMTU - FrameHeaderLen
	pkts = p.Packetize(Frame{Type: FrameP, ID: 2, Size: chunk}, 0, nil)
	if len(pkts) != 1 {
		t.Fatalf("boundary frame -> %d packets", len(pkts))
	}
	// One byte over the boundary yields two.
	pkts = p.Packetize(Frame{Type: FrameP, ID: 3, Size: chunk + 1}, 0, nil)
	if len(pkts) != 2 {
		t.Fatalf("boundary+1 frame -> %d packets", len(pkts))
	}
	if len(pkts[1].Payload) != FrameHeaderLen+1 {
		t.Fatalf("second chunk payload = %d", len(pkts[1].Payload))
	}
}

func TestEncoderSizeFloor(t *testing.T) {
	// Even at absurdly low bitrates, frames never collapse below the
	// 64-byte floor (a real encoder always emits headers).
	rng := sim.NewSource(9).Stream("tiny")
	e := NewEncoder(DefaultEncoderConfig(1000), rng)
	for i := 0; i < 200; i++ {
		if f := e.NextFrame(); f.Size < 64 {
			t.Fatalf("frame size %d below floor", f.Size)
		}
	}
}

func TestFrameTypeString(t *testing.T) {
	for ft, want := range map[FrameType]string{
		FrameI: "I", FrameP: "P", FrameB: "B", FrameBUnref: "b", FrameAudio: "A",
	} {
		if got := ft.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", ft, got, want)
		}
	}
	if got := FrameType(99).String(); got == "" {
		t.Fatal("unknown frame type should still format")
	}
}
