//go:build linux && amd64

package udprun

import "syscall"

// sendmmsg's number is absent from the frozen syscall tables on amd64.
const (
	sysRecvmmsg = syscall.SYS_RECVMMSG
	sysSendmmsg = 307
)
