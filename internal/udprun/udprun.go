// Package udprun runs LiveNet components over real UDP sockets — the
// multi-node deployment mode used by cmd/livenet-node, cmd/livenet-brain
// and cmd/livenet-demo. Each overlay endpoint (node, client, Brain) owns
// one socket; datagrams are prefixed with the sender's overlay ID so the
// node code stays addressed by integer IDs exactly as on the emulator.
//
// The data plane is built for throughput: datagrams ride in pooled,
// refcounted buffers from the socket read to the handler (no per-packet
// allocation or copy), reads and writes are batched into recvmmsg /
// sendmmsg syscall rounds on Linux (single-syscall fallback elsewhere),
// and delivery can be sharded across N workers with per-stream affinity
// (RTP packets hash by SSRC, so each stream keeps FIFO order while
// different streams decode in parallel).
package udprun

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"livenet/internal/brain"
	"livenet/internal/node"
	"livenet/internal/pktbuf"
	"livenet/internal/telemetry"
	"livenet/internal/wire"
)

// headerLen is the datagram prefix: sender overlay ID.
const headerLen = 4

// DefaultBatch is the default syscall batching factor: up to this many
// datagrams move per recvmmsg/sendmmsg round.
const DefaultBatch = 16

// shardQueueCap bounds each shard's dispatch queue; packets beyond it
// are dropped (counted in udprun.rx_dropped), exactly as a full socket
// buffer would drop them.
const shardQueueCap = 1024

// ErrUnknownPeer is returned when sending to an unregistered ID.
var ErrUnknownPeer = errors.New("udprun: unknown peer id")

// Options tune an endpoint's data plane. The zero value is the portable
// single-loop configuration every existing caller gets from Listen.
type Options struct {
	// Shards is the number of delivery workers. With 0 or 1 the handler
	// runs inline on the read loop (strictly serial delivery). With N>1,
	// RTP datagrams are dispatched to worker shardOf(SSRC) — per-stream
	// FIFO order is preserved, different streams proceed in parallel —
	// and non-RTP datagrams (control, RTCP, probes) all go to shard 0.
	Shards int
	// Batch is the max datagrams per syscall round (recvmmsg/sendmmsg
	// on Linux). 0 means DefaultBatch; 1 disables batching.
	Batch int
	// Telemetry registers the endpoint's udprun.* instruments (see
	// OBSERVABILITY.md). Nil keeps private unregistered instruments.
	Telemetry *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Batch <= 0 {
		o.Batch = DefaultBatch
	}
	return o
}

// epInstruments are the endpoint's telemetry handles.
type epInstruments struct {
	rxPackets *telemetry.Counter
	txPackets *telemetry.Counter
	rxBatch   *telemetry.Histogram // datagrams per recvmmsg round
	txBatch   *telemetry.Histogram // datagrams per SendBatch submit
	rxDropped *telemetry.Counter   // shard queue overflow
	shardRx   []*telemetry.Counter // per-shard delivery counts
}

func newEpInstruments(r *telemetry.Registry, shards int) epInstruments {
	tel := epInstruments{
		rxPackets: r.Counter("udprun.rx_packets"),
		txPackets: r.Counter("udprun.tx_packets"),
		rxBatch:   r.Histogram("udprun.rx_batch"),
		txBatch:   r.Histogram("udprun.tx_batch"),
		rxDropped: r.Counter("udprun.rx_dropped"),
	}
	for i := 0; i < shards; i++ {
		tel.shardRx = append(tel.shardRx, r.Counter(fmt.Sprintf("udprun.shard%02d.rx_packets", i)))
	}
	return tel
}

// rxPacket is one datagram in flight from the read loop to a shard
// worker. buf holds the full datagram (ID prefix included); ownership
// transfers with the send.
type rxPacket struct {
	from int
	buf  *pktbuf.Buf
}

// Endpoint is one UDP-backed overlay endpoint. It implements
// node.Sender, node.VecSender and node.BatchSender (and client.Sender,
// which has the same shape as node.Sender).
type Endpoint struct {
	id   int
	conn *net.UDPConn
	opts Options
	pool *pktbuf.Pool
	tel  epInstruments

	idHdr [headerLen]byte // this endpoint's sender-ID prefix

	mu    sync.RWMutex
	peers map[int]netip.AddrPort

	// wmu serializes batched writes (they share platform scratch).
	wmu sync.Mutex
	wr  *batchWriter

	handler func(from int, data []byte)
	shardCh []chan rxPacket
	done    chan struct{}
	once    sync.Once
}

var (
	_ node.Sender      = (*Endpoint)(nil)
	_ node.VecSender   = (*Endpoint)(nil)
	_ node.BatchSender = (*Endpoint)(nil)
)

// Listen binds an endpoint with overlay ID id on addr (e.g.
// "127.0.0.1:0") with default options: one delivery loop, batched I/O.
func Listen(id int, addr string) (*Endpoint, error) {
	return ListenOpts(id, addr, Options{})
}

// ListenOpts binds an endpoint with explicit data-plane options.
func ListenOpts(id int, addr string, opts Options) (*Endpoint, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udprun: %w", err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("udprun: %w", err)
	}
	opts = opts.withDefaults()
	// A media relay burst easily outruns the default socket buffers;
	// size them for batch arrival (best effort — the kernel may clamp).
	conn.SetReadBuffer(4 << 20)
	conn.SetWriteBuffer(4 << 20)
	e := &Endpoint{
		id:    id,
		conn:  conn,
		opts:  opts,
		pool:  pktbuf.New(),
		tel:   newEpInstruments(opts.Telemetry, opts.Shards),
		peers: make(map[int]netip.AddrPort),
		done:  make(chan struct{}),
	}
	binary.BigEndian.PutUint32(e.idHdr[:], uint32(id))
	if opts.Telemetry != nil {
		e.pool.Instrument(opts.Telemetry.Counter("udprun.pool_hits"), opts.Telemetry.Counter("udprun.pool_misses"))
	}
	e.wr, err = newBatchWriter(e)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("udprun: %w", err)
	}
	return e, nil
}

// ID returns the endpoint's overlay ID.
func (e *Endpoint) ID() int { return e.id }

// Addr returns the bound UDP address.
func (e *Endpoint) Addr() string { return e.conn.LocalAddr().String() }

// AddPeer registers the address of another overlay endpoint.
func (e *Endpoint) AddPeer(id int, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udprun: %w", err)
	}
	ap := ua.AddrPort()
	// Unmap ::ffff:a.b.c.d so v4 sockets accept the address.
	ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	e.mu.Lock()
	e.peers[id] = ap
	e.mu.Unlock()
	return nil
}

// peer resolves a registered overlay ID.
func (e *Endpoint) peer(to int) (netip.AddrPort, bool) {
	e.mu.RLock()
	ap, ok := e.peers[to]
	e.mu.RUnlock()
	return ap, ok
}

// Send implements node.Sender. from is ignored (the socket's own ID is
// stamped) but kept for interface compatibility. The datagram is
// assembled in a pooled buffer — no per-send allocation.
func (e *Endpoint) Send(from, to int, data []byte) error {
	ap, ok := e.peer(to)
	if !ok {
		return ErrUnknownPeer
	}
	b := e.pool.Get(headerLen + len(data))
	buf := b.Bytes()
	copy(buf, e.idHdr[:])
	copy(buf[headerLen:], data)
	_, err := e.conn.WriteToUDPAddrPort(buf, ap)
	b.Release()
	e.tel.txPackets.Inc()
	return err
}

// SendVec implements node.VecSender: one datagram as hdr++payload.
func (e *Endpoint) SendVec(from, to int, hdr, payload []byte) error {
	vecs := [1]wire.Vec{{Hdr: hdr, Payload: payload}}
	return e.SendBatch(from, to, vecs[:])
}

// SendBatch implements node.BatchSender: the whole batch goes to one
// destination in order, moving up to Options.Batch datagrams per
// sendmmsg round on Linux (scatter-gather: the overlay-ID prefix, the
// per-packet header and the shared payload tail are never concatenated).
func (e *Endpoint) SendBatch(from, to int, vecs []wire.Vec) error {
	ap, ok := e.peer(to)
	if !ok {
		return ErrUnknownPeer
	}
	if len(vecs) == 0 {
		return nil
	}
	e.wmu.Lock()
	err := e.wr.send(ap, vecs)
	e.wmu.Unlock()
	e.tel.txPackets.Add(uint64(len(vecs)))
	e.tel.txBatch.Observe(int64(len(vecs)))
	return err
}

// Serve starts the receive plane: the batched read loop plus
// Options.Shards delivery workers. The handler BORROWS the data slice —
// it is only valid for the duration of the call (the backing pooled
// buffer is recycled after the handler returns); retain a copy if
// needed. With Shards > 1 the handler must also be safe for concurrent
// calls (per-stream delivery stays ordered; different streams and
// shards proceed in parallel). Peers are auto-registered from incoming
// datagrams, so static peer lists only need to cover first contact.
func (e *Endpoint) Serve(handler func(from int, data []byte)) {
	e.handler = handler
	if e.opts.Shards > 1 {
		e.shardCh = make([]chan rxPacket, e.opts.Shards)
		for i := range e.shardCh {
			e.shardCh[i] = make(chan rxPacket, shardQueueCap)
			go e.shardLoop(e.shardCh[i])
		}
	}
	go e.readLoop()
}

// shardOf maps a datagram (ID prefix included) to its delivery shard:
// RTP hashes by SSRC so one stream always lands on one worker; every
// other message kind serializes through shard 0.
func (e *Endpoint) shardOf(dgram []byte) int {
	const ssrcOff = headerLen + wire.RTPHeaderLen + 8 // RTP SSRC at bytes 8..12
	if len(dgram) >= ssrcOff+4 && dgram[headerLen] == wire.MsgRTP {
		ssrc := binary.BigEndian.Uint32(dgram[ssrcOff:])
		return int(ssrc % uint32(e.opts.Shards))
	}
	return 0
}

// deliver invokes the handler for one datagram and recycles its buffer.
func (e *Endpoint) deliver(from int, buf *pktbuf.Buf) {
	if e.handler != nil {
		e.handler(from, buf.Bytes()[headerLen:])
	}
	buf.Release()
}

func (e *Endpoint) shardLoop(ch chan rxPacket) {
	for p := range ch {
		e.deliver(p.from, p.buf)
	}
}

func (e *Endpoint) readLoop() {
	r := newBatchReader(e)
	defer func() {
		r.close()
		for _, ch := range e.shardCh {
			close(ch)
		}
	}()
	for {
		n := r.read()
		if n < 0 {
			return // socket closed
		}
		if n == 0 {
			continue
		}
		e.tel.rxPackets.Add(uint64(n))
		e.tel.rxBatch.Observe(int64(n))
		for i := 0; i < n; i++ {
			buf := r.take(i)
			dgram := buf.Bytes()
			if len(dgram) < headerLen {
				buf.Release()
				continue
			}
			from := int(binary.BigEndian.Uint32(dgram))
			// Auto-register the sender's address (NAT-style learning).
			// The hot path is a read lock; the source address is only
			// parsed for first contact.
			e.mu.RLock()
			_, known := e.peers[from]
			e.mu.RUnlock()
			// AdminID is always re-learned: admin CLI invocations are
			// short-lived processes on fresh ephemeral ports, and an ack
			// sent to a previous invocation's port is lost.
			if !known || from == AdminID {
				if ap, ok := r.addr(i); ok {
					e.mu.Lock()
					if _, dup := e.peers[from]; !dup || from == AdminID {
						e.peers[from] = ap
					}
					e.mu.Unlock()
				}
			}
			if e.shardCh == nil {
				e.deliver(from, buf)
				continue
			}
			sh := e.shardOf(dgram)
			select {
			case e.shardCh[sh] <- rxPacket{from: from, buf: buf}:
				e.tel.shardRx[sh].Inc()
			default:
				e.tel.rxDropped.Inc()
				buf.Release()
			}
		}
	}
}

// Close shuts the socket down.
func (e *Endpoint) Close() error {
	var err error
	e.once.Do(func() {
		close(e.done)
		err = e.conn.Close()
	})
	return err
}

// BrainAPI is the slice of the Streaming Brain the UDP RPC surface
// needs. Both the monolithic *brain.Brain and the federated
// *brainfed.Federation satisfy it, so livenet-brain can serve either
// behind the same wire protocol.
type BrainAPI interface {
	Lookup(sid uint32, consumer int) ([][]int, error)
	RegisterStream(sid uint32, producer int)
	ReportLink(from, to int, rtt time.Duration, loss, util float64)
	ReportNodeLoad(id int, util float64)
	// SetDraining/Draining expose the planned-decommission admin surface:
	// a draining relay is excluded from future path decisions.
	SetDraining(id int, v bool)
	Draining(id int) bool
}

// BrainServer exposes a Streaming Brain over UDP: it answers PathRequest
// RPCs, accepts stream registrations and Global Discovery reports.
type BrainServer struct {
	Brain BrainAPI
	ep    *Endpoint
}

// BrainID is the well-known overlay ID of the Brain endpoint.
const BrainID = 1 << 20

// AdminID is the well-known overlay ID operator tooling (the
// livenet-brain -drain/-undrain client mode) sends admin RPCs from.
const AdminID = BrainID + 1

// NewBrainServer wraps a Brain behind a UDP endpoint.
func NewBrainServer(b BrainAPI, addr string) (*BrainServer, error) {
	ep, err := Listen(BrainID, addr)
	if err != nil {
		return nil, err
	}
	s := &BrainServer{Brain: b, ep: ep}
	ep.Serve(s.onMessage)
	return s, nil
}

// Addr returns the server's UDP address.
func (s *BrainServer) Addr() string { return s.ep.Addr() }

// Close shuts the server down.
func (s *BrainServer) Close() error { return s.ep.Close() }

func (s *BrainServer) onMessage(from int, data []byte) {
	switch wire.Kind(data) {
	case wire.MsgPathRequest:
		var req wire.PathRequest
		if err := req.Unmarshal(data); err != nil {
			return
		}
		paths, err := s.Brain.Lookup(req.StreamID, int(req.Consumer))
		resp := wire.PathResponse{StreamID: req.StreamID, Token: req.Token, OK: err == nil}
		for _, p := range paths {
			wp := make([]uint16, len(p))
			for i, h := range p {
				wp[i] = uint16(h)
			}
			resp.Paths = append(resp.Paths, wp)
		}
		s.ep.Send(BrainID, from, resp.Marshal(nil))
	case wire.MsgRegisterStream:
		var reg wire.RegisterStream
		if err := reg.Unmarshal(data); err != nil {
			return
		}
		s.Brain.RegisterStream(reg.StreamID, int(reg.Producer))
	case wire.MsgNodeReport:
		var rep wire.NodeReport
		if err := rep.Unmarshal(data); err != nil {
			return
		}
		s.Brain.ReportLink(int(rep.From), int(rep.To),
			time.Duration(rep.RTTMicros)*time.Microsecond, float64(rep.LossPPM)/1e6, float64(rep.UtilPercent)/1e4)
		s.Brain.ReportNodeLoad(int(rep.From), float64(rep.NodeUtil)/1e4)
	case wire.MsgDrainNode:
		// Operator admin: mark a relay (un)draining for path decisions and
		// ack with the resulting state so tooling can confirm the change.
		var dn wire.DrainNode
		if err := dn.Unmarshal(data); err != nil {
			return
		}
		s.Brain.SetDraining(int(dn.Node), dn.Drain)
		ack := wire.DrainAck{Node: dn.Node, Draining: s.Brain.Draining(int(dn.Node))}
		s.ep.Send(BrainID, from, ack.Marshal(nil))
	}
}

// BrainClient is the node-side stub for the Brain RPC: it provides a
// node.PathLookupFunc and forwards registrations/reports.
type BrainClient struct {
	ep *Endpoint

	mu      sync.Mutex
	token   uint32
	pending map[uint32]func([][]int, error)
}

// NewBrainClient builds a client on an existing endpoint. It must be
// installed before the endpoint's Serve handler via WrapHandler.
func NewBrainClient(ep *Endpoint, brainAddr string) (*BrainClient, error) {
	if err := ep.AddPeer(BrainID, brainAddr); err != nil {
		return nil, err
	}
	return &BrainClient{ep: ep, pending: make(map[uint32]func([][]int, error))}, nil
}

// WrapHandler returns a handler that intercepts Brain RPC responses and
// passes everything else to next.
func (c *BrainClient) WrapHandler(next func(from int, data []byte)) func(from int, data []byte) {
	return func(from int, data []byte) {
		if wire.Kind(data) == wire.MsgPathResponse {
			var resp wire.PathResponse
			if err := resp.Unmarshal(data); err != nil {
				return
			}
			c.mu.Lock()
			cb := c.pending[resp.Token]
			delete(c.pending, resp.Token)
			c.mu.Unlock()
			if cb != nil {
				if !resp.OK {
					cb(nil, brain.ErrUnknownStream)
					return
				}
				paths := make([][]int, 0, len(resp.Paths))
				for _, p := range resp.Paths {
					ip := make([]int, len(p))
					for i, h := range p {
						ip[i] = int(h)
					}
					paths = append(paths, ip)
				}
				cb(paths, nil)
			}
			return
		}
		next(from, data)
	}
}

// Lookup implements node.PathLookupFunc over the RPC.
func (c *BrainClient) Lookup(sid uint32, consumer int, cb func([][]int, error)) {
	c.mu.Lock()
	c.token++
	tok := c.token
	c.pending[tok] = cb
	c.mu.Unlock()
	req := wire.PathRequest{StreamID: sid, Consumer: uint16(consumer), Token: tok}
	if err := c.ep.Send(c.ep.id, BrainID, req.Marshal(nil)); err != nil {
		c.mu.Lock()
		delete(c.pending, tok)
		c.mu.Unlock()
		cb(nil, err)
	}
}

// RegisterStream forwards a stream registration.
func (c *BrainClient) RegisterStream(sid uint32, producer int) {
	reg := wire.RegisterStream{StreamID: sid, Producer: uint16(producer)}
	c.ep.Send(c.ep.id, BrainID, reg.Marshal(nil))
}

// Report forwards one Global Discovery measurement.
func (c *BrainClient) Report(rep wire.NodeReport) {
	c.ep.Send(c.ep.id, BrainID, rep.Marshal(nil))
}

// Prober implements the UDP ping utility of §4.2 over an endpoint: nodes
// that have not transmitted over a link recently actively measure its RTT
// with a few small probes.
type Prober struct {
	ep *Endpoint

	mu      sync.Mutex
	token   uint32
	pending map[uint32]pendingPing
}

type pendingPing struct {
	sentAt time.Time
	cb     func(rtt time.Duration, ok bool)
}

// NewProber builds a prober on an endpoint; install it with WrapHandler
// (composable with BrainClient.WrapHandler).
func NewProber(ep *Endpoint) *Prober {
	return &Prober{ep: ep, pending: make(map[uint32]pendingPing)}
}

// WrapHandler intercepts pings (replying immediately) and pongs
// (resolving pending probes), passing everything else to next.
func (p *Prober) WrapHandler(next func(from int, data []byte)) func(from int, data []byte) {
	return func(from int, data []byte) {
		switch wire.Kind(data) {
		case wire.MsgPing:
			var pr wire.Probe
			if pr.Unmarshal(data) == nil {
				p.ep.Send(p.ep.id, from, pr.MarshalPong(nil))
			}
		case wire.MsgPong:
			var pr wire.Probe
			if pr.Unmarshal(data) != nil {
				return
			}
			p.mu.Lock()
			pend, ok := p.pending[pr.Token]
			delete(p.pending, pr.Token)
			p.mu.Unlock()
			if ok {
				pend.cb(time.Since(pend.sentAt), true)
			}
		default:
			next(from, data)
		}
	}
}

// Ping measures the RTT to a peer; cb fires with ok=false on timeout.
func (p *Prober) Ping(to int, timeout time.Duration, cb func(rtt time.Duration, ok bool)) {
	p.mu.Lock()
	p.token++
	tok := p.token
	p.pending[tok] = pendingPing{sentAt: time.Now(), cb: cb}
	p.mu.Unlock()
	pr := wire.Probe{Token: tok}
	if err := p.ep.Send(p.ep.id, to, pr.MarshalPing(nil)); err != nil {
		p.expire(tok)
		return
	}
	time.AfterFunc(timeout, func() { p.expire(tok) })
}

func (p *Prober) expire(tok uint32) {
	p.mu.Lock()
	pend, ok := p.pending[tok]
	delete(p.pending, tok)
	p.mu.Unlock()
	if ok {
		pend.cb(0, false)
	}
}
