// Package udprun runs LiveNet components over real UDP sockets — the
// multi-node deployment mode used by cmd/livenet-node, cmd/livenet-brain
// and cmd/livenet-demo. Each overlay endpoint (node, client, Brain) owns
// one socket; datagrams are prefixed with the sender's overlay ID so the
// node code stays addressed by integer IDs exactly as on the emulator.
package udprun

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"livenet/internal/brain"
	"livenet/internal/node"
	"livenet/internal/wire"
)

// headerLen is the datagram prefix: sender overlay ID.
const headerLen = 4

// ErrUnknownPeer is returned when sending to an unregistered ID.
var ErrUnknownPeer = errors.New("udprun: unknown peer id")

// Endpoint is one UDP-backed overlay endpoint. It implements node.Sender
// (and client.Sender, which has the same shape).
type Endpoint struct {
	id   int
	conn *net.UDPConn

	mu    sync.RWMutex
	peers map[int]*net.UDPAddr

	handler func(from int, data []byte)
	done    chan struct{}
	once    sync.Once
}

var _ node.Sender = (*Endpoint)(nil)

// Listen binds an endpoint with overlay ID id on addr (e.g. "127.0.0.1:0").
func Listen(id int, addr string) (*Endpoint, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udprun: %w", err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("udprun: %w", err)
	}
	return &Endpoint{
		id:    id,
		conn:  conn,
		peers: make(map[int]*net.UDPAddr),
		done:  make(chan struct{}),
	}, nil
}

// ID returns the endpoint's overlay ID.
func (e *Endpoint) ID() int { return e.id }

// Addr returns the bound UDP address.
func (e *Endpoint) Addr() string { return e.conn.LocalAddr().String() }

// AddPeer registers the address of another overlay endpoint.
func (e *Endpoint) AddPeer(id int, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udprun: %w", err)
	}
	e.mu.Lock()
	e.peers[id] = ua
	e.mu.Unlock()
	return nil
}

// Send implements node.Sender. from is ignored (the socket's own ID is
// stamped) but kept for interface compatibility.
func (e *Endpoint) Send(from, to int, data []byte) error {
	e.mu.RLock()
	addr := e.peers[to]
	e.mu.RUnlock()
	if addr == nil {
		return ErrUnknownPeer
	}
	buf := make([]byte, headerLen+len(data))
	binary.BigEndian.PutUint32(buf, uint32(e.id))
	copy(buf[headerLen:], data)
	_, err := e.conn.WriteToUDP(buf, addr)
	return err
}

// Serve starts the read loop, delivering datagrams to handler. The
// handler owns the data slice. Peers are auto-registered from incoming
// datagrams, so static peer lists only need to cover first contact.
func (e *Endpoint) Serve(handler func(from int, data []byte)) {
	e.handler = handler
	go e.readLoop()
}

func (e *Endpoint) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-e.done:
				return
			default:
				continue
			}
		}
		if n < headerLen {
			continue
		}
		from := int(binary.BigEndian.Uint32(buf))
		// Auto-register the sender's address (NAT-style learning).
		e.mu.Lock()
		if _, ok := e.peers[from]; !ok {
			e.peers[from] = raddr
		}
		e.mu.Unlock()
		data := make([]byte, n-headerLen)
		copy(data, buf[headerLen:n])
		if e.handler != nil {
			e.handler(from, data)
		}
	}
}

// Close shuts the socket down.
func (e *Endpoint) Close() error {
	var err error
	e.once.Do(func() {
		close(e.done)
		err = e.conn.Close()
	})
	return err
}

// BrainServer exposes a Streaming Brain over UDP: it answers PathRequest
// RPCs, accepts stream registrations and Global Discovery reports.
type BrainServer struct {
	Brain *brain.Brain
	ep    *Endpoint
}

// BrainID is the well-known overlay ID of the Brain endpoint.
const BrainID = 1 << 20

// NewBrainServer wraps a Brain behind a UDP endpoint.
func NewBrainServer(b *brain.Brain, addr string) (*BrainServer, error) {
	ep, err := Listen(BrainID, addr)
	if err != nil {
		return nil, err
	}
	s := &BrainServer{Brain: b, ep: ep}
	ep.Serve(s.onMessage)
	return s, nil
}

// Addr returns the server's UDP address.
func (s *BrainServer) Addr() string { return s.ep.Addr() }

// Close shuts the server down.
func (s *BrainServer) Close() error { return s.ep.Close() }

func (s *BrainServer) onMessage(from int, data []byte) {
	switch wire.Kind(data) {
	case wire.MsgPathRequest:
		var req wire.PathRequest
		if err := req.Unmarshal(data); err != nil {
			return
		}
		paths, err := s.Brain.Lookup(req.StreamID, int(req.Consumer))
		resp := wire.PathResponse{StreamID: req.StreamID, Token: req.Token, OK: err == nil}
		for _, p := range paths {
			wp := make([]uint16, len(p))
			for i, h := range p {
				wp[i] = uint16(h)
			}
			resp.Paths = append(resp.Paths, wp)
		}
		s.ep.Send(BrainID, from, resp.Marshal(nil))
	case wire.MsgRegisterStream:
		var reg wire.RegisterStream
		if err := reg.Unmarshal(data); err != nil {
			return
		}
		s.Brain.RegisterStream(reg.StreamID, int(reg.Producer))
	case wire.MsgNodeReport:
		var rep wire.NodeReport
		if err := rep.Unmarshal(data); err != nil {
			return
		}
		s.Brain.ReportLink(int(rep.From), int(rep.To),
			time.Duration(rep.RTTMicros)*time.Microsecond, float64(rep.LossPPM)/1e6, float64(rep.UtilPercent)/1e4)
		s.Brain.ReportNodeLoad(int(rep.From), float64(rep.NodeUtil)/1e4)
	}
}

// BrainClient is the node-side stub for the Brain RPC: it provides a
// node.PathLookupFunc and forwards registrations/reports.
type BrainClient struct {
	ep *Endpoint

	mu      sync.Mutex
	token   uint32
	pending map[uint32]func([][]int, error)
}

// NewBrainClient builds a client on an existing endpoint. It must be
// installed before the endpoint's Serve handler via WrapHandler.
func NewBrainClient(ep *Endpoint, brainAddr string) (*BrainClient, error) {
	if err := ep.AddPeer(BrainID, brainAddr); err != nil {
		return nil, err
	}
	return &BrainClient{ep: ep, pending: make(map[uint32]func([][]int, error))}, nil
}

// WrapHandler returns a handler that intercepts Brain RPC responses and
// passes everything else to next.
func (c *BrainClient) WrapHandler(next func(from int, data []byte)) func(from int, data []byte) {
	return func(from int, data []byte) {
		if wire.Kind(data) == wire.MsgPathResponse {
			var resp wire.PathResponse
			if err := resp.Unmarshal(data); err != nil {
				return
			}
			c.mu.Lock()
			cb := c.pending[resp.Token]
			delete(c.pending, resp.Token)
			c.mu.Unlock()
			if cb != nil {
				if !resp.OK {
					cb(nil, brain.ErrUnknownStream)
					return
				}
				paths := make([][]int, 0, len(resp.Paths))
				for _, p := range resp.Paths {
					ip := make([]int, len(p))
					for i, h := range p {
						ip[i] = int(h)
					}
					paths = append(paths, ip)
				}
				cb(paths, nil)
			}
			return
		}
		next(from, data)
	}
}

// Lookup implements node.PathLookupFunc over the RPC.
func (c *BrainClient) Lookup(sid uint32, consumer int, cb func([][]int, error)) {
	c.mu.Lock()
	c.token++
	tok := c.token
	c.pending[tok] = cb
	c.mu.Unlock()
	req := wire.PathRequest{StreamID: sid, Consumer: uint16(consumer), Token: tok}
	if err := c.ep.Send(c.ep.id, BrainID, req.Marshal(nil)); err != nil {
		c.mu.Lock()
		delete(c.pending, tok)
		c.mu.Unlock()
		cb(nil, err)
	}
}

// RegisterStream forwards a stream registration.
func (c *BrainClient) RegisterStream(sid uint32, producer int) {
	reg := wire.RegisterStream{StreamID: sid, Producer: uint16(producer)}
	c.ep.Send(c.ep.id, BrainID, reg.Marshal(nil))
}

// Report forwards one Global Discovery measurement.
func (c *BrainClient) Report(rep wire.NodeReport) {
	c.ep.Send(c.ep.id, BrainID, rep.Marshal(nil))
}

// Prober implements the UDP ping utility of §4.2 over an endpoint: nodes
// that have not transmitted over a link recently actively measure its RTT
// with a few small probes.
type Prober struct {
	ep *Endpoint

	mu      sync.Mutex
	token   uint32
	pending map[uint32]pendingPing
}

type pendingPing struct {
	sentAt time.Time
	cb     func(rtt time.Duration, ok bool)
}

// NewProber builds a prober on an endpoint; install it with WrapHandler
// (composable with BrainClient.WrapHandler).
func NewProber(ep *Endpoint) *Prober {
	return &Prober{ep: ep, pending: make(map[uint32]pendingPing)}
}

// WrapHandler intercepts pings (replying immediately) and pongs
// (resolving pending probes), passing everything else to next.
func (p *Prober) WrapHandler(next func(from int, data []byte)) func(from int, data []byte) {
	return func(from int, data []byte) {
		switch wire.Kind(data) {
		case wire.MsgPing:
			var pr wire.Probe
			if pr.Unmarshal(data) == nil {
				p.ep.Send(p.ep.id, from, pr.MarshalPong(nil))
			}
		case wire.MsgPong:
			var pr wire.Probe
			if pr.Unmarshal(data) != nil {
				return
			}
			p.mu.Lock()
			pend, ok := p.pending[pr.Token]
			delete(p.pending, pr.Token)
			p.mu.Unlock()
			if ok {
				pend.cb(time.Since(pend.sentAt), true)
			}
		default:
			next(from, data)
		}
	}
}

// Ping measures the RTT to a peer; cb fires with ok=false on timeout.
func (p *Prober) Ping(to int, timeout time.Duration, cb func(rtt time.Duration, ok bool)) {
	p.mu.Lock()
	p.token++
	tok := p.token
	p.pending[tok] = pendingPing{sentAt: time.Now(), cb: cb}
	p.mu.Unlock()
	pr := wire.Probe{Token: tok}
	if err := p.ep.Send(p.ep.id, to, pr.MarshalPing(nil)); err != nil {
		p.expire(tok)
		return
	}
	time.AfterFunc(timeout, func() { p.expire(tok) })
}

func (p *Prober) expire(tok uint32) {
	p.mu.Lock()
	pend, ok := p.pending[tok]
	delete(p.pending, tok)
	p.mu.Unlock()
	if ok {
		pend.cb(0, false)
	}
}
