//go:build linux && (amd64 || arm64)

// Batched syscall I/O: recvmmsg/sendmmsg move up to Options.Batch
// datagrams per kernel crossing. The raw syscalls run through the
// net poller (syscall.RawConn with MSG_DONTWAIT: EAGAIN parks the
// goroutine until the socket is ready), so batching composes with the
// runtime scheduler instead of fighting it. Scatter-gather iovecs let
// a send submit [overlay-ID prefix][packet header][shared payload]
// without ever concatenating them.

package udprun

import (
	"encoding/binary"
	"net"
	"net/netip"
	"syscall"
	"unsafe"

	"livenet/internal/pktbuf"
	"livenet/internal/wire"
)

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// per-message byte count.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// sockaddrBuf holds one raw source/destination address (sized for
// sockaddr_in6, the larger of the two families we speak).
type sockaddrBuf [syscall.SizeofSockaddrInet6]byte

// sockaddrInto encodes ap into sa. v6 selects the socket's address
// family: an AF_INET6 socket needs the v4-mapped form for IPv4 peers,
// an AF_INET socket needs plain sockaddr_in.
func sockaddrInto(sa *sockaddrBuf, ap netip.AddrPort, v6 bool) uint32 {
	addr := ap.Addr()
	if !v6 {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&sa[0]))
		*sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Addr: addr.As4()}
		binary.BigEndian.PutUint16(sa[2:4], ap.Port())
		return syscall.SizeofSockaddrInet4
	}
	sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&sa[0]))
	*sa6 = syscall.RawSockaddrInet6{Family: syscall.AF_INET6, Addr: addr.As16()}
	binary.BigEndian.PutUint16(sa[2:4], ap.Port())
	return syscall.SizeofSockaddrInet6
}

// parseSockaddr decodes a kernel-filled source address.
func parseSockaddr(name []byte) (netip.AddrPort, bool) {
	if len(name) < 4 {
		return netip.AddrPort{}, false
	}
	port := uint16(name[2])<<8 | uint16(name[3])
	switch *(*uint16)(unsafe.Pointer(&name[0])) {
	case syscall.AF_INET:
		if len(name) < 8 {
			return netip.AddrPort{}, false
		}
		return netip.AddrPortFrom(netip.AddrFrom4([4]byte(name[4:8])), port), true
	case syscall.AF_INET6:
		if len(name) < 24 {
			return netip.AddrPort{}, false
		}
		return netip.AddrPortFrom(netip.AddrFrom16([16]byte(name[8:24])).Unmap(), port), true
	}
	return netip.AddrPort{}, false
}

// localIsV6 reports whether the endpoint's socket is AF_INET6.
func localIsV6(conn *net.UDPConn) bool {
	ua, ok := conn.LocalAddr().(*net.UDPAddr)
	return ok && ua.IP.To4() == nil
}

// batchReader drains the socket with recvmmsg into pooled buffers.
type batchReader struct {
	e     *Endpoint
	k     int
	raw   syscall.RawConn
	bufs  []*pktbuf.Buf
	iovs  []syscall.Iovec
	hdrs  []mmsghdr
	names []sockaddrBuf

	// readFn is the hoisted RawConn.Read callback (no per-round closure
	// allocation); results land in n/errno.
	readFn func(fd uintptr) bool
	n      int
	errno  syscall.Errno
}

func newBatchReader(e *Endpoint) *batchReader {
	k := e.opts.Batch
	r := &batchReader{
		e:     e,
		k:     k,
		bufs:  make([]*pktbuf.Buf, k),
		iovs:  make([]syscall.Iovec, k),
		hdrs:  make([]mmsghdr, k),
		names: make([]sockaddrBuf, k),
	}
	r.raw, _ = e.conn.SyscallConn()
	r.readFn = func(fd uintptr) bool {
		for {
			rn, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&r.hdrs[0])), uintptr(r.k),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			if errno == syscall.EINTR {
				continue
			}
			if errno == syscall.EAGAIN {
				return false // park in the net poller until readable
			}
			r.n, r.errno = int(rn), errno
			return true
		}
	}
	return r
}

// read blocks until at least one datagram arrives, fills bufs[0:n]
// (each truncated to its datagram size) and returns n. It returns 0 on
// a transient error and -1 once the socket is closed.
func (r *batchReader) read() int {
	for i := 0; i < r.k; i++ {
		if r.bufs[i] == nil {
			r.bufs[i] = r.e.pool.Get(pktbuf.LargeSize)
		}
		b := r.bufs[i].Bytes()
		r.iovs[i].Base = &b[0]
		r.iovs[i].SetLen(len(b))
		h := &r.hdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&r.names[i][0]))
		h.Namelen = uint32(len(r.names[i]))
		h.Iov = &r.iovs[i]
		h.Iovlen = 1
		h.Flags = 0
	}
	if err := r.raw.Read(r.readFn); err != nil {
		return -1 // socket closed
	}
	if r.errno != 0 {
		select {
		case <-r.e.done:
			return -1
		default:
			return 0 // e.g. ECONNREFUSED bounced back from a dead peer
		}
	}
	for i := 0; i < r.n; i++ {
		r.bufs[i].Truncate(int(r.hdrs[i].n))
	}
	return r.n
}

// take transfers ownership of datagram i's buffer to the caller.
func (r *batchReader) take(i int) *pktbuf.Buf {
	b := r.bufs[i]
	r.bufs[i] = nil
	return b
}

// addr parses the source address of datagram i (only consulted for
// unknown peers, so the parse stays off the hot path).
func (r *batchReader) addr(i int) (netip.AddrPort, bool) {
	return parseSockaddr(r.names[i][:r.hdrs[i].hdr.Namelen])
}

func (r *batchReader) close() {
	for i, b := range r.bufs {
		if b != nil {
			b.Release()
			r.bufs[i] = nil
		}
	}
}

// batchWriter submits batches with sendmmsg. Guarded by Endpoint.wmu
// (the iovec/mmsghdr scratch is shared across calls).
type batchWriter struct {
	e    *Endpoint
	k    int
	raw  syscall.RawConn
	v6   bool
	hdrs []mmsghdr
	iovs []syscall.Iovec // up to 3 per message: idHdr, vec.Hdr, vec.Payload
	sa   sockaddrBuf

	sendFn func(fd uintptr) bool
	at     int // messages already sent this round
	k2     int // messages armed this round
	n      int
	errno  syscall.Errno
}

func newBatchWriter(e *Endpoint) (*batchWriter, error) {
	raw, err := e.conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	w := &batchWriter{
		e:    e,
		k:    e.opts.Batch,
		raw:  raw,
		v6:   localIsV6(e.conn),
		hdrs: make([]mmsghdr, e.opts.Batch),
		iovs: make([]syscall.Iovec, 3*e.opts.Batch),
	}
	w.sendFn = func(fd uintptr) bool {
		for {
			rn, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&w.hdrs[w.at])), uintptr(w.k2-w.at),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			if errno == syscall.EINTR {
				continue
			}
			if errno == syscall.EAGAIN {
				return false // park until the socket drains
			}
			w.n, w.errno = int(rn), errno
			return true
		}
	}
	return w, nil
}

// send transmits vecs to ap in order, up to k datagrams per sendmmsg.
func (w *batchWriter) send(ap netip.AddrPort, vecs []wire.Vec) error {
	saLen := sockaddrInto(&w.sa, ap, w.v6)
	for off := 0; off < len(vecs); {
		k := len(vecs) - off
		if k > w.k {
			k = w.k
		}
		iov := 0
		for i := 0; i < k; i++ {
			v := &vecs[off+i]
			base := iov
			w.iovs[iov].Base = &w.e.idHdr[0]
			w.iovs[iov].SetLen(headerLen)
			iov++
			if len(v.Hdr) > 0 {
				w.iovs[iov].Base = &v.Hdr[0]
				w.iovs[iov].SetLen(len(v.Hdr))
				iov++
			}
			if len(v.Payload) > 0 {
				w.iovs[iov].Base = &v.Payload[0]
				w.iovs[iov].SetLen(len(v.Payload))
				iov++
			}
			h := &w.hdrs[i].hdr
			h.Name = (*byte)(unsafe.Pointer(&w.sa[0]))
			h.Namelen = saLen
			h.Iov = &w.iovs[base]
			h.Iovlen = uint64(iov - base)
			h.Flags = 0
		}
		w.at, w.k2 = 0, k
		for w.at < w.k2 {
			if err := w.raw.Write(w.sendFn); err != nil {
				return err // socket closed
			}
			if w.errno != 0 {
				return w.errno
			}
			if w.n <= 0 {
				break // defensive: avoid spinning if the kernel reports none sent
			}
			w.at += w.n
		}
		off += k
	}
	return nil
}
