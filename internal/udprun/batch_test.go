package udprun

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"livenet/internal/rtp"
	"livenet/internal/telemetry"
	"livenet/internal/wire"
)

// collectN polls until want datagrams arrived or the deadline passes.
func collectN(t *testing.T, count func() int, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: got %d/%d datagrams", count(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSendBatchRoundTrip drives the batched write path (sendmmsg on
// Linux) end to end over loopback: one SendBatch of scatter-gather vecs
// must arrive as distinct datagrams, in order, with Hdr and Payload
// logically concatenated.
func TestSendBatchRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	a, err := ListenOpts(1, "127.0.0.1:0", Options{Batch: 4, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer(2, b.Addr()); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var got [][]byte
	b.Serve(func(from int, data []byte) {
		if from != 1 {
			return
		}
		mu.Lock()
		got = append(got, append([]byte(nil), data...))
		mu.Unlock()
	})

	// 41 datagrams through a batch window of 4 exercises full rounds plus
	// a remainder; odd indexes ship header-only vecs (the fallback-frame
	// shape), even ones split header and payload (the zero-copy shape).
	const n = 41
	vecs := make([]wire.Vec, n)
	for i := range vecs {
		if i%2 == 1 {
			vecs[i] = wire.Vec{Hdr: []byte(fmt.Sprintf("whole-%02d", i))}
		} else {
			vecs[i] = wire.Vec{Hdr: []byte(fmt.Sprintf("hdr-%02d|", i)), Payload: []byte("shared-tail")}
		}
	}
	if err := a.SendBatch(1, 2, vecs); err != nil {
		t.Fatal(err)
	}

	collectN(t, func() int { mu.Lock(); defer mu.Unlock(); return len(got) }, n)
	mu.Lock()
	defer mu.Unlock()
	for i, d := range got {
		var want string
		if i%2 == 1 {
			want = fmt.Sprintf("whole-%02d", i)
		} else {
			want = fmt.Sprintf("hdr-%02d|shared-tail", i)
		}
		if string(d) != want {
			t.Fatalf("datagram %d = %q, want %q (batch order broken?)", i, d, want)
		}
	}
	if tx := reg.Counter("udprun.tx_packets").Load(); tx != n {
		t.Fatalf("udprun.tx_packets = %d, want %d", tx, n)
	}
}

// rtpFrame builds one framed MsgRTP datagram for stream ssrc / seq.
func rtpFrame(ssrc uint32, seq uint16) []byte {
	p := rtp.Packet{
		PayloadType:    rtp.PayloadVideo,
		SequenceNumber: seq,
		SSRC:           ssrc,
		Payload:        []byte("payload"),
	}
	return wire.FrameRTP(nil, 0, p.Marshal(nil))
}

// TestShardedPerStreamFIFO runs a 4-shard receiver under concurrent
// delivery: packets of one SSRC must stay in send order (they hash to
// one shard) even while eight streams interleave, and no packet may be
// lost to shard-queue overflow.
func TestShardedPerStreamFIFO(t *testing.T) {
	reg := telemetry.NewRegistry()
	rx, err := ListenOpts(2, "127.0.0.1:0", Options{Shards: 4, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	if err := tx.AddPeer(2, rx.Addr()); err != nil {
		t.Fatal(err)
	}

	const (
		streams   = 8
		perStream = 50
	)
	var mu sync.Mutex
	seqs := make(map[uint32][]uint16)
	total := 0
	rx.Serve(func(from int, data []byte) {
		var p rtp.Packet
		if _, rtpData, err := wire.UnframeRTP(data); err == nil && p.Unmarshal(rtpData) == nil {
			mu.Lock()
			seqs[p.SSRC] = append(seqs[p.SSRC], p.SequenceNumber)
			total++
			mu.Unlock()
		}
	})

	for seq := 0; seq < perStream; seq++ {
		for s := 0; s < streams; s++ {
			if err := tx.Send(1, 2, rtpFrame(uint32(100+s), uint16(seq))); err != nil {
				t.Fatal(err)
			}
		}
	}

	collectN(t, func() int { mu.Lock(); defer mu.Unlock(); return total }, streams*perStream)
	if dropped := reg.Counter("udprun.rx_dropped").Load(); dropped != 0 {
		t.Fatalf("%d packets dropped on shard queues", dropped)
	}
	mu.Lock()
	defer mu.Unlock()
	for s := 0; s < streams; s++ {
		ssrc := uint32(100 + s)
		got := seqs[ssrc]
		if len(got) != perStream {
			t.Fatalf("stream %d: %d packets, want %d", ssrc, len(got), perStream)
		}
		for i, seq := range got {
			if int(seq) != i {
				t.Fatalf("stream %d: out-of-order delivery at %d: got seq %d (per-stream shard affinity broken)", ssrc, i, seq)
			}
		}
	}
	// The eight SSRCs (100..107) mod 4 cover every shard; each shard must
	// have actually delivered its share.
	for i := 0; i < 4; i++ {
		c := reg.Counter(fmt.Sprintf("udprun.shard%02d.rx_packets", i)).Load()
		if c == 0 {
			t.Fatalf("shard %d delivered nothing: sharding is not spreading streams", i)
		}
	}
}

// TestShardedMatchesSerialDelivery replays the same datagram sequence
// through a sharded and an unsharded endpoint: per-stream content must
// come out identical (sharding is a scheduling change, not a semantic
// one).
func TestShardedMatchesSerialDelivery(t *testing.T) {
	run := func(shards int) map[uint32][]uint16 {
		rx, err := ListenOpts(2, "127.0.0.1:0", Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		defer rx.Close()
		tx, err := Listen(1, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer tx.Close()
		if err := tx.AddPeer(2, rx.Addr()); err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		seqs := make(map[uint32][]uint16)
		total := 0
		rx.Serve(func(from int, data []byte) {
			var p rtp.Packet
			if _, rtpData, err := wire.UnframeRTP(data); err == nil && p.Unmarshal(rtpData) == nil {
				mu.Lock()
				seqs[p.SSRC] = append(seqs[p.SSRC], p.SequenceNumber)
				total++
				mu.Unlock()
			}
		})
		for seq := 0; seq < 30; seq++ {
			for s := 0; s < 4; s++ {
				if err := tx.Send(1, 2, rtpFrame(uint32(200+s), uint16(seq))); err != nil {
					t.Fatal(err)
				}
			}
		}
		collectN(t, func() int { mu.Lock(); defer mu.Unlock(); return total }, 4*30)
		mu.Lock()
		defer mu.Unlock()
		return seqs
	}
	serial, sharded := run(1), run(4)
	for ssrc, want := range serial {
		got := sharded[ssrc]
		if len(got) != len(want) {
			t.Fatalf("stream %d: sharded delivered %d, serial %d", ssrc, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("stream %d diverged at %d: sharded %d vs serial %d", ssrc, i, got[i], want[i])
			}
		}
	}
}
