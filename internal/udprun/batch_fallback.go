//go:build !(linux && (amd64 || arm64))

// Portable single-syscall fallback for platforms without
// recvmmsg/sendmmsg: one datagram per kernel crossing, same pooled
// buffers and the same reader/writer contract as batch_linux.go.

package udprun

import (
	"net/netip"

	"livenet/internal/pktbuf"
	"livenet/internal/wire"
)

// batchReader reads one datagram at a time into pooled buffers.
type batchReader struct {
	e   *Endpoint
	buf *pktbuf.Buf
	ap  netip.AddrPort
}

func newBatchReader(e *Endpoint) *batchReader { return &batchReader{e: e} }

// read blocks for one datagram; returns 1 on success, 0 on a transient
// error and -1 once the socket is closed.
func (r *batchReader) read() int {
	if r.buf == nil {
		r.buf = r.e.pool.Get(pktbuf.LargeSize)
	}
	n, ap, err := r.e.conn.ReadFromUDPAddrPort(r.buf.Bytes())
	if err != nil {
		select {
		case <-r.e.done:
			return -1
		default:
			return 0
		}
	}
	r.buf.Truncate(n)
	// Unmap ::ffff:a.b.c.d so the learned address round-trips on v4 sockets.
	r.ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	return 1
}

// take transfers ownership of the buffer to the caller.
func (r *batchReader) take(int) *pktbuf.Buf {
	b := r.buf
	r.buf = nil
	return b
}

// addr returns the source address of the last datagram.
func (r *batchReader) addr(int) (netip.AddrPort, bool) {
	return r.ap, r.ap.IsValid()
}

func (r *batchReader) close() {
	if r.buf != nil {
		r.buf.Release()
		r.buf = nil
	}
}

// batchWriter assembles each vec into a pooled buffer and writes it
// with one syscall. Guarded by Endpoint.wmu.
type batchWriter struct {
	e *Endpoint
}

func newBatchWriter(e *Endpoint) (*batchWriter, error) { return &batchWriter{e: e}, nil }

func (w *batchWriter) send(ap netip.AddrPort, vecs []wire.Vec) error {
	for i := range vecs {
		v := &vecs[i]
		b := w.e.pool.Get(headerLen + v.Len())
		buf := b.Bytes()
		copy(buf, w.e.idHdr[:])
		n := copy(buf[headerLen:], v.Hdr)
		copy(buf[headerLen+n:], v.Payload)
		_, err := w.e.conn.WriteToUDPAddrPort(buf, ap)
		b.Release()
		if err != nil {
			return err
		}
	}
	return nil
}
