package udprun

import (
	"testing"
	"time"

	"livenet/internal/brain"
	"livenet/internal/client"
	"livenet/internal/media"
	"livenet/internal/node"
	"livenet/internal/sim"
	"livenet/internal/wire"
)

func TestEndpointRoundTrip(t *testing.T) {
	a, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer(2, b.Addr()); err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	b.Serve(func(from int, data []byte) {
		if from == 1 {
			got <- append([]byte(nil), data...) // handlers borrow data
		}
	})
	if err := a.Send(1, 2, []byte("hello overlay")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if string(d) != "hello overlay" {
			t.Fatalf("got %q", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("datagram never arrived")
	}
	// Reverse direction works via auto-registration (b learned a's addr).
	got2 := make(chan []byte, 1)
	a.Serve(func(from int, data []byte) { got2 <- append([]byte(nil), data...) })
	if err := b.Send(2, 1, []byte("back")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got2:
		if string(d) != "back" {
			t.Fatalf("got %q", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reverse datagram never arrived")
	}
}

func TestSendUnknownPeer(t *testing.T) {
	a, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(1, 99, []byte("x")); err != ErrUnknownPeer {
		t.Fatalf("err = %v", err)
	}
}

func TestBrainRPC(t *testing.T) {
	b := brain.New(brain.Config{N: 4})
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				b.ReportLink(i, j, 10*time.Millisecond, 0, 0.1)
			}
		}
	}
	srv, err := NewBrainServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ep, err := Listen(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	cli, err := NewBrainClient(ep, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ep.Serve(cli.WrapHandler(func(int, []byte) {}))

	// Register a stream over RPC, then look it up.
	cli.RegisterStream(77, 0)
	time.Sleep(50 * time.Millisecond)

	done := make(chan [][]int, 1)
	cli.Lookup(77, 2, func(paths [][]int, err error) {
		if err != nil {
			t.Errorf("lookup: %v", err)
		}
		done <- paths
	})
	select {
	case paths := <-done:
		if len(paths) == 0 || paths[0][0] != 0 || paths[0][len(paths[0])-1] != 2 {
			t.Fatalf("paths = %v", paths)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("lookup timed out")
	}

	// Unknown stream error propagates.
	errc := make(chan error, 1)
	cli.Lookup(999, 2, func(_ [][]int, err error) { errc <- err })
	select {
	case err := <-errc:
		if err != brain.ErrUnknownStream {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("unknown-stream lookup timed out")
	}

	// Discovery report lands in the Brain's view.
	cli.Report(wire.NodeReport{From: 1, To: 3, RTTMicros: 25000, LossPPM: 500, UtilPercent: 1200, NodeUtil: 900})
	time.Sleep(50 * time.Millisecond)
	g := b.View()
	if l := g.Link(1, 3); l == nil || l.RTT != 25*time.Millisecond {
		t.Fatalf("report not applied: %+v", l)
	}
}

// TestRealUDPStreaming runs a full LiveNet slice over loopback UDP with
// the wall clock: brain + producer + consumer nodes + broadcaster +
// viewer — the multi-node deployment path the cmd/ binaries use.
func TestRealUDPStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	clock := sim.NewRealClock()

	b := brain.New(brain.Config{N: 2})
	b.ReportLink(0, 1, 5*time.Millisecond, 0, 0.1)
	b.ReportLink(1, 0, 5*time.Millisecond, 0, 0.1)
	srv, err := NewBrainServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mkNode := func(id int) (*node.Node, *Endpoint) {
		ep, err := Listen(id, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cli, err := NewBrainClient(ep, srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		n := node.New(node.Config{
			ID:          id,
			Clock:       clock,
			Net:         ep,
			PathLookup:  cli.Lookup,
			OnNewStream: func(sid uint32) { cli.RegisterStream(sid, id) },
			IsOverlay:   func(peer int) bool { return peer < 100 },
		})
		ep.Serve(cli.WrapHandler(n.OnMessage))
		return n, ep
	}
	producer, pep := mkNode(0)
	consumer, cep := mkNode(1)
	defer producer.Close()
	defer consumer.Close()
	defer pep.Close()
	defer cep.Close()
	// Overlay nodes know each other.
	if err := pep.AddPeer(1, cep.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := cep.AddPeer(0, pep.Addr()); err != nil {
		t.Fatal(err)
	}

	// Broadcaster (client id 100) uploads to the producer.
	bep, err := Listen(100, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bep.Close()
	bep.AddPeer(0, pep.Addr())
	bep.Serve(func(int, []byte) {})
	bc := client.NewBroadcaster(100, 0, 500, media.DefaultRenditions[2:], clock, bep, sim.NewSource(1).Stream("bc"))
	bc.Start()
	defer bc.Stop()
	time.Sleep(400 * time.Millisecond)

	// Viewer (client id 101) attaches at the consumer.
	vep, err := Listen(101, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer vep.Close()
	vep.AddPeer(1, cep.Addr())
	// The viewing request carries the client's address in a real
	// deployment; register it at the consumer explicitly here.
	cep.AddPeer(101, vep.Addr())
	viewer := client.NewViewer(101, bc.StreamID(0), 1, clock, vep)
	vep.Serve(viewer.OnMessage)
	viewer.Attach()
	defer viewer.Close()
	consumer.AttachViewer(101, bc.StreamID(0))

	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if s := viewer.Stats(); s.Started && s.FramesPlayed >= 25 {
			return // a second of real video flowed over real sockets
		}
		time.Sleep(100 * time.Millisecond)
	}
	s := viewer.Stats()
	t.Fatalf("real-UDP streaming failed: started=%v played=%d missed=%d",
		s.Started, s.FramesPlayed, s.FramesMissed)
}

func TestProberMeasuresRTT(t *testing.T) {
	a, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(2, b.Addr())
	b.AddPeer(1, a.Addr())

	pa := NewProber(a)
	pb := NewProber(b)
	a.Serve(pa.WrapHandler(func(int, []byte) {}))
	b.Serve(pb.WrapHandler(func(int, []byte) {}))

	done := make(chan time.Duration, 1)
	pa.Ping(2, 2*time.Second, func(rtt time.Duration, ok bool) {
		if !ok {
			t.Error("ping timed out")
		}
		done <- rtt
	})
	select {
	case rtt := <-done:
		if rtt <= 0 || rtt > 500*time.Millisecond {
			t.Fatalf("loopback RTT = %v", rtt)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("ping callback never fired")
	}
}

func TestProberTimeout(t *testing.T) {
	a, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Peer 9 registered with an address nobody listens on.
	a.AddPeer(9, "127.0.0.1:1")
	p := NewProber(a)
	a.Serve(p.WrapHandler(func(int, []byte) {}))
	done := make(chan bool, 1)
	p.Ping(9, 200*time.Millisecond, func(_ time.Duration, ok bool) { done <- ok })
	select {
	case ok := <-done:
		if ok {
			t.Fatal("ping to dead peer should time out")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout callback never fired")
	}
}

func TestBrainDrainRPC(t *testing.T) {
	b := brain.New(brain.Config{N: 4})
	defer b.Close()
	srv, err := NewBrainServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ep, err := Listen(AdminID, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.AddPeer(BrainID, srv.Addr()); err != nil {
		t.Fatal(err)
	}
	acks := make(chan wire.DrainAck, 4)
	ep.Serve(func(from int, data []byte) {
		var ack wire.DrainAck
		if ack.Unmarshal(data) == nil {
			acks <- ack
		}
	})

	send := func(node int, drain bool) wire.DrainAck {
		t.Helper()
		req := wire.DrainNode{Node: uint16(node), Drain: drain}
		if err := ep.Send(AdminID, BrainID, req.Marshal(nil)); err != nil {
			t.Fatal(err)
		}
		select {
		case ack := <-acks:
			return ack
		case <-time.After(2 * time.Second):
			t.Fatal("DrainAck never arrived")
			return wire.DrainAck{}
		}
	}

	if ack := send(2, true); ack.Node != 2 || !ack.Draining {
		t.Fatalf("drain ack %+v", ack)
	}
	if !b.Draining(2) {
		t.Fatal("brain did not mark node 2 draining")
	}
	if ack := send(2, false); ack.Node != 2 || ack.Draining {
		t.Fatalf("undrain ack %+v", ack)
	}
	if b.Draining(2) {
		t.Fatal("brain did not readmit node 2")
	}
}
