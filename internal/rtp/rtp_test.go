package rtp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	p := Packet{
		Marker:         true,
		PayloadType:    PayloadVideo,
		SequenceNumber: 4242,
		Timestamp:      90000,
		SSRC:           77,
		Payload:        []byte("hello frame data"),
	}
	buf := p.Marshal(nil)
	if len(buf) != p.MarshalSize() {
		t.Fatalf("MarshalSize = %d, wrote %d", p.MarshalSize(), len(buf))
	}
	var q Packet
	if err := q.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if q.Marker != p.Marker || q.PayloadType != p.PayloadType ||
		q.SequenceNumber != p.SequenceNumber || q.Timestamp != p.Timestamp ||
		q.SSRC != p.SSRC || !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", p, q)
	}
	if q.HasDelayExt {
		t.Fatal("no extension was marshaled")
	}
}

func TestDelayExtensionRoundTrip(t *testing.T) {
	p := Packet{
		PayloadType:    PayloadVideo,
		SequenceNumber: 1,
		SSRC:           5,
		HasDelayExt:    true,
		DelayAccum10us: 123456,
		HopCount:       3,
		Payload:        []byte{1, 2, 3},
	}
	buf := p.Marshal(nil)
	if len(buf) != p.MarshalSize() {
		t.Fatalf("size mismatch: %d vs %d", p.MarshalSize(), len(buf))
	}
	var q Packet
	if err := q.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if !q.HasDelayExt || q.DelayAccum10us != 123456 || q.HopCount != 3 {
		t.Fatalf("extension lost: %+v", q)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("payload corrupted by extension: %v", q.Payload)
	}
}

func TestUnmarshalZeroCopy(t *testing.T) {
	p := Packet{PayloadType: PayloadVideo, Payload: []byte("zero-copy")}
	buf := p.Marshal(nil)
	var q Packet
	if err := q.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	// Mutating the buffer must show through the payload (alias, not copy).
	buf[len(buf)-1] = 'X'
	if q.Payload[len(q.Payload)-1] != 'X' {
		t.Fatal("payload was copied; want aliasing for the zero-alloc path")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var p Packet
	if err := p.Unmarshal(nil); err != ErrShort {
		t.Fatalf("nil: %v", err)
	}
	if err := p.Unmarshal(make([]byte, 5)); err != ErrShort {
		t.Fatalf("short: %v", err)
	}
	bad := make([]byte, 12)
	bad[0] = 0x00 // version 0
	if err := p.Unmarshal(bad); err != ErrVersion {
		t.Fatalf("version: %v", err)
	}
	// Extension header promised but truncated.
	good := (&Packet{HasDelayExt: true, Payload: []byte{9}}).Marshal(nil)
	if err := p.Unmarshal(good[:14]); err != ErrShort {
		t.Fatalf("truncated ext: %v", err)
	}
}

func TestPaddingHandling(t *testing.T) {
	p := Packet{PayloadType: 96, Payload: []byte{1, 2, 3, 4}}
	buf := p.Marshal(nil)
	// Add RFC 3550 padding manually: 3 pad bytes, last byte = count.
	buf[0] |= 0x20
	buf = append(buf, 0, 0, 3)
	var q Packet
	if err := q.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.Payload, []byte{1, 2, 3, 4}) {
		t.Fatalf("padding not stripped: %v", q.Payload)
	}
	// Corrupt pad count larger than payload.
	buf[len(buf)-1] = 200
	if err := q.Unmarshal(buf); err != ErrBadPadding {
		t.Fatalf("want ErrBadPadding, got %v", err)
	}
}

func TestAddDelaySaturates(t *testing.T) {
	p := Packet{DelayAccum10us: ^uint32(0) - 5, HopCount: 254}
	p.AddDelay(100)
	if p.DelayAccum10us != ^uint32(0) {
		t.Fatalf("delay did not saturate: %d", p.DelayAccum10us)
	}
	if p.HopCount != 255 {
		t.Fatalf("hop = %d", p.HopCount)
	}
	p.AddDelay(1)
	if p.HopCount != 255 {
		t.Fatal("hop count overflowed")
	}
}

func TestSeqArithmetic(t *testing.T) {
	if !SeqLess(65535, 0) {
		t.Fatal("wraparound: 65535 < 0")
	}
	if SeqLess(0, 65535) {
		t.Fatal("0 should not be < 65535")
	}
	if SeqLess(5, 5) {
		t.Fatal("equal seqs")
	}
	if d := SeqDiff(65534, 2); d != 4 {
		t.Fatalf("SeqDiff(65534,2) = %d, want 4", d)
	}
	if d := SeqDiff(2, 65534); d != -4 {
		t.Fatalf("SeqDiff(2,65534) = %d, want -4", d)
	}
}

func TestMarshalRoundTripQuick(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if err := quick.Check(func(seq uint16, ts, ssrc uint32, marker bool, delay uint32, hop uint8, n uint8) bool {
		payload := make([]byte, int(n))
		r.Read(payload)
		p := Packet{
			Marker: marker, PayloadType: PayloadVideo,
			SequenceNumber: seq, Timestamp: ts, SSRC: ssrc,
			HasDelayExt: true, DelayAccum10us: delay, HopCount: hop,
			Payload: payload,
		}
		var q Packet
		if err := q.Unmarshal(p.Marshal(nil)); err != nil {
			return false
		}
		return q.SequenceNumber == seq && q.Timestamp == ts && q.SSRC == ssrc &&
			q.Marker == marker && q.DelayAccum10us == delay && q.HopCount == hop &&
			bytes.Equal(q.Payload, payload)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalNoAlloc(t *testing.T) {
	p := Packet{PayloadType: 96, HasDelayExt: true, Payload: make([]byte, 1200)}
	buf := make([]byte, 0, 1500)
	var q Packet
	allocs := testing.AllocsPerRun(100, func() {
		buf = p.Marshal(buf[:0])
		if err := q.Unmarshal(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("marshal+unmarshal allocates %v per run, want 0", allocs)
	}
}

func TestPatchDelayExt(t *testing.T) {
	p := Packet{
		PayloadType: PayloadVideo, HasDelayExt: true,
		DelayAccum10us: 100, HopCount: 1, Payload: []byte{1, 2, 3},
	}
	buf := p.Marshal(nil)
	if !PatchDelayExt(buf, 50) {
		t.Fatal("patch failed on packet with extension")
	}
	var q Packet
	if err := q.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if q.DelayAccum10us != 150 || q.HopCount != 2 {
		t.Fatalf("patched: delay=%d hops=%d", q.DelayAccum10us, q.HopCount)
	}
	if !bytes.Equal(q.Payload, []byte{1, 2, 3}) {
		t.Fatal("payload corrupted by patch")
	}
}

func TestPatchDelayExtAbsent(t *testing.T) {
	p := Packet{PayloadType: PayloadVideo, Payload: []byte{1}}
	buf := p.Marshal(nil)
	if PatchDelayExt(buf, 50) {
		t.Fatal("patch should fail without extension")
	}
	if PatchDelayExt(nil, 1) {
		t.Fatal("patch should fail on empty buffer")
	}
}

func TestPatchDelayExtSaturates(t *testing.T) {
	p := Packet{HasDelayExt: true, DelayAccum10us: ^uint32(0) - 1, Payload: []byte{1}}
	buf := p.Marshal(nil)
	PatchDelayExt(buf, 1000)
	var q Packet
	if err := q.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if q.DelayAccum10us != ^uint32(0) {
		t.Fatalf("no saturation: %d", q.DelayAccum10us)
	}
}
