package rtp

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestNACKRoundTrip(t *testing.T) {
	n := &NACK{SenderSSRC: 1, MediaSSRC: 2, Lost: []uint16{100, 101, 105, 116, 400}}
	buf := MarshalNACK(n, nil)
	var m NACK
	if err := UnmarshalNACK(&m, buf); err != nil {
		t.Fatal(err)
	}
	if m.SenderSSRC != 1 || m.MediaSSRC != 2 {
		t.Fatalf("ssrc mismatch: %+v", m)
	}
	sort.Slice(m.Lost, func(i, j int) bool { return m.Lost[i] < m.Lost[j] })
	want := []uint16{100, 101, 105, 116, 400}
	if len(m.Lost) != len(want) {
		t.Fatalf("lost = %v, want %v", m.Lost, want)
	}
	for i := range want {
		if m.Lost[i] != want[i] {
			t.Fatalf("lost = %v, want %v", m.Lost, want)
		}
	}
}

func TestNACKWraparound(t *testing.T) {
	n := &NACK{Lost: []uint16{65534, 65535, 0, 1}}
	buf := MarshalNACK(n, nil)
	var m NACK
	if err := UnmarshalNACK(&m, buf); err != nil {
		t.Fatal(err)
	}
	got := map[uint16]bool{}
	for _, s := range m.Lost {
		got[s] = true
	}
	for _, want := range []uint16{65534, 65535, 0, 1} {
		if !got[want] {
			t.Fatalf("seq %d missing from %v", want, m.Lost)
		}
	}
}

func TestNACKQuickRoundTrip(t *testing.T) {
	if err := quick.Check(func(seqs []uint16) bool {
		if len(seqs) > 50 {
			seqs = seqs[:50]
		}
		// Deduplicate: NACK semantics are set-like.
		set := map[uint16]bool{}
		for _, s := range seqs {
			set[s] = true
		}
		n := &NACK{SenderSSRC: 9, MediaSSRC: 8}
		for s := range set {
			n.Lost = append(n.Lost, s)
		}
		buf := MarshalNACK(n, nil)
		var m NACK
		if err := UnmarshalNACK(&m, buf); err != nil {
			return false
		}
		back := map[uint16]bool{}
		for _, s := range m.Lost {
			back[s] = true
		}
		if len(back) != len(set) {
			return false
		}
		for s := range set {
			if !back[s] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNACKBadInput(t *testing.T) {
	var m NACK
	if err := UnmarshalNACK(&m, []byte{1, 2, 3}); err != ErrBadRTCP {
		t.Fatalf("short: %v", err)
	}
	good := MarshalNACK(&NACK{Lost: []uint16{1}}, nil)
	good[1] = rtcpTypeRR // wrong PT
	if err := UnmarshalNACK(&m, good); err != ErrBadRTCP {
		t.Fatalf("wrong pt: %v", err)
	}
}

func TestRRRoundTrip(t *testing.T) {
	r := &ReceiverReport{
		SenderSSRC: 10, MediaSSRC: 20,
		FractionLost: 64, CumulativeLost: 1234,
		HighestSeq: 99999, Jitter: 42,
	}
	buf := MarshalRR(r, nil)
	var m ReceiverReport
	if err := UnmarshalRR(&m, buf); err != nil {
		t.Fatal(err)
	}
	if m != *r {
		t.Fatalf("round trip: %+v vs %+v", m, *r)
	}
}

func TestRRCumulativeLost24Bit(t *testing.T) {
	r := &ReceiverReport{CumulativeLost: 0x01FFFFFF} // exceeds 24 bits
	buf := MarshalRR(r, nil)
	var m ReceiverReport
	if err := UnmarshalRR(&m, buf); err != nil {
		t.Fatal(err)
	}
	if m.CumulativeLost != 0x00FFFFFF {
		t.Fatalf("cumulative lost should be masked to 24 bits, got %x", m.CumulativeLost)
	}
}

func TestREMBRoundTrip(t *testing.T) {
	for _, bps := range []uint64{1000, 250_000, 2_500_000, 1 << 30} {
		r := &REMB{SenderSSRC: 3, BitrateBps: bps, SSRCs: []uint32{7, 8}}
		buf := MarshalREMB(r, nil)
		var m REMB
		if err := UnmarshalREMB(&m, buf); err != nil {
			t.Fatal(err)
		}
		// Exp/mantissa encoding may round down slightly for large rates.
		if m.BitrateBps > bps || m.BitrateBps < bps-(bps>>10) {
			t.Fatalf("bitrate %d decoded as %d", bps, m.BitrateBps)
		}
		if len(m.SSRCs) != 2 || m.SSRCs[0] != 7 || m.SSRCs[1] != 8 {
			t.Fatalf("ssrcs = %v", m.SSRCs)
		}
	}
}

func TestREMBBadMagic(t *testing.T) {
	r := &REMB{BitrateBps: 1000}
	buf := MarshalREMB(r, nil)
	buf[12] = 'X'
	var m REMB
	if err := UnmarshalREMB(&m, buf); err != ErrBadRTCP {
		t.Fatalf("want ErrBadRTCP, got %v", err)
	}
}

func TestIsRTCPDemux(t *testing.T) {
	rtcp := MarshalNACK(&NACK{Lost: []uint16{1}}, nil)
	if !IsRTCP(rtcp) {
		t.Fatal("NACK not classified as RTCP")
	}
	rr := MarshalRR(&ReceiverReport{}, nil)
	if !IsRTCP(rr) {
		t.Fatal("RR not classified as RTCP")
	}
	p := Packet{PayloadType: PayloadVideo}
	if IsRTCP(p.Marshal(nil)) {
		t.Fatal("RTP misclassified as RTCP")
	}
	if IsRTCP(nil) {
		t.Fatal("nil misclassified")
	}
}

func TestRTCPKind(t *testing.T) {
	pt, f := RTCPKind(MarshalNACK(&NACK{Lost: []uint16{1}}, nil))
	if pt != rtcpTypeRTPFB || f != fmtNACK {
		t.Fatalf("kind = %d/%d", pt, f)
	}
	pt, f = RTCPKind(MarshalREMB(&REMB{BitrateBps: 1}, nil))
	if pt != rtcpTypePSFB || f != fmtREMB {
		t.Fatalf("kind = %d/%d", pt, f)
	}
}
