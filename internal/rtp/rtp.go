// Package rtp implements the RTP and RTCP wire formats LiveNet's data
// plane uses: RTP packets with the paper's per-hop delay header extension
// (§6.1), and the RTCP feedback messages the slow path needs — Generic
// NACK for per-hop retransmission (§5.1), Receiver Reports, and REMB for
// the GCC bandwidth estimate.
//
// Following the gopacket DecodingLayerParser idiom, Unmarshal decodes into
// a caller-owned Packet without allocating: the payload and extension
// sub-slices alias the input buffer.
package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the RTP version (always 2).
const Version = 2

// Payload types used by LiveNet's overlay transport.
const (
	PayloadVideo = 96
	PayloadAudio = 97
	PayloadRTX   = 98 // retransmissions (slow-path recovery)
)

// Errors returned by the decoders.
var (
	ErrShort      = errors.New("rtp: packet too short")
	ErrVersion    = errors.New("rtp: unsupported version")
	ErrBadPadding = errors.New("rtp: bad padding")
)

// DelayExtProfile identifies LiveNet's header-extension profile carrying
// the accumulated one-way delay estimate (RFC 8285 one-byte form uses
// 0xBEDE; we use it with extension ID 1).
const (
	extProfileOneByte = 0xBEDE
	DelayExtID        = 1
	// delayExtLen is the payload length of the delay extension element:
	// 4 bytes of accumulated delay (in 10 µs units) + 1 byte hop count.
	delayExtLen = 5
)

// Packet is one RTP packet. After Unmarshal, Payload and rawExt alias the
// input buffer; copy them if the buffer will be reused.
type Packet struct {
	Marker         bool
	PayloadType    uint8
	SequenceNumber uint16
	Timestamp      uint32
	SSRC           uint32

	// HasDelayExt indicates the LiveNet delay extension is present.
	// DelayAccum10us accumulates encoding + queueing + per-hop transit
	// time in 10 µs units; HopCount counts overlay hops traversed.
	HasDelayExt    bool
	DelayAccum10us uint32
	HopCount       uint8

	Payload []byte
}

// headerLen is the fixed RTP header length (no CSRC support: LiveNet
// never mixes sources).
const headerLen = 12

// extWords returns the length of the extension block in 32-bit words
// (excluding the 4-byte extension header).
func extWords() int {
	// 1 byte element header + 5 bytes payload = 6, padded to 8.
	return 2
}

// MarshalSize returns the number of bytes Marshal will write.
func (p *Packet) MarshalSize() int {
	n := headerLen + len(p.Payload)
	if p.HasDelayExt {
		n += 4 + extWords()*4
	}
	return n
}

// Marshal appends the wire form of p to buf and returns the extended
// slice. It never fails; invalid field values are masked to their field
// widths.
func (p *Packet) Marshal(buf []byte) []byte {
	b0 := byte(Version << 6)
	if p.HasDelayExt {
		b0 |= 1 << 4 // X bit
	}
	b1 := p.PayloadType & 0x7F
	if p.Marker {
		b1 |= 0x80
	}
	buf = append(buf, b0, b1)
	buf = binary.BigEndian.AppendUint16(buf, p.SequenceNumber)
	buf = binary.BigEndian.AppendUint32(buf, p.Timestamp)
	buf = binary.BigEndian.AppendUint32(buf, p.SSRC)
	if p.HasDelayExt {
		buf = binary.BigEndian.AppendUint16(buf, extProfileOneByte)
		buf = binary.BigEndian.AppendUint16(buf, uint16(extWords()))
		// One-byte element header: ID in high nibble, length-1 in low.
		buf = append(buf, byte(DelayExtID<<4|(delayExtLen-1)))
		buf = binary.BigEndian.AppendUint32(buf, p.DelayAccum10us)
		buf = append(buf, p.HopCount)
		// Pad to the 8-byte (2-word) extension block.
		buf = append(buf, 0, 0)
	}
	return append(buf, p.Payload...)
}

// Unmarshal decodes data into p without copying the payload.
func (p *Packet) Unmarshal(data []byte) error {
	if len(data) < headerLen {
		return ErrShort
	}
	if data[0]>>6 != Version {
		return ErrVersion
	}
	hasExt := data[0]&0x10 != 0
	cc := int(data[0] & 0x0F)
	padding := data[0]&0x20 != 0
	p.Marker = data[1]&0x80 != 0
	p.PayloadType = data[1] & 0x7F
	p.SequenceNumber = binary.BigEndian.Uint16(data[2:])
	p.Timestamp = binary.BigEndian.Uint32(data[4:])
	p.SSRC = binary.BigEndian.Uint32(data[8:])

	off := headerLen + cc*4
	if len(data) < off {
		return ErrShort
	}
	p.HasDelayExt = false
	p.DelayAccum10us = 0
	p.HopCount = 0
	if hasExt {
		if len(data) < off+4 {
			return ErrShort
		}
		profile := binary.BigEndian.Uint16(data[off:])
		words := int(binary.BigEndian.Uint16(data[off+2:]))
		extStart := off + 4
		extEnd := extStart + words*4
		if len(data) < extEnd {
			return ErrShort
		}
		if profile == extProfileOneByte {
			p.parseOneByteExt(data[extStart:extEnd])
		}
		off = extEnd
	}
	end := len(data)
	if padding {
		if end == off {
			return ErrBadPadding
		}
		pad := int(data[end-1])
		if pad == 0 || end-pad < off {
			return ErrBadPadding
		}
		end -= pad
	}
	p.Payload = data[off:end]
	return nil
}

func (p *Packet) parseOneByteExt(ext []byte) {
	for i := 0; i < len(ext); {
		h := ext[i]
		if h == 0 { // padding byte
			i++
			continue
		}
		id := h >> 4
		elen := int(h&0x0F) + 1
		i++
		if i+elen > len(ext) {
			return
		}
		if id == DelayExtID && elen == delayExtLen {
			p.DelayAccum10us = binary.BigEndian.Uint32(ext[i:])
			p.HopCount = ext[i+4]
			p.HasDelayExt = true
		}
		i += elen
	}
}

// AddDelay adds d (in 10 µs units) to the accumulated delay, saturating,
// and bumps the hop count. Intermediate nodes call this with their
// processing time plus half the next hop's RTT (§6.1).
func (p *Packet) AddDelay(d10us uint32) {
	if p.DelayAccum10us > ^uint32(0)-d10us {
		p.DelayAccum10us = ^uint32(0)
	} else {
		p.DelayAccum10us += d10us
	}
	if p.HopCount < 255 {
		p.HopCount++
	}
	p.HasDelayExt = true
}

// PatchDelayExt adds d10us to the delay extension of a marshaled RTP
// packet in place and bumps the hop count, without re-encoding. It
// reports whether the packet carried the extension. This is the fast
// path's per-hop delay accounting (§6.1): intermediate nodes add their
// processing time plus half the next hop's RTT.
func PatchDelayExt(data []byte, d10us uint32) bool {
	if len(data) < headerLen || data[0]>>6 != Version || data[0]&0x10 == 0 {
		return false
	}
	cc := int(data[0] & 0x0F)
	off := headerLen + cc*4
	if len(data) < off+4 || binary.BigEndian.Uint16(data[off:]) != extProfileOneByte {
		return false
	}
	words := int(binary.BigEndian.Uint16(data[off+2:]))
	ext := off + 4
	end := ext + words*4
	if len(data) < end {
		return false
	}
	for i := ext; i < end; {
		h := data[i]
		if h == 0 {
			i++
			continue
		}
		id := h >> 4
		elen := int(h&0x0F) + 1
		i++
		if i+elen > end {
			return false
		}
		if id == DelayExtID && elen == delayExtLen {
			cur := binary.BigEndian.Uint32(data[i:])
			if cur > ^uint32(0)-d10us {
				cur = ^uint32(0)
			} else {
				cur += d10us
			}
			binary.BigEndian.PutUint32(data[i:], cur)
			if data[i+4] < 255 {
				data[i+4]++
			}
			return true
		}
		i += elen
	}
	return false
}

// PrefixLen returns the length of the mutable prefix of a marshaled RTP
// packet: the fixed header, CSRC list, and extension block. Everything a
// forwarding hop rewrites in place (the delay extension via PatchDelayExt)
// lives inside this prefix; the payload after it is immutable in flight.
// The zero-copy fan-out copies only this prefix per subscriber and shares
// the payload tail. Returns -1 if data is not a plausible RTP packet.
func PrefixLen(data []byte) int {
	if len(data) < headerLen || data[0]>>6 != Version {
		return -1
	}
	cc := int(data[0] & 0x0F)
	off := headerLen + cc*4
	if data[0]&0x10 != 0 {
		if len(data) < off+4 {
			return -1
		}
		words := int(binary.BigEndian.Uint16(data[off+2:]))
		off += 4 + words*4
	}
	if off > len(data) {
		return -1
	}
	return off
}

// SeqLess reports whether sequence number a is before b in RFC 3550
// wraparound arithmetic.
func SeqLess(a, b uint16) bool {
	return a != b && b-a < 0x8000
}

// SeqDiff returns the forward distance from a to b (how many packets b is
// ahead of a), interpreting wraparound.
func SeqDiff(a, b uint16) int {
	d := int16(b - a)
	return int(d)
}

// String implements fmt.Stringer for debugging.
func (p *Packet) String() string {
	return fmt.Sprintf("RTP{pt=%d seq=%d ts=%d ssrc=%d m=%v len=%d delay=%dx10us hops=%d}",
		p.PayloadType, p.SequenceNumber, p.Timestamp, p.SSRC, p.Marker, len(p.Payload),
		p.DelayAccum10us, p.HopCount)
}
