package rtp

import (
	"encoding/binary"
	"errors"
)

// RTCP packet types used by the slow path.
const (
	rtcpTypeRR    = 201 // receiver report
	rtcpTypeRTPFB = 205 // transport-layer feedback (Generic NACK, FMT=1)
	rtcpTypePSFB  = 206 // payload-specific feedback (REMB, FMT=15)

	fmtNACK = 1
	fmtREMB = 15
)

// ErrBadRTCP reports an undecodable RTCP packet.
var ErrBadRTCP = errors.New("rtp: bad rtcp packet")

// NACK requests retransmission of lost packets on one stream. Every 50 ms
// the slow path scans for sequence holes and NACKs the upstream node (§5.1).
type NACK struct {
	SenderSSRC uint32
	MediaSSRC  uint32 // the stream the losses belong to
	Lost       []uint16
}

// ReceiverReport carries the per-hop reception statistics the slow path
// feeds into GCC's loss-based controller.
type ReceiverReport struct {
	SenderSSRC     uint32
	MediaSSRC      uint32
	FractionLost   uint8 // fraction of packets lost since last RR, in 1/256
	CumulativeLost uint32
	HighestSeq     uint32
	Jitter         uint32
}

// REMB carries the receiver-side GCC bandwidth estimate upstream.
type REMB struct {
	SenderSSRC uint32
	BitrateBps uint64
	SSRCs      []uint32
}

// MarshalNACK encodes a Generic NACK (RFC 4585) into buf. Lost sequence
// numbers are packed into PID/BLP pairs.
func MarshalNACK(n *NACK, buf []byte) []byte {
	// Build PID/BLP pairs first.
	type fci struct {
		pid uint16
		blp uint16
	}
	var fcis []fci
	for _, seq := range n.Lost {
		placed := false
		for i := range fcis {
			d := SeqDiff(fcis[i].pid, seq)
			if d > 0 && d <= 16 {
				fcis[i].blp |= 1 << (d - 1)
				placed = true
				break
			}
			if d == 0 {
				placed = true
				break
			}
		}
		if !placed {
			fcis = append(fcis, fci{pid: seq})
		}
	}
	length := 2 + len(fcis) // in 32-bit words, minus one, excluding header word
	buf = append(buf, 0x80|fmtNACK, rtcpTypeRTPFB)
	buf = binary.BigEndian.AppendUint16(buf, uint16(length))
	buf = binary.BigEndian.AppendUint32(buf, n.SenderSSRC)
	buf = binary.BigEndian.AppendUint32(buf, n.MediaSSRC)
	for _, f := range fcis {
		buf = binary.BigEndian.AppendUint16(buf, f.pid)
		buf = binary.BigEndian.AppendUint16(buf, f.blp)
	}
	return buf
}

// UnmarshalNACK decodes a Generic NACK. The Lost slice is appended to
// n.Lost (reset it before reuse).
func UnmarshalNACK(n *NACK, data []byte) error {
	if len(data) < 12 || data[0]&0x1F != fmtNACK || data[1] != rtcpTypeRTPFB {
		return ErrBadRTCP
	}
	words := int(binary.BigEndian.Uint16(data[2:]))
	want := (words + 1) * 4
	if len(data) < want {
		return ErrBadRTCP
	}
	n.SenderSSRC = binary.BigEndian.Uint32(data[4:])
	n.MediaSSRC = binary.BigEndian.Uint32(data[8:])
	n.Lost = n.Lost[:0]
	for off := 12; off+4 <= want; off += 4 {
		pid := binary.BigEndian.Uint16(data[off:])
		blp := binary.BigEndian.Uint16(data[off+2:])
		n.Lost = append(n.Lost, pid)
		for bit := 0; bit < 16; bit++ {
			if blp&(1<<bit) != 0 {
				n.Lost = append(n.Lost, pid+uint16(bit)+1)
			}
		}
	}
	return nil
}

// MarshalRR encodes a single-block receiver report.
func MarshalRR(r *ReceiverReport, buf []byte) []byte {
	buf = append(buf, 0x80|1, rtcpTypeRR) // RC=1
	buf = binary.BigEndian.AppendUint16(buf, 7)
	buf = binary.BigEndian.AppendUint32(buf, r.SenderSSRC)
	buf = binary.BigEndian.AppendUint32(buf, r.MediaSSRC)
	cum := r.CumulativeLost & 0x00FFFFFF
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.FractionLost)<<24|cum)
	buf = binary.BigEndian.AppendUint32(buf, r.HighestSeq)
	buf = binary.BigEndian.AppendUint32(buf, r.Jitter)
	buf = binary.BigEndian.AppendUint32(buf, 0) // LSR
	buf = binary.BigEndian.AppendUint32(buf, 0) // DLSR
	return buf
}

// UnmarshalRR decodes a single-block receiver report.
func UnmarshalRR(r *ReceiverReport, data []byte) error {
	if len(data) < 32 || data[1] != rtcpTypeRR || data[0]&0x1F != 1 {
		return ErrBadRTCP
	}
	r.SenderSSRC = binary.BigEndian.Uint32(data[4:])
	r.MediaSSRC = binary.BigEndian.Uint32(data[8:])
	w := binary.BigEndian.Uint32(data[12:])
	r.FractionLost = uint8(w >> 24)
	r.CumulativeLost = w & 0x00FFFFFF
	r.HighestSeq = binary.BigEndian.Uint32(data[16:])
	r.Jitter = binary.BigEndian.Uint32(data[20:])
	return nil
}

// MarshalREMB encodes a REMB message (draft-alvestrand-rmcat-remb).
func MarshalREMB(r *REMB, buf []byte) []byte {
	words := 2 + 2 + len(r.SSRCs) // sender+media, "REMB"+exp/mantissa+count word, ssrcs
	buf = append(buf, 0x80|fmtREMB, rtcpTypePSFB)
	buf = binary.BigEndian.AppendUint16(buf, uint16(words+1))
	buf = binary.BigEndian.AppendUint32(buf, r.SenderSSRC)
	buf = binary.BigEndian.AppendUint32(buf, 0) // media SSRC: always 0 in REMB
	buf = append(buf, 'R', 'E', 'M', 'B')
	// 6-bit exponent, 18-bit mantissa.
	exp := 0
	mant := r.BitrateBps
	for mant >= 1<<18 {
		mant >>= 1
		exp++
	}
	buf = append(buf, byte(len(r.SSRCs)))
	buf = append(buf, byte(exp<<2|int(mant>>16)), byte(mant>>8), byte(mant))
	for _, s := range r.SSRCs {
		buf = binary.BigEndian.AppendUint32(buf, s)
	}
	return buf
}

// UnmarshalREMB decodes a REMB message.
func UnmarshalREMB(r *REMB, data []byte) error {
	if len(data) < 20 || data[1] != rtcpTypePSFB || data[0]&0x1F != fmtREMB {
		return ErrBadRTCP
	}
	if string(data[12:16]) != "REMB" {
		return ErrBadRTCP
	}
	r.SenderSSRC = binary.BigEndian.Uint32(data[4:])
	count := int(data[16])
	exp := int(data[17] >> 2)
	mant := uint64(data[17]&0x03)<<16 | uint64(data[18])<<8 | uint64(data[19])
	r.BitrateBps = mant << exp
	r.SSRCs = r.SSRCs[:0]
	for i := 0; i < count && 20+i*4+4 <= len(data); i++ {
		r.SSRCs = append(r.SSRCs, binary.BigEndian.Uint32(data[20+i*4:]))
	}
	return nil
}

// RTCPKind classifies an RTCP packet buffer; returns the packet type and
// feedback format (0 when not applicable).
func RTCPKind(data []byte) (pt uint8, fmtField uint8) {
	if len(data) < 2 {
		return 0, 0
	}
	return data[1], data[0] & 0x1F
}

// IsRTCP distinguishes RTCP from RTP by the packet-type byte range
// (RFC 5761 demultiplexing).
func IsRTCP(data []byte) bool {
	if len(data) < 2 {
		return false
	}
	pt := data[1]
	return pt >= 192 && pt <= 223
}
