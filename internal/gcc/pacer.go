package gcc

import "time"

// Class orders pacer traffic. Lower values drain first: audio beats
// everything (head-of-line blocking avoidance, §5.2) and retransmissions
// beat fresh video (§5.1 footnote: "retransmitted packets have a higher
// sending priority than the packets in the send queue"). Video keeps
// FIFO order — I frames are not reordered ahead of older packets (that
// would punch sequence holes at receivers); they get a pacing *gain*
// instead.
type Class int

// Pacer traffic classes, highest priority first.
const (
	ClassAudio Class = iota
	ClassRTX
	ClassVideo
	numClasses
)

// IFramePacingGain is the pacing gain applied to I-frame packets: their
// bytes are charged at 1/1.5 of their size so the large I frames drain
// the queue quickly without reordering it (§5.2 "Priority-Aware Data
// Sending", citing WebRTC's pacing gain).
const IFramePacingGain = 1.5

// Item is one queued packet. The payload type is a parameter so hot
// callers queue their packet struct directly — no interface boxing, no
// per-Push allocation (the node queues ~one item per subscriber per
// ingress packet).
type Item[T any] struct {
	Class Class
	Size  int // wire size in bytes
	// Gain is the pacing gain: the packet is charged Size/Gain against
	// the budget (0 or 1 = no gain). I frames use IFramePacingGain; GoP
	// cache primes use a larger catch-up gain so a joining subscriber
	// receives the backlog quickly without starving live packets behind
	// a slow drip.
	Gain float64
	// Payload is opaque to the pacer (the node stores the marshaled
	// packet and destination here).
	Payload T
}

// Pacer shapes fast-path sending to the rate the slow path's GCC
// controller decides. It is a pull-based token bucket: the node calls
// Drain on a timer and sends whatever the budget allows, in class order.
type Pacer[T any] struct {
	queues     [numClasses][]Item[T]
	queueBytes int

	rateBps   float64
	budget    float64 // bytes available to send now
	lastDrain time.Duration
	haveDrain bool

	// maxBurst caps accumulated budget so an idle period doesn't produce
	// a line-rate burst.
	maxBurst float64
}

// NewPacer returns a pacer at the given starting rate.
func NewPacer[T any](rateBps float64) *Pacer[T] {
	return &Pacer[T]{rateBps: rateBps, maxBurst: 12_000} // ~10 MTUs
}

// SetRate updates the pacing rate (bps).
func (p *Pacer[T]) SetRate(bps float64) {
	if bps < 10_000 {
		bps = 10_000
	}
	p.rateBps = bps
}

// Rate returns the current pacing rate.
func (p *Pacer[T]) Rate() float64 { return p.rateBps }

// Push enqueues an item.
func (p *Pacer[T]) Push(it Item[T]) {
	p.queues[it.Class] = append(p.queues[it.Class], it)
	p.queueBytes += it.Size
}

// QueueBytes returns the total queued bytes (all classes).
func (p *Pacer[T]) QueueBytes() int { return p.queueBytes }

// QueueLen returns the number of queued items.
func (p *Pacer[T]) QueueLen() int {
	n := 0
	for _, q := range p.queues {
		n += len(q)
	}
	return n
}

// QueueDelay estimates how long the current queue takes to drain at the
// current rate — the signal the consumer's proactive frame dropping
// compares against its threshold (§5.2).
func (p *Pacer[T]) QueueDelay() time.Duration {
	if p.rateBps <= 0 {
		return 0
	}
	secs := float64(p.queueBytes*8) / p.rateBps
	return time.Duration(secs * float64(time.Second))
}

// DropClassFunc removes the queued items of the given class for which
// drop returns true, returning how many bytes were removed (selective
// proactive dropping). The callback owns releasing any pooled buffer
// references of items it drops.
func (p *Pacer[T]) DropClassFunc(c Class, drop func(Item[T]) bool) int {
	dropped := 0
	q := p.queues[c]
	kept := q[:0]
	for i := range q {
		if drop(q[i]) {
			dropped += q[i].Size
		} else {
			kept = append(kept, q[i])
		}
	}
	for i := len(kept); i < len(q); i++ {
		q[i] = Item[T]{} // drop payload references
	}
	p.queues[c] = kept
	p.queueBytes -= dropped
	return dropped
}

// DropClass removes all queued items of the given class and returns how
// many bytes were dropped (used by proactive frame dropping). onDrop,
// if non-nil, sees every dropped item — payloads that hold pooled
// buffer references release them there.
func (p *Pacer[T]) DropClass(c Class, onDrop func(Item[T])) int {
	dropped := 0
	for i := range p.queues[c] {
		dropped += p.queues[c][i].Size
		if onDrop != nil {
			onDrop(p.queues[c][i])
		}
		p.queues[c][i] = Item[T]{} // drop payload references
	}
	p.queues[c] = p.queues[c][:0]
	p.queueBytes -= dropped
	return dropped
}

// Drain accrues budget for the elapsed time and emits items in priority
// order while budget remains. I-frame packets are charged size/1.5
// (pacing gain). A packet may drive the budget negative; the deficit is
// paid back before the next send.
func (p *Pacer[T]) Drain(now time.Duration, emit func(Item[T])) {
	if !p.haveDrain {
		p.haveDrain = true
		p.lastDrain = now
		// Allow an initial burst of one MTU so the first packet is not
		// delayed by budget accrual.
		p.budget = 1500
	}
	elapsed := now - p.lastDrain
	p.lastDrain = now
	p.budget += p.rateBps / 8 * elapsed.Seconds()
	if p.budget > p.maxBurst {
		p.budget = p.maxBurst
	}
	for p.budget > 0 {
		it, ok := p.pop()
		if !ok {
			// An empty queue must not bank budget for a later burst.
			if p.budget > 1500 {
				p.budget = 1500
			}
			return
		}
		charge := float64(it.Size)
		if it.Gain > 1 {
			charge /= it.Gain
		}
		p.budget -= charge
		emit(it)
	}
}

func (p *Pacer[T]) pop() (Item[T], bool) {
	for c := range p.queues {
		if n := len(p.queues[c]); n > 0 {
			it := p.queues[c][0]
			// Shift; amortized fine for short queues, and it keeps slices
			// reusable.
			copy(p.queues[c], p.queues[c][1:])
			p.queues[c][n-1] = Item[T]{} // drop payload references
			p.queues[c] = p.queues[c][:n-1]
			p.queueBytes -= it.Size
			return it, true
		}
	}
	var zero Item[T]
	return zero, false
}
