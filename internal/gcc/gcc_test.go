package gcc

import (
	"testing"
	"time"
)

const ms = time.Millisecond

func TestInterArrivalStableSpacing(t *testing.T) {
	var ia InterArrival
	// Send and arrival spacings identical: samples should be ~0.
	for i := 0; i < 50; i++ {
		send := time.Duration(i) * 10 * ms
		arr := send + 30*ms
		if d, ok := ia.Add(send, arr); ok && d != 0 {
			t.Fatalf("stable spacing produced nonzero sample %v", d)
		}
	}
}

func TestInterArrivalQueueBuildup(t *testing.T) {
	var ia InterArrival
	positives := 0
	for i := 0; i < 50; i++ {
		send := time.Duration(i) * 10 * ms
		// Arrival spacing inflates by 1 ms per group: queues building.
		arr := send + 30*ms + time.Duration(i*i/2)*ms/5
		if d, ok := ia.Add(send, arr); ok && d > 0 {
			positives++
		}
	}
	if positives < 20 {
		t.Fatalf("queue buildup should yield positive samples, got %d", positives)
	}
}

func TestInterArrivalGroupsBursts(t *testing.T) {
	var ia InterArrival
	samples := 0
	// Packets 1 ms apart in send time fall into 5 ms groups.
	for i := 0; i < 100; i++ {
		send := time.Duration(i) * ms
		if _, ok := ia.Add(send, send+20*ms); ok {
			samples++
		}
	}
	if samples == 0 || samples > 25 {
		t.Fatalf("grouping wrong: %d samples from 100 packets (want ~16)", samples)
	}
}

func TestTrendlineDetectsOveruse(t *testing.T) {
	e := NewTrendlineEstimator()
	now := time.Duration(0)
	// Steadily growing one-way delay: +2 ms per sample.
	sig := SignalNormal
	for i := 0; i < 60; i++ {
		now += 5 * ms
		sig = e.Update(2*ms, now)
	}
	if sig != SignalOveruse {
		t.Fatalf("monotone delay growth should signal overuse, got %v", sig)
	}
}

func TestTrendlineStableIsNormal(t *testing.T) {
	e := NewTrendlineEstimator()
	now := time.Duration(0)
	for i := 0; i < 100; i++ {
		now += 5 * ms
		d := time.Duration(0)
		if i%2 == 0 {
			d = ms / 10
		} else {
			d = -ms / 10
		}
		if sig := e.Update(d, now); sig == SignalOveruse {
			t.Fatalf("jittery-but-stable delay flagged overuse at sample %d", i)
		}
	}
}

func TestTrendlineDetectsUnderuse(t *testing.T) {
	e := NewTrendlineEstimator()
	now := time.Duration(0)
	// First build a queue, then drain it sharply.
	for i := 0; i < 40; i++ {
		now += 5 * ms
		e.Update(2*ms, now)
	}
	var sig Signal
	for i := 0; i < 40; i++ {
		now += 5 * ms
		sig = e.Update(-4*ms, now)
	}
	if sig != SignalUnderuse && sig != SignalNormal {
		t.Fatalf("draining queue should not be overuse, got %v", sig)
	}
}

func TestAIMDDecreaseOnOveruse(t *testing.T) {
	a := NewAIMD(2_000_000, 100_000, 10_000_000)
	now := time.Duration(0)
	rate := a.Update(SignalOveruse, 1_800_000, now)
	want := 0.85 * 1_800_000
	if rate != want {
		t.Fatalf("rate after overuse = %v, want %v", rate, want)
	}
}

func TestAIMDIncreaseOnNormal(t *testing.T) {
	a := NewAIMD(1_000_000, 100_000, 10_000_000)
	now := time.Duration(0)
	start := a.Rate()
	for i := 0; i < 10; i++ {
		now += 100 * ms
		a.Update(SignalNormal, 950_000*2, now) // plenty of incoming headroom
	}
	if a.Rate() <= start {
		t.Fatalf("normal signal should grow the rate: %v -> %v", start, a.Rate())
	}
}

func TestAIMDHoldOnUnderuse(t *testing.T) {
	a := NewAIMD(1_000_000, 100_000, 10_000_000)
	now := 100 * ms
	a.Update(SignalNormal, 2_000_000, now)
	r := a.Rate()
	now += 100 * ms
	if got := a.Update(SignalUnderuse, 2_000_000, now); got != r {
		t.Fatalf("underuse should hold: %v -> %v", r, got)
	}
}

func TestAIMDBoundedByIncoming(t *testing.T) {
	// Growth stops at 1.5x the measured incoming rate.
	a := NewAIMD(1_200_000, 100_000, 50_000_000)
	now := time.Duration(0)
	for i := 0; i < 50; i++ {
		now += 100 * ms
		a.Update(SignalNormal, 1_000_000, now)
	}
	if a.Rate() > 1.5*1_000_000 {
		t.Fatalf("rate %v should be capped at 1.5x incoming", a.Rate())
	}
}

func TestAIMDCapNeverCutsStandingEstimate(t *testing.T) {
	// The cap is growth-limiting only: a standing estimate above
	// 1.5x incoming is held, not slashed — a transient arrival pause
	// drains the rate meter without any congestion, and cutting the
	// estimate to the momentary trickle would be a spurious collapse.
	// Genuine congestion decreases through the overuse path instead.
	a := NewAIMD(5_000_000, 100_000, 50_000_000)
	now := 100 * ms
	a.Update(SignalNormal, 1_000_000, now)
	if r := a.Rate(); r < 5_000_000 {
		t.Fatalf("normal signal with a drained meter cut the rate: %v", r)
	}
	if r := a.Rate(); r > 5_000_000 {
		t.Fatalf("rate %v grew past the standing estimate while above the cap", r)
	}
	now += 100 * ms
	a.Update(SignalOveruse, 1_000_000, now)
	if r := a.Rate(); r != 0.85*1_000_000 {
		t.Fatalf("overuse should still decrease to 85%% of incoming: got %v", r)
	}
}

func TestAIMDRespectsBounds(t *testing.T) {
	a := NewAIMD(200_000, 150_000, 300_000)
	now := time.Duration(0)
	for i := 0; i < 20; i++ {
		now += 100 * ms
		a.Update(SignalOveruse, 10_000, now)
	}
	if a.Rate() < 150_000 {
		t.Fatalf("rate %v below floor", a.Rate())
	}
	for i := 0; i < 200; i++ {
		now += 100 * ms
		a.Update(SignalNormal, 10_000_000, now)
	}
	if a.Rate() > 300_000 {
		t.Fatalf("rate %v above ceiling", a.Rate())
	}
}

func TestLossBased(t *testing.T) {
	l := NewLossBased(1_000_000, 100_000, 10_000_000)
	l.OnReport(0.20) // heavy loss: 1 - 0.1 = 0.9
	if got := l.Rate(); got != 900_000 {
		t.Fatalf("rate after 20%% loss = %v, want 900000", got)
	}
	l.OnReport(0.05) // between 2% and 10%: hold
	if got := l.Rate(); got != 900_000 {
		t.Fatalf("rate after 5%% loss = %v, want hold at 900000", got)
	}
	l.OnReport(0.0) // probe up 5%
	if got := l.Rate(); got != 945_000 {
		t.Fatalf("rate after 0%% loss = %v, want 945000", got)
	}
}

func TestControllerTakesMin(t *testing.T) {
	c := NewController(2_000_000, 100_000, 10_000_000)
	c.OnREMB(1_200_000)
	if got := c.PacingRate(); got != 1_200_000 {
		t.Fatalf("pacing = %v, want REMB min", got)
	}
	// Loss hammers the sender estimate below REMB.
	for i := 0; i < 10; i++ {
		c.OnReceiverReport(0.5)
	}
	if got := c.PacingRate(); got >= 1_200_000 {
		t.Fatalf("pacing = %v, want loss-based min", got)
	}
}

func TestRateMeter(t *testing.T) {
	m := NewRateMeter(time.Second)
	now := time.Duration(0)
	for i := 0; i < 10; i++ {
		m.Add(now, 12500) // 12500 B per 100 ms = 1 Mbps
		now += 100 * ms
	}
	got := m.BitrateBps(now)
	if got < 900_000 || got > 1_200_000 {
		t.Fatalf("rate = %v, want ~1 Mbps", got)
	}
	// After the window passes with no traffic the rate collapses.
	if got := m.BitrateBps(now + 2*time.Second); got != 0 {
		t.Fatalf("stale rate = %v, want 0", got)
	}
}

func TestPacerPriorityOrder(t *testing.T) {
	p := NewPacer[string](8_000_000)
	p.Push(Item[string]{Class: ClassVideo, Size: 1200, Payload: "v"})
	p.Push(Item[string]{Class: ClassAudio, Size: 160, Payload: "a"})
	p.Push(Item[string]{Class: ClassVideo, Size: 1200, Gain: IFramePacingGain, Payload: "i"})
	p.Push(Item[string]{Class: ClassRTX, Size: 1200, Payload: "r"})
	var order []string
	emit := func(it Item[string]) { order = append(order, it.Payload) }
	p.Drain(time.Second, emit)
	p.Drain(time.Second+10*ms, emit) // second tick pays off the budget deficit
	// Audio first, then retransmissions; video stays FIFO (the I-frame
	// packet does NOT jump ahead of the earlier video packet).
	want := []string{"a", "r", "v", "i"}
	if len(order) != 4 {
		t.Fatalf("drained %d items: %v", len(order), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPacerRateLimits(t *testing.T) {
	p := NewPacer[struct{}](1_000_000) // 125 kB/s
	for i := 0; i < 1000; i++ {
		p.Push(Item[struct{}]{Class: ClassVideo, Size: 1250})
	}
	sent := 0
	now := time.Duration(0)
	p.Drain(now, func(Item[struct{}]) { sent++ })
	// Drive the pacer for one second in 5 ms ticks.
	for i := 0; i < 200; i++ {
		now += 5 * ms
		p.Drain(now, func(Item[struct{}]) { sent++ })
	}
	// 1 Mbps / (1250 B) = 100 packets/s (+ initial burst allowance).
	if sent < 90 || sent > 130 {
		t.Fatalf("sent %d packets in 1s at 1 Mbps, want ~100", sent)
	}
}

func TestPacerIFrameGain(t *testing.T) {
	run := func(gain float64) int {
		p := NewPacer[struct{}](1_000_000)
		for i := 0; i < 1000; i++ {
			p.Push(Item[struct{}]{Class: ClassVideo, Gain: gain, Size: 1250})
		}
		sent := 0
		now := time.Duration(0)
		p.Drain(now, func(Item[struct{}]) { sent++ })
		for i := 0; i < 100; i++ {
			now += 5 * ms
			p.Drain(now, func(Item[struct{}]) { sent++ })
		}
		return sent
	}
	video := run(0)
	iframe := run(IFramePacingGain)
	ratio := float64(iframe) / float64(video)
	if ratio < 1.3 || ratio > 1.7 {
		t.Fatalf("I-frame pacing gain ratio = %v, want ~1.5", ratio)
	}
}

func TestPacerNoIdleBurstBanking(t *testing.T) {
	p := NewPacer[struct{}](8_000_000)
	p.Drain(0, func(Item[struct{}]) {})
	// Idle for a long time, then enqueue a lot: the burst must be capped.
	for i := 0; i < 100; i++ {
		p.Push(Item[struct{}]{Class: ClassVideo, Size: 1200})
	}
	sent := 0
	p.Drain(10*time.Second, func(Item[struct{}]) { sent++ })
	if sent > 15 {
		t.Fatalf("idle pacer released %d packets at once; burst cap failed", sent)
	}
}

func TestPacerQueueDelayAndDrop(t *testing.T) {
	p := NewPacer[struct{}](1_000_000)
	for i := 0; i < 100; i++ {
		p.Push(Item[struct{}]{Class: ClassVideo, Size: 1250})
	}
	// 125000 B at 125000 B/s = 1 s.
	if d := p.QueueDelay(); d < 900*ms || d > 1100*ms {
		t.Fatalf("queue delay = %v, want ~1s", d)
	}
	dropped := p.DropClass(ClassVideo, nil)
	if dropped != 125000 {
		t.Fatalf("dropped %d bytes", dropped)
	}
	if p.QueueBytes() != 0 || p.QueueLen() != 0 {
		t.Fatal("queue not empty after drop")
	}
}

func TestPacerMinRateFloor(t *testing.T) {
	p := NewPacer[struct{}](1_000_000)
	p.SetRate(0)
	if p.Rate() < 10_000 {
		t.Fatalf("rate floor not applied: %v", p.Rate())
	}
}
