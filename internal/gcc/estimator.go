// Package gcc implements the Google Congestion Control algorithm the
// paper's slow path adopts (§5.1, citing Carlucci et al. [13]): a
// delay-based receiver-side controller (trendline estimator + adaptive
// over-use detector + AIMD rate control) combined with a loss-based
// sender-side controller, plus the pacer that executes the resulting rate
// on the fast path with an I-frame pacing gain of 1.5 and audio
// prioritization (§5.2).
package gcc

import (
	"math"
	"time"
)

// Signal is the over-use detector output.
type Signal int

// Detector signals.
const (
	SignalNormal Signal = iota
	SignalOveruse
	SignalUnderuse
)

// String implements fmt.Stringer.
func (s Signal) String() string {
	switch s {
	case SignalNormal:
		return "normal"
	case SignalOveruse:
		return "overuse"
	case SignalUnderuse:
		return "underuse"
	}
	return "unknown"
}

// trendline estimator constants (following the WebRTC implementation).
const (
	trendlineWindow    = 20
	smoothingCoef      = 0.9
	thresholdGain      = 4.0
	overuseTimeTh      = 10 * time.Millisecond
	maxAdaptOffsetMs   = 15.0
	kUp                = 0.0087
	kDown              = 0.039
	initialThresholdMs = 12.5
)

// TrendlineEstimator turns per-packet one-way delay variation samples into
// Overuse/Normal/Underuse signals. Feed it one sample per packet group via
// Update.
type TrendlineEstimator struct {
	history    []trendSample // ring of recent samples
	accumDrift float64
	smoothed   float64
	firstTime  time.Duration
	haveFirst  bool

	threshold    float64 // adaptive |gamma| in ms
	lastUpdate   time.Duration
	overuseStart time.Duration
	inOveruse    bool
	prevTrend    float64
	signal       Signal
}

type trendSample struct {
	t     float64 // arrival time in ms since first sample
	drift float64 // smoothed accumulated delay in ms
}

// NewTrendlineEstimator returns a ready estimator.
func NewTrendlineEstimator() *TrendlineEstimator {
	return &TrendlineEstimator{threshold: initialThresholdMs, signal: SignalNormal}
}

// Signal returns the current detector state.
func (e *TrendlineEstimator) Signal() Signal { return e.signal }

// Update processes one inter-group delay-variation sample: deltaDelay is
// (arrival spacing − send spacing) for the newest packet group, observed
// at arrival time now. It returns the (possibly updated) signal.
func (e *TrendlineEstimator) Update(deltaDelay time.Duration, now time.Duration) Signal {
	if !e.haveFirst {
		e.haveFirst = true
		e.firstTime = now
	}
	dMs := float64(deltaDelay) / float64(time.Millisecond)
	e.accumDrift += dMs
	e.smoothed = smoothingCoef*e.smoothed + (1-smoothingCoef)*e.accumDrift

	e.history = append(e.history, trendSample{
		t:     float64(now-e.firstTime) / float64(time.Millisecond),
		drift: e.smoothed,
	})
	if len(e.history) > trendlineWindow {
		e.history = e.history[1:]
	}
	trend := e.prevTrend
	if len(e.history) >= 2 {
		trend = slope(e.history)
	}
	e.detect(trend, now)
	return e.signal
}

// slope is the least-squares slope of drift over time.
func slope(h []trendSample) float64 {
	n := float64(len(h))
	var sumT, sumD float64
	for _, s := range h {
		sumT += s.t
		sumD += s.drift
	}
	meanT, meanD := sumT/n, sumD/n
	var num, den float64
	for _, s := range h {
		num += (s.t - meanT) * (s.drift - meanD)
		den += (s.t - meanT) * (s.t - meanT)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func (e *TrendlineEstimator) detect(trend float64, now time.Duration) {
	// Scale the trend the way WebRTC does so it is comparable with the
	// threshold in ms.
	modified := math.Min(float64(len(e.history))*trendlineWindow, 60) * trend * thresholdGain

	switch {
	case modified > e.threshold:
		if !e.inOveruse {
			e.inOveruse = true
			e.overuseStart = now
		}
		// Require sustained over-use and an increasing trend before
		// signaling, to filter noise spikes.
		if now-e.overuseStart >= overuseTimeTh && trend >= e.prevTrend {
			e.signal = SignalOveruse
		}
	case modified < -e.threshold:
		e.inOveruse = false
		e.signal = SignalUnderuse
	default:
		e.inOveruse = false
		e.signal = SignalNormal
	}
	e.adaptThreshold(modified, now)
	e.prevTrend = trend
}

func (e *TrendlineEstimator) adaptThreshold(modified float64, now time.Duration) {
	if e.lastUpdate == 0 {
		e.lastUpdate = now
	}
	if math.Abs(modified) > e.threshold+maxAdaptOffsetMs {
		// Ignore spikes far above the threshold (per the algorithm).
		e.lastUpdate = now
		return
	}
	k := kDown
	if math.Abs(modified) > e.threshold {
		k = kUp
	}
	dtMs := math.Min(float64(now-e.lastUpdate)/float64(time.Millisecond), 100)
	e.threshold += k * (math.Abs(modified) - e.threshold) * dtMs
	e.threshold = math.Max(6, math.Min(600, e.threshold))
	e.lastUpdate = now
}

// Threshold exposes the adaptive threshold (for tests and ablations).
func (e *TrendlineEstimator) Threshold() float64 { return e.threshold }

// InterArrival computes per-group delay-variation samples from packet
// timestamps: it compares arrival-time spacing with send-time spacing
// over 5 ms packet groups (burst grouping as in GCC).
type InterArrival struct {
	groupSendFirst time.Duration
	groupSendLast  time.Duration
	groupArrLast   time.Duration
	groupSize      int
	prevSendLast   time.Duration
	prevArrLast    time.Duration
	havePrev       bool
	haveGroup      bool
}

// groupSpan is the send-time window that defines one packet group.
const groupSpan = 5 * time.Millisecond

// Add feeds one packet (send timestamp, arrival timestamp). When a packet
// group completes it returns the delay-variation sample and true.
func (ia *InterArrival) Add(sendTime, arrTime time.Duration) (time.Duration, bool) {
	if !ia.haveGroup {
		ia.startGroup(sendTime, arrTime)
		return 0, false
	}
	if sendTime-ia.groupSendFirst <= groupSpan {
		// Same group: extend.
		if sendTime > ia.groupSendLast {
			ia.groupSendLast = sendTime
		}
		if arrTime > ia.groupArrLast {
			ia.groupArrLast = arrTime
		}
		ia.groupSize++
		return 0, false
	}
	// Group completed; compute the sample against the previous group.
	var sample time.Duration
	ok := false
	if ia.havePrev {
		sendDelta := ia.groupSendLast - ia.prevSendLast
		arrDelta := ia.groupArrLast - ia.prevArrLast
		sample = arrDelta - sendDelta
		ok = true
	}
	ia.prevSendLast = ia.groupSendLast
	ia.prevArrLast = ia.groupArrLast
	ia.havePrev = true
	ia.startGroup(sendTime, arrTime)
	return sample, ok
}

func (ia *InterArrival) startGroup(sendTime, arrTime time.Duration) {
	ia.groupSendFirst = sendTime
	ia.groupSendLast = sendTime
	ia.groupArrLast = arrTime
	ia.groupSize = 1
	ia.haveGroup = true
}
