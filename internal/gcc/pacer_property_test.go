package gcc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestPacerConservationProperty: every pushed item is emitted exactly
// once, classes drain in priority order, FIFO holds within a class, and
// the byte accounting returns to zero.
func TestPacerConservationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	check := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		type tag struct {
			class Class
			seq   int
		}
		p := NewPacer[tag](50e6)
		pushed := 0
		perClassSeq := map[Class]int{}
		lastEmitted := map[Class]int{}
		emittedTotal := 0
		now := time.Duration(0)

		for step := 0; step < 200; step++ {
			if rng.Intn(3) > 0 { // push twice as often as we tick
				class := Class(rng.Intn(int(numClasses)))
				perClassSeq[class]++
				p.Push(Item[tag]{
					Class:   class,
					Size:    100 + rng.Intn(1300),
					Gain:    []float64{0, 1, 1.5, 4}[rng.Intn(4)],
					Payload: tag{class: class, seq: perClassSeq[class]},
				})
				pushed++
			}
			now += time.Duration(rng.Intn(5)+1) * time.Millisecond
			p.Drain(now, func(it Item[tag]) {
				emittedTotal++
				tg := it.Payload
				if tg.seq <= lastEmitted[tg.class] {
					t.Fatalf("FIFO violated in class %d: %d after %d", tg.class, tg.seq, lastEmitted[tg.class])
				}
				lastEmitted[tg.class] = tg.seq
			})
		}
		// Drain to empty.
		for i := 0; i < 1000 && p.QueueLen() > 0; i++ {
			now += 5 * time.Millisecond
			p.Drain(now, func(it Item[tag]) {
				emittedTotal++
				tg := it.Payload
				if tg.seq <= lastEmitted[tg.class] {
					t.Fatalf("FIFO violated in class %d", tg.class)
				}
				lastEmitted[tg.class] = tg.seq
			})
		}
		if emittedTotal != pushed {
			t.Fatalf("conservation violated: pushed %d, emitted %d", pushed, emittedTotal)
		}
		if p.QueueBytes() != 0 {
			t.Fatalf("queue bytes = %d after draining everything", p.QueueBytes())
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20, Rand: r}); err != nil {
		t.Fatal(err)
	}
}
