package gcc

import "time"

// RateMeter measures the received/sent bitrate over a sliding window; the
// AIMD controller multiplies it by 0.85 on over-use ("decrease to 85% of
// the incoming rate").
type RateMeter struct {
	window  time.Duration
	samples []rateSample
	bytes   int64
}

type rateSample struct {
	t time.Duration
	n int
}

// NewRateMeter returns a meter with the given window (500 ms if zero).
func NewRateMeter(window time.Duration) *RateMeter {
	if window <= 0 {
		window = 500 * time.Millisecond
	}
	return &RateMeter{window: window}
}

// Add records n bytes observed at time now.
func (m *RateMeter) Add(now time.Duration, n int) {
	m.samples = append(m.samples, rateSample{t: now, n: n})
	m.bytes += int64(n)
	m.trim(now)
}

func (m *RateMeter) trim(now time.Duration) {
	cut := 0
	for cut < len(m.samples) && now-m.samples[cut].t > m.window {
		m.bytes -= int64(m.samples[cut].n)
		cut++
	}
	if cut > 0 {
		m.samples = m.samples[cut:]
	}
}

// BitrateBps returns the current windowed rate in bits per second.
func (m *RateMeter) BitrateBps(now time.Duration) float64 {
	m.trim(now)
	if len(m.samples) == 0 {
		return 0
	}
	span := m.window
	if got := now - m.samples[0].t; got > 0 && got < span {
		span = got
	}
	if span <= 0 {
		return 0
	}
	return float64(m.bytes*8) / span.Seconds()
}

// AIMD is the delay-based rate controller: multiplicative increase while
// the path is underutilized, additive increase near convergence, and a
// multiplicative decrease to 85% of the measured incoming rate on
// over-use.
type AIMD struct {
	rate        float64 // current estimate, bps
	minRate     float64
	maxRate     float64
	state       aimdState
	lastDecRate float64 // incoming rate at last decrease (convergence ref)
	lastUpdate  time.Duration
	haveUpdate  bool
}

type aimdState int

const (
	stateIncrease aimdState = iota
	stateHold
	stateDecrease
)

// NewAIMD returns a controller starting at startBps bounded to
// [minBps, maxBps].
func NewAIMD(startBps, minBps, maxBps float64) *AIMD {
	return &AIMD{rate: startBps, minRate: minBps, maxRate: maxBps, state: stateIncrease}
}

// Rate returns the current delay-based estimate in bps.
func (a *AIMD) Rate() float64 { return a.rate }

// Update advances the controller state machine with the detector signal,
// the measured incoming bitrate, and the current time; it returns the new
// rate. The state transitions follow RFC draft / Carlucci et al.:
//
//	overuse  → Decrease (always)
//	underuse → Hold (queues draining; don't push yet)
//	normal   → Increase
func (a *AIMD) Update(sig Signal, incomingBps float64, now time.Duration) float64 {
	if !a.haveUpdate {
		a.haveUpdate = true
		a.lastUpdate = now
	}
	dt := (now - a.lastUpdate).Seconds()
	if dt > 1 {
		dt = 1
	}
	a.lastUpdate = now

	before := a.rate

	switch sig {
	case SignalOveruse:
		a.state = stateDecrease
	case SignalUnderuse:
		a.state = stateHold
	case SignalNormal:
		// From Hold or Decrease, a normal signal resumes increasing.
		a.state = stateIncrease
	}

	switch a.state {
	case stateDecrease:
		target := 0.85 * incomingBps
		if target <= 0 || target > a.rate {
			target = 0.85 * a.rate
		}
		a.rate = target
		a.lastDecRate = incomingBps
		// After decreasing we hold until the next signal.
		a.state = stateHold
	case stateIncrease:
		nearConvergence := a.lastDecRate > 0 &&
			incomingBps > 0.95*a.lastDecRate && incomingBps < 1.5*a.lastDecRate
		if nearConvergence {
			// Additive: about one packet per response interval.
			a.rate += 8 * 1200 * dt * 10 // ~96 kbps per second
		} else {
			// Multiplicative: 8% per second.
			a.rate *= 1 + 0.08*dt
		}
	case stateHold:
		// no change
	}

	// The cap on running ahead of what is actually arriving is
	// growth-limiting only: it stops the increase path from outrunning
	// measured throughput but never cuts a standing estimate below its
	// pre-update value. A transient arrival pause (a path splice, a
	// scheduling lull) drains the rate meter, and clamping an established
	// estimate to 1.5x that momentary trickle would slash it with no
	// congestion signal at all; genuine congestion cuts the rate through
	// the overuse decrease (85% of incoming) instead. The cap is skipped
	// entirely below 2x the floor: a sender throttled by this very
	// estimate can starve the meter, and a cap fed by its own output
	// would pin the rate at the floor forever.
	if cap := 1.5 * incomingBps; incomingBps > 2*a.minRate && a.rate > cap {
		if before > cap {
			if a.rate > before {
				a.rate = before
			}
		} else {
			a.rate = cap
		}
	}
	if a.rate < a.minRate {
		a.rate = a.minRate
	}
	if a.rate > a.maxRate {
		a.rate = a.maxRate
	}
	return a.rate
}

// LossBased is the sender-side loss controller: it reduces the rate when
// receiver reports show heavy loss and probes upward when loss is rare.
type LossBased struct {
	rate    float64
	minRate float64
	maxRate float64
}

// NewLossBased returns a controller starting at startBps.
func NewLossBased(startBps, minBps, maxBps float64) *LossBased {
	return &LossBased{rate: startBps, minRate: minBps, maxRate: maxBps}
}

// Rate returns the current loss-based estimate in bps.
func (l *LossBased) Rate() float64 { return l.rate }

// OnReport applies one receiver report's fraction-lost (in [0,1]):
//
//	loss > 10% → rate *= (1 − 0.5·loss)
//	loss < 2%  → rate *= 1.05
//	otherwise  → hold
func (l *LossBased) OnReport(fractionLost float64) float64 {
	switch {
	case fractionLost > 0.10:
		l.rate *= 1 - 0.5*fractionLost
	case fractionLost < 0.02:
		l.rate *= 1.05
	}
	if l.rate < l.minRate {
		l.rate = l.minRate
	}
	if l.rate > l.maxRate {
		l.rate = l.maxRate
	}
	return l.rate
}

// Controller combines the delay-based (receiver, via REMB) and loss-based
// (sender, via RR) estimates: the pacing rate is their minimum (§5.1:
// "the sender rate control decides the pacing rate based on both the
// delay-based receiver-side control and the loss-based sender-side
// control").
type Controller struct {
	Loss       *LossBased
	remoteREMB float64
}

// NewController returns a sender-side controller.
func NewController(startBps, minBps, maxBps float64) *Controller {
	return &Controller{Loss: NewLossBased(startBps, minBps, maxBps)}
}

// OnREMB records the receiver's delay-based estimate.
func (c *Controller) OnREMB(bps float64) { c.remoteREMB = bps }

// OnReceiverReport applies a loss report.
func (c *Controller) OnReceiverReport(fractionLost float64) {
	c.Loss.OnReport(fractionLost)
}

// PacingRate returns the rate the pacer should use.
func (c *Controller) PacingRate() float64 {
	r := c.Loss.Rate()
	if c.remoteREMB > 0 && c.remoteREMB < r {
		r = c.remoteREMB
	}
	return r
}
