package gop

import (
	"testing"

	"livenet/internal/media"
	"livenet/internal/rtp"
	"livenet/internal/sim"
)

// makeStream packetizes n frames from a fresh encoder.
func makeStream(t *testing.T, n int) []rtp.Packet {
	t.Helper()
	rng := sim.NewSource(1).Stream("gop")
	enc := media.NewEncoder(media.DefaultEncoderConfig(1_500_000), rng)
	p := media.NewPacketizer(5)
	var pkts []rtp.Packet
	for i := 0; i < n; i++ {
		pkts = p.Packetize(enc.NextFrame(), 0, pkts)
	}
	return pkts
}

func TestAssemblerCompletesFrames(t *testing.T) {
	pkts := makeStream(t, 50) // one full GoP
	a := NewAssembler(0)
	var frames []AssembledFrame
	a.OnFrame = func(f AssembledFrame) { frames = append(frames, f) }
	for i := range pkts {
		a.Push(&pkts[i])
	}
	if len(frames) != 50 {
		t.Fatalf("assembled %d frames, want 50", len(frames))
	}
	if frames[0].Header.Type != media.FrameI {
		t.Fatalf("first frame should be I, got %v", frames[0].Header.Type)
	}
	if a.FramesCompleted() != 50 || a.FramesDropped() != 0 {
		t.Fatalf("counters: completed=%d dropped=%d", a.FramesCompleted(), a.FramesDropped())
	}
}

func TestAssemblerIgnoresDuplicates(t *testing.T) {
	pkts := makeStream(t, 10)
	a := NewAssembler(0)
	count := 0
	a.OnFrame = func(AssembledFrame) { count++ }
	for i := range pkts {
		a.Push(&pkts[i])
		a.Push(&pkts[i]) // duplicate delivery (fast path + retransmission)
	}
	if count != 10 {
		t.Fatalf("duplicates inflated frame count: %d", count)
	}
}

func TestAssemblerToleratesReordering(t *testing.T) {
	pkts := makeStream(t, 5)
	// Reverse within the stream: frames interleave arbitrarily.
	a := NewAssembler(0)
	count := 0
	a.OnFrame = func(AssembledFrame) { count++ }
	for i := len(pkts) - 1; i >= 0; i-- {
		a.Push(&pkts[i])
	}
	if count != 5 {
		t.Fatalf("reordered delivery assembled %d frames, want 5", count)
	}
}

func TestAssemblerEvictsStaleIncomplete(t *testing.T) {
	pkts := makeStream(t, 64)
	a := NewAssembler(8)
	completed := 0
	a.OnFrame = func(AssembledFrame) { completed++ }
	// Drop the first packet of every even-numbered frame: those frames can
	// never complete and must eventually be evicted, while odd frames
	// complete normally.
	seenFrame := map[uint32]bool{}
	for i := range pkts {
		var h media.FrameHeader
		if err := h.Unmarshal(pkts[i].Payload); err != nil {
			t.Fatal(err)
		}
		if h.FrameID%2 == 0 && !seenFrame[h.FrameID] {
			seenFrame[h.FrameID] = true
			continue // drop first packet
		}
		seenFrame[h.FrameID] = true
		a.Push(&pkts[i])
	}
	if a.FramesDropped() == 0 {
		t.Fatal("expected evictions of never-completable frames")
	}
	// Undamaged frames still complete.
	if completed == 0 {
		t.Fatal("undamaged frames should still complete")
	}
}

func TestAssemblerIgnoresGarbage(t *testing.T) {
	a := NewAssembler(0)
	pkt := rtp.Packet{Payload: []byte{1, 2}}
	a.Push(&pkt) // too short for a frame header; must not panic or count
	if a.FramesCompleted() != 0 {
		t.Fatal("garbage counted as frame")
	}
}

func insertFrame(c *Cache, h media.FrameHeader, seq uint16, size int) {
	data := make([]byte, size)
	c.Insert(h, seq, data)
}

func TestCacheStartupPackets(t *testing.T) {
	c := NewCache(3, 0)
	// GoP 0: I + 2 P frames.
	insertFrame(c, media.FrameHeader{Type: media.FrameI, FrameID: 0, GopID: 0, PktCount: 1}, 0, 1000)
	insertFrame(c, media.FrameHeader{Type: media.FrameP, FrameID: 1, GopID: 0, PktCount: 1}, 1, 300)
	insertFrame(c, media.FrameHeader{Type: media.FrameP, FrameID: 2, GopID: 0, PktCount: 1}, 2, 300)
	got := c.StartupPackets()
	if len(got) != 3 {
		t.Fatalf("startup packets = %d, want 3", len(got))
	}
	if got[0].Type != media.FrameI {
		t.Fatal("startup must begin at an I frame")
	}
	// GoP 1 arrives: startup should now serve the newer GoP.
	insertFrame(c, media.FrameHeader{Type: media.FrameI, FrameID: 3, GopID: 1, PktCount: 1}, 3, 1000)
	got = c.StartupPackets()
	if len(got) != 1 || got[0].FrameID != 3 {
		t.Fatalf("should serve newest I-led GoP, got %d packets (first frame %d)", len(got), got[0].FrameID)
	}
}

func TestCacheNoIFrameNoStartup(t *testing.T) {
	c := NewCache(3, 0)
	insertFrame(c, media.FrameHeader{Type: media.FrameP, FrameID: 1, GopID: 0, PktCount: 1}, 0, 100)
	if c.HasRecentGoP() {
		t.Fatal("cache without I frame cannot serve startup")
	}
	if c.StartupPackets() != nil {
		t.Fatal("StartupPackets should be nil without an I frame")
	}
}

func TestCacheEvictsByGoPCount(t *testing.T) {
	c := NewCache(2, 0)
	for gop := uint32(0); gop < 5; gop++ {
		insertFrame(c, media.FrameHeader{Type: media.FrameI, FrameID: gop * 10, GopID: gop, PktCount: 1}, uint16(gop), 500)
	}
	if c.GoPCount() != 2 {
		t.Fatalf("cache holds %d GoPs, want 2", c.GoPCount())
	}
	got := c.StartupPackets()
	if got[0].FrameID != 40 {
		t.Fatalf("latest GoP should be 4, got frame %d", got[0].FrameID)
	}
}

func TestCacheEvictsByBytes(t *testing.T) {
	c := NewCache(100, 3000)
	for gop := uint32(0); gop < 10; gop++ {
		insertFrame(c, media.FrameHeader{Type: media.FrameI, FrameID: gop, GopID: gop, PktCount: 1}, uint16(gop), 1000)
	}
	if c.Bytes() > 3000+1000 { // one GoP of slack while the newest fills
		t.Fatalf("cache bytes = %d, budget 3000", c.Bytes())
	}
	if c.GoPCount() > 4 {
		t.Fatalf("too many GoPs retained: %d", c.GoPCount())
	}
}

func TestCacheKeepsNewestUnderPressure(t *testing.T) {
	// Even if one GoP alone exceeds the budget it must be retained
	// (evict() never drops the last GoP).
	c := NewCache(3, 100)
	insertFrame(c, media.FrameHeader{Type: media.FrameI, FrameID: 0, GopID: 0, PktCount: 1}, 0, 5000)
	if c.GoPCount() != 1 || !c.HasRecentGoP() {
		t.Fatal("oversized GoP should still be cached")
	}
}

func TestCacheIgnoresStaleGoPs(t *testing.T) {
	c := NewCache(3, 0)
	insertFrame(c, media.FrameHeader{Type: media.FrameI, FrameID: 10, GopID: 5, PktCount: 1}, 0, 100)
	insertFrame(c, media.FrameHeader{Type: media.FrameP, FrameID: 3, GopID: 2, PktCount: 1}, 1, 100) // stale
	if c.GoPCount() != 1 {
		t.Fatalf("stale GoP was admitted: %d GoPs", c.GoPCount())
	}
}

func TestCacheCopiesData(t *testing.T) {
	c := NewCache(3, 0)
	data := []byte{1, 2, 3}
	c.Insert(media.FrameHeader{Type: media.FrameI, GopID: 0, PktCount: 1}, 0, data)
	data[0] = 99
	got := c.StartupPackets()
	if got[0].Data[0] != 1 {
		t.Fatal("cache must copy packet data")
	}
}

func TestEndToEndPacketizeCacheReplay(t *testing.T) {
	// Full pipeline: encoder -> packetizer -> cache insert -> replay ->
	// assembler on the replayed bytes.
	rng := sim.NewSource(9).Stream("e2e")
	enc := media.NewEncoder(media.DefaultEncoderConfig(1_000_000), rng)
	pz := media.NewPacketizer(77)
	c := NewCache(2, 0)
	for i := 0; i < 100; i++ { // two GoPs
		for _, pkt := range pz.Packetize(enc.NextFrame(), 0, nil) {
			var h media.FrameHeader
			if err := h.Unmarshal(pkt.Payload); err != nil {
				t.Fatal(err)
			}
			c.Insert(h, pkt.SequenceNumber, pkt.Marshal(nil))
		}
	}
	replay := c.StartupPackets()
	if len(replay) == 0 {
		t.Fatal("no startup GoP cached")
	}
	a := NewAssembler(0)
	frames := 0
	sawI := false
	a.OnFrame = func(f AssembledFrame) {
		frames++
		if f.Header.Type == media.FrameI {
			sawI = true
		}
	}
	var pkt rtp.Packet
	for _, cp := range replay {
		if err := pkt.Unmarshal(cp.Data); err != nil {
			t.Fatal(err)
		}
		a.Push(&pkt)
	}
	if frames != 50 {
		t.Fatalf("replayed GoP assembled %d frames, want 50", frames)
	}
	if !sawI {
		t.Fatal("replayed GoP lacks its I frame")
	}
}
