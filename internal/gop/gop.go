// Package gop implements the Framing Control module and the GoP cache of
// LiveNet's slow path (§5.1): ordered RTP packets are decoded back into
// frames and grouped into GoPs (Groups of Pictures), and the most recent
// GoPs are cached on every node so subsequent viewers of the same stream
// can start playback immediately from an I frame — the mechanism behind
// the paper's fast-startup results (Figure 9).
package gop

import (
	"livenet/internal/media"
	"livenet/internal/rtp"
)

// AssembledFrame is one fully received frame.
type AssembledFrame struct {
	Header media.FrameHeader
	Size   int // payload bytes across all packets (excluding headers)
}

// Assembler reconstructs frames from a stream of RTP packets (the slow
// path feeds it packets in order after loss recovery; mild reordering is
// tolerated). Complete frames are reported through OnFrame.
type Assembler struct {
	// OnFrame, if set, is called once per completed frame in completion
	// order.
	OnFrame func(AssembledFrame)

	pending map[uint32]*pendingFrame
	// completedHi tracks the highest completed frame ID for GC.
	maxPending int
	// free recycles pendingFrame structs (and their got maps): a completed
	// or evicted frame returns here and the next frame reuses it, so
	// steady-state assembly allocates nothing per frame.
	free []*pendingFrame

	framesCompleted uint64
	framesDropped   uint64
}

type pendingFrame struct {
	header   media.FrameHeader
	got      map[uint16]bool
	size     int
	firstIDs uint32
}

// NewAssembler returns an assembler that keeps at most maxPending
// incomplete frames before dropping the oldest (a frame that can never
// complete, e.g. unrecovered loss, must not pin memory).
func NewAssembler(maxPending int) *Assembler {
	if maxPending <= 0 {
		maxPending = 32
	}
	return &Assembler{
		pending:    make(map[uint32]*pendingFrame),
		maxPending: maxPending,
	}
}

// FramesCompleted returns the number of frames fully assembled.
func (a *Assembler) FramesCompleted() uint64 { return a.framesCompleted }

// FramesDropped returns the number of incomplete frames evicted.
func (a *Assembler) FramesDropped() uint64 { return a.framesDropped }

// Push feeds one RTP packet. Packets that do not carry a parseable frame
// header are ignored.
func (a *Assembler) Push(pkt *rtp.Packet) {
	var h media.FrameHeader
	if err := h.Unmarshal(pkt.Payload); err != nil {
		return
	}
	pf, ok := a.pending[h.FrameID]
	if !ok {
		if len(a.pending) >= a.maxPending {
			a.evictOldest()
		}
		pf = a.getFrame(h)
		a.pending[h.FrameID] = pf
	}
	if pf.got[h.PktIdx] {
		return // duplicate (e.g. both fast path and a retransmission)
	}
	pf.got[h.PktIdx] = true
	pf.size += len(pkt.Payload) - media.FrameHeaderLen
	if len(pf.got) == int(h.PktCount) {
		delete(a.pending, h.FrameID)
		a.framesCompleted++
		hdr, size := pf.header, pf.size
		a.putFrame(pf)
		if a.OnFrame != nil {
			a.OnFrame(AssembledFrame{Header: hdr, Size: size})
		}
	}
}

// getFrame takes a recycled pendingFrame (or allocates the pool's first).
func (a *Assembler) getFrame(h media.FrameHeader) *pendingFrame {
	if n := len(a.free); n > 0 {
		pf := a.free[n-1]
		a.free = a.free[:n-1]
		pf.header = h
		pf.size = 0
		clear(pf.got)
		return pf
	}
	return &pendingFrame{header: h, got: make(map[uint16]bool, h.PktCount)}
}

// putFrame returns a finished (completed or evicted) frame to the pool.
func (a *Assembler) putFrame(pf *pendingFrame) {
	if len(a.free) < 64 {
		a.free = append(a.free, pf)
	}
}

func (a *Assembler) evictOldest() {
	var oldest uint32
	first := true
	for id := range a.pending {
		if first || id < oldest {
			oldest = id
			first = false
		}
	}
	if !first {
		a.putFrame(a.pending[oldest])
		delete(a.pending, oldest)
		a.framesDropped++
	}
}

// CachedPacket is one RTP packet retained in the GoP cache, stored in
// marshaled form so it can be replayed to new subscribers byte-for-byte.
type CachedPacket struct {
	SeqNum  uint16
	FrameID uint32
	Type    media.FrameType
	Data    []byte
}

type cachedGoP struct {
	id      uint32
	packets []CachedPacket
	bytes   int
	hasI    bool
}

// Cache is the per-stream GoP cache. It keeps the most recent GoPs up to
// a GoP-count and byte budget, evicting oldest first. Evicted GoPs
// return their packet storage to internal free lists, so a cache in
// steady rotation (one GoP in, one GoP out) stops allocating entirely —
// the fast path's alloc budget depends on it.
type Cache struct {
	maxGoPs  int
	maxBytes int
	gops     []*cachedGoP
	bytes    int

	freeData [][]byte
	freeGops []*cachedGoP
}

// NewCache returns a cache bounded by maxGoPs GoPs and maxBytes bytes
// (zero means a default of 3 GoPs / 16 MiB, enough for a couple of
// seconds of 720p).
func NewCache(maxGoPs, maxBytes int) *Cache {
	if maxGoPs <= 0 {
		maxGoPs = 3
	}
	if maxBytes <= 0 {
		maxBytes = 16 << 20
	}
	return &Cache{maxGoPs: maxGoPs, maxBytes: maxBytes}
}

// Insert stores one packet. data must be the marshaled RTP packet; the
// cache copies it (into recycled storage when an evicted GoP left some).
// Packets must arrive in decode order per GoP (the slow path guarantees
// this). Inserting may recycle storage that StartupPackets previously
// returned — consume replay slices before the next Insert can run.
func (c *Cache) Insert(h media.FrameHeader, seq uint16, data []byte) {
	var g *cachedGoP
	if n := len(c.gops); n > 0 && c.gops[n-1].id == h.GopID {
		g = c.gops[n-1]
	} else if n > 0 && h.GopID < c.gops[n-1].id {
		return // stale packet from an already-rotated GoP
	} else {
		if fn := len(c.freeGops); fn > 0 {
			g = c.freeGops[fn-1]
			c.freeGops = c.freeGops[:fn-1]
			*g = cachedGoP{id: h.GopID, packets: g.packets[:0]}
		} else {
			g = &cachedGoP{id: h.GopID}
		}
		c.gops = append(c.gops, g)
		c.evict()
	}
	cp := CachedPacket{
		SeqNum:  seq,
		FrameID: h.FrameID,
		Type:    h.Type,
		Data:    c.getData(data),
	}
	g.packets = append(g.packets, cp)
	g.bytes += len(data)
	c.bytes += len(data)
	if h.Type == media.FrameI {
		g.hasI = true
	}
	c.evict()
}

func (c *Cache) getData(data []byte) []byte {
	if n := len(c.freeData); n > 0 {
		b := c.freeData[n-1]
		c.freeData = c.freeData[:n-1]
		return append(b[:0], data...)
	}
	return append([]byte(nil), data...)
}

func (c *Cache) evict() {
	for (len(c.gops) > c.maxGoPs || c.bytes > c.maxBytes) && len(c.gops) > 1 {
		g := c.gops[0]
		c.bytes -= g.bytes
		for i := range g.packets {
			if len(c.freeData) < 256 {
				c.freeData = append(c.freeData, g.packets[i].Data)
			}
			g.packets[i].Data = nil
		}
		if len(c.freeGops) < 4 {
			c.freeGops = append(c.freeGops, g)
		}
		copy(c.gops, c.gops[1:])
		c.gops[len(c.gops)-1] = nil
		c.gops = c.gops[:len(c.gops)-1]
	}
}

// GoPCount returns the number of cached GoPs.
func (c *Cache) GoPCount() int { return len(c.gops) }

// Bytes returns the cached byte total.
func (c *Cache) Bytes() int { return c.bytes }

// StartupPackets returns the packets a new viewer should be primed with:
// the most recent cached GoP that begins with an I frame (so decode can
// start immediately), or nil if no such GoP is cached yet. The returned
// slices alias cache storage; callers must not modify them, and must
// consume them before the next Insert (which may recycle the storage of
// a GoP it evicts).
func (c *Cache) StartupPackets() []CachedPacket {
	for i := len(c.gops) - 1; i >= 0; i-- {
		if c.gops[i].hasI {
			return c.gops[i].packets
		}
	}
	return nil
}

// HasRecentGoP reports whether a startup-capable GoP is cached — the
// "recent video frames cached" condition in Algorithm 1 line 1.
func (c *Cache) HasRecentGoP() bool { return c.StartupPackets() != nil }
