package brainfed

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"livenet/internal/brain"
	"livenet/internal/geo"
	"livenet/internal/sim"
	"livenet/internal/telemetry"
)

// testWorld builds a small multi-region world plus its quiet-topology
// adjacency: full mesh within each region, and cross-region links only
// between gateway pairs — the link discipline under which shard-local
// stitching is provably equivalent to monolithic routing (every
// cross-region path must enter the destination region at a gateway).
func testWorld(t *testing.T, n int) (*geo.World, [][2]int) {
	t.Helper()
	src := sim.NewSource(11)
	cfg := geo.DefaultConfig()
	cfg.NumSites = n
	w := geo.Build(cfg, src.Stream("geo"))
	if len(w.Regions()) < 2 {
		t.Fatalf("world has %d regions; need >= 2", len(w.Regions()))
	}
	gws := w.RegionGateways()
	isGW := make(map[int]bool)
	for _, g := range gws {
		for _, id := range g {
			isGW[id] = true
		}
	}
	var links [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameRegion := w.Sites[i].Region == w.Sites[j].Region
			if sameRegion || (isGW[i] && isGW[j]) {
				links = append(links, [2]int{i, j})
			}
		}
	}
	return w, links
}

// reportAll feeds the identical quiet measurements to any number of
// report sinks (the monolith and the federation in the equivalence
// test), both link directions per adjacency pair. The reported RTTs are
// pure great-circle propagation (a metric), with uniform loss/util: on
// a metric topology a path that crosses a region boundary twice is
// strictly dominated, which is exactly the "quiet topology" premise
// under which stitching provably matches the monolith. (Under live
// transit penalties the monolith can exploit third-region detours a
// two-segment stitch cannot; that gap is the price of sharding, not a
// bug, and the chaos/cluster tests cover the live regime.)
type reportSink interface {
	ReportLink(from, to int, rtt time.Duration, loss, util float64)
}

func metricRTT(w *geo.World, i, j int) time.Duration {
	const earthRadiusKm = 6371.0
	a, b := w.Sites[i], w.Sites[j]
	la1, lo1 := a.Lat*math.Pi/180, a.Lon*math.Pi/180
	la2, lo2 := b.Lat*math.Pi/180, b.Lon*math.Pi/180
	h := math.Sin((la2-la1)/2)*math.Sin((la2-la1)/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin((lo2-lo1)/2)*math.Sin((lo2-lo1)/2)
	km := 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
	return time.Duration((km/200.0 + 1.0) * float64(time.Millisecond))
}

func reportAll(w *geo.World, links [][2]int, sinks ...reportSink) {
	for _, l := range links {
		i, j := l[0], l[1]
		rtt := metricRTT(w, i, j)
		for _, s := range sinks {
			s.ReportLink(i, j, rtt, 0.0005, 0.2)
			s.ReportLink(j, i, rtt, 0.0005, 0.2)
		}
	}
}

func pathEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFederationMatchesMonolith is the shard ≡ monolith equivalence
// proof the issue asks for: on a quiet topology whose cross-region
// links terminate only at gateways, the federation's selected path for
// every producer/consumer pair is identical to the monolithic Brain's.
func TestFederationMatchesMonolith(t *testing.T) {
	const n = 36
	w, links := testWorld(t, n)
	part := ByRegion(w, 0)

	var allGW []int
	for s := 0; s < part.Shards(); s++ {
		allGW = append(allGW, part.Gateways(s)...)
	}
	// Generous hop bound on both sides so the hop filter never makes
	// the two systems diverge on which candidate survives.
	bcfg := brain.Config{N: n, MaxHops: 8, LastResort: allGW}
	mono := brain.New(bcfg)
	defer mono.Close()
	fed := New(Config{Brain: bcfg, Partition: part, MaxStitch: 16})
	defer fed.Close()

	reportAll(w, links, mono, fed)

	mismatches := 0
	for p := 0; p < n; p++ {
		for c := 0; c < n; c++ {
			if p == c {
				continue
			}
			mp := mono.LookupByProducer(p, c)
			fp := fed.LookupByProducer(p, c)
			if len(mp) == 0 || len(fp) == 0 {
				t.Fatalf("pair %d->%d: monolith %d paths, federation %d paths", p, c, len(mp), len(fp))
			}
			if !pathEq(mp[0], fp[0]) {
				mismatches++
				if mismatches <= 5 {
					t.Errorf("pair %d->%d: monolith selected %v, federation selected %v", p, c, mp[0], fp[0])
				}
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d of %d pairs diverged", mismatches, n*(n-1))
	}
}

func TestPartitionByRegion(t *testing.T) {
	w, _ := testWorld(t, 36)
	p := ByRegion(w, 0)
	if p.Shards() != len(w.Regions()) {
		t.Fatalf("shards = %d, want one per region (%d)", p.Shards(), len(w.Regions()))
	}
	covered := 0
	for s := 0; s < p.Shards(); s++ {
		if len(p.Gateways(s)) == 0 {
			t.Fatalf("shard %d (%s) has no gateways", s, p.Names[s])
		}
		for _, id := range p.Nodes(s) {
			if p.ShardOf(id) != s {
				t.Fatalf("node %d listed in shard %d but ShardOf says %d", id, s, p.ShardOf(id))
			}
			if w.Sites[id].Region != p.Names[s] {
				t.Fatalf("node %d region %s assigned to shard %s", id, w.Sites[id].Region, p.Names[s])
			}
			covered++
		}
		for _, g := range p.Gateways(s) {
			if p.ShardOf(g) != s {
				t.Fatalf("gateway %d of shard %d owned by shard %d", g, s, p.ShardOf(g))
			}
		}
	}
	if covered != len(w.Sites) {
		t.Fatalf("covered %d nodes, want %d", covered, len(w.Sites))
	}

	// A reduced shard count merges the tail regions into one REST shard.
	if len(w.Regions()) > 2 {
		k := 2
		pm := ByRegion(w, k)
		if pm.Shards() != k {
			t.Fatalf("ByRegion(k=%d) gave %d shards", k, pm.Shards())
		}
		if pm.Names[k-1] != "REST" {
			t.Fatalf("merged shard named %q, want REST", pm.Names[k-1])
		}
		total := 0
		for s := 0; s < k; s++ {
			total += len(pm.Nodes(s))
		}
		if total != len(w.Sites) {
			t.Fatalf("merged partition covers %d nodes, want %d", total, len(w.Sites))
		}
	}
}

func TestPartitionContiguous(t *testing.T) {
	p := Contiguous(10, 3, []int{4, 9})
	if p.Shards() != 3 {
		t.Fatalf("shards = %d, want 3", p.Shards())
	}
	for id := 0; id < 10; id++ {
		s := p.ShardOf(id)
		if s < 0 || s >= 3 {
			t.Fatalf("node %d in shard %d", id, s)
		}
	}
	// Block 1 spans [3,6) and contains reserved relay 4; block 0 has no
	// reserved relay, so it gates through its first node.
	if g := p.Gateways(1); len(g) != 1 || g[0] != 4 {
		t.Fatalf("block 1 gateways = %v, want [4]", g)
	}
	if g := p.Gateways(0); len(g) != 1 || g[0] != 0 {
		t.Fatalf("block 0 gateways = %v, want [0]", g)
	}
}

func TestStitchBoundedByMaxStitch(t *testing.T) {
	const n = 36
	w, links := testWorld(t, n)
	part := ByRegion(w, 0)
	reg := telemetry.NewRegistry()
	fed := New(Config{Brain: brain.Config{N: n, MaxHops: 8}, Partition: part, MaxStitch: 2, Telemetry: reg})
	defer fed.Close()
	reportAll(w, links, fed)

	// One cross-shard lookup may evaluate at most MaxStitch candidates.
	var p, c int = -1, -1
	for id := 0; id < n && c < 0; id++ {
		if p < 0 {
			p = id
			continue
		}
		if part.ShardOf(id) != part.ShardOf(p) {
			c = id
		}
	}
	snapBefore := reg.Snapshot()
	if paths := fed.LookupByProducer(p, c); len(paths) == 0 {
		t.Fatalf("no stitched path for %d->%d", p, c)
	}
	snapAfter := reg.Snapshot()
	evaluated := snapAfter.Counters["brainfed.stitch_candidates"] - snapBefore.Counters["brainfed.stitch_candidates"]
	if evaluated == 0 || evaluated > 2 {
		t.Fatalf("stitch evaluated %d candidates, want 1..2 (MaxStitch)", evaluated)
	}
	if got := snapAfter.Counters["brainfed.lookups_cross"]; got == 0 {
		t.Fatalf("brainfed.lookups_cross not counted")
	}
}

func TestFallbackLadder(t *testing.T) {
	const n = 36
	w, links := testWorld(t, n)
	part := ByRegion(w, 0)
	reg := telemetry.NewRegistry()
	fed := New(Config{Brain: brain.Config{N: n, MaxHops: 8}, Partition: part, MaxStitch: 16, Telemetry: reg})
	defer fed.Close()
	reportAll(w, links, fed)

	// Pick a producer in shard 0 and consumers in another shard: one
	// pair warmed before the partition, one not.
	producer := part.Nodes(0)[0]
	foreign := -1
	for s := 1; s < part.Shards(); s++ {
		if len(part.Nodes(s)) >= 2 {
			foreign = s
			break
		}
	}
	if foreign < 0 {
		t.Skip("no foreign shard with 2+ nodes")
	}
	warmed, cold := part.Nodes(foreign)[0], part.Nodes(foreign)[1]

	fed.RegisterStream(42, producer)
	warmPaths, err := fed.Lookup(42, warmed)
	if err != nil || len(warmPaths) == 0 {
		t.Fatalf("warm lookup failed: %v (%d paths)", err, len(warmPaths))
	}

	// Partition the destination shard. Rung 1: the warmed pair serves
	// its cached stitch byte-for-byte.
	fed.SetShardDown(foreign, true)
	got, err := fed.Lookup(42, warmed)
	if err != nil {
		t.Fatalf("cached fallback errored: %v", err)
	}
	if !pathEq(got[0], warmPaths[0]) {
		t.Fatalf("cached fallback served %v, want cached %v", got[0], warmPaths[0])
	}

	// Rung 2: the cold pair gets a degraded shard-local splice that
	// still ends at the consumer and routes through a gateway.
	coldPaths, err := fed.Lookup(42, cold)
	if err != nil || len(coldPaths) == 0 {
		t.Fatalf("degraded fallback failed: %v (%d paths)", err, len(coldPaths))
	}
	cp := coldPaths[0]
	if cp[0] != producer || cp[len(cp)-1] != cold {
		t.Fatalf("degraded path %v does not run %d->%d", cp, producer, cold)
	}

	// Rung 3: with the producer's shard down too, nothing can be
	// decided and the lookup reports the shard unreachable.
	fed.SetShardDown(0, true)
	if _, err := fed.Lookup(42, cold); !errors.Is(err, ErrShardUnreachable) {
		t.Fatalf("both-shards-down lookup err = %v, want ErrShardUnreachable", err)
	}

	// Heal and the live stitch path is served again.
	fed.SetShardDown(0, false)
	fed.SetShardDown(foreign, false)
	if paths, err := fed.Lookup(42, cold); err != nil || len(paths) == 0 {
		t.Fatalf("post-heal lookup failed: %v", err)
	}

	snap := reg.Snapshot()
	for _, name := range []string{"brainfed.fallback_cached", "brainfed.fallback_local", "brainfed.fallback_failed"} {
		if snap.Counters[name] == 0 {
			t.Errorf("%s = 0, want > 0", name)
		}
	}
}

func TestReportFanInRoutesToOwner(t *testing.T) {
	const n = 36
	w, links := testWorld(t, n)
	part := ByRegion(w, 0)
	fed := New(Config{Brain: brain.Config{N: n}, Partition: part})
	defer fed.Close()
	reportAll(w, links, fed)

	fanIn := fed.ReportFanIn()
	var total uint64
	for s, c := range fanIn {
		if c == 0 {
			t.Errorf("shard %d (%s) ingested no reports", s, part.Names[s])
		}
		total += c
	}
	// Every adjacency pair reports both directions, each to exactly one
	// shard (the probing node's owner).
	if want := uint64(2 * len(links)); total != want {
		t.Fatalf("total fan-in %d, want %d", total, want)
	}

	// Node loads route to the owner as well, and only the owner ages
	// the node: a foreign shard never marks it down.
	fed.ReportNodeLoad(0, 0.5)
	owner := part.ShardOf(0)
	for s := 0; s < part.Shards(); s++ {
		down := fed.Shard(s).View().NodeDown(0)
		if down {
			t.Fatalf("shard %d marked node 0 down after a plain load report", s)
		}
		_ = owner
	}
}

func TestFederationEpochAndPrefetch(t *testing.T) {
	const n = 36
	w, links := testWorld(t, n)
	part := ByRegion(w, 0)
	fed := New(Config{Brain: brain.Config{N: n, MaxHops: 8}, Partition: part, MaxStitch: 16})
	defer fed.Close()
	reportAll(w, links, fed)

	fed.RegisterStream(7, 0)
	warm, err := fed.PrefetchPaths(7)
	if err != nil {
		t.Fatalf("PrefetchPaths: %v", err)
	}
	if len(warm) < n-1 {
		t.Fatalf("prefetch warmed %d consumers, want %d", len(warm), n-1)
	}
	fed.AdvanceEpoch()
	times := fed.EpochTimes()
	if len(times) != part.Shards() {
		t.Fatalf("EpochTimes len %d, want %d", len(times), part.Shards())
	}
	m := fed.Metrics()
	if m.StreamsActive != 1 {
		t.Fatalf("StreamsActive = %d, want 1", m.StreamsActive)
	}
	gv := fed.GlobalView()
	if gv.Nodes != n || gv.Links == 0 {
		t.Fatalf("GlobalView nodes=%d links=%d", gv.Nodes, gv.Links)
	}
	if want := 2 * len(links); gv.Links != want {
		t.Fatalf("merged GlobalView has %d links, want %d (each link owned once)", gv.Links, want)
	}
}

func TestFederationReplicatedSIB(t *testing.T) {
	const n = 36
	w, _ := testWorld(t, n)
	part := ByRegion(w, 0)
	loop := sim.NewLoop(1)
	fed := New(Config{
		Brain:     brain.Config{N: n, Clock: loop},
		Partition: part,
		Replicas:  3,
	})
	defer fed.Close()

	fed.RegisterStream(99, part.Nodes(0)[0])
	// The registration must commit through the shard's Paxos group
	// before the shard Brain sees it.
	loop.RunUntil(2 * time.Second)
	if _, ok := fed.Shard(0).Producer(99); !ok {
		t.Fatalf("shard 0 SIB missing stream 99 after Paxos commit window")
	}
	for s := 1; s < part.Shards(); s++ {
		if _, ok := fed.Shard(s).Producer(99); ok {
			t.Fatalf("stream 99 leaked into non-owner shard %d", s)
		}
	}
	if _, ok := fed.Producer(99); !ok {
		t.Fatalf("federation SIB missing stream 99")
	}
}

// TestNearestPeersKeepsRegionPairGateways is the satellite coverage for
// geo.NearestPeers under sparse MaxPeers overlays: the nearest-m ∪ IXP ∪
// gateway-mesh adjacency must retain at least one IXP-attached (gateway)
// link between every region pair, or cross-region stitching starves.
func TestNearestPeersKeepsRegionPairGateways(t *testing.T) {
	src := sim.NewSource(5)
	cfg := geo.DefaultConfig()
	cfg.NumSites = 48
	w := geo.Build(cfg, src.Stream("geo"))
	regions := w.Regions()
	if len(regions) < 2 {
		t.Skip("single-region world")
	}
	gws := w.RegionGateways()

	// The sparse overlay: nearest-m plus the gateway set, symmetrized —
	// the same union core.peerAdjacency builds for MaxPeers worlds.
	const m = 4
	adj := make(map[[2]int]bool)
	isGW := make(map[int]bool)
	for _, g := range gws {
		for _, id := range g {
			isGW[id] = true
		}
	}
	for i := range w.Sites {
		for _, j := range w.NearestPeers(i, m) {
			adj[[2]int{i, j}] = true
			adj[[2]int{j, i}] = true
		}
	}
	for a := range isGW {
		for b := range isGW {
			if a != b {
				adj[[2]int{a, b}] = true
			}
		}
	}

	for ri := 0; ri < len(regions); ri++ {
		for rj := 0; rj < len(regions); rj++ {
			if ri == rj {
				continue
			}
			found := false
			for _, a := range gws[regions[ri]] {
				for _, b := range gws[regions[rj]] {
					if adj[[2]int{a, b}] {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("region pair %s->%s has no gateway link in the sparse overlay", regions[ri], regions[rj])
			}
		}
	}
	for r, g := range gws {
		if len(g) == 0 {
			t.Errorf("region %s has no gateways", r)
		}
	}
}

func ExampleByRegion() {
	src := sim.NewSource(1)
	cfg := geo.DefaultConfig()
	cfg.NumSites = 24
	w := geo.Build(cfg, src.Stream("geo"))
	p := ByRegion(w, 0)
	fmt.Println(p.Shards() == len(w.Regions()))
	// Output: true
}

// TestStitchCacheSurvivesRestartThenPartition is the ROADMAP item 2
// follow-up pin: decided cross-shard stitches are persisted into the
// per-shard Paxos SIB log, so the cached-stitch fallback rung survives a
// front-end restart. The sequence is restart THEN partition: the
// restarted front-end loses its soft state, replays the log, and must
// still serve the pre-restart stitch byte-for-byte once the destination
// shard partitions away.
func TestStitchCacheSurvivesRestartThenPartition(t *testing.T) {
	const n = 36
	w, links := testWorld(t, n)
	part := ByRegion(w, 0)
	loop := sim.NewLoop(5)
	reg := telemetry.NewRegistry()
	fed := New(Config{
		Brain:     brain.Config{N: n, MaxHops: 8, Clock: loop},
		Partition: part,
		MaxStitch: 16,
		Replicas:  3,
		Telemetry: reg,
	})
	defer fed.Close()
	reportAll(w, links, fed)

	producer := part.Nodes(0)[0]
	foreign := -1
	for s := 1; s < part.Shards(); s++ {
		if len(part.Nodes(s)) > 0 {
			foreign = s
			break
		}
	}
	if foreign < 0 {
		t.Skip("no foreign shard")
	}
	consumer := part.Nodes(foreign)[0]

	fed.RegisterStream(77, producer)
	loop.RunUntil(2 * time.Second) // SIB registration commits
	warm, err := fed.Lookup(77, consumer)
	if err != nil || len(warm) == 0 {
		t.Fatalf("warm cross-shard lookup failed: %v (%d paths)", err, len(warm))
	}
	// Keep a private copy: the cache aliases what Lookup returned.
	want := make([][]int, len(warm))
	for i, p := range warm {
		want[i] = append([]int(nil), p...)
	}
	loop.RunUntil(4 * time.Second) // the stitch op commits through Paxos

	// Front-end restart: all soft state is gone ...
	fed.DropStitchCache()
	// ... and the replayed Paxos log rebuilds it.
	if got := fed.RecoverStitchCache(); got < 1 {
		t.Fatalf("RecoverStitchCache replayed %d entries, want >= 1", got)
	}

	// Now the destination shard partitions away. The cached rung must
	// serve the recovered, pre-restart stitch byte-for-byte.
	fed.SetShardDown(foreign, true)
	got, err := fed.Lookup(77, consumer)
	if err != nil {
		t.Fatalf("post-restart cached fallback errored: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered fallback served %d paths, want %d", len(got), len(want))
	}
	for i := range want {
		if !pathEq(got[i], want[i]) {
			t.Fatalf("recovered fallback path %d = %v, want pre-restart %v", i, got[i], want[i])
		}
	}
	if reg.Snapshot().Counters["brainfed.fallback_cached"] == 0 {
		t.Fatal("fallback_cached = 0: the answer did not come from the cached rung")
	}

	// Control: a restart WITHOUT log replay loses the rung — the same
	// lookup falls through to the degraded shard-local splice instead.
	fed.DropStitchCache()
	before := reg.Snapshot().Counters["brainfed.fallback_cached"]
	if _, err := fed.Lookup(77, consumer); err != nil {
		t.Fatalf("unrecovered lookup errored: %v", err)
	}
	after := reg.Snapshot().Counters["brainfed.fallback_cached"]
	if after != before {
		t.Fatal("unrecovered lookup still hit the cached rung; restart model is broken")
	}
}
