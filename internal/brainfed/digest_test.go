package brainfed

import (
	"testing"
	"time"

	"livenet/internal/brain"
	"livenet/internal/geo"
	"livenet/internal/sim"
	"livenet/internal/telemetry"
)

// transitWorld builds the transit-penalty topology the digest stitcher
// exists for: full mesh within each region, cross-region links only
// between gateways, and a heavy RTT penalty on any gateway link that
// does not touch the transit region (the largest one — APAC for the
// default geo seed). The monolith's best cross-region path then dog-
// legs through a transit-region gateway, which a two-segment stitch at
// the destination's gateways cannot express — only a digest detour can.
func transitWorld(t *testing.T, n int) (w *geo.World, transit string, report func(sinks ...reportSink)) {
	t.Helper()
	src := sim.NewSource(11)
	cfg := geo.DefaultConfig()
	cfg.NumSites = n
	w = geo.Build(cfg, src.Stream("geo"))
	if len(w.Regions()) < 3 {
		t.Fatalf("world has %d regions; need >= 3 for a transit detour", len(w.Regions()))
	}
	count := make(map[string]int)
	for _, s := range w.Sites {
		count[s.Region]++
	}
	for _, r := range w.Regions() {
		if transit == "" || count[r] > count[transit] {
			transit = r
		}
	}
	gws := w.RegionGateways()
	isGW := make(map[int]bool)
	for _, g := range gws {
		for _, id := range g {
			isGW[id] = true
		}
	}
	// A penalty large enough that any two-leg detour through the transit
	// region (each leg at most half the globe, ~100 ms metric) beats a
	// penalized direct hop, on every region pair.
	const penalty = 500 * time.Millisecond
	report = func(sinks ...reportSink) {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				ri, rj := w.Sites[i].Region, w.Sites[j].Region
				if ri != rj && !(isGW[i] && isGW[j]) {
					continue
				}
				rtt := metricRTT(w, i, j)
				if ri != rj && ri != transit && rj != transit {
					rtt += penalty
				}
				for _, s := range sinks {
					s.ReportLink(i, j, rtt, 0.0005, 0.2)
					s.ReportLink(j, i, rtt, 0.0005, 0.2)
				}
			}
		}
	}
	return w, transit, report
}

// TestDigestStitchMatchesMonolithOnTransitPenalty is the tentpole
// equivalence pin: on a transit-penalty topology the federation's
// selected path must equal the monolith's for every pair — which
// requires stitching through third-region detours via the shards'
// exported digests (the pre-digest stitcher provably could not: it only
// spliced producer→gate and gate→consumer segments at the destination's
// gateways, so the penalized direct link always won).
func TestDigestStitchMatchesMonolithOnTransitPenalty(t *testing.T) {
	const n = 48
	w, _, report := transitWorld(t, n)
	part := ByRegion(w, 0)

	var allGW []int
	for s := 0; s < part.Shards(); s++ {
		allGW = append(allGW, part.Gateways(s)...)
	}
	bcfg := brain.Config{N: n, MaxHops: 8, LastResort: allGW}
	mono := brain.New(bcfg)
	defer mono.Close()
	reg := telemetry.NewRegistry()
	fed := New(Config{Brain: bcfg, Partition: part, MaxStitch: 16, Telemetry: reg})
	defer fed.Close()
	report(mono, fed)

	mismatches := 0
	for p := 0; p < n; p++ {
		for c := 0; c < n; c++ {
			if p == c {
				continue
			}
			mp := mono.LookupByProducer(p, c)
			fp := fed.LookupByProducer(p, c)
			if len(mp) == 0 || len(fp) == 0 {
				t.Fatalf("pair %d->%d: monolith %d paths, federation %d paths", p, c, len(mp), len(fp))
			}
			if !pathEq(mp[0], fp[0]) {
				mismatches++
				if mismatches <= 5 {
					t.Errorf("pair %d->%d: monolith %v, federation %v", p, c, mp[0], fp[0])
				}
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d of %d pairs diverged", mismatches, n*(n-1))
	}
	snap := reg.Snapshot()
	if snap.Counters["brainfed.stitch_transit"] == 0 {
		t.Fatal("no stitch candidate used a digest detour on a transit-penalty topology")
	}
	if snap.Counters["brainfed.digest_builds"] == 0 {
		t.Fatal("no digest was exported")
	}

	// Steady state: with digests warm, one cross-shard lookup costs O(1)
	// batched shard queries (producer side + destination exits), not
	// 2 queries per gateway candidate like the pre-digest stitcher.
	var p, c int = -1, -1
	for id := 0; id < n && c < 0; id++ {
		if p < 0 {
			p = id
			continue
		}
		if part.ShardOf(id) != part.ShardOf(p) {
			c = id
		}
	}
	fed.InvalidateAll() // drop PIBs but not view versions: digests stay warm
	before := reg.Snapshot().Counters["brainfed.segment_queries"]
	if paths := fed.LookupByProducer(p, c); len(paths) == 0 {
		t.Fatalf("no stitched path for %d->%d", p, c)
	}
	queries := reg.Snapshot().Counters["brainfed.segment_queries"] - before
	if queries > 2 {
		t.Fatalf("steady-state cross-shard lookup made %d segment queries, want <= 2", queries)
	}
}

// TestSplitPartitionReducesFanInAtMonolithQuality pins the fan-in side
// of the digest tentpole: splitting the largest region into sub-shards
// must cut the maximum per-shard discovery-report fan-in, while digest
// stitching (entry via sibling sub-shards' digests, exit legs answered
// by each gateway's owning sub-shard) keeps every cross-region path
// identical to the monolith's. Intra-region pairs that straddle a split
// are the documented trade: they detour via a gateway, so they are only
// required to resolve, not to match.
func TestSplitPartitionReducesFanInAtMonolithQuality(t *testing.T) {
	const n = 48
	w, transit, report := transitWorld(t, n)
	whole := ByRegion(w, 0)
	count := make(map[string]int)
	for _, s := range w.Sites {
		count[s.Region]++
	}
	split := ByRegionSplit(w, count[transit]/2)
	if split.Shards() <= whole.Shards() {
		t.Fatalf("split partition has %d shards, want > %d", split.Shards(), whole.Shards())
	}

	var allGW []int
	for s := 0; s < whole.Shards(); s++ {
		allGW = append(allGW, whole.Gateways(s)...)
	}
	bcfg := brain.Config{N: n, MaxHops: 8, LastResort: allGW}
	mono := brain.New(bcfg)
	defer mono.Close()
	fedWhole := New(Config{Brain: bcfg, Partition: whole, MaxStitch: 16})
	defer fedWhole.Close()
	fedSplit := New(Config{Brain: bcfg, Partition: split, MaxStitch: 16})
	defer fedSplit.Close()
	report(mono, fedWhole, fedSplit)

	mismatches := 0
	for p := 0; p < n; p++ {
		for c := 0; c < n; c++ {
			if p == c {
				continue
			}
			fp := fedSplit.LookupByProducer(p, c)
			if len(fp) == 0 {
				t.Fatalf("pair %d->%d: split federation served no path", p, c)
			}
			if w.Sites[p].Region == w.Sites[c].Region {
				continue // split-region interior pairs may gateway-detour
			}
			mp := mono.LookupByProducer(p, c)
			if len(mp) == 0 {
				t.Fatalf("pair %d->%d: monolith served no path", p, c)
			}
			if !pathEq(mp[0], fp[0]) {
				mismatches++
				if mismatches <= 5 {
					t.Errorf("pair %d->%d: monolith %v, split federation %v", p, c, mp[0], fp[0])
				}
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d cross-region pairs diverged from the monolith", mismatches)
	}

	maxFan := func(f *Federation) uint64 {
		var m uint64
		for _, c := range f.ReportFanIn() {
			if c > m {
				m = c
			}
		}
		return m
	}
	fw, fs := maxFan(fedWhole), maxFan(fedSplit)
	if fs >= fw {
		t.Fatalf("split max shard fan-in %d, want < whole-region %d", fs, fw)
	}
}

// TestByRegionSplitPartition covers the split partition's invariants:
// disjoint ownership, every sub-shard owning at least one gateway, and
// peer groups tying a region's sub-shards together.
func TestByRegionSplitPartition(t *testing.T) {
	const n = 48
	w, transit, _ := transitWorld(t, n)
	count := make(map[string]int)
	for _, s := range w.Sites {
		count[s.Region]++
	}
	p := ByRegionSplit(w, count[transit]/2)

	covered := 0
	region := make(map[int]string)
	for s := 0; s < p.Shards(); s++ {
		if len(p.Gateways(s)) == 0 {
			t.Fatalf("shard %d (%s) owns no gateway", s, p.Names[s])
		}
		for _, g := range p.Gateways(s) {
			if p.ShardOf(g) != s {
				t.Fatalf("gateway %d listed by shard %d but owned by %d", g, s, p.ShardOf(g))
			}
		}
		for _, id := range p.Nodes(s) {
			if p.ShardOf(id) != s {
				t.Fatalf("node %d listed in shard %d but ShardOf says %d", id, s, p.ShardOf(id))
			}
			if r, ok := region[s]; ok && r != w.Sites[id].Region {
				t.Fatalf("shard %d spans regions %s and %s", s, r, w.Sites[id].Region)
			}
			region[s] = w.Sites[id].Region
			covered++
		}
	}
	if covered != len(w.Sites) {
		t.Fatalf("covered %d nodes, want %d", covered, len(w.Sites))
	}

	// The transit region split; its sub-shards are peers of each other
	// and of nobody else.
	subs := 0
	for s := 0; s < p.Shards(); s++ {
		if region[s] == transit {
			subs++
		}
	}
	if subs < 2 {
		t.Fatalf("transit region %s split into %d shards, want >= 2", transit, subs)
	}
	for s := 0; s < p.Shards(); s++ {
		peers := p.PeerShards(s)
		want := 1
		if region[s] == transit {
			want = subs
		}
		if len(peers) != want {
			t.Fatalf("shard %d (%s) has peers %v, want %d", s, p.Names[s], peers, want)
		}
		self := false
		for _, u := range peers {
			if u == s {
				self = true
			}
			if region[u] != region[s] {
				t.Fatalf("shard %d peers with %d across regions", s, u)
			}
		}
		if !self {
			t.Fatalf("shard %d missing from its own peer group %v", s, peers)
		}
	}
}
