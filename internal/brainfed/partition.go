// Package brainfed federates the Streaming Brain into per-region shards
// (ROADMAP item 2). The paper describes the Brain as logically
// centralized (§4); at fleet scale no single replica should hold all
// PIB/SIB state or absorb the full discovery-report fan-in, so the
// Federation front-end partitions the fleet by geography:
//
//   - Each shard is a full Brain (PIB, SIB, incremental routing epochs)
//     whose Global Discovery ingests only reports from the nodes it owns.
//     A shard's view therefore contains its intra-region links plus the
//     outgoing cross-region links its own nodes probe.
//   - Cross-region path requests are answered by stitching shard-local
//     segments at a bounded candidate set of gateway nodes — the
//     destination region's IXP-attached sites (geo.RegionGateways).
//   - When a peer shard is unreachable, lookups degrade through a
//     fallback ladder (cached stitches, then shard-local gateway
//     segments) instead of failing; see federation.go.
//
// The front-end preserves the Brain lookup API, so core.Cluster, the
// macro simulator, and the UDP Brain server switch via config.
package brainfed

import (
	"sort"

	"livenet/internal/geo"
)

// Partition assigns every overlay node to exactly one shard and names
// each shard's gateway candidates. Partitions are immutable.
type Partition struct {
	// N is the overlay size (global node IDs 0..N-1 are preserved —
	// shards index the same fleet, they just own disjoint subsets).
	N int
	// Names labels each shard (region name, or "REST" for the merged
	// tail when the requested shard count is below the region count).
	Names []string

	shardOf  []int
	nodes    [][]int
	gateways [][]int
}

// ByRegion partitions a geo world's sites by region. k <= 0 (or k at or
// above the region count) gives one shard per region; a smaller k keeps
// the k-1 largest regions as their own shards and merges the rest into
// one "REST" shard, so -regions can dial the shard count. Each shard's
// gateway list comes from geo.RegionGateways, ordered best-peered first.
func ByRegion(w *geo.World, k int) *Partition {
	regions := w.Regions()
	gws := w.RegionGateways()
	type group struct {
		name    string
		members []string
	}
	var groups []group
	if k <= 0 || k >= len(regions) {
		for _, r := range regions {
			groups = append(groups, group{name: r, members: []string{r}})
		}
	} else {
		count := make(map[string]int)
		for _, s := range w.Sites {
			count[s.Region]++
		}
		bySize := append([]string(nil), regions...)
		sort.SliceStable(bySize, func(a, b int) bool {
			if count[bySize[a]] != count[bySize[b]] {
				return count[bySize[a]] > count[bySize[b]]
			}
			return bySize[a] < bySize[b]
		})
		keep, rest := bySize[:k-1], bySize[k-1:]
		keep = append([]string(nil), keep...)
		rest = append([]string(nil), rest...)
		sort.Strings(keep)
		sort.Strings(rest)
		for _, r := range keep {
			groups = append(groups, group{name: r, members: []string{r}})
		}
		groups = append(groups, group{name: "REST", members: rest})
	}

	p := &Partition{
		N:       len(w.Sites),
		shardOf: make([]int, len(w.Sites)),
		nodes:   make([][]int, len(groups)),
	}
	shardOfRegion := make(map[string]int)
	for si, g := range groups {
		p.Names = append(p.Names, g.name)
		var gw []int
		for _, r := range g.members {
			shardOfRegion[r] = si
			gw = append(gw, gws[r]...)
		}
		sort.Slice(gw, func(a, b int) bool {
			if w.Peering(gw[a]) != w.Peering(gw[b]) {
				return w.Peering(gw[a]) > w.Peering(gw[b])
			}
			return gw[a] < gw[b]
		})
		p.gateways = append(p.gateways, gw)
	}
	for _, s := range w.Sites {
		si := shardOfRegion[s.Region]
		p.shardOf[s.ID] = si
		p.nodes[si] = append(p.nodes[si], s.ID)
	}
	return p
}

// Contiguous partitions node IDs 0..n-1 into k contiguous blocks — the
// world-less variant for the standalone UDP Brain, where node IDs are
// assigned by deployment script and regions are ID ranges. gateways
// lists reserved well-peered relays (the -last-resort set); a block
// containing none of them gates through its first node.
func Contiguous(n, k int, gateways []int) *Partition {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	p := &Partition{
		N:       n,
		shardOf: make([]int, n),
		nodes:   make([][]int, k),
	}
	gwSet := make(map[int]bool, len(gateways))
	for _, g := range gateways {
		gwSet[g] = true
	}
	for s := 0; s < k; s++ {
		lo, hi := s*n/k, (s+1)*n/k
		p.Names = append(p.Names, "block-"+itoa(s))
		var gw []int
		for id := lo; id < hi; id++ {
			p.shardOf[id] = s
			p.nodes[s] = append(p.nodes[s], id)
			if gwSet[id] {
				gw = append(gw, id)
			}
		}
		if len(gw) == 0 && hi > lo {
			gw = []int{lo}
		}
		p.gateways = append(p.gateways, gw)
	}
	return p
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	at := len(buf)
	for v > 0 {
		at--
		buf[at] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[at:])
}

// Shards returns the shard count.
func (p *Partition) Shards() int { return len(p.nodes) }

// ShardOf returns the shard owning a node.
func (p *Partition) ShardOf(node int) int { return p.shardOf[node] }

// Nodes returns the node IDs a shard owns (ascending).
func (p *Partition) Nodes(s int) []int { return p.nodes[s] }

// Gateways returns a shard's stitch candidates, best-peered first.
func (p *Partition) Gateways(s int) []int { return p.gateways[s] }
