// Package brainfed federates the Streaming Brain into per-region shards
// (ROADMAP item 2). The paper describes the Brain as logically
// centralized (§4); at fleet scale no single replica should hold all
// PIB/SIB state or absorb the full discovery-report fan-in, so the
// Federation front-end partitions the fleet by geography:
//
//   - Each shard is a full Brain (PIB, SIB, incremental routing epochs)
//     whose Global Discovery ingests only reports from the nodes it owns.
//     A shard's view therefore contains its intra-region links plus the
//     outgoing cross-region links its own nodes probe.
//   - Cross-region path requests are answered by stitching shard-local
//     segments at a bounded candidate set of gateway nodes — the
//     destination region's IXP-attached sites (geo.RegionGateways).
//     Transit legs between foreign gateways come from each shard's
//     compressed inter-region digest (a per-epoch export of its best
//     gateway→gateway segments), so third-region detours are found
//     without per-lookup queries against transit shards.
//   - When a peer shard is unreachable, lookups degrade through a
//     fallback ladder (cached stitches, then shard-local gateway
//     segments) instead of failing; see federation.go.
//
// The front-end preserves the Brain lookup API, so core.Cluster, the
// macro simulator, and the UDP Brain server switch via config.
package brainfed

import (
	"sort"

	"livenet/internal/geo"
)

// Partition assigns every overlay node to exactly one shard and names
// each shard's gateway candidates. Partitions are immutable.
type Partition struct {
	// N is the overlay size (global node IDs 0..N-1 are preserved —
	// shards index the same fleet, they just own disjoint subsets).
	N int
	// Names labels each shard (region name, or "REST" for the merged
	// tail when the requested shard count is below the region count).
	Names []string

	shardOf  []int
	nodes    [][]int
	gateways [][]int
	group    []int // region group per shard; sub-shards of one split region share a group
}

// ByRegion partitions a geo world's sites by region. k <= 0 (or k at or
// above the region count) gives one shard per region; a smaller k keeps
// the k-1 largest regions as their own shards and merges the rest into
// one "REST" shard, so -regions can dial the shard count. Each shard's
// gateway list comes from geo.RegionGateways, ordered best-peered first.
func ByRegion(w *geo.World, k int) *Partition {
	regions := w.Regions()
	gws := w.RegionGateways()
	type group struct {
		name    string
		members []string
	}
	var groups []group
	if k <= 0 || k >= len(regions) {
		for _, r := range regions {
			groups = append(groups, group{name: r, members: []string{r}})
		}
	} else {
		count := make(map[string]int)
		for _, s := range w.Sites {
			count[s.Region]++
		}
		bySize := append([]string(nil), regions...)
		sort.SliceStable(bySize, func(a, b int) bool {
			if count[bySize[a]] != count[bySize[b]] {
				return count[bySize[a]] > count[bySize[b]]
			}
			return bySize[a] < bySize[b]
		})
		keep, rest := bySize[:k-1], bySize[k-1:]
		keep = append([]string(nil), keep...)
		rest = append([]string(nil), rest...)
		sort.Strings(keep)
		sort.Strings(rest)
		for _, r := range keep {
			groups = append(groups, group{name: r, members: []string{r}})
		}
		groups = append(groups, group{name: "REST", members: rest})
	}

	p := &Partition{
		N:       len(w.Sites),
		shardOf: make([]int, len(w.Sites)),
		nodes:   make([][]int, len(groups)),
	}
	shardOfRegion := make(map[string]int)
	for si, g := range groups {
		p.Names = append(p.Names, g.name)
		var gw []int
		for _, r := range g.members {
			shardOfRegion[r] = si
			gw = append(gw, gws[r]...)
		}
		sort.Slice(gw, func(a, b int) bool {
			if w.Peering(gw[a]) != w.Peering(gw[b]) {
				return w.Peering(gw[a]) > w.Peering(gw[b])
			}
			return gw[a] < gw[b]
		})
		p.gateways = append(p.gateways, gw)
	}
	for _, s := range w.Sites {
		si := shardOfRegion[s.Region]
		p.shardOf[s.ID] = si
		p.nodes[si] = append(p.nodes[si], s.ID)
	}
	return p
}

// ByRegionSplit is ByRegion with a per-shard ownership cap: a region
// owning more than maxNodes sites is split into balanced sub-shards,
// bounded by the region's gateway count (every sub-shard must own at
// least one gateway to be reachable by the stitcher). Splitting caps
// the maximum per-shard discovery-report fan-in below the largest
// region's size; the digest stitcher keeps cross-region paths whole by
// routing through sibling sub-shards' exported gateway summaries.
// Region gateways are dealt round-robin in best-peered order, then the
// remaining sites round-robin in ID order, so sub-shards stay balanced.
func ByRegionSplit(w *geo.World, maxNodes int) *Partition {
	if maxNodes < 1 {
		maxNodes = 1
	}
	regions := w.Regions()
	gws := w.RegionGateways()
	p := &Partition{
		N:       len(w.Sites),
		shardOf: make([]int, len(w.Sites)),
	}
	for _, r := range regions {
		var members []int
		for _, s := range w.Sites {
			if s.Region == r {
				members = append(members, s.ID)
			}
		}
		sort.Ints(members)
		gw := append([]int(nil), gws[r]...)
		sort.Slice(gw, func(a, b int) bool {
			if w.Peering(gw[a]) != w.Peering(gw[b]) {
				return w.Peering(gw[a]) > w.Peering(gw[b])
			}
			return gw[a] < gw[b]
		})
		parts := (len(members) + maxNodes - 1) / maxNodes
		if parts > len(gw) {
			parts = len(gw)
		}
		if parts < 1 {
			parts = 1
		}
		base := len(p.nodes)
		for i := 0; i < parts; i++ {
			name := r
			if parts > 1 {
				name = r + "/" + itoa(i)
			}
			p.Names = append(p.Names, name)
			p.nodes = append(p.nodes, nil)
			p.gateways = append(p.gateways, nil)
			p.group = append(p.group, base)
		}
		isGW := make(map[int]bool, len(gw))
		for i, g := range gw {
			si := base + i%parts
			p.gateways[si] = append(p.gateways[si], g)
			p.shardOf[g] = si
			isGW[g] = true
		}
		at := 0
		for _, id := range members {
			if isGW[id] {
				continue
			}
			si := base + at%parts
			p.shardOf[id] = si
			at++
		}
		for _, id := range members {
			si := p.shardOf[id]
			p.nodes[si] = append(p.nodes[si], id)
		}
	}
	return p
}

// Contiguous partitions node IDs 0..n-1 into k contiguous blocks — the
// world-less variant for the standalone UDP Brain, where node IDs are
// assigned by deployment script and regions are ID ranges. gateways
// lists reserved well-peered relays (the -last-resort set); a block
// containing none of them gates through its first node.
func Contiguous(n, k int, gateways []int) *Partition {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	p := &Partition{
		N:       n,
		shardOf: make([]int, n),
		nodes:   make([][]int, k),
	}
	gwSet := make(map[int]bool, len(gateways))
	for _, g := range gateways {
		gwSet[g] = true
	}
	for s := 0; s < k; s++ {
		lo, hi := s*n/k, (s+1)*n/k
		p.Names = append(p.Names, "block-"+itoa(s))
		var gw []int
		for id := lo; id < hi; id++ {
			p.shardOf[id] = s
			p.nodes[s] = append(p.nodes[s], id)
			if gwSet[id] {
				gw = append(gw, id)
			}
		}
		if len(gw) == 0 && hi > lo {
			gw = []int{lo}
		}
		p.gateways = append(p.gateways, gw)
	}
	return p
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	at := len(buf)
	for v > 0 {
		at--
		buf[at] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[at:])
}

// Shards returns the shard count.
func (p *Partition) Shards() int { return len(p.nodes) }

// PeerShards returns the shards covering the same region as s (always
// including s itself). Whole-region shards are their own group;
// ByRegionSplit sub-shards share one. The stitcher consults every peer
// of the destination shard for exit segments, because a gateway's
// outgoing links are visible only to the sub-shard that owns it.
func (p *Partition) PeerShards(s int) []int {
	if p.group == nil {
		return []int{s}
	}
	var out []int
	for u, g := range p.group {
		if g == p.group[s] {
			out = append(out, u)
		}
	}
	return out
}

// ShardOf returns the shard owning a node.
func (p *Partition) ShardOf(node int) int { return p.shardOf[node] }

// Nodes returns the node IDs a shard owns (ascending).
func (p *Partition) Nodes(s int) []int { return p.nodes[s] }

// Gateways returns a shard's stitch candidates, best-peered first.
func (p *Partition) Gateways(s int) []int { return p.gateways[s] }
