package brainfed

import (
	"errors"
	"math"
	"sort"
	"sync"
	"time"

	"livenet/internal/brain"
	"livenet/internal/replication"
	"livenet/internal/runner"
	"livenet/internal/sim"
	"livenet/internal/telemetry"
)

// ErrShardUnreachable is returned when a lookup cannot be served because
// an owning shard is partitioned away and no fallback rung applies.
var ErrShardUnreachable = errors.New("brainfed: peer shard unreachable")

// DefaultMaxStitch bounds the gateway candidates evaluated per
// cross-shard lookup. Stitch cost is two shard-local lookups per
// candidate, so this is the knob that keeps cross-region path decisions
// O(1) in region size.
const DefaultMaxStitch = 4

// Config configures a Federation.
type Config struct {
	// Brain is the per-shard template. N must be the global fleet size
	// (shards keep global node IDs); LastResort and Owns are overridden
	// per shard with its gateways and ownership predicate.
	Brain brain.Config
	// Partition assigns nodes to shards (required).
	Partition *Partition
	// MaxStitch bounds gateway candidates per cross-shard lookup
	// (default DefaultMaxStitch).
	MaxStitch int
	// Replicas > 1 replicates each shard's SIB ops through its own
	// Paxos group of that many replicas (§7.1, per shard instead of
	// global). Requires Brain.Clock to drive message delivery; ignored
	// without one.
	Replicas int
	// Telemetry receives the brainfed.* instrument set.
	Telemetry *telemetry.Registry
}

type fedInstruments struct {
	shards           *telemetry.Gauge
	shardsDown       *telemetry.Gauge
	reports          *telemetry.Counter
	lookupsLocal     *telemetry.Counter
	lookupsCross     *telemetry.Counter
	stitchCandidates *telemetry.Counter
	stitchTransit    *telemetry.Counter
	stitchCacheHits  *telemetry.Counter
	segmentQueries   *telemetry.Counter
	digestBuilds     *telemetry.Counter
	fallbackCached   *telemetry.Counter
	fallbackLocal    *telemetry.Counter
	fallbackFailed   *telemetry.Counter
	epochs           *telemetry.Counter
	epochNs          *telemetry.Histogram
}

func newFedInstruments(r *telemetry.Registry) fedInstruments {
	return fedInstruments{
		shards:           r.Gauge("brainfed.shards"),
		shardsDown:       r.Gauge("brainfed.shards_down"),
		reports:          r.Counter("brainfed.reports"),
		lookupsLocal:     r.Counter("brainfed.lookups_local"),
		lookupsCross:     r.Counter("brainfed.lookups_cross"),
		stitchCandidates: r.Counter("brainfed.stitch_candidates"),
		stitchTransit:    r.Counter("brainfed.stitch_transit"),
		stitchCacheHits:  r.Counter("brainfed.stitch_cache_hits"),
		segmentQueries:   r.Counter("brainfed.segment_queries"),
		digestBuilds:     r.Counter("brainfed.digest_builds"),
		fallbackCached:   r.Counter("brainfed.fallback_cached"),
		fallbackLocal:    r.Counter("brainfed.fallback_local"),
		fallbackFailed:   r.Counter("brainfed.fallback_failed"),
		epochs:           r.Counter("brainfed.epochs"),
		epochNs:          r.Histogram("brainfed.epoch_ns"),
	}
}

type pairKey struct{ src, dst int }

// opStitch is the shard-group log tag for a persisted stitch-cache
// entry (SIB ops use 1 and 2; see brain.ReplicatedBrain). Persisting
// decided cross-shard stitches into the per-shard Paxos log means the
// cached-stitch fallback rung survives a front-end restart: a fresh
// front-end replays the log instead of starting with a cold cache.
// Encoding: [opStitch][src u16][dst u16][npaths u8]([len u8][hop u16]*)*
const opStitch = 3

func encodeStitchOp(src, dst int, paths [][]int) []byte {
	n := 6
	for _, p := range paths {
		n += 1 + 2*len(p)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, opStitch)
	buf = append(buf, byte(src>>8), byte(src), byte(dst>>8), byte(dst))
	buf = append(buf, byte(len(paths)))
	for _, p := range paths {
		buf = append(buf, byte(len(p)))
		for _, h := range p {
			buf = append(buf, byte(h>>8), byte(h))
		}
	}
	return buf
}

func decodeStitchOp(value []byte) (pairKey, [][]int, bool) {
	if len(value) < 6 || value[0] != opStitch {
		return pairKey{}, nil, false
	}
	k := pairKey{
		src: int(value[1])<<8 | int(value[2]),
		dst: int(value[3])<<8 | int(value[4]),
	}
	n := int(value[5])
	off := 6
	paths := make([][]int, 0, n)
	for i := 0; i < n; i++ {
		if len(value) < off+1 {
			return pairKey{}, nil, false
		}
		m := int(value[off])
		off++
		if len(value) < off+2*m {
			return pairKey{}, nil, false
		}
		p := make([]int, m)
		for j := 0; j < m; j++ {
			p[j] = int(value[off])<<8 | int(value[off+1])
			off += 2
		}
		paths = append(paths, p)
	}
	return k, paths, true
}

func samePaths(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// Federation fronts a set of per-region Brain shards behind the
// monolithic Brain's lookup/report API. Reports route to the shard
// owning the reporting node; same-shard lookups are served entirely by
// one shard; cross-shard lookups stitch shard-local segments over the
// gateway meta-graph, using each shard's exported inter-region digest
// for any transit legs. See the package comment for the design.
type Federation struct {
	cfg  Config
	part *Partition
	tel  fedInstruments

	shards []*brain.Brain
	groups []*shardGroup // per-shard Paxos groups; nil without replication

	mu          sync.Mutex
	sib         map[uint32]int
	down        []bool
	stitchCache map[pairKey][][]int
	digests     []*digest
	reportCount []uint64
	epochTimes  []time.Duration
}

// digest is a shard's compressed inter-region link summary (ROADMAP
// item 2 follow-up): for each of the shard's exported gateways, the
// best shard-local segment to every foreign gateway, with its Eq. 2
// cost. Digests are what let the front-end stitch cross-shard paths
// through third-region detours — a transit shard's border links enter
// the stitch as a handful of (gateway, gateway, cost) rows refreshed
// once per shard view version, instead of per-lookup queries against
// the transit shard (let alone its full graph).
type digest struct {
	version uint64
	entries []digestEntry
}

type digestEntry struct {
	from, to int // gateway pair; from is owned by the exporting shard
	cost     float64
	path     []int // the exporting shard's best from→to node path
}

// New builds the federation: one Brain per shard, each owning its
// partition slice, with the shard's gateways as its last-resort relays.
func New(cfg Config) *Federation {
	if cfg.Partition == nil {
		panic("brainfed: Config.Partition is required")
	}
	if cfg.MaxStitch <= 0 {
		cfg.MaxStitch = DefaultMaxStitch
	}
	p := cfg.Partition
	f := &Federation{
		cfg:         cfg,
		part:        p,
		tel:         newFedInstruments(cfg.Telemetry),
		sib:         make(map[uint32]int),
		down:        make([]bool, p.Shards()),
		stitchCache: make(map[pairKey][][]int),
		digests:     make([]*digest, p.Shards()),
		reportCount: make([]uint64, p.Shards()),
		epochTimes:  make([]time.Duration, p.Shards()),
	}
	for s := 0; s < p.Shards(); s++ {
		s := s
		bcfg := cfg.Brain
		bcfg.N = p.N
		bcfg.LastResort = p.Gateways(s)
		bcfg.Owns = func(id int) bool { return p.ShardOf(id) == s }
		f.shards = append(f.shards, brain.New(bcfg))
	}
	if cfg.Replicas > 1 && cfg.Brain.Clock != nil {
		for s := 0; s < p.Shards(); s++ {
			g := newShardGroup(f.shards[s], cfg.Replicas, cfg.Brain.Clock)
			g.rb.SetExtraOpHandler(f.applyStitchOp)
			f.groups = append(f.groups, g)
		}
	}
	f.tel.shards.Set(float64(p.Shards()))
	return f
}

// Shards returns the shard count.
func (f *Federation) Shards() int { return len(f.shards) }

// Shard exposes one shard's Brain (tests and the UDP server use it).
func (f *Federation) Shard(s int) *brain.Brain { return f.shards[s] }

// ShardOf returns the shard owning a node.
func (f *Federation) ShardOf(node int) int { return f.part.ShardOf(node) }

// Partition returns the node→shard assignment.
func (f *Federation) Partition() *Partition { return f.part }

// SetShardDown marks a shard (un)reachable from the front-end — the
// chaos plane's model of a regional control-plane partition. Lookups
// needing a down shard degrade through the fallback ladder; reports to
// it are dropped (the region's nodes cannot reach it either).
func (f *Federation) SetShardDown(s int, down bool) {
	f.mu.Lock()
	f.down[s] = down
	n := 0
	for _, d := range f.down {
		if d {
			n++
		}
	}
	f.mu.Unlock()
	f.tel.shardsDown.Set(float64(n))
}

// ShardDown reports whether a shard is currently marked unreachable.
func (f *Federation) ShardDown(s int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down[s]
}

// ReportFanIn returns how many discovery reports each shard has
// ingested — the per-shard fan-in the federation exists to bound.
func (f *Federation) ReportFanIn() []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]uint64(nil), f.reportCount...)
}

// EpochTimes returns each shard's last AdvanceEpoch duration.
func (f *Federation) EpochTimes() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.epochTimes...)
}

// sink returns the shard that should ingest a report from node id, or
// -1 when that shard is unreachable (report dropped, like the lost
// UDP datagram it would be).
func (f *Federation) sink(id int) int {
	s := f.part.ShardOf(id)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[s] {
		return -1
	}
	f.reportCount[s]++
	return s
}

// ReportLink ingests a link measurement from its probing node's shard.
func (f *Federation) ReportLink(from, to int, rtt time.Duration, loss, util float64) {
	if s := f.sink(from); s >= 0 {
		f.tel.reports.Inc()
		f.shards[s].ReportLink(from, to, rtt, loss, util)
	}
}

// ReportLinkDown ingests a link-failure report.
func (f *Federation) ReportLinkDown(from, to int) {
	if s := f.sink(from); s >= 0 {
		f.tel.reports.Inc()
		f.shards[s].ReportLinkDown(from, to)
	}
}

// ReportNodeDown ingests a node-failure report.
func (f *Federation) ReportNodeDown(id int) {
	if s := f.sink(id); s >= 0 {
		f.tel.reports.Inc()
		f.shards[s].ReportNodeDown(id)
	}
}

// ReportNodeLoad ingests a node utilization report.
func (f *Federation) ReportNodeLoad(id int, util float64) {
	if s := f.sink(id); s >= 0 {
		f.tel.reports.Inc()
		f.shards[s].ReportNodeLoad(id, util)
	}
}

// Draining reports whether any shard has the node marked draining
// (SetDraining broadcasts, so the shards agree; "any" keeps the answer
// right even mid-broadcast).
func (f *Federation) Draining(id int) bool {
	for _, sh := range f.shards {
		if sh.Draining(id) {
			return true
		}
	}
	return false
}

// OverloadAlarm forwards a node overload alarm to its owner shard.
func (f *Federation) OverloadAlarm(id int, util float64) {
	if s := f.sink(id); s >= 0 {
		f.tel.reports.Inc()
		f.shards[s].OverloadAlarm(id, util)
	}
}

// LinkOverloadAlarm forwards a link overload alarm to the prober's shard.
func (f *Federation) LinkOverloadAlarm(from, to int, util float64) {
	if s := f.sink(from); s >= 0 {
		f.tel.reports.Inc()
		f.shards[s].LinkOverloadAlarm(from, to, util)
	}
}

// ReportNodeTelemetry forwards a node's telemetry attachment.
func (f *Federation) ReportNodeTelemetry(id int, snap telemetry.Snapshot, streams []uint32) {
	if s := f.sink(id); s >= 0 {
		f.tel.reports.Inc()
		f.shards[s].ReportNodeTelemetry(id, snap, streams)
	}
}

// RegisterStream records the stream in the federation SIB and the
// producer's shard (through its Paxos group when replicated).
func (f *Federation) RegisterStream(sid uint32, producer int) {
	f.mu.Lock()
	f.sib[sid] = producer
	f.mu.Unlock()
	s := f.part.ShardOf(producer)
	if f.groups != nil {
		f.groups[s].rb.RegisterStream(sid, producer)
		return
	}
	f.shards[s].RegisterStream(sid, producer)
}

// UnregisterStream removes the stream.
func (f *Federation) UnregisterStream(sid uint32) {
	f.mu.Lock()
	producer, ok := f.sib[sid]
	delete(f.sib, sid)
	f.mu.Unlock()
	if !ok {
		return
	}
	s := f.part.ShardOf(producer)
	if f.groups != nil {
		f.groups[s].rb.UnregisterStream(sid)
		return
	}
	f.shards[s].UnregisterStream(sid)
}

// Producer returns the producer node for a stream, if registered.
func (f *Federation) Producer(sid uint32) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.sib[sid]
	return p, ok
}

// Lookup answers a path request: same-shard requests are served by one
// shard's Path Decision, cross-shard requests by gateway stitching (or
// the fallback ladder when a shard is partitioned away).
func (f *Federation) Lookup(sid uint32, consumer int) ([][]int, error) {
	f.mu.Lock()
	producer, ok := f.sib[sid]
	f.mu.Unlock()
	if !ok {
		return nil, brain.ErrUnknownStream
	}
	return f.lookupPath(producer, consumer)
}

// LookupByProducer mirrors Brain.LookupByProducer (errors collapse to
// no-paths, sending the node to its local path cache).
func (f *Federation) LookupByProducer(producer, consumer int) [][]int {
	paths, _ := f.lookupPath(producer, consumer)
	return paths
}

func (f *Federation) lookupPath(producer, consumer int) ([][]int, error) {
	ss, ds := f.part.ShardOf(producer), f.part.ShardOf(consumer)
	f.mu.Lock()
	srcDown, dstDown := f.down[ss], f.down[ds]
	f.mu.Unlock()
	if ss == ds {
		if srcDown {
			f.tel.fallbackFailed.Inc()
			return nil, ErrShardUnreachable
		}
		f.tel.lookupsLocal.Inc()
		return f.shards[ss].LookupByProducer(producer, consumer), nil
	}
	f.tel.lookupsCross.Inc()
	if !srcDown && !dstDown {
		paths := f.stitch(producer, consumer, ss, ds)
		if len(paths) > 0 {
			k := pairKey{producer, consumer}
			f.mu.Lock()
			changed := !samePaths(f.stitchCache[k], paths)
			f.stitchCache[k] = paths
			f.mu.Unlock()
			if changed && f.groups != nil {
				// Persist the decided stitch into the destination shard's
				// log (outside f.mu: the commit path re-enters the lock).
				f.groups[ds].rb.ProposeOp(encodeStitchOp(producer, consumer, paths))
			}
		}
		return paths, nil
	}

	// Fallback ladder (§4.3's last-resort philosophy applied to control-
	// plane partitions). Rung 1: serve the cached stitch — paths decided
	// while both shards were reachable stay valid unless the data plane
	// disagrees, and nodes re-resolve after heal.
	f.mu.Lock()
	cached := f.stitchCache[pairKey{producer, consumer}]
	f.mu.Unlock()
	if len(cached) > 0 {
		f.tel.stitchCacheHits.Inc()
		f.tel.fallbackCached.Inc()
		return append([][]int(nil), cached...), nil
	}
	// Rung 2: a degraded shard-local splice — the reachable side picks
	// the best gateway segment it can compute and bridges the missing
	// side with a direct hop, mirroring the optimism of last-resort
	// relays (every node maintains links to the reserved IXP set).
	if p := f.degradedStitch(producer, consumer, ss, ds, srcDown, dstDown); p != nil {
		f.tel.fallbackLocal.Inc()
		return [][]int{p}, nil
	}
	// Rung 3: nothing to serve; the node falls back to its own cache.
	f.tel.fallbackFailed.Inc()
	return nil, ErrShardUnreachable
}

// gatesOf returns a shard's exported gateway set: its first MaxStitch
// gateways (best-peered first). Both the stitcher's candidate exits and
// the digest rows are bounded by it, so stitch state stays O(1) in
// region size.
func (f *Federation) gatesOf(s int) []int {
	g := f.part.Gateways(s)
	if len(g) > f.cfg.MaxStitch {
		g = g[:f.cfg.MaxStitch]
	}
	return g
}

// digestFor returns shard t's current inter-region digest, rebuilding
// it when the shard's view version moved: one batched segment query per
// exported gateway, against every foreign gateway. While t is marked
// down the last exported digest keeps serving (summaries are front-end
// soft state, like the stitch cache), possibly nil if t never exported.
func (f *Federation) digestFor(t int) *digest {
	f.mu.Lock()
	d, down := f.digests[t], f.down[t]
	f.mu.Unlock()
	if down {
		return d
	}
	v := f.shards[t].ViewVersion()
	if d != nil && d.version == v {
		return d
	}
	own := f.gatesOf(t)
	var foreign []int
	for u := 0; u < f.part.Shards(); u++ {
		if u != t {
			foreign = append(foreign, f.gatesOf(u)...)
		}
	}
	nd := &digest{version: v}
	for _, e := range own {
		segs := f.shards[t].LookupSegments(e, foreign)
		f.tel.segmentQueries.Inc()
		for i, s := range segs {
			if len(s.Path) < 2 || math.IsInf(s.Cost, 1) {
				continue
			}
			nd.entries = append(nd.entries, digestEntry{from: e, to: foreign[i], cost: s.Cost, path: s.Path})
		}
	}
	f.tel.digestBuilds.Inc()
	f.mu.Lock()
	f.digests[t] = nd
	f.mu.Unlock()
	return nd
}

// RefreshDigests re-exports every reachable shard's inter-region
// digest (a no-op per shard whose view has not moved). AdvanceEpoch
// calls it so steady-state lookups never pay the rebuild.
func (f *Federation) RefreshDigests() {
	for t := 0; t < f.part.Shards(); t++ {
		f.digestFor(t)
	}
}

// metaEdge is one edge of the stitcher's gateway meta-graph: a
// shard-local segment (node path + Eq. 2 cost) between two meta
// vertices. transit marks edges imported from another shard's digest.
type metaEdge struct {
	to      int
	cost    float64
	path    []int
	transit bool
}

// stitch builds cross-shard paths over the gateway meta-graph. The
// vertices are the producer plus every shard's exported gateways; the
// edges are (1) the source shard's batched producer→gateway segments
// and (2) every other shard's digest rows. A deterministic Dijkstra
// over this graph finds the cheapest route to each of the destination
// shard's gateways — including third-region detours the old two-segment
// stitch could not see, at no per-lookup queries against transit
// shards. Each exit gateway g then contributes one candidate (meta
// route + the destination shard's g→consumer segment); candidates are
// ranked by summed cost and up to K loop-free ones within the hop
// bound are kept.
func (f *Federation) stitch(producer, consumer, ss, ds int) [][]int {
	var gatesAll []int
	for t := 0; t < f.part.Shards(); t++ {
		gatesAll = append(gatesAll, f.gatesOf(t)...)
	}
	adj := make(map[int][]metaEdge, len(gatesAll)+1)
	segs := f.shards[ss].LookupSegments(producer, gatesAll)
	f.tel.segmentQueries.Inc()
	for i, s := range segs {
		if gatesAll[i] == producer || len(s.Path) == 0 {
			continue
		}
		adj[producer] = append(adj[producer], metaEdge{to: gatesAll[i], cost: s.Cost, path: s.Path})
	}
	for t := 0; t < f.part.Shards(); t++ {
		if t == ss {
			continue // producer→gateway segments already cover ss's view
		}
		d := f.digestFor(t)
		if d == nil {
			continue
		}
		for i := range d.entries {
			e := &d.entries[i]
			adj[e.from] = append(adj[e.from], metaEdge{to: e.to, cost: e.cost, path: e.path, transit: true})
		}
	}

	// Deterministic Dijkstra over the meta-graph (|V| is a few dozen at
	// most, so linear-scan extraction beats a heap and ties break on the
	// fixed vertex order).
	order := append([]int{producer}, gatesAll...)
	dist := map[int]float64{producer: 0}
	type pred struct {
		prev int
		edge *metaEdge
	}
	from := make(map[int]pred, len(gatesAll))
	done := make(map[int]bool, len(gatesAll)+1)
	for {
		u, best := -1, math.Inf(1)
		for _, v := range order {
			if d, ok := dist[v]; ok && !done[v] && d < best {
				u, best = v, d
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for i := range adj[u] {
			e := &adj[u][i]
			nd := best + e.cost
			if d, ok := dist[e.to]; !ok || nd < d {
				dist[e.to] = nd
				from[e.to] = pred{prev: u, edge: e}
			}
		}
	}

	// Exit candidates are the destination region's gateways. Each exit
	// leg g→consumer is answered by g's owning shard — for a split
	// region that may be a sibling sub-shard of ds, the only shard that
	// sees g's outgoing links.
	var exits []int
	var exitSegs []brain.Segment
	for _, u := range f.part.PeerShards(ds) {
		if f.ShardDown(u) {
			continue
		}
		gs := f.gatesOf(u)
		segs := f.shards[u].LookupSegmentsInto(gs, consumer)
		f.tel.segmentQueries.Inc()
		exits = append(exits, gs...)
		exitSegs = append(exitSegs, segs...)
	}
	type cand struct {
		path []int
		cost float64
		gate int
	}
	var cands []cand
	for i, g := range exits {
		f.tel.stitchCandidates.Inc()
		dg, ok := dist[g]
		if !ok {
			continue
		}
		es := exitSegs[i]
		if len(es.Path) == 0 {
			continue
		}
		// Splice the meta route's segments producer→…→g, then the exit
		// segment (es.Path[0] == g; a zero-hop exit appends nothing).
		full := []int{producer}
		transit := false
		var walk func(v int) bool
		walk = func(v int) bool {
			p, ok := from[v]
			if !ok {
				return v == producer
			}
			if !walk(p.prev) {
				return false
			}
			full = append(full, p.edge.path[1:]...)
			transit = transit || p.edge.transit
			return true
		}
		if !walk(g) {
			continue
		}
		full = append(full, es.Path[1:]...)
		if hasRepeats(full) {
			continue
		}
		if transit {
			f.tel.stitchTransit.Inc()
		}
		cands = append(cands, cand{path: full, cost: dg + es.Cost, gate: g})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].cost != cands[b].cost {
			return cands[a].cost < cands[b].cost
		}
		return cands[a].gate < cands[b].gate
	})
	k := f.cfg.Brain.K
	if k <= 0 {
		k = brain.DefaultK
	}
	maxHops := f.cfg.Brain.MaxHops
	if maxHops <= 0 {
		maxHops = brain.DefaultMaxHops
	}
	var out [][]int
	for _, c := range cands {
		if len(c.path)-1 > maxHops || duplicatePath(out, c.path) {
			continue
		}
		out = append(out, c.path)
		if len(out) == k {
			break
		}
	}
	if len(out) == 0 && len(cands) > 0 {
		// Every candidate exceeds the hop bound: keep the cheapest
		// anyway, like the Brain's last-resort relays — a long path
		// beats refusing the viewer.
		out = [][]int{cands[0].path}
	}
	return out
}

// degradedStitch serves a cross-shard lookup with one side partitioned
// away: the reachable shard contributes its best gateway segment; the
// unreachable side is bridged with a single optimistic hop.
func (f *Federation) degradedStitch(producer, consumer, ss, ds int, srcDown, dstDown bool) []int {
	gates := f.gatesOf(ds)
	switch {
	case srcDown && !dstDown:
		// Only the consumer side can route: producer → g optimistic,
		// g → consumer decided by the destination shard.
		bestCost := 0.0
		var best []int
		for _, g := range gates {
			if g == producer || g == consumer {
				p := []int{producer, consumer}
				if g == producer {
					return p
				}
				return p // g == consumer: direct producer→consumer hop
			}
			pathsB := f.shards[ds].LookupByProducer(g, consumer)
			if len(pathsB) == 0 {
				continue
			}
			cost := f.shards[ds].PathCost(pathsB[0])
			if best == nil || cost < bestCost {
				best = append([]int{producer}, pathsB[0]...)
				bestCost = cost
			}
		}
		if best != nil && hasRepeats(best) {
			return nil
		}
		return best
	case dstDown && !srcDown:
		// Only the producer side can route: producer → g decided by
		// the source shard, g → consumer optimistic.
		bestCost := 0.0
		var best []int
		for _, g := range gates {
			if g == consumer {
				continue // would need the down shard's view anyway
			}
			segA := [][]int{{producer}}
			if g != producer {
				segA = f.shards[ss].LookupByProducer(producer, g)
				if len(segA) == 0 {
					continue
				}
			}
			cost := f.shards[ss].PathCost(segA[0])
			if best == nil || cost < bestCost {
				best = append(append([]int(nil), segA[0]...), consumer)
				bestCost = cost
			}
		}
		if best != nil && hasRepeats(best) {
			return nil
		}
		return best
	}
	return nil
}

func hasRepeats(path []int) bool {
	seen := make(map[int]bool, len(path))
	for _, n := range path {
		if seen[n] {
			return true
		}
		seen[n] = true
	}
	return false
}

func duplicatePath(have [][]int, p []int) bool {
	for _, h := range have {
		if len(h) != len(p) {
			continue
		}
		same := true
		for i := range h {
			if h[i] != p[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// applyStitchOp installs a committed stitch-cache log entry. Idempotent
// (last write wins), so replays and duplicate commits are harmless.
func (f *Federation) applyStitchOp(value []byte) {
	k, paths, ok := decodeStitchOp(value)
	if !ok {
		return
	}
	f.mu.Lock()
	f.stitchCache[k] = paths
	f.mu.Unlock()
}

// DropStitchCache clears the in-memory stitch cache — the model of a
// front-end restart losing its soft state.
func (f *Federation) DropStitchCache() {
	f.mu.Lock()
	f.stitchCache = make(map[pairKey][][]int)
	f.mu.Unlock()
}

// RecoverStitchCache replays the per-shard Paxos logs through the
// stitch-op handler, rebuilding the cache a restarted front-end needs
// for the cached-stitch fallback rung. It returns how many entries the
// replay installed. A no-op without replication.
func (f *Federation) RecoverStitchCache() int {
	if f.groups == nil {
		return 0
	}
	n := 0
	for _, g := range f.groups {
		for _, v := range g.rb.Replica().AppliedValues() {
			if _, _, ok := decodeStitchOp(v); ok {
				f.applyStitchOp(v)
				n++
			}
		}
	}
	return n
}

// SetDraining marks a relay as (not) draining in every shard: any shard
// may route a stitched segment through the node, so the exclusion must
// be federation-wide.
func (f *Federation) SetDraining(id int, v bool) {
	for _, sh := range f.shards {
		sh.SetDraining(id, v)
	}
}

// AdvanceEpoch advances every reachable shard's routing epoch in
// parallel and records per-shard durations — the number BENCH_7 compares
// against the monolith's single global epoch.
func (f *Federation) AdvanceEpoch() {
	idx := make([]int, len(f.shards))
	for i := range idx {
		idx[i] = i
	}
	durs, _ := runner.Map(f.cfg.Brain.Recompute, idx, func(s int) time.Duration {
		if f.ShardDown(s) {
			return 0
		}
		start := time.Now()
		f.shards[s].AdvanceEpoch()
		return time.Since(start)
	})
	f.mu.Lock()
	copy(f.epochTimes, durs)
	f.mu.Unlock()
	f.tel.epochs.Inc()
	for _, d := range durs {
		if d > 0 {
			f.tel.epochNs.Observe(d.Nanoseconds())
		}
	}
	// Each shard exports its refreshed inter-region digest with the
	// epoch, so lookups between epochs stitch from warm summaries.
	f.RefreshDigests()
}

// InvalidateAll drops every shard's PIB (epoch boundary without new
// reports; mirrors Brain.InvalidateAll).
func (f *Federation) InvalidateAll() {
	for _, sh := range f.shards {
		sh.InvalidateAll()
	}
}

// PrefetchPaths warms paths from a stream's producer to every possible
// consumer, fanning the per-consumer-shard work across the Recompute
// pool. Cross-shard destinations go through the normal stitch, so the
// stitch cache is warm before a partition hits.
func (f *Federation) PrefetchPaths(sid uint32) (map[int][][]int, error) {
	f.mu.Lock()
	producer, ok := f.sib[sid]
	f.mu.Unlock()
	if !ok {
		return nil, brain.ErrUnknownStream
	}
	groups := make([][]int, f.part.Shards())
	for d := 0; d < f.part.N; d++ {
		if d == producer {
			continue
		}
		s := f.part.ShardOf(d)
		groups[s] = append(groups[s], d)
	}
	idx := make([]int, len(groups))
	for i := range idx {
		idx[i] = i
	}
	type entry struct {
		d     int
		paths [][]int
	}
	res, _ := runner.Map(f.cfg.Brain.Recompute, idx, func(s int) []entry {
		out := make([]entry, 0, len(groups[s]))
		for _, d := range groups[s] {
			paths, _ := f.lookupPath(producer, d)
			if len(paths) > 0 {
				out = append(out, entry{d: d, paths: paths})
			}
		}
		return out
	})
	merged := make(map[int][][]int, f.part.N)
	for _, shardEntries := range res {
		for _, e := range shardEntries {
			merged[e.d] = e.paths
		}
	}
	return merged, nil
}

// Metrics merges shard metrics with the federation's own lookup counts
// (shard Lookups are not summed: the front-end serves lookups, shards
// only see segment queries).
func (f *Federation) Metrics() brain.Metrics {
	var m brain.Metrics
	for _, sh := range f.shards {
		sm := sh.Metrics()
		m.PIBHits += sm.PIBHits
		m.PIBMisses += sm.PIBMisses
		m.LastResortUsed += sm.LastResortUsed
		m.OverloadAlarms += sm.OverloadAlarms
	}
	m.Lookups = f.tel.lookupsLocal.Load() + f.tel.lookupsCross.Load()
	f.mu.Lock()
	m.StreamsActive = len(f.sib)
	f.mu.Unlock()
	return m
}

// GlobalView merges the shards' fleet-health summaries. Each link is
// owned by exactly one shard (its probing node's), and node state is
// scoped by ownership, so sums are exact, not estimates.
func (f *Federation) GlobalView() brain.GlobalView {
	merged := brain.GlobalView{
		Nodes:     f.part.N,
		Producers: make(map[uint32]int),
	}
	f.mu.Lock()
	merged.Streams = len(f.sib)
	for sid, p := range f.sib {
		merged.Producers[sid] = p
	}
	f.mu.Unlock()
	utilSum, lossSum, up := 0.0, 0.0, 0
	for s, sh := range f.shards {
		v := sh.GlobalView()
		// A shard reports NodesDown over the whole fleet, but only ever
		// marks nodes it ingests reports about; count only owned nodes
		// so a down gateway seen by two shards is not double-counted.
		down := 0
		for _, id := range f.part.Nodes(s) {
			if sh.View().NodeDown(id) {
				down++
			}
		}
		merged.NodesDown += down
		merged.NodesStale += v.NodesStale
		merged.Links += v.Links
		merged.LinksDown += v.LinksDown
		shardUp := v.Links - v.LinksDown
		utilSum += v.MeanLinkUtil * float64(shardUp)
		lossSum += v.MeanLinkLoss * float64(shardUp)
		up += shardUp
		if v.MaxLinkUtil > merged.MaxLinkUtil {
			merged.MaxLinkUtil = v.MaxLinkUtil
		}
		if v.MaxLinkLoss > merged.MaxLinkLoss {
			merged.MaxLinkLoss = v.MaxLinkLoss
		}
		if len(v.NodeTelemetry) > 0 {
			if merged.NodeTelemetry == nil {
				merged.NodeTelemetry = make(map[int]telemetry.Snapshot)
				merged.FanOut = make(map[uint32]int)
			}
			for id, snap := range v.NodeTelemetry {
				merged.NodeTelemetry[id] = snap
				merged.Fleet.Merge(snap)
			}
			for sid, n := range v.FanOut {
				merged.FanOut[sid] += n
			}
		}
	}
	if up > 0 {
		merged.MeanLinkUtil = utilSum / float64(up)
		merged.MeanLinkLoss = lossSum / float64(up)
	}
	return merged
}

// Close stops every shard (and its Paxos group, when replicated).
func (f *Federation) Close() {
	if f.groups != nil {
		for _, g := range f.groups {
			g.close()
		}
		return // group.close closes the shard Brain via ReplicatedBrain
	}
	for _, sh := range f.shards {
		sh.Close()
	}
}

// shardGroup is a shard's Paxos deployment: the shard Brain as replica
// 0 plus standby log replicas (the region's other control DCs). SIB ops
// commit through the group before they apply, so a shard fails over
// without losing stream registrations.
type shardGroup struct {
	rb       *brain.ReplicatedBrain
	standbys []*replication.Replica
	tr       *groupTransport
}

// groupTransport delivers Paxos messages within one shard group with a
// fixed 1 ms clock delay (in-region control traffic).
type groupTransport struct {
	clock sim.Clock
	group *shardGroup
}

func (t *groupTransport) Send(from, to int, m replication.Msg) {
	t.clock.AfterFunc(time.Millisecond, func() {
		g := t.group
		if to == 0 {
			g.rb.OnMessage(from, m)
			return
		}
		if to-1 < len(g.standbys) {
			g.standbys[to-1].OnMessage(from, m)
		}
	})
}

func newShardGroup(local *brain.Brain, replicas int, clock sim.Clock) *shardGroup {
	peers := make([]int, replicas)
	for i := range peers {
		peers[i] = i
	}
	g := &shardGroup{}
	tr := &groupTransport{clock: clock, group: g}
	g.tr = tr
	g.rb = brain.NewReplicated(local, 0, peers, tr, clock)
	for i := 1; i < replicas; i++ {
		g.standbys = append(g.standbys, replication.NewReplica(i, peers, tr, clock))
	}
	return g
}

func (g *shardGroup) close() {
	for _, r := range g.standbys {
		r.Close()
	}
	g.rb.Close()
}
