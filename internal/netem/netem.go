// Package netem is the packet-level network emulator that substitutes for
// Alibaba's backbone: directed links with propagation delay, jitter,
// time-varying random loss, token-bucket bandwidth with a bounded queue,
// and per-link utilization/loss accounting (the statistics overlay nodes
// report to the Streaming Brain's Global Discovery module, §4.2).
//
// The emulator runs on a sim.Loop; Send schedules an asynchronous delivery
// to the destination's handler at the emulated arrival time.
package netem

import (
	"fmt"
	"time"

	"livenet/internal/sim"
	"livenet/internal/telemetry"
)

// Handler receives delivered packets on a node. The data slice is
// BORROWED: it is only valid for the duration of the call (the backing
// slab is recycled once the handler returns, exactly like udprun's
// pooled receive buffers); retain a copy if needed.
type Handler func(from int, data []byte)

// LinkConfig describes one directed link.
type LinkConfig struct {
	// RTT is the round-trip propagation delay; one-way is RTT/2.
	RTT time.Duration
	// Jitter is the stddev of one-way delay noise (truncated at 0).
	Jitter time.Duration
	// BandwidthBps is the link capacity in bits per second.
	BandwidthBps float64
	// Loss returns the packet loss probability at the given time,
	// allowing diurnal loss patterns (Figure 13). Nil means no loss.
	Loss func(now time.Duration) float64
	// Burst layers per-link Gilbert-Elliott bursty loss on top of Loss.
	// Unlike a shared GilbertElliott closure, the Markov state lives in
	// the link itself, so one config value can safely parameterize many
	// links (each advances independently). Nil means no bursty episode.
	Burst *BurstConfig
	// MaxQueue bounds the queueing delay; packets that would wait longer
	// are dropped (tail drop).
	MaxQueue time.Duration
}

// BurstConfig parameterizes two-state Gilbert-Elliott bursty loss: the
// link alternates between a good state (loss PGood) and a bad state
// (loss PBad) with mean sojourn times GoodMean/BadMean.
type BurstConfig struct {
	PGood, PBad       float64
	GoodMean, BadMean time.Duration
}

// burstState is the per-link Markov chain for BurstConfig.
type burstState struct {
	cfg        BurstConfig
	inBad      bool
	stateUntil time.Duration
}

// loss advances the chain to now and returns the current state's loss.
func (b *burstState) loss(now time.Duration, rng *sim.Rand) float64 {
	for now >= b.stateUntil {
		if b.inBad {
			b.inBad = false
			b.stateUntil = now + time.Duration(rng.Exp(float64(b.cfg.GoodMean)))
		} else {
			b.inBad = true
			b.stateUntil = now + time.Duration(rng.Exp(float64(b.cfg.BadMean)))
		}
	}
	if b.inBad {
		return b.cfg.PBad
	}
	return b.cfg.PGood
}

// DefaultLinkConfig fills in defaults for zero fields.
func (c LinkConfig) withDefaults() LinkConfig {
	if c.BandwidthBps <= 0 {
		c.BandwidthBps = 1e9
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 200 * time.Millisecond
	}
	return c
}

// Stats is the per-link measurement snapshot a node reports to Global
// Discovery.
type Stats struct {
	RTT         time.Duration // propagation + current queueing
	LossRate    float64       // observed drop fraction over the last window
	Utilization float64       // offered load / capacity over the last window
	SentPackets uint64
	LostPackets uint64
}

type link struct {
	cfg LinkConfig
	// down is first-class link failure state: a down link swallows every
	// packet (a cut fiber, not a congested one) until SetLinkUp restores it.
	down      bool
	burst     *burstState
	busyUntil time.Duration
	// lastArrival enforces FIFO delivery: jitter varies per-packet delay
	// but real links do not reorder, so arrivals are clamped monotone.
	lastArrival time.Duration

	// Two-bucket rolling window for rate/loss accounting.
	windowStart time.Duration
	curBytes    int64
	curSent     uint64
	curLost     uint64
	prevBytes   int64
	prevSent    uint64
	prevLost    uint64

	totalSent uint64
	totalLost uint64
}

const statsWindow = time.Second

func (l *link) roll(now time.Duration) {
	for now-l.windowStart >= statsWindow {
		l.prevBytes, l.prevSent, l.prevLost = l.curBytes, l.curSent, l.curLost
		l.curBytes, l.curSent, l.curLost = 0, 0, 0
		l.windowStart += statsWindow
		if now-l.windowStart >= 2*statsWindow {
			// Long idle: fast-forward.
			l.prevBytes, l.prevSent, l.prevLost = 0, 0, 0
			l.windowStart = now
		}
	}
}

// Network is the emulated network fabric.
type Network struct {
	loop     *sim.Loop
	rng      *sim.Rand
	handlers map[int]Handler
	links    map[int64]*link
	// dispatch is the delivery callback bound once at construction, so
	// Send schedules deliveries without allocating a closure per packet.
	dispatch sim.MsgFunc
	// free recycles datagram slabs: send pops one (or grows a new slab),
	// deliver pushes it back after the handler returns. The emulator runs
	// single-threaded on the loop, so no locking. This is what keeps the
	// steady-state send path allocation-free.
	free [][]byte

	// Fabric-wide telemetry handles (unregistered until Instrument).
	telSent  *telemetry.Counter
	telLost  *telemetry.Counter
	telBytes *telemetry.Counter
}

func key(from, to int) int64 { return int64(from)<<32 | int64(uint32(to)) }

// New returns an empty network on the given loop.
func New(loop *sim.Loop, rng *sim.Rand) *Network {
	n := &Network{
		loop:     loop,
		rng:      rng,
		handlers: make(map[int]Handler),
		links:    make(map[int64]*link),
	}
	n.dispatch = n.deliver
	n.Instrument(nil)
	return n
}

// Instrument registers the fabric-wide netem.* counters in r (see
// OBSERVABILITY.md); nil keeps private unregistered instruments. Per-link
// accounting is unaffected — LinkStats stays the Global Discovery source.
func (n *Network) Instrument(r *telemetry.Registry) {
	n.telSent = r.Counter("netem.packets_sent")
	n.telLost = r.Counter("netem.packets_lost")
	n.telBytes = r.Counter("netem.bytes_sent")
}

// maxFreeSlabs bounds the recycled-slab pool (idle buffers only; slabs
// in flight are not in the list). Beyond it slabs fall to the GC.
const maxFreeSlabs = 1024

// slab returns an empty datagram buffer with at least size capacity,
// recycled when possible.
func (n *Network) slab(size int) []byte {
	if k := len(n.free) - 1; k >= 0 {
		b := n.free[k]
		n.free = n.free[:k]
		if cap(b) >= size {
			return b[:0]
		}
	}
	return make([]byte, 0, size)
}

// deliver hands a packet to the destination handler (looked up at
// delivery time, preserving Handle-replacement semantics) and recycles
// the slab — handlers borrow the data slice (see Handler).
func (n *Network) deliver(from, to int, data []byte) {
	if h := n.handlers[to]; h != nil {
		h(from, data)
	}
	if len(n.free) < maxFreeSlabs {
		n.free = append(n.free, data)
	}
}

// Handle registers the delivery handler for a node. Registering twice
// replaces the handler.
func (n *Network) Handle(node int, h Handler) { n.handlers[node] = h }

// AddLink installs a directed link from→to, replacing any existing one.
func (n *Network) AddLink(from, to int, cfg LinkConfig) {
	l := &link{cfg: cfg.withDefaults(), windowStart: n.loop.Now()}
	if l.cfg.Burst != nil {
		l.burst = &burstState{cfg: *l.cfg.Burst}
	}
	n.links[key(from, to)] = l
}

// AddDuplex installs the link in both directions.
func (n *Network) AddDuplex(a, b int, cfg LinkConfig) {
	n.AddLink(a, b, cfg)
	n.AddLink(b, a, cfg)
}

// HasLink reports whether a from→to link exists.
func (n *Network) HasLink(from, to int) bool {
	_, ok := n.links[key(from, to)]
	return ok
}

// Send transmits data from→to. It returns an error if no link exists.
// The data is copied; the caller may reuse the buffer immediately.
// Delivery (or silent drop) happens asynchronously on the loop.
func (n *Network) Send(from, to int, data []byte) error {
	return n.send(from, to, data, nil)
}

// SendVec transmits the scatter-gather datagram hdr++payload (the
// node's zero-copy fan-out emits a per-link header plus a shared payload
// tail). Both slices are copied before return, exactly like Send; the
// emulated packet is byte-identical to Send(from, to, hdr++payload) and
// consumes the same RNG draws, so simulations replay identically
// whichever entry point the sender uses.
func (n *Network) SendVec(from, to int, hdr, payload []byte) error {
	return n.send(from, to, hdr, payload)
}

// Vec mirrors wire.Vec without importing it (netem sits below the wire
// layer): one datagram as Hdr++Payload.
type Vec struct {
	Hdr     []byte
	Payload []byte
}

// SendBatch transmits a batch of datagrams to one destination in order.
// The emulator has no syscall cost to amortize, so this is exactly a
// loop over SendVec — same packets, same RNG draws, same arrival
// schedule as serial sends (the determinism tests rely on this).
func (n *Network) SendBatch(from, to int, vecs []Vec) error {
	var firstErr error
	for _, v := range vecs {
		if err := n.send(from, to, v.Hdr, v.Payload); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (n *Network) send(from, to int, hdr, payload []byte) error {
	l := n.links[key(from, to)]
	if l == nil {
		return fmt.Errorf("netem: no link %d->%d", from, to)
	}
	size := len(hdr) + len(payload)
	now := n.loop.Now()
	l.roll(now)
	l.totalSent++
	l.curSent++
	l.curBytes += int64(size)
	n.telSent.Inc()
	n.telBytes.Add(uint64(size))

	// A down link swallows everything (cut fiber semantics): the sender
	// sees nothing, exactly like UDP into a black hole.
	if l.down {
		l.totalLost++
		l.curLost++
		n.telLost.Inc()
		return nil
	}

	// Queueing + serialization.
	queueWait := l.busyUntil - now
	if queueWait < 0 {
		queueWait = 0
	}
	if queueWait > l.cfg.MaxQueue {
		l.totalLost++
		l.curLost++
		n.telLost.Inc()
		return nil // tail drop: sender sees nothing, like real UDP
	}
	serialization := time.Duration(float64(size*8) / l.cfg.BandwidthBps * float64(time.Second))
	l.busyUntil = now + queueWait + serialization

	// Random loss: the base (possibly diurnal) rate, raised to the bursty
	// episode's state loss when a Gilbert-Elliott chain is attached.
	p := 0.0
	if l.cfg.Loss != nil {
		p = l.cfg.Loss(now)
	}
	if l.burst != nil {
		if bp := l.burst.loss(now, n.rng); bp > p {
			p = bp
		}
	}
	if p > 0 && n.rng.Bernoulli(p) {
		l.totalLost++
		l.curLost++
		n.telLost.Inc()
		return nil
	}

	oneWay := l.cfg.RTT / 2
	if l.cfg.Jitter > 0 {
		j := time.Duration(n.rng.Normal(0, float64(l.cfg.Jitter)))
		if j < 0 {
			j = -j / 2 // early arrivals are rarer and smaller than late ones
		}
		oneWay += j
	}
	arrival := l.busyUntil + oneWay
	// FIFO: a packet never overtakes its predecessor on the same link.
	if arrival <= l.lastArrival {
		arrival = l.lastArrival + time.Microsecond
	}
	l.lastArrival = arrival
	buf := n.slab(size)
	buf = append(append(buf, hdr...), payload...)
	n.loop.AtMsg(arrival, n.dispatch, from, to, buf)
	return nil
}

// LinkStats returns the measurement snapshot for from→to (zero Stats and
// false if the link does not exist).
func (n *Network) LinkStats(from, to int) (Stats, bool) {
	l := n.links[key(from, to)]
	if l == nil {
		return Stats{}, false
	}
	now := n.loop.Now()
	l.roll(now)
	queue := l.busyUntil - now
	if queue < 0 {
		queue = 0
	}
	sent := l.prevSent + l.curSent
	lost := l.prevLost + l.curLost
	var lossRate float64
	if sent > 0 {
		lossRate = float64(lost) / float64(sent)
	} else if l.cfg.Loss != nil {
		// Idle link: report the configured loss (the "UDP ping" probe a
		// node uses when it has not transmitted recently, §4.2).
		lossRate = l.cfg.Loss(now)
	}
	elapsed := (now - l.windowStart) + statsWindow
	util := 0.0
	if elapsed > 0 {
		bits := float64(l.prevBytes+l.curBytes) * 8
		util = bits / elapsed.Seconds() / l.cfg.BandwidthBps
	}
	if util > 1 {
		util = 1
	}
	return Stats{
		RTT:         l.cfg.RTT + 2*queue,
		LossRate:    lossRate,
		Utilization: util,
		SentPackets: l.totalSent,
		LostPackets: l.totalLost,
	}, true
}

// Ping emulates the UDP ping probe used by Global Discovery for links the
// node has not recently transmitted over: it returns the link's current
// RTT (propagation + queueing) without sending data packets. A down link
// does not answer pings.
func (n *Network) Ping(from, to int) (time.Duration, bool) {
	if l := n.links[key(from, to)]; l == nil || l.down {
		return 0, false
	}
	s, ok := n.LinkStats(from, to)
	if !ok {
		return 0, false
	}
	return s.RTT, true
}

// SetLinkUp flips the first-class up/down state of an existing link.
// Packets already in flight are unaffected (they left before the cut);
// packets sent while down are swallowed. Returns false if no such link.
func (n *Network) SetLinkUp(from, to int, up bool) bool {
	l := n.links[key(from, to)]
	if l == nil {
		return false
	}
	l.down = !up
	return true
}

// LinkUp reports whether the from→to link exists and is up.
func (n *Network) LinkUp(from, to int) bool {
	l := n.links[key(from, to)]
	return l != nil && !l.down
}

// SetBurst attaches (or, with nil, clears) a Gilbert-Elliott bursty-loss
// chain on an existing link. The chain's state is per link; installing the
// same config on many links gives each an independent chain.
func (n *Network) SetBurst(from, to int, cfg *BurstConfig) bool {
	l := n.links[key(from, to)]
	if l == nil {
		return false
	}
	if cfg == nil {
		l.burst = nil
	} else {
		l.burst = &burstState{cfg: *cfg}
	}
	return true
}

// SetLoss swaps the loss function on an existing link (used by failure
// injection tests).
func (n *Network) SetLoss(from, to int, loss func(now time.Duration) float64) bool {
	l := n.links[key(from, to)]
	if l == nil {
		return false
	}
	l.cfg.Loss = loss
	return true
}

// SetBandwidth changes the capacity of an existing link.
func (n *Network) SetBandwidth(from, to int, bps float64) bool {
	l := n.links[key(from, to)]
	if l == nil || bps <= 0 {
		return false
	}
	l.cfg.BandwidthBps = bps
	return true
}

// GilbertElliott returns a bursty-loss function: a two-state Markov chain
// alternating between a good state (loss pGood) and a bad state (loss
// pBad), with mean sojourn times goodMean/badMean. Bursty loss stresses
// recovery differently from Bernoulli loss: consecutive packets vanish
// together, which is what drains play buffers in practice. The function
// advances its state based on elapsed time between calls, so it works for
// any packet rate. Not safe for use on multiple links (state is per
// closure) — create one per link, or prefer LinkConfig.Burst / SetBurst,
// which keep an independent chain inside each link.
func GilbertElliott(rng *sim.Rand, pGood, pBad float64, goodMean, badMean time.Duration) func(now time.Duration) float64 {
	inBad := false
	var stateUntil time.Duration
	return func(now time.Duration) float64 {
		for now >= stateUntil {
			if inBad {
				inBad = false
				stateUntil = now + time.Duration(rng.Exp(float64(goodMean)))
			} else {
				inBad = true
				stateUntil = now + time.Duration(rng.Exp(float64(badMean)))
			}
		}
		if inBad {
			return pBad
		}
		return pGood
	}
}
