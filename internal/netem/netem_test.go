package netem

import (
	"reflect"
	"testing"
	"time"

	"livenet/internal/sim"
)

func newNet(seed int64) (*sim.Loop, *Network) {
	loop := sim.NewLoop(seed)
	return loop, New(loop, loop.RNG("netem"))
}

func TestDeliveryAfterPropagation(t *testing.T) {
	loop, net := newNet(1)
	net.AddLink(0, 1, LinkConfig{RTT: 40 * time.Millisecond, BandwidthBps: 1e9})
	var arrived time.Duration
	net.Handle(1, func(from int, data []byte) {
		if from != 0 || string(data) != "hi" {
			t.Fatalf("bad delivery from=%d data=%q", from, data)
		}
		arrived = loop.Now()
	})
	if err := net.Send(0, 1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	loop.Run()
	if arrived < 20*time.Millisecond || arrived > 21*time.Millisecond {
		t.Fatalf("one-way delivery at %v, want ~20ms", arrived)
	}
}

func TestNoLinkError(t *testing.T) {
	_, net := newNet(1)
	if err := net.Send(0, 1, []byte("x")); err == nil {
		t.Fatal("want error for missing link")
	}
}

func TestDataCopied(t *testing.T) {
	loop, net := newNet(1)
	net.AddLink(0, 1, LinkConfig{RTT: 10 * time.Millisecond})
	got := make(chan byte, 1)
	net.Handle(1, func(_ int, data []byte) { got <- data[0] })
	buf := []byte{42}
	net.Send(0, 1, buf)
	buf[0] = 99 // mutate after send
	loop.Run()
	if b := <-got; b != 42 {
		t.Fatalf("delivered %d; send must copy", b)
	}
}

func TestSerializationDelay(t *testing.T) {
	loop, net := newNet(1)
	// 1 Mbps link: a 12500-byte packet takes 100 ms to serialize.
	net.AddLink(0, 1, LinkConfig{RTT: 0, BandwidthBps: 1e6, MaxQueue: time.Hour})
	var arrived time.Duration
	net.Handle(1, func(int, []byte) { arrived = loop.Now() })
	net.Send(0, 1, make([]byte, 12500))
	loop.Run()
	if arrived < 99*time.Millisecond || arrived > 101*time.Millisecond {
		t.Fatalf("arrival %v, want ~100ms serialization", arrived)
	}
}

func TestQueueingOrderAndDrop(t *testing.T) {
	loop, net := newNet(1)
	// 1 Mbps, 50 ms max queue: each 1250-byte packet serializes in 10 ms,
	// so at most ~6 packets fit before tail drop.
	net.AddLink(0, 1, LinkConfig{RTT: 0, BandwidthBps: 1e6, MaxQueue: 50 * time.Millisecond})
	delivered := 0
	var last time.Duration
	net.Handle(1, func(int, []byte) {
		delivered++
		if loop.Now() < last {
			t.Fatal("FIFO violated")
		}
		last = loop.Now()
	})
	for i := 0; i < 20; i++ {
		net.Send(0, 1, make([]byte, 1250))
	}
	loop.Run()
	if delivered < 5 || delivered > 7 {
		t.Fatalf("delivered %d of 20, want ~6 (queue bound)", delivered)
	}
	s, _ := net.LinkStats(0, 1)
	if s.LostPackets != uint64(20-delivered) {
		t.Fatalf("lost = %d, want %d", s.LostPackets, 20-delivered)
	}
}

func TestRandomLoss(t *testing.T) {
	loop, net := newNet(2)
	net.AddLink(0, 1, LinkConfig{RTT: time.Millisecond, Loss: func(time.Duration) float64 { return 0.3 }})
	delivered := 0
	net.Handle(1, func(int, []byte) { delivered++ })
	const n = 2000
	send := func() {}
	i := 0
	send = func() {
		if i >= n {
			return
		}
		i++
		net.Send(0, 1, []byte{1})
		loop.AfterFunc(time.Millisecond, send)
	}
	send()
	loop.Run()
	frac := float64(delivered) / n
	if frac < 0.64 || frac > 0.76 {
		t.Fatalf("delivered fraction %v with 30%% loss", frac)
	}
}

func TestTimeVaryingLoss(t *testing.T) {
	loop, net := newNet(3)
	// Loss turns on after 1 second.
	net.AddLink(0, 1, LinkConfig{RTT: time.Millisecond, Loss: func(now time.Duration) float64 {
		if now > time.Second {
			return 1.0
		}
		return 0
	}})
	delivered := 0
	net.Handle(1, func(int, []byte) { delivered++ })
	for i := 0; i < 20; i++ {
		d := time.Duration(i) * 100 * time.Millisecond
		loop.AfterFunc(d, func() { net.Send(0, 1, []byte{1}) })
	}
	loop.Run()
	if delivered != 11 { // t=0..1000ms inclusive pass, later all dropped
		t.Fatalf("delivered %d, want 11", delivered)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	loop, net := newNet(4)
	net.AddLink(0, 1, LinkConfig{RTT: time.Millisecond, BandwidthBps: 8e6, MaxQueue: time.Hour})
	net.Handle(1, func(int, []byte) {})
	// Offer 4 Mbps for 3 seconds: 500 B packets every 1 ms.
	var tick func()
	i := 0
	tick = func() {
		if i >= 3000 {
			return
		}
		i++
		net.Send(0, 1, make([]byte, 500))
		loop.AfterFunc(time.Millisecond, tick)
	}
	tick()
	loop.Run()
	s, ok := net.LinkStats(0, 1)
	if !ok {
		t.Fatal("no stats")
	}
	if s.Utilization < 0.35 || s.Utilization > 0.65 {
		t.Fatalf("utilization = %v, want ~0.5", s.Utilization)
	}
}

func TestStatsIdleLinkReportsConfiguredLoss(t *testing.T) {
	_, net := newNet(5)
	net.AddLink(0, 1, LinkConfig{RTT: 10 * time.Millisecond, Loss: func(time.Duration) float64 { return 0.01 }})
	s, ok := net.LinkStats(0, 1)
	if !ok || s.LossRate != 0.01 {
		t.Fatalf("idle link loss = %v, want configured 0.01", s.LossRate)
	}
	if s.RTT != 10*time.Millisecond {
		t.Fatalf("idle RTT = %v", s.RTT)
	}
}

func TestPing(t *testing.T) {
	_, net := newNet(6)
	net.AddDuplex(0, 1, LinkConfig{RTT: 30 * time.Millisecond})
	rtt, ok := net.Ping(0, 1)
	if !ok || rtt != 30*time.Millisecond {
		t.Fatalf("ping = %v ok=%v", rtt, ok)
	}
	if _, ok := net.Ping(0, 9); ok {
		t.Fatal("ping over missing link should fail")
	}
}

func TestQueueRaisesMeasuredRTT(t *testing.T) {
	loop, net := newNet(7)
	net.AddLink(0, 1, LinkConfig{RTT: 10 * time.Millisecond, BandwidthBps: 1e6, MaxQueue: time.Hour})
	net.Handle(1, func(int, []byte) {})
	for i := 0; i < 10; i++ {
		net.Send(0, 1, make([]byte, 1250)) // 10 ms serialization each
	}
	s, _ := net.LinkStats(0, 1)
	if s.RTT <= 10*time.Millisecond {
		t.Fatalf("queued link should report inflated RTT, got %v", s.RTT)
	}
	loop.Run()
}

func TestSetBandwidthAndLoss(t *testing.T) {
	loop, net := newNet(8)
	net.AddLink(0, 1, LinkConfig{RTT: time.Millisecond, BandwidthBps: 1e9})
	if !net.SetBandwidth(0, 1, 1e6) {
		t.Fatal("SetBandwidth failed")
	}
	if net.SetBandwidth(0, 9, 1e6) {
		t.Fatal("SetBandwidth on missing link should fail")
	}
	if !net.SetLoss(0, 1, func(time.Duration) float64 { return 1 }) {
		t.Fatal("SetLoss failed")
	}
	delivered := 0
	net.Handle(1, func(int, []byte) { delivered++ })
	net.Send(0, 1, []byte{1})
	loop.Run()
	if delivered != 0 {
		t.Fatal("100% loss should drop everything")
	}
}

func TestDeterministicDeliveries(t *testing.T) {
	run := func() []time.Duration {
		loop, net := newNet(42)
		net.AddLink(0, 1, LinkConfig{
			RTT: 20 * time.Millisecond, Jitter: 2 * time.Millisecond,
			BandwidthBps: 5e6, Loss: func(time.Duration) float64 { return 0.05 },
		})
		var times []time.Duration
		net.Handle(1, func(int, []byte) { times = append(times, loop.Now()) })
		for i := 0; i < 100; i++ {
			d := time.Duration(i) * 2 * time.Millisecond
			loop.AfterFunc(d, func() { net.Send(0, 1, make([]byte, 1000)) })
		}
		loop.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different delivery times")
		}
	}
}

// TestFIFOProperty: regardless of jitter, packets on one link are never
// reordered (send order == delivery order).
func TestFIFOProperty(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		loop, net := newNet(seed)
		net.AddLink(0, 1, LinkConfig{
			RTT:          20 * time.Millisecond,
			Jitter:       8 * time.Millisecond, // aggressive jitter
			BandwidthBps: 10e6,
			MaxQueue:     time.Hour,
		})
		rng := loop.RNG("fifo")
		lastSeq := -1
		net.Handle(1, func(_ int, data []byte) {
			seq := int(data[0])<<8 | int(data[1])
			if seq <= lastSeq {
				t.Fatalf("seed %d: reorder %d after %d", seed, seq, lastSeq)
			}
			lastSeq = seq
		})
		// Sequence numbers are assigned in actual send order.
		sendSeq := 0
		for i := 0; i < 300; i++ {
			d := time.Duration(rng.Intn(100)) * time.Millisecond
			loop.AfterFunc(d, func() {
				net.Send(0, 1, []byte{byte(sendSeq >> 8), byte(sendSeq), 0, 0})
				sendSeq++
			})
		}
		loop.Run()
		if lastSeq < 250 {
			t.Fatalf("seed %d: only %d deliveries", seed, lastSeq)
		}
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	loop, net := newNet(9)
	ge := GilbertElliott(loop.RNG("ge"), 0.0, 0.5, 900*time.Millisecond, 100*time.Millisecond)
	net.AddLink(0, 1, LinkConfig{RTT: time.Millisecond, Loss: ge})
	var deliveredAt []int // packet index of each delivery
	idx := 0
	net.Handle(1, func(int, []byte) { deliveredAt = append(deliveredAt, idx) })
	var tick func()
	tick = func() {
		if idx >= 5000 {
			return
		}
		net.Send(0, 1, []byte{1})
		idx++
		loop.AfterFunc(2*time.Millisecond, tick)
	}
	tick()
	loop.Run()

	total := 5000
	lost := total - len(deliveredAt)
	// Expected loss ≈ 0.5 * 10% bad-state occupancy = ~5%.
	if lost < total/50 || lost > total/8 {
		t.Fatalf("lost %d of %d, want ~5%%", lost, total)
	}
	// Burstiness: count loss runs of length >= 3 — Bernoulli at the same
	// rate would almost never produce them; Gilbert-Elliott must.
	runs := 0
	prev := -1
	runLen := 0
	for _, d := range deliveredAt {
		gap := d - prev - 1
		if gap >= 3 {
			runs++
		}
		prev = d
		_ = runLen
	}
	if runs < 5 {
		t.Fatalf("only %d loss bursts of length >=3; GE loss should be bursty", runs)
	}
}

func TestSetLinkUpDown(t *testing.T) {
	loop, net := newNet(11)
	net.AddLink(0, 1, LinkConfig{RTT: 40 * time.Millisecond, BandwidthBps: 1e9})
	delivered := 0
	net.Handle(1, func(int, []byte) { delivered++ })

	net.Send(0, 1, []byte{1}) // in flight before the cut
	if !net.SetLinkUp(0, 1, false) {
		t.Fatal("SetLinkUp failed")
	}
	if net.LinkUp(0, 1) {
		t.Fatal("link should report down")
	}
	net.Send(0, 1, []byte{2}) // swallowed by the cut fiber
	if _, ok := net.Ping(0, 1); ok {
		t.Fatal("a down link must not answer pings")
	}
	loop.AfterFunc(time.Second, func() {
		net.SetLinkUp(0, 1, true)
		net.Send(0, 1, []byte{3})
	})
	loop.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2: the in-flight packet left before the cut, the post-restore one after", delivered)
	}
	s, _ := net.LinkStats(0, 1)
	if s.LostPackets != 1 {
		t.Fatalf("lost = %d, want the one swallowed packet", s.LostPackets)
	}
	if net.SetLinkUp(0, 9, false) {
		t.Fatal("SetLinkUp on missing link should fail")
	}
}

func TestSetLossMidRunSparesInFlight(t *testing.T) {
	loop, net := newNet(12)
	net.AddLink(0, 1, LinkConfig{RTT: 40 * time.Millisecond, BandwidthBps: 1e9})
	delivered := 0
	net.Handle(1, func(int, []byte) { delivered++ })
	net.Send(0, 1, []byte{1})
	// Flip to 100% loss while the first packet is still in flight.
	net.SetLoss(0, 1, func(time.Duration) float64 { return 1 })
	loop.AfterFunc(100*time.Millisecond, func() { net.Send(0, 1, []byte{2}) })
	loop.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1: loss rolls at send time, so in-flight packets keep their fate", delivered)
	}
}

func TestSetBandwidthMidRunSparesInFlight(t *testing.T) {
	loop, net := newNet(13)
	net.AddLink(0, 1, LinkConfig{RTT: time.Millisecond, BandwidthBps: 1e8, MaxQueue: time.Hour})
	var arrivals []time.Duration
	net.Handle(1, func(int, []byte) { arrivals = append(arrivals, loop.Now()) })
	pkt := make([]byte, 12500) // 1 ms serialization at 100 Mbps, 1 s at 100 kbps
	net.Send(0, 1, pkt)
	net.SetBandwidth(0, 1, 1e5)
	loop.AfterFunc(10*time.Millisecond, func() { net.Send(0, 1, pkt) })
	loop.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v, want 2", arrivals)
	}
	if arrivals[0] > 10*time.Millisecond {
		t.Fatalf("in-flight packet must keep the old capacity's service time, arrived %v", arrivals[0])
	}
	if arrivals[1] < time.Second {
		t.Fatalf("post-change packet must see the new capacity, arrived %v", arrivals[1])
	}
}

func TestBurstPerLinkIndependentChains(t *testing.T) {
	// One BurstConfig value parameterizes two links: each link advances
	// its own Markov chain (the closure-state footgun GilbertElliott has),
	// so the two loss patterns differ, yet the whole thing replays
	// identically for a fixed seed.
	run := func() (lostA, lostB map[int]bool) {
		loop, net := newNet(14)
		burst := &BurstConfig{PGood: 0, PBad: 1, GoodMean: 300 * time.Millisecond, BadMean: 100 * time.Millisecond}
		cfg := LinkConfig{RTT: time.Millisecond, BandwidthBps: 1e9, Burst: burst}
		net.AddLink(0, 1, cfg)
		net.AddLink(0, 2, cfg)
		got := map[int]map[int]bool{1: {}, 2: {}}
		for _, to := range []int{1, 2} {
			to := to
			net.Handle(to, func(_ int, data []byte) {
				got[to][int(data[0])<<8|int(data[1])] = true
			})
		}
		for i := 0; i < 2000; i++ {
			i := i
			loop.AfterFunc(time.Duration(i)*2*time.Millisecond, func() {
				pkt := []byte{byte(i >> 8), byte(i)}
				net.Send(0, 1, pkt)
				net.Send(0, 2, pkt)
			})
		}
		loop.Run()
		lostA, lostB = map[int]bool{}, map[int]bool{}
		for i := 0; i < 2000; i++ {
			if !got[1][i] {
				lostA[i] = true
			}
			if !got[2][i] {
				lostB[i] = true
			}
		}
		return lostA, lostB
	}
	a1, b1 := run()
	a2, b2 := run()
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(b1, b2) {
		t.Fatal("same seed produced different bursty-loss patterns")
	}
	if len(a1) == 0 || len(b1) == 0 {
		t.Fatal("bursty loss never fired")
	}
	// Independent chains: identical send schedules through a shared chain
	// would lose identical packet sets on both links.
	if reflect.DeepEqual(a1, b1) {
		t.Fatalf("both links lost the same %d packets; chains look shared", len(a1))
	}
}

func TestGilbertElliottStateEvolves(t *testing.T) {
	loop, _ := newNet(10)
	ge := GilbertElliott(loop.RNG("ge2"), 0.001, 0.9, time.Second, 200*time.Millisecond)
	sawGood, sawBad := false, false
	for tms := 0; tms < 30000; tms += 10 {
		p := ge(time.Duration(tms) * time.Millisecond)
		if p == 0.001 {
			sawGood = true
		}
		if p == 0.9 {
			sawBad = true
		}
	}
	if !sawGood || !sawBad {
		t.Fatalf("GE chain stuck: good=%v bad=%v", sawGood, sawBad)
	}
}
