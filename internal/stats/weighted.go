package stats

import "math"

// WSample accumulates weighted observations without storing them: the
// cohort engine folds millions of represented viewers into one of these
// per metric, where Sample (which keeps every value for percentiles)
// would need gigabytes. Distribution-level stats at cohort scale come
// from the exactly-simulated tracer views, which still use Sample.
// The zero value is ready to use.
type WSample struct {
	W     float64 // total weight
	Sum   float64 // Σ w·x
	SumSq float64 // Σ w·x²
}

// Add records value x with weight w (w <= 0 is ignored).
func (s *WSample) Add(x, w float64) {
	if w <= 0 {
		return
	}
	s.W += w
	s.Sum += w * x
	s.SumSq += w * x * x
}

// Merge folds another weighted sample into s.
func (s *WSample) Merge(o WSample) {
	s.W += o.W
	s.Sum += o.Sum
	s.SumSq += o.SumSq
}

// Mean returns the weighted mean (0 for zero weight).
func (s *WSample) Mean() float64 {
	if s.W == 0 {
		return 0
	}
	return s.Sum / s.W
}

// StdDev returns the weighted population standard deviation.
func (s *WSample) StdDev() float64 {
	if s.W == 0 {
		return 0
	}
	m := s.Mean()
	v := s.SumSq/s.W - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// WRatio is a success ratio over fractional trial weights: cohort
// batches observe an expected success probability p for n viewers at
// once, which Ratio's integer hit counting cannot express.
// The zero value is ready to use.
type WRatio struct {
	Hits, Total float64
}

// Observe records weight trials succeeding with probability p.
func (r *WRatio) Observe(p, weight float64) {
	if weight <= 0 {
		return
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	r.Total += weight
	r.Hits += p * weight
}

// ObserveBool records one unit-weight trial.
func (r *WRatio) ObserveBool(hit bool) {
	if hit {
		r.Observe(1, 1)
	} else {
		r.Observe(0, 1)
	}
}

// Merge folds another weighted ratio into r.
func (r *WRatio) Merge(o WRatio) {
	r.Hits += o.Hits
	r.Total += o.Total
}

// Value returns Hits/Total (0 if no weight).
func (r *WRatio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return r.Hits / r.Total
}

// Percent returns the ratio as a percentage.
func (r *WRatio) Percent() float64 { return r.Value() * 100 }
