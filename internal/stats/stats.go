// Package stats provides the statistical tooling the evaluation harness
// needs: streaming samples, percentiles, CDFs, box-plot summaries,
// histograms, hour-bucketed time series, and Welch's t-test (the paper
// reports p-values < 0.001 for its Table 1 comparison).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates float64 observations.
// The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
	sum    float64
	sumSq  float64
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
	s.sum += x
	s.sumSq += x * x
}

// AddAll appends many observations.
func (s *Sample) AddAll(xs ...float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Sample) Variance() float64 {
	n := float64(len(s.xs))
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	// Two-pass is more stable than the shortcut formula for large means.
	var acc float64
	for _, x := range s.xs {
		d := x - mean
		acc += d * d
	}
	return acc / (n - 1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. Empty samples return 0.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Min returns the smallest observation (0 if empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// BoxPlot summarizes a sample the way the paper's Figure 11 does:
// 20th, 25th, 50th, 75th, and 80th percentiles.
type BoxPlot struct {
	P20, P25, P50, P75, P80 float64
	N                       int
}

// Box returns the box-plot summary of the sample.
func (s *Sample) Box() BoxPlot {
	return BoxPlot{
		P20: s.Percentile(20),
		P25: s.Percentile(25),
		P50: s.Percentile(50),
		P75: s.Percentile(75),
		P80: s.Percentile(80),
		N:   s.N(),
	}
}

// String renders the box plot compactly.
func (b BoxPlot) String() string {
	return fmt.Sprintf("[p20=%.1f p25=%.1f p50=%.1f p75=%.1f p80=%.1f n=%d]",
		b.P20, b.P25, b.P50, b.P75, b.P80, b.N)
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	F float64 // cumulative fraction in [0,1]
}

// CDF returns the empirical CDF evaluated at the given points
// (F(x) = fraction of observations <= x).
func (s *Sample) CDF(points []float64) []CDFPoint {
	s.sort()
	out := make([]CDFPoint, len(points))
	for i, x := range points {
		idx := sort.SearchFloat64s(s.xs, x)
		// Move past duplicates equal to x.
		for idx < len(s.xs) && s.xs[idx] <= x {
			idx++
		}
		f := 0.0
		if len(s.xs) > 0 {
			f = float64(idx) / float64(len(s.xs))
		}
		out[i] = CDFPoint{X: x, F: f}
	}
	return out
}

// FractionBelow returns the fraction of observations <= x.
func (s *Sample) FractionBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.CDF([]float64{x})[0].F
}

// WelchT performs Welch's unequal-variance t-test on two samples and
// returns the t statistic, the Welch–Satterthwaite degrees of freedom,
// and a two-sided p-value.
func WelchT(a, b *Sample) (t, df, p float64) {
	na, nb := float64(a.N()), float64(b.N())
	if na < 2 || nb < 2 {
		return 0, 0, 1
	}
	va, vb := a.Variance()/na, b.Variance()/nb
	se := math.Sqrt(va + vb)
	if se == 0 {
		if a.Mean() == b.Mean() {
			return 0, na + nb - 2, 1
		}
		return math.Inf(1), na + nb - 2, 0
	}
	t = (a.Mean() - b.Mean()) / se
	df = (va + vb) * (va + vb) / (va*va/(na-1) + vb*vb/(nb-1))
	p = 2 * studentTSF(math.Abs(t), df)
	return t, df, p
}

// studentTSF returns P(T > t) for Student's t with df degrees of freedom,
// via the regularized incomplete beta function.
func studentTSF(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// using the continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(b, a, 1-x)
	}
	// Lentz's algorithm for the continued fraction.
	const tiny = 1e-30
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= 300; i++ {
		m := i / 2
		var num float64
		switch {
		case i == 0:
			num = 1
		case i%2 == 0:
			num = float64(m) * (b - float64(m)) * x / ((a + 2*float64(m) - 1) * (a + 2*float64(m)))
		default:
			num = -(a + float64(m)) * (a + b + float64(m)) * x / ((a + 2*float64(m)) * (a + 2*float64(m) + 1))
		}
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		f *= c * d
		if math.Abs(1-c*d) < 1e-12 {
			break
		}
	}
	return front * (f - 1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Ratio counts successes over trials (e.g. the 0-stall ratio).
// The zero value is ready to use.
type Ratio struct {
	Hits, Total int
}

// Observe records one trial.
func (r *Ratio) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns Hits/Total (0 if no trials).
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Percent returns the ratio as a percentage.
func (r *Ratio) Percent() float64 { return r.Value() * 100 }

// Histogram counts observations into [edges[i], edges[i+1]) buckets, with
// an implicit overflow bucket at the end.
type Histogram struct {
	Edges  []float64
	Counts []int
	total  int
}

// NewHistogram builds a histogram with the given ascending bucket edges.
func NewHistogram(edges ...float64) *Histogram {
	if !sort.Float64sAreSorted(edges) {
		panic("stats: histogram edges must be sorted")
	}
	return &Histogram{Edges: edges, Counts: make([]int, len(edges)+1)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := sort.SearchFloat64s(h.Edges, x)
	// SearchFloat64s returns the first edge >= x; values equal to an edge
	// belong to the bucket starting at that edge.
	if i < len(h.Edges) && h.Edges[i] == x {
		i++
	}
	h.Counts[i]++
	h.total++
}

// Fraction returns the fraction of observations in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// TimeSeries buckets observations by integer period index (e.g. hour of
// day, day of run) and exposes per-bucket samples.
type TimeSeries struct {
	buckets map[int]*Sample
}

// NewTimeSeries returns an empty time series.
func NewTimeSeries() *TimeSeries {
	return &TimeSeries{buckets: make(map[int]*Sample)}
}

// Add records x in bucket i.
func (ts *TimeSeries) Add(i int, x float64) {
	s, ok := ts.buckets[i]
	if !ok {
		s = &Sample{}
		ts.buckets[i] = s
	}
	s.Add(x)
}

// Bucket returns the sample for bucket i (nil if empty).
func (ts *TimeSeries) Bucket(i int) *Sample { return ts.buckets[i] }

// Buckets returns the sorted bucket indices present.
func (ts *TimeSeries) Buckets() []int {
	out := make([]int, 0, len(ts.buckets))
	for i := range ts.buckets {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Table renders rows of labeled values in aligned columns; the evaluation
// harness uses it to print paper-style tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for pad := len(c); pad < widths[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
