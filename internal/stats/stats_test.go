package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPercentileBasics(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Median(); !almost(got, 50.5, 1e-9) {
		t.Fatalf("median = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Percentile(25); !almost(got, 25.75, 1e-9) {
		t.Fatalf("p25 = %v", got)
	}
}

func TestPercentileSingleton(t *testing.T) {
	var s Sample
	s.Add(7)
	for _, p := range []float64{0, 25, 50, 99, 100} {
		if got := s.Percentile(p); got != 7 {
			t.Fatalf("p%v of singleton = %v", p, got)
		}
	}
}

func TestEmptySampleSafe(t *testing.T) {
	var s Sample
	if s.Median() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should return zeros")
	}
	if f := s.FractionBelow(10); f != 0 {
		t.Fatalf("FractionBelow on empty = %v", f)
	}
}

func TestMeanVariance(t *testing.T) {
	var s Sample
	s.AddAll(2, 4, 4, 4, 5, 5, 7, 9)
	if !almost(s.Mean(), 5, 1e-9) {
		t.Fatalf("mean = %v", s.Mean())
	}
	if !almost(s.Variance(), 32.0/7.0, 1e-9) {
		t.Fatalf("variance = %v", s.Variance())
	}
}

func TestPercentileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if err := quick.Check(func(n uint8) bool {
		var s Sample
		for i := 0; i < int(n)+2; i++ {
			s.Add(r.Float64() * 1000)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileWithinRange(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	if err := quick.Check(func(n uint8, p uint8) bool {
		var s Sample
		for i := 0; i < int(n)+1; i++ {
			s.Add(r.NormFloat64() * 100)
		}
		v := s.Percentile(float64(p % 101))
		return v >= s.Min() && v <= s.Max()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3, 4)
	pts := s.CDF([]float64{0, 1, 2.5, 4, 9})
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i, p := range pts {
		if !almost(p.F, want[i], 1e-9) {
			t.Fatalf("CDF(%v) = %v, want %v", p.X, p.F, want[i])
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	if err := quick.Check(func(n uint8) bool {
		var s Sample
		for i := 0; i < int(n)+1; i++ {
			s.Add(r.Float64() * 50)
		}
		xs := []float64{0, 10, 20, 30, 40, 50}
		pts := s.CDF(xs)
		prev := 0.0
		for _, p := range pts {
			if p.F < prev || p.F > 1 {
				return false
			}
			prev = p.F
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelchTSignificant(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var a, b Sample
	for i := 0; i < 500; i++ {
		a.Add(188 + r.NormFloat64()*40)
		b.Add(393 + r.NormFloat64()*60)
	}
	_, _, p := WelchT(&a, &b)
	if p >= 0.001 {
		t.Fatalf("p = %v, want < 0.001 for clearly separated samples", p)
	}
}

func TestWelchTInsignificant(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var a, b Sample
	for i := 0; i < 200; i++ {
		a.Add(100 + r.NormFloat64()*30)
		b.Add(100 + r.NormFloat64()*30)
	}
	_, _, p := WelchT(&a, &b)
	if p < 0.01 {
		t.Fatalf("p = %v unexpectedly significant for identical distributions", p)
	}
}

func TestWelchTDegenerate(t *testing.T) {
	var a, b Sample
	a.AddAll(1, 1, 1)
	b.AddAll(1, 1, 1)
	if _, _, p := WelchT(&a, &b); p != 1 {
		t.Fatalf("identical constant samples: p = %v, want 1", p)
	}
	var c Sample
	c.AddAll(2, 2, 2)
	if _, _, p := WelchT(&a, &c); p != 0 {
		t.Fatalf("distinct constant samples: p = %v, want 0", p)
	}
}

func TestWelchTTooSmall(t *testing.T) {
	var a, b Sample
	a.Add(1)
	b.AddAll(1, 2, 3)
	if _, _, p := WelchT(&a, &b); p != 1 {
		t.Fatalf("n<2 should be inconclusive, p = %v", p)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); !almost(got, x, 1e-9) {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_0.5(a,a) = 0.5 by symmetry.
	if got := regIncBeta(3, 3, 0.5); !almost(got, 0.5, 1e-9) {
		t.Fatalf("I_.5(3,3) = %v", got)
	}
}

func TestStudentTKnownValue(t *testing.T) {
	// For df=10, P(T > 2.228) ~= 0.025 (classic two-sided 95% critical value).
	if got := studentTSF(2.228, 10); !almost(got, 0.025, 0.001) {
		t.Fatalf("studentTSF(2.228,10) = %v", got)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	for i := 0; i < 98; i++ {
		r.Observe(true)
	}
	r.Observe(false)
	r.Observe(false)
	if !almost(r.Percent(), 98, 1e-9) {
		t.Fatalf("percent = %v", r.Percent())
	}
	var empty Ratio
	if empty.Value() != 0 {
		t.Fatal("empty ratio should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(500, 700, 1000, 1500)
	h.Add(100)  // bucket 0: (-inf,500)
	h.Add(500)  // bucket 1: [500,700)
	h.Add(699)  // bucket 1
	h.Add(1200) // bucket 3
	h.Add(99999)
	want := []int{1, 2, 0, 1, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if !almost(h.Fraction(1), 0.4, 1e-9) {
		t.Fatalf("fraction = %v", h.Fraction(1))
	}
}

func TestHistogramEdgesSorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for unsorted edges")
		}
	}()
	NewHistogram(3, 1, 2)
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries()
	ts.Add(3, 1)
	ts.Add(1, 2)
	ts.Add(3, 5)
	got := ts.Buckets()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("buckets = %v", got)
	}
	if ts.Bucket(3).N() != 2 {
		t.Fatal("bucket 3 should have 2 samples")
	}
	if ts.Bucket(9) != nil {
		t.Fatal("missing bucket should be nil")
	}
}

func TestBoxPlotOrdered(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(r.ExpFloat64() * 100)
	}
	b := s.Box()
	vals := []float64{b.P20, b.P25, b.P50, b.P75, b.P80}
	if !sort.Float64sAreSorted(vals) {
		t.Fatalf("box percentiles out of order: %+v", b)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"metric", "LiveNet", "Hier"}}
	tb.AddRow("CDN path delay (ms)", "188", "393")
	out := tb.String()
	if len(out) == 0 || out[len(out)-1] != '\n' {
		t.Fatal("table should end with newline")
	}
	if got := len([]rune(out)); got < 20 {
		t.Fatalf("table suspiciously short: %q", out)
	}
}
