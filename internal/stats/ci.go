package stats

import "math"

// tCrit975 holds two-sided 95% Student-t critical values t_{0.975,df} for
// df = 1..30; larger df falls back to the normal 1.96. Used for the
// multi-seed confidence intervals the parallel harness makes affordable.
var tCrit975 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// MeanCI95 returns the sample mean and the half-width of its 95%
// confidence interval (Student t for n <= 31, normal beyond). The half
// width is 0 when n < 2.
func MeanCI95(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	df := n - 1
	crit := 1.96
	if df <= len(tCrit975) {
		crit = tCrit975[df-1]
	}
	return mean, crit * sd / math.Sqrt(float64(n))
}
