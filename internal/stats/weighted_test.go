package stats

import (
	"math"
	"testing"
)

func TestWSampleMatchesSampleOnUnitWeights(t *testing.T) {
	var s Sample
	var w WSample
	for _, x := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		s.Add(x)
		w.Add(x, 1)
	}
	if math.Abs(s.Mean()-w.Mean()) > 1e-12 {
		t.Fatalf("mean mismatch: %v vs %v", s.Mean(), w.Mean())
	}
	if w.W != float64(s.N()) {
		t.Fatalf("weight %v != n %d", w.W, s.N())
	}
}

func TestWSampleWeighting(t *testing.T) {
	var w WSample
	w.Add(10, 3) // same as adding 10 three times
	w.Add(40, 1)
	if got := w.Mean(); math.Abs(got-17.5) > 1e-12 {
		t.Fatalf("weighted mean = %v, want 17.5", got)
	}
	var a, b WSample
	a.Add(10, 3)
	b.Add(40, 1)
	a.Merge(b)
	if math.Abs(a.Mean()-w.Mean()) > 1e-12 || math.Abs(a.StdDev()-w.StdDev()) > 1e-12 {
		t.Fatalf("merge mismatch: %v/%v vs %v/%v", a.Mean(), a.StdDev(), w.Mean(), w.StdDev())
	}
	w.Add(5, 0)
	w.Add(5, -2)
	if a.Mean() != w.Mean() {
		t.Fatal("non-positive weights must be ignored")
	}
}

func TestWRatioExpectations(t *testing.T) {
	var r WRatio
	r.Observe(0.25, 1000) // 1000 viewers, each zero-stall with p=0.25
	r.ObserveBool(true)   // one traced viewer who did not stall
	want := (0.25*1000 + 1) / 1001 * 100
	if math.Abs(r.Percent()-want) > 1e-9 {
		t.Fatalf("percent = %v, want %v", r.Percent(), want)
	}
	r.Observe(2, 10) // clamped to 1
	if r.Hits > r.Total {
		t.Fatalf("hits %v exceed total %v after clamping", r.Hits, r.Total)
	}
	var o WRatio
	o.Observe(0.5, 100)
	before := r.Hits
	r.Merge(o)
	if r.Hits != before+50 {
		t.Fatalf("merge: hits = %v, want %v", r.Hits, before+50)
	}
}
