// Package eval regenerates every table and figure of the paper's
// evaluation (§6) from the macro session simulator and the packet-level
// cluster, plus the design ablations called out in DESIGN.md. Each
// experiment renders the same rows/series the paper reports; absolute
// numbers come from the emulated substrate, so the comparison target is
// the shape (who wins, by what factor) — see EXPERIMENTS.md.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"livenet/internal/core"
	"livenet/internal/runner"
	"livenet/internal/stats"
	"livenet/internal/workload"
)

// SerialDataPlane forces every node built by this package's scenarios
// onto the plain per-packet Sender path (no vectored or batched transport
// submits). The emulated fabric delivers identically either way, so any
// report must come out byte-identical with the knob on or off — the
// equivalence tests flip it and compare.
var SerialDataPlane bool

func double12Flash() workload.FlashEvent { return workload.Double12() }

// Options scales an evaluation run.
type Options struct {
	Seed  int64
	Days  int
	Sites int
	// PeakViewsPerSec scales load (default 2 for full runs).
	PeakViewsPerSec float64
	Channels        int
	// Double12 enables the festival flash crowd (Figure 14 / Table 3).
	Double12 bool
	// MaxPeers > 0 runs the macro engine on a sparse overlay (each site
	// links to its MaxPeers nearest peers plus the IXP sites) instead of
	// the full mesh; see core.MacroConfig.MaxPeers.
	MaxPeers int

	// Regions > 0 federates the Streaming Brain into per-region shards
	// for the LiveNet runs; see core.MacroConfig.Regions. The Hier
	// baseline ignores it.
	Regions int

	// Viewers > 0 switches both systems to the cohort-aggregated macro
	// engine and sizes the workload so the diurnal peak carries about
	// this many concurrent viewers (core.MacroConfig.Viewers). The
	// per-view QoE samples then cover only the traced subset; the pooled
	// aggregates live in MacroResult.CohortQoE (see CohortSummary).
	Viewers int
	// Hours > 0 shortens the horizon to whole hours instead of Days
	// (core.MacroConfig.Hours).
	Hours int
	// TracerSample overrides the exact-tracer sampling probability of
	// cohort runs (core.MacroConfig.TracerSample; default 0.2%).
	TracerSample float64
}

// Full returns the paper-scale configuration: 20 days covering the
// Double 12 festival.
func Full() Options {
	return Options{Seed: 42, Days: 20, Sites: 64, PeakViewsPerSec: 2, Channels: 200, Double12: true}
}

// Quick returns a scaled-down configuration for benchmarks and CI.
func Quick() Options {
	return Options{Seed: 42, Days: 2, Sites: 32, PeakViewsPerSec: 0.5, Channels: 80}
}

func (o Options) macro(sys core.System) core.MacroConfig {
	cfg := core.MacroConfig{
		Seed:     o.Seed,
		Days:     o.Days,
		Sites:    o.Sites,
		System:   sys,
		MaxPeers: o.MaxPeers,
		Regions:  o.Regions,
	}
	cfg.Workload.PeakViewsPerSec = o.PeakViewsPerSec
	cfg.Workload.Channels = o.Channels
	if o.Double12 {
		cfg.Workload.Flash = append(cfg.Workload.Flash, double12Flash())
	}
	if o.Viewers > 0 {
		cfg.Viewers = o.Viewers
		cfg.TracerSample = o.TracerSample
		// Viewers sizes the workload (Little's law from the mean view
		// duration); the Options-level default peak rate would otherwise
		// shadow it.
		cfg.Workload.PeakViewsPerSec = 0
	}
	if o.Hours > 0 {
		cfg.Hours = o.Hours
	}
	return cfg
}

// Results holds one matched pair of runs (same workload seed).
type Results struct {
	Opt Options
	LN  *core.MacroResult
	HR  *core.MacroResult
}

// Run executes both systems on the same workload, fanning the two
// independent runs out across CPUs (results are bit-identical to serial;
// see RunSerial for the reference schedule).
func Run(o Options) *Results {
	return NewSession(runner.Parallel()).Run(o)
}

// RunSerial executes both systems strictly serially on the calling
// goroutine — the reference schedule the determinism regression tests
// compare the parallel runner against.
func RunSerial(o Options) *Results {
	return NewSession(runner.Serial()).Run(o)
}

// --- Table 1 ---

// zeroStallPct returns the population 0-stall ratio: the pooled cohort
// aggregate when the run was cohort-aggregated (the per-view sample then
// covers only the traced subset), the per-view ratio otherwise.
func zeroStallPct(r *core.MacroResult) float64 {
	if r.CohortQoE != nil {
		return r.CohortQoE.ZeroStall.Percent()
	}
	return r.ZeroStall.Percent()
}

// fastStartPct is zeroStallPct's fast-startup analogue.
func fastStartPct(r *core.MacroResult) float64 {
	if r.CohortQoE != nil {
		return r.CohortQoE.FastStart.Percent()
	}
	return r.FastStart.Percent()
}

// Table1 renders the overall performance comparison (Table 1), with
// Welch t-test p-values for the delay metrics as the paper reports.
func Table1(r *Results) string {
	t := &stats.Table{Header: []string{"metric", "LiveNet", "Hier", "impr. %"}}
	impr := func(ln, hr float64) string {
		if hr == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", (hr-ln)/hr*100)
	}
	t.AddRow("CDN path delay (ms)",
		fmt.Sprintf("%.0f", r.LN.CDNDelayMs.Median()),
		fmt.Sprintf("%.0f", r.HR.CDNDelayMs.Median()),
		impr(r.LN.CDNDelayMs.Median(), r.HR.CDNDelayMs.Median()))
	t.AddRow("CDN path length",
		fmt.Sprintf("%.0f", r.LN.PathLen.Median()),
		fmt.Sprintf("%.0f", r.HR.PathLen.Median()),
		impr(r.LN.PathLen.Median(), r.HR.PathLen.Median()))
	t.AddRow("Streaming delay (ms)",
		fmt.Sprintf("%.0f", r.LN.Streaming.Median()),
		fmt.Sprintf("%.0f", r.HR.Streaming.Median()),
		impr(r.LN.Streaming.Median(), r.HR.Streaming.Median()))
	t.AddRow("0-stall ratio (%)",
		fmt.Sprintf("%.1f", zeroStallPct(r.LN)),
		fmt.Sprintf("%.1f", zeroStallPct(r.HR)),
		fmt.Sprintf("+%.1f pts", zeroStallPct(r.LN)-zeroStallPct(r.HR)))
	t.AddRow("Fast startup ratio (%)",
		fmt.Sprintf("%.1f", fastStartPct(r.LN)),
		fmt.Sprintf("%.1f", fastStartPct(r.HR)),
		fmt.Sprintf("+%.1f pts", fastStartPct(r.LN)-fastStartPct(r.HR)))

	_, _, pCDN := stats.WelchT(r.LN.CDNDelayMs, r.HR.CDNDelayMs)
	_, _, pStream := stats.WelchT(r.LN.Streaming, r.HR.Streaming)
	var b strings.Builder
	b.WriteString("Table 1: Performance comparison of LiveNet and Hier (medians)\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "t-test: CDN delay p=%.2g, streaming delay p=%.2g (paper: p<0.001)\n", pCDN, pStream)
	if r.LN.CohortQoE != nil {
		fmt.Fprintf(&b, "views: %d per system (cohort-aggregated; %d traced exactly; delay medians over traced views)\n",
			r.LN.Views, r.LN.TracerViews)
	} else {
		fmt.Fprintf(&b, "views: %d per system\n", r.LN.Views)
	}
	return b.String()
}

// --- Figure 2 ---

// Fig2 renders the per-day median CDN path delay time series for both
// systems over the first 7 days (Figure 2).
func Fig2(r *Results) string {
	t := &stats.Table{Header: []string{"day", "LiveNet (ms)", "Hier (ms)"}}
	days := sortedDays(r.LN)
	if len(days) > 7 {
		days = days[:7]
	}
	for _, d := range days {
		ln, hr := r.LN.ByDay[d], r.HR.ByDay[d]
		if ln == nil || hr == nil {
			continue
		}
		t.AddRow(fmt.Sprintf("%d", d+1),
			fmt.Sprintf("%.0f", ln.CDNDelayMs.Median()),
			fmt.Sprintf("%.0f", hr.CDNDelayMs.Median()))
	}
	return "Figure 2: CDN path delay for Hier and LiveNet (per-day medians)\n" + t.String()
}

// --- Figure 8 ---

// Fig8a renders the streaming-delay CDF for both systems.
func Fig8a(r *Results) string {
	points := []float64{500, 600, 700, 800, 900, 1000, 1100, 1200, 1400, 1600, 2000}
	lnCDF := r.LN.Streaming.CDF(points)
	hrCDF := r.HR.Streaming.CDF(points)
	t := &stats.Table{Header: []string{"delay (ms)", "LiveNet CDF", "Hier CDF"}}
	for i, x := range points {
		t.AddRow(fmt.Sprintf("%.0f", x),
			fmt.Sprintf("%.3f", lnCDF[i].F),
			fmt.Sprintf("%.3f", hrCDF[i].F))
	}
	// The paper's headline deltas.
	gain := improvementAtFraction(r, 0.6)
	gain80 := improvementAtFraction(r, 0.8)
	return "Figure 8(a): CDF of streaming delay\n" + t.String() +
		fmt.Sprintf("delay improvement at 60th pct: %.0f ms; at 80th pct: %.0f ms\n", gain, gain80)
}

func improvementAtFraction(r *Results, f float64) float64 {
	return r.HR.Streaming.Percentile(f*100) - r.LN.Streaming.Percentile(f*100)
}

// Fig8b renders the percentage of views experiencing x stalls.
func Fig8b(r *Results) string {
	t := &stats.Table{Header: []string{"stalls", "LiveNet %", "Hier %"}}
	for x := 1; x <= 5; x++ {
		label := fmt.Sprintf("%d", x)
		if x == 5 {
			label = ">=5"
		}
		t.AddRow(label,
			fmt.Sprintf("%.2f", 100*float64(r.LN.StallCounts[x])/float64(r.LN.Views)),
			fmt.Sprintf("%.2f", 100*float64(r.HR.StallCounts[x])/float64(r.HR.Views)))
	}
	return "Figure 8(b): % of views that experience x stalls\n" + t.String() +
		fmt.Sprintf("stalled views: LiveNet %.1f%%, Hier %.1f%% (paper: 2%% vs 5%%)\n",
			100-r.LN.ZeroStall.Percent(), 100-r.HR.ZeroStall.Percent())
}

// Fig8c renders the daily fast-startup ratio for both systems.
func Fig8c(r *Results) string {
	t := &stats.Table{Header: []string{"day", "LiveNet %", "Hier %"}}
	for _, d := range sortedDays(r.LN) {
		ln, hr := r.LN.ByDay[d], r.HR.ByDay[d]
		if ln == nil || hr == nil {
			continue
		}
		t.AddRow(fmt.Sprintf("%d", d+1),
			fmt.Sprintf("%.1f", ln.FastStart.Percent()),
			fmt.Sprintf("%.1f", hr.FastStart.Percent()))
	}
	return "Figure 8(c): Fast startup ratio per day\n" + t.String()
}

// --- Figure 9 ---

// Fig9 renders LiveNet's fast-startup ratio by streaming-delay bucket.
func Fig9(r *Results) string {
	order := []string{"(0,500]", "(500,700]", "(700,1000]", "(1000,1500]", "(1500,inf]"}
	t := &stats.Table{Header: []string{"streaming delay (ms)", "fast startup %", "views"}}
	for _, label := range order {
		b := r.LN.StartupByDelay[label]
		if b == nil || b.Total == 0 {
			continue
		}
		t.AddRow(label, fmt.Sprintf("%.1f", b.Percent()), fmt.Sprintf("%d", b.Total))
	}
	return "Figure 9: Fast startup ratio of LiveNet vs. streaming delay (GoP cache effect)\n" + t.String()
}

// --- Figure 10 ---

// Fig10a renders the Path Decision response time by hour (25/50/75th pct).
func Fig10a(r *Results) string {
	t := &stats.Table{Header: []string{"hour", "p25 (ms)", "median (ms)", "p75 (ms)"}}
	for _, h := range r.LN.RespByHour.Buckets() {
		s := r.LN.RespByHour.Bucket(h)
		t.AddRow(fmt.Sprintf("%d", h),
			fmt.Sprintf("%.0f", s.Percentile(25)),
			fmt.Sprintf("%.0f", s.Median()),
			fmt.Sprintf("%.0f", s.Percentile(75)))
	}
	return "Figure 10(a): Path request response time by hour of day\n" + t.String()
}

// Fig10b renders the local path hit ratio over the first week, by hour.
func Fig10b(r *Results) string {
	t := &stats.Table{Header: []string{"day", "avg hit %", "min %", "max %"}}
	horizon := r.Opt.Days
	if horizon > 7 {
		horizon = 7
	}
	for d := 0; d < horizon; d++ {
		var sum, lo, hi float64
		lo = 101
		n := 0
		for h := d * 24; h < (d+1)*24; h++ {
			ratio := r.LN.HitByHour[h]
			if ratio == nil || ratio.Total == 0 {
				continue
			}
			p := ratio.Percent()
			sum += p
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
			n++
		}
		if n == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("%d", d+1),
			fmt.Sprintf("%.1f", sum/float64(n)),
			fmt.Sprintf("%.1f", lo), fmt.Sprintf("%.1f", hi))
	}
	return "Figure 10(b): Local path hit ratio (diurnal swing over a week)\n" + t.String() +
		peakTroughHit(r)
}

func peakTroughHit(r *Results) string {
	// Pool by hour of day over the run for the diurnal signature.
	var peak, trough stats.Ratio
	for h, ratio := range r.LN.HitByHour {
		hd := h % 24
		// Home-market evening ≈ 12–16h UTC; trough ≈ 19–23h UTC.
		if hd >= 12 && hd <= 15 {
			peak.Hits += ratio.Hits
			peak.Total += ratio.Total
		}
		if hd >= 19 && hd <= 22 {
			trough.Hits += ratio.Hits
			trough.Total += ratio.Total
		}
	}
	return fmt.Sprintf("evening-peak hit ratio: %.1f%%, overnight trough: %.1f%% (paper: ~70%% at peak)\n",
		peak.Percent(), trough.Percent())
}

// Fig10c renders the hourly average first-packet delay over the first week.
func Fig10c(r *Results) string {
	t := &stats.Table{Header: []string{"day", "avg 1st pkt (ms)", "min", "max"}}
	horizon := r.Opt.Days
	if horizon > 7 {
		horizon = 7
	}
	for d := 0; d < horizon; d++ {
		var sum, lo, hi float64
		lo = 1e18
		n := 0
		for h := d * 24; h < (d+1)*24; h++ {
			s := r.LN.FirstPktByHour.Bucket(h)
			if s == nil || s.N() == 0 {
				continue
			}
			m := s.Mean()
			sum += m
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
			n++
		}
		if n == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("%d", d+1),
			fmt.Sprintf("%.0f", sum/float64(n)),
			fmt.Sprintf("%.0f", lo), fmt.Sprintf("%.0f", hi))
	}
	return "Figure 10(c): First-packet delay (hourly averages; anti-correlated with hit ratio)\n" + t.String()
}

// --- Table 2 ---

// Table2 renders the CDN path length distribution.
func Table2(r *Results) string {
	t := &stats.Table{Header: []string{"", "0", "1", "2", ">=3"}}
	row := func(name string, counts map[int]int) {
		total := 0
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			t.AddRow(name, "-", "-", "-", "-")
			return
		}
		pct := func(k int) string {
			if k < 3 {
				return fmt.Sprintf("%.2f%%", 100*float64(counts[k])/float64(total))
			}
			sum := 0
			for l, c := range counts {
				if l >= 3 {
					sum += c
				}
			}
			return fmt.Sprintf("%.2f%%", 100*float64(sum)/float64(total))
		}
		t.AddRow(name, pct(0), pct(1), pct(2), pct(3))
	}
	row("All", r.LN.LenCounts)
	row("Inter-nation.", r.LN.LenInter)
	row("Intra-nation.", r.LN.LenIntra)
	return "Table 2: CDN path length distribution for LiveNet\n" + t.String() +
		fmt.Sprintf("long chains (actual > requested): %d views\n", r.LN.LongChains)
}

// --- Figure 11 ---

// Fig11 renders CDN path delay vs path length (box plots) for LiveNet,
// with Hier's fixed-length-4 box alongside.
func Fig11(r *Results) string {
	t := &stats.Table{Header: []string{"system/len", "share", "p20", "p25", "p50", "p75", "p80"}}
	total := 0
	for _, c := range r.LN.LenCounts {
		total += c
	}
	lens := make([]int, 0, len(r.LN.DelayByLen))
	for l := range r.LN.DelayByLen {
		lens = append(lens, l)
	}
	sort.Ints(lens)
	for _, l := range lens {
		s := r.LN.DelayByLen[l]
		box := s.Box()
		t.AddRow(fmt.Sprintf("LiveNet len=%d", l),
			fmt.Sprintf("%.2f%%", 100*float64(r.LN.LenCounts[l])/float64(total)),
			fmt.Sprintf("%.0f", box.P20), fmt.Sprintf("%.0f", box.P25),
			fmt.Sprintf("%.0f", box.P50), fmt.Sprintf("%.0f", box.P75),
			fmt.Sprintf("%.0f", box.P80))
	}
	hbox := r.HR.CDNDelayMs.Box()
	t.AddRow("Hier len=4", "100%",
		fmt.Sprintf("%.0f", hbox.P20), fmt.Sprintf("%.0f", hbox.P25),
		fmt.Sprintf("%.0f", hbox.P50), fmt.Sprintf("%.0f", hbox.P75),
		fmt.Sprintf("%.0f", hbox.P80))
	return "Figure 11: CDN path delay vs path length (box percentiles, ms)\n" + t.String()
}

// --- Figure 12 ---

// Fig12 renders intra/inter-national path delays for both systems.
func Fig12(r *Results) string {
	t := &stats.Table{Header: []string{"type", "p25 (ms)", "median (ms)", "p75 (ms)"}}
	add := func(name string, s *stats.Sample) {
		t.AddRow(name,
			fmt.Sprintf("%.0f", s.Percentile(25)),
			fmt.Sprintf("%.0f", s.Median()),
			fmt.Sprintf("%.0f", s.Percentile(75)))
	}
	add("LiveNet intra", r.LN.IntraDelay)
	add("LiveNet inter", r.LN.InterDelay)
	add("Hier intra", r.HR.IntraDelay)
	add("Hier inter", r.HR.InterDelay)
	return "Figure 12: Path delay in inter/intra-national cases\n" + t.String()
}

// --- Figure 13 ---

// Fig13 renders the hourly average link packet loss rate.
func Fig13(r *Results) string {
	t := &stats.Table{Header: []string{"hour", "avg loss %"}}
	peak := 0.0
	for _, h := range r.LN.LossByHour.Buckets() {
		v := r.LN.LossByHour.Bucket(h).Mean()
		if v > peak {
			peak = v
		}
		t.AddRow(fmt.Sprintf("%d", h), fmt.Sprintf("%.4f", v))
	}
	return "Figure 13: Temporal variation of average link packet loss rate (%)\n" + t.String() +
		fmt.Sprintf("peak: %.4f%% (paper: < 0.175%%)\n", peak)
}

// --- Figure 14 ---

// Fig14 renders the normalized daily peak concurrency (throughput proxy).
func Fig14(r *Results) string {
	days := sortedDays(r.LN)
	maxPeak := 0
	for _, d := range days {
		if p := r.LN.ByDay[d].PeakConcurrency; p > maxPeak {
			maxPeak = p
		}
	}
	t := &stats.Table{Header: []string{"day", "norm. peak throughput", "unique paths"}}
	for _, d := range days {
		ds := r.LN.ByDay[d]
		t.AddRow(fmt.Sprintf("%d", d+1),
			fmt.Sprintf("%.2f", float64(ds.PeakConcurrency)/float64(maxPeak)),
			fmt.Sprintf("%d", ds.UniquePaths))
	}
	return "Figure 14: Normalized daily peak throughput (festival days spike to ~1.0)\n" + t.String()
}

// --- Table 3 ---

// Table3 renders LiveNet's stability across the Double 12 festival
// (days 10, 11–12, 13 of the 20-day run; day indices are 0-based).
func Table3(r *Results) string {
	groups := []struct {
		name string
		days []int
	}{
		{"Dec 10", []int{9}},
		{"Dec 11-12", []int{10, 11}},
		{"Dec 13", []int{12}},
	}
	t := &stats.Table{Header: []string{"metric", "Dec 10", "Dec 11-12", "Dec 13"}}
	get := func(f func(*core.DayStats) float64) []string {
		out := make([]string, 0, 3)
		for _, g := range groups {
			var vals []float64
			for _, d := range g.days {
				if ds := r.LN.ByDay[d]; ds != nil {
					vals = append(vals, f(ds))
				}
			}
			if len(vals) == 0 {
				out = append(out, "-")
				continue
			}
			sum := 0.0
			for _, v := range vals {
				sum += v
			}
			out = append(out, fmt.Sprintf("%.1f", sum/float64(len(vals))))
		}
		return out
	}
	addRow := func(name string, f func(*core.DayStats) float64) {
		v := get(f)
		t.AddRow(name, v[0], v[1], v[2])
	}
	addRow("CDN path delay (ms)", func(d *core.DayStats) float64 { return d.CDNDelayMs.Median() })
	addRow("CDN path length", func(d *core.DayStats) float64 { return d.PathLen.Median() })
	addRow("Streaming delay (ms)", func(d *core.DayStats) float64 { return d.Streaming.Median() })
	addRow("0-stall ratio (%)", func(d *core.DayStats) float64 {
		if d.Cohort != nil {
			return d.Cohort.ZeroStall.Percent()
		}
		return d.ZeroStall.Percent()
	})
	addRow("Fast startup ratio (%)", func(d *core.DayStats) float64 {
		if d.Cohort != nil {
			return d.Cohort.FastStart.Percent()
		}
		return d.FastStart.Percent()
	})
	addRow("peak concurrency", func(d *core.DayStats) float64 { return float64(d.PeakConcurrency) })
	return "Table 3: LiveNet's performance during the Double 12 festival\n" + t.String()
}

// --- Cohort summary ---

// CohortSummary renders the pooled QoE aggregates of a cohort-aggregated
// pair: the population-weighted metrics over every represented viewer
// (establishers and tracers simulated exactly, batch remainders folded in
// by expectation — see DESIGN.md §11). Returns "" when the runs were not
// cohort-aggregated.
func CohortSummary(r *Results) string {
	ln, hr := r.LN.CohortQoE, r.HR.CohortQoE
	if ln == nil || hr == nil {
		return ""
	}
	peak := func(m *core.MacroResult) int {
		p := 0
		for _, ds := range m.ByDay {
			if ds.PeakConcurrency > p {
				p = ds.PeakConcurrency
			}
		}
		return p
	}
	t := &stats.Table{Header: []string{"metric", "LiveNet", "Hier"}}
	t.AddRow("represented viewers",
		fmt.Sprintf("%.0f", ln.Viewers), fmt.Sprintf("%.0f", hr.Viewers))
	t.AddRow("traced exactly",
		fmt.Sprintf("%d", ln.TracerViews), fmt.Sprintf("%d", hr.TracerViews))
	t.AddRow("peak concurrency",
		fmt.Sprintf("%d", peak(r.LN)), fmt.Sprintf("%d", peak(r.HR)))
	t.AddRow("0-stall ratio (%)",
		fmt.Sprintf("%.2f", ln.ZeroStall.Percent()), fmt.Sprintf("%.2f", hr.ZeroStall.Percent()))
	t.AddRow("fast startup ratio (%)",
		fmt.Sprintf("%.2f", ln.FastStart.Percent()), fmt.Sprintf("%.2f", hr.FastStart.Percent()))
	t.AddRow("rebuffer ratio",
		fmt.Sprintf("%.5f", ln.RebufferRatio()), fmt.Sprintf("%.5f", hr.RebufferRatio()))
	t.AddRow("startup delay (ms, mean)",
		fmt.Sprintf("%.0f", ln.Startup.Mean()), fmt.Sprintf("%.0f", hr.Startup.Mean()))
	t.AddRow("streaming delay (ms, mean)",
		fmt.Sprintf("%.0f", ln.Streaming.Mean()), fmt.Sprintf("%.0f", hr.Streaming.Mean()))
	t.AddRow("CDN path delay (ms, mean)",
		fmt.Sprintf("%.0f", ln.CDNDelayMs.Mean()), fmt.Sprintf("%.0f", hr.CDNDelayMs.Mean()))
	t.AddRow("CDN path length (mean)",
		fmt.Sprintf("%.2f", ln.PathLen.Mean()), fmt.Sprintf("%.2f", hr.PathLen.Mean()))
	return "Cohort QoE summary (population-weighted over all represented viewers)\n" + t.String()
}

func sortedDays(r *core.MacroResult) []int {
	days := make([]int, 0, len(r.ByDay))
	for d := range r.ByDay {
		days = append(days, d)
	}
	sort.Ints(days)
	return days
}
