package eval

import (
	"fmt"
	"strings"
	"testing"
)

// The telemetry plane must be an observer: enabling it may not change
// what the simulated system does, only what gets recorded about it.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	t.Parallel()
	fingerprint := func(on bool) string {
		c := runTelemetryCluster(3, on)
		defer c.Close()
		var b strings.Builder
		for i, n := range c.Nodes {
			fmt.Fprintf(&b, "node %d: %+v streams %v\n", i, n.Metrics(), n.Streams())
		}
		fmt.Fprintf(&b, "brain: %+v\n", c.Brain.Metrics())
		return b.String()
	}
	off, on := fingerprint(false), fingerprint(true)
	if off != on {
		t.Fatalf("telemetry perturbed the run:\n--- off ---\n%s--- on ---\n%s", off, on)
	}
}

func TestTelemetryReportDeterministic(t *testing.T) {
	t.Parallel()
	a := TelemetryReport(11)
	if b := TelemetryReport(11); a != b {
		t.Fatalf("TelemetryReport not deterministic:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
	for _, want := range []string{"journey sid=", "Brain GlobalView", "fan-out", "node.packets_forwarded"} {
		if !strings.Contains(a, want) {
			t.Fatalf("report missing %q:\n%s", want, a)
		}
	}
}

// Interleaving a telemetry run must leave the chaos replays byte-identical:
// the tracer draws from its own RNG stream and never touches shared state.
func TestFaultReportUnperturbedByTelemetry(t *testing.T) {
	t.Parallel()
	fr1 := FaultReport(5)
	_ = TelemetryReport(5)
	fr2 := FaultReport(5)
	if fr1 != fr2 {
		t.Fatal("FaultReport changed after a telemetry run")
	}
}
