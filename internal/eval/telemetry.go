package eval

import (
	"fmt"
	"strings"
	"time"

	"livenet/internal/core"
	"livenet/internal/media"
)

// --- Observability (§5 monitoring pipeline): waterfalls + GlobalView ---
//
// TelemetryReport exercises the telemetry plane end to end on a small
// packet-level cluster and a quick macro run:
//
//  1. A fan-out broadcast (one producer, three geo-spread viewers) with
//     the tracer sampling aggressively, rendering hop-by-hop latency
//     waterfalls that decompose each delivery into queueing, network and
//     retransmit time.
//  2. The Brain's GlobalView fleet-health tables, aggregated from the
//     per-node metric snapshots that ride the Global Discovery reports.
//  3. The same GlobalView rendered from a scaled-down LiveNet macro run,
//     showing the per-stream fan-out depth over the session engine.
//
// The whole report is a pure function of the seed: sampling draws come
// from a dedicated RNG stream and every table sorts its keys.

// telemetryCluster builds the packet-level cluster used by the report
// (and by the regression tests that compare telemetry on vs off).
func telemetryCluster(seed int64, on bool) *core.Cluster {
	return core.NewCluster(core.ClusterConfig{
		Seed:              seed,
		Sites:             8,
		DiscoveryInterval: 5 * time.Second,
		Telemetry:         on,
		TraceRate:         0.02,
		TraceMax:          12,
		TraceAfter:        6 * time.Second,
	})
}

// runTelemetryCluster drives the broadcast/viewing schedule and returns
// the cluster after 20 s of virtual time (caller closes it).
func runTelemetryCluster(seed int64, on bool) *core.Cluster {
	c := telemetryCluster(seed, on)
	bc := c.NewBroadcasterAt(31.2, 121.5, 100, media.DefaultRenditions[:1]) // Shanghai
	bc.Start()
	sid := bc.StreamID(0)
	spots := [][2]float64{
		{39.9, 116.4}, // Beijing
		{51.5, -0.1},  // London
		{40.7, -74.0}, // New York
	}
	for i, p := range spots {
		lat, lon := p[0], p[1]
		c.Loop.AfterFunc(time.Duration(i+1)*1500*time.Millisecond, func() {
			c.NewViewerAt(lat, lon, sid)
		})
	}
	c.Run(20 * time.Second)
	return c
}

// TelemetryReport renders the observability-plane evaluation: sampled
// packet-journey waterfalls, the Brain's GlobalView over a packet-level
// cluster, and the GlobalView of a quick macro run. Pure function of the
// seed.
func TelemetryReport(seed int64) string {
	var b strings.Builder

	c := runTelemetryCluster(seed, true)
	b.WriteString("Packet journeys: 1 producer (Shanghai) -> 3 viewers (Beijing, London, New York)\n")
	b.WriteString(c.Tracer.Render(4))

	b.WriteString("\n")
	b.WriteString(c.Brain.GlobalView().String())
	c.Close()

	o := Options{Seed: seed, Days: 1, Sites: 16, PeakViewsPerSec: 0.5, Channels: 40}
	res := core.RunMacro(o.macro(core.SystemLiveNet))
	fmt.Fprintf(&b, "\nMacro run (LiveNet engine, %d sites, %d channels, 1 day)\n", o.Sites, o.Channels)
	b.WriteString(res.GlobalView.String())
	return b.String()
}
