package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"livenet/internal/chaos"
	"livenet/internal/core"
	"livenet/internal/media"
	"livenet/internal/stats"
)

// --- Rolling restart (planned reconfiguration, ROADMAP item 4) ---
//
// The headline experiment for make-before-break migration and relay
// drain: restart the WHOLE relay fleet of a live cluster, one node at a
// time, while viewers keep watching. LiveNet drains each relay first —
// the Brain stops routing through it, its carried streams migrate off
// on GoP boundaries, and only then does the process restart — so the
// viewers see zero added stalls. The Hier baseline has no drain
// machinery: each restart is a cold crash its reactive (and slow)
// failure detection must notice, which the viewers pay for in stalls.

// Rolling-restart cadence: each relay drains for rrDrainFor (LiveNet
// only), is down for rrDownFor, then the fleet stabilizes for
// rrStabilize before the next relay goes. The drain window must exceed
// one full GoP (2 s) so every migration reaches its splice point.
const (
	rrWarmup    = 5 * time.Second
	rrDrainFor  = 3 * time.Second
	rrDownFor   = 2 * time.Second
	rrStabilize = time.Second
)

// rollingViewerLocs spreads viewers across continents so the delivery
// tree has interior relay hops (intercontinental paths ride the IXP
// relay sites).
var rollingViewerLocs = [][2]float64{
	{52.0, -1.0},    // GB
	{40.7, -74.0},   // US east
	{1.35, 103.8},   // SG
	{35.6, 139.7},   // JP
	{48.8, 2.35},    // FR
	{-23.55, -46.6}, // BR
}

// RollingRestartResult summarizes one full-fleet rolling restart.
type RollingRestartResult struct {
	System  string
	Viewers int
	// Fleet is the restarted relay set: every overlay node that is
	// neither the producer nor a consumer with attached viewers.
	Fleet int
	// DrainMigrations is how many (stream, subscriber) migrations the
	// drains scheduled (0 for Hier: it has no drain).
	DrainMigrations int
	// LeftoverAtCrash sums DrainRemaining just before each crash: 0
	// means every drain converged and no live stream rode a dying relay.
	LeftoverAtCrash int
	// PlannedSwitches/UnplannedSwitches attribute the fleet-wide fast
	// switches over the run (summed across nodes alive at the end).
	PlannedSwitches   uint64
	UnplannedSwitches uint64
	MigrationsDone    uint64
	// BaselineStalls/RestartStalls count viewer stalls inside the
	// restart window for the control run (same seed, no restarts) and
	// the restart run; AddedStalls is their difference.
	BaselineStalls int
	RestartStalls  int
	AddedStalls    int
	// WindowSec is the restart window length (virtual seconds).
	WindowSec float64
	Timeline  string
}

// rollingFleet lists the relay fleet to restart: every site except the
// producer and the consumer sites serving attached viewers.
func rollingFleet(sites, producer int, consumers map[int]bool) []int {
	fleet := make([]int, 0, sites)
	for id := 0; id < sites; id++ {
		if id == producer || consumers[id] {
			continue
		}
		fleet = append(fleet, id)
	}
	sort.Ints(fleet)
	return fleet
}

// rollingScenario builds the rolling-restart fault schedule over the
// fleet: per relay, an optional planned drain (make-before-break
// migration window) followed by a crash/restart cycle.
func rollingScenario(fleet []int, drain bool) chaos.Scenario {
	name := "rolling-restart-hier"
	if drain {
		name = "rolling-restart-livenet"
	}
	sc := chaos.Scenario{Name: name}
	t := rrWarmup
	for _, id := range fleet {
		crashAt := t + rrDrainFor
		backAt := crashAt + rrDownFor
		if drain {
			sc.Faults = append(sc.Faults, chaos.Fault{Kind: chaos.NodeDrain, At: t, Until: backAt, Node: id})
		}
		sc.Faults = append(sc.Faults, chaos.Fault{Kind: chaos.NodeCrash, At: crashAt, Until: backAt, Node: id})
		t = backAt + rrStabilize
	}
	return sc
}

// rollingWindow returns the restart window [start, end] of the fleet's
// schedule.
func rollingWindow(fleet []int) (time.Duration, time.Duration) {
	cycle := rrDrainFor + rrDownFor + rrStabilize
	return rrWarmup, rrWarmup + time.Duration(len(fleet))*cycle
}

// drainCountingInjector forwards the chaos fault surface to the cluster
// while tallying how many migrations the drains scheduled (DrainNode's
// return value is dropped by the chaos engine).
type drainCountingInjector struct {
	*core.Cluster
	scheduled int
}

func (d *drainCountingInjector) DrainNode(id int) int {
	n := d.Cluster.DrainNode(id)
	d.scheduled += n
	return n
}

// runRollingRestart runs one cluster through the rolling-restart
// schedule. drain selects the LiveNet behaviour (drain-first); restart
// false runs the no-fault control on the same seed.
func runRollingRestart(seed int64, system string, drain, restart bool) RollingRestartResult {
	detect := 500 * time.Millisecond
	if !drain {
		// Hier-style reactive-only failure detection.
		detect = 3 * time.Second
	}
	c := core.NewCluster(core.ClusterConfig{
		Seed:                seed,
		Sites:               12,
		DiscoveryInterval:   10 * time.Second,
		NodeUpstreamTimeout: detect,
		SerialSend:          SerialDataPlane,
	})
	defer c.Close()

	bc := c.NewBroadcasterAt(31.2, 121.5, 100, media.DefaultRenditions[:1])
	bc.Start()
	sid := bc.StreamID(0)

	// Viewers arrive over the first two seconds; stall times are
	// recorded without displacing the cluster's quality-report relay.
	type stallRec struct{ at time.Duration }
	var stalls []stallRec
	views := make([]*core.Viewing, 0, len(rollingViewerLocs))
	consumers := make(map[int]bool)
	for i, loc := range rollingViewerLocs {
		lat, lon := loc[0], loc[1]
		c.Loop.AfterFunc(time.Duration(i+1)*300*time.Millisecond, func() {
			v := c.NewViewerAt(lat, lon, sid)
			relay := v.Viewer.OnStall
			v.Viewer.OnStall = func(n int) {
				stalls = append(stalls, stallRec{at: c.Loop.Now()})
				if relay != nil {
					relay(n)
				}
			}
			views = append(views, v)
			consumers[v.ConsumerNode] = true
		})
	}

	res := RollingRestartResult{System: system}
	inj := &drainCountingInjector{Cluster: c}
	eng := chaos.NewEngine(c.Loop, inj)
	var fleet []int
	start, end := time.Duration(0), time.Duration(0)
	c.Loop.AfterFunc(rrWarmup-time.Second, func() {
		fleet = rollingFleet(12, bc.Producer, consumers)
		start, end = rollingWindow(fleet)
		if restart {
			eng.Install(rollingScenario(fleet, drain))
			// Record convergence just before each crash: a converged
			// drain leaves nothing riding the dying relay.
			t := rrWarmup
			for _, id := range fleet {
				id := id
				crashAt := t + rrDrainFor
				c.Loop.AfterFunc(crashAt-c.Loop.Now()-time.Millisecond, func() {
					res.LeftoverAtCrash += c.DrainRemaining(id)
				})
				t = crashAt + rrDownFor + rrStabilize
			}
		}
	})

	cycle := rrDrainFor + rrDownFor + rrStabilize
	horizon := rrWarmup + time.Duration(12)*cycle + 4*time.Second
	c.Run(horizon)

	res.Viewers = len(views)
	res.Fleet = len(fleet)
	res.WindowSec = (end - start).Seconds()
	for _, s := range stalls {
		if s.at >= start && s.at <= end {
			res.RestartStalls++
		}
	}
	for id := 0; id < 12; id++ {
		if c.NodeCrashed(id) {
			continue
		}
		m := c.Nodes[id].Metrics()
		res.PlannedSwitches += m.FastSwitchesPlanned
		res.UnplannedSwitches += m.FastSwitchesUnplanned
		res.MigrationsDone += m.MigrationsCompleted
	}
	res.DrainMigrations = inj.scheduled
	res.Timeline = eng.TimelineString()
	return res
}

// RollingRestartCompare runs the full-fleet rolling restart for LiveNet
// (drain-first, make-before-break) and the Hier baseline (cold
// restarts, reactive detection only) on the same seed, each against its
// own no-restart control, and reports added stalls.
func RollingRestartCompare(seed int64) (ln, hr RollingRestartResult) {
	ln = runRollingRestart(seed, "LiveNet", true, true)
	lnBase := runRollingRestart(seed, "LiveNet", true, false)
	ln.BaselineStalls = lnBase.RestartStalls
	ln.AddedStalls = ln.RestartStalls - ln.BaselineStalls

	hr = runRollingRestart(seed, "Hier", false, true)
	hrBase := runRollingRestart(seed, "Hier", false, false)
	hr.BaselineStalls = hrBase.RestartStalls
	hr.AddedStalls = hr.RestartStalls - hr.BaselineStalls
	return ln, hr
}

// rollingRestartSection renders the FaultReport section.
func rollingRestartSection(seed int64) string {
	var b strings.Builder
	ln, hr := RollingRestartCompare(seed)
	fmt.Fprintf(&b, "\nRolling restart of the whole relay fleet (%d relays, drain %.0fs + down %.0fs each)\n",
		ln.Fleet, rrDrainFor.Seconds(), rrDownFor.Seconds())
	b.WriteString("fault schedule:\n" + indent(ln.Timeline))
	t := &stats.Table{Header: []string{"system", "relays restarted", "drain migrations", "left riding at crash", "planned switches", "unplanned switches", "stalls in window", "added stalls"}}
	for _, r := range []RollingRestartResult{ln, hr} {
		t.AddRow(r.System,
			fmt.Sprintf("%d", r.Fleet),
			fmt.Sprintf("%d", r.DrainMigrations),
			fmt.Sprintf("%d", r.LeftoverAtCrash),
			fmt.Sprintf("%d", r.PlannedSwitches),
			fmt.Sprintf("%d", r.UnplannedSwitches),
			fmt.Sprintf("%d (baseline %d)", r.RestartStalls, r.BaselineStalls),
			fmt.Sprintf("%d", r.AddedStalls))
	}
	b.WriteString(t.String())
	if ln.AddedStalls <= 0 && hr.AddedStalls > 0 {
		fmt.Fprintf(&b, "zero added stalls for LiveNet: every relay drained (make-before-break) before restarting; Hier paid %d\n", hr.AddedStalls)
	}
	return b.String()
}
