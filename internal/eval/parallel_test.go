package eval

import (
	"testing"

	"livenet/internal/core"
	"livenet/internal/runner"
)

// TestParallelMatchesSerial is the determinism regression test for the
// parallel harness: the same seed must produce byte-identical rendered
// output whether the two systems run serially or fan out across workers,
// and two parallel runs must agree with each other. Each run owns a
// private sim.Loop, RNG source, and world, so worker scheduling cannot
// leak into results.
func TestParallelMatchesSerial(t *testing.T) {
	o := Quick()
	serial := NewSession(runner.Serial()).Run(o)
	par1 := NewSession(runner.Parallel()).Run(o)
	par2 := NewSession(runner.Parallel()).Run(o)

	if got, want := Table1(par1), Table1(serial); got != want {
		t.Fatalf("Table1 parallel != serial\nparallel:\n%s\nserial:\n%s", got, want)
	}
	if got, want := Fig2(par1), Fig2(serial); got != want {
		t.Fatalf("Fig2 parallel != serial\nparallel:\n%s\nserial:\n%s", got, want)
	}
	if got, want := Table1(par2), Table1(par1); got != want {
		t.Fatalf("Table1 differs between two parallel runs\nrun2:\n%s\nrun1:\n%s", got, want)
	}
	if got, want := Fig2(par2), Fig2(par1); got != want {
		t.Fatalf("Fig2 differs between two parallel runs\nrun2:\n%s\nrun1:\n%s", got, want)
	}
}

// TestSessionMemoization verifies that a session computes each macro
// config at most once: after Run, the baseline LiveNet config must be a
// memo hit (this is what stops MacroAblations re-running the baseline).
func TestSessionMemoization(t *testing.T) {
	o := Quick()
	s := NewSession(runner.Parallel())
	res := s.Run(o)
	if s.MemoHits() != 0 {
		t.Fatalf("fresh session reported %d memo hits before any repeat", s.MemoHits())
	}
	again := s.RunMacro(o.macro(core.SystemLiveNet))
	if again != res.LN {
		t.Fatal("memoized RunMacro returned a different result pointer for the same config")
	}
	if s.MemoHits() != 1 {
		t.Fatalf("expected 1 memo hit, got %d", s.MemoHits())
	}
}

// TestRunSeedsDistinct checks multi-seed mode runs genuinely different
// workload seeds and keeps the pairing seed-aligned.
func TestRunSeedsDistinct(t *testing.T) {
	o := Quick()
	s := NewSession(runner.Parallel())
	m := s.RunSeeds(o, 3)
	if len(m.Runs) != 3 || len(m.Seeds) != 3 {
		t.Fatalf("want 3 runs/seeds, got %d/%d", len(m.Runs), len(m.Seeds))
	}
	for i, seed := range m.Seeds {
		if want := o.Seed + int64(i); seed != want {
			t.Fatalf("seed[%d] = %d, want %d", i, seed, want)
		}
		if m.Runs[i].Opt.Seed != seed {
			t.Fatalf("run %d options seed %d != %d", i, m.Runs[i].Opt.Seed, seed)
		}
	}
	if m.Runs[0].LN == m.Runs[1].LN {
		t.Fatal("different seeds returned the same memoized result")
	}
	if tbl := SeedTable(m); tbl == "" {
		t.Fatal("empty seed table")
	}
	// Per-seed runs must themselves be memo-consistent: re-running seed 0
	// serves from the memo.
	if r := s.RunMacro(m.Runs[0].Opt.macro(core.SystemLiveNet)); r != m.Runs[0].LN {
		t.Fatal("seed-0 re-run not served from memo")
	}
}
