package eval

import (
	"fmt"
	"strings"
	"sync"

	"livenet/internal/core"
	"livenet/internal/runner"
	"livenet/internal/stats"
)

// Session runs evaluation experiments on the parallel run scheduler and
// memoizes macro results by config fingerprint: every table, figure, and
// ablation that needs the same (deterministic) run shares one execution,
// and independent runs fan out across workers. A Session is safe for
// concurrent use; results are bit-identical to serial execution because
// each run owns its private sim.Loop, seeded RNG streams, and world.
type Session struct {
	opts runner.Options

	mu     sync.Mutex
	memo   map[string]*memoEntry
	report runner.Report
	hits   int
}

type memoEntry struct {
	once sync.Once
	res  *core.MacroResult
}

// NewSession returns a session executing with the given scheduler options
// (runner.Parallel() for one worker per CPU, runner.Serial() for the
// serial reference schedule).
func NewSession(opts runner.Options) *Session {
	return &Session{opts: opts, memo: make(map[string]*memoEntry)}
}

// RunMacro returns the macro result for cfg, computing it at most once
// per session (config fingerprints key the memo).
func (s *Session) RunMacro(cfg core.MacroConfig) *core.MacroResult {
	key := cfg.Fingerprint()
	s.mu.Lock()
	e := s.memo[key]
	if e == nil {
		e = &memoEntry{}
		s.memo[key] = e
	} else {
		s.hits++
	}
	s.mu.Unlock()
	e.once.Do(func() { e.res = core.RunMacro(cfg) })
	return e.res
}

// MemoHits reports how many RunMacro calls were served from the memo.
func (s *Session) MemoHits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Report returns the accumulated batch accounting: total wall-clock spent
// in fan-outs and the serial-equivalent time (sum of per-run durations),
// from which the harness reports its speedup vs serial execution.
func (s *Session) Report() runner.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

func (s *Session) addReport(r runner.Report) {
	s.mu.Lock()
	s.report.Merge(r)
	s.mu.Unlock()
}

// Run executes both systems on the same workload, fanning the two
// independent simulations out across workers.
func (s *Session) Run(o Options) *Results {
	var ln, hr *core.MacroResult
	rep := runner.Do(s.opts,
		func() { ln = s.RunMacro(o.macro(core.SystemLiveNet)) },
		func() { hr = s.RunMacro(o.macro(core.SystemHier)) },
	)
	s.addReport(rep)
	return &Results{Opt: o, LN: ln, HR: hr}
}

// MacroAblations runs the LiveNet engine with each feature disabled and
// reports the deltas against the baseline. All configurations (including
// the k-sensitivity points) are independent runs and execute in parallel;
// the baseline is shared with any earlier Run of the same Options via the
// session memo instead of being recomputed.
func (s *Session) MacroAblations(o Options) string {
	base := o.macro(core.SystemLiveNet)

	noCache := base
	noCache.DisableGoPCache = true
	noPrefetch := base
	noPrefetch.DisablePrefetch = true
	noLR := base
	noLR.DisableLastResort = true
	noLoad := base
	noLoad.DisableLoadWeights = true
	k1 := base
	k1.KPaths = 1
	k5 := base
	k5.KPaths = 5

	type variant struct {
		name string
		cfg  core.MacroConfig
	}
	variants := []variant{
		{"baseline (paper config)", base},
		{"no GoP cache", noCache},
		{"no path prefetch", noPrefetch},
		{"no last-resort paths", noLR},
		{"pure-RTT weights", noLoad},
		{"k=1 paths", k1},
		{"k=5 paths", k5},
	}

	results, rep := runner.Map(s.opts, variants, func(v variant) *core.MacroResult {
		return s.RunMacro(v.cfg)
	})
	s.addReport(rep)

	t := &stats.Table{Header: []string{"configuration", "fast startup %", "hit ratio %", "last-resort %", "median CDN ms"}}
	for i, v := range variants {
		r := results[i]
		hits, total := 0, 0
		for _, h := range r.HitByHour {
			hits += h.Hits
			total += h.Total
		}
		hr := 0.0
		if total > 0 {
			hr = 100 * float64(hits) / float64(total)
		}
		t.AddRow(v.name,
			fmt.Sprintf("%.1f", r.FastStart.Percent()),
			fmt.Sprintf("%.1f", hr),
			fmt.Sprintf("%.2f", r.LastResort.Percent()),
			fmt.Sprintf("%.0f", r.CDNDelayMs.Median()))
	}
	return "Macro ablations (LiveNet engine)\n" + t.String()
}

// FastSlowTable renders the fast-slow vs store-and-forward ablation
// across a loss sweep, one independent packet-level pair per loss point,
// fanned out across workers.
func (s *Session) FastSlowTable(seed int64, losses []float64) string {
	results, rep := runner.Map(s.opts, losses, func(l float64) FastSlowResult {
		return AblationFastSlow(seed, l)
	})
	s.addReport(rep)
	t := &stats.Table{Header: []string{"loss", "fast-slow p50/p95 (ms)", "delivered", "store&fwd p50/p95 (ms)", "delivered"}}
	for _, r := range results {
		t.AddRow(fmt.Sprintf("%.2f%%", r.Loss*100),
			fmt.Sprintf("%.0f / %.0f", r.FastSlowMedianMs, r.FastSlowP95Ms),
			fmt.Sprintf("%.1f%%", 100*r.FastSlowDelivered),
			fmt.Sprintf("%.0f / %.0f", r.StoreFwdMedianMs, r.StoreFwdP95Ms),
			fmt.Sprintf("%.1f%%", 100*r.StoreFwdDelivered))
	}
	return "Ablation: fast-slow path vs store-and-forward relay (frame delivery latency)\n" + t.String()
}

// --- multi-seed evaluation ---

// MultiResults holds matched evaluation pairs across several workload
// seeds (the serial harness made this unaffordable; the parallel runner
// makes N seeds roughly as cheap as one on N cores).
type MultiResults struct {
	Opt   Options
	Seeds []int64
	Runs  []*Results // Runs[i] pairs both systems on Seeds[i]
}

// RunSeeds evaluates n seeds per system (seeds o.Seed, o.Seed+1, ...) and
// returns the per-seed pairs; all 2n simulations fan out together.
func (s *Session) RunSeeds(o Options, n int) *MultiResults {
	if n < 1 {
		n = 1
	}
	m := &MultiResults{Opt: o}
	type job struct {
		opt Options
		sys core.System
	}
	jobs := make([]job, 0, 2*n)
	for i := 0; i < n; i++ {
		so := o
		so.Seed = o.Seed + int64(i)
		m.Seeds = append(m.Seeds, so.Seed)
		jobs = append(jobs, job{so, core.SystemLiveNet}, job{so, core.SystemHier})
	}
	results, rep := runner.Map(s.opts, jobs, func(j job) *core.MacroResult {
		return s.RunMacro(j.opt.macro(j.sys))
	})
	s.addReport(rep)
	for i := 0; i < n; i++ {
		so := o
		so.Seed = m.Seeds[i]
		m.Runs = append(m.Runs, &Results{Opt: so, LN: results[2*i], HR: results[2*i+1]})
	}
	return m
}

// SeedTable renders headline metrics as mean ± 95% CI across seeds.
func SeedTable(m *MultiResults) string {
	collect := func(f func(*Results) float64) (string, string) {
		ln := make([]float64, 0, len(m.Runs))
		for _, r := range m.Runs {
			ln = append(ln, f(r))
		}
		mean, half := stats.MeanCI95(ln)
		if half == 0 {
			return fmt.Sprintf("%.1f", mean), ""
		}
		return fmt.Sprintf("%.1f", mean), fmt.Sprintf("±%.1f", half)
	}
	t := &stats.Table{Header: []string{"metric", "mean", "95% CI"}}
	add := func(name string, f func(*Results) float64) {
		mean, ci := collect(f)
		t.AddRow(name, mean, ci)
	}
	add("LiveNet CDN delay (ms, median)", func(r *Results) float64 { return r.LN.CDNDelayMs.Median() })
	add("Hier CDN delay (ms, median)", func(r *Results) float64 { return r.HR.CDNDelayMs.Median() })
	add("LiveNet streaming delay (ms, median)", func(r *Results) float64 { return r.LN.Streaming.Median() })
	add("Hier streaming delay (ms, median)", func(r *Results) float64 { return r.HR.Streaming.Median() })
	add("LiveNet 0-stall ratio (%)", func(r *Results) float64 { return r.LN.ZeroStall.Percent() })
	add("Hier 0-stall ratio (%)", func(r *Results) float64 { return r.HR.ZeroStall.Percent() })
	add("LiveNet fast startup (%)", func(r *Results) float64 { return r.LN.FastStart.Percent() })
	add("Hier fast startup (%)", func(r *Results) float64 { return r.HR.FastStart.Percent() })

	var b strings.Builder
	fmt.Fprintf(&b, "Multi-seed stability: %d seeds (%d..%d)\n",
		len(m.Seeds), m.Seeds[0], m.Seeds[len(m.Seeds)-1])
	b.WriteString(t.String())
	return b.String()
}
