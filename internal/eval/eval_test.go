package eval

import (
	"strings"
	"sync"
	"testing"
)

// shared runs the quick pair once for all renderer tests.
var (
	sharedOnce sync.Once
	sharedRes  *Results
)

func quickResults(t *testing.T) *Results {
	t.Helper()
	sharedOnce.Do(func() { sharedRes = Run(Quick()) })
	return sharedRes
}

func TestTable1Shape(t *testing.T) {
	r := quickResults(t)
	out := Table1(r)
	for _, want := range []string{"CDN path delay", "Streaming delay", "0-stall", "Fast startup", "t-test"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 missing %q:\n%s", want, out)
		}
	}
	// Shape targets.
	if r.LN.CDNDelayMs.Median() >= r.HR.CDNDelayMs.Median()/1.6 {
		t.Fatalf("LiveNet should roughly halve CDN delay: %v vs %v",
			r.LN.CDNDelayMs.Median(), r.HR.CDNDelayMs.Median())
	}
	if r.LN.PathLen.Median() != 2 || r.HR.PathLen.Median() != 4 {
		t.Fatalf("path length medians: %v vs %v", r.LN.PathLen.Median(), r.HR.PathLen.Median())
	}
}

func TestFig2Shape(t *testing.T) {
	r := quickResults(t)
	out := Fig2(r)
	if !strings.Contains(out, "Figure 2") || strings.Count(out, "\n") < 3 {
		t.Fatalf("Fig2 too short:\n%s", out)
	}
	// Every day LiveNet < Hier.
	for d, ds := range r.LN.ByDay {
		if hs := r.HR.ByDay[d]; hs != nil {
			if ds.CDNDelayMs.Median() >= hs.CDNDelayMs.Median() {
				t.Fatalf("day %d: LiveNet %v >= Hier %v", d, ds.CDNDelayMs.Median(), hs.CDNDelayMs.Median())
			}
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	r := quickResults(t)
	if out := Fig8a(r); !strings.Contains(out, "CDF") {
		t.Fatalf("Fig8a:\n%s", out)
	}
	// LiveNet CDF must dominate (be left of) Hier's at 1000 ms.
	lnF := r.LN.Streaming.FractionBelow(1000)
	hrF := r.HR.Streaming.FractionBelow(1000)
	if lnF <= hrF {
		t.Fatalf("CDF at 1s: LiveNet %.3f <= Hier %.3f", lnF, hrF)
	}
	if out := Fig8b(r); !strings.Contains(out, "stalls") {
		t.Fatalf("Fig8b:\n%s", out)
	}
	if out := Fig8c(r); !strings.Contains(out, "Fast startup") {
		t.Fatalf("Fig8c:\n%s", out)
	}
}

func TestFig9GoPCacheEffect(t *testing.T) {
	r := quickResults(t)
	out := Fig9(r)
	if !strings.Contains(out, "(700,1000]") {
		t.Fatalf("Fig9 missing buckets:\n%s", out)
	}
	// The paper's point: startup stays high even in slower buckets.
	if b := r.LN.StartupByDelay["(1000,1500]"]; b != nil && b.Total > 100 {
		if b.Percent() < 75 {
			t.Fatalf("fast startup in (1000,1500] bucket = %.1f%%, want high (GoP cache)", b.Percent())
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	r := quickResults(t)
	if out := Fig10a(r); !strings.Contains(out, "median") {
		t.Fatalf("Fig10a:\n%s", out)
	}
	if out := Fig10b(r); !strings.Contains(out, "hit ratio") {
		t.Fatalf("Fig10b:\n%s", out)
	}
	if out := Fig10c(r); !strings.Contains(out, "First-packet") {
		t.Fatalf("Fig10c:\n%s", out)
	}
}

func TestTable2Shape(t *testing.T) {
	r := quickResults(t)
	out := Table2(r)
	if !strings.Contains(out, "Intra-nation.") {
		t.Fatalf("Table2:\n%s", out)
	}
	// 2-hop dominates; international has more >=3 than intra.
	total, n2 := 0, r.LN.LenCounts[2]
	for _, c := range r.LN.LenCounts {
		total += c
	}
	if float64(n2)/float64(total) < 0.5 {
		t.Fatalf("2-hop share %.2f, want dominant", float64(n2)/float64(total))
	}
	interTotal, intraTotal := 0, 0
	inter3, intra3 := 0, 0
	for l, c := range r.LN.LenInter {
		interTotal += c
		if l >= 3 {
			inter3 += c
		}
	}
	for l, c := range r.LN.LenIntra {
		intraTotal += c
		if l >= 3 {
			intra3 += c
		}
	}
	if interTotal > 0 && intraTotal > 0 {
		if float64(inter3)/float64(interTotal) <= float64(intra3)/float64(intraTotal) {
			t.Fatal("international paths should have a larger >=3-hop share")
		}
	}
}

func TestFig11DelayGrowsWithLength(t *testing.T) {
	r := quickResults(t)
	out := Fig11(r)
	if !strings.Contains(out, "Hier len=4") {
		t.Fatalf("Fig11:\n%s", out)
	}
	d1 := r.LN.DelayByLen[1]
	d2 := r.LN.DelayByLen[2]
	if d1 != nil && d2 != nil && d1.N() > 50 && d2.N() > 50 {
		if d2.Median() <= d1.Median() {
			t.Fatalf("delay should grow with hops: len1=%v len2=%v", d1.Median(), d2.Median())
		}
	}
	// All LiveNet boxes below Hier's.
	if r.LN.DelayByLen[2].Median() >= r.HR.CDNDelayMs.Median() {
		t.Fatal("LiveNet 2-hop delay should beat Hier")
	}
}

func TestFig12Ordering(t *testing.T) {
	r := quickResults(t)
	out := Fig12(r)
	if !strings.Contains(out, "LiveNet intra") {
		t.Fatalf("Fig12:\n%s", out)
	}
	if !(r.LN.IntraDelay.Median() < r.LN.InterDelay.Median()) {
		t.Fatal("intra should beat inter for LiveNet")
	}
	if !(r.LN.IntraDelay.Median() < r.HR.IntraDelay.Median()) {
		t.Fatal("LiveNet intra should beat Hier intra")
	}
}

func TestFig13UnderCap(t *testing.T) {
	r := quickResults(t)
	out := Fig13(r)
	if !strings.Contains(out, "peak:") {
		t.Fatalf("Fig13:\n%s", out)
	}
	for _, h := range r.LN.LossByHour.Buckets() {
		if v := r.LN.LossByHour.Bucket(h).Mean(); v > 0.175 {
			t.Fatalf("hour %d loss %.4f%% above cap", h, v)
		}
	}
}

func TestFig14AndTable3(t *testing.T) {
	// Needs the festival: small 12-day run covering Dec 10-13.
	o := Quick()
	o.Days = 13
	o.Double12 = true
	r := Run(o)
	out := Fig14(r)
	if !strings.Contains(out, "norm. peak") {
		t.Fatalf("Fig14:\n%s", out)
	}
	// Festival days (10, 11 zero-based) must be the peak.
	maxDay, maxPeak := -1, 0
	for d, ds := range r.LN.ByDay {
		if ds.PeakConcurrency > maxPeak {
			maxPeak, maxDay = ds.PeakConcurrency, d
		}
	}
	if maxDay != 10 && maxDay != 11 {
		t.Fatalf("peak day = %d, want the festival (10/11)", maxDay)
	}
	out3 := Table3(r)
	if !strings.Contains(out3, "Dec 11-12") {
		t.Fatalf("Table3:\n%s", out3)
	}
	// No noticeable degradation during the festival (within a few points).
	fest := r.LN.ByDay[10]
	normal := r.LN.ByDay[9]
	if fest.ZeroStall.Percent() < normal.ZeroStall.Percent()-3 {
		t.Fatalf("festival 0-stall degraded: %.1f vs %.1f",
			fest.ZeroStall.Percent(), normal.ZeroStall.Percent())
	}
}

func TestCohortSummaryAndTable1(t *testing.T) {
	o := Options{Seed: 7, Sites: 16, Hours: 4, Viewers: 50_000, Channels: 40}
	r := Run(o)
	if r.LN.CohortQoE == nil || r.HR.CohortQoE == nil {
		t.Fatal("Viewers option did not produce cohort-aggregated runs")
	}
	out := CohortSummary(r)
	for _, want := range []string{"represented viewers", "traced exactly", "rebuffer ratio", "peak concurrency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CohortSummary missing %q:\n%s", want, out)
		}
	}
	// Table 1 must report the pooled ratios and flag the tracer subset.
	t1 := Table1(r)
	if !strings.Contains(t1, "cohort-aggregated") {
		t.Fatalf("Table1 on a cohort run should flag the traced subset:\n%s", t1)
	}
	// Plain runs render no cohort summary.
	if s := CohortSummary(quickResults(t)); s != "" {
		t.Fatalf("CohortSummary on a per-viewer run = %q, want empty", s)
	}
}

func TestAblationFastSlow(t *testing.T) {
	r := AblationFastSlow(1, 0.01)
	if r.FastSlowMedianMs <= 0 || r.StoreFwdMedianMs <= 0 {
		t.Fatalf("no latency measured: %+v", r)
	}
	// Fast-slow must beat the full-stack store-and-forward chain.
	if r.FastSlowMedianMs >= r.StoreFwdMedianMs {
		t.Fatalf("fast-slow median %v >= store&fwd %v", r.FastSlowMedianMs, r.StoreFwdMedianMs)
	}
	if r.FastSlowRecovered == 0 {
		t.Fatal("1% loss should have triggered retransmissions")
	}
	out := FastSlowTable(1, []float64{0, 0.01})
	if !strings.Contains(out, "store&fwd") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestAblationLinkWeights(t *testing.T) {
	out := AblationLinkWeights(3)
	if !strings.Contains(out, "load-aware path") {
		t.Fatalf("output:\n%s", out)
	}
	// The load-aware route must avoid node 1 (the hot relay).
	lines := strings.Split(out, "\n")
	var pure, aware string
	for _, l := range lines {
		if strings.HasPrefix(l, "pure-RTT path:") {
			pure = l
		}
		if strings.HasPrefix(l, "load-aware path:") {
			aware = l
		}
	}
	if !strings.Contains(pure, "[0 1 2]") {
		t.Fatalf("pure-RTT should go through the hot relay: %s", pure)
	}
	if strings.Contains(aware, "[0 1 2]") {
		t.Fatalf("load-aware should avoid the hot relay: %s", aware)
	}
}

func TestMacroAblations(t *testing.T) {
	o := Quick()
	o.Days = 1
	out := MacroAblations(o)
	for _, want := range []string{"baseline", "no GoP cache", "no path prefetch", "k=1", "k=5", "pure-RTT weights"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablations missing %q:\n%s", want, out)
		}
	}
}
