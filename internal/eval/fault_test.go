package eval

import (
	"reflect"
	"strings"
	"testing"
)

// TestFaultReportReplaysByteIdentically is the chaos-plane analogue of
// TestParallelMatchesSerial: a fixed seed must replay the fault timeline
// and the rendered recovery report byte-for-byte.
func TestFaultReportReplaysByteIdentically(t *testing.T) {
	a := FaultReport(42)
	b := FaultReport(42)
	if a != b {
		t.Fatalf("same seed produced different reports:\n%s\n---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty report")
	}
	for _, want := range []string{"node-crash", "replica-kill", "fault schedule:"} {
		if !strings.Contains(a, want) {
			t.Fatalf("report missing %q:\n%s", want, a)
		}
	}
}

// TestFaultReportSerialBatchedEquivalence pins the zero-copy data
// plane's correctness contract: the vectored/batched submit path must be
// a pure mechanical optimization. Replaying the full fault evaluation
// with batching disabled (every packet through plain Sender.Send) must
// render a byte-identical report — same arrivals, same recovery edges,
// same telemetry — or the fast path changed observable behaviour.
func TestFaultReportSerialBatchedEquivalence(t *testing.T) {
	batched := FaultReport(42)
	SerialDataPlane = true
	defer func() { SerialDataPlane = false }()
	serial := FaultReport(42)
	if batched != serial {
		t.Fatalf("batched and serial data planes diverged:\n--- batched ---\n%s\n--- serial ---\n%s", batched, serial)
	}
}

// TestRelayCrashPaperShape pins the paper-shaped result: LiveNet's
// silence detection + pre-delivered backups recover an order of
// magnitude faster than the centralized baseline.
func TestRelayCrashPaperShape(t *testing.T) {
	ln, hr := RelayCrashCompare(42)
	if ln.FastSwitches < 1 {
		t.Fatalf("LiveNet never fast-switched: %+v", ln)
	}
	if ln.RecoveredAfterMs <= 0 || hr.RecoveredAfterMs <= 0 {
		t.Fatalf("missing recovery edge: ln=%.0f hr=%.0f", ln.RecoveredAfterMs, hr.RecoveredAfterMs)
	}
	if ln.RecoveredAfterMs >= hr.RecoveredAfterMs/4 {
		t.Fatalf("LiveNet recovery %.0f ms not clearly faster than Hier %.0f ms",
			ln.RecoveredAfterMs, hr.RecoveredAfterMs)
	}
	// The switch must complete within ~2x the 300 ms detection window.
	if ln.OutageMs > 2*ln.DetectionMs+100 {
		t.Fatalf("LiveNet viewer outage %.0f ms exceeds the detection budget", ln.OutageMs)
	}
	if ln.FramesPlayed <= hr.FramesPlayed {
		t.Fatalf("LiveNet should play more frames through the fault: %d vs %d",
			ln.FramesPlayed, hr.FramesPlayed)
	}
}

// TestCacheFallbackRecoversWithoutBrain pins §4.4's node-local path
// cache: with the Brain unreachable and both relays dead, the consumer
// cycles its cached paths and resumes as soon as a relay returns.
func TestCacheFallbackRecoversWithoutBrain(t *testing.T) {
	cf := CacheFallback(42)
	if cf.CacheFallbacks < 1 {
		t.Fatalf("local path cache never used: %+v", cf)
	}
	if cf.RecoveredAfterMs <= 0 {
		t.Fatal("playback never resumed after the double crash")
	}
	// Relay 1 restarts 2 s after the crash; recovery should follow within
	// a couple of retry windows, not wait out the run.
	if cf.RecoveredAfterMs > 4500 {
		t.Fatalf("recovered %.0f ms after crash, want shortly after the 2 s restart", cf.RecoveredAfterMs)
	}
}

// TestQuorumPartitionConvergesAfterHeal pins the chaos coverage for
// internal/replication: a seeded schedule cuts one replica of a shard's
// 3-replica Paxos quorum from consensus traffic mid-run, the remaining
// majority keeps committing SIB registrations, and after the heal all
// three logs converge. The whole run, timeline included, replays
// byte-identically from the seed.
func TestQuorumPartitionConvergesAfterHeal(t *testing.T) {
	a := QuorumPartition(42)
	b := QuorumPartition(42)
	if a.Timeline != b.Timeline {
		t.Fatalf("timelines differ:\n%s\n---\n%s", a.Timeline, b.Timeline)
	}
	if !strings.Contains(a.Timeline, "replica-partition replica=2") ||
		!strings.Contains(a.Timeline, "replica-heal replica=2") {
		t.Fatalf("timeline missing partition/heal events:\n%s", a.Timeline)
	}
	if a.Proposals != 4 {
		t.Fatalf("proposals = %d, want 4", a.Proposals)
	}
	if len(a.CommittedDuring) != 3 || len(a.CommittedAfter) != 3 {
		t.Fatalf("expected 3 replicas: during=%v after=%v", a.CommittedDuring, a.CommittedAfter)
	}
	// While cut off, replica 2's log must lag the surviving majority.
	if a.CommittedDuring[2] >= a.CommittedDuring[0] {
		t.Fatalf("partitioned replica log did not stall: during=%v", a.CommittedDuring)
	}
	if !a.Converged {
		t.Fatalf("replica logs did not converge after heal: %v", a.CommittedAfter)
	}
	if a.CommittedAfter[0] < a.Proposals {
		t.Fatalf("committed %d < %d proposals after heal", a.CommittedAfter[0], a.Proposals)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}

// TestRollingRestartZeroAddedStalls pins the planned-reconfiguration
// headline (ROADMAP item 4): restarting the entire relay fleet one node
// at a time adds zero viewer stalls when each relay is drained first
// (make-before-break migration), while the Hier baseline — cold
// restarts, reactive detection only — makes viewers pay.
func TestRollingRestartZeroAddedStalls(t *testing.T) {
	ln, hr := RollingRestartCompare(42)
	if ln.Fleet < 3 {
		t.Fatalf("fleet too small to be interesting: %+v", ln)
	}
	if ln.Viewers != len(rollingViewerLocs) || hr.Viewers != ln.Viewers {
		t.Fatalf("viewers: ln=%d hr=%d want %d", ln.Viewers, hr.Viewers, len(rollingViewerLocs))
	}
	if ln.DrainMigrations < 1 {
		t.Fatalf("drains never migrated a stream — the fleet carried nothing: %+v", ln)
	}
	if ln.LeftoverAtCrash != 0 {
		t.Fatalf("%d streams still rode draining relays at crash time", ln.LeftoverAtCrash)
	}
	if ln.AddedStalls > 0 {
		t.Fatalf("LiveNet rolling restart added %d stalls (restart %d vs baseline %d)",
			ln.AddedStalls, ln.RestartStalls, ln.BaselineStalls)
	}
	if hr.AddedStalls <= 0 {
		t.Fatalf("Hier baseline paid nothing for blind restarts (restart %d vs baseline %d) — comparison is vacuous",
			hr.RestartStalls, hr.BaselineStalls)
	}
	if ln.DrainMigrations > 0 && ln.MigrationsDone == 0 && ln.PlannedSwitches == 0 {
		t.Fatalf("drain migrations scheduled but none completed on surviving nodes: %+v", ln)
	}
}

// TestBrainOutageNoRoutingLoss pins replica failover: killing one of
// three Paxos replicas mid-run loses no lookup and starts every viewer.
func TestBrainOutageNoRoutingLoss(t *testing.T) {
	bo := BrainOutage(42)
	if bo.Failovers < 1 {
		t.Fatalf("no lookup ever homed to the dead replica: %+v", bo)
	}
	if bo.LookupFailures != 0 {
		t.Fatalf("%d lookups failed during the replica outage", bo.LookupFailures)
	}
	if bo.Started != bo.Viewers {
		t.Fatalf("only %d/%d viewers started", bo.Started, bo.Viewers)
	}
}
