package eval

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"livenet/internal/chaos"
	"livenet/internal/client"
	"livenet/internal/core"
	"livenet/internal/media"
	"livenet/internal/netem"
	"livenet/internal/node"
	"livenet/internal/sim"
	"livenet/internal/stats"
	"livenet/internal/wire"
	"livenet/internal/workload"
)

// --- Fault tolerance (§4.3/§7.1): failure recovery under injected faults ---
//
// Three experiments, all driven by the chaos engine against the same
// virtual clock as the system under test, so a fixed seed replays the
// fault timeline and the recovery behaviour byte-identically:
//
//  1. Mid-path relay crash: LiveNet's silence detection + fast switch to
//     a pre-delivered backup path, against a Hier-style baseline that
//     must notice the outage itself and re-resolve through a slow
//     centralized control plane.
//  2. Brain unreachable: every path lookup fails while a double relay
//     crash forces a re-path; the consumer node serves from its local
//     path cache and recovers with no working control plane at all.
//  3. Brain-replica outage: a packet-level cluster with a 3-replica
//     Paxos Brain loses one replica mid-run; consumer lookups fail over
//     to the next live replica and no lookup is ever lost.

// chainInjector adapts the hand-wired relay-chain topology (built
// directly on node.New + netem, no Cluster) to the chaos fault surface.
// Replica and last-mile faults have no meaning here and are no-ops.
type chainInjector struct {
	net     *netem.Network
	nodes   map[int]*node.Node
	rebuild func(id int) *node.Node
	// peers lists each overlay node's link neighbors (for crash = all
	// incident links dark).
	peers map[int][]int
	down  map[int]bool
}

func (ci *chainInjector) CrashNode(id int) {
	if ci.down[id] {
		return
	}
	ci.down[id] = true
	ci.nodes[id].Close()
	ci.net.Handle(id, nil)
	for _, p := range ci.peers[id] {
		ci.net.SetLinkUp(id, p, false)
		ci.net.SetLinkUp(p, id, false)
	}
}

func (ci *chainInjector) RestartNode(id int) {
	if !ci.down[id] {
		return
	}
	ci.down[id] = false
	n := ci.rebuild(id)
	ci.nodes[id] = n
	ci.net.Handle(id, n.OnMessage)
	for _, p := range ci.peers[id] {
		if !ci.down[p] {
			ci.net.SetLinkUp(id, p, true)
			ci.net.SetLinkUp(p, id, true)
		}
	}
}

func (ci *chainInjector) SetOverlayLink(a, b int, up bool) {
	ci.net.SetLinkUp(a, b, up)
	ci.net.SetLinkUp(b, a, up)
}

func (ci *chainInjector) SetOverlayBurst(a, b int, cfg *netem.BurstConfig) {
	ci.net.SetBurst(a, b, cfg)
	ci.net.SetBurst(b, a, cfg)
}

func (ci *chainInjector) DegradeLastMile(int, float64) int { return 0 }
func (ci *chainInjector) RestoreLastMile(int)              {}
func (ci *chainInjector) KillReplica(int)                  {}
func (ci *chainInjector) RestartReplica(int)               {}
func (ci *chainInjector) PartitionReplica(int)             {}
func (ci *chainInjector) HealReplica(int)                  {}
func (ci *chainInjector) DrainNode(int) int                { return 0 }
func (ci *chainInjector) UndrainNode(int)                  {}

// RelayCrashResult summarizes one relay-crash run at the viewer.
type RelayCrashResult struct {
	System string
	// DetectionMs is the configured upstream-silence window.
	DetectionMs float64
	// PathSwitchMs is the overlay interruption: the gap in RTP arrivals
	// at the consumer *node* opened by the crash (detection + switch +
	// re-establishment on the backup path).
	PathSwitchMs float64
	// OutageMs is the viewer-visible interruption: the arrival gap at
	// the viewer opened by the crash.
	OutageMs float64
	// RecoveredAfterMs is crash → first viewer packet after the outage.
	RecoveredAfterMs float64
	// StallsDuringFault counts playback stalls in the 4 s fault window;
	// Stalls is the whole run. FramesMissed counts frames that never
	// played at all (a long outage loses frames outright rather than
	// stalling on them).
	StallsDuringFault int
	Stalls            int
	FramesPlayed      int
	FramesMissed      int
	// PostFaultDelayMs is the median capture→display delay over the last
	// quarter of the run: a system that "recovers" by shifting its
	// playback timeline keeps paying the outage as latency ever after,
	// while one that sheds frames returns to low delay.
	PostFaultDelayMs float64
	FastSwitches     uint64
	CacheFallbacks   uint64
	Timeline         string
}

// faultGap finds the first inter-arrival gap >= 200 ms opened at or
// after the crash (ignoring the end-of-broadcast tail) and returns its
// width and far edge, or (0, -1) when delivery was never interrupted.
func faultGap(arrivals []time.Duration) (time.Duration, time.Duration) {
	for i := 1; i < len(arrivals); i++ {
		prev, cur := arrivals[i-1], arrivals[i]
		if cur < rcCrashAt || cur > rcStopAt {
			continue
		}
		if g := cur - prev; g >= 200*time.Millisecond {
			return g, cur
		}
	}
	return 0, -1
}

// relayCrashConfig parameterizes the hand-wired chain run.
type relayCrashConfig struct {
	system string
	// paths are the overlay paths the control plane answers with (first
	// is primary, rest are the pre-delivered backups).
	paths [][]int
	// lookupDelay models the control-plane round trip.
	lookupDelay time.Duration
	// detect is the node's upstream-silence window; establish is its
	// stuck-Subscribe retry window.
	detect, establish time.Duration
	// hierRefresh, when > 0, makes the control plane keep answering with
	// the dead primary path until crashAt+hierRefresh (a centralized
	// resolver with a slow view refresh). Zero answers `paths` always.
	hierRefresh time.Duration
	// brainDownAt, when > 0, fails every lookup issued at or after it
	// (the Brain is unreachable; nodes must use their local path cache).
	brainDownAt time.Duration
	scenario    chaos.Scenario
}

// Topology for the relay-crash runs:
//
//	broadcaster(1000) — producer(0) —{ relay(1) | relay(3) | direct }— consumer(2) — viewer(2000)
const (
	rcBroadcaster = 1000
	rcProducer    = 0
	rcRelayA      = 1
	rcConsumer    = 2
	rcRelayB      = 3
	rcViewer      = 2000
	rcCrashAt     = 6 * time.Second
	rcStopAt      = 14 * time.Second
)

// runRelayCrash broadcasts 14 s of video through the chain, applies the
// scenario, and measures the viewer-visible outage and recovery.
func runRelayCrash(seed int64, cfg relayCrashConfig) RelayCrashResult {
	loop := sim.NewLoop(seed)
	net := netem.New(loop, loop.RNG("netem"))
	edge := netem.LinkConfig{RTT: 10 * time.Millisecond, BandwidthBps: 100e6}
	hop := netem.LinkConfig{RTT: 30 * time.Millisecond, BandwidthBps: 100e6}
	net.AddDuplex(rcBroadcaster, rcProducer, edge)
	net.AddDuplex(rcProducer, rcRelayA, hop)
	net.AddDuplex(rcRelayA, rcConsumer, hop)
	net.AddDuplex(rcProducer, rcRelayB, hop)
	net.AddDuplex(rcRelayB, rcConsumer, hop)
	// The direct leg exists but is slower than either relay route.
	net.AddDuplex(rcProducer, rcConsumer, netem.LinkConfig{RTT: 70 * time.Millisecond, BandwidthBps: 100e6})
	net.AddDuplex(rcConsumer, rcViewer, edge)

	lookup := func(_ uint32, _ int, cb func([][]int, error)) {
		asked := loop.Now()
		loop.AfterFunc(cfg.lookupDelay, func() {
			if cfg.brainDownAt > 0 && asked >= cfg.brainDownAt {
				cb(nil, core.ErrBrainUnreachable)
				return
			}
			answer := cfg.paths
			if cfg.hierRefresh > 0 && asked >= rcCrashAt+cfg.hierRefresh {
				// The centralized view finally refreshed: route via the
				// other relay.
				answer = [][]int{{rcProducer, rcRelayB, rcConsumer}}
			}
			// Fresh copies per answer: nodes keep references.
			out := make([][]int, len(answer))
			for i, p := range answer {
				out[i] = append([]int(nil), p...)
			}
			cb(out, nil)
		})
	}
	mkNode := func(id int) *node.Node {
		return node.New(node.Config{
			ID: id, Clock: loop, Net: net,
			SerialSend:       SerialDataPlane,
			PathLookup:       lookup,
			LinkRTT:          func(int) time.Duration { return 30 * time.Millisecond },
			IsOverlay:        func(id int) bool { return id < rcBroadcaster },
			UpstreamTimeout:  cfg.detect,
			EstablishTimeout: cfg.establish,
			// Keep the GCC floor above the single rendition's bitrate:
			// the loss controller collapses during the outage (it cannot
			// tell upstream holes from last-mile loss), and with only
			// one rendition the §5.2 simulcast down-switch — the
			// production escape hatch — is not available here.
			MinRateBps: 4e6,
		})
	}
	inj := &chainInjector{
		net:     net,
		nodes:   make(map[int]*node.Node),
		rebuild: mkNode,
		peers: map[int][]int{
			rcProducer: {rcBroadcaster, rcRelayA, rcRelayB, rcConsumer},
			rcRelayA:   {rcProducer, rcConsumer},
			rcConsumer: {rcProducer, rcRelayA, rcRelayB, rcViewer},
			rcRelayB:   {rcProducer, rcConsumer},
		},
		down: make(map[int]bool),
	}
	var nodeArrivals []time.Duration
	for _, id := range []int{rcProducer, rcRelayA, rcConsumer, rcRelayB} {
		id := id
		n := mkNode(id)
		inj.nodes[id] = n
		handler := n.OnMessage
		if id == rcConsumer {
			// Tap overlay RTP reaching the consumer node: the gap here is
			// the pure path-switch latency, before last-mile effects.
			handler = func(from int, data []byte) {
				if from < rcBroadcaster && wire.Kind(data) == wire.MsgRTP {
					nodeArrivals = append(nodeArrivals, loop.Now())
				}
				inj.nodes[rcConsumer].OnMessage(from, data)
			}
		}
		net.Handle(id, handler)
	}

	bc := client.NewBroadcaster(rcBroadcaster, rcProducer, 100, media.DefaultRenditions[:1], loop, net, loop.RNG("media"))
	sid := bc.StreamID(0)
	v := client.NewViewer(rcViewer, sid, rcConsumer, loop, net)
	var arrivals, stallTimes []time.Duration
	v.OnStall = func(int) { stallTimes = append(stallTimes, loop.Now()) }
	net.Handle(rcViewer, func(from int, data []byte) {
		if wire.Kind(data) == wire.MsgRTP {
			arrivals = append(arrivals, loop.Now())
		}
		v.OnMessage(from, data)
	})

	eng := chaos.NewEngine(loop, inj)
	eng.Install(cfg.scenario)

	bc.Start()
	loop.AfterFunc(time.Second, func() {
		v.Attach()
		inj.nodes[rcConsumer].AttachViewer(rcViewer, sid)
	})
	// Snapshot at broadcast stop: the end-of-broadcast silence would
	// otherwise re-fire the upstream detector and muddy the counters.
	var m node.Metrics
	var s client.ViewStats
	loop.AfterFunc(rcStopAt, func() {
		bc.Stop()
		m = inj.nodes[rcConsumer].Metrics()
		s = v.Stats()
	})
	loop.RunUntil(16 * time.Second)

	switchGap, _ := faultGap(nodeArrivals)
	outage, recoveredAt := faultGap(arrivals)
	var postDelay time.Duration
	if n := len(s.StreamingDelay); n > 0 {
		tail := append([]time.Duration(nil), s.StreamingDelay[n*3/4:]...)
		slices.Sort(tail)
		postDelay = tail[len(tail)/2]
	}
	res := RelayCrashResult{
		System:           cfg.system,
		DetectionMs:      float64(cfg.detect) / float64(time.Millisecond),
		PathSwitchMs:     float64(switchGap) / float64(time.Millisecond),
		OutageMs:         float64(outage) / float64(time.Millisecond),
		Stalls:           s.Stalls,
		FramesPlayed:     s.FramesPlayed,
		FramesMissed:     s.FramesMissed,
		PostFaultDelayMs: float64(postDelay) / float64(time.Millisecond),
		FastSwitches:     m.FastSwitches,
		CacheFallbacks:   m.CacheFallbacks,
		Timeline:         eng.TimelineString(),
	}
	if recoveredAt >= rcCrashAt {
		res.RecoveredAfterMs = float64(recoveredAt-rcCrashAt) / float64(time.Millisecond)
	}
	for _, st := range stallTimes {
		if st >= rcCrashAt && st <= rcCrashAt+4*time.Second {
			res.StallsDuringFault++
		}
	}
	return res
}

// relayCrashScenario is the shared fault schedule of experiment 1: the
// primary relay fail-stops mid-broadcast and never comes back.
func relayCrashScenario() chaos.Scenario {
	return chaos.Scenario{
		Name:   "relay-crash",
		Faults: []chaos.Fault{{Kind: chaos.NodeCrash, At: rcCrashAt, Node: rcRelayA}},
	}
}

// RelayCrashCompare runs the mid-path relay crash for both systems on
// the same seed and fault schedule. LiveNet holds k=3 pre-delivered
// paths and detects upstream silence in 300 ms; the Hier baseline has a
// single path, a 3 s detection window, and a centralized resolver that
// keeps answering with the dead path until its view refreshes.
func RelayCrashCompare(seed int64) (ln, hr RelayCrashResult) {
	ln = runRelayCrash(seed, relayCrashConfig{
		system: "LiveNet",
		paths: [][]int{
			{rcProducer, rcRelayA, rcConsumer},
			{rcProducer, rcRelayB, rcConsumer},
			{rcProducer, rcConsumer},
		},
		lookupDelay: 5 * time.Millisecond,
		detect:      300 * time.Millisecond,
		establish:   500 * time.Millisecond,
		scenario:    relayCrashScenario(),
	})
	hr = runRelayCrash(seed, relayCrashConfig{
		system:      "Hier",
		paths:       [][]int{{rcProducer, rcRelayA, rcConsumer}},
		lookupDelay: 150 * time.Millisecond,
		detect:      3 * time.Second,
		establish:   3 * time.Second,
		hierRefresh: 2500 * time.Millisecond,
		scenario:    relayCrashScenario(),
	})
	return ln, hr
}

// CacheFallback runs experiment 2: the Brain becomes unreachable, then
// both relays crash (one restarts shortly after). With every lookup
// failing, the consumer node cycles through its cached paths until the
// restarted relay answers — recovery with no working control plane.
func CacheFallback(seed int64) RelayCrashResult {
	return runRelayCrash(seed, relayCrashConfig{
		system: "LiveNet (Brain down)",
		paths: [][]int{
			{rcProducer, rcRelayA, rcConsumer},
			{rcProducer, rcRelayB, rcConsumer},
		},
		lookupDelay: 5 * time.Millisecond,
		detect:      300 * time.Millisecond,
		establish:   500 * time.Millisecond,
		brainDownAt: 5 * time.Second,
		scenario: chaos.Scenario{
			Name: "brain-down-double-crash",
			Faults: []chaos.Fault{
				{Kind: chaos.NodeCrash, At: rcCrashAt, Until: 8 * time.Second, Node: rcRelayA},
				{Kind: chaos.NodeCrash, At: rcCrashAt, Node: rcRelayB},
			},
		},
	})
}

// BrainOutageResult summarizes the replica-outage cluster run.
type BrainOutageResult struct {
	Viewers        int
	Started        int
	Failovers      uint64
	LookupFailures uint64
	Lookups        int
	Timeline       string
}

// BrainOutage runs experiment 3: a 10-site packet-level cluster with a
// 3-replica Paxos Brain loses replica 1 for the middle of the run while
// viewers keep arriving. Lookups homed to the dead replica time out and
// fail over to the next live one; none is lost.
func BrainOutage(seed int64) BrainOutageResult {
	c := core.NewCluster(core.ClusterConfig{
		Seed:                seed,
		Sites:               10,
		Replicas:            3,
		DiscoveryInterval:   20 * time.Second,
		NodeUpstreamTimeout: 500 * time.Millisecond,
		SerialSend:          SerialDataPlane,
	})
	defer c.Close()

	eng := chaos.NewEngine(c.Loop, c)
	eng.Install(chaos.Scenario{
		Name: "replica-outage",
		Faults: []chaos.Fault{
			{Kind: chaos.ReplicaKill, At: 4 * time.Second, Until: 12 * time.Second, Replica: 1},
		},
	})

	bc := c.NewBroadcasterAt(31.2, 121.5, 100, media.DefaultRenditions[:1])
	bc.Start()
	sid := bc.StreamID(0)

	// One viewer per site (placed at the site's own coordinates so DNS
	// maps it there), arriving before, during, and after the outage. A
	// viewer's home replica is its consumer mod 3, so sites 1, 4, 7 home
	// to the killed replica; the ones arriving in the outage window must
	// fail over.
	order := []int{2, 5, 1, 4, 7, 0, 3, 6, 8, 9}
	views := make([]*core.Viewing, 0, len(order))
	for i, site := range order {
		if site == bc.Producer {
			continue
		}
		lat, lon := c.World.Sites[site].Lat, c.World.Sites[site].Lon
		c.Loop.AfterFunc(time.Duration(i+1)*1300*time.Millisecond, func() {
			views = append(views, c.NewViewerAt(lat, lon, sid))
		})
	}
	c.Run(18 * time.Second)

	res := BrainOutageResult{
		Viewers:        len(views),
		Failovers:      c.BrainFailovers,
		LookupFailures: c.BrainLookupFailures,
		Lookups:        c.RespTimes.N(),
		Timeline:       eng.TimelineString(),
	}
	for _, v := range views {
		if v.Stats().Started {
			res.Started++
		}
	}
	return res
}

// QuorumPartitionResult summarizes the shard-quorum partition run.
type QuorumPartitionResult struct {
	// CommittedDuring is each replica's committed-log length while the
	// partition still holds; CommittedAfter the lengths at run end.
	CommittedDuring []int
	CommittedAfter  []int
	// Proposals is how many SIB operations the run proposed.
	Proposals int
	// Converged reports whether every replica's log matched at the end.
	Converged bool
	Timeline  string
}

// QuorumPartition runs experiment 4: a shard's 3-replica Paxos group
// (§7.1 — the same group a brainfed shard replicates through) has one
// replica partitioned away from consensus traffic mid-run while streams
// keep registering. The partitioned replica keeps serving lookups but
// its log stalls; proposals homed to it retry until the heal, and after
// the heal every replica converges on the same committed log.
func QuorumPartition(seed int64) QuorumPartitionResult {
	c := core.NewCluster(core.ClusterConfig{
		Seed:              seed,
		Sites:             10,
		Replicas:          3,
		DiscoveryInterval: 20 * time.Second,
		SerialSend:        SerialDataPlane,
	})
	defer c.Close()

	eng := chaos.NewEngine(c.Loop, c)
	eng.Install(chaos.Scenario{
		Name: "shard-quorum-partition",
		Faults: []chaos.Fault{
			{Kind: chaos.ReplicaPartition, At: 4 * time.Second, Until: 10 * time.Second, Replica: 2},
		},
	})

	// Streams register before, during, and after the partition window
	// (producers spread across sites so proposals home to different
	// replicas, including the partitioned one).
	res := QuorumPartitionResult{}
	starts := []struct {
		at       time.Duration
		lat, lon float64
		sid      uint32
	}{
		{1 * time.Second, 31.2, 121.5, 100},
		{5 * time.Second, 40.7, -74.0, 200},
		{6500 * time.Millisecond, 52.5, 13.4, 300},
		{12 * time.Second, 1.35, 103.8, 400},
	}
	for _, st := range starts {
		st := st
		c.Loop.AfterFunc(st.at, func() {
			bc := c.NewBroadcasterAt(st.lat, st.lon, st.sid, media.DefaultRenditions[:1])
			bc.Start()
			res.Proposals++
		})
	}

	c.Loop.AfterFunc(9900*time.Millisecond, func() {
		for _, rb := range c.Replicas {
			res.CommittedDuring = append(res.CommittedDuring, rb.Replica().CommittedCount())
		}
	})
	c.Run(16 * time.Second)

	for _, rb := range c.Replicas {
		res.CommittedAfter = append(res.CommittedAfter, rb.Replica().CommittedCount())
	}
	res.Converged = true
	for _, n := range res.CommittedAfter {
		if n != res.CommittedAfter[0] {
			res.Converged = false
		}
	}
	res.Timeline = eng.TimelineString()
	return res
}

// FlashCrowdCohortResult summarizes the million-viewer flash-crowd run.
type FlashCrowdCohortResult struct {
	Viewers         float64
	TracerViews     int
	PeakConcurrency int
	ZeroStallPct    float64
	FastStartPct    float64
	RebufferRatio   float64
}

// FlashCrowdCohort runs experiment 5: a million-viewer flash crowd
// through the cohort-aggregated macro engine (§6.1 at production scale —
// the load doubles for the second hour, Figure 14 style). It is not a
// chaos scenario but a scale stress: the surge arrives as aggregate
// cohort counts, so the run costs O(edges x channels) per bucket
// regardless of the viewer count, and the whole result remains a pure
// function of the seed.
func FlashCrowdCohort(seed int64) FlashCrowdCohortResult {
	cfg := core.MacroConfig{
		Seed:         seed,
		Sites:        12,
		Hours:        2,
		System:       core.SystemLiveNet,
		Viewers:      1_000_000,
		TracerSample: 1e-6,
	}
	cfg.Workload.Flash = []workload.FlashEvent{{Start: time.Hour, End: 2 * time.Hour, Multiplier: 2}}
	r := core.RunMacro(cfg)
	q := r.CohortQoE
	peak := 0
	for _, ds := range r.ByDay {
		if ds.PeakConcurrency > peak {
			peak = ds.PeakConcurrency
		}
	}
	return FlashCrowdCohortResult{
		Viewers:         q.Viewers,
		TracerViews:     q.TracerViews,
		PeakConcurrency: peak,
		ZeroStallPct:    q.ZeroStall.Percent(),
		FastStartPct:    q.FastStart.Percent(),
		RebufferRatio:   q.RebufferRatio(),
	}
}

// FaultReport renders the fault-tolerance evaluation: the six
// experiments with their chaos timelines, in the same table style as the
// paper sections. The whole report is a pure function of the seed.
func FaultReport(seed int64) string {
	var b strings.Builder

	ln, hr := RelayCrashCompare(seed)
	b.WriteString("Fault tolerance: mid-path relay crash at t=6s (recovery at the viewer)\n")
	b.WriteString("fault schedule:\n" + indent(ln.Timeline))
	t := &stats.Table{Header: []string{"system", "detect (ms)", "path switch (ms)", "viewer outage (ms)", "stalls in fault win", "frames played", "frames missed", "post-fault delay (ms)", "fast switches"}}
	for _, r := range []RelayCrashResult{ln, hr} {
		t.AddRow(r.System,
			fmt.Sprintf("%.0f", r.DetectionMs),
			fmt.Sprintf("%.0f", r.PathSwitchMs),
			fmt.Sprintf("%.0f", r.OutageMs),
			fmt.Sprintf("%d", r.StallsDuringFault),
			fmt.Sprintf("%d", r.FramesPlayed),
			fmt.Sprintf("%d", r.FramesMissed),
			fmt.Sprintf("%.0f", r.PostFaultDelayMs),
			fmt.Sprintf("%d", r.FastSwitches))
	}
	b.WriteString(t.String())
	if hr.RecoveredAfterMs > 0 && ln.RecoveredAfterMs > 0 {
		fmt.Fprintf(&b, "LiveNet recovers %.1fx faster than Hier (%.0f ms vs %.0f ms)\n",
			hr.RecoveredAfterMs/ln.RecoveredAfterMs, ln.RecoveredAfterMs, hr.RecoveredAfterMs)
	}
	if hr.PostFaultDelayMs > ln.PostFaultDelayMs {
		fmt.Fprintf(&b, "Hier pays the outage as latency: post-fault delay %.0f ms vs LiveNet's %.0f ms\n",
			hr.PostFaultDelayMs, ln.PostFaultDelayMs)
	}

	cf := CacheFallback(seed)
	b.WriteString("\nBrain unreachable from t=5s + double relay crash at t=6s (local path cache)\n")
	b.WriteString("fault schedule:\n" + indent(cf.Timeline))
	fmt.Fprintf(&b, "cache fallbacks: %d, outage %.0f ms, recovered %.0f ms after crash, frames played %d\n",
		cf.CacheFallbacks, cf.OutageMs, cf.RecoveredAfterMs, cf.FramesPlayed)

	bo := BrainOutage(seed)
	b.WriteString("\nBrain-replica outage: 3 Paxos replicas, replica 1 down t=4s..12s\n")
	b.WriteString("fault schedule:\n" + indent(bo.Timeline))
	fmt.Fprintf(&b, "path lookups: %d, replica failovers: %d, failed lookups: %d, viewers started: %d/%d\n",
		bo.Lookups, bo.Failovers, bo.LookupFailures, bo.Started, bo.Viewers)
	if bo.LookupFailures == 0 && bo.Started == bo.Viewers {
		b.WriteString("no routing outage: every lookup answered by a live replica\n")
	}

	qp := QuorumPartition(seed)
	b.WriteString("\nShard-quorum partition: replica 2 cut from consensus t=4s..10s (log convergence)\n")
	b.WriteString("fault schedule:\n" + indent(qp.Timeline))
	fmt.Fprintf(&b, "SIB proposals: %d, committed during partition: %v, committed at end: %v\n",
		qp.Proposals, qp.CommittedDuring, qp.CommittedAfter)
	if qp.Converged {
		b.WriteString("replica logs converged after heal: the partitioned replica caught up\n")
	}

	b.WriteString(rollingRestartSection(seed))

	fc := FlashCrowdCohort(seed)
	b.WriteString("\nMillion-viewer flash crowd: load x2 for hour 2 (cohort-aggregated macro run)\n")
	fmt.Fprintf(&b, "represented viewers: %.0f (%d traced exactly), peak concurrency: %d\n",
		fc.Viewers, fc.TracerViews, fc.PeakConcurrency)
	fmt.Fprintf(&b, "0-stall: %.2f%%, fast startup: %.2f%%, rebuffer ratio: %.5f\n",
		fc.ZeroStallPct, fc.FastStartPct, fc.RebufferRatio)
	if fc.PeakConcurrency >= 500_000 && fc.ZeroStallPct > 80 {
		b.WriteString("QoE holds through the surge: the cohort engine absorbs the flash crowd\n")
	}
	return b.String()
}

func indent(s string) string {
	if s == "" {
		return "  (none)\n"
	}
	return "  " + strings.TrimRight(strings.ReplaceAll(s, "\n", "\n  "), " ") + "\n"
}
