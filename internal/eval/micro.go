package eval

import (
	"fmt"
	"time"

	"livenet/internal/brain"
	"livenet/internal/gop"
	"livenet/internal/graph"
	"livenet/internal/ksp"
	"livenet/internal/media"
	"livenet/internal/netem"
	"livenet/internal/node"
	"livenet/internal/rtp"
	"livenet/internal/runner"
	"livenet/internal/sim"
	"livenet/internal/stats"
	"livenet/internal/wire"
)

// --- Ablation: fast–slow path vs store-and-forward full-stack relay ---

// sfRelay is the strawman LiveNet replaces: a relay that runs the full
// application stack per hop — it reassembles each frame completely
// (store-and-forward) before forwarding, with per-hop reliability.
// This is the "running a whole application stack on each overlay node
// introduces unacceptable processing latency" baseline of §3.
type sfRelay struct {
	id        int
	next      int
	clock     sim.Clock
	net       node.Sender
	assembler *gop.Assembler
	// stash holds packets per frame until the frame completes.
	stash map[uint32][][]byte
	// procDelay models full-stack processing per frame.
	procDelay time.Duration
}

func newSFRelay(id, next int, clock sim.Clock, net node.Sender) *sfRelay {
	r := &sfRelay{
		id: id, next: next, clock: clock, net: net,
		assembler: gop.NewAssembler(64),
		stash:     make(map[uint32][][]byte),
		procDelay: 10 * time.Millisecond,
	}
	r.assembler.OnFrame = r.onFrame
	return r
}

func (r *sfRelay) OnMessage(from int, data []byte) {
	if wire.Kind(data) != wire.MsgRTP {
		return
	}
	_, rtpData, err := wire.UnframeRTP(data)
	if err != nil {
		return
	}
	var pkt rtp.Packet
	if err := pkt.Unmarshal(rtpData); err != nil {
		return
	}
	var h media.FrameHeader
	if err := h.Unmarshal(pkt.Payload); err != nil {
		return
	}
	r.stash[h.FrameID] = append(r.stash[h.FrameID], append([]byte(nil), data...))
	r.assembler.Push(&pkt)
}

// onFrame forwards the whole frame once complete, after processing delay.
func (r *sfRelay) onFrame(f gop.AssembledFrame) {
	packets := r.stash[f.Header.FrameID]
	delete(r.stash, f.Header.FrameID)
	r.clock.AfterFunc(r.procDelay, func() {
		now10us := uint32(r.clock.Now() / (10 * time.Microsecond))
		for _, p := range packets {
			rtp.PatchDelayExt(p[wire.RTPHeaderLen:], uint32(r.procDelay/(10*time.Microsecond)))
			wire.PatchRTPSendTime(p, now10us)
			r.net.Send(r.id, r.next, p)
		}
	})
}

// FastSlowResult compares per-frame delivery latency through a 2-relay
// chain for LiveNet's fast–slow path vs the store-and-forward stack.
// Delivery ratios matter as much as the latency: the SF chain has no
// recovery, so its latency sample is survivorship-biased — frames with
// any lost packet simply never arrive.
type FastSlowResult struct {
	Loss              float64
	FastSlowMedianMs  float64
	FastSlowP95Ms     float64
	FastSlowDelivered float64 // fraction of frames delivered
	StoreFwdMedianMs  float64
	StoreFwdP95Ms     float64
	StoreFwdDelivered float64
	FastSlowRecovered uint64
}

// AblationFastSlow measures frame latency broadcaster→viewer through
// producer→relay→consumer at the given overlay loss rate, for both
// forwarding architectures.
func AblationFastSlow(seed int64, loss float64) FastSlowResult {
	const totalFrames = 250
	measure := func(storeForward bool) (*stats.Sample, uint64) {
		loop := sim.NewLoop(seed)
		net := netem.New(loop, loop.RNG("netem"))
		hop := netem.LinkConfig{RTT: 30 * time.Millisecond, BandwidthBps: 100e6}
		if loss > 0 {
			hop.Loss = func(time.Duration) float64 { return loss }
		}
		const (
			bcID, prodID, relayID, consID, viewID = 1000, 0, 1, 2, 2000
			sid                                   = 7
		)
		net.AddDuplex(bcID, prodID, netem.LinkConfig{RTT: 10 * time.Millisecond, BandwidthBps: 100e6})
		net.AddDuplex(prodID, relayID, hop)
		net.AddDuplex(relayID, consID, hop)
		net.AddDuplex(consID, viewID, netem.LinkConfig{RTT: 10 * time.Millisecond, BandwidthBps: 100e6})

		mkNode := func(id int) *node.Node {
			n := node.New(node.Config{
				ID: id, Clock: loop, Net: net,
				PathLookup: func(_ uint32, _ int, cb func([][]int, error)) {
					loop.AfterFunc(5*time.Millisecond, func() { cb([][]int{{prodID, relayID, consID}}, nil) })
				},
				LinkRTT:   func(int) time.Duration { return 30 * time.Millisecond },
				IsOverlay: func(id int) bool { return id < 1000 },
			})
			net.Handle(id, n.OnMessage)
			return n
		}
		var prod, relay *node.Node
		if storeForward {
			// Producer and consumer are plain pipes too: the SF chain is
			// bc -> sf(prod) -> sf(relay) -> sf(cons) -> viewer.
			p := newSFRelay(prodID, relayID, loop, net)
			r := newSFRelay(relayID, consID, loop, net)
			c := newSFRelay(consID, viewID, loop, net)
			net.Handle(prodID, p.OnMessage)
			net.Handle(relayID, r.OnMessage)
			net.Handle(consID, c.OnMessage)
		} else {
			prod = mkNode(prodID)
			relay = mkNode(relayID)
			cons := mkNode(consID)
			cons.AttachViewer(viewID, sid)
		}

		// Viewer measures per-frame latency: capture PTS vs arrival.
		latency := &stats.Sample{}
		assembler := gop.NewAssembler(64)
		start := time.Duration(0)
		assembler.OnFrame = func(f gop.AssembledFrame) {
			// Frame f was captured at start + ID*40ms.
			capture := start + time.Duration(f.Header.FrameID)*40*time.Millisecond
			latency.Add(float64(loop.Now()-capture) / float64(time.Millisecond))
		}
		net.Handle(viewID, func(_ int, data []byte) {
			if wire.Kind(data) != wire.MsgRTP {
				return
			}
			_, rtpData, err := wire.UnframeRTP(data)
			if err != nil {
				return
			}
			var pkt rtp.Packet
			if err := pkt.Unmarshal(rtpData); err == nil {
				assembler.Push(&pkt)
			}
		})

		// Broadcast 10 s of 1.2 Mbps video.
		enc := media.NewEncoder(media.DefaultEncoderConfig(1_200_000), loop.RNG("enc"))
		pz := media.NewPacketizer(sid)
		frames := 0
		var tick func()
		tick = func() {
			if frames >= totalFrames {
				return
			}
			frames++
			now10us := uint32(loop.Now() / (10 * time.Microsecond))
			for _, pkt := range pz.Packetize(enc.NextFrame(), 100, nil) {
				net.Send(bcID, prodID, wire.FrameRTP(nil, now10us, pkt.Marshal(nil)))
			}
			loop.AfterFunc(enc.FrameInterval(), tick)
		}
		loop.AfterFunc(0, tick)
		loop.RunUntil(15 * time.Second)
		var recovered uint64
		if prod != nil {
			recovered = prod.Metrics().Retransmits + relay.Metrics().Retransmits
		}
		return latency, recovered
	}

	fs, rec := measure(false)
	sf, _ := measure(true)
	return FastSlowResult{
		Loss:              loss,
		FastSlowMedianMs:  fs.Median(),
		FastSlowP95Ms:     fs.Percentile(95),
		FastSlowDelivered: float64(fs.N()) / totalFrames,
		StoreFwdMedianMs:  sf.Median(),
		StoreFwdP95Ms:     sf.Percentile(95),
		StoreFwdDelivered: float64(sf.N()) / totalFrames,
		FastSlowRecovered: rec,
	}
}

// FastSlowTable renders the ablation across a loss sweep (loss points
// are independent simulations and run in parallel).
func FastSlowTable(seed int64, losses []float64) string {
	return NewSession(runner.Parallel()).FastSlowTable(seed, losses)
}

// --- Ablation: Eq. 2–3 load-aware weights vs pure-RTT routing ---

// AblationLinkWeights builds a hotspot scenario and compares the full
// Brain decision (Eq. 2-3 weights + the 80%-utilization validity filter,
// §4.2/§4.3) against pure-RTT shortest paths with no load awareness:
// the Brain routes around the hot relay; pure RTT rides into it.
func AblationLinkWeights(seed int64) string {
	const n = 16
	rng := sim.NewSource(seed).Stream("weights")
	g := graph.New(n)
	br := brain.New(brain.Config{N: n})
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				rtt := time.Duration(20+rng.Intn(60)) * time.Millisecond
				g.SetLink(i, j, rtt, 0.0005, 0.1)
				br.ReportLink(i, j, rtt, 0.0005, 0.1)
			}
		}
	}
	// Node 1 is the natural relay for 0→2 (cheapest RTTs) but is hot.
	set := func(a, b int, rtt time.Duration) {
		g.SetLink(a, b, rtt, 0.0005, 0.1)
		br.ReportLink(a, b, rtt, 0.0005, 0.1)
	}
	set(0, 1, 10*time.Millisecond)
	set(1, 2, 10*time.Millisecond)
	set(0, 2, 90*time.Millisecond)
	g.SetNodeUtil(1, 0.95)
	br.OverloadAlarm(1, 0.95)
	br.RegisterStream(1, 0)

	// Effective delay penalizes hot nodes (queueing at 95% util).
	effDelay := func(nodes []int) float64 {
		total := 0.0
		for i := 0; i+1 < len(nodes); i++ {
			l := g.Link(nodes[i], nodes[i+1])
			total += float64(l.RTT) / float64(time.Millisecond) / 2
		}
		for _, nid := range nodes[1 : len(nodes)-1] {
			u := g.NodeUtil(nid)
			total += 150 * u * u * u // queueing blow-up on hot relays
		}
		return total
	}

	paths, _ := br.Lookup(1, 2)
	loaded := paths[0]
	pureRTT := func(a, b int) float64 {
		l := g.Link(a, b)
		if l == nil {
			return 1e18
		}
		return float64(l.RTT) / float64(time.Millisecond)
	}
	plain, _ := ksp.ShortestPath(n, 0, 2, g.Neighbors, pureRTT)

	return fmt.Sprintf(`Ablation: Brain routing (Eq.2-3 weights + overload filter) vs pure-RTT (hot relay at 95%% util)
pure-RTT path:    %v  effective delay %.0f ms
load-aware path:  %v  effective delay %.0f ms
`, plain.Nodes, effDelay(plain.Nodes), loaded, effDelay(loaded))
}

// --- Macro ablations (GoP cache, prefetch, last resort, k) ---

// MacroAblations runs the LiveNet engine with each feature disabled and
// reports the deltas against the baseline. The seven configurations
// (including the k-sensitivity points) are independent runs and fan out
// in parallel; callers that already hold a Session should use its method
// instead so the baseline is shared with the main evaluation pair.
func MacroAblations(o Options) string {
	return NewSession(runner.Parallel()).MacroAblations(o)
}
