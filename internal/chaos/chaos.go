// Package chaos is LiveNet's deterministic fault-injection plane: a
// seeded fault-schedule engine that compiles a scenario — node crashes
// and restarts, link cuts, flaps and partitions, bursty-loss episodes,
// Brain-replica outages, last-mile degradation — into simulator events
// against the same virtual clock the system under test runs on.
//
// Faults act only on the "physical" layer (the emulated network and
// process lifecycle); every recovery behaviour they exercise — dead-link
// discovery reports, Brain staleness aging, node fast path switching,
// replica failover, local path-cache fallback — must flow through the
// system itself. The engine records a timeline of the faults it applied;
// with a fixed seed the timeline (and therefore the run) replays
// byte-identically.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"livenet/internal/netem"
	"livenet/internal/sim"
)

// Kind enumerates fault types.
type Kind int

const (
	// NodeCrash fail-stops an overlay node at At; if Until is set the
	// node restarts (with empty state) at Until.
	NodeCrash Kind = iota
	// NodeRestart brings a crashed node back at At.
	NodeRestart
	// LinkDown cuts the duplex overlay link A–B at At; if Until is set
	// the link comes back at Until.
	LinkDown
	// LinkUp restores the duplex overlay link A–B at At.
	LinkUp
	// LinkFlap toggles the A–B link down/up every Period from At,
	// finishing up at Until.
	LinkFlap
	// Partition cuts every link between the node sets Group and Peers at
	// At (a network partition); if Until is set it heals at Until.
	Partition
	// BurstStart installs a Gilbert–Elliott bursty-loss episode on the
	// A–B link at At (config Burst); if Until is set it clears at Until.
	BurstStart
	// BurstEnd clears the bursty-loss episode on A–B at At.
	BurstEnd
	// ReplicaKill takes Brain replica Replica down at At; if Until is
	// set it restarts at Until.
	ReplicaKill
	// ReplicaRestart brings Brain replica Replica back at At.
	ReplicaRestart
	// LastMileDegrade sets the access links of Node's attached clients
	// to loss rate Loss at At; if Until is set they are restored at Until.
	LastMileDegrade
	// LastMileRestore reinstates Node's original access-link loss at At.
	LastMileRestore
	// ReplicaPartition cuts Brain replica (or federation shard) Replica
	// off from its peers at At — consensus traffic to and from it is
	// dropped and, for a federated Brain, the shard stops serving the
	// front-end — without killing the process. If Until is set the
	// partition heals at Until.
	ReplicaPartition
	// ReplicaHeal reconnects a partitioned replica/shard at At.
	ReplicaHeal
	// NodeDrain starts a planned drain of Node at At (make-before-break
	// migration of its carried streams); if Until is set the node is
	// undrained at Until. This is the migration-storm primitive: many
	// NodeDrain faults in one schedule reconfigure large parts of the
	// overlay at once.
	NodeDrain
	// NodeUndrain readmits Node to path decisions at At.
	NodeUndrain
)

var kindNames = map[Kind]string{
	NodeCrash:        "node-crash",
	NodeRestart:      "node-restart",
	LinkDown:         "link-down",
	LinkUp:           "link-up",
	LinkFlap:         "link-flap",
	Partition:        "partition",
	BurstStart:       "burst-start",
	BurstEnd:         "burst-end",
	ReplicaKill:      "replica-kill",
	ReplicaRestart:   "replica-restart",
	LastMileDegrade:  "lastmile-degrade",
	LastMileRestore:  "lastmile-restore",
	ReplicaPartition: "replica-partition",
	ReplicaHeal:      "replica-heal",
	NodeDrain:        "node-drain",
	NodeUndrain:      "node-undrain",
}

// String names the fault kind for timelines and logs.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one scheduled fault. Which fields matter depends on Kind.
type Fault struct {
	Kind  Kind
	At    time.Duration
	Until time.Duration // optional automatic inverse action
	// Period is the LinkFlap half-period (time spent in each state).
	Period time.Duration

	Node         int   // NodeCrash/NodeRestart/LastMile*
	A, B         int   // Link*/Burst*
	Group, Peers []int // Partition sides
	Replica      int   // Replica*

	Loss  float64            // LastMileDegrade
	Burst *netem.BurstConfig // BurstStart
}

// Scenario is a named, ordered fault schedule.
type Scenario struct {
	Name   string
	Faults []Fault
}

// Injector is the fault surface the engine drives. core.Cluster
// implements it; tests may substitute a recorder.
type Injector interface {
	CrashNode(id int)
	RestartNode(id int)
	SetOverlayLink(a, b int, up bool)
	SetOverlayBurst(a, b int, cfg *netem.BurstConfig)
	DegradeLastMile(nodeID int, loss float64) int
	RestoreLastMile(nodeID int)
	KillReplica(i int)
	RestartReplica(i int)
	PartitionReplica(i int)
	HealReplica(i int)
	// DrainNode starts a planned drain (returns how many migrations were
	// scheduled); UndrainNode readmits the node.
	DrainNode(id int) int
	UndrainNode(id int)
}

// Event is one applied fault action, as recorded in the timeline.
type Event struct {
	At   time.Duration
	Desc string
}

// Engine compiles scenarios into clock events and records the timeline.
type Engine struct {
	clock sim.Clock
	inj   Injector

	timeline []Event
}

// NewEngine binds an engine to the system's clock and fault surface.
func NewEngine(clock sim.Clock, inj Injector) *Engine {
	return &Engine{clock: clock, inj: inj}
}

// Install compiles a scenario's faults into scheduled actions. Faults
// whose At already passed fire immediately (in schedule order).
func (e *Engine) Install(sc Scenario) {
	for _, f := range sc.Faults {
		e.installFault(f)
	}
}

// at schedules one action and its timeline record.
func (e *Engine) at(t time.Duration, desc string, apply func()) {
	now := e.clock.Now()
	d := t - now
	if d < 0 {
		d = 0
	}
	e.clock.AfterFunc(d, func() {
		e.timeline = append(e.timeline, Event{At: e.clock.Now(), Desc: desc})
		apply()
	})
}

func (e *Engine) installFault(f Fault) {
	switch f.Kind {
	case NodeCrash:
		id := f.Node
		e.at(f.At, fmt.Sprintf("node-crash node=%d", id), func() { e.inj.CrashNode(id) })
		if f.Until > f.At {
			e.at(f.Until, fmt.Sprintf("node-restart node=%d", id), func() { e.inj.RestartNode(id) })
		}
	case NodeRestart:
		id := f.Node
		e.at(f.At, fmt.Sprintf("node-restart node=%d", id), func() { e.inj.RestartNode(id) })
	case LinkDown:
		a, b := f.A, f.B
		e.at(f.At, fmt.Sprintf("link-down link=%d-%d", a, b), func() { e.inj.SetOverlayLink(a, b, false) })
		if f.Until > f.At {
			e.at(f.Until, fmt.Sprintf("link-up link=%d-%d", a, b), func() { e.inj.SetOverlayLink(a, b, true) })
		}
	case LinkUp:
		a, b := f.A, f.B
		e.at(f.At, fmt.Sprintf("link-up link=%d-%d", a, b), func() { e.inj.SetOverlayLink(a, b, true) })
	case LinkFlap:
		a, b := f.A, f.B
		if f.Period <= 0 || f.Until <= f.At {
			return
		}
		down := true
		for t := f.At; t < f.Until; t += f.Period {
			up := !down
			state := "link-down"
			if up {
				state = "link-up"
			}
			e.at(t, fmt.Sprintf("%s link=%d-%d flap", state, a, b), func() { e.inj.SetOverlayLink(a, b, up) })
			down = !down
		}
		e.at(f.Until, fmt.Sprintf("link-up link=%d-%d flap-end", a, b), func() { e.inj.SetOverlayLink(a, b, true) })
	case Partition:
		group := append([]int(nil), f.Group...)
		peers := append([]int(nil), f.Peers...)
		set := func(up bool) {
			for _, a := range group {
				for _, b := range peers {
					e.inj.SetOverlayLink(a, b, up)
				}
			}
		}
		e.at(f.At, fmt.Sprintf("partition groups=%v|%v", group, peers), func() { set(false) })
		if f.Until > f.At {
			e.at(f.Until, fmt.Sprintf("partition-heal groups=%v|%v", group, peers), func() { set(true) })
		}
	case BurstStart:
		a, b, cfg := f.A, f.B, f.Burst
		e.at(f.At, fmt.Sprintf("burst-start link=%d-%d", a, b), func() { e.inj.SetOverlayBurst(a, b, cfg) })
		if f.Until > f.At {
			e.at(f.Until, fmt.Sprintf("burst-end link=%d-%d", a, b), func() { e.inj.SetOverlayBurst(a, b, nil) })
		}
	case BurstEnd:
		a, b := f.A, f.B
		e.at(f.At, fmt.Sprintf("burst-end link=%d-%d", a, b), func() { e.inj.SetOverlayBurst(a, b, nil) })
	case ReplicaKill:
		r := f.Replica
		e.at(f.At, fmt.Sprintf("replica-kill replica=%d", r), func() { e.inj.KillReplica(r) })
		if f.Until > f.At {
			e.at(f.Until, fmt.Sprintf("replica-restart replica=%d", r), func() { e.inj.RestartReplica(r) })
		}
	case ReplicaRestart:
		r := f.Replica
		e.at(f.At, fmt.Sprintf("replica-restart replica=%d", r), func() { e.inj.RestartReplica(r) })
	case LastMileDegrade:
		id, loss := f.Node, f.Loss
		e.at(f.At, fmt.Sprintf("lastmile-degrade node=%d loss=%.4f", id, loss), func() { e.inj.DegradeLastMile(id, loss) })
		if f.Until > f.At {
			e.at(f.Until, fmt.Sprintf("lastmile-restore node=%d", id), func() { e.inj.RestoreLastMile(id) })
		}
	case LastMileRestore:
		id := f.Node
		e.at(f.At, fmt.Sprintf("lastmile-restore node=%d", id), func() { e.inj.RestoreLastMile(id) })
	case ReplicaPartition:
		r := f.Replica
		e.at(f.At, fmt.Sprintf("replica-partition replica=%d", r), func() { e.inj.PartitionReplica(r) })
		if f.Until > f.At {
			e.at(f.Until, fmt.Sprintf("replica-heal replica=%d", r), func() { e.inj.HealReplica(r) })
		}
	case ReplicaHeal:
		r := f.Replica
		e.at(f.At, fmt.Sprintf("replica-heal replica=%d", r), func() { e.inj.HealReplica(r) })
	case NodeDrain:
		id := f.Node
		e.at(f.At, fmt.Sprintf("node-drain node=%d", id), func() { e.inj.DrainNode(id) })
		if f.Until > f.At {
			e.at(f.Until, fmt.Sprintf("node-undrain node=%d", id), func() { e.inj.UndrainNode(id) })
		}
	case NodeUndrain:
		id := f.Node
		e.at(f.At, fmt.Sprintf("node-undrain node=%d", id), func() { e.inj.UndrainNode(id) })
	}
}

// Timeline returns the applied-fault record so far, in application order.
func (e *Engine) Timeline() []Event {
	return append([]Event(nil), e.timeline...)
}

// TimelineString renders the timeline one event per line — the replay
// artifact compared byte-for-byte by the determinism regression tests.
func (e *Engine) TimelineString() string {
	var b strings.Builder
	for _, ev := range e.timeline {
		fmt.Fprintf(&b, "t=%-10s %s\n", ev.At, ev.Desc)
	}
	return b.String()
}

// GenerateConfig bounds the random scenario generator.
type GenerateConfig struct {
	// Nodes is the overlay size faults are drawn over.
	Nodes int
	// Horizon is the time window faults land in.
	Horizon time.Duration
	// Crashes, LinkCuts, Bursts are how many of each to schedule.
	Crashes, LinkCuts, Bursts int
	// Replicas, ReplicaKills drive Brain-replica outages (0 disables).
	Replicas, ReplicaKills int
	// ReplicaPartitions schedules consensus-quorum partitions of random
	// replicas/shards (0 disables; needs Replicas).
	ReplicaPartitions int
	// Drains schedules planned node drain/undrain cycles — the
	// migration-storm schedule (0 disables). Drawn after every other
	// fault kind, so schedules generated with Drains=0 are byte-identical
	// to those from before the knob existed.
	Drains int
}

// Generate builds a random fault schedule from a seed: the same seed and
// config always produce the identical scenario (the seeded RNG stream is
// independent of the simulation's own streams). Faults are sorted by At
// so install order equals fire order.
func Generate(seed int64, cfg GenerateConfig) Scenario {
	rng := sim.NewSource(seed).Stream("chaos")
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = time.Minute
	}
	at := func() time.Duration {
		// Land inside the middle 80% of the horizon so recovery windows
		// fit before the run ends.
		lo := horizon / 10
		return lo + time.Duration(rng.Int63n(int64(horizon-2*lo)))
	}
	var faults []Fault
	for i := 0; i < cfg.Crashes && cfg.Nodes > 0; i++ {
		t := at()
		faults = append(faults, Fault{
			Kind: NodeCrash, At: t, Until: t + horizon/5,
			Node: rng.Intn(cfg.Nodes),
		})
	}
	for i := 0; i < cfg.LinkCuts && cfg.Nodes > 1; i++ {
		a := rng.Intn(cfg.Nodes)
		b := rng.Intn(cfg.Nodes - 1)
		if b >= a {
			b++
		}
		t := at()
		faults = append(faults, Fault{Kind: LinkDown, At: t, Until: t + horizon/6, A: a, B: b})
	}
	for i := 0; i < cfg.Bursts && cfg.Nodes > 1; i++ {
		a := rng.Intn(cfg.Nodes)
		b := rng.Intn(cfg.Nodes - 1)
		if b >= a {
			b++
		}
		t := at()
		faults = append(faults, Fault{
			Kind: BurstStart, At: t, Until: t + horizon/6, A: a, B: b,
			Burst: &netem.BurstConfig{PGood: 0.001, PBad: 0.15, GoodMean: 5 * time.Second, BadMean: time.Second},
		})
	}
	for i := 0; i < cfg.ReplicaKills && cfg.Replicas > 0; i++ {
		t := at()
		faults = append(faults, Fault{Kind: ReplicaKill, At: t, Until: t + horizon/4, Replica: rng.Intn(cfg.Replicas)})
	}
	for i := 0; i < cfg.ReplicaPartitions && cfg.Replicas > 0; i++ {
		t := at()
		faults = append(faults, Fault{Kind: ReplicaPartition, At: t, Until: t + horizon/4, Replica: rng.Intn(cfg.Replicas)})
	}
	for i := 0; i < cfg.Drains && cfg.Nodes > 0; i++ {
		t := at()
		faults = append(faults, Fault{
			Kind: NodeDrain, At: t, Until: t + horizon/4,
			Node: rng.Intn(cfg.Nodes),
		})
	}
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].At < faults[j].At })
	return Scenario{Name: fmt.Sprintf("generated(seed=%d)", seed), Faults: faults}
}
